(* Ablations of the design choices DESIGN.md calls out:

   (a) minimal vs full (naive) dependency unwildcarding — the paper's
       section 4.2.3 discipline is what makes cache entries shareable;
   (b) the section 7 traffic-profile-guided fallback: adaptive Gigaflow
       under low locality vs plain Gigaflow and Megaflow. *)

open Common
module Ruleset = Gf_workload.Ruleset
module Oftable = Gf_pipeline.Oftable

let unwildcarding () =
  say "";
  say "  (a) dependency unwildcarding: minimal (paper 4.2.3) vs naive full union";
  let t =
    Tablefmt.create ~title:"PSC, high locality, Gigaflow 4x8K"
      [ "Unwildcarding"; "Hit rate"; "Peak entries"; "Mean sharing" ]
  in
  List.iter
    (fun (name, mode) ->
      Oftable.unwildcard_mode := mode;
      say "  [ablation] unwildcarding=%s ..." name;
      (* A fresh workload per mode: traversal wildcards depend on it. *)
      let w =
        Gf_workload.Pipebench.make ~combos:(combos ()) ~unique_flows:(unique_flows ())
          ~info:(info "PSC") ~locality:Ruleset.High ~seed:(!seed lxor 0xAB1) ()
      in
      let r = run_datapath (Datapath.without_software (gf_config ())) w in
      Tablefmt.add_row t
        [
          name;
          Tablefmt.fmt_pct ~dp:2 (Metrics.hw_hit_rate r.metrics);
          Tablefmt.fmt_int r.peak_entries;
          Tablefmt.fmt_float ~dp:2 r.max_sharing;
        ])
    [ ("minimal", `Minimal); ("full union", `Full) ];
  Oftable.unwildcard_mode := `Minimal;
  Tablefmt.print t;
  note "Full-union wildcards make entries nearly flow-specific: sharing";
  note "collapses and the LTM tables thrash — minimal unwildcarding is";
  note "load-bearing for the whole design."

let adaptive () =
  say "";
  say "  (b) section 7 fallback: adaptive Gigaflow under low locality";
  let w = workload "PSC" Ruleset.Low in
  let t =
    Tablefmt.create ~title:"PSC, low locality (Gigaflow's worst case)"
      [ "Configuration"; "Hit rate"; "Misses" ]
  in
  let cell name cfg =
    say "  [ablation] %s ..." name;
    let r = run_datapath cfg w in
    Tablefmt.add_row t
      [
        name;
        Tablefmt.fmt_pct ~dp:2 (Metrics.hw_hit_rate r.metrics);
        Tablefmt.fmt_int (Metrics.hw_miss_count r.metrics);
      ]
  in
  cell "Megaflow (32K)" (Datapath.without_software (mf_config ()));
  cell "Gigaflow (4x8K)" (Datapath.without_software (gf_config ()));
  cell "Gigaflow + adaptive fallback"
    (Datapath.without_software
       (Datapath.emc_gf_sw
          ~gf:{ (scaled_gf ()) with Gf_core.Config.adaptive = true }
          ()));
  Tablefmt.print t;
  note "With the profile-guided fallback on, Gigaflow converts scarce-sharing";
  note "traffic into Megaflow-style whole-traversal entries (paper sec. 7),";
  note "recovering baseline behaviour while keeping sub-traversal caching";
  note "whenever probes detect sharing."

let run () =
  section "Ablations: unwildcarding discipline & adaptive fallback";
  unwildcarding ();
  adaptive ()
