(* The headline end-to-end comparison — Gigaflow (4x8K) vs Megaflow (32K)
   on all five pipelines under high/low locality — and everything derived
   from those runs:

     Fig. 8  cache hit rate          Fig. 11 sub-traversal sharing
     Fig. 9  cache misses            Fig. 12 end-to-end latency
     Fig. 10 cache entries           Fig. 13 CPU cycle breakdown
     Table 2 rule-space coverage *)

open Common
module Ruleset = Gf_workload.Ruleset

let both code locality =
  (headline code locality "megaflow", headline code locality "gigaflow")

let per_pipeline_table title f =
  let t =
    Tablefmt.create ~title
      [ "Pipeline"; "MF high"; "GF high"; "MF low"; "GF low" ]
  in
  List.iter
    (fun code ->
      let mf_h, gf_h = both code Ruleset.High in
      let mf_l, gf_l = both code Ruleset.Low in
      Tablefmt.add_row t [ code; f mf_h; f gf_h; f mf_l; f gf_l ])
    pipelines;
  Tablefmt.print t

let fig8 () =
  section "Fig. 8: end-to-end cache hit rate, Gigaflow (4x8K) vs Megaflow (32K)";
  per_pipeline_table "SmartNIC cache hit rate" (fun r ->
      Tablefmt.fmt_pct ~dp:2 (Metrics.hw_hit_rate r.metrics));
  (* Summary statistics the abstract quotes. *)
  let improvements =
    List.map
      (fun code ->
        let mf, gf = both code Ruleset.High in
        Metrics.hw_hit_rate gf.metrics -. Metrics.hw_hit_rate mf.metrics)
      pipelines
  in
  let avg = List.fold_left ( +. ) 0.0 improvements /. 5.0 in
  let best = List.fold_left Float.max neg_infinity improvements in
  note "High-locality hit-rate improvement: avg +%.1f pp, best +%.1f pp"
    (100.0 *. avg) (100.0 *. best);
  note "Paper: up to +51%% (avg +25%%) relative hit-rate improvement."

let fig9 () =
  section "Fig. 9: end-to-end cache misses";
  per_pipeline_table "SmartNIC cache misses" (fun r ->
      Tablefmt.fmt_int (Metrics.hw_miss_count r.metrics));
  let reductions =
    List.map
      (fun code ->
        let mf, gf = both code Ruleset.High in
        1.0
        -. float_of_int (Metrics.hw_miss_count gf.metrics)
           /. float_of_int (max 1 (Metrics.hw_miss_count mf.metrics)))
      pipelines
  in
  let avg = List.fold_left ( +. ) 0.0 reductions /. 5.0 in
  let best = List.fold_left Float.max neg_infinity reductions in
  note "High-locality miss reduction: avg %.0f%%, best %.0f%%" (100.0 *. avg)
    (100.0 *. best);
  note "Paper: up to 90%% fewer misses (avg 64%%) in high locality."

let fig10 () =
  section "Fig. 10: cache entries used (peak occupancy)";
  per_pipeline_table "Peak cache entries" (fun r -> Tablefmt.fmt_int r.peak_entries);
  let util backend locality =
    let cfg = if backend = "megaflow" then mf_config () else gf_config () in
    let cap = float_of_int (Datapath.hw_capacity cfg) in
    let fracs =
      List.map
        (fun code ->
          float_of_int (headline code locality backend).peak_entries /. cap)
        pipelines
    in
    100.0 *. (List.fold_left ( +. ) 0.0 fracs /. 5.0)
  in
  note "High locality avg utilisation: Megaflow %.0f%%, Gigaflow %.0f%%"
    (util "megaflow" Ruleset.High) (util "gigaflow" Ruleset.High);
  note "Paper: Megaflow ~93%% vs Gigaflow ~76%% of the same 32K budget."

let fig11 () =
  section "Fig. 11: frequency of sub-traversal sharing (Gigaflow 4x8K)";
  let t =
    Tablefmt.create ~title:"Mean installations resolved per LTM entry"
      [ "Pipeline"; "high locality"; "low locality" ]
  in
  List.iter
    (fun code ->
      let gf_h = headline code Ruleset.High "gigaflow" in
      let gf_l = headline code Ruleset.Low "gigaflow" in
      Tablefmt.add_row t
        [
          code;
          Tablefmt.fmt_float ~dp:2 gf_h.max_sharing;
          Tablefmt.fmt_float ~dp:2 gf_l.max_sharing;
        ])
    pipelines;
  Tablefmt.print t;
  note "Paper: sharing frequency drops by ~25%% on average from high to low";
  note "locality, which is what erodes Gigaflow's advantage there."

let fig12 () =
  section "Fig. 12: average end-to-end per-packet latency";
  per_pipeline_table "Mean latency (us)" (fun r ->
      Tablefmt.fmt_float ~dp:2 (Metrics.mean_latency_us r.metrics));
  let impr code =
    let mf, gf = both code Ruleset.High in
    100.0
    *. (1.0 -. Metrics.mean_latency_us gf.metrics /. Metrics.mean_latency_us mf.metrics)
  in
  note "High-locality latency improvement: OLS %.1f%%, OFD %.1f%%, PSC %.1f%%"
    (impr "OLS") (impr "OFD") (impr "PSC");
  note "Paper: 29.1%% (OLS), 31%% (OFD), 27%% (PSC) in high locality; both";
  note "offloads share the same ~9 us hardware hit latency."

let fig13 () =
  section "Fig. 13: CPU cycle breakdown of vSwitch slowpath processing";
  let t =
    Tablefmt.create
      ~title:"Gigaflow slowpath cycles (high locality), % of userspace forwarding"
      [ "Pipeline"; "userspace (Mcyc)"; "partition %"; "rulegen %"; "overhead %" ]
  in
  List.iter
    (fun code ->
      let gf = headline code Ruleset.High "gigaflow" in
      let m = gf.metrics in
      let u = float_of_int m.Metrics.cycles_userspace in
      let pct x = 100.0 *. float_of_int x /. Float.max 1.0 u in
      Tablefmt.add_row t
        [
          code;
          Tablefmt.fmt_float ~dp:1 (u /. 1e6);
          Tablefmt.fmt_float ~dp:1 (pct m.Metrics.cycles_partition);
          Tablefmt.fmt_float ~dp:1 (pct m.Metrics.cycles_rulegen);
          Tablefmt.fmt_float ~dp:1 (100.0 *. Metrics.overhead_ratio m);
        ])
    pipelines;
  Tablefmt.print t;
  note "Paper: partitioning + rule generation add ~80%% (OLS) and ~68%% (ANT)";
  note "on top of userspace forwarding; ~20-28%% for the smaller pipelines.";
  (* Megaflow, for comparison, has no partition/rulegen cycles at all. *)
  let mf = headline "OLS" Ruleset.High "megaflow" in
  note "Megaflow OLS for reference: %.1f Mcycles userspace, 0 partitioning."
    (float_of_int mf.metrics.Metrics.cycles_userspace /. 1e6)

let tab2 () =
  section "Table 2: maximum rule-space coverage (high locality)";
  let t =
    Tablefmt.create
      [ "Cache"; "OFD"; "PSC"; "OLS"; "ANT"; "OTL" ]
  in
  let row backend =
    (if backend = "megaflow" then "Megaflow (32K)" else "Gigaflow (4x8K)")
    :: List.map
         (fun code ->
           Tablefmt.fmt_si (headline code Ruleset.High backend).max_coverage)
         pipelines
  in
  Tablefmt.add_row t (row "megaflow");
  Tablefmt.add_row t (row "gigaflow");
  Tablefmt.print t;
  let ratios =
    List.map
      (fun code ->
        ( code,
          (headline code Ruleset.High "gigaflow").max_coverage
          /. Float.max 1.0 (headline code Ruleset.High "megaflow").max_coverage ))
      pipelines
  in
  List.iter (fun (code, r) -> note "%s: %s more rule space" code (Tablefmt.fmt_times r)) ratios;
  note "Paper: 459x (OFD), 156x (PSC), 337x (OLS), 40x (ANT), 1.5x (OTL).";
  note "(Megaflow coverage = its peak entry count; Gigaflow coverage counts";
  note "cross-product sub-traversal chains.)"

let run () =
  fig8 ();
  fig9 ();
  fig10 ();
  fig11 ();
  fig12 ();
  fig13 ();
  tab2 ()
