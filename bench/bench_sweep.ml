(* Figs. 3, 14, 15: behaviour as the number of SmartNIC tables grows.

   K = 1 with a single big table is exactly Megaflow; K = 2..5 are Gigaflow
   geometries.  Each table holds up to 100K entries (paper Figs. 14/15), so
   capacity never binds and the figures isolate the partitioning effect.
   The software cache is disabled: it does not affect SmartNIC hit/miss
   counts and dominates wall time. *)

open Common
module Ruleset = Gf_workload.Ruleset

type point = { misses : int; entries : int; coverage : float }

let results : (string * Ruleset.locality * int, point) Hashtbl.t = Hashtbl.create 64

let cfg_for k =
  Datapath.without_software
    (if k = 1 then Datapath.emc_mf_sw ~mf_capacity:(scaled 100_000) ()
     else
       Datapath.emc_gf_sw
         ~gf:(Gf_core.Config.v ~tables:k ~table_capacity:(scaled 100_000) ())
         ())

let point code locality k =
  match Hashtbl.find_opt results (code, locality, k) with
  | Some p -> p
  | None ->
      let w = workload code locality in
      say "  [sweep] %s/%s K=%d ..." code (locality_label locality) k;
      let r = run_datapath (cfg_for k) w in
      let p =
        {
          misses = Metrics.hw_miss_count r.metrics;
          entries = r.peak_entries;
          coverage = r.max_coverage;
        }
      in
      Hashtbl.replace results (code, locality, k) p;
      p

let sweep_table title f =
  List.iter
    (fun locality ->
      let t =
        Tablefmt.create
          ~title:(Printf.sprintf "%s (%s locality)" title (locality_label locality))
          [ "Pipeline"; "K=1 (MF)"; "K=2"; "K=3"; "K=4"; "K=5" ]
      in
      List.iter
        (fun code ->
          Tablefmt.add_row t
            (code :: List.map (fun k -> f (point code locality k)) [ 1; 2; 3; 4; 5 ]))
        pipelines;
      Tablefmt.print t)
    localities

let fig3 () =
  section "Fig. 3: more cache tables -> fewer entries and fewer misses (OLS)";
  let t =
    Tablefmt.create ~title:"OLS, high locality, 100K-entry tables"
      [ "K"; "Cache misses"; "Cache entries"; "Rule-space coverage" ]
  in
  List.iter
    (fun k ->
      let p = point "OLS" Ruleset.High k in
      Tablefmt.add_row t
        [
          string_of_int k;
          Tablefmt.fmt_int p.misses;
          Tablefmt.fmt_int p.entries;
          Tablefmt.fmt_si p.coverage;
        ])
    [ 1; 2; 3; 4; 5 ];
  Tablefmt.print t;
  let p1 = point "OLS" Ruleset.High 1 and p4 = point "OLS" Ruleset.High 4 in
  note "K=4 vs K=1: misses -%.0f%%, entries %.2fx, coverage %s"
    (100.0 *. (1.0 -. float_of_int p4.misses /. float_of_int (max 1 p1.misses)))
    (float_of_int p4.entries /. float_of_int (max 1 p1.entries))
    (Tablefmt.fmt_times (p4.coverage /. Float.max 1.0 p1.coverage));
  note "Paper: K=4 cuts misses by up to 90%% and covers 335x more rule space."

let fig14 () =
  section "Fig. 14: cache misses vs number of Gigaflow tables (100K/table)";
  sweep_table "SmartNIC cache misses" (fun p -> Tablefmt.fmt_int p.misses);
  note "Paper: misses fall with K; OFD saturates at K=2, PSC by K=3, OLS";
  note "keeps improving to K=4."

let fig15 () =
  section "Fig. 15: cache entries vs number of Gigaflow tables (100K/table)";
  sweep_table "Peak cache entries" (fun p -> Tablefmt.fmt_int p.entries);
  note "Paper: entries drop as traversals are shared across more tables."

let run () =
  fig3 ();
  fig14 ();
  fig15 ()
