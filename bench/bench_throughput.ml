(* Wall-clock throughput benchmark: sequential vs multicore replay, Megaflow
   vs Gigaflow backends, plus microbenchmarks quantifying the hot-path
   allocation/hashing work.  Writes BENCH_throughput.json — the perf
   trajectory every later PR is measured against.

   Usage:
     dune exec bench/bench_throughput.exe                  # default scale 0.25
     dune exec bench/bench_throughput.exe -- --scale 0.05  # CI smoke test
     dune build @bench-quick                               # same, via alias

   Speedup accounting: `wall_speedup` is end-to-end wall clock of the
   domains run; `speedup` is sequential wall over the parallel run's
   critical path (max per-shard wall, each shard timed running alone) —
   i.e. the wall clock the engine achieves when every domain has a
   dedicated core.  On a host with >= N cores the two agree; on smaller
   hosts (e.g. 1-core CI) `wall_speedup` degenerates to ~1x by physics
   while `speedup` still measures engine scaling. *)

module Catalog = Gf_pipelines.Catalog
module Pipebench = Gf_workload.Pipebench
module Ruleset = Gf_workload.Ruleset
module Trace = Gf_workload.Trace
module Datapath = Gf_sim.Datapath
module Metrics = Gf_sim.Metrics
module Parallel = Gf_sim.Parallel
module Multicore = Gf_sim.Multicore
module Engine = Gf_engine.Engine
module Flow = Gf_flow.Flow
module Field = Gf_flow.Field
module Mask = Gf_flow.Mask

let scale = ref 0.25
let seed = ref 42
let out = ref "BENCH_throughput.json"
let telemetry_out = ref ""
let domain_counts = [ 2; 4; 8 ]

let scaled n = max 1 (int_of_float (float_of_int n *. !scale))

let say fmt = Printf.printf (fmt ^^ "\n%!")

let now () = Unix.gettimeofday ()

let git_commit () =
  (* Stamp results with the code they measured; benches run from dirty
     trees too, so failure is soft. *)
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    match (Unix.close_process_in ic, line) with
    | Unix.WEXITED 0, s when s <> "" -> s
    | _ -> "unknown"
  with _ -> "unknown"

(* ------------------------------ runs ------------------------------ *)

type seq_run = { wall : float; pps : float; metrics : Metrics.t }

let run_sequential cfg pipeline trace =
  let dp = Datapath.create cfg (Gf_pipeline.Pipeline.copy pipeline) in
  let t0 = now () in
  let metrics = Datapath.run dp trace in
  let wall = now () -. t0 in
  { wall; pps = float_of_int metrics.Metrics.packets /. wall; metrics }

type par_run = {
  domains : int;
  domains_wall : float; (* real `Domains run, spawn to join *)
  critical_path : float; (* max per-shard wall, shards timed alone *)
  speedup : float; (* sequential wall / critical path *)
  wall_speedup : float; (* sequential wall / domains wall *)
  merged_pps : float; (* packets / critical path *)
  imbalance : float; (* measured per-shard slowpath-load imbalance *)
  hit_rate : float;
  matches_sequential_mode : bool; (* `Domains merged == `Sequential merged *)
}

let counters (m : Metrics.t) =
  [
    m.Metrics.packets; m.Metrics.hw_hits; m.Metrics.sw_hits; m.Metrics.slowpaths;
    m.Metrics.drops; m.Metrics.hw_installs; m.Metrics.hw_shared;
    m.Metrics.hw_rejected; m.Metrics.hw_evictions;
    m.Metrics.hw_pressure_evictions; m.Metrics.hw_deferred;
    m.Metrics.hw_demotions;
  ]

let run_parallel cfg pipeline trace ~domains ~seq_wall =
  (* Pass 1: shards timed one at a time — undistorted per-shard walls. *)
  let seq_shards = Parallel.replay ~mode:`Sequential ~domains ~cfg pipeline trace in
  (* Pass 2: the real thing, one domain per shard. *)
  let par = Parallel.replay ~mode:`Domains ~domains ~cfg pipeline trace in
  let m = par.Parallel.merged in
  {
    domains;
    domains_wall = par.Parallel.wall_seconds;
    critical_path = seq_shards.Parallel.critical_path_seconds;
    speedup = seq_wall /. seq_shards.Parallel.critical_path_seconds;
    wall_speedup = seq_wall /. par.Parallel.wall_seconds;
    merged_pps =
      float_of_int m.Metrics.packets /. seq_shards.Parallel.critical_path_seconds;
    imbalance = Multicore.imbalance (Parallel.measured_loads par);
    hit_rate = Metrics.hw_hit_rate m;
    matches_sequential_mode =
      counters m = counters seq_shards.Parallel.merged;
  }

(* -------------------- hot-path microbenchmarks -------------------- *)

(* Each pair times the pre-optimisation implementation (reconstructed from
   the public API) against the optimised library path, on identical inputs.
   Reported as old_time / new_time (>1 = the optimisation pays). *)

let time_iters f iters =
  let t0 = now () in
  for _ = 1 to iters do
    f ()
  done;
  now () -. t0

let repeat_best f iters =
  (* best-of-3 to damp scheduler noise *)
  let a = time_iters f iters in
  let b = time_iters f iters in
  let c = time_iters f iters in
  Float.min a (Float.min b c)

(* Overhead comparisons (telemetry on vs off) need tighter hygiene than a
   wall-clock stopwatch: on a shared host the wall clock drifts by
   double-digit percentages across consecutive 10-second runs, which swamps
   a ~1% effect no matter how many sequential repeats get medianed.  Three
   defences, in order of importance: process CPU time instead of wall time
   (descheduling by noisy neighbours stops the clock), the two sides
   interleaved in pairs with the order alternated pair to pair (slow drift
   hits both halves of a pair equally; alternation cancels any
   first-in-pair bias), and the median of the per-pair ratios (a one-sided
   outlier — a GC ramp, a frequency excursion — moves one pair, not the
   estimate).  Each timed run starts from a compacted heap, and both sides
   get one discarded warmup before any pair is timed. *)
let cpu_now () =
  let t = Unix.times () in
  t.Unix.tms_utime +. t.Unix.tms_stime

let paired_overhead ?(pairs = 5) plain_f tel_f =
  let timed f =
    Gc.compact ();
    let t0 = cpu_now () in
    let r = f () in
    (cpu_now () -. t0, r)
  in
  let plain_result = ref None and tel_result = ref None in
  ignore (plain_f ());
  ignore (tel_f ());
  let samples =
    Array.init pairs (fun i ->
        if i land 1 = 0 then begin
          let p, pr = timed plain_f in
          let t, tr = timed tel_f in
          plain_result := Some pr;
          tel_result := Some tr;
          (t /. p, p, t)
        end
        else begin
          let t, tr = timed tel_f in
          let p, pr = timed plain_f in
          plain_result := Some pr;
          tel_result := Some tr;
          (t /. p, p, t)
        end)
  in
  (* Float.compare, not polymorphic compare: a degenerate pair (CPU clock
     too coarse to see the plain side) yields an inf/nan ratio, which the
     polymorphic sort orders inconsistently.  Degenerate pairs are dropped
     before the median so one of them can't become the estimate — and
     can't leak NaN into BENCH JSON. *)
  Array.sort (fun (a, _, _) (b, _, _) -> Float.compare a b) samples;
  let finite =
    Array.of_list
      (List.filter (fun (r, _, _) -> Float.is_finite r) (Array.to_list samples))
  in
  let pool = if Array.length finite > 0 then finite else samples in
  let ratio, p_cpu, t_cpu = pool.(Array.length pool / 2) in
  ( Option.get !plain_result,
    Option.get !tel_result,
    p_cpu,
    t_cpu,
    100.0 *. (ratio -. 1.0) )

let micro_mask_apply () =
  let mask = Mask.make [ (Field.Ip_dst, 0xFFFFFF00); (Field.Tp_dst, 0xFFFF) ] in
  let flow = Flow.make [ (Field.Ip_dst, 0x0A000001); (Field.Tp_dst, 443) ] in
  let iters = 400_000 in
  (* The seed's Mask.apply: flow -> array -> masked array -> re-truncating
     Flow.of_array (two copies + a truncate pass). *)
  let ma = Array.init Field.count (fun i -> Mask.get mask (Field.of_index i)) in
  let naive () =
    let fa = Flow.to_array flow in
    ignore (Flow.of_array (Array.init Field.count (fun i -> fa.(i) land ma.(i))))
  in
  let opt () = ignore (Mask.apply mask flow) in
  repeat_best naive iters /. repeat_best opt iters

let micro_commit_apply () =
  let commit = [ (Field.Eth_dst, 0xBEEF); (Field.Vlan, 7); (Field.Tp_dst, 80) ] in
  let flow = Flow.make [ (Field.Ip_dst, 0x0A000001) ] in
  let iters = 400_000 in
  let naive () =
    ignore (List.fold_left (fun f (field, v) -> Flow.set f field v) flow commit)
  in
  let opt () = ignore (Flow.update flow commit) in
  repeat_best naive iters /. repeat_best opt iters

let micro_flow_table () =
  let rng = Gf_util.Rng.create 7 in
  let flows =
    Array.init 4096 (fun _ ->
        Flow.make
          [
            (Field.Ip_src, Gf_util.Rng.int rng 0x7FFFFFFF);
            (Field.Ip_dst, Gf_util.Rng.int rng 0x7FFFFFFF);
            (Field.Tp_src, Gf_util.Rng.int rng 0xFFFF);
          ])
  in
  let poly : (Flow.t, int) Hashtbl.t = Hashtbl.create 4096 in
  let mono : int Flow.Tbl.t = Flow.Tbl.create 4096 in
  Array.iteri (fun i f -> Hashtbl.replace poly f i) flows;
  Array.iteri (fun i f -> Flow.Tbl.replace mono f i) flows;
  let iters = 300 in
  let naive () = Array.iter (fun f -> ignore (Hashtbl.find_opt poly f)) flows in
  let opt () = Array.iter (fun f -> ignore (Flow.Tbl.find_opt mono f)) flows in
  repeat_best naive iters /. repeat_best opt iters

(* ------------------------------ JSON ------------------------------ *)

let buf = Buffer.create 4096

let j fmt = Printf.ksprintf (Buffer.add_string buf) fmt

let jfloat v = if Float.is_nan v then "null" else Printf.sprintf "%.4f" v

let () =
  let spec =
    [
      ("--scale", Arg.Set_float scale, "F  scale workload sizes by F (default 0.25)");
      ("--seed", Arg.Set_int seed, "N  master random seed (default 42)");
      ("--out", Arg.Set_string out, "FILE  output JSON path (default BENCH_throughput.json)");
      ( "--telemetry-out",
        Arg.Set_string telemetry_out,
        "FILE  also dump the instrumented run's telemetry JSONL (default: discard)" );
    ]
  in
  Arg.parse spec (fun _ -> ()) "gigaflow throughput benchmark";
  let t_start = now () in
  say "Throughput benchmark: seed %d, scale %.2f, host cores %d" !seed !scale
    (Domain.recommended_domain_count ());
  let info = Option.get (Catalog.find "PSC") in
  let w =
    Pipebench.make ~combos:(scaled 131_072) ~unique_flows:(scaled 100_000)
      ~duration:60.0 ~info ~locality:Ruleset.High ~seed:!seed ()
  in
  let pipeline = Pipebench.pipeline w in
  let trace = w.Pipebench.trace in
  say "Workload: PSC/high, %d packets, %d flows" (Trace.packet_count trace)
    trace.Trace.unique_flows;
  let scaled_gf = Gf_core.Config.v ~tables:4 ~table_capacity:(scaled 8192) () in
  let mf_cfg = Datapath.emc_mf_sw ~mf_capacity:(scaled 32_768) () in
  let gf_cfg = Datapath.emc_gf_sw ~gf:scaled_gf () in
  j "{\n";
  j "  \"meta\": {\"seed\": %d, \"scale\": %s, \"commit\": \"%s\", \"pipeline\": \"PSC\", \"locality\": \"high\",\n"
    !seed (jfloat !scale) (git_commit ());
  j "           \"packets\": %d, \"unique_flows\": %d, \"host_cores\": %d},\n"
    (Trace.packet_count trace) trace.Trace.unique_flows
    (Domain.recommended_domain_count ());
  let backends = [ ("megaflow", mf_cfg); ("gigaflow", gf_cfg) ] in
  j "  \"sequential\": {\n";
  let seq_runs =
    List.mapi
      (fun bi (name, cfg) ->
        let r = run_sequential cfg pipeline trace in
        say "  [seq] %s: %.2fs, %.0f pps, hit %.2f%%" name r.wall r.pps
          (100.0 *. Metrics.hw_hit_rate r.metrics);
        j "    \"%s\": {\"wall_seconds\": %s, \"packets_per_second\": %s, \"hw_hit_rate\": %s}%s\n"
          name (jfloat r.wall) (jfloat r.pps)
          (jfloat (Metrics.hw_hit_rate r.metrics))
          (if bi = List.length backends - 1 then "" else ",");
        (name, r))
      backends
  in
  j "  },\n";
  j "  \"parallel\": [\n";
  let n_rows = List.length backends * List.length domain_counts in
  let row = ref 0 in
  List.iter
    (fun (name, cfg) ->
      let seq = List.assoc name seq_runs in
      List.iter
        (fun domains ->
          let p = run_parallel cfg pipeline trace ~domains ~seq_wall:seq.wall in
          say "  [par] %s x%d: critical path %.2fs, speedup %.2fx (wall %.2fx), \
               imbalance %.2f, merged ok: %b"
            name domains p.critical_path p.speedup p.wall_speedup p.imbalance
            p.matches_sequential_mode;
          incr row;
          j "    {\"backend\": \"%s\", \"domains\": %d, \"critical_path_seconds\": %s,\n"
            name domains (jfloat p.critical_path);
          j "     \"domains_wall_seconds\": %s, \"speedup\": %s, \"wall_speedup\": %s,\n"
            (jfloat p.domains_wall) (jfloat p.speedup) (jfloat p.wall_speedup);
          j "     \"packets_per_second\": %s, \"load_imbalance\": %s, \"hw_hit_rate\": %s,\n"
            (jfloat p.merged_pps) (jfloat p.imbalance) (jfloat p.hit_rate);
          j "     \"domains_match_sequential_mode\": %b}%s\n" p.matches_sequential_mode
            (if !row = n_rows then "" else ",");
        )
        domain_counts)
    backends;
  j "  ],\n";
  (* Hierarchy sweep: every named preset end-to-end on the same trace, with
     the per-level hit-rate breakdown (where in the hierarchy packets are
     absorbed). *)
  say "  [hierarchies] preset sweep (%s)" (String.concat ", " Datapath.preset_names);
  j "  \"hierarchies\": [\n";
  let n_presets = List.length Datapath.preset_names in
  List.iteri
    (fun pi name ->
      let cfg =
        Option.get
          (Datapath.preset ~gf:scaled_gf ~mf_capacity:(scaled 32_768) name)
      in
      let r = run_sequential cfg pipeline trace in
      say "  [hier] %-10s %.2fs, %.0f pps, hw hit %.2f%%" name r.wall r.pps
        (100.0 *. Metrics.hw_hit_rate r.metrics);
      Format.printf "%a%!" Metrics.pp_levels r.metrics;
      j "    {\"name\": \"%s\", \"wall_seconds\": %s, \"packets_per_second\": %s,\n"
        name (jfloat r.wall) (jfloat r.pps);
      j "     \"hw_hit_rate\": %s, \"slowpaths\": %d, \"levels\": [\n"
        (jfloat (Metrics.hw_hit_rate r.metrics))
        r.metrics.Metrics.slowpaths;
      let levels = Metrics.levels r.metrics in
      List.iteri
        (fun li (l : Metrics.level) ->
          j "      {\"name\": \"%s\", \"hits\": %d, \"misses\": %d, \"hit_rate\": %s, \
             \"installs\": %d, \"evictions\": %d, \"occupancy_peak\": %d}%s\n"
            l.Metrics.level_name l.Metrics.hits l.Metrics.misses
            (jfloat (Metrics.level_hit_rate l))
            l.Metrics.installs l.Metrics.evictions l.Metrics.occupancy_peak
            (if li = List.length levels - 1 then "" else ","))
        levels;
      j "    ]}%s\n" (if pi = n_presets - 1 then "" else ","))
    Datapath.preset_names;
  j "  ],\n";
  say "  [micro] hot-path A/B (old/new time ratio, >1 = faster now)";
  let m_mask = micro_mask_apply () in
  let m_commit = micro_commit_apply () in
  let m_tbl = micro_flow_table () in
  say "  [micro] mask_apply %.2fx, commit_apply %.2fx, flow_hashtbl %.2fx" m_mask
    m_commit m_tbl;
  j "  \"sequential_path_micro_speedups\": {\n";
  j "    \"mask_apply\": %s,\n" (jfloat m_mask);
  j "    \"commit_apply\": %s,\n" (jfloat m_commit);
  j "    \"flow_hashtbl_lookup\": %s\n" (jfloat m_tbl);
  j "  },\n";
  (* Telemetry overhead: the gigaflow sequential replay again, with the full
     telemetry stack on (registry + time-series sampler + flight recorder),
     against the telemetry-off run.  The instrumented run must produce
     identical metrics — telemetry observes, never perturbs.  Both sides are
     timed by [paired_overhead]: interleaved pairs on CPU time, median of
     the per-pair ratios. *)
  say "  [telemetry] instrumented gigaflow replay (overhead vs telemetry-off)";
  let full_tel_config =
    {
      Gf_telemetry.Telemetry.sample_every = 10_000;
      event_capacity = 4096;
      event_sample_every = 16;
      trace_sample_every = 0;
    }
  in
  let base_metrics, (tm, tel), base_cpu, tel_cpu, overhead_pct =
    paired_overhead
      (fun () ->
        Datapath.run
          (Datapath.create gf_cfg (Gf_pipeline.Pipeline.copy pipeline))
          trace)
      (fun () ->
        let tel = Gf_telemetry.Telemetry.create ~config:full_tel_config () in
        let dp =
          Datapath.create ~telemetry:tel gf_cfg
            (Gf_pipeline.Pipeline.copy pipeline)
        in
        (Datapath.run dp trace, tel))
  in
  let tel_pps = float_of_int tm.Metrics.packets /. tel_cpu in
  let base_pps = float_of_int base_metrics.Metrics.packets /. base_cpu in
  let n_samples = List.length (Gf_telemetry.Telemetry.samples tel) in
  let n_events = List.length (Gf_telemetry.Telemetry.events tel) in
  let matches = counters tm = counters base_metrics in
  say
    "  [telemetry] %.2fs cpu, %.0f pps (off: %.0f pps, overhead %.1f%%), %d \
     samples, %d events, metrics match: %b"
    tel_cpu tel_pps base_pps overhead_pct n_samples n_events matches;
  if !telemetry_out <> "" then begin
    let oc = open_out !telemetry_out in
    Gf_telemetry.Telemetry.write_jsonl oc tel;
    close_out oc;
    say "  [telemetry] wrote %s" !telemetry_out
  end;
  j "  \"telemetry\": {\"cpu_seconds\": %s, \"packets_per_second\": %s,\n"
    (jfloat tel_cpu) (jfloat tel_pps);
  j "   \"baseline_cpu_seconds\": %s, \"baseline_pps\": %s, \"overhead_pct\": %s,\n"
    (jfloat base_cpu) (jfloat base_pps) (jfloat overhead_pct);
  j "   \"samples\": %d, \"events\": %d, \"matches_baseline_metrics\": %b},\n"
    n_samples n_events matches;
  (* Streaming engine: the batched push-based datapath (SPSC rings into
     long-lived worker domains, per-flow memo replay, per-batch telemetry
     and expiry amortisation) against the per-packet hierarchy walker, on a
     steady-state Zipf stream — the regime where a real vSwitch datapath
     spends its life and where per-packet dispatch overhead dominates.
     Each timed run gets a compacted heap and best-of-2 (allocator state
     left behind by earlier bench sections otherwise contaminates walls). *)
  say "  [streaming] batched engine vs per-packet walker (steady Zipf stream)";
  let stream_packets = scaled 8_000_000 in
  let stream_batch = 1024 and stream_ring = 16 in
  let stream_w =
    Pipebench.make ~combos:(scaled 26_212) ~unique_flows:5000 ~duration:10.0
      ~info ~locality:Ruleset.High ~seed:7 ()
  in
  let timed_best ?(repeats = 2) f =
    let best = ref infinity and result = ref None in
    for _ = 1 to repeats do
      Gc.compact ();
      let t0 = now () in
      let r = f () in
      let w = now () -. t0 in
      if w < !best then begin
        best := w;
        result := Some r
      end
    done;
    (Option.get !result, !best)
  in
  let stream_regimes =
    (* Megaflow's exact-match regime wants the full 5k-flow working set
       (stresses the memo table); Gigaflow's wants a tighter, hotter one. *)
    [
      ("emc_mf_sw", Datapath.emc_mf_sw (), 5000, 1.05);
      ("emc_gf_sw", Datapath.emc_gf_sw (), 2000, 1.2);
    ]
  in
  let stream_domains = [ 1; 2; 4 ] in
  j "  \"streaming\": {\n";
  j "    \"meta\": {\"packets\": %d, \"batch_size\": %d, \"ring_depth\": %d,\n"
    stream_packets stream_batch stream_ring;
  j "             \"unique_flows\": 5000, \"seed\": 7},\n";
  j "    \"rows\": [\n";
  let stream_pipeline = Pipebench.pipeline stream_w in
  let straces = ref [] in
  List.iteri
    (fun ri (preset, cfg, nflows, zipf_s) ->
      let flows = Array.sub stream_w.Pipebench.flows 0 nflows in
      let strace =
        Trace.trace_of_stream
          (Trace.steady ~duration:10.0 ~zipf_s ~packets:stream_packets ~seed:7
             ~flows ())
      in
      let wm, w_wall =
        timed_best (fun () ->
            Datapath.run
              (Datapath.create cfg (Gf_pipeline.Pipeline.copy stream_pipeline))
              strace)
      in
      let w_pps = float_of_int wm.Metrics.packets /. w_wall in
      say "  [streaming] %s walker: %.2fs, %.0f pps" preset w_wall w_pps;
      straces := (preset, strace) :: !straces;
      j "      {\"preset\": \"%s\", \"zipf_s\": %s, \"flows\": %d,\n" preset
        (jfloat zipf_s) nflows;
      j "       \"walker_wall_seconds\": %s, \"walker_pps\": %s, \"engine\": [\n"
        (jfloat w_wall) (jfloat w_pps);
      List.iteri
        (fun di domains ->
          (* The determinism reference shares the engine's flow sharding:
             Sequential mode at the same domain count. *)
          let seq_ref =
            Parallel.replay ~mode:`Sequential ~domains ~cfg stream_pipeline
              strace
          in
          let r, e_wall =
            timed_best (fun () ->
                Engine.replay ~batch_size:stream_batch ~domains
                  ~ring_depth:stream_ring ~cfg stream_pipeline
                  (Trace.stream_of_trace strace))
          in
          let m = r.Parallel.merged in
          let e_pps = float_of_int m.Metrics.packets /. e_wall in
          let speedup = w_wall /. e_wall in
          let matches = counters m = counters seq_ref.Parallel.merged in
          say
            "  [streaming] %s engine d=%d: %.2fs, %.0f pps, %.2fx vs walker, \
             matches sequential: %b"
            preset domains e_wall e_pps speedup matches;
          j "        {\"domains\": %d, \"wall_seconds\": %s, \
             \"packets_per_second\": %s,\n"
            domains (jfloat e_wall) (jfloat e_pps);
          j "         \"speedup_vs_walker\": %s, \"wall_speedup\": %s, \
             \"critical_path_seconds\": %s,\n"
            (jfloat speedup) (jfloat speedup)
            (jfloat r.Parallel.critical_path_seconds);
          j "         \"matches_sequential\": %b}%s\n" matches
            (if di = List.length stream_domains - 1 then "" else ","))
        stream_domains;
      j "      ]}%s\n" (if ri = List.length stream_regimes - 1 then "" else ","))
    stream_regimes;
  j "    ],\n";
  (* Per-batch telemetry amortisation: the walker checks the sampling
     cadence per packet; the engine once per batch.  Same stream, same
     telemetry config — the overhead each pays over its own uninstrumented
     run is the before/after of the pull-model telemetry claim.  Both
     sides of each comparison go through [paired_overhead] (interleaved
     pairs on CPU time, median of per-pair ratios): a baseline borrowed
     from the rows section above, or a sequential wall-clock median, was
     measured against a different allocator state or a drifted clock and
     regularly produced double-digit phantom "overhead" in either
     direction. *)
  say "  [streaming] telemetry amortisation (per-packet vs per-batch cadence)";
  let tel_config =
    {
      Gf_telemetry.Telemetry.sample_every = 10_000;
      event_capacity = 4096;
      event_sample_every = 0;
      trace_sample_every = 0;
    }
  in
  j "    \"telemetry_amortisation\": [\n";
  List.iteri
    (fun ri (preset, cfg, _, _) ->
      let strace = List.assoc preset !straces in
      let _, _, walker_plain_cpu, walker_tel_cpu, walker_overhead_pct =
        paired_overhead
          (fun () ->
            Datapath.run
              (Datapath.create cfg (Gf_pipeline.Pipeline.copy stream_pipeline))
              strace)
          (fun () ->
            Datapath.run
              (Datapath.create
                 ~telemetry:(Gf_telemetry.Telemetry.create ~config:tel_config ())
                 cfg
                 (Gf_pipeline.Pipeline.copy stream_pipeline))
              strace)
      in
      (* The engine replays the stream several times per timed side (its
         single pass is ~10x shorter than the walker's, which leaves a
         sub-percent effect under the per-pair CPU jitter) and gets more
         pairs to median over. *)
      let engine_reps = 3 in
      let _, _, engine_plain_cpu, engine_tel_cpu, engine_overhead_pct =
        paired_overhead ~pairs:9
          (fun () ->
            for _ = 2 to engine_reps do
              ignore
                (Engine.replay ~batch_size:stream_batch ~domains:1 ~cfg
                   stream_pipeline
                   (Trace.stream_of_trace strace))
            done;
            Engine.replay ~batch_size:stream_batch ~domains:1 ~cfg
              stream_pipeline
              (Trace.stream_of_trace strace))
          (fun () ->
            for _ = 2 to engine_reps do
              ignore
                (Engine.replay ~telemetry:tel_config ~batch_size:stream_batch
                   ~domains:1 ~cfg stream_pipeline
                   (Trace.stream_of_trace strace))
            done;
            Engine.replay ~telemetry:tel_config ~batch_size:stream_batch
              ~domains:1 ~cfg stream_pipeline
              (Trace.stream_of_trace strace))
      in
      say
        "  [streaming] %s telemetry overhead: walker %.1f%% (%.2fs -> %.2fs \
         cpu), engine %.1f%% (%.2fs -> %.2fs cpu)"
        preset walker_overhead_pct walker_plain_cpu walker_tel_cpu
        engine_overhead_pct engine_plain_cpu engine_tel_cpu;
      j "      {\"preset\": \"%s\",\n" preset;
      j "       \"walker_cpu_seconds\": %s, \"walker_telemetry_cpu_seconds\": %s,\n"
        (jfloat walker_plain_cpu) (jfloat walker_tel_cpu);
      j "       \"engine_cpu_seconds\": %s, \"engine_telemetry_cpu_seconds\": %s,\n"
        (jfloat engine_plain_cpu) (jfloat engine_tel_cpu);
      j "       \"walker_overhead_pct\": %s, \"engine_overhead_pct\": %s}%s\n"
        (jfloat walker_overhead_pct) (jfloat engine_overhead_pct)
        (if ri = List.length stream_regimes - 1 then "" else ","))
    stream_regimes;
  j "    ],\n";
  (* Traversal-tracer overhead: spans at --sample 1/256 plus the
     always-on miss-cause census, against the same telemetry config with
     tracing off.  The per-packet cost when not sampled is one countdown
     decrement plus (on a miss) one census increment, so the figure must
     sit inside the paired-CPU noise gate on both presets. *)
  say "  [streaming] traversal tracer overhead (--sample 1/256)";
  let trace_config =
    { tel_config with Gf_telemetry.Telemetry.trace_sample_every = 256 }
  in
  j "    \"profile_overhead\": [\n";
  List.iteri
    (fun ri (preset, cfg, _, _) ->
      let strace = List.assoc preset !straces in
      let walker tel () =
        Datapath.run
          (Datapath.create
             ~telemetry:(Gf_telemetry.Telemetry.create ~config:tel ())
             cfg
             (Gf_pipeline.Pipeline.copy stream_pipeline))
          strace
      in
      (* Same repetition hygiene as the amortisation rows: one engine
         pass is too short to resolve a sub-percent effect. *)
      let engine tel () =
        for _ = 2 to 4 do
          ignore
            (Engine.replay ~telemetry:tel ~batch_size:stream_batch ~domains:1
               ~cfg stream_pipeline
               (Trace.stream_of_trace strace))
        done;
        Engine.replay ~telemetry:tel ~batch_size:stream_batch ~domains:1 ~cfg
          stream_pipeline
          (Trace.stream_of_trace strace)
      in
      let _, _, walker_off_cpu, walker_on_cpu, walker_trace_overhead_pct =
        paired_overhead (walker tel_config) (walker trace_config)
      in
      let _, _, engine_off_cpu, engine_on_cpu, engine_trace_overhead_pct =
        paired_overhead ~pairs:9 (engine tel_config) (engine trace_config)
      in
      say
        "  [streaming] %s tracer overhead: walker %.1f%% (%.2fs -> %.2fs \
         cpu), engine %.1f%% (%.2fs -> %.2fs cpu)"
        preset walker_trace_overhead_pct walker_off_cpu walker_on_cpu
        engine_trace_overhead_pct engine_off_cpu engine_on_cpu;
      j "      {\"preset\": \"%s\", \"trace_sample_every\": 256,\n" preset;
      j "       \"walker_cpu_seconds\": %s, \"walker_traced_cpu_seconds\": %s,\n"
        (jfloat walker_off_cpu) (jfloat walker_on_cpu);
      j "       \"engine_cpu_seconds\": %s, \"engine_traced_cpu_seconds\": %s,\n"
        (jfloat engine_off_cpu) (jfloat engine_on_cpu);
      j "       \"walker_trace_overhead_pct\": %s, \
         \"engine_trace_overhead_pct\": %s}%s\n"
        (jfloat walker_trace_overhead_pct) (jfloat engine_trace_overhead_pct)
        (if ri = List.length stream_regimes - 1 then "" else ","))
    stream_regimes;
  j "    ]\n";
  j "  },\n";
  (* Capacity sweep: hit rate vs capacity, Megaflow vs Gigaflow, under each
     replacement policy, on a churn trace.  The rotating flow population keeps
     every fixed capacity under sustained install pressure — the regime where
     the choice of eviction policy shows up in the hit rate. *)
  say "  [capacity] churn sweep: hit rate vs capacity per eviction policy";
  let churn_w =
    Pipebench.make_churn ~combos:(scaled 131_072) ~unique_flows:(scaled 100_000)
      ~active:(scaled 2048) ~packets_per_epoch:(scaled 8192) ~info
      ~locality:Ruleset.High ~seed:!seed ()
  in
  let churn_pipeline = Pipebench.pipeline churn_w in
  let churn_trace = churn_w.Pipebench.trace in
  say "  [capacity] churn trace: %d packets, active window %d"
    (Trace.packet_count churn_trace) (scaled 2048);
  let caps = [ scaled 256; scaled 512; scaled 1024; scaled 2048 ] in
  let policies = Gf_cache.Evict.all in
  j "  \"capacity_sweep\": {\n";
  j "    \"meta\": {\"trace\": \"churn\", \"packets\": %d, \"active_flows\": %d,\n"
    (Trace.packet_count churn_trace) (scaled 2048);
  j "             \"turnover\": 0.25, \"capacities\": [%s]},\n"
    (String.concat ", " (List.map string_of_int caps));
  j "    \"rows\": [\n";
  let n_rows = 2 * List.length caps * List.length policies in
  let row = ref 0 in
  List.iter
    (fun (backend, preset_name) ->
      List.iter
        (fun cap ->
          List.iter
            (fun policy ->
              let cfg =
                Option.get
                  (Datapath.preset
                     ~gf:(Gf_core.Config.v ~tables:4 ~table_capacity:cap ())
                     ~mf_capacity:(4 * cap) ~policy preset_name)
              in
              let r = run_sequential cfg churn_pipeline churn_trace in
              say "  [capacity] %-8s cap %5d %-8s: hit %.2f%%, pressure evictions %d"
                backend cap
                (Gf_cache.Evict.to_string policy)
                (100.0 *. Metrics.hw_hit_rate r.metrics)
                r.metrics.Metrics.hw_pressure_evictions;
              incr row;
              j "      {\"backend\": \"%s\", \"table_capacity\": %d, \"policy\": \"%s\",\n"
                backend cap
                (Gf_cache.Evict.to_string policy);
              j "       \"hw_hit_rate\": %s, \"pressure_evictions\": %d, \"slowpaths\": %d}%s\n"
                (jfloat (Metrics.hw_hit_rate r.metrics))
                r.metrics.Metrics.hw_pressure_evictions r.metrics.Metrics.slowpaths
                (if !row = n_rows then "" else ","))
            policies)
        caps)
    [ ("megaflow", "mf_sw"); ("gigaflow", "gf_sw") ];
  j "    ]\n";
  j "  },\n";
  (* Skew-aware admission: constrained hardware capacity on elephant/mice
     and drifting-skew traces — heavy-hitter admission [mf_sw_hh/gf_sw_hh]
     vs install-on-miss with the Reject pressure policy [mf_sw/gf_sw] vs
     install-on-miss with LRU, per backend.  The geometries are
     deliberately tight (slots << elephants + mice churn): with room to
     spare install-on-miss also captures the elephants eventually and
     admission has nothing left to earn. *)
  say "  [offload] heavy-hitter admission vs reject/LRU under constrained HW";
  let ele_w =
    Pipebench.make_elephant ~combos:8192 ~unique_flows:20_000 ~info
      ~locality:Ruleset.High ~seed:!seed ()
  in
  let drift_w =
    Pipebench.make_drift ~combos:8192 ~unique_flows:20_000 ~info
      ~locality:Ruleset.High ~seed:!seed ()
  in
  let offload_geoms =
    [
      ("megaflow", "elephant", 1, 16, ele_w);
      ("megaflow", "drift", 1, 64, drift_w);
      ("gigaflow", "elephant", 2, 8, ele_w);
      ("gigaflow", "drift", 2, 8, drift_w);
    ]
  in
  let offload_run cfg pipeline trace =
    (* End-to-end pps here is the *modeled* datapath rate — the reciprocal
       of simulated mean per-packet latency — which is deterministic in
       the seed.  Simulator wall clock (how fast OCaml replays 32k
       packets) is kept as reference only: at these trace sizes it is
       scheduler noise, and it measures the simulator, not the system
       under study.  Timing hygiene as in the streaming section. *)
    let metrics, wall =
      timed_best ~repeats:3 (fun () ->
          Datapath.run
            (Datapath.create cfg (Gf_pipeline.Pipeline.copy pipeline))
            trace)
    in
    let modeled_pps = 1e6 /. Metrics.mean_latency_us metrics in
    (metrics, modeled_pps, float_of_int metrics.Metrics.packets /. wall)
  in
  j "  \"offload\": {\n";
  j "    \"meta\": {\"elephants\": 16, \"elephant_share\": 0.8, \"drift_epochs\": 8,\n";
  j "             \"drift\": 64, \"unique_flows\": 20000, \"seed\": %d},\n" !seed;
  j "    \"rows\": [\n";
  let n_rows = 3 * List.length offload_geoms in
  let row = ref 0 in
  List.iter
    (fun (backend, tracename, tables, cap, w) ->
      let off_pipeline = Pipebench.pipeline w in
      let off_trace = w.Pipebench.trace in
      let gf = Gf_core.Config.v ~tables ~table_capacity:cap () in
      let mk name =
        Option.get (Datapath.preset ~gf ~mf_capacity:(tables * cap) name)
      in
      let hh_name, base_name =
        if backend = "megaflow" then ("mf_sw_hh", "mf_sw") else ("gf_sw_hh", "gf_sw")
      in
      List.iter
        (fun (variant, cfg) ->
          let m, modeled_pps, wall_pps = offload_run cfg off_pipeline off_trace in
          let seq_ref =
            Parallel.replay ~mode:`Sequential ~domains:2 ~cfg off_pipeline off_trace
          in
          let par =
            Parallel.replay ~mode:`Domains ~domains:2 ~cfg off_pipeline off_trace
          in
          let matches = counters par.Parallel.merged = counters seq_ref.Parallel.merged in
          say
            "  [offload] %-8s %-8s %dx%-3d %-7s: hw hit %6.2f%%, %.0f pps \
             (modeled), mean lat %.2f us, deferred %d, demoted %d, merged ok: %b"
            backend tracename tables cap variant
            (100.0 *. Metrics.hw_hit_rate m)
            modeled_pps (Metrics.mean_latency_us m) m.Metrics.hw_deferred
            m.Metrics.hw_demotions matches;
          incr row;
          j "      {\"backend\": \"%s\", \"trace\": \"%s\", \"tables\": %d, \
             \"table_capacity\": %d,\n"
            backend tracename tables cap;
          j "       \"admission\": \"%s\", \"policy\": \"%s\", \"hw_hit_rate\": %s,\n"
            variant
            (Gf_offload.Heavy_hitter.policy_to_string cfg.Datapath.admission)
            (jfloat (Metrics.hw_hit_rate m));
          j "       \"modeled_pps\": %s, \"sim_wall_pps\": %s, \
             \"mean_latency_us\": %s, \"slowpaths\": %d,\n"
            (jfloat modeled_pps) (jfloat wall_pps)
            (jfloat (Metrics.mean_latency_us m))
            m.Metrics.slowpaths;
          j "       \"hw_deferred\": %d, \"hw_demotions\": %d, \
             \"matches_sequential\": %b}%s\n"
            m.Metrics.hw_deferred m.Metrics.hw_demotions matches
            (if !row = n_rows then "" else ","))
        [
          ("hh", mk hh_name);
          ("reject", mk base_name);
          ("lru", Datapath.with_policy Gf_cache.Evict.Lru (mk base_name));
        ])
    offload_geoms;
  j "    ]\n";
  j "  },\n";
  (* Adaptive SLO control: the drifting-skew loadtest where the frozen
     Reject NIC decays below the hit-rate floor while the controller —
     observing each window's SLO verdict plus the miss-cause census —
     flips the NIC to LRU at warmup close and keeps every measured
     window clean.  Same scenario as the check.sh control smoke and the
     EXPERIMENTS.md table; windows here are deterministic in the seed,
     not wall-clock timed. *)
  say "  [control] adaptive SLO controller vs static config under drift";
  let module Loadtest = Gf_engine.Loadtest in
  let module Controller = Gf_control.Controller in
  let module Telemetry = Gf_telemetry.Telemetry in
  let ctl_w =
    Pipebench.make ~combos:8192 ~unique_flows:20_000 ~info
      ~locality:Ruleset.High ~seed:!seed ()
  in
  let ctl_warmup = 20_000 and ctl_window = 20_000 and ctl_windows = 3 in
  let ctl_slo = { Loadtest.default_slo with Loadtest.slo_p50_us = 50.0 } in
  let ctl_cfg =
    Datapath.gf_sw_hh ~gf:(Gf_core.Config.v ~tables:2 ~table_capacity:128 ()) ()
  in
  let ctl_run controller =
    let packets = ctl_warmup + (ctl_windows * ctl_window) in
    let stream =
      Trace.stream_of_trace
        (Trace.drifting_skew ~epochs:6 ~zipf_s:1.2 ~drift:128
           ~packets_per_epoch:((packets + 5) / 6) ~seed:(!seed + 1)
           ~flows:ctl_w.Pipebench.flows ())
    in
    let c = Option.map (fun () -> Controller.create ()) controller in
    let telemetry =
      Option.map
        (fun _ ->
          Telemetry.create
            ~config:
              {
                Telemetry.default_config with
                sample_every = 0;
                event_sample_every = 0;
                trace_sample_every = 1 lsl 30;
              }
            ())
        c
    in
    let r =
      Loadtest.run ?telemetry
        ?controller:(Option.map (fun c dp wr -> Controller.on_window c dp wr) c)
        ~warmup:ctl_warmup ~window:ctl_window ~windows:ctl_windows ~rate:1e5
        ~slo:ctl_slo ctl_cfg (Pipebench.pipeline ctl_w) stream
    in
    (r, match c with None -> [] | Some c -> Controller.actions c)
  in
  let ctl_static, _ = ctl_run None in
  let ctl_driven, ctl_actions = ctl_run (Some ()) in
  let ctl_json tag (r : Loadtest.report) =
    j "    \"%s\": {\"pass\": %b, \"windows\": [\n" tag r.Loadtest.pass;
    let n = List.length r.Loadtest.windows in
    List.iteri
      (fun i (wr : Loadtest.window) ->
        j "      {\"index\": %d, \"hw_hit_rate\": %s, \"p50_us\": %s, \
           \"drop_rate\": %s, \"violations\": %d}%s\n"
          wr.Loadtest.w_index
          (jfloat wr.Loadtest.w_hw_hit_rate)
          (jfloat wr.Loadtest.w_p50_us)
          (jfloat wr.Loadtest.w_drop_rate)
          (List.length wr.Loadtest.w_violations)
          (if i = n - 1 then "" else ","))
      r.Loadtest.windows;
    j "    ]}"
  in
  say "  [control] static: %s, controlled: %s (%d actions)"
    (if ctl_static.Loadtest.pass then "PASS" else "FAIL")
    (if ctl_driven.Loadtest.pass then "PASS" else "FAIL")
    (List.length ctl_actions);
  List.iter
    (fun (a : Controller.action) ->
      say "  [control]   window %d: %s %s %s -> %s" a.Controller.act_window
        a.Controller.act_knob a.Controller.act_level a.Controller.act_from
        a.Controller.act_to)
    ctl_actions;
  j "  \"control\": {\n";
  j "    \"meta\": {\"trace\": \"drift\", \"epochs\": 6, \"drift\": 128, \
     \"zipf_s\": 1.2, \"rate_pps\": 100000,\n";
  j "             \"warmup\": %d, \"window\": %d, \"windows\": %d, \
     \"slo_p50_us\": 50.0, \"seed\": %d},\n"
    ctl_warmup ctl_window ctl_windows !seed;
  ctl_json "static" ctl_static;
  j ",\n";
  ctl_json "controlled" ctl_driven;
  j ",\n";
  j "    \"actions\": [\n";
  let na = List.length ctl_actions in
  List.iteri
    (fun i (a : Controller.action) ->
      j "      {\"window\": %d, \"knob\": %s, \"level\": %s, \"from\": %s, \
         \"to\": %s}%s\n"
        a.Controller.act_window
        (Gf_util.Json.to_string (Gf_util.Json.Str a.Controller.act_knob))
        (Gf_util.Json.to_string (Gf_util.Json.Str a.Controller.act_level))
        (Gf_util.Json.to_string (Gf_util.Json.Str a.Controller.act_from))
        (Gf_util.Json.to_string (Gf_util.Json.Str a.Controller.act_to))
        (if i = na - 1 then "" else ","))
    ctl_actions;
  j "    ]\n";
  j "  },\n";
  j "  \"total_bench_seconds\": %s\n" (jfloat (now () -. t_start));
  j "}\n";
  let oc = open_out !out in
  output_string oc (Buffer.contents buf);
  close_out oc;
  say "Wrote %s (total %.0fs)" !out (now () -. t_start)
