(* Fig. 18: dynamically arriving workloads.  Two 50K-flow workloads over the
   same PSC ruleset; the second arrives at t = 5 min.  Megaflow's hit rate
   collapses when the working set doubles; Gigaflow's coverage absorbs it. *)

open Common
module Ruleset = Gf_workload.Ruleset
module Pipebench = Gf_workload.Pipebench

let run () =
  section "Fig. 18: hit rate under dynamically arriving workloads (PSC, high)";
  let info = info "PSC" in
  let half = max 1 (unique_flows () / 2) in
  let ruleset =
    Ruleset.build ~combos:(combos ()) ~info ~seed:!seed ()
  in
  (* The two workloads draw from disjoint halves of the rule space: the
     arrival brings genuinely new flows, not more traffic to cached ones. *)
  let nc = Ruleset.combo_count ruleset in
  let flows1 =
    Ruleset.sample_flows ruleset
      ~combo_filter:(fun i -> i < nc / 2)
      ~seed:(!seed lxor 0xA1) ~locality:Ruleset.High ~n:half
  in
  let flows2 =
    Ruleset.sample_flows ruleset
      ~combo_filter:(fun i -> i >= nc / 2)
      ~seed:(!seed lxor 0xB2) ~locality:Ruleset.High ~n:half
  in
  let phase = 300.0 (* 5 minutes *) in
  (* Workload 1 is active for the whole experiment; workload 2 arrives at
     t = 5 min and stays — the paper's steady-state then step change. *)
  (* Long-lived flows keep the working set resident: pre-arrival the first
     workload roughly fills Megaflow; the arrival doubles demand. *)
  let t1 =
    Gf_workload.Trace.generate ~duration:(2.0 *. phase) ~mean_flow_size:32.0
      ~start_spread:0.9 ~lifetime_frac:0.5 ~seed:(!seed lxor 1) ~flows:flows1 ()
  in
  let t2 =
    Gf_workload.Trace.generate ~duration:phase ~mean_flow_size:32.0
      ~start_spread:0.9 ~lifetime_frac:0.5 ~seed:(!seed lxor 2) ~flows:flows2 ()
  in
  let trace = Gf_workload.Trace.concat t1 t2 ~offset:phase in
  let bucket = 30.0 in
  let buckets = int_of_float ((2.0 *. phase) /. bucket) in
  let series cfg =
    let dp = Datapath.create cfg (Ruleset.pipeline ruleset) in
    let hits = Array.make buckets 0 and totals = Array.make buckets 0 in
    let _ =
      Datapath.run
        ~on_packet:(fun pkt outcome _ ->
          let b = min (buckets - 1) (int_of_float (pkt.Gf_workload.Trace.time /. bucket)) in
          totals.(b) <- totals.(b) + 1;
          match outcome with
          | Datapath.Hw_hit -> hits.(b) <- hits.(b) + 1
          | Datapath.Sw_hit | Datapath.Slowpath -> ())
        dp trace
    in
    Array.init buckets (fun b ->
        if totals.(b) = 0 then nan else float_of_int hits.(b) /. float_of_int totals.(b))
  in
  say "  [fig18] megaflow timeline ...";
  let mf =
    series (Datapath.without_software (Datapath.with_max_idle 20.0 (mf_config ())))
  in
  say "  [fig18] gigaflow timeline ...";
  let gf =
    series (Datapath.without_software (Datapath.with_max_idle 20.0 (gf_config ())))
  in
  let t =
    Tablefmt.create
      ~title:
        (Printf.sprintf
           "Hit rate over time; second %d-flow workload arrives at t=%.0fs" half phase)
      [ "t (s)"; "Megaflow"; "Gigaflow" ]
  in
  for b = 0 to buckets - 1 do
    Tablefmt.add_row t
      [
        Printf.sprintf "%.0f" (float_of_int b *. bucket);
        (if Float.is_nan mf.(b) then "-" else Tablefmt.fmt_pct ~dp:1 mf.(b));
        (if Float.is_nan gf.(b) then "-" else Tablefmt.fmt_pct ~dp:1 gf.(b));
      ]
  done;
  Tablefmt.print t;
  (* Steady-state before vs after the arrival. *)
  let mean a lo hi =
    let xs = ref [] in
    for b = lo to hi do
      if not (Float.is_nan a.(b)) then xs := a.(b) :: !xs
    done;
    List.fold_left ( +. ) 0.0 !xs /. float_of_int (max 1 (List.length !xs))
  in
  let mid = buckets / 2 in
  note "Megaflow: %.1f%% before -> %.1f%% after the arrival"
    (100.0 *. mean mf (mid / 2) (mid - 1))
    (100.0 *. mean mf (mid + mid / 4) (buckets - 1));
  note "Gigaflow: %.1f%% before -> %.1f%% after"
    (100.0 *. mean gf (mid / 2) (mid - 1))
    (100.0 *. mean gf (mid + mid / 4) (buckets - 1));
  note "Paper: Megaflow drops 84%% -> 61%% at the arrival; Gigaflow sustains";
  note "~93%% thanks to its larger covered rule space."
