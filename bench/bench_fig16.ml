(* Fig. 16: partitioning-scheme ablation on OLS — random cuts (RND) vs the
   paper's disjoint partitioning (DP) vs the ideal 1-1 mapping (a SmartNIC
   table per vSwitch table). *)

open Common
module Ruleset = Gf_workload.Ruleset
module Partitioner = Gf_core.Partitioner

let run () =
  section "Fig. 16: partitioning schemes on OLS (RND vs DP vs 1-1)";
  let w = workload "OLS" Ruleset.High in
  let mf = headline "OLS" Ruleset.High "megaflow" in
  let schemes =
    [
      ("RND", Partitioner.Random, 4, scaled 8192);
      ("DP", Partitioner.Disjoint, 4, scaled 8192);
      (* The ideal mapping needs as many SmartNIC tables as the longest
         traversal; capacity is uncapped so the comparison is about entry
         consumption. *)
      ("1-1", Partitioner.One_to_one, 18, scaled 100_000);
    ]
  in
  let t =
    Tablefmt.create ~title:"OLS, high locality; baseline Megaflow (32K)"
      [ "Scheme"; "Miss reduction vs MF"; "Cache entries"; "Entries vs DP" ]
  in
  let dp_entries = ref 0 in
  let rows =
    List.map
      (fun (name, scheme, tables, capacity) ->
        say "  [fig16] scheme %s ..." name;
        let cfg =
          Datapath.without_software
            (Datapath.emc_gf_sw
               ~gf:(Gf_core.Config.v ~tables ~table_capacity:capacity ~scheme ())
               ())
        in
        let r = run_datapath cfg w in
        if name = "DP" then dp_entries := r.peak_entries;
        (name, r))
      schemes
  in
  List.iter
    (fun (name, r) ->
      let reduction =
        1.0
        -. float_of_int (Metrics.hw_miss_count r.metrics)
           /. float_of_int (max 1 (Metrics.hw_miss_count mf.metrics))
      in
      Tablefmt.add_row t
        [
          name;
          Tablefmt.fmt_pct ~dp:1 reduction;
          Tablefmt.fmt_int r.peak_entries;
          Tablefmt.fmt_times ~dp:2
            (float_of_int r.peak_entries /. float_of_int (max 1 !dp_entries));
        ])
    rows;
  Tablefmt.print t;
  note "Paper: RND cuts misses 11%% while filling the cache; DP cuts 89%%";
  note "with 31%% of the entries; the ideal 1-1 mapping reaches 94%% but";
  note "consumes 2.8x more entries than DP."
