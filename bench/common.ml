(* Shared infrastructure for the benchmark harness.

   Every paper table/figure is regenerated from end-to-end datapath runs.
   Workloads and runs are memoized: Figs. 8-13 and Table 2 all read the same
   ten headline runs (5 pipelines x 2 localities per backend). *)

module Catalog = Gf_pipelines.Catalog
module Pipebench = Gf_workload.Pipebench
module Ruleset = Gf_workload.Ruleset
module Trace = Gf_workload.Trace
module Datapath = Gf_sim.Datapath
module Metrics = Gf_sim.Metrics
module Gigaflow = Gf_core.Gigaflow
module Ltm_cache = Gf_core.Ltm_cache
module Coverage = Gf_core.Coverage
module Pipeline = Gf_pipeline.Pipeline
module Tablefmt = Gf_util.Tablefmt

let seed = ref 42
let scale = ref 1.0
let quiet_build = ref false

let scaled n = max 1 (int_of_float (float_of_int n *. !scale))

(* Paper-scale workload parameters. *)
let combos () = scaled 131_072
let unique_flows () = scaled 100_000
let duration = 60.0

let pipelines = [ "OFD"; "PSC"; "OLS"; "ANT"; "OTL" ]
let localities = [ Ruleset.High; Ruleset.Low ]

let info code = Option.get (Catalog.find code)

let say fmt = Printf.printf (fmt ^^ "\n%!")

(* ------------------------- workload cache ------------------------- *)

let workloads : (string * Ruleset.locality, Pipebench.workload) Hashtbl.t =
  Hashtbl.create 16

let workload code locality =
  let key = (code, locality) in
  match Hashtbl.find_opt workloads key with
  | Some w -> w
  | None ->
      if not !quiet_build then
        say "  [build] workload %s/%s (%d combos, %d flows)" code
          (Ruleset.locality_name locality) (combos ()) (unique_flows ());
      let w =
        Pipebench.make ~combos:(combos ()) ~unique_flows:(unique_flows ()) ~duration
          ~info:(info code) ~locality ~seed:!seed ()
      in
      Hashtbl.replace workloads key w;
      w

(* --------------------------- run results --------------------------- *)

type run = {
  metrics : Metrics.t;
  peak_entries : int;
  max_coverage : float;  (** Max over periodic samples; = entries for MF. *)
  max_sharing : float;  (** Mean shares per LTM entry at the richest sample. *)
  flow_cycles : (int, int) Hashtbl.t;  (** Slowpath cycles per flow id. *)
  wall_seconds : float;
}

let run_datapath ?(sample_every = 50_000) cfg w =
  let pipeline = Pipebench.pipeline w in
  let dp = Datapath.create cfg pipeline in
  let entry_tag = Pipeline.entry pipeline in
  let peak = ref 0 and max_cov = ref 0.0 and max_share = ref 0.0 in
  let count = ref 0 in
  let flow_cycles = Hashtbl.create 1024 in
  let sample () =
    let occ = Datapath.hw_occupancy dp in
    if occ > !peak then peak := occ;
    match Datapath.gigaflow dp with
    | Some gf ->
        let cache = Gigaflow.cache gf in
        let cov = Coverage.count cache ~entry_tag in
        if cov > !max_cov then max_cov := cov;
        let share = Ltm_cache.mean_sharing cache in
        if (not (Float.is_nan share)) && share > !max_share then max_share := share
    | None -> if float_of_int occ > !max_cov then max_cov := float_of_int occ
  in
  let t0 = Unix.gettimeofday () in
  let metrics =
    Datapath.run
      ~on_packet:(fun _ _ _ ->
        incr count;
        if !count mod sample_every = 0 then sample ())
      ~miss_sink:(fun ~flow_id ~cycles ->
        Hashtbl.replace flow_cycles flow_id
          (cycles + Option.value ~default:0 (Hashtbl.find_opt flow_cycles flow_id)))
      dp w.Pipebench.trace
  in
  sample ();
  {
    metrics;
    peak_entries = !peak;
    max_coverage = !max_cov;
    max_sharing = !max_share;
    flow_cycles;
    wall_seconds = Unix.gettimeofday () -. t0;
  }

(* Headline configurations: the paper's Megaflow (32K) vs Gigaflow (4x8K),
   both scaled alongside the workload so pressure ratios are preserved. *)
let mf_config () = Datapath.emc_mf_sw ~mf_capacity:(scaled 32_768) ()

let scaled_gf () = Gf_core.Config.v ~tables:4 ~table_capacity:(scaled 8192) ()
let gf_config () = Datapath.emc_gf_sw ~gf:(scaled_gf ()) ()

let headline_runs : (string * Ruleset.locality * string, run) Hashtbl.t =
  Hashtbl.create 32

(* [backend] is "megaflow" or "gigaflow". *)
let headline code locality backend =
  let key = (code, locality, backend) in
  match Hashtbl.find_opt headline_runs key with
  | Some r -> r
  | None ->
      let w = workload code locality in
      let cfg = if backend = "megaflow" then mf_config () else gf_config () in
      say "  [run] %s/%s/%s ..." code (Ruleset.locality_name locality) backend;
      let r = run_datapath cfg w in
      say "  [run] %s/%s/%s: hit %.2f%%, %.0fs" code
        (Ruleset.locality_name locality) backend
        (100.0 *. Metrics.hw_hit_rate r.metrics)
        r.wall_seconds;
      Hashtbl.replace headline_runs key r;
      r

let locality_label = function Ruleset.High -> "high" | Ruleset.Low -> "low"

(* ------------------------------ output ------------------------------ *)

let section title =
  say "";
  say "%s" (String.make 78 '=');
  say "%s" title;
  say "%s" (String.make 78 '=')

let note fmt = Printf.printf ("  " ^^ fmt ^^ "\n%!")
