(* Fig. 17: software cache search algorithms — Tuple Space Search vs the
   NuevoMatch-style learned classifier — under both SmartNIC caches (PSC,
   high locality).  Hit/miss volumes are identical (same cache contents);
   only the software search time on the miss path differs. *)

open Common
module Ruleset = Gf_workload.Ruleset

let run () =
  section "Fig. 17: Megaflow/Gigaflow with TSS vs NuevoMatch software search";
  let w = workload "PSC" Ruleset.High in
  let t =
    Tablefmt.create ~title:"PSC, high locality"
      [ "Configuration"; "Hit rate"; "Mean latency (us)" ]
  in
  let cell name cfg =
    say "  [fig17] %s ..." name;
    let r = run_datapath cfg w in
    Tablefmt.add_row t
      [
        name;
        Tablefmt.fmt_pct ~dp:2 (Metrics.hw_hit_rate r.metrics);
        Tablefmt.fmt_float ~dp:2 (Metrics.mean_latency_us r.metrics);
      ];
    Metrics.mean_latency_us r.metrics
  in
  let mf_tss = cell "Megaflow + TSS" (mf_config ()) in
  let mf_nm =
    cell "Megaflow + NM" (Datapath.with_sw_search `Nuevomatch (mf_config ()))
  in
  let gf_tss = cell "Gigaflow + TSS" (gf_config ()) in
  let gf_nm =
    cell "Gigaflow + NM" (Datapath.with_sw_search `Nuevomatch (gf_config ()))
  in
  Tablefmt.print t;
  note "NM over TSS: Megaflow %.1f%%, Gigaflow %.1f%% faster; Gigaflow+TSS is"
    (100.0 *. (1.0 -. (mf_nm /. mf_tss)))
    (100.0 *. (1.0 -. (gf_nm /. gf_tss)));
  note "%.1f%% faster than Megaflow+NM." (100.0 *. (1.0 -. (gf_tss /. mf_nm)));
  note "Paper: 13.4 -> 12.5 us (MF, +NM) vs 9.8 us (GF+TSS), 9.65 us (GF+NM):";
  note "a better cache beats a faster software search."
