(* Tests for gigaflow.workload: Classbench, Ruleset, Trace, Pipebench. *)

module Classbench = Gf_workload.Classbench
module Ruleset = Gf_workload.Ruleset
module Trace = Gf_workload.Trace
module Pipebench = Gf_workload.Pipebench
module Catalog = Gf_pipelines.Catalog
module Executor = Gf_pipeline.Executor
module Flow = Gf_flow.Flow

let small_profile =
  {
    Classbench.acl_profile with
    Classbench.endpoints = 128;
    subnets = 16;
    services = 32;
  }

let test_classbench_deterministic () =
  let a = Classbench.generate (Classbench.create ~seed:5 ()) 100 in
  let b = Classbench.generate (Classbench.create ~seed:5 ()) 100 in
  Alcotest.(check bool) "same rules" true (a = b);
  let c = Classbench.generate (Classbench.create ~seed:6 ()) 100 in
  Alcotest.(check bool) "different seed differs" true (a <> c)

let test_classbench_well_formed () =
  let rules = Classbench.generate (Classbench.create ~seed:7 ()) 2000 in
  Array.iter
    (fun (r : Classbench.rule) ->
      let _, src_len = r.Classbench.ip_src and _, dst_len = r.Classbench.ip_dst in
      Alcotest.(check bool) "src len" true (List.mem src_len [ 16; 24; 32 ]);
      Alcotest.(check bool) "dst len" true (List.mem dst_len [ 16; 24; 32 ]);
      (match r.Classbench.proto with
      | Some p -> Alcotest.(check bool) "proto sane" true (List.mem p [ 1; 6; 17 ])
      | None -> ());
      (match (r.Classbench.proto, r.Classbench.tp_dst) with
      | (Some 1 | None), Some _ -> Alcotest.fail "ports without L4 proto"
      | _ -> ());
      Alcotest.(check bool) "vlan in range" true (r.Classbench.vlan >= 10))
    rules

(* Fig. 4's shape: sharing increases monotonically as fields decrease. *)
let test_classbench_sharing_monotone () =
  let rules = Classbench.generate (Classbench.create ~seed:8 ()) 20_000 in
  let sharing = List.map (fun k -> Classbench.five_tuple_sharing rules ~k) [ 1; 2; 3; 4; 5 ] in
  let rec check = function
    | a :: (b :: _ as rest) ->
        if a < b then Alcotest.failf "sharing not monotone: %f < %f" a b else check rest
    | _ -> ()
  in
  check sharing;
  (* The full 5-tuple is nearly unique (paper: ~1.03). *)
  let k5 = List.nth sharing 4 in
  Alcotest.(check bool) (Printf.sprintf "5-tuple nearly unique (%.2f)" k5) true (k5 < 3.0);
  let k1 = List.hd sharing in
  Alcotest.(check bool) (Printf.sprintf "single fields highly shared (%.0f)" k1) true
    (k1 > 50.0)

let test_gateway_macs_distinct_oui () =
  let gen = Classbench.create ~seed:9 () in
  let rules = Classbench.generate gen 100 in
  Array.iter
    (fun r ->
      let gw = Classbench.gateway_mac gen r in
      Alcotest.(check bool) "distinct OUI" true (gw lsr 40 <> r.Classbench.eth_src lsr 40))
    rules

let test_ruleset_builds_all_pipelines () =
  List.iter
    (fun info ->
      let rs = Ruleset.build ~profile:small_profile ~combos:256 ~info ~seed:3 () in
      Alcotest.(check bool)
        (info.Catalog.code ^ " installs rules")
        true
        (Ruleset.rule_count rs > 0);
      Alcotest.(check int) "combos" 256 (Ruleset.combo_count rs))
    Catalog.all

let test_ruleset_deterministic () =
  let info = Option.get (Catalog.find "PSC") in
  let a = Ruleset.build ~profile:small_profile ~combos:128 ~info ~seed:11 () in
  let b = Ruleset.build ~profile:small_profile ~combos:128 ~info ~seed:11 () in
  Alcotest.(check int) "same rule count" (Ruleset.rule_count a) (Ruleset.rule_count b);
  let fa = Ruleset.sample_flows a ~seed:1 ~locality:Ruleset.High ~n:100 in
  let fb = Ruleset.sample_flows b ~seed:1 ~locality:Ruleset.High ~n:100 in
  Alcotest.(check bool) "same flows" true (fa = fb)

let test_sampled_flows_unique_and_executable () =
  let info = Option.get (Catalog.find "OFD") in
  let rs = Ruleset.build ~profile:small_profile ~combos:256 ~info ~seed:12 () in
  let p = Ruleset.pipeline rs in
  List.iter
    (fun locality ->
      let flows = Ruleset.sample_flows rs ~seed:2 ~locality ~n:500 in
      let seen = Hashtbl.create 500 in
      Array.iter
        (fun flow ->
          Alcotest.(check bool) "unique" false (Hashtbl.mem seen flow);
          Hashtbl.replace seen flow ();
          match Executor.execute p flow with
          | Ok tr ->
              Alcotest.(check bool) "has steps" true (Gf_pipeline.Traversal.length tr > 0)
          | Error e -> Alcotest.failf "flow fails: %a" Executor.pp_error e)
        flows)
    [ Ruleset.High; Ruleset.Low ]

(* Flows should mostly exercise installed rules, not fall through empty
   miss chains. *)
let test_flows_hit_rules () =
  let info = Option.get (Catalog.find "PSC") in
  let rs = Ruleset.build ~profile:small_profile ~combos:512 ~info ~seed:13 () in
  let p = Ruleset.pipeline rs in
  let flows = Ruleset.sample_flows rs ~seed:3 ~locality:Ruleset.High ~n:300 in
  let rule_hits = ref 0 and total_steps = ref 0 in
  Array.iter
    (fun flow ->
      match Executor.execute p flow with
      | Ok tr ->
          Array.iter
            (fun (s : Gf_pipeline.Traversal.step) ->
              incr total_steps;
              match s.Gf_pipeline.Traversal.outcome with
              | `Rule _ -> incr rule_hits
              | `Table_miss -> ())
            tr.Gf_pipeline.Traversal.steps
      | Error _ -> ())
    flows;
  let frac = float_of_int !rule_hits /. float_of_int !total_steps in
  Alcotest.(check bool) (Printf.sprintf "mostly rule hits (%.2f)" frac) true (frac > 0.5)

let test_high_locality_concentrates () =
  let info = Option.get (Catalog.find "PSC") in
  let rs = Ruleset.build ~combos:4096 ~info ~seed:14 () in
  let p = Ruleset.pipeline rs in
  let distinct_megaflows locality =
    let flows = Ruleset.sample_flows rs ~seed:4 ~locality ~n:2000 in
    let seen = Hashtbl.create 100 in
    Array.iter
      (fun flow ->
        match Executor.execute p flow with
        | Ok tr ->
            let w = Gf_pipeline.Traversal.megaflow_wildcard tr in
            Hashtbl.replace seen (Gf_flow.Fmatch.v ~pattern:flow ~mask:w) ()
        | Error _ -> ())
      flows;
    Hashtbl.length seen
  in
  let high = distinct_megaflows Ruleset.High in
  let low = distinct_megaflows Ruleset.Low in
  Alcotest.(check bool)
    (Printf.sprintf "high (%d) concentrates vs low (%d)" high low)
    true
    (float_of_int high < 0.8 *. float_of_int low)

let test_trace_sorted_and_counts () =
  let flows = Array.init 50 (fun i -> Flow.make [ (Gf_flow.Field.Vlan, i) ]) in
  let t = Trace.generate ~duration:10.0 ~mean_flow_size:4.0 ~seed:15 ~flows () in
  Alcotest.(check int) "unique flows" 50 t.Trace.unique_flows;
  Alcotest.(check bool) "at least one packet per flow" true
    (Trace.packet_count t >= 50);
  let sorted = ref true in
  for i = 0 to Array.length t.Trace.packets - 2 do
    if t.Trace.packets.(i).Trace.time > t.Trace.packets.(i + 1).Trace.time then
      sorted := false
  done;
  Alcotest.(check bool) "sorted by time" true !sorted

let test_trace_deterministic () =
  let flows = Array.init 20 (fun i -> Flow.make [ (Gf_flow.Field.Vlan, i) ]) in
  let a = Trace.generate ~seed:16 ~flows () in
  let b = Trace.generate ~seed:16 ~flows () in
  Alcotest.(check int) "same size" (Trace.packet_count a) (Trace.packet_count b)

let test_trace_concat () =
  let flows = Array.init 10 (fun i -> Flow.make [ (Gf_flow.Field.Vlan, i) ]) in
  let a = Trace.generate ~duration:5.0 ~seed:17 ~flows () in
  let b = Trace.generate ~duration:5.0 ~seed:18 ~flows () in
  let c = Trace.concat a b ~offset:300.0 in
  Alcotest.(check int) "flow ids renumbered" 20 c.Trace.unique_flows;
  Alcotest.(check int) "packets merged" (Trace.packet_count a + Trace.packet_count b)
    (Trace.packet_count c);
  (* Packets from b all carry ids >= 10 and times >= 300. *)
  Array.iter
    (fun pkt ->
      if pkt.Trace.flow_id >= 10 then
        Alcotest.(check bool) "offset applied" true (pkt.Trace.time >= 300.0))
    c.Trace.packets

let test_trace_churn_shape () =
  let flows = Array.init 200 (fun i -> Flow.make [ (Gf_flow.Field.Vlan, i) ]) in
  let churn () =
    Trace.churn ~duration:10.0 ~epochs:5 ~active:50 ~turnover:0.5
      ~packets_per_epoch:100 ~seed:20 ~flows ()
  in
  let t = churn () in
  Alcotest.(check int) "epochs x packets_per_epoch" 500 (Trace.packet_count t);
  let sorted = ref true in
  for i = 0 to Array.length t.Trace.packets - 2 do
    if t.Trace.packets.(i).Trace.time > t.Trace.packets.(i + 1).Trace.time then
      sorted := false
  done;
  Alcotest.(check bool) "sorted by time" true !sorted;
  (* The first epoch draws only from the initial window; the rotation must
     eventually reach flows outside it. *)
  let outside = ref 0 in
  Array.iter
    (fun pkt ->
      if pkt.Trace.time < 2.0 && pkt.Trace.flow_id >= 50 then
        Alcotest.failf "first epoch drew flow %d outside the window" pkt.Trace.flow_id;
      if pkt.Trace.flow_id >= 50 then incr outside)
    t.Trace.packets;
  Alcotest.(check bool) "window rotated past the initial flows" true (!outside > 0);
  (* Fully deterministic in the seed. *)
  let t' = churn () in
  Alcotest.(check bool) "deterministic" true (t.Trace.packets = t'.Trace.packets)

(* Satellite: streaming edge cases.  A zero-packet stream must terminate
   immediately, and a fill whose batch exceeds the remaining packets must
   return exactly the remainder, then 0 forever. *)
let test_stream_edge_cases () =
  let flows = Array.init 8 (fun i -> Flow.make [ (Gf_flow.Field.Vlan, i) ]) in
  let buffers n = (Array.make n 0.0, Array.make n 0, Array.make n Flow.zero) in
  (* Zero-packet stream: first pull already reports end of stream. *)
  let empty = Trace.steady ~packets:0 ~seed:3 ~flows () in
  let times, ids, fls = buffers 16 in
  Alcotest.(check int) "empty stream yields 0" 0
    (Trace.fill empty ~times ~flow_ids:ids ~flows:fls ~max:16);
  Alcotest.(check int) "still 0 on re-pull" 0
    (Trace.fill empty ~times ~flow_ids:ids ~flows:fls ~max:16);
  (* Batch larger than the remaining packets: the short tail comes back in
     one partial fill. *)
  let s = Trace.steady ~packets:10 ~seed:4 ~flows () in
  let times, ids, fls = buffers 64 in
  Alcotest.(check int) "first pull drains 7" 7
    (Trace.fill s ~times ~flow_ids:ids ~flows:fls ~max:7);
  Alcotest.(check int) "oversized batch returns remainder" 3
    (Trace.fill s ~times ~flow_ids:ids ~flows:fls ~max:64);
  Alcotest.(check int) "exhausted" 0
    (Trace.fill s ~times ~flow_ids:ids ~flows:fls ~max:64);
  (* Same edge cases through the materialised-trace adapter. *)
  let t = Trace.generate ~duration:1.0 ~seed:5 ~flows () in
  let st = Trace.stream_of_trace t in
  let n = Trace.packet_count t in
  let times, ids, fls = buffers (n + 32) in
  Alcotest.(check int) "oversized pull drains the trace" n
    (Trace.fill st ~times ~flow_ids:ids ~flows:fls ~max:(n + 32));
  Alcotest.(check int) "trace stream exhausted" 0
    (Trace.fill st ~times ~flow_ids:ids ~flows:fls ~max:(n + 32))

let test_trace_elephant_mice_shape () =
  let flows = Array.init 1000 (fun i -> Flow.make [ (Gf_flow.Field.Vlan, i) ]) in
  let t =
    Trace.elephant_mice ~duration:10.0 ~elephants:8 ~elephant_share:0.8
      ~packets:4000 ~seed:21 ~flows ()
  in
  Alcotest.(check int) "packet count" 4000 (Trace.packet_count t);
  let elephant_packets =
    Array.fold_left
      (fun acc p -> if p.Trace.flow_id < 8 then acc + 1 else acc)
      0 t.Trace.packets
  in
  (* Bernoulli(0.8) over 4000 draws: stay well inside 5 sigma. *)
  Alcotest.(check bool)
    (Printf.sprintf "elephant share ~0.8 (got %d/4000)" elephant_packets)
    true
    (elephant_packets > 3000 && elephant_packets < 3400);
  let sorted = ref true in
  for i = 0 to Array.length t.Trace.packets - 2 do
    if t.Trace.packets.(i).Trace.time > t.Trace.packets.(i + 1).Trace.time then
      sorted := false
  done;
  Alcotest.(check bool) "sorted by time" true !sorted;
  (* Determinism in seed. *)
  let t' =
    Trace.elephant_mice ~duration:10.0 ~elephants:8 ~elephant_share:0.8
      ~packets:4000 ~seed:21 ~flows ()
  in
  Alcotest.(check bool) "deterministic" true (t.Trace.packets = t'.Trace.packets)

let test_trace_drifting_skew_shape () =
  let flows = Array.init 500 (fun i -> Flow.make [ (Gf_flow.Field.Vlan, i) ]) in
  let t =
    Trace.drifting_skew ~duration:8.0 ~epochs:4 ~drift:100 ~packets_per_epoch:1000
      ~seed:22 ~flows ()
  in
  Alcotest.(check int) "packet count" 4000 (Trace.packet_count t);
  let sorted = ref true in
  for i = 0 to Array.length t.Trace.packets - 2 do
    if t.Trace.packets.(i).Trace.time > t.Trace.packets.(i + 1).Trace.time then
      sorted := false
  done;
  Alcotest.(check bool) "sorted by time" true !sorted;
  (* The popular set drifts: the most frequent flow of the first quarter
     differs from the most frequent flow of the last quarter. *)
  let mode lo hi =
    let counts = Hashtbl.create 64 in
    for i = lo to hi - 1 do
      let id = t.Trace.packets.(i).Trace.flow_id in
      Hashtbl.replace counts id (1 + Option.value ~default:0 (Hashtbl.find_opt counts id))
    done;
    Hashtbl.fold (fun id c (bid, bc) -> if c > bc then (id, c) else (bid, bc)) counts (-1, 0)
    |> fst
  in
  Alcotest.(check bool) "heavy-hitter identity rotates" true
    (mode 0 1000 <> mode 3000 4000)

let test_pipebench_churn_shares_population () =
  (* make_churn must derive the identical ruleset and flow population as
     make for the same seed — only the packet schedule differs. *)
  let info = Option.get (Catalog.find "OTL") in
  let base =
    Pipebench.make ~profile:small_profile ~combos:256 ~unique_flows:400
      ~duration:5.0 ~info ~locality:Ruleset.Low ~seed:19 ()
  in
  let churned =
    Pipebench.make_churn ~profile:small_profile ~combos:256 ~unique_flows:400
      ~duration:5.0 ~epochs:4 ~active:64 ~packets_per_epoch:200 ~info
      ~locality:Ruleset.Low ~seed:19 ()
  in
  Alcotest.(check bool) "same flow population" true
    (base.Pipebench.flows = churned.Pipebench.flows);
  Alcotest.(check int) "churn schedule" 800 (Trace.packet_count churned.Pipebench.trace);
  Alcotest.(check int) "rules agree" 
    (Gf_pipeline.Pipeline.rule_count (Pipebench.pipeline base))
    (Gf_pipeline.Pipeline.rule_count (Pipebench.pipeline churned))

let test_pipebench_end_to_end () =
  let info = Option.get (Catalog.find "OTL") in
  let w =
    Pipebench.make ~profile:small_profile ~combos:256 ~unique_flows:400 ~duration:5.0
      ~info ~locality:Ruleset.Low ~seed:19 ()
  in
  Alcotest.(check int) "flows" 400 (Array.length w.Pipebench.flows);
  Alcotest.(check bool) "trace nonempty" true (Trace.packet_count w.Pipebench.trace > 0);
  Alcotest.(check bool) "pipeline populated" true
    (Gf_pipeline.Pipeline.rule_count (Pipebench.pipeline w) > 0)

let suite =
  [
    ("classbench deterministic", `Quick, test_classbench_deterministic);
    ("classbench well-formed", `Quick, test_classbench_well_formed);
    ("classbench sharing monotone (fig 4)", `Quick, test_classbench_sharing_monotone);
    ("gateway macs distinct", `Quick, test_gateway_macs_distinct_oui);
    ("ruleset builds all pipelines", `Quick, test_ruleset_builds_all_pipelines);
    ("ruleset deterministic", `Quick, test_ruleset_deterministic);
    ("flows unique and executable", `Quick, test_sampled_flows_unique_and_executable);
    ("flows exercise rules", `Quick, test_flows_hit_rules);
    ("high locality concentrates", `Quick, test_high_locality_concentrates);
    ("trace sorted", `Quick, test_trace_sorted_and_counts);
    ("trace deterministic", `Quick, test_trace_deterministic);
    ("trace concat", `Quick, test_trace_concat);
    ("trace churn shape", `Quick, test_trace_churn_shape);
    ("stream edge cases", `Quick, test_stream_edge_cases);
    ("trace elephant/mice shape", `Quick, test_trace_elephant_mice_shape);
    ("trace drifting skew shape", `Quick, test_trace_drifting_skew_shape);
    ("pipebench churn", `Quick, test_pipebench_churn_shares_population);
    ("pipebench end-to-end", `Quick, test_pipebench_end_to_end);
  ]
