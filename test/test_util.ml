(* Tests for gigaflow.util: Rng, Zipf, Stats, Tablefmt, Bitops. *)

module Rng = Gf_util.Rng
module Zipf = Gf_util.Zipf
module Stats = Gf_util.Stats
module Tablefmt = Gf_util.Tablefmt
module Bitops = Gf_util.Bitops
module Json = Gf_util.Json

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_copy_independent () =
  let a = Rng.create 7 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_split_differs () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  let xs = List.init 10 (fun _ -> Rng.bits64 a) in
  let ys = List.init 10 (fun _ -> Rng.bits64 b) in
  Alcotest.(check bool) "split stream differs" true (xs <> ys)

let test_rng_int_range () =
  let rng = Rng.create 1 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of range: %d" v
  done

let test_rng_int_in () =
  let rng = Rng.create 2 in
  for _ = 1 to 1_000 do
    let v = Rng.int_in rng (-5) 5 in
    if v < -5 || v > 5 then Alcotest.failf "out of range: %d" v
  done

let test_rng_float_range () =
  let rng = Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng 2.5 in
    if v < 0.0 || v >= 2.5 then Alcotest.failf "out of range: %f" v
  done

let test_rng_bernoulli_bias () =
  let rng = Rng.create 4 in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let p = float_of_int !hits /. float_of_int n in
  if Float.abs (p -. 0.3) > 0.02 then Alcotest.failf "bias off: %f" p

let test_rng_pick_weighted () =
  let rng = Rng.create 5 in
  let counts = Hashtbl.create 3 in
  for _ = 1 to 30_000 do
    let x = Rng.pick_weighted rng [| ("a", 1.0); ("b", 3.0); ("c", 0.0) |] in
    Hashtbl.replace counts x (1 + Option.value ~default:0 (Hashtbl.find_opt counts x))
  done;
  let get k = Option.value ~default:0 (Hashtbl.find_opt counts k) in
  Alcotest.(check int) "zero weight never picked" 0 (get "c");
  let ratio = float_of_int (get "b") /. float_of_int (get "a") in
  if Float.abs (ratio -. 3.0) > 0.3 then Alcotest.failf "weight ratio off: %f" ratio

let test_rng_shuffle_permutation () =
  let rng = Rng.create 6 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_pareto_bounds () =
  let rng = Rng.create 8 in
  for _ = 1 to 1_000 do
    let v = Rng.pareto rng ~alpha:1.2 ~xmin:2.0 in
    if v < 2.0 then Alcotest.failf "pareto below xmin: %f" v
  done

let test_rng_geometric () =
  let rng = Rng.create 9 in
  Alcotest.(check int) "p=1 always 0" 0 (Rng.geometric rng 1.0);
  let acc = Stats.Acc.create () in
  for _ = 1 to 20_000 do
    Stats.Acc.add acc (float_of_int (Rng.geometric rng 0.5))
  done;
  (* mean of Geom(0.5) failures = (1-p)/p = 1 *)
  if Float.abs (Stats.Acc.mean acc -. 1.0) > 0.05 then
    Alcotest.failf "geometric mean off: %f" (Stats.Acc.mean acc)

let test_rng_int_uniform_exact () =
  (* Rejection sampling makes [int] exactly uniform for every bound; the
     modulo-era sampler was detectably biased only for huge bounds, so the
     distribution check runs alongside a structural one below. *)
  let rng = Rng.create 11 in
  let bound = 6 in
  let n = 60_000 in
  let counts = Array.make bound 0 in
  for _ = 1 to n do
    let v = Rng.int rng bound in
    counts.(v) <- counts.(v) + 1
  done;
  let expected = float_of_int n /. float_of_int bound in
  let sigma = sqrt (expected *. (1.0 -. (1.0 /. float_of_int bound))) in
  Array.iteri
    (fun v c ->
      if Float.abs (float_of_int c -. expected) > 5.0 *. sigma then
        Alcotest.failf "value %d count %d outside 5 sigma of %.0f" v c expected)
    counts

let test_rng_int_huge_bound () =
  (* The modulo sampler collapsed bounds near [max_int] into the low half
     of the range; rejection sampling must cover the high half too. *)
  let rng = Rng.create 12 in
  let top = ref 0 in
  for _ = 1 to 1_000 do
    let v = Rng.int rng max_int in
    if v < 0 || v >= max_int then Alcotest.failf "out of range: %d" v;
    top := max !top v
  done;
  Alcotest.(check bool) "reaches the high half" true (!top > max_int / 2)

let test_rng_int_pow2_stream_compat () =
  (* For power-of-two bounds the mask equals [bound - 1] and nothing is
     rejected — those streams must be identical to the modulo era
     ((bits64 >> 2) land (bound - 1)), keeping old fixed-seed runs valid. *)
  let a = Rng.create 13 and b = Rng.create 13 in
  for _ = 1 to 1_000 do
    let want =
      Int64.to_int (Int64.shift_right_logical (Rng.bits64 b) 2) land 15
    in
    Alcotest.(check int) "same stream" want (Rng.int a 16)
  done

let test_rng_geometric_edges () =
  let rng = Rng.create 14 in
  Alcotest.(check int) "p=1.0 is always 0" 0 (Rng.geometric rng 1.0);
  (* Tiny p: the inverse-CDF ratio can exceed [max_int]; the clamp must
     keep results in [0, max_int] instead of the old unspecified
     [int_of_float] overflow (which produced negative sizes). *)
  let biggest = ref 0 in
  for _ = 1 to 200 do
    let v = Rng.geometric rng 1e-9 in
    if v < 0 then Alcotest.failf "overflowed to %d" v;
    biggest := max !biggest v
  done;
  Alcotest.(check bool) "tiny p reaches large counts" true (!biggest > 1_000_000)

let test_zipf_pmf_sums_to_one () =
  let z = Zipf.create ~n:100 ~s:1.1 in
  let total = ref 0.0 in
  for r = 0 to 99 do
    total := !total +. Zipf.pmf z r
  done;
  if Float.abs (!total -. 1.0) > 1e-9 then Alcotest.failf "pmf sum %f" !total

let test_zipf_monotone () =
  let z = Zipf.create ~n:50 ~s:0.9 in
  for r = 1 to 49 do
    if Zipf.pmf z r > Zipf.pmf z (r - 1) +. 1e-12 then
      Alcotest.failf "pmf not monotone at %d" r
  done

let test_zipf_sampling_matches_pmf () =
  let z = Zipf.create ~n:10 ~s:1.0 in
  let rng = Rng.create 10 in
  let counts = Array.make 10 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let r = Zipf.sample z rng in
    counts.(r) <- counts.(r) + 1
  done;
  for r = 0 to 9 do
    let expected = Zipf.pmf z r *. float_of_int n in
    let got = float_of_int counts.(r) in
    if Float.abs (got -. expected) > 5.0 *. sqrt expected +. 10.0 then
      Alcotest.failf "rank %d: got %f expected %f" r got expected
  done

let test_zipf_uniform_when_s0 () =
  let z = Zipf.create ~n:4 ~s:0.0 in
  for r = 0 to 3 do
    if Float.abs (Zipf.pmf z r -. 0.25) > 1e-9 then Alcotest.fail "not uniform"
  done

let test_acc_basic () =
  let acc = Stats.Acc.create () in
  List.iter (Stats.Acc.add acc) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check int) "count" 4 (Stats.Acc.count acc);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.Acc.mean acc);
  Alcotest.(check (float 1e-9)) "total" 10.0 (Stats.Acc.total acc);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.Acc.min acc);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Stats.Acc.max acc);
  (* var of {1,2,3,4} = 5/3 *)
  Alcotest.(check (float 1e-9)) "variance" (5.0 /. 3.0) (Stats.Acc.variance acc)

let test_acc_empty_nan () =
  let acc = Stats.Acc.create () in
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Stats.Acc.mean acc))

let test_percentile () =
  let xs = [| 15.0; 20.0; 35.0; 40.0; 50.0 |] in
  Alcotest.(check (float 1e-9)) "p0" 15.0 (Stats.percentile xs 0.0);
  Alcotest.(check (float 1e-9)) "p100" 50.0 (Stats.percentile xs 100.0);
  Alcotest.(check (float 1e-9)) "median" 35.0 (Stats.median xs);
  Alcotest.(check (float 1e-9)) "p25" 20.0 (Stats.percentile xs 25.0)

let test_percentile_interpolates () =
  let xs = [| 0.0; 10.0 |] in
  Alcotest.(check (float 1e-9)) "p50 interp" 5.0 (Stats.percentile xs 50.0)

let test_percentile_rejects_bad_p () =
  let xs = [| 1.0; 2.0 |] in
  List.iter
    (fun p ->
      match Stats.percentile xs p with
      | exception Invalid_argument _ -> ()
      | v -> Alcotest.failf "percentile accepted p=%h -> %f" p v)
    [ -1.0; 100.5; Float.nan; Float.infinity; Float.neg_infinity ]

let test_percentile_ignores_nan () =
  (* One garbage sample must neither poison the result nor (via a
     polymorphic-compare sort) scramble the order statistics. *)
  let xs = [| Float.nan; 3.0; 1.0; Float.nan; 2.0 |] in
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Stats.percentile xs 0.0);
  Alcotest.(check (float 1e-9)) "p50" 2.0 (Stats.percentile xs 50.0);
  Alcotest.(check (float 1e-9)) "p100" 3.0 (Stats.percentile xs 100.0);
  Alcotest.(check bool) "input not modified" true (Float.is_nan xs.(0));
  Alcotest.(check bool) "all-nan is nan" true
    (Float.is_nan (Stats.percentile [| Float.nan; Float.nan |] 50.0));
  Alcotest.(check bool) "empty is nan" true
    (Float.is_nan (Stats.percentile [||] 50.0))

let test_batch_mean_stddev_edges () =
  Alcotest.(check (float 1e-9)) "mean skips nan" 2.0
    (Stats.mean [| 1.0; Float.nan; 3.0 |]);
  Alcotest.(check bool) "mean of empty is nan" true
    (Float.is_nan (Stats.mean [||]));
  Alcotest.(check (float 0.0)) "single-sample stddev is 0" 0.0
    (Stats.stddev [| 5.0 |]);
  Alcotest.(check (float 1e-9)) "stddev skips nan" (Float.sqrt 2.0)
    (Stats.stddev [| 1.0; Float.nan; 3.0 |]);
  Alcotest.(check bool) "stddev of empty is nan" true
    (Float.is_nan (Stats.stddev [||]));
  Alcotest.(check bool) "stddev of all-nan is nan" true
    (Float.is_nan (Stats.stddev [| Float.nan |]))

let test_histogram () =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:10.0 ~bins:5 in
  List.iter (Stats.Histogram.add h) [ 0.5; 1.5; 2.5; 9.9; -3.0; 42.0 ];
  let counts = Stats.Histogram.counts h in
  Alcotest.(check int) "total" 6 (Stats.Histogram.total h);
  Alcotest.(check int) "first bin has clamped low" 3 counts.(0);
  Alcotest.(check int) "last bin has clamped high" 2 counts.(4);
  let lo, hi = Stats.Histogram.bin_bounds h 1 in
  Alcotest.(check (float 1e-9)) "bin lo" 2.0 lo;
  Alcotest.(check (float 1e-9)) "bin hi" 4.0 hi

let contains haystack needle =
  let n = String.length haystack and m = String.length needle in
  let rec at i = i + m <= n && (String.sub haystack i m = needle || at (i + 1)) in
  at 0

let test_tablefmt_renders () =
  let t = Tablefmt.create ~title:"T" [ "name"; "value" ] in
  Tablefmt.add_row t [ "alpha"; "1" ];
  Tablefmt.add_sep t;
  Tablefmt.add_row t [ "beta"; "22" ];
  let s = Tablefmt.render t in
  Alcotest.(check bool) "has title" true (String.length s > 0 && s.[0] = 'T');
  Alcotest.(check bool) "contains alpha" true (contains s "alpha" && contains s "22")

let test_tablefmt_bad_row () =
  let t = Tablefmt.create [ "a"; "b" ] in
  Alcotest.check_raises "arity" (Invalid_argument "Tablefmt.add_row: wrong number of cells")
    (fun () -> Tablefmt.add_row t [ "only-one" ])

let test_fmt_numbers () =
  Alcotest.(check string) "int" "12,345" (Tablefmt.fmt_int 12345);
  Alcotest.(check string) "int small" "7" (Tablefmt.fmt_int 7);
  Alcotest.(check string) "neg" "-1,000" (Tablefmt.fmt_int (-1000));
  Alcotest.(check string) "pct" "51.40%" (Tablefmt.fmt_pct 0.514);
  Alcotest.(check string) "times" "450.0x" (Tablefmt.fmt_times 450.0);
  Alcotest.(check string) "si M" "14.7M" (Tablefmt.fmt_si 14_700_000.0);
  Alcotest.(check string) "si K" "48.0K" (Tablefmt.fmt_si 48_000.0)

let test_bitops () =
  Alcotest.(check int) "mask width" 0xFF (Bitops.mask_of_width 8);
  Alcotest.(check int) "mask zero" 0 (Bitops.mask_of_width 0);
  Alcotest.(check int) "prefix 24" 0xFFFFFF00 (Bitops.prefix_mask ~width:32 24);
  Alcotest.(check int) "prefix full" 0xFFFFFFFF (Bitops.prefix_mask ~width:32 32);
  Alcotest.(check int) "prefix none" 0 (Bitops.prefix_mask ~width:32 0);
  Alcotest.(check int) "popcount" 3 (Bitops.popcount 0b10101);
  Alcotest.(check bool) "subset yes" true (Bitops.is_subset ~sub:0b101 ~super:0b111);
  Alcotest.(check bool) "subset no" false (Bitops.is_subset ~sub:0b1000 ~super:0b111)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("type", Json.Str "sample");
        ("packet", Json.Int 10615);
        ("rate", Json.Float 0.8963);
        ("ok", Json.Bool true);
        ("none", Json.Null);
        ("levels", Json.List [ Json.Str "emc"; Json.Str "gigaflow" ]);
        ("quote", Json.Str "a\"b\\c\nd");
      ]
  in
  match Json.of_string (Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "round-trips" true (v = v')
  | Error e -> Alcotest.failf "reparse failed: %s" e

let test_json_nonfinite_is_null () =
  Alcotest.(check string) "nan -> null" "null" (Json.to_string (Json.Float Float.nan));
  Alcotest.(check string) "inf -> null" "null"
    (Json.to_string (Json.Float Float.infinity));
  Alcotest.(check string) "object field"
    {|{"p99":null}|}
    (Json.to_string (Json.Obj [ ("p99", Json.Float Float.neg_infinity) ]))

let test_json_parse_errors () =
  let bad = [ ""; "{"; "[1,]"; {|{"a":}|}; "12 34"; "tru" ] in
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.failf "accepted invalid JSON %S" s
      | Error _ -> ())
    bad

let test_json_accessors () =
  let v = Json.Obj [ ("n", Json.Int 3); ("f", Json.Float 1.5); ("s", Json.Str "x") ] in
  Alcotest.(check (option int)) "int" (Some 3)
    (Option.bind (Json.member "n" v) Json.to_int_opt);
  Alcotest.(check bool) "int widens" true
    (Option.bind (Json.member "n" v) Json.to_float_opt = Some 3.0);
  Alcotest.(check (option string)) "str" (Some "x")
    (Option.bind (Json.member "s" v) Json.to_string_opt);
  Alcotest.(check bool) "missing" true (Json.member "zz" v = None);
  Alcotest.(check bool) "non-object" true (Json.member "n" (Json.Int 1) = None)

let suite =
  [
    ("rng deterministic", `Quick, test_rng_deterministic);
    ("rng copy", `Quick, test_rng_copy_independent);
    ("rng split", `Quick, test_rng_split_differs);
    ("rng int range", `Quick, test_rng_int_range);
    ("rng int_in range", `Quick, test_rng_int_in);
    ("rng float range", `Quick, test_rng_float_range);
    ("rng bernoulli bias", `Quick, test_rng_bernoulli_bias);
    ("rng pick_weighted", `Quick, test_rng_pick_weighted);
    ("rng shuffle permutation", `Quick, test_rng_shuffle_permutation);
    ("rng pareto bounds", `Quick, test_rng_pareto_bounds);
    ("rng geometric", `Quick, test_rng_geometric);
    ("rng int exact uniformity", `Quick, test_rng_int_uniform_exact);
    ("rng int huge bound", `Quick, test_rng_int_huge_bound);
    ("rng int pow2 stream compat", `Quick, test_rng_int_pow2_stream_compat);
    ("rng geometric edge cases", `Quick, test_rng_geometric_edges);
    ("zipf pmf sums to 1", `Quick, test_zipf_pmf_sums_to_one);
    ("zipf pmf monotone", `Quick, test_zipf_monotone);
    ("zipf sampling matches pmf", `Quick, test_zipf_sampling_matches_pmf);
    ("zipf s=0 uniform", `Quick, test_zipf_uniform_when_s0);
    ("stats acc", `Quick, test_acc_basic);
    ("stats acc empty", `Quick, test_acc_empty_nan);
    ("stats percentile", `Quick, test_percentile);
    ("stats percentile interpolation", `Quick, test_percentile_interpolates);
    ("stats percentile rejects bad p", `Quick, test_percentile_rejects_bad_p);
    ("stats percentile ignores nan", `Quick, test_percentile_ignores_nan);
    ("stats batch mean/stddev edges", `Quick, test_batch_mean_stddev_edges);
    ("stats histogram", `Quick, test_histogram);
    ("tablefmt renders", `Quick, test_tablefmt_renders);
    ("tablefmt arity check", `Quick, test_tablefmt_bad_row);
    ("tablefmt numbers", `Quick, test_fmt_numbers);
    ("bitops", `Quick, test_bitops);
    ("json roundtrip", `Quick, test_json_roundtrip);
    ("json non-finite -> null", `Quick, test_json_nonfinite_is_null);
    ("json parse errors", `Quick, test_json_parse_errors);
    ("json accessors", `Quick, test_json_accessors);
  ]
