(* Tests for gigaflow.control (the adaptive SLO controller) and the
   loadtest harness hooks it rides on: window truncation semantics,
   controller observation-transparency, and the closed loop actually
   rescuing a drifting-skew run the static configuration fails. *)

module Controller = Gf_control.Controller
module Loadtest = Gf_engine.Loadtest
module Datapath = Gf_sim.Datapath
module Cache_level = Gf_sim.Cache_level
module Evict = Gf_cache.Evict
module Heavy_hitter = Gf_offload.Heavy_hitter
module Telemetry = Gf_telemetry.Telemetry
module Pipebench = Gf_workload.Pipebench
module Ruleset = Gf_workload.Ruleset
module Trace = Gf_workload.Trace
module Catalog = Gf_pipelines.Catalog
module Json = Gf_util.Json

let workload ?(flows = 4000) ?(combos = 2048) ?(seed = 7) () =
  Pipebench.make ~combos ~unique_flows:flows
    ~info:(Option.get (Catalog.find "PSC"))
    ~locality:Ruleset.High ~seed ()

let hh_cfg ?admission () =
  Datapath.gf_sw_hh
    ~gf:(Gf_core.Config.v ~tables:2 ~table_capacity:128 ())
    ?admission ()

(* ------------------------------ spec -------------------------------- *)

let test_spec_parsing () =
  (match Controller.spec_of_string "slo" with
  | Ok s -> Alcotest.(check bool) "defaults" true (s = Controller.default_spec)
  | Error e -> Alcotest.failf "slo rejected: %s" e);
  (match Controller.spec_of_string "slo,min-threshold=2,max-actions=1" with
  | Ok s ->
      Alcotest.(check int) "min-threshold" 2 s.Controller.min_threshold;
      Alcotest.(check int) "max-actions" 1 s.Controller.max_actions;
      Alcotest.(check int) "untouched max-k" Controller.default_spec.Controller.max_k
        s.Controller.max_k
  | Error e -> Alcotest.failf "override rejected: %s" e);
  (* Round-trip through the printer. *)
  (match Controller.spec_of_string (Controller.spec_to_string Controller.default_spec) with
  | Ok s -> Alcotest.(check bool) "printer round-trips" true (s = Controller.default_spec)
  | Error e -> Alcotest.failf "printed spec rejected: %s" e);
  List.iter
    (fun s ->
      match Controller.spec_of_string s with
      | Ok _ -> Alcotest.failf "accepted bad spec %S" s
      | Error _ -> ())
    [ ""; "pid"; "slo,max-k"; "slo,max-k=x"; "slo,max-k=0"; "slo,cooldown=-1" ]

(* ------------------------- datapath knobs ---------------------------- *)

let test_knobs_admission_retarget () =
  let w = workload () in
  let dp =
    Datapath.create
      (hh_cfg ~admission:(Heavy_hitter.Heavy_hitter { k = 64; threshold = 4 }) ())
      (Pipebench.pipeline w)
  in
  (* Warm the sketch with a skewed stream — flow j seen (32 - j) times —
     then retarget: the learned counts must survive with their order. *)
  let now = ref 0.0 in
  for j = 0 to 31 do
    for _ = 1 to 32 - j do
      now := !now +. 1e-6;
      ignore (Datapath.process dp ~now:!now w.Pipebench.flows.(j))
    done
  done;
  let hh = Option.get (Datapath.heavy_hitter dp) in
  let top_before = Heavy_hitter.top hh ~n:4 in
  Datapath.set_admission dp (Heavy_hitter.Heavy_hitter { k = 16; threshold = 2 });
  let hh' = Option.get (Datapath.heavy_hitter dp) in
  Alcotest.(check bool) "same sketch object" true (hh == hh');
  Alcotest.(check int) "retargeted k" 16 (Heavy_hitter.k hh');
  Alcotest.(check bool) "top entries survive" true
    (Heavy_hitter.top hh' ~n:4 = top_before);
  (match (Datapath.config dp).Datapath.admission with
  | Heavy_hitter.Heavy_hitter { k = 16; threshold = 2 } -> ()
  | _ -> Alcotest.fail "config does not reflect the actuation");
  (* Admit_all drops the sketch; re-enabling builds a fresh one. *)
  Datapath.set_admission dp Heavy_hitter.Admit_all;
  Alcotest.(check bool) "sketch gone" true (Datapath.heavy_hitter dp = None);
  Datapath.set_admission dp (Heavy_hitter.Heavy_hitter { k = 8; threshold = 1 });
  Alcotest.(check bool) "sketch rebuilt" true (Datapath.heavy_hitter dp <> None)

let test_knobs_evict_and_capacity () =
  let w = workload () in
  let dp = Datapath.create (hh_cfg ()) (Pipebench.pipeline w) in
  let gf = List.hd (Datapath.levels dp) in
  Alcotest.(check string) "walk head is the NIC" "gf" (Cache_level.name gf);
  Alcotest.(check bool) "starts rejecting" true
    (Cache_level.evict_policy gf = Evict.Reject);
  Datapath.set_evict_policy dp ~level:"gf" Evict.Lru;
  Alcotest.(check bool) "policy flipped" true
    (Cache_level.evict_policy gf = Evict.Lru);
  (* The live config must stay truthful about the actuation. *)
  let spec_policies =
    List.map Cache_level.spec_evict (Datapath.config dp).Datapath.levels
  in
  Alcotest.(check bool) "config reflects lru" true
    (List.mem Evict.Lru spec_policies);
  (match Datapath.set_evict_policy dp ~level:"nope" Evict.Lru with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "unknown level accepted");
  match Datapath.set_level_capacity dp ~level:"sw-ck" 0 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "capacity 0 accepted"

(* --------------------------- truncation ------------------------------ *)

let run_loadtest ?controller ?telemetry ~packets ~warmup ~window ~windows w =
  let stream =
    Trace.steady ~zipf_s:1.1 ~packets ~seed:9 ~flows:w.Pipebench.flows ()
  in
  Loadtest.run ?controller ?telemetry ~queue_budget_us:500.0 ~warmup ~window
    ~windows ~rate:1e5 ~slo:Loadtest.default_slo (hh_cfg ())
    (Pipebench.pipeline w) stream

let test_truncated_window_excluded () =
  let w = workload () in
  (* Stream dies half way through window 1 of 3. *)
  let r =
    run_loadtest ~packets:(2000 + 3000 + 1500) ~warmup:2000 ~window:3000
      ~windows:3 w
  in
  (match r.Loadtest.windows with
  | [ w0; w1 ] ->
      Alcotest.(check bool) "w0 complete" false w0.Loadtest.w_truncated;
      Alcotest.(check int) "w0 offered" 3000 w0.Loadtest.w_offered;
      Alcotest.(check bool) "w1 truncated" true w1.Loadtest.w_truncated;
      Alcotest.(check int) "w1 offered" 1500 w1.Loadtest.w_offered;
      (* The gate ignores the truncated window entirely. *)
      Alcotest.(check bool) "pass = w0's verdict" (w0.Loadtest.w_violations = [])
        r.Loadtest.pass
  | ws -> Alcotest.failf "expected 2 windows, got %d" (List.length ws));
  (* A stream that dies during warmup measures nothing: never pass. *)
  let r0 = run_loadtest ~packets:1000 ~warmup:2000 ~window:3000 ~windows:3 w in
  Alcotest.(check int) "no windows" 0 (List.length r0.Loadtest.windows);
  Alcotest.(check bool) "no complete window -> fail" false r0.Loadtest.pass;
  (* Exactly consumed budget: the final window is complete, not truncated. *)
  let rx = run_loadtest ~packets:(2000 + 2 * 3000) ~warmup:2000 ~window:3000
      ~windows:2 w
  in
  Alcotest.(check bool) "final window complete" true
    (List.for_all (fun wr -> not wr.Loadtest.w_truncated) rx.Loadtest.windows);
  (* The summary JSON carries the truncation tally. *)
  let r = run_loadtest ~packets:(2000 + 3000 + 1500) ~warmup:2000 ~window:3000
      ~windows:3 w
  in
  let buf = Buffer.create 512 in
  let tmp = Filename.temp_file "lt" ".jsonl" in
  let oc = open_out tmp in
  Loadtest.write_jsonl oc r;
  close_out oc;
  let ic = open_in tmp in
  (try
     while true do
       Buffer.add_string buf (input_line ic);
       Buffer.add_char buf '\n'
     done
   with End_of_file -> close_in ic);
  Sys.remove tmp;
  let has_tally =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.exists (fun l ->
           match Json.of_string l with
           | Ok j ->
               Json.member "type" j = Some (Json.Str "loadtest_summary")
               && Json.member "truncated_windows" j = Some (Json.Int 1)
           | Error _ -> false)
  in
  Alcotest.(check bool) "summary counts truncated windows" true has_tally

(* ------------------------- transparency ------------------------------ *)

let test_controller_hook_transparent () =
  let w = workload () in
  let observed = ref [] in
  let spy _dp (wr : Loadtest.window) =
    observed := wr.Loadtest.w_index :: !observed
  in
  let packets = 2000 + (3 * 3000) in
  let base = run_loadtest ~packets ~warmup:2000 ~window:3000 ~windows:3 w in
  let spied =
    run_loadtest ~controller:spy ~packets ~warmup:2000 ~window:3000 ~windows:3 w
  in
  Alcotest.(check bool) "report bit-identical under a passive hook" true
    (base = spied);
  Alcotest.(check (list int)) "fires at warmup + every window close"
    [ -1; 0; 1; 2 ] (List.rev !observed);
  (* A Controller that observes clean windows takes no actions and stays
     transparent too. *)
  let c = Controller.create () in
  let tel =
    Telemetry.create
      ~config:
        {
          Telemetry.default_config with
          sample_every = 0;
          event_sample_every = 0;
          trace_sample_every = 1 lsl 30;
        }
      ()
  in
  let driven =
    run_loadtest ~controller:(Controller.on_window c) ~telemetry:tel ~packets
      ~warmup:2000 ~window:3000 ~windows:3 w
  in
  if base.Loadtest.pass then begin
    Alcotest.(check bool) "no actions on clean windows" true
      (Controller.actions c = []);
    Alcotest.(check bool) "report unchanged" true
      (base.Loadtest.windows = driven.Loadtest.windows)
  end

(* --------------------------- closed loop ----------------------------- *)

(* The acceptance criterion in miniature: under drifting skew the frozen
   Reject NIC decays below the SLO and the static run fails; the
   controller spots the blown warmup, flips the NIC to LRU, and every
   measured window passes.  Mirrors `gigaflow-sim loadtest --trace drift
   --controller slo` (see EXPERIMENTS.md). *)
let drift_loadtest ?controller ?telemetry w =
  let warmup = 20_000 and window = 20_000 and windows = 3 in
  let packets = warmup + (windows * window) in
  let stream =
    Trace.stream_of_trace
      (Trace.drifting_skew ~epochs:6 ~zipf_s:1.2 ~drift:128
         ~packets_per_epoch:((packets + 5) / 6) ~seed:43
         ~flows:w.Pipebench.flows ())
  in
  Loadtest.run ?controller ?telemetry ~queue_budget_us:500.0 ~warmup ~window
    ~windows ~rate:1e5
    ~slo:{ Loadtest.default_slo with Loadtest.slo_p50_us = 50.0 }
    (hh_cfg ()) (Pipebench.pipeline w) stream

let test_controller_rescues_drifting_skew () =
  let w = workload ~flows:20_000 ~combos:8192 ~seed:42 () in
  let static = drift_loadtest w in
  Alcotest.(check bool) "static run fails the gate" false static.Loadtest.pass;
  let c = Controller.create () in
  let tel =
    Telemetry.create
      ~config:
        {
          Telemetry.default_config with
          sample_every = 0;
          event_sample_every = 0;
          trace_sample_every = 1 lsl 30;
        }
      ()
  in
  let driven = drift_loadtest ~controller:(Controller.on_window c) ~telemetry:tel w in
  Alcotest.(check bool) "controlled run passes the gate" true
    driven.Loadtest.pass;
  let acts = Controller.actions c in
  Alcotest.(check bool) "took at least one action" true (acts <> []);
  (* Bounded actuation: never more than the per-window budget for any
     window index. *)
  let by_window = Hashtbl.create 8 in
  List.iter
    (fun (a : Controller.action) ->
      let n =
        1 + Option.value ~default:0 (Hashtbl.find_opt by_window a.Controller.act_window)
      in
      Hashtbl.replace by_window a.Controller.act_window n)
    acts;
  Hashtbl.iter
    (fun wi n ->
      Alcotest.(check bool)
        (Printf.sprintf "window %d within budget" wi)
        true
        (n <= Controller.default_spec.Controller.max_actions))
    by_window;
  (* Every action serialises to a well-formed controller_action record. *)
  List.iter
    (fun a ->
      let j = Controller.action_json a in
      Alcotest.(check bool) "tagged" true
        (Json.member "type" j = Some (Json.Str "controller_action"));
      match Json.of_string (Json.to_string j) with
      | Ok j' -> Alcotest.(check bool) "round-trips" true (j = j')
      | Error e -> Alcotest.failf "action JSON invalid: %s" e)
    acts

(* Determinism: the controlled run is a pure function of its inputs —
   two identical runs produce identical reports and identical action
   logs. *)
let test_controlled_run_deterministic () =
  let w = workload ~flows:20_000 ~combos:8192 ~seed:42 () in
  let go () =
    let c = Controller.create () in
    let tel =
      Telemetry.create
        ~config:
          {
            Telemetry.default_config with
            sample_every = 0;
            event_sample_every = 0;
            trace_sample_every = 1 lsl 30;
          }
        ()
    in
    let r = drift_loadtest ~controller:(Controller.on_window c) ~telemetry:tel w in
    (r.Loadtest.windows, r.Loadtest.pass, Controller.actions c)
  in
  let a = go () and b = go () in
  Alcotest.(check bool) "identical reports and action logs" true (a = b)

let suite =
  [
    Alcotest.test_case "controller spec parsing" `Quick test_spec_parsing;
    Alcotest.test_case "admission retarget knob" `Quick
      test_knobs_admission_retarget;
    Alcotest.test_case "evict + capacity knobs" `Quick
      test_knobs_evict_and_capacity;
    Alcotest.test_case "truncated window excluded from gate" `Quick
      test_truncated_window_excluded;
    Alcotest.test_case "controller hook transparent" `Slow
      test_controller_hook_transparent;
    Alcotest.test_case "controller rescues drifting skew" `Slow
      test_controller_rescues_drifting_skew;
    Alcotest.test_case "controlled run deterministic" `Slow
      test_controlled_run_deterministic;
  ]
