(* Tests for gigaflow.telemetry: histogram quantile accuracy against an
   exact oracle, exact merge, flight-recorder ring/sampling semantics,
   series cadence, registry merge, exporters, and the datapath/parallel
   integration invariants (telemetry observes, never perturbs). *)

module Histogram = Gf_telemetry.Histogram
module Recorder = Gf_telemetry.Recorder
module Passive = Gf_telemetry.Passive
module Series = Gf_telemetry.Series
module Registry = Gf_telemetry.Registry
module Export = Gf_telemetry.Export
module Telemetry = Gf_telemetry.Telemetry
module Json = Gf_util.Json
module Datapath = Gf_sim.Datapath
module Parallel = Gf_sim.Parallel
module Metrics = Gf_sim.Metrics
module Pipebench = Gf_workload.Pipebench
module Ruleset = Gf_workload.Ruleset
module Catalog = Gf_pipelines.Catalog

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* ----------------------------- histogram ----------------------------- *)

(* Exact rank-based order statistic matching Histogram.quantile's rank
   definition: the ceil(q * n)-th smallest sample (1-based). *)
let exact_quantile samples q =
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
  sorted.(min (n - 1) (rank - 1))

let check_quantile_in_bucket h samples q =
  let exact = exact_quantile samples q in
  let approx = Histogram.quantile h q in
  let blo, bhi = Histogram.bounds_of_value h exact in
  Alcotest.(check bool)
    (Printf.sprintf "q=%g: approx %g in bucket [%g, %g) of exact %g" q approx
       blo bhi exact)
    true
    (approx >= blo && approx <= bhi)

let quantile_points = [ 0.5; 0.9; 0.99; 0.999 ]

let test_histogram_quantiles_vs_oracle () =
  let rng = Gf_util.Rng.create 11 in
  (* Long-tailed sample stream spanning several octaves, like latencies. *)
  let samples =
    Array.init 5000 (fun _ ->
        let u = Gf_util.Rng.float rng 1.0 in
        0.5 +. (1000.0 *. (u ** 4.0)))
  in
  let h = Histogram.create ~lo:0.1 ~hi:1e5 () in
  Array.iter (Histogram.record h) samples;
  Alcotest.(check int) "count" (Array.length samples) (Histogram.count h);
  List.iter (fun q -> check_quantile_in_bucket h samples q) quantile_points;
  (* The exact extremes are tracked exactly, not bucketed. *)
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  Alcotest.(check (float 1e-9)) "min exact" sorted.(0) (Histogram.min_value h);
  Alcotest.(check (float 1e-9))
    "max exact"
    sorted.(Array.length sorted - 1)
    (Histogram.max_value h)

let test_histogram_empty_and_edges () =
  let h = Histogram.create () in
  Alcotest.(check int) "empty count" 0 (Histogram.count h);
  Alcotest.(check (float 0.0)) "empty mean" 0.0 (Histogram.mean h);
  Alcotest.(check (float 0.0)) "empty quantile" 0.0 (Histogram.p99 h);
  (* Underflow and overflow clamp rather than distort. *)
  Histogram.record h 0.0;
  Histogram.record h 1e12;
  Alcotest.(check int) "clamped count" 2 (Histogram.count h);
  Alcotest.(check bool) "p50 finite" true (Float.is_finite (Histogram.p50 h))

let hist_of_samples samples =
  let h = Histogram.create ~lo:0.1 ~hi:1e5 () in
  List.iter (Histogram.record h) samples;
  h

let buckets_of h =
  let acc = ref [] in
  Histogram.iter_buckets (fun ~lo ~hi ~count -> acc := (lo, hi, count) :: !acc) h;
  List.rev !acc

let test_histogram_quantile_edges () =
  (* Out-of-range q clamps into [0, 1], so the rank never exceeds the
     count (and never reads past the last bucket). *)
  let h = hist_of_samples [ 1.0; 2.0; 4.0; 8.0 ] in
  Alcotest.(check (float 1e-9))
    "q > 1 clamps to the max-rank quantile" (Histogram.quantile h 1.0)
    (Histogram.quantile h 42.0);
  Alcotest.(check (float 1e-9))
    "q < 0 clamps to the min-rank quantile" (Histogram.quantile h 0.0)
    (Histogram.quantile h (-3.0));
  Alcotest.(check bool) "q = 1 within exact observed max" true
    (Histogram.quantile h 1.0 <= Histogram.max_value h);
  (* A single sample: every q collapses onto it exactly — the bucket
     representative is clamped into the observed [min, max], which is a
     point. *)
  let one = hist_of_samples [ 37.5 ] in
  List.iter
    (fun q ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "single sample q=%g" q)
        37.5 (Histogram.quantile one q))
    [ 0.0; 0.5; 0.999; 1.0; 2.0 ]

let test_histogram_merge_quantiles_vs_sorted_oracle () =
  (* After an exact shard merge, quantiles must still land in the bucket
     of the true (sorted-array) order statistic of the union stream. *)
  let rng = Gf_util.Rng.create 29 in
  let gen n = Array.init n (fun _ -> 0.2 +. Gf_util.Rng.float rng 9000.0) in
  let a = gen 900 and b = gen 450 in
  let ha = hist_of_samples (Array.to_list a)
  and hb = hist_of_samples (Array.to_list b) in
  Histogram.merge ~into:ha hb;
  let union = Array.append a b in
  List.iter
    (fun q -> check_quantile_in_bucket ha union q)
    (0.001 :: quantile_points)

let test_histogram_merge_is_concat () =
  let rng = Gf_util.Rng.create 23 in
  let gen n = List.init n (fun _ -> 0.2 +. Gf_util.Rng.float rng 5000.0) in
  let a = gen 700 and b = gen 1300 in
  let ha = hist_of_samples a and hb = hist_of_samples b in
  let hc = hist_of_samples (a @ b) in
  Histogram.merge ~into:ha hb;
  Alcotest.(check int) "count" (Histogram.count hc) (Histogram.count ha);
  Alcotest.(check (float 1e-6)) "sum" (Histogram.sum hc) (Histogram.sum ha);
  Alcotest.(check (float 1e-9)) "min" (Histogram.min_value hc)
    (Histogram.min_value ha);
  Alcotest.(check (float 1e-9)) "max" (Histogram.max_value hc)
    (Histogram.max_value ha);
  Alcotest.(check bool) "buckets identical" true
    (buckets_of hc = buckets_of ha);
  List.iter
    (fun q ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "quantile %g" q)
        (Histogram.quantile hc q) (Histogram.quantile ha q))
    quantile_points

let test_histogram_layout_mismatch () =
  let a = Histogram.create ~lo:0.1 ~hi:1e5 () in
  let b = Histogram.create ~lo:0.2 ~hi:1e5 () in
  Alcotest.(check bool) "layouts differ" false (Histogram.same_layout a b);
  Alcotest.check_raises "merge refuses"
    (Invalid_argument "Histogram.merge: layouts differ") (fun () ->
      Histogram.merge ~into:a b)

let gen_samples =
  QCheck2.Gen.(list_size (1 -- 400) (map (fun u -> 0.05 +. (u *. 2e4)) (float_bound_inclusive 1.0)))

let prop_histogram_quantile_bounded =
  QCheck2.Test.make ~name:"histogram quantile lands in exact sample's bucket"
    ~count:200 gen_samples (fun samples ->
      let arr = Array.of_list samples in
      let h = hist_of_samples samples in
      List.for_all
        (fun q ->
          let exact = exact_quantile arr q in
          let approx = Histogram.quantile h q in
          let blo, bhi = Histogram.bounds_of_value h exact in
          approx >= blo && approx <= bhi)
        quantile_points)

let prop_histogram_merge_exact =
  QCheck2.Test.make ~name:"histogram merge == recording the concatenation"
    ~count:200
    QCheck2.Gen.(pair gen_samples gen_samples)
    (fun (a, b) ->
      let ha = hist_of_samples a and hb = hist_of_samples b in
      let hc = hist_of_samples (a @ b) in
      Histogram.merge ~into:ha hb;
      buckets_of hc = buckets_of ha
      && Histogram.count hc = Histogram.count ha
      && List.for_all
           (fun q ->
             Float.abs (Histogram.quantile hc q -. Histogram.quantile ha q)
             < 1e-9)
           quantile_points)

(* ----------------------------- recorder ----------------------------- *)

let offer r n =
  for i = 0 to n - 1 do
    Recorder.record r ~packet:i ~time:(float_of_int i) ~level:"gf"
      ~latency_us:9.0 ~count:1 Recorder.Hit
  done

let test_recorder_ring_keeps_newest () =
  let r = Recorder.create ~capacity:8 ~sample_every:1 () in
  offer r 20;
  Alcotest.(check int) "seen" 20 (Recorder.seen r);
  Alcotest.(check int) "recorded" 20 (Recorder.recorded r);
  Alcotest.(check int) "retained" 8 (Recorder.retained r);
  Alcotest.(check int) "dropped" 12 (Recorder.dropped r);
  let packets = List.map (fun e -> e.Recorder.packet) (Recorder.drain r) in
  Alcotest.(check (list int)) "newest 8, oldest first"
    [ 12; 13; 14; 15; 16; 17; 18; 19 ]
    packets

let test_recorder_sampling_rate () =
  let r = Recorder.create ~capacity:64 ~sample_every:3 () in
  offer r 10;
  Alcotest.(check int) "seen all" 10 (Recorder.seen r);
  let packets = List.map (fun e -> e.Recorder.packet) (Recorder.drain r) in
  Alcotest.(check (list int)) "every 3rd candidate" [ 0; 3; 6; 9 ] packets

let test_recorder_merge_concatenates () =
  let a = Recorder.create ~capacity:16 ~sample_every:1 () in
  let b = Recorder.create ~capacity:16 ~sample_every:1 () in
  offer a 3;
  for i = 100 to 102 do
    Recorder.record b ~packet:i ~time:0.0 ~level:"sw-mf" ~latency_us:0.0
      ~count:1 Recorder.Miss
  done;
  Recorder.merge ~into:a b;
  Alcotest.(check int) "census adds" 6 (Recorder.seen a);
  let packets = List.map (fun e -> e.Recorder.packet) (Recorder.drain a) in
  Alcotest.(check (list int)) "a's stream then b's" [ 0; 1; 2; 100; 101; 102 ]
    packets

(* ------------------------------ passive ------------------------------ *)

(* The latency ring must be an exact deferral of inline recording: same
   buckets, same left-to-right float sum (compared as bits), same exact
   extremes — through any number of mid-stream auto-flushes. *)
let test_passive_lat_ring_bit_identity () =
  let rng = Gf_util.Rng.create 5 in
  let samples = Array.init 1000 (fun _ -> 0.2 +. Gf_util.Rng.float rng 5000.0) in
  let inline = Histogram.create () in
  Array.iter (Histogram.record inline) samples;
  let ringed = Histogram.create () in
  let p =
    Passive.create ~lat_capacity:16 ~event_capacity:4 ~level_names:[| "gf" |]
      ~recorder:None ()
  in
  (* Alternate the computed-index and precomputed-index append paths. *)
  Array.iteri
    (fun i x ->
      if i mod 2 = 0 then Passive.lat_note p.Passive.lat_global ringed x
      else
        Passive.lat_note_at p.Passive.lat_global ringed
          ~idx:(Histogram.index ringed x) x)
    samples;
  Passive.flush_lat p.Passive.lat_global ringed;
  Alcotest.(check int) "count" (Histogram.count inline) (Histogram.count ringed);
  Alcotest.(check int64) "sum bits"
    (Int64.bits_of_float (Histogram.sum inline))
    (Int64.bits_of_float (Histogram.sum ringed));
  Alcotest.(check int64) "min bits"
    (Int64.bits_of_float (Histogram.min_value inline))
    (Int64.bits_of_float (Histogram.min_value ringed));
  Alcotest.(check int64) "max bits"
    (Int64.bits_of_float (Histogram.max_value inline))
    (Int64.bits_of_float (Histogram.max_value ringed));
  Alcotest.(check bool) "buckets identical" true
    (buckets_of inline = buckets_of ringed)

let passive_kinds =
  [|
    Recorder.Hit; Recorder.Miss; Recorder.Install; Recorder.Evict;
    Recorder.Promote; Recorder.Revalidate; Recorder.Reject;
    Recorder.Pressure_evict; Recorder.Defer; Recorder.Demote;
  |]

(* Candidates funnelled through the event ring must leave the recorder in
   the same state as offering each directly at emission time — whatever
   the ring capacity (i.e. however many mid-stream flushes happened),
   because ingest samples against the recorder's persistent census. *)
let test_passive_event_flush_cadence () =
  let levels = [| "gf"; "sw-mf" |] in
  let n = 100 in
  let candidate i =
    ( passive_kinds.(i mod Array.length passive_kinds),
      i mod 2,
      i,
      float_of_int i,
      float_of_int (i mod 7),
      1 + (i mod 3) )
  in
  let direct = Recorder.create ~capacity:32 ~sample_every:3 () in
  for i = 0 to n - 1 do
    let kind, level, packet, time, lat, count = candidate i in
    Recorder.record direct ~packet ~time ~level:levels.(level) ~latency_us:lat
      ~count kind
  done;
  let via_ring event_capacity =
    let r = Recorder.create ~capacity:32 ~sample_every:3 () in
    let p =
      Passive.create ~event_capacity ~level_names:levels ~recorder:(Some r) ()
    in
    for i = 0 to n - 1 do
      let kind, level, packet, time, lat, count = candidate i in
      Passive.note p ~kind ~level ~packet ~time ~lat ~count
    done;
    Passive.flush_events p;
    r
  in
  List.iter
    (fun (name, r) ->
      Alcotest.(check int) (name ^ " seen") (Recorder.seen direct)
        (Recorder.seen r);
      Alcotest.(check int) (name ^ " recorded") (Recorder.recorded direct)
        (Recorder.recorded r);
      Alcotest.(check bool) (name ^ " events identical") true
        (Recorder.drain direct = Recorder.drain r))
    [ ("tiny ring", via_ring 7); ("big ring", via_ring 512) ]

let test_passive_census_and_registry () =
  let p =
    Passive.create ~level_names:[| "gf"; "sw-mf" |] ~recorder:None ()
  in
  let c0 = p.Passive.counters.(0) and c1 = p.Passive.counters.(1) in
  c0.Passive.c_hits <- 41;
  c0.Passive.c_promotes <- 2;
  c1.Passive.c_evicts <- 3;
  Alcotest.(check int) "total candidates" 46 (Passive.total_candidates p);
  (* note is a no-op without a recorder: the event ring never grows. *)
  Passive.note p ~kind:Recorder.Hit ~level:0 ~packet:0 ~time:0.0 ~lat:1.0
    ~count:1;
  Alcotest.(check int) "event ring untouched" 0 p.Passive.ev_len;
  let reg = Registry.create () in
  Passive.to_registry p reg;
  Passive.to_registry p reg;
  (* export is set-not-add: idempotent *)
  let v kind level =
    !(Registry.counter reg
        ~labels:[ ("kind", kind); ("level", level) ]
        "gigaflow_events_total")
  in
  Alcotest.(check int) "hits exported" 41 (v "hit" "gf");
  Alcotest.(check int) "promotes exported" 2 (v "promote" "gf");
  Alcotest.(check int) "evicts exported" 3 (v "evict" "sw-mf");
  Alcotest.(check int) "absent kind zero" 0 (v "miss" "gf")

(* ------------------------------ series ------------------------------ *)

let sample_at packet =
  {
    Series.s_packet = packet;
    s_time = float_of_int packet;
    s_hw_hits = packet;
    s_sw_hits = 0;
    s_slowpaths = 0;
    s_hw_hit_rate = 1.0;
    s_mean_us = 9.0;
    s_p50_us = 9.0;
    s_p90_us = 9.0;
    s_p99_us = 9.0;
    s_p999_us = 9.0;
    s_levels = [];
  }

let test_series_cadence_and_dedup () =
  let s = Series.create ~every:100 in
  Alcotest.(check bool) "due at multiple" true (Series.due s ~packets:200);
  Alcotest.(check bool) "not due off-cadence" false (Series.due s ~packets:250);
  Series.push s (sample_at 200);
  Series.push s (sample_at 200);
  (* duplicate packet: dropped *)
  Series.push s (sample_at 300);
  Alcotest.(check int) "dedup by packet" 2 (Series.length s);
  Alcotest.(check (list int)) "oldest first" [ 200; 300 ]
    (List.map (fun x -> x.Series.s_packet) (Series.samples s))

(* ----------------------------- registry ----------------------------- *)

let test_registry_merge () =
  let a = Registry.create () and b = Registry.create () in
  let ca = Registry.counter a "pkts" and cb = Registry.counter b "pkts" in
  ca := 10;
  cb := 32;
  let gb = Registry.gauge b "occ" in
  gb := 7.5;
  let hb = Registry.histogram b ~lo:0.1 ~hi:1e5 "lat" in
  Histogram.record hb 9.0;
  Registry.merge ~into:a b;
  Alcotest.(check int) "counters add" 42 !(Registry.counter a "pkts");
  Alcotest.(check (float 1e-9)) "absent gauge copied" 7.5
    !(Registry.gauge a "occ");
  Alcotest.(check int) "absent histogram copied" 1
    (Histogram.count (Registry.histogram a ~lo:0.1 ~hi:1e5 "lat"));
  (* The copy is independent of the source. *)
  Histogram.record hb 9.0;
  Alcotest.(check int) "deep copy" 1
    (Histogram.count (Registry.histogram a ~lo:0.1 ~hi:1e5 "lat"))

(* ----------------------------- exporters ----------------------------- *)

let test_prometheus_exposition () =
  let r = Registry.create () in
  let c = Registry.counter r ~help:"packets" ~labels:[ ("level", "gf") ] "pkts_total" in
  c := 5;
  let h = Registry.histogram r ~lo:0.1 ~hi:1e5 "lat_us" in
  Histogram.record h 9.0;
  Histogram.record h 12.0;
  let text = Export.prometheus r in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "contains %S" needle)
        true
        (contains ~needle text))
    [
      "# TYPE pkts_total counter";
      "pkts_total{level=\"gf\"} 5";
      "# TYPE lat_us summary";
      "lat_us{quantile=\"0.5\"}";
      "lat_us_count 2";
    ]

let test_jsonl_stream_parses () =
  let tel =
    Telemetry.create
      ~config:
        {
          Telemetry.sample_every = 1;
          event_capacity = 16;
          event_sample_every = 1;
          trace_sample_every = 0;
        }
      ()
  in
  Telemetry.event tel ~packet:0 ~time:0.0 ~level:"gf" ~latency_us:9.0 ~count:1
    Recorder.Hit;
  Telemetry.push_sample tel (sample_at 1);
  let path = Filename.temp_file "gf_telemetry" ".jsonl" in
  let oc = open_out path in
  Telemetry.write_jsonl ~meta:[ ("seed", Json.Int 77) ] oc tel;
  close_out oc;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Sys.remove path;
  let lines = List.rev !lines in
  Alcotest.(check int) "meta + 1 sample + 1 event" 3 (List.length lines);
  List.iter
    (fun line ->
      match Json.of_string line with
      | Ok json ->
          Alcotest.(check bool) "has type" true
            (Option.is_some (Json.member "type" json))
      | Error e -> Alcotest.failf "unparseable line %S: %s" line e)
    lines

(* ------------------------ datapath integration ------------------------ *)

let small_profile =
  {
    Gf_workload.Classbench.acl_profile with
    Gf_workload.Classbench.endpoints = 128;
    subnets = 16;
    services = 32;
  }

let small_workload ?(seed = 77) () =
  Pipebench.make ~profile:small_profile ~combos:512 ~unique_flows:2000
    ~duration:20.0
    ~info:(Option.get (Catalog.find "PSC"))
    ~locality:Ruleset.High ~seed ()

let counters (m : Metrics.t) =
  [
    m.Metrics.packets; m.Metrics.hw_hits; m.Metrics.sw_hits; m.Metrics.slowpaths;
    m.Metrics.drops; m.Metrics.hw_installs; m.Metrics.hw_shared;
    m.Metrics.hw_rejected; m.Metrics.hw_evictions;
  ]

let telemetry_config =
  {
    Telemetry.sample_every = 1000;
    event_capacity = 512;
    event_sample_every = 7;
    trace_sample_every = 0;
  }

let test_datapath_telemetry_is_transparent () =
  let w = small_workload () in
  let cfg = Datapath.emc_gf_sw () in
  let dp_off = Datapath.create cfg (Pipebench.pipeline w) in
  let m_off = Datapath.run dp_off w.Pipebench.trace in
  let tel = Telemetry.create ~config:telemetry_config () in
  let dp_on = Datapath.create ~telemetry:tel cfg (Pipebench.pipeline w) in
  let m_on = Datapath.run dp_on w.Pipebench.trace in
  Alcotest.(check (list int)) "telemetry does not perturb the run"
    (counters m_off) (counters m_on)

let test_final_sample_matches_metrics () =
  let w = small_workload () in
  let tel = Telemetry.create ~config:telemetry_config () in
  let dp = Datapath.create ~telemetry:tel (Datapath.emc_gf_sw ()) (Pipebench.pipeline w) in
  let m = Datapath.run dp w.Pipebench.trace in
  match List.rev (Telemetry.samples tel) with
  | [] -> Alcotest.fail "no samples pushed"
  | last :: _ ->
      Alcotest.(check int) "packet" m.Metrics.packets last.Series.s_packet;
      Alcotest.(check int) "hw hits" m.Metrics.hw_hits last.Series.s_hw_hits;
      Alcotest.(check int) "sw hits" m.Metrics.sw_hits last.Series.s_sw_hits;
      Alcotest.(check int) "slowpaths" m.Metrics.slowpaths
        last.Series.s_slowpaths;
      Alcotest.(check (float 1e-12)) "hit rate" (Metrics.hw_hit_rate m)
        last.Series.s_hw_hit_rate;
      Alcotest.(check (float 1e-9)) "mean" (Metrics.mean_latency_us m)
        last.Series.s_mean_us;
      List.iter
        (fun (ls : Series.level_sample) ->
          match Metrics.find_level m ls.Series.ls_level with
          | None -> Alcotest.failf "sample level %S not in metrics" ls.Series.ls_level
          | Some lm ->
              Alcotest.(check int)
                (ls.Series.ls_level ^ " hits")
                lm.Metrics.hits ls.Series.ls_hits;
              Alcotest.(check int)
                (ls.Series.ls_level ^ " occupancy")
                lm.Metrics.occupancy_final ls.Series.ls_occupancy)
        last.Series.s_levels;
      (* The Prometheus snapshot agrees too. *)
      let text = Telemetry.prometheus tel in
      let expected = Printf.sprintf "gigaflow_packets_total %d" m.Metrics.packets in
      Alcotest.(check bool) "prometheus packet count" true
        (contains ~needle:expected text)

let test_parallel_telemetry_modes_agree () =
  let w = small_workload () in
  let cfg = Datapath.emc_gf_sw () in
  let run mode =
    Parallel.replay ~mode ~domains:4 ~telemetry:telemetry_config ~cfg
      (Pipebench.pipeline w) w.Pipebench.trace
  in
  let seq = run `Sequential and par = run `Domains in
  let tel_of r = Option.get r.Parallel.telemetry in
  let ts = tel_of seq and tp = tel_of par in
  Alcotest.(check bool) "event streams identical" true
    (Telemetry.events ts = Telemetry.events tp);
  Alcotest.(check bool) "sample streams identical" true
    (Telemetry.samples ts = Telemetry.samples tp);
  Alcotest.(check string) "merged registries identical"
    (Telemetry.prometheus ts) (Telemetry.prometheus tp)

let suite =
  [
    ("histogram quantiles vs oracle", `Quick, test_histogram_quantiles_vs_oracle);
    ("histogram empty + clamping", `Quick, test_histogram_empty_and_edges);
    ("histogram quantile edges", `Quick, test_histogram_quantile_edges);
    ("histogram merge vs sorted oracle", `Quick,
     test_histogram_merge_quantiles_vs_sorted_oracle);
    ("histogram merge = concat", `Quick, test_histogram_merge_is_concat);
    ("histogram layout mismatch", `Quick, test_histogram_layout_mismatch);
    ("passive lat ring = inline records", `Quick, test_passive_lat_ring_bit_identity);
    ("passive event flush cadence", `Quick, test_passive_event_flush_cadence);
    ("passive census + registry export", `Quick, test_passive_census_and_registry);
    ("recorder ring keeps newest", `Quick, test_recorder_ring_keeps_newest);
    ("recorder sampling rate", `Quick, test_recorder_sampling_rate);
    ("recorder merge concatenates", `Quick, test_recorder_merge_concatenates);
    ("series cadence + dedup", `Quick, test_series_cadence_and_dedup);
    ("registry merge", `Quick, test_registry_merge);
    ("prometheus exposition", `Quick, test_prometheus_exposition);
    ("jsonl stream parses", `Quick, test_jsonl_stream_parses);
    ("telemetry transparent", `Slow, test_datapath_telemetry_is_transparent);
    ("final sample = metrics", `Quick, test_final_sample_matches_metrics);
    ("parallel modes agree", `Slow, test_parallel_telemetry_modes_agree);
  ]

let props = [ prop_histogram_quantile_bounded; prop_histogram_merge_exact ]
