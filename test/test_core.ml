(* Tests for gigaflow.core: Partitioner, Rulegen, Ltm_table, Ltm_cache,
   Coverage, revalidation and the Gigaflow facade.

   The central property is END-TO-END CONSISTENCY: any packet that hits the
   Gigaflow LTM cache — possibly by chaining sub-traversals installed by
   DIFFERENT flows (cross-producting) — must receive exactly the decision
   and header rewrites the full slowpath pipeline would produce. *)

open Helpers
module Field = Gf_flow.Field
module Flow = Gf_flow.Flow
module Mask = Gf_flow.Mask
module Action = Gf_pipeline.Action
module Executor = Gf_pipeline.Executor
module Traversal = Gf_pipeline.Traversal
module Pipeline = Gf_pipeline.Pipeline
module Partitioner = Gf_core.Partitioner
module Rulegen = Gf_core.Rulegen
module Ltm_rule = Gf_core.Ltm_rule
module Ltm_table = Gf_core.Ltm_table
module Ltm_cache = Gf_core.Ltm_cache
module Coverage = Gf_core.Coverage
module Config = Gf_core.Config
module Gigaflow = Gf_core.Gigaflow

(* --------------------------- Partitioner --------------------------- *)

let test_coherent () =
  let s = Field.Set.of_list in
  let fieldsets =
    [|
      s [ Field.In_port ];
      s [ Field.In_port; Field.Vlan ];
      s [ Field.Eth_src ];
      s [ Field.Ip_dst ];
      s [];
    |]
  in
  Alcotest.(check bool) "chained overlap" true
    (Partitioner.coherent fieldsets ~first:0 ~last:1);
  Alcotest.(check bool) "disjoint pair" false
    (Partitioner.coherent fieldsets ~first:1 ~last:2);
  Alcotest.(check bool) "singleton" true (Partitioner.coherent fieldsets ~first:3 ~last:3);
  Alcotest.(check bool) "empty step is neutral" true
    (Partitioner.coherent fieldsets ~first:3 ~last:4);
  Alcotest.(check bool) "non-adjacent overlap connects" true
    (Partitioner.coherent
       [| s [ Field.Eth_src ]; s [ Field.Ip_dst ]; s [ Field.Eth_src; Field.Ip_dst ] |]
       ~first:0 ~last:2)

let run_traversal rng p =
  let rec try_flow n =
    if n = 0 then None
    else
      let flow = pool_flow rng in
      match Executor.execute p flow with
      | Ok tr when Traversal.length tr >= 2 -> Some tr
      | Ok _ | Error _ -> try_flow (n - 1)
  in
  try_flow 50

let check_partition_shape ~n ~max_segments segments =
  let rec go expected = function
    | [] -> Alcotest.(check int) "covers all steps" n expected
    | s :: rest ->
        Alcotest.(check int) "contiguous" expected s.Partitioner.first;
        Alcotest.(check bool) "ordered" true (s.Partitioner.last >= s.Partitioner.first);
        go (s.Partitioner.last + 1) rest
  in
  go 0 segments;
  Alcotest.(check bool) "within budget" true (List.length segments <= max_segments)

let prop_partition_valid =
  QCheck2.Test.make ~name:"partitions are contiguous covers within budget" ~count:60
    QCheck2.Gen.(pair (int_range 0 100_000) (int_range 1 6))
    (fun (seed, k) ->
      let rng = Gf_util.Rng.create seed in
      let p = random_pipeline rng ~tables:5 ~rules_per_table:8 in
      match run_traversal rng p with
      | None -> true
      | Some tr ->
          let n = Traversal.length tr in
          List.for_all
            (fun scheme ->
              let segments =
                Partitioner.partition ~rng scheme ~max_segments:k tr
              in
              check_partition_shape ~n ~max_segments:k segments;
              true)
            [ Partitioner.Disjoint; Partitioner.Random; Partitioner.One_to_one ])

let prop_partition_optimal =
  QCheck2.Test.make ~name:"DP partition matches brute force optimum" ~count:60
    QCheck2.Gen.(pair (int_range 0 100_000) (int_range 1 5))
    (fun (seed, k) ->
      let rng = Gf_util.Rng.create seed in
      let p = random_pipeline rng ~tables:5 ~rules_per_table:8 in
      match run_traversal rng p with
      | None -> true
      | Some tr ->
          let segments = Partitioner.partition Partitioner.Disjoint ~max_segments:k tr in
          let score, penalty = Partitioner.evaluate tr segments in
          let bscore, bpenalty, bsegs = Partitioner.brute_force_best tr ~max_segments:k in
          score = bscore && penalty = bpenalty && List.length segments = bsegs)

let test_one_to_one_shape () =
  let rng = Gf_util.Rng.create 31 in
  let p = random_pipeline rng ~tables:5 ~rules_per_table:8 in
  match run_traversal rng p with
  | None -> ()
  | Some tr ->
      let n = Traversal.length tr in
      let segments = Partitioner.partition Partitioner.One_to_one ~max_segments:8 tr in
      Alcotest.(check int) "one per step (n <= k)" (min n 8) (List.length segments);
      List.iteri
        (fun i s ->
          if i < List.length segments - 1 then
            Alcotest.(check int) "unit segment" 1 (Partitioner.segment_length s))
        segments

(* ----------------------------- Rulegen ----------------------------- *)

let test_rulegen_structure () =
  let rng = Gf_util.Rng.create 32 in
  let p = random_pipeline rng ~tables:5 ~rules_per_table:8 in
  match run_traversal rng p with
  | None -> Alcotest.fail "no traversal"
  | Some tr ->
      let segments = Partitioner.partition Partitioner.Disjoint ~max_segments:4 tr in
      let rules = Rulegen.rules_of_partition ~version:7 tr segments in
      Alcotest.(check int) "one rule per segment" (List.length segments)
        (List.length rules);
      List.iteri
        (fun i rule ->
          let seg = List.nth segments i in
          Alcotest.(check int) "tag is first table"
            tr.Traversal.steps.(seg.Partitioner.first).Traversal.table_id
            rule.Ltm_rule.tag_in;
          Alcotest.(check int) "priority = length" (Partitioner.segment_length seg)
            rule.Ltm_rule.priority;
          Alcotest.(check int) "version recorded" 7 rule.Ltm_rule.origin.Ltm_rule.version;
          match rule.Ltm_rule.next with
          | Ltm_rule.Done terminal ->
              Alcotest.(check bool) "only last is Done" true
                (i = List.length rules - 1);
              Alcotest.check terminal_testable "terminal preserved"
                tr.Traversal.terminal terminal
          | Ltm_rule.Next_tag tag ->
              Alcotest.(check int) "tag chains to next segment"
                tr.Traversal.steps.(seg.Partitioner.last + 1).Traversal.table_id tag)
        rules

let test_rulegen_rejects_bad_partition () =
  let rng = Gf_util.Rng.create 33 in
  let p = random_pipeline rng ~tables:5 ~rules_per_table:8 in
  match run_traversal rng p with
  | None -> ()
  | Some tr ->
      Alcotest.check_raises "gap rejected"
        (Invalid_argument "Rulegen: segments not contiguous") (fun () ->
          ignore
            (Rulegen.rules_of_partition ~version:0 tr
               [ { Partitioner.first = 1; last = Traversal.length tr - 1 } ]))

(* ---------------------------- Ltm_table ---------------------------- *)

let mk_rule ?(tag_in = 0) ?(priority = 1) ?(commit = []) ~next fm =
  {
    Ltm_rule.tag_in;
    fmatch = fm;
    priority;
    commit;
    next;
    origin = { Ltm_rule.parent_flow = Flow.zero; length = priority; version = 0 };
  }

let test_ltm_table_tag_gating () =
  let t = Ltm_table.create ~capacity:8 in
  let fm = Fmatch.of_fields [ (Field.Vlan, 1) ] in
  ignore (Ltm_table.insert t ~now:0.0 (mk_rule ~tag_in:3 ~next:(Ltm_rule.Done Action.Drop) fm));
  let flow = Flow.make [ (Field.Vlan, 1) ] in
  Alcotest.(check bool) "matching tag hits" true
    (fst (Ltm_table.lookup t ~tag:3 flow) <> None);
  Alcotest.(check bool) "wrong tag misses" true
    (fst (Ltm_table.lookup t ~tag:4 flow) = None)

let test_ltm_table_longest_traversal_match () =
  (* Two rules with the same tag match; the longer sub-traversal (higher
     rho) must win — the LTM criterion of section 4.1.1. *)
  let t = Ltm_table.create ~capacity:8 in
  let fm_short = Fmatch.of_fields [ (Field.Vlan, 1) ] in
  let fm_long = Fmatch.of_fields [ (Field.Vlan, 1); (Field.Ip_dst, 0xA) ] in
  ignore
    (Ltm_table.insert t ~now:0.0
       (mk_rule ~priority:2 ~next:(Ltm_rule.Next_tag 9) fm_short));
  ignore
    (Ltm_table.insert t ~now:0.0
       (mk_rule ~priority:4 ~next:(Ltm_rule.Next_tag 11) fm_long));
  let flow = Flow.make [ (Field.Vlan, 1); (Field.Ip_dst, 0xA) ] in
  match fst (Ltm_table.lookup t ~tag:0 flow) with
  | Some stored ->
      Alcotest.(check int) "longest wins" 4 stored.Ltm_table.rule.Ltm_rule.priority
  | None -> Alcotest.fail "expected hit"

let test_ltm_table_dedup () =
  let t = Ltm_table.create ~capacity:8 in
  let fm = Fmatch.of_fields [ (Field.Vlan, 2) ] in
  let rule = mk_rule ~next:(Ltm_rule.Done (Action.Output 1)) fm in
  ignore (Ltm_table.insert t ~now:0.0 rule);
  Alcotest.(check bool) "identical found" true (Ltm_table.find_identical t rule <> None);
  let different = mk_rule ~next:(Ltm_rule.Done (Action.Output 2)) fm in
  Alcotest.(check bool) "different action not found" true
    (Ltm_table.find_identical t different = None)

let test_ltm_table_capacity () =
  let t = Ltm_table.create ~capacity:1 in
  ignore
    (Ltm_table.insert t ~now:0.0
       (mk_rule ~next:(Ltm_rule.Done Action.Drop) (Fmatch.of_fields [ (Field.Vlan, 1) ])));
  Alcotest.(check bool) "full" true (Ltm_table.is_full t);
  Alcotest.check_raises "insert into full" (Invalid_argument "Ltm_table.insert: table full")
    (fun () ->
      ignore
        (Ltm_table.insert t ~now:0.0
           (mk_rule ~next:(Ltm_rule.Done Action.Drop)
              (Fmatch.of_fields [ (Field.Vlan, 9) ]))))

(* ---------------------- Ltm_cache install/walk ---------------------- *)

let test_ltm_cache_fig5c_walk () =
  (* Reconstruct the spirit of the paper's Fig. 5c: a rule in GF1 whose tag
     update skips GF2 and continues at GF3. *)
  let cache = Ltm_cache.create (Config.v ~tables:3 ~table_capacity:8 ()) in
  let seg1 =
    mk_rule ~tag_in:1 ~priority:4 ~next:(Ltm_rule.Next_tag 9)
      (Fmatch.of_fields [ (Field.Eth_dst, 0xAA) ])
  in
  let seg2 =
    mk_rule ~tag_in:9 ~priority:1 ~next:(Ltm_rule.Done (Action.Output 7))
      (Fmatch.of_fields [ (Field.Tp_src, 80) ])
  in
  (match Ltm_cache.install cache ~now:0.0 [ seg1; seg2 ] with
  | Ltm_cache.Installed { fresh = 2; shared = 0; _ } -> ()
  | _ -> Alcotest.fail "install failed");
  let flow = Flow.make [ (Field.Eth_dst, 0xAA); (Field.Tp_src, 80) ] in
  match fst (Ltm_cache.lookup cache ~now:1.0 ~entry_tag:1 flow) with
  | Some hit ->
      Alcotest.check terminal_testable "terminal" (Action.Output 7) hit.Ltm_cache.terminal;
      Alcotest.(check int) "two tables matched" 2 hit.Ltm_cache.tables_matched
  | None -> Alcotest.fail "expected hit"

let test_ltm_cache_incomplete_walk_misses () =
  let cache = Ltm_cache.create (Config.v ~tables:2 ~table_capacity:8 ()) in
  let seg1 =
    mk_rule ~tag_in:1 ~priority:1 ~next:(Ltm_rule.Next_tag 5)
      (Fmatch.of_fields [ (Field.Vlan, 1) ])
  in
  (match Ltm_cache.install cache ~now:0.0 [ seg1 ] with
  | Ltm_cache.Installed _ -> ()
  | Ltm_cache.Rejected -> Alcotest.fail "rejected");
  (* Matching seg1 but nothing provides tag 5 -> overall miss. *)
  Alcotest.(check bool) "dangling tag = miss" true
    (fst (Ltm_cache.lookup cache ~now:0.0 ~entry_tag:1 (Flow.make [ (Field.Vlan, 1) ]))
    = None)

let test_ltm_cache_sharing () =
  let cache = Ltm_cache.create (Config.v ~tables:2 ~table_capacity:8 ()) in
  let seg_shared =
    mk_rule ~tag_in:0 ~priority:2 ~next:(Ltm_rule.Next_tag 4)
      (Fmatch.of_fields [ (Field.Eth_src, 0x1) ])
  in
  let seg_a =
    mk_rule ~tag_in:4 ~priority:1 ~next:(Ltm_rule.Done (Action.Output 1))
      (Fmatch.of_fields [ (Field.Tp_dst, 80) ])
  in
  let seg_b =
    mk_rule ~tag_in:4 ~priority:1 ~next:(Ltm_rule.Done (Action.Output 2))
      (Fmatch.of_fields [ (Field.Tp_dst, 443) ])
  in
  (match Ltm_cache.install cache ~now:0.0 [ seg_shared; seg_a ] with
  | Ltm_cache.Installed { fresh = 2; _ } -> ()
  | _ -> Alcotest.fail "first install");
  (match Ltm_cache.install cache ~now:1.0 [ seg_shared; seg_b ] with
  | Ltm_cache.Installed { fresh = 1; shared = 1; _ } -> ()
  | _ -> Alcotest.fail "expected sharing");
  Alcotest.(check int) "3 entries for 4 segments" 3 (Ltm_cache.occupancy cache);
  let hist = Ltm_cache.sharing_histogram cache in
  Alcotest.(check bool) "one entry shared twice" true (List.mem (2, 1) hist);
  Alcotest.(check (float 1e-9)) "mean sharing" (4.0 /. 3.0) (Ltm_cache.mean_sharing cache)

let test_ltm_cache_all_or_nothing () =
  let cache = Ltm_cache.create (Config.v ~tables:2 ~table_capacity:1 ()) in
  let fm i = Fmatch.of_fields [ (Field.Vlan, i) ] in
  (* Fill both tables. *)
  (match
     Ltm_cache.install cache ~now:0.0
       [
         mk_rule ~tag_in:0 ~next:(Ltm_rule.Next_tag 1) (fm 1);
         mk_rule ~tag_in:1 ~next:(Ltm_rule.Done Action.Drop) (fm 2);
       ]
   with
  | Ltm_cache.Installed _ -> ()
  | Ltm_cache.Rejected -> Alcotest.fail "fill failed");
  let occ = Ltm_cache.occupancy cache in
  (match
     Ltm_cache.install cache ~now:1.0
       [
         mk_rule ~tag_in:0 ~next:(Ltm_rule.Next_tag 1) (fm 3);
         mk_rule ~tag_in:1 ~next:(Ltm_rule.Done Action.Drop) (fm 4);
       ]
   with
  | Ltm_cache.Rejected -> ()
  | Ltm_cache.Installed _ -> Alcotest.fail "expected rejection");
  Alcotest.(check int) "nothing partially installed" occ (Ltm_cache.occupancy cache);
  Alcotest.(check int) "rejection counted" 1
    (Ltm_cache.stats cache).Gf_cache.Cache_stats.rejected

let test_ltm_cache_expire () =
  let cache = Ltm_cache.create (Config.v ~tables:2 ~table_capacity:8 ()) in
  ignore
    (Ltm_cache.install cache ~now:0.0
       [ mk_rule ~tag_in:0 ~next:(Ltm_rule.Done Action.Drop) (Fmatch.of_fields [ (Field.Vlan, 1) ]) ]);
  ignore
    (Ltm_cache.install cache ~now:5.0
       [ mk_rule ~tag_in:0 ~next:(Ltm_rule.Done Action.Drop) (Fmatch.of_fields [ (Field.Vlan, 2) ]) ]);
  Alcotest.(check int) "one stale" 1 (Ltm_cache.expire cache ~now:11.0 ~max_idle:10.0);
  Alcotest.(check int) "one left" 1 (Ltm_cache.occupancy cache)

(* ------------------- Ltm_cache pressure eviction ------------------- *)

let test_ltm_cache_pressure_eviction () =
  (* Single-segment entries, 2 tables x capacity 1, LRU: once full, every
     install evicts exactly one stale entry and occupancy stays pinned. *)
  let cache =
    Ltm_cache.create
      (Config.v ~tables:2 ~table_capacity:1 ~policy:Gf_cache.Evict.Lru ())
  in
  let fm i = Fmatch.of_fields [ (Field.Vlan, i) ] in
  let pressure = ref 0 in
  for i = 1 to 20 do
    match
      Ltm_cache.install cache ~now:(float_of_int i)
        [ mk_rule ~tag_in:0 ~next:(Ltm_rule.Done Action.Drop) (fm i) ]
    with
    | Ltm_cache.Installed { pressure_evicted; _ } -> pressure := !pressure + pressure_evicted
    | Ltm_cache.Rejected -> Alcotest.fail "LRU policy rejected an install"
  done;
  Alcotest.(check int) "occupancy pinned at capacity" 2 (Ltm_cache.occupancy cache);
  Alcotest.(check int) "one eviction per over-capacity install" 18 !pressure;
  Alcotest.(check int) "stats agree" 18
    (Ltm_cache.stats cache).Gf_cache.Cache_stats.pressure_evictions;
  Alcotest.(check int) "nothing rejected" 0
    (Ltm_cache.stats cache).Gf_cache.Cache_stats.rejected;
  Alcotest.(check int) "idle-eviction counter untouched" 0
    (Ltm_cache.stats cache).Gf_cache.Cache_stats.evictions;
  Alcotest.(check int) "no stranded entries" 0
    (Ltm_cache.stranded cache ~entry_tags:[ 0 ])

let test_ltm_cache_eviction_respects_tag_chains () =
  (* A referenced chain prefix must never be evicted: with table 0 holding
     only the prefix of a live chain, a 2-segment install cannot free a
     slot there and is rejected rather than stranding the continuation. *)
  let cache =
    Ltm_cache.create
      (Config.v ~tables:2 ~table_capacity:1 ~policy:Gf_cache.Evict.Lru ())
  in
  let fm i = Fmatch.of_fields [ (Field.Vlan, i) ] in
  (match
     Ltm_cache.install cache ~now:0.0
       [
         mk_rule ~tag_in:0 ~next:(Ltm_rule.Next_tag 7) (fm 1);
         mk_rule ~tag_in:7 ~next:(Ltm_rule.Done Action.Drop) (fm 2);
       ]
   with
  | Ltm_cache.Installed _ -> ()
  | Ltm_cache.Rejected -> Alcotest.fail "fill failed");
  (match
     Ltm_cache.install cache ~now:1.0
       [
         mk_rule ~tag_in:0 ~next:(Ltm_rule.Next_tag 8) (fm 3);
         mk_rule ~tag_in:8 ~next:(Ltm_rule.Done Action.Drop) (fm 4);
       ]
   with
  | Ltm_cache.Rejected -> ()
  | Ltm_cache.Installed _ -> Alcotest.fail "evicting the prefix strands the chain");
  Alcotest.(check int) "chain intact" 0 (Ltm_cache.stranded cache ~entry_tags:[ 0 ]);
  (* A single-segment install can take the leaf's slot (the leaf is safe:
     nothing depends on it), after which the walk still never strands —
     the old prefix simply dead-ends into the slowpath. *)
  (match
     Ltm_cache.install cache ~now:2.0
       [ mk_rule ~tag_in:0 ~next:(Ltm_rule.Done Action.Drop) (fm 5) ]
   with
  | Ltm_cache.Installed { pressure_evicted; _ } ->
      Alcotest.(check int) "evicted the leaf only" 1 pressure_evicted
  | Ltm_cache.Rejected -> Alcotest.fail "leaf slot should be reclaimable");
  Alcotest.(check int) "occupancy still capped" 2 (Ltm_cache.occupancy cache);
  Alcotest.(check int) "reachability preserved" 0
    (Ltm_cache.stranded cache ~entry_tags:[ 0 ])

let test_ltm_cache_priority_aware_evicts_short () =
  (* Priority encodes sub-traversal length: the short (least coverage)
     entry goes first even when it is the more recently completed one. *)
  let cache =
    Ltm_cache.create
      (Config.v ~tables:2 ~table_capacity:1 ~policy:Gf_cache.Evict.Priority_aware ())
  in
  let fm i = Fmatch.of_fields [ (Field.Vlan, i) ] in
  ignore
    (Ltm_cache.install cache ~now:0.0
       [ mk_rule ~tag_in:0 ~priority:5 ~next:(Ltm_rule.Done (Action.Output 1)) (fm 1) ]);
  ignore
    (Ltm_cache.install cache ~now:1.0
       [ mk_rule ~tag_in:0 ~priority:1 ~next:(Ltm_rule.Done (Action.Output 2)) (fm 2) ]);
  (match
     Ltm_cache.install cache ~now:2.0
       [ mk_rule ~tag_in:0 ~priority:3 ~next:(Ltm_rule.Done (Action.Output 3)) (fm 3) ]
   with
  | Ltm_cache.Installed { pressure_evicted = 1; _ } -> ()
  | _ -> Alcotest.fail "expected one pressure eviction");
  match
    fst
      (Ltm_cache.lookup cache ~now:3.0 ~entry_tag:0 (Flow.make [ (Field.Vlan, 1) ]))
  with
  | Some hit ->
      Alcotest.check terminal_testable "long traversal survived" (Action.Output 1)
        hit.Ltm_cache.terminal
  | None -> Alcotest.fail "high-priority entry was evicted"

let test_ltm_cache_reject_counters_unchanged () =
  (* The default policy must reproduce the historical counters exactly:
     rejects counted, no pressure evictions, occupancy frozen. *)
  let cache = Ltm_cache.create (Config.v ~tables:2 ~table_capacity:1 ()) in
  let fm i = Fmatch.of_fields [ (Field.Vlan, i) ] in
  for i = 1 to 10 do
    ignore
      (Ltm_cache.install cache ~now:(float_of_int i)
         [ mk_rule ~tag_in:0 ~next:(Ltm_rule.Done Action.Drop) (fm i) ])
  done;
  let stats = Ltm_cache.stats cache in
  Alcotest.(check int) "two landed" 2 (Ltm_cache.occupancy cache);
  Alcotest.(check int) "eight rejected" 8 stats.Gf_cache.Cache_stats.rejected;
  Alcotest.(check int) "zero pressure evictions" 0
    stats.Gf_cache.Cache_stats.pressure_evictions

(* Under random single/multi-segment install churn with an evicting policy,
   occupancy never exceeds capacity and no entry is ever stranded. *)
let prop_ltm_no_stranding_under_churn =
  QCheck2.Test.make ~name:"ltm eviction never strands entries" ~count:40
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Gf_util.Rng.create seed in
      let policy =
        Gf_util.Rng.pick rng
          [| Gf_cache.Evict.Lru; Gf_cache.Evict.Random; Gf_cache.Evict.Priority_aware |]
      in
      let cache =
        Ltm_cache.create (Config.v ~tables:3 ~table_capacity:4 ~policy ())
      in
      let total = 3 * 4 in
      let ok = ref true in
      for i = 1 to 200 do
        let now = float_of_int i in
        let vlan () = Gf_util.Rng.int rng 64 in
        let segs =
          if Gf_util.Rng.bool rng then
            [
              mk_rule ~tag_in:0 ~priority:2
                ~next:(Ltm_rule.Next_tag 7)
                (Fmatch.of_fields [ (Field.Vlan, vlan ()) ]);
              mk_rule ~tag_in:7 ~priority:1
                ~next:(Ltm_rule.Done Action.Drop)
                (Fmatch.of_fields [ (Field.Vlan, vlan ()) ]);
            ]
          else
            [
              mk_rule ~tag_in:0 ~priority:1
                ~next:(Ltm_rule.Done Action.Drop)
                (Fmatch.of_fields [ (Field.Vlan, vlan ()) ]);
            ]
        in
        ignore (Ltm_cache.install cache ~now segs);
        ignore
          (Ltm_cache.lookup cache ~now ~entry_tag:0
             (Flow.make [ (Field.Vlan, vlan ()) ]));
        if
          Ltm_cache.occupancy cache > total
          || Ltm_cache.stranded cache ~entry_tags:[ 0 ] > 0
        then ok := false
      done;
      !ok)

(* --------------- End-to-end consistency (the big one) --------------- *)

let gigaflow_consistency ~scheme seed =
  let rng = Gf_util.Rng.create seed in
  let p = random_pipeline rng ~tables:5 ~rules_per_table:10 in
  let gf =
    Gigaflow.create ~rng_seed:seed
      (Config.v ~tables:4 ~table_capacity:512 ~scheme ())
  in
  let ok = ref true in
  for _ = 1 to 250 do
    let flow = pool_flow rng in
    match Gigaflow.lookup gf ~now:0.0 ~pipeline:p flow with
    | Some hit, _ -> (
        (* A hit (possibly a cross-product of segments from different
           parents) must equal the slowpath decision exactly. *)
        match Executor.terminal_of p flow with
        | Ok (terminal, out_flow) ->
            if
              (not (Action.terminal_equal hit.Ltm_cache.terminal terminal))
              || not (Flow.equal hit.Ltm_cache.out_flow out_flow)
            then ok := false
        | Error _ -> ok := false)
    | None, _ -> (
        match Gigaflow.handle_miss gf ~now:0.0 ~pipeline:p flow with
        | Ok _ -> ()
        | Error _ -> ())
  done;
  !ok

let prop_gigaflow_consistent_dp =
  QCheck2.Test.make ~name:"gigaflow hit = slowpath decision (DP)" ~count:30
    QCheck2.Gen.(int_range 0 100_000)
    (gigaflow_consistency ~scheme:Partitioner.Disjoint)

let prop_gigaflow_consistent_rnd =
  QCheck2.Test.make ~name:"gigaflow hit = slowpath decision (RND)" ~count:20
    QCheck2.Gen.(int_range 0 100_000)
    (gigaflow_consistency ~scheme:Partitioner.Random)

let prop_gigaflow_consistent_1to1 =
  QCheck2.Test.make ~name:"gigaflow hit = slowpath decision (1-1)" ~count:20
    QCheck2.Gen.(int_range 0 100_000)
    (gigaflow_consistency ~scheme:Partitioner.One_to_one)

(* Perturbed probes: flows near installed parents stress LTM selection and
   the dependency bits harder than fresh pool flows. *)
let prop_gigaflow_consistent_perturbed =
  QCheck2.Test.make ~name:"gigaflow consistency under perturbed flows" ~count:20
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Gf_util.Rng.create seed in
      let p = random_pipeline rng ~tables:5 ~rules_per_table:10 in
      let gf = Gigaflow.create ~rng_seed:seed (Config.v ~tables:4 ~table_capacity:512 ()) in
      let parents = ref [] in
      for _ = 1 to 60 do
        let flow = pool_flow rng in
        parents := flow :: !parents;
        ignore (Gigaflow.handle_miss gf ~now:0.0 ~pipeline:p flow)
      done;
      let ok = ref true in
      List.iter
        (fun parent ->
          for _ = 1 to 4 do
            (* Mutate one field to a nearby pool value. *)
            let f = Gf_util.Rng.pick rng Field.all in
            let probe = Flow.set parent f (pool_value rng f) in
            match Gigaflow.lookup gf ~now:0.0 ~pipeline:p probe with
            | Some hit, _ -> (
                match Executor.terminal_of p probe with
                | Ok (terminal, out_flow) ->
                    if
                      (not (Action.terminal_equal hit.Ltm_cache.terminal terminal))
                      || not (Flow.equal hit.Ltm_cache.out_flow out_flow)
                    then ok := false
                | Error _ -> ok := false)
            | None, _ -> ()
          done)
        !parents;
      !ok)

(* ----------------------------- Coverage ----------------------------- *)

let prop_coverage_matches_brute_force =
  QCheck2.Test.make ~name:"coverage DP = brute-force chain count" ~count:40
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Gf_util.Rng.create seed in
      let p = random_pipeline rng ~tables:4 ~rules_per_table:6 in
      let gf = Gigaflow.create ~rng_seed:seed (Config.v ~tables:3 ~table_capacity:64 ()) in
      for _ = 1 to 30 do
        ignore (Gigaflow.handle_miss gf ~now:0.0 ~pipeline:p (pool_flow rng))
      done;
      let cache = Gigaflow.cache gf in
      let entry_tag = Pipeline.entry p in
      let dp = Coverage.count cache ~entry_tag in
      let bf = Coverage.brute_force cache ~entry_tag in
      Float.abs (dp -. float_of_int bf) < 0.5)

let test_coverage_cross_product () =
  (* 2 alternatives in table 0 x 3 alternatives in table 1 = 6 chains. *)
  let cache = Ltm_cache.create (Config.v ~tables:2 ~table_capacity:8 ()) in
  for i = 1 to 2 do
    ignore
      (Ltm_cache.install cache ~now:0.0
         [
           mk_rule ~tag_in:0 ~next:(Ltm_rule.Next_tag 5) (Fmatch.of_fields [ (Field.Eth_src, i) ]);
           mk_rule ~tag_in:5
             ~next:(Ltm_rule.Done (Action.Output i))
             (Fmatch.of_fields [ (Field.Tp_dst, i) ]);
         ])
  done;
  ignore
    (Ltm_cache.install cache ~now:0.0
       [
         mk_rule ~tag_in:0 ~next:(Ltm_rule.Next_tag 5) (Fmatch.of_fields [ (Field.Eth_src, 1) ]);
         mk_rule ~tag_in:5
           ~next:(Ltm_rule.Done (Action.Output 3))
           (Fmatch.of_fields [ (Field.Tp_dst, 3) ]);
       ]);
  (* 2 x 3 = 6 *)
  Alcotest.(check (float 1e-9)) "cross product" 6.0
    (Coverage.count cache ~entry_tag:0)

(* --------------------------- Revalidation --------------------------- *)

let test_gigaflow_revalidation () =
  let rng = Gf_util.Rng.create 44 in
  let p = random_pipeline rng ~tables:4 ~rules_per_table:8 in
  let gf = Gigaflow.create (Config.v ~tables:3 ~table_capacity:512 ()) in
  for _ = 1 to 80 do
    ignore (Gigaflow.handle_miss gf ~now:0.0 ~pipeline:p (pool_flow rng))
  done;
  let evicted, work = Gigaflow.revalidate gf p in
  Alcotest.(check int) "consistent cache untouched" 0 evicted;
  Alcotest.(check bool) "did work" true (work > 0);
  (* Shadow everything in the entry table. *)
  Pipeline.add_rule p ~table:0
    (Gf_pipeline.Ofrule.v ~id:(Pipeline.fresh_rule_id p) ~priority:1_000_000
       ~fmatch:Fmatch.any ~action:(Action.drop ()));
  let evicted, _ = Gigaflow.revalidate gf p in
  Alcotest.(check bool) "entry-table segments evicted" true (evicted > 0);
  (* After revalidation, hits must be consistent again. *)
  let ok = ref true in
  for _ = 1 to 200 do
    let flow = pool_flow rng in
    match Gigaflow.lookup gf ~now:0.0 ~pipeline:p flow with
    | Some hit, _ -> (
        match Executor.terminal_of p flow with
        | Ok (terminal, _) ->
            if not (Action.terminal_equal hit.Ltm_cache.terminal terminal) then
              ok := false
        | Error _ -> ok := false)
    | None, _ -> ()
  done;
  Alcotest.(check bool) "post-revalidation hits consistent" true !ok

(* Gigaflow revalidation work is bounded by sub-traversal lengths, so it is
   cheaper than Megaflow's full-traversal revalidation on the same flows
   (the paper's 2x claim, section 6.3.6). *)
let test_revalidation_cheaper_than_megaflow () =
  let rng = Gf_util.Rng.create 45 in
  let p = random_pipeline rng ~tables:6 ~rules_per_table:8 in
  let gf = Gigaflow.create (Config.v ~tables:4 ~table_capacity:4096 ()) in
  let mf = Gf_cache.Megaflow.create ~capacity:4096 () in
  for _ = 1 to 300 do
    let flow = pool_flow rng in
    ignore (Gigaflow.handle_miss gf ~now:0.0 ~pipeline:p flow);
    match Executor.execute p flow with
    | Ok tr -> ignore (Gf_cache.Megaflow.install mf ~now:0.0 ~version:0 tr)
    | Error _ -> ()
  done;
  let _, gf_work = Gigaflow.revalidate gf p in
  let _, mf_work = Gf_cache.Megaflow.revalidate mf p in
  (* Per-entry cost: sub-traversals are strictly shorter on average. *)
  let gf_entries = Ltm_cache.occupancy (Gigaflow.cache gf) in
  let mf_entries = Gf_cache.Megaflow.occupancy mf in
  let gf_per = float_of_int gf_work /. float_of_int (max 1 gf_entries) in
  let mf_per = float_of_int mf_work /. float_of_int (max 1 mf_entries) in
  Alcotest.(check bool)
    (Printf.sprintf "per-entry revalidation cheaper (%.2f < %.2f)" gf_per mf_per)
    true (gf_per < mf_per)

let test_ltm_placement_ordering () =
  (* A segment may only reuse an identical entry in a table strictly after
     the previous segment's table; otherwise a fresh copy must be placed
     later. *)
  let cache = Ltm_cache.create (Config.v ~tables:3 ~table_capacity:8 ()) in
  let seg_x =
    mk_rule ~tag_in:5 ~priority:1 ~next:(Ltm_rule.Done (Action.Output 1))
      (Fmatch.of_fields [ (Field.Tp_dst, 80) ])
  in
  (* First install: single segment lands in table 0. *)
  (match Ltm_cache.install cache ~now:0.0 [ seg_x ] with
  | Ltm_cache.Installed { fresh = 1; shared = 0; _ } -> ()
  | _ -> Alcotest.fail "first install");
  Alcotest.(check (array int)) "lands in table 0" [| 1; 0; 0 |]
    (Ltm_cache.table_occupancies cache);
  (* Now a 2-segment chain whose SECOND segment is identical to seg_x: the
     copy in table 0 is unusable (segment 1 occupies position 0), so a
     fresh copy must go to table 1 or later. *)
  let seg_a =
    mk_rule ~tag_in:0 ~priority:1 ~next:(Ltm_rule.Next_tag 5)
      (Fmatch.of_fields [ (Field.Eth_src, 0x7) ])
  in
  (match Ltm_cache.install cache ~now:1.0 [ seg_a; seg_x ] with
  | Ltm_cache.Installed { fresh; shared; _ } ->
      Alcotest.(check int) "two fresh entries" 2 fresh;
      Alcotest.(check int) "no (illegal) reuse" 0 shared
  | Ltm_cache.Rejected -> Alcotest.fail "install rejected");
  (* seg_a reused table 0? No — table 0 had the old seg_x; placement is
     first-fit: seg_a goes to table 0 (not full), seg_x copy to table 1. *)
  Alcotest.(check (array int)) "chain spread over tables" [| 2; 1; 0 |]
    (Ltm_cache.table_occupancies cache);
  (* A third chain identical to the second now shares both entries. *)
  match Ltm_cache.install cache ~now:2.0 [ seg_a; seg_x ] with
  | Ltm_cache.Installed { fresh = 0; shared = 2; _ } -> ()
  | _ -> Alcotest.fail "expected full sharing"

(* ----------------------- Eviction mid-chain ------------------------- *)

let test_ltm_eviction_breaks_chain_safely () =
  (* Evicting one segment of a chain must turn dependent flows into misses,
     never into wrong answers. *)
  let cache = Ltm_cache.create (Config.v ~tables:2 ~table_capacity:8 ()) in
  let seg1 =
    mk_rule ~tag_in:0 ~priority:1 ~next:(Ltm_rule.Next_tag 3)
      (Gf_flow.Fmatch.of_fields [ (Field.Eth_src, 0x11) ])
  in
  let seg2 =
    mk_rule ~tag_in:3 ~priority:1 ~next:(Ltm_rule.Done (Action.Output 2))
      (Gf_flow.Fmatch.of_fields [ (Field.Tp_dst, 80) ])
  in
  (match Ltm_cache.install cache ~now:0.0 [ seg1; seg2 ] with
  | Ltm_cache.Installed _ -> ()
  | Ltm_cache.Rejected -> Alcotest.fail "install");
  let flow = Flow.make [ (Field.Eth_src, 0x11); (Field.Tp_dst, 80) ] in
  Alcotest.(check bool) "hit before eviction" true
    (fst (Ltm_cache.lookup cache ~now:1.0 ~entry_tag:0 flow) <> None);
  (* Age only the second segment: touch the first, then expire. *)
  Ltm_cache.iter_rules cache (fun ~table:_ stored ->
      if stored.Ltm_table.rule.Ltm_rule.tag_in = 0 then
        stored.Ltm_table.last_used <- 100.0);
  Alcotest.(check int) "one evicted" 1 (Ltm_cache.expire cache ~now:100.0 ~max_idle:10.0);
  Alcotest.(check bool) "dangling chain is a miss, not a wrong answer" true
    (fst (Ltm_cache.lookup cache ~now:101.0 ~entry_tag:0 flow) = None)

let test_partitioner_respects_budget () =
  let rng = Gf_util.Rng.create 95 in
  let p = random_pipeline rng ~tables:6 ~rules_per_table:8 in
  match run_traversal rng p with
  | None -> ()
  | Some tr ->
      List.iter
        (fun k ->
          let segs = Partitioner.partition Partitioner.Disjoint ~max_segments:k tr in
          Alcotest.(check bool)
            (Printf.sprintf "budget %d respected" k)
            true
            (List.length segs <= k);
          if k = 1 then
            Alcotest.(check int) "K=1 is one whole segment" 1 (List.length segs))
        [ 1; 2; 3 ]

(* ------------------------- Adaptive fallback ------------------------ *)

let test_adaptive_fallback_engages () =
  (* A pipeline whose traversals never share sub-traversals: every flow
     matches a unique exact rule in each table.  The profile monitor must
     flip to whole-traversal (single-segment) installs. *)
  let mk_table id next =
    let t =
      Gf_pipeline.Oftable.create ~id ~name:(Printf.sprintf "t%d" id)
        ~match_fields:(Field.Set.of_list [ Field.Ip_src; Field.Tp_src ])
        ~miss:(Action.drop ())
    in
    ignore next;
    t
  in
  let t0 = mk_table 0 1 and t1 = mk_table 1 (-1) in
  let p = Pipeline.create ~name:"nosharing" ~entry:0 [ t0; t1 ] in
  let rng = Gf_util.Rng.create 91 in
  (* Unique exact rules per flow, installed on demand via the slowpath:
     emulate by pre-installing per-flow chains. *)
  let flows =
    Array.init 3000 (fun i ->
        Flow.make [ (Field.Ip_src, 0x0A000000 + i); (Field.Tp_src, i land 0xFFFF) ])
  in
  Array.iter
    (fun flow ->
      let fm0 = Gf_flow.Fmatch.of_fields [ (Field.Ip_src, Flow.get flow Field.Ip_src) ] in
      let fm1 = Gf_flow.Fmatch.of_fields [ (Field.Tp_src, Flow.get flow Field.Tp_src) ] in
      (try
         Pipeline.add_rule p ~table:0
           (Gf_pipeline.Ofrule.v ~id:(Pipeline.fresh_rule_id p) ~priority:1 ~fmatch:fm0
              ~action:(Action.goto 1))
       with Invalid_argument _ -> ());
      try
        Pipeline.add_rule p ~table:1
          (Gf_pipeline.Ofrule.v ~id:(Pipeline.fresh_rule_id p) ~priority:1 ~fmatch:fm1
             ~action:(Action.output 1))
      with Invalid_argument _ -> ())
    flows;
  ignore rng;
  let gf =
    Gigaflow.create
      (Config.v ~tables:2 ~table_capacity:65536 ~adaptive:true ~adaptive_threshold:0.15 ())
  in
  Array.iter (fun flow -> ignore (Gigaflow.handle_miss gf ~now:0.0 ~pipeline:p flow)) flows;
  Alcotest.(check bool) "fallback engaged under zero sharing" true
    (Gigaflow.in_fallback gf)

let test_adaptive_stays_off_with_sharing () =
  let rng = Gf_util.Rng.create 92 in
  let p = random_pipeline rng ~tables:4 ~rules_per_table:6 in
  let gf =
    Gigaflow.create (Config.v ~tables:3 ~table_capacity:4096 ~adaptive:true ())
  in
  (* Pool flows share components heavily; sharing stays above threshold. *)
  for _ = 1 to 3000 do
    ignore (Gigaflow.handle_miss gf ~now:0.0 ~pipeline:p (pool_flow rng))
  done;
  Alcotest.(check bool) "no fallback when sharing is plentiful" false
    (Gigaflow.in_fallback gf)

let test_adaptive_consistency () =
  (* Hits must stay slowpath-consistent in fallback mode too. *)
  let rng = Gf_util.Rng.create 93 in
  let p = random_pipeline rng ~tables:4 ~rules_per_table:10 in
  let gf =
    Gigaflow.create
      (Config.v ~tables:3 ~table_capacity:1024 ~adaptive:true ~adaptive_threshold:0.99 ())
  in
  (* Threshold ~1 forces fallback after the first window. *)
  let ok = ref true in
  for _ = 1 to 3000 do
    let flow = pool_flow rng in
    match Gigaflow.lookup gf ~now:0.0 ~pipeline:p flow with
    | Some hit, _ -> (
        match Executor.terminal_of p flow with
        | Ok (terminal, out_flow) ->
            if
              (not (Action.terminal_equal hit.Ltm_cache.terminal terminal))
              || not (Flow.equal hit.Ltm_cache.out_flow out_flow)
            then ok := false
        | Error _ -> ok := false)
    | None, _ -> ignore (Gigaflow.handle_miss gf ~now:0.0 ~pipeline:p flow)
  done;
  Alcotest.(check bool) "consistent under adaptive fallback" true !ok

(* ----------------------- Unwildcarding ablation --------------------- *)

let test_full_unwildcarding_still_sound () =
  Gf_pipeline.Oftable.unwildcard_mode := `Full;
  Fun.protect
    ~finally:(fun () -> Gf_pipeline.Oftable.unwildcard_mode := `Minimal)
    (fun () ->
      Alcotest.(check bool) "gigaflow consistent under full unwildcarding" true
        (gigaflow_consistency ~scheme:Partitioner.Disjoint 4242))

let test_full_unwildcarding_fatter () =
  let rng = Gf_util.Rng.create 94 in
  let p = random_pipeline rng ~tables:3 ~rules_per_table:12 in
  let flow = pool_flow rng in
  let bits mode =
    Gf_pipeline.Oftable.unwildcard_mode := mode;
    Fun.protect
      ~finally:(fun () -> Gf_pipeline.Oftable.unwildcard_mode := `Minimal)
      (fun () ->
        match Executor.execute p flow with
        | Ok tr -> Mask.bits (Traversal.megaflow_wildcard tr)
        | Error _ -> 0)
  in
  Alcotest.(check bool) "full union consults at least as many bits" true
    (bits `Full >= bits `Minimal)

(* ------------------------------ Config ------------------------------ *)

let test_config () =
  Alcotest.(check int) "default total" 32768 (Config.total_capacity Config.default);
  Alcotest.(check bool) "default valid" true (Config.validate Config.default = Ok ());
  Alcotest.(check bool) "zero tables invalid" true
    (Result.is_error (Config.validate (Config.v ~tables:0 ())));
  Alcotest.(check bool) "bad idle invalid" true
    (Result.is_error (Config.validate (Config.v ~max_idle:0.0 ())))

let suite =
  [
    ("coherence", `Quick, test_coherent);
    ("one-to-one shape", `Quick, test_one_to_one_shape);
    ("rulegen structure", `Quick, test_rulegen_structure);
    ("rulegen rejects bad partitions", `Quick, test_rulegen_rejects_bad_partition);
    ("ltm table tag gating", `Quick, test_ltm_table_tag_gating);
    ("ltm longest traversal match", `Quick, test_ltm_table_longest_traversal_match);
    ("ltm table dedup", `Quick, test_ltm_table_dedup);
    ("ltm table capacity", `Quick, test_ltm_table_capacity);
    ("ltm walk with tag skip (fig 5c)", `Quick, test_ltm_cache_fig5c_walk);
    ("ltm dangling tag misses", `Quick, test_ltm_cache_incomplete_walk_misses);
    ("ltm sub-traversal sharing", `Quick, test_ltm_cache_sharing);
    ("ltm all-or-nothing install", `Quick, test_ltm_cache_all_or_nothing);
    ("ltm expire", `Quick, test_ltm_cache_expire);
    ("ltm pressure eviction", `Quick, test_ltm_cache_pressure_eviction);
    ("ltm eviction respects tag chains", `Quick, test_ltm_cache_eviction_respects_tag_chains);
    ("ltm priority-aware victim choice", `Quick, test_ltm_cache_priority_aware_evicts_short);
    ("ltm reject counters unchanged", `Quick, test_ltm_cache_reject_counters_unchanged);
    ("coverage cross product", `Quick, test_coverage_cross_product);
    ("gigaflow revalidation", `Quick, test_gigaflow_revalidation);
    ("revalidation cheaper than megaflow", `Quick, test_revalidation_cheaper_than_megaflow);
    ("ltm placement ordering", `Quick, test_ltm_placement_ordering);
    ("ltm eviction breaks chains safely", `Quick, test_ltm_eviction_breaks_chain_safely);
    ("partitioner respects budget", `Quick, test_partitioner_respects_budget);
    ("adaptive fallback engages", `Quick, test_adaptive_fallback_engages);
    ("adaptive stays off with sharing", `Quick, test_adaptive_stays_off_with_sharing);
    ("adaptive hits stay consistent", `Quick, test_adaptive_consistency);
    ("full unwildcarding still sound", `Quick, test_full_unwildcarding_still_sound);
    ("full unwildcarding is fatter", `Quick, test_full_unwildcarding_fatter);
    ("config", `Quick, test_config);
  ]

let props =
  [
    prop_partition_valid;
    prop_partition_optimal;
    prop_gigaflow_consistent_dp;
    prop_gigaflow_consistent_rnd;
    prop_gigaflow_consistent_1to1;
    prop_gigaflow_consistent_perturbed;
    prop_coverage_matches_brute_force;
    prop_ltm_no_stranding_under_churn;
  ]
