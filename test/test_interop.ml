(* Tests for the interop surfaces: the ovs-ofctl-style flow text dialect,
   the P4 code generator and workload serialization — plus the EMC level of
   the datapath. *)

module Field = Gf_flow.Field
module Flow = Gf_flow.Flow
module Headers = Gf_flow.Headers
module Action = Gf_pipeline.Action
module Ofp_text = Gf_pipeline.Ofp_text
module Oftable = Gf_pipeline.Oftable
module Pipeline = Gf_pipeline.Pipeline
module Executor = Gf_pipeline.Executor
module P4gen = Gf_nic.P4gen
module Serial = Gf_workload.Serial
module Trace = Gf_workload.Trace

let contains haystack needle =
  let n = String.length haystack and m = String.length needle in
  let rec at i = i + m <= n && (String.sub haystack i m = needle || at (i + 1)) in
  at 0

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

let test_parse_basic_flow () =
  let f =
    ok
      (Ofp_text.parse_flow
         "table=4,priority=100,ip,nw_dst=10.1.2.0/24,actions=mod_dl_dst:02:00:00:00:0f:fe,goto_table:5")
  in
  Alcotest.(check int) "table" 4 f.Ofp_text.table;
  Alcotest.(check int) "priority" 100 f.Ofp_text.priority;
  Alcotest.(check bool) "matches inside prefix" true
    (Gf_flow.Fmatch.matches f.Ofp_text.fmatch
       (Flow.make
          [ (Field.Eth_type, Headers.ethertype_ipv4); (Field.Ip_dst, Headers.ipv4 "10.1.2.77") ]));
  Alcotest.(check bool) "rejects outside prefix" false
    (Gf_flow.Fmatch.matches f.Ofp_text.fmatch
       (Flow.make
          [ (Field.Eth_type, Headers.ethertype_ipv4); (Field.Ip_dst, Headers.ipv4 "10.1.3.1") ]));
  (match f.Ofp_text.action.Action.control with
  | Action.Goto 5 -> ()
  | _ -> Alcotest.fail "expected goto_table:5");
  Alcotest.(check bool) "rewrite parsed" true
    (List.mem_assoc Field.Eth_dst f.Ofp_text.action.Action.set_fields)

let test_parse_shorthands () =
  let f = ok (Ofp_text.parse_flow "tcp,tp_dst=443,actions=output:7") in
  let flow =
    Headers.tcp ~src:(Headers.ipv4 "10.0.0.1") ~dst:(Headers.ipv4 "10.0.0.2") ~sport:5
      ~dport:443 ()
  in
  Alcotest.(check bool) "tcp shorthand binds ethertype+proto" true
    (Gf_flow.Fmatch.matches f.Ofp_text.fmatch flow);
  Alcotest.(check int) "default table" 0 f.Ofp_text.table;
  Alcotest.(check int) "default priority" 32768 f.Ofp_text.priority

let test_parse_resubmit_and_drop () =
  let f = ok (Ofp_text.parse_flow "in_port=3,actions=resubmit(,9)") in
  (match f.Ofp_text.action.Action.control with
  | Action.Goto 9 -> ()
  | _ -> Alcotest.fail "resubmit should map to goto");
  let d = ok (Ofp_text.parse_flow "priority=0,actions=drop") in
  match d.Ofp_text.action.Action.control with
  | Action.Terminal Action.Drop -> ()
  | _ -> Alcotest.fail "expected drop"

let test_parse_errors () =
  let err s =
    match Ofp_text.parse_flow s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected parse error for %S" s
  in
  err "table=1,priority=5";
  (* no actions *)
  err "bogus_key=1,actions=drop";
  err "nw_dst=10.0.0.0/40,actions=drop";
  err "actions=output:1,drop";
  (* two decisions *)
  err "actions=frobnicate"

let test_roundtrip () =
  let lines =
    [
      "table=0,priority=10,in_port=2,dl_src=02:00:00:00:00:01,actions=goto_table:1";
      "table=1,priority=20,ip,nw_dst=192.168.0.0/16,actions=mod_nw_dst:10.0.0.1,output:3";
      "table=1,priority=0,actions=controller";
      "table=2,priority=7,udp,tp_src=53,actions=drop";
    ]
  in
  List.iter
    (fun line ->
      let f = ok (Ofp_text.parse_flow line) in
      let printed = Ofp_text.print_flow f in
      let f' = ok (Ofp_text.parse_flow printed) in
      Alcotest.(check int) "table survives" f.Ofp_text.table f'.Ofp_text.table;
      Alcotest.(check int) "priority survives" f.Ofp_text.priority f'.Ofp_text.priority;
      Alcotest.(check bool) "match survives" true
        (Gf_flow.Fmatch.equal f.Ofp_text.fmatch f'.Ofp_text.fmatch);
      Alcotest.(check bool) "action survives" true
        (Action.equal f.Ofp_text.action f'.Ofp_text.action))
    lines

let test_load_into_and_execute () =
  let mk id miss =
    Oftable.create ~id ~name:(Printf.sprintf "t%d" id)
      ~match_fields:(Field.Set.of_list (Array.to_list Field.all))
      ~miss
  in
  let p =
    Pipeline.create ~name:"loaded" ~entry:0
      [ mk 0 (Action.goto 1); mk 1 (Action.drop ()) ]
  in
  let text =
    "# a tiny L2 pipeline\n\
     table=0,priority=10,dl_src=02:00:00:00:00:01,actions=goto_table:1\n\n\
     table=1,priority=10,dl_dst=02:00:00:00:00:02,actions=output:4\n"
  in
  Alcotest.(check int) "two rules loaded" 2 (ok (Ofp_text.load_into p text));
  let flow =
    Headers.l2 ~eth_src:(Headers.mac "02:00:00:00:00:01")
      ~eth_dst:(Headers.mac "02:00:00:00:00:02") ()
  in
  (match Executor.terminal_of p flow with
  | Ok (Action.Output 4, _) -> ()
  | _ -> Alcotest.fail "loaded pipeline misbehaves");
  (* Dump contains both rules and reparses. *)
  let dump = Ofp_text.dump_pipeline p in
  Alcotest.(check int) "dump reparses" 2 (List.length (ok (Ofp_text.parse_flows dump)))

let test_load_into_unknown_table () =
  let p =
    Pipeline.create ~name:"one" ~entry:0
      [
        Oftable.create ~id:0 ~name:"t0" ~match_fields:Field.Set.empty
          ~miss:(Action.drop ());
      ]
  in
  match Ofp_text.load_into p "table=9,actions=drop" with
  | Error _ -> Alcotest.(check int) "nothing added" 0 (Pipeline.rule_count p)
  | Ok _ -> Alcotest.fail "expected unknown-table error"

let test_p4gen_structure () =
  let p4 = P4gen.emit ~tables:4 ~table_capacity:8192 in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains p4 needle))
    [
      "table gf1";
      "table gf4";
      "meta.table_tag    : exact";
      "hdr.ipv4.dst      : ternary";
      "size = 8192;";
      "update_table_tag";
      "SLOWPATH_PORT";
      "V1Switch";
    ];
  Alcotest.(check bool) "no gf5 for K=4" false (contains p4 "table gf5");
  (* Deterministic. *)
  Alcotest.(check string) "deterministic" p4 (P4gen.emit ~tables:4 ~table_capacity:8192)

let test_p4gen_scales () =
  let p2 = P4gen.emit ~tables:2 ~table_capacity:100 in
  Alcotest.(check bool) "K=2 has gf2" true (contains p2 "table gf2");
  Alcotest.(check bool) "K=2 lacks gf3" false (contains p2 "table gf3");
  Alcotest.(check bool) "capacity propagated" true (contains p2 "size = 100;")

let test_serial_flows_roundtrip () =
  let rng = Gf_util.Rng.create 5 in
  let flows = Array.init 64 (fun _ -> Helpers.pool_flow rng) in
  let text = Serial.flows_to_string flows in
  let back = ok (Serial.flows_of_string text) in
  Alcotest.(check int) "count" (Array.length flows) (Array.length back);
  Array.iteri
    (fun i f -> Alcotest.(check bool) "flow equal" true (Flow.equal f back.(i)))
    flows

let test_serial_trace_roundtrip () =
  let flows = Array.init 10 (fun i -> Flow.make [ (Field.Vlan, i + 1) ]) in
  let t = Trace.generate ~duration:5.0 ~seed:9 ~flows () in
  let back = ok (Serial.trace_of_string (Serial.trace_to_string t)) in
  Alcotest.(check int) "packets" (Trace.packet_count t) (Trace.packet_count back);
  Alcotest.(check int) "flows" t.Trace.unique_flows back.Trace.unique_flows;
  Array.iteri
    (fun i (p : Trace.packet) ->
      let q = back.Trace.packets.(i) in
      Alcotest.(check int) "flow id" p.Trace.flow_id q.Trace.flow_id;
      Alcotest.(check bool) "flow value" true (Flow.equal p.Trace.flow q.Trace.flow);
      if Float.abs (p.Trace.time -. q.Trace.time) > 1e-5 then
        Alcotest.fail "timestamp drift")
    t.Trace.packets

let test_serial_rejects_garbage () =
  (match Serial.flows_of_string "nonsense" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "flows header check");
  match Serial.trace_of_string "# gigaflow-trace v1\nduration x" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trace duration check"

(* EMC level: repeated exact packets after a HW-miss should be absorbed by
   the exact-match cache instead of the wildcard search. *)
let test_emc_absorbs_repeats () =
  let rng = Gf_util.Rng.create 72 in
  let p = Helpers.random_pipeline rng ~tables:3 ~rules_per_table:6 in
  let cfg =
    Gf_sim.Datapath.emc_mf_sw
      ~mf_capacity:1 (* force HW misses *)
      ~emc_capacity:1024 ()
  in
  let dp = Gf_sim.Datapath.create cfg p in
  (* Occupy the single SmartNIC slot with a different flow so the test flow
     can never be offloaded. *)
  let rec occupy n =
    if n > 0 then begin
      ignore (Gf_sim.Datapath.process dp ~now:0.0 (Helpers.pool_flow rng));
      occupy (n - 1)
    end
  in
  occupy 3;
  let flow = Helpers.pool_flow rng in
  let outcomes =
    List.init 5 (fun i ->
        let o, _, _ = Gf_sim.Datapath.process dp ~now:(1.0 +. float_of_int i) flow in
        o)
  in
  (match outcomes with
  | first :: rest ->
      Alcotest.(check bool) "first packet not a SmartNIC hit" true
        (first <> Gf_sim.Datapath.Hw_hit);
      Alcotest.(check bool) "repeats served by software caches" true
        (List.for_all (fun o -> o = Gf_sim.Datapath.Sw_hit) rest)
  | [] -> assert false);
  (* And the decisions agree with the pipeline. *)
  let _, terminal, _ = Gf_sim.Datapath.process dp ~now:9.0 flow in
  match (terminal, Executor.terminal_of p flow) with
  | Some t, Ok (t', _) ->
      Alcotest.(check bool) "decision consistent" true (Action.terminal_equal t t')
  | _ -> Alcotest.fail "missing decision"

let suite =
  [
    ("ofp parse basic", `Quick, test_parse_basic_flow);
    ("ofp shorthands", `Quick, test_parse_shorthands);
    ("ofp resubmit/drop", `Quick, test_parse_resubmit_and_drop);
    ("ofp parse errors", `Quick, test_parse_errors);
    ("ofp roundtrip", `Quick, test_roundtrip);
    ("ofp load_into + execute", `Quick, test_load_into_and_execute);
    ("ofp load_into unknown table", `Quick, test_load_into_unknown_table);
    ("p4gen structure", `Quick, test_p4gen_structure);
    ("p4gen scales with K", `Quick, test_p4gen_scales);
    ("serial flows roundtrip", `Quick, test_serial_flows_roundtrip);
    ("serial trace roundtrip", `Quick, test_serial_trace_roundtrip);
    ("serial rejects garbage", `Quick, test_serial_rejects_garbage);
    ("datapath EMC absorbs repeats", `Quick, test_emc_absorbs_repeats);
  ]
