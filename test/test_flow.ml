(* Tests for gigaflow.flow: Field, Flow, Mask, Fmatch, Headers. *)

open Helpers
module Field = Gf_flow.Field
module Flow = Gf_flow.Flow
module Mask = Gf_flow.Mask
module Fmatch = Gf_flow.Fmatch
module Headers = Gf_flow.Headers

let test_field_roundtrip () =
  Array.iter
    (fun f ->
      Alcotest.(check bool) "index roundtrip" true
        (Field.equal f (Field.of_index (Field.index f)));
      Alcotest.(check (option bool)) "name roundtrip" (Some true)
        (Option.map (Field.equal f) (Field.of_name (Field.name f))))
    Field.all

let test_field_count () =
  Alcotest.(check int) "ten fields (paper Fig. 6)" 10 Field.count

let test_field_widths () =
  Alcotest.(check int) "mac width" 48 (Field.width Field.Eth_src);
  Alcotest.(check int) "ip width" 32 (Field.width Field.Ip_dst);
  Alcotest.(check int) "vlan width" 12 (Field.width Field.Vlan);
  Array.iter
    (fun f ->
      Alcotest.(check int) "full mask bits" (Field.width f)
        (Gf_util.Bitops.popcount (Field.full_mask f)))
    Field.all

let test_flow_get_set () =
  let f = Flow.set Flow.zero Field.Ip_dst 0x0A000001 in
  Alcotest.(check int) "set/get" 0x0A000001 (Flow.get f Field.Ip_dst);
  Alcotest.(check int) "other untouched" 0 (Flow.get f Field.Ip_src);
  Alcotest.(check int) "original untouched" 0 (Flow.get Flow.zero Field.Ip_dst)

let test_flow_truncates () =
  let f = Flow.set Flow.zero Field.Ip_proto 0x1FF in
  Alcotest.(check int) "truncated to width" 0xFF (Flow.get f Field.Ip_proto)

let test_flow_array_roundtrip () =
  let f = Flow.make [ (Field.Vlan, 5); (Field.Tp_dst, 80) ] in
  Alcotest.check flow_testable "roundtrip" f (Flow.of_array (Flow.to_array f))

let test_mask_union_inter () =
  let a = Mask.exact_fields [ Field.Ip_dst ] in
  let b = Mask.exact_fields [ Field.Tp_dst ] in
  let u = Mask.union a b in
  Alcotest.(check bool) "union has both" true
    (Field.Set.mem Field.Ip_dst (Mask.fields u)
    && Field.Set.mem Field.Tp_dst (Mask.fields u));
  Alcotest.check mask_testable "inter empty" Mask.empty (Mask.inter a b)

let test_mask_prefix () =
  let m = Mask.prefix Field.Ip_dst 24 in
  Alcotest.(check int) "prefix value" 0xFFFFFF00 (Mask.get m Field.Ip_dst);
  Alcotest.(check int) "bits" 24 (Mask.bits m)

let test_mask_disjoint_subsume () =
  let a = Mask.exact_fields [ Field.Ip_dst ] in
  let b = Mask.prefix Field.Ip_dst 8 in
  Alcotest.(check bool) "not disjoint" false (Mask.disjoint a b);
  Alcotest.(check bool) "b subsumed by a" true (Mask.subsumes ~loose:b ~tight:a);
  Alcotest.(check bool) "a not subsumed by b" false (Mask.subsumes ~loose:a ~tight:b)

(* Property: union is commutative, associative, idempotent; inter dually. *)
let prop_mask_lattice =
  QCheck2.Test.make ~name:"mask union/inter lattice laws" ~count:200
    QCheck2.Gen.(triple gen_mask gen_mask gen_mask)
    (fun (a, b, c) ->
      Mask.equal (Mask.union a b) (Mask.union b a)
      && Mask.equal (Mask.union a (Mask.union b c)) (Mask.union (Mask.union a b) c)
      && Mask.equal (Mask.union a a) a
      && Mask.equal (Mask.inter a b) (Mask.inter b a)
      && Mask.equal (Mask.inter a (Mask.inter b c)) (Mask.inter (Mask.inter a b) c)
      && Mask.equal (Mask.inter a a) a
      && Mask.equal (Mask.inter a (Mask.union a b)) a
      && Mask.equal (Mask.union a (Mask.inter a b)) a)

(* Property: matches under a mask only depends on masked bits. *)
let prop_mask_matches_semantics =
  QCheck2.Test.make ~name:"mask matches = per-field masked equality" ~count:300
    QCheck2.Gen.(triple gen_mask gen_flow gen_flow)
    (fun (m, pat, flow) ->
      let expected =
        Array.for_all
          (fun f ->
            Mask.get m f land Flow.get pat f = (Mask.get m f land Flow.get flow f))
          Field.all
      in
      Mask.matches m ~pattern:pat flow = expected)

(* Property: subsumes means matching is weaker. *)
let prop_mask_subsumes_weaker =
  QCheck2.Test.make ~name:"subsumed mask matches superset of flows" ~count:300
    QCheck2.Gen.(triple gen_mask gen_flow gen_flow)
    (fun (m, pat, flow) ->
      let loose = Mask.inter m (Mask.prefix Field.Ip_dst 8) in
      (* loose has a subset of m's bits *)
      (not (Mask.matches m ~pattern:pat flow))
      || Mask.matches loose ~pattern:pat flow)

let prop_apply_scratch_agrees =
  QCheck2.Test.make ~name:"apply_scratch = apply" ~count:300
    QCheck2.Gen.(pair gen_mask gen_flow)
    (fun (m, flow) ->
      let scratch = Flow.Scratch.create () in
      Flow.equal (Mask.apply m flow) (Mask.apply_scratch m flow scratch))

let test_fmatch_canonical () =
  let pattern = Flow.make [ (Field.Ip_dst, 0x0A0000FF) ] in
  let mask = Mask.prefix Field.Ip_dst 24 in
  let fm = Fmatch.v ~pattern ~mask in
  Alcotest.(check int) "pattern pre-masked" 0x0A000000
    (Flow.get (Fmatch.pattern fm) Field.Ip_dst)

let test_fmatch_any_exact () =
  let f = Flow.make [ (Field.Tp_dst, 443) ] in
  Alcotest.(check bool) "any matches" true (Fmatch.matches Fmatch.any f);
  Alcotest.(check bool) "exact matches itself" true (Fmatch.matches (Fmatch.exact f) f);
  let g = Flow.set f Field.Tp_src 1 in
  Alcotest.(check bool) "exact rejects different" false
    (Fmatch.matches (Fmatch.exact f) g)

let test_fmatch_of_fields () =
  let fm = Fmatch.of_fields [ (Field.Vlan, 7); (Field.Ip_proto, 6) ] in
  Alcotest.(check bool) "matches" true
    (Fmatch.matches fm (Flow.make [ (Field.Vlan, 7); (Field.Ip_proto, 6); (Field.Tp_dst, 9) ]));
  Alcotest.(check bool) "rejects" false
    (Fmatch.matches fm (Flow.make [ (Field.Vlan, 8); (Field.Ip_proto, 6) ]))

let test_fmatch_prefix () =
  let fm =
    Fmatch.with_prefix Fmatch.any Field.Ip_dst ~value:(Headers.ipv4 "10.1.2.0") ~len:24
  in
  Alcotest.(check bool) "inside" true
    (Fmatch.matches fm (Flow.make [ (Field.Ip_dst, Headers.ipv4 "10.1.2.200") ]));
  Alcotest.(check bool) "outside" false
    (Fmatch.matches fm (Flow.make [ (Field.Ip_dst, Headers.ipv4 "10.1.3.1") ]))

let prop_fmatch_overlap_symmetric =
  QCheck2.Test.make ~name:"fmatch overlap is symmetric" ~count:300
    QCheck2.Gen.(pair gen_fmatch gen_fmatch)
    (fun (a, b) -> Fmatch.overlaps a b = Fmatch.overlaps b a)

let prop_fmatch_overlap_witness =
  (* If two matches overlap, the blended flow witnesses it. *)
  QCheck2.Test.make ~name:"overlap implies common witness" ~count:300
    QCheck2.Gen.(pair gen_fmatch gen_fmatch)
    (fun (a, b) ->
      if not (Fmatch.overlaps a b) then true
      else begin
        (* Build a witness: take a's pattern bits where a constrains, b's
           where b constrains (consistent on shared bits by overlap), zero
           elsewhere. *)
        let wa = Fmatch.mask a and wb = Fmatch.mask b in
        let values =
          Array.map
            (fun f ->
              let ma = Mask.get wa f and mb = Mask.get wb f in
              (Flow.get (Fmatch.pattern a) f land ma)
              lor (Flow.get (Fmatch.pattern b) f land mb land lnot ma))
            Field.all
        in
        let w = Flow.of_array values in
        Fmatch.matches a w && Fmatch.matches b w
      end)

let prop_fmatch_specific =
  QCheck2.Test.make ~name:"is_more_specific implies match subset" ~count:300
    QCheck2.Gen.(triple gen_fmatch gen_fmatch gen_flow)
    (fun (a, b, flow) ->
      (not (Fmatch.is_more_specific a ~than:b))
      || (not (Fmatch.matches a flow))
      || Fmatch.matches b flow)

(* ---------------- functorized tables, interning, update ---------------- *)

(* A structurally-equal but physically-distinct duplicate, so the tests
   below exercise the deep paths of [equal]/[hash], not the [==] shortcut. *)
let rebuild_flow f = Flow.of_array (Flow.to_array f)

let rebuild_mask m =
  Mask.make (List.map (fun f -> (f, Mask.get m f)) (Array.to_list Field.all))

let prop_flow_hash_equal_consistent =
  QCheck2.Test.make ~name:"flow equal duplicates hash alike" ~count:300 gen_flow
    (fun f ->
      let g = rebuild_flow f in
      (not (f == g)) && Flow.equal f g && Flow.hash f = Flow.hash g)

let prop_mask_hash_equal_consistent =
  QCheck2.Test.make ~name:"mask equal duplicates hash alike" ~count:300 gen_mask
    (fun m ->
      let n = rebuild_mask m in
      Mask.equal m n && Mask.hash m = Mask.hash n)

let prop_flow_tbl_roundtrip =
  (* The functorized table must find entries through structurally-equal
     keys — this is what the caches rely on after the Hashtbl.Make port. *)
  QCheck2.Test.make ~name:"Flow.Tbl finds structurally-equal keys" ~count:200
    QCheck2.Gen.(small_list gen_flow)
    (fun flows ->
      let tbl = Flow.Tbl.create 16 in
      List.iteri (fun i f -> Flow.Tbl.replace tbl f i) flows;
      List.for_all
        (fun f -> Flow.Tbl.find_opt tbl (rebuild_flow f) <> None)
        flows)

let prop_mask_intern_canonical =
  QCheck2.Test.make ~name:"Mask.intern canonicalizes duplicates" ~count:200
    gen_mask
    (fun m ->
      let c = Mask.intern m in
      (* Idempotent, physically canonical across rebuilt duplicates, and
         value-preserving. *)
      Mask.intern c == c
      && Mask.intern (rebuild_mask m) == c
      && Mask.equal c m)

let prop_flow_update_is_folded_set =
  let gen_bindings =
    QCheck2.Gen.(
      list_size (0 -- 4) (gen_field >>= fun f -> gen_value f >>= fun v -> pure (f, v)))
  in
  QCheck2.Test.make ~name:"Flow.update = folded Flow.set" ~count:300
    QCheck2.Gen.(pair gen_flow gen_bindings)
    (fun (flow, bindings) ->
      Flow.equal
        (Flow.update flow bindings)
        (List.fold_left (fun f (field, v) -> Flow.set f field v) flow bindings))

let test_flow_update_empty_no_copy () =
  let f = Flow.make [ (Field.Tp_dst, 443) ] in
  Alcotest.(check bool) "empty commit returns the flow itself" true
    (Flow.update f [] == f)

let test_mask_tbl_basic () =
  let tbl = Mask.Tbl.create 8 in
  let a = Mask.prefix Field.Ip_dst 24 in
  let b = Mask.exact_fields [ Field.Tp_dst ] in
  Mask.Tbl.replace tbl a 1;
  Mask.Tbl.replace tbl b 2;
  Alcotest.(check (option int)) "find a via duplicate" (Some 1)
    (Mask.Tbl.find_opt tbl (rebuild_mask a));
  Alcotest.(check (option int)) "find b" (Some 2) (Mask.Tbl.find_opt tbl b);
  Mask.Tbl.replace tbl (rebuild_mask a) 3;
  Alcotest.(check int) "replace via duplicate keeps one binding" 2
    (Mask.Tbl.length tbl);
  Alcotest.(check (option int)) "replaced" (Some 3) (Mask.Tbl.find_opt tbl a)

let test_headers_ipv4 () =
  Alcotest.(check int) "parse" 0x0A000001 (Headers.ipv4 "10.0.0.1");
  Alcotest.(check string) "print" "10.0.0.1" (Headers.ipv4_to_string 0x0A000001);
  Alcotest.check_raises "reject malformed" (Invalid_argument "Headers.ipv4: 10.0.0")
    (fun () -> ignore (Headers.ipv4 "10.0.0"));
  Alcotest.check_raises "reject out of range" (Invalid_argument "Headers.ipv4: 256.0.0.1")
    (fun () -> ignore (Headers.ipv4 "256.0.0.1"))

let test_headers_mac () =
  let m = Headers.mac "aa:bb:cc:00:11:22" in
  Alcotest.(check string) "roundtrip" "aa:bb:cc:00:11:22" (Headers.mac_to_string m)

let test_headers_tcp () =
  let f =
    Headers.tcp ~src:(Headers.ipv4 "10.0.0.1") ~dst:(Headers.ipv4 "10.0.0.2")
      ~sport:1234 ~dport:80 ()
  in
  Alcotest.(check int) "ethertype" Headers.ethertype_ipv4 (Flow.get f Field.Eth_type);
  Alcotest.(check int) "proto" Headers.proto_tcp (Flow.get f Field.Ip_proto);
  Alcotest.(check int) "dport" 80 (Flow.get f Field.Tp_dst)

let suite =
  [
    ("field roundtrips", `Quick, test_field_roundtrip);
    ("field count", `Quick, test_field_count);
    ("field widths", `Quick, test_field_widths);
    ("flow get/set", `Quick, test_flow_get_set);
    ("flow truncation", `Quick, test_flow_truncates);
    ("flow array roundtrip", `Quick, test_flow_array_roundtrip);
    ("mask union/inter", `Quick, test_mask_union_inter);
    ("mask prefix", `Quick, test_mask_prefix);
    ("mask disjoint/subsumes", `Quick, test_mask_disjoint_subsume);
    ("fmatch canonical", `Quick, test_fmatch_canonical);
    ("fmatch any/exact", `Quick, test_fmatch_any_exact);
    ("fmatch of_fields", `Quick, test_fmatch_of_fields);
    ("fmatch prefix", `Quick, test_fmatch_prefix);
    ("flow update empty no copy", `Quick, test_flow_update_empty_no_copy);
    ("mask tbl basics", `Quick, test_mask_tbl_basic);
    ("headers ipv4", `Quick, test_headers_ipv4);
    ("headers mac", `Quick, test_headers_mac);
    ("headers tcp", `Quick, test_headers_tcp);
  ]

let props =
  [
    prop_mask_lattice;
    prop_mask_matches_semantics;
    prop_mask_subsumes_weaker;
    prop_apply_scratch_agrees;
    prop_fmatch_overlap_symmetric;
    prop_fmatch_overlap_witness;
    prop_fmatch_specific;
    prop_flow_hash_equal_consistent;
    prop_mask_hash_equal_consistent;
    prop_flow_tbl_roundtrip;
    prop_mask_intern_canonical;
    prop_flow_update_is_folded_set;
  ]
