(* Tests for gigaflow.cache: Microflow and Megaflow. *)

open Helpers
module Field = Gf_flow.Field
module Flow = Gf_flow.Flow
module Action = Gf_pipeline.Action
module Executor = Gf_pipeline.Executor
module Pipeline = Gf_pipeline.Pipeline
module Microflow = Gf_cache.Microflow
module Megaflow = Gf_cache.Megaflow
module Cache_stats = Gf_cache.Cache_stats

let a_hit = { Microflow.terminal = Action.Output 1; out_flow = Flow.zero }
let hit _cache = a_hit

let test_microflow_basic () =
  let c = Microflow.create ~capacity:4 () in
  let f = Flow.make [ (Field.Vlan, 1) ] in
  Alcotest.(check bool) "miss first" true (Microflow.lookup c ~now:0.0 f = None);
  ignore @@ Microflow.install c ~now:0.0 f (hit c);
  Alcotest.(check bool) "hit after install" true (Microflow.lookup c ~now:1.0 f <> None);
  Alcotest.(check int) "occupancy" 1 (Microflow.occupancy c)

let test_microflow_lru_eviction () =
  let c = Microflow.create ~capacity:2 () in
  let f i = Flow.make [ (Field.Vlan, i) ] in
  ignore @@ Microflow.install c ~now:0.0 (f 1) (hit c);
  ignore @@ Microflow.install c ~now:1.0 (f 2) (hit c);
  ignore (Microflow.lookup c ~now:2.0 (f 1));
  (* refresh f1 *)
  ignore @@ Microflow.install c ~now:3.0 (f 3) (hit c);
  Alcotest.(check bool) "f2 evicted (LRU)" true (Microflow.lookup c ~now:4.0 (f 2) = None);
  Alcotest.(check bool) "f1 kept" true (Microflow.lookup c ~now:4.0 (f 1) <> None)

let test_microflow_expire () =
  let c = Microflow.create ~capacity:8 () in
  let f i = Flow.make [ (Field.Vlan, i) ] in
  ignore @@ Microflow.install c ~now:0.0 (f 1) (hit c);
  ignore @@ Microflow.install c ~now:5.0 (f 2) (hit c);
  Alcotest.(check int) "one expired" 1 (Microflow.expire c ~now:11.0 ~max_idle:10.0);
  Alcotest.(check int) "occupancy" 1 (Microflow.occupancy c)

let test_microflow_invalidate_all () =
  let c = Microflow.create ~capacity:8 () in
  ignore @@ Microflow.install c ~now:0.0 (Flow.make [ (Field.Vlan, 1) ]) (hit c);
  ignore @@ Microflow.install c ~now:0.0 (Flow.make [ (Field.Vlan, 2) ]) (hit c);
  Alcotest.(check int) "flushed" 2 (Microflow.invalidate_all c);
  Alcotest.(check int) "empty" 0 (Microflow.occupancy c)

let test_microflow_policy_pressure () =
  let f i = Flow.make [ (Field.Vlan, i) ] in
  (* Reject: a full cache refuses installs and counts them, today's
     megaflow-style behaviour. *)
  let c = Microflow.create ~policy:Gf_cache.Evict.Reject ~capacity:2 () in
  Alcotest.(check int) "no eviction" 0 (Microflow.install c ~now:0.0 (f 1) (hit c));
  ignore @@ Microflow.install c ~now:1.0 (f 2) (hit c);
  Alcotest.(check int) "rejected returns 0" 0
    (Microflow.install c ~now:2.0 (f 3) (hit c));
  Alcotest.(check int) "occupancy capped" 2 (Microflow.occupancy c);
  Alcotest.(check int) "rejection counted" 1 (Microflow.stats c).Cache_stats.rejected;
  Alcotest.(check int) "no pressure evictions" 0
    (Microflow.stats c).Cache_stats.pressure_evictions;
  Alcotest.(check bool) "new flow absent" true (Microflow.lookup c ~now:3.0 (f 3) = None);
  (* Every evicting policy keeps occupancy at capacity and counts each
     eviction exactly once. *)
  List.iter
    (fun policy ->
      let c = Microflow.create ~policy ~capacity:4 () in
      let pressure = ref 0 in
      for i = 1 to 50 do
        pressure := !pressure + Microflow.install c ~now:(float_of_int i) (f i) (hit c)
      done;
      Alcotest.(check int) "occupancy = capacity" 4 (Microflow.occupancy c);
      Alcotest.(check int) "46 pressure evictions" 46 !pressure;
      Alcotest.(check int) "stats agree" 46
        (Microflow.stats c).Cache_stats.pressure_evictions;
      Alcotest.(check int) "nothing rejected" 0 (Microflow.stats c).Cache_stats.rejected)
    [ Gf_cache.Evict.Lru; Gf_cache.Evict.Random; Gf_cache.Evict.Priority_aware ]

let test_cache_stats () =
  let s = Cache_stats.create () in
  Cache_stats.record_lookup s ~hit:true;
  Cache_stats.record_lookup s ~hit:false;
  Cache_stats.record_lookup s ~hit:true;
  Alcotest.(check (float 1e-9)) "hit rate" (2.0 /. 3.0) (Cache_stats.hit_rate s);
  Cache_stats.reset s;
  Alcotest.(check int) "reset" 0 s.Cache_stats.lookups

(* Megaflow correctness: a cache hit must reproduce the slowpath decision for
   any flow, not just the one that installed the entry. *)
let prop_megaflow_consistent =
  QCheck2.Test.make ~name:"megaflow hit = slowpath decision" ~count:40
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Gf_util.Rng.create seed in
      let p = random_pipeline rng ~tables:4 ~rules_per_table:10 in
      let cache = Megaflow.create ~capacity:4096 () in
      let ok = ref true in
      for _ = 1 to 150 do
        let flow = pool_flow rng in
        match Megaflow.lookup cache ~now:0.0 flow with
        | Some h, _ -> (
            match Executor.terminal_of p flow with
            | Ok (terminal, out_flow) ->
                if
                  (not (Action.terminal_equal h.Megaflow.terminal terminal))
                  || not (Flow.equal h.Megaflow.out_flow out_flow)
                then ok := false
            | Error _ -> ok := false)
        | None, _ -> (
            match Executor.execute p flow with
            | Ok traversal -> ignore (Megaflow.install cache ~now:0.0 ~version:0 traversal)
            | Error _ -> ())
      done;
      !ok)

let test_megaflow_collapses_flows () =
  (* Two flows differing only in unconsulted bits share one entry. *)
  let rng = Gf_util.Rng.create 21 in
  let p = random_pipeline rng ~tables:3 ~rules_per_table:4 in
  let cache = Megaflow.create ~capacity:128 () in
  let flow = pool_flow rng in
  (match Executor.execute p flow with
  | Ok tr -> ignore (Megaflow.install cache ~now:0.0 ~version:0 tr)
  | Error _ -> Alcotest.fail "exec failed");
  Alcotest.(check int) "one entry" 1 (Megaflow.occupancy cache);
  match Executor.execute p flow with
  | Ok tr ->
      Alcotest.(check bool) "same traversal dedups" true
        (Megaflow.install cache ~now:1.0 ~version:0 tr = `Exists)
  | Error _ -> Alcotest.fail "exec failed"

let test_megaflow_capacity_reject () =
  let rng = Gf_util.Rng.create 22 in
  let p = random_pipeline rng ~tables:3 ~rules_per_table:12 in
  let cache = Megaflow.create ~capacity:2 () in
  let installed = ref 0 and rejected = ref 0 in
  for _ = 1 to 200 do
    let flow = pool_flow rng in
    match Executor.execute p flow with
    | Ok tr -> (
        match Megaflow.install cache ~now:0.0 ~version:0 tr with
        | `Installed _ -> incr installed
        | `Rejected -> incr rejected
        | `Exists -> ())
    | Error _ -> ()
  done;
  Alcotest.(check int) "filled to capacity" 2 !installed;
  Alcotest.(check bool) "rejections counted" true (!rejected > 0);
  Alcotest.(check int) "stats agree" !rejected (Megaflow.stats cache).Cache_stats.rejected

let test_megaflow_pressure_eviction () =
  let rng = Gf_util.Rng.create 26 in
  let p = random_pipeline rng ~tables:3 ~rules_per_table:12 in
  List.iter
    (fun policy ->
      let cache = Megaflow.create ~policy ~capacity:2 () in
      let pressure = ref 0 and installed = ref 0 in
      for i = 1 to 200 do
        let flow = pool_flow rng in
        match Executor.execute p flow with
        | Ok tr -> (
            match Megaflow.install cache ~now:(float_of_int i) ~version:0 tr with
            | `Installed n ->
                incr installed;
                pressure := !pressure + n
            | `Rejected -> Alcotest.fail "evicting policy rejected an install"
            | `Exists -> ())
        | Error _ -> ()
      done;
      Alcotest.(check bool) "occupancy capped" true (Megaflow.occupancy cache <= 2);
      Alcotest.(check bool) "installs kept landing" true (!installed > 2);
      Alcotest.(check int) "per-install counts sum to stats" !pressure
        (Megaflow.stats cache).Cache_stats.pressure_evictions;
      Alcotest.(check int) "pressure = installs - capacity" (!installed - 2) !pressure;
      Alcotest.(check int) "idle evictions untouched" 0
        (Megaflow.stats cache).Cache_stats.evictions;
      Alcotest.(check bool) "indexes stay a bijection" true
        (Megaflow.check_invariants cache))
    [ Gf_cache.Evict.Lru; Gf_cache.Evict.Random; Gf_cache.Evict.Priority_aware ]

let test_megaflow_lru_keeps_hot_entry () =
  let rng = Gf_util.Rng.create 27 in
  let p = random_pipeline rng ~tables:3 ~rules_per_table:12 in
  let cache = Megaflow.create ~policy:Gf_cache.Evict.Lru ~capacity:2 () in
  (* Install until two distinct entries are cached, remembering a flow that
     hits the first one. *)
  let hot = ref None in
  let tries = ref 0 in
  while Megaflow.occupancy cache < 2 && !tries < 500 do
    incr tries;
    let flow = pool_flow rng in
    match Executor.execute p flow with
    | Ok tr ->
        if Megaflow.install cache ~now:0.0 ~version:0 tr = `Installed 0 && !hot = None
        then hot := Some flow
    | Error _ -> ()
  done;
  let hot = Option.get !hot in
  (* Keep the hot entry fresh while churning new installs through: it must
     survive every pressure eviction. *)
  for i = 1 to 100 do
    let now = float_of_int i in
    Alcotest.(check bool) "hot entry survives" true
      (fst (Megaflow.lookup cache ~now hot) <> None);
    match Executor.execute p (pool_flow rng) with
    | Ok tr -> ignore (Megaflow.install cache ~now ~version:0 tr)
    | Error _ -> ()
  done

let test_megaflow_expire () =
  let rng = Gf_util.Rng.create 23 in
  let p = random_pipeline rng ~tables:3 ~rules_per_table:6 in
  let cache = Megaflow.create ~capacity:1024 () in
  for _ = 1 to 50 do
    let flow = pool_flow rng in
    match Executor.execute p flow with
    | Ok tr -> ignore (Megaflow.install cache ~now:0.0 ~version:0 tr)
    | Error _ -> ()
  done;
  let before = Megaflow.occupancy cache in
  Alcotest.(check bool) "installed some" true (before > 0);
  let evicted = Megaflow.expire cache ~now:100.0 ~max_idle:10.0 in
  Alcotest.(check int) "all idle evicted" before evicted;
  Alcotest.(check int) "empty" 0 (Megaflow.occupancy cache)

let test_megaflow_revalidation_detects_change () =
  let rng = Gf_util.Rng.create 24 in
  let p = random_pipeline rng ~tables:3 ~rules_per_table:6 in
  let cache = Megaflow.create ~capacity:1024 () in
  let flows = List.init 60 (fun _ -> pool_flow rng) in
  List.iter
    (fun flow ->
      match Executor.execute p flow with
      | Ok tr -> ignore (Megaflow.install cache ~now:0.0 ~version:(Pipeline.version p) tr)
      | Error _ -> ())
    flows;
  (* Unchanged pipeline: nothing evicted. *)
  let evicted, work = Megaflow.revalidate cache p in
  Alcotest.(check int) "consistent cache untouched" 0 evicted;
  Alcotest.(check bool) "revalidation did work" true (work > 0);
  (* Now shadow everything with a top-priority drop rule in the entry
     table. *)
  Pipeline.add_rule p ~table:0
    (Gf_pipeline.Ofrule.v ~id:(Pipeline.fresh_rule_id p) ~priority:1_000_000
       ~fmatch:Fmatch.any ~action:(Action.drop ()));
  let evicted, _ = Megaflow.revalidate cache p in
  Alcotest.(check int) "all entries invalidated" (Megaflow.occupancy cache + evicted)
    (evicted + Megaflow.occupancy cache);
  Alcotest.(check bool) "everything evicted" true (Megaflow.occupancy cache = 0 && evicted > 0)

(* After revalidation, surviving entries still agree with the pipeline. *)
let prop_megaflow_revalidate_sound =
  QCheck2.Test.make ~name:"revalidation leaves only consistent entries" ~count:25
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Gf_util.Rng.create seed in
      let p = random_pipeline rng ~tables:4 ~rules_per_table:8 in
      let cache = Megaflow.create ~capacity:4096 () in
      for _ = 1 to 80 do
        let flow = pool_flow rng in
        match Executor.execute p flow with
        | Ok tr -> ignore (Megaflow.install cache ~now:0.0 ~version:0 tr)
        | Error _ -> ()
      done;
      (* Random mutation: remove a handful of rules. *)
      List.iter
        (fun table ->
          match Gf_pipeline.Oftable.rules table with
          | r :: _ when Gf_util.Rng.bool rng ->
              ignore (Pipeline.remove_rule p ~table:(Gf_pipeline.Oftable.id table) r.Gf_pipeline.Ofrule.id)
          | _ -> ())
        (Pipeline.tables p);
      ignore (Megaflow.revalidate cache p);
      (* All surviving entries reproduce the new slowpath decision. *)
      let ok = ref true in
      for _ = 1 to 100 do
        let flow = pool_flow rng in
        match Megaflow.lookup cache ~now:0.0 flow with
        | Some h, _ -> (
            match Executor.terminal_of p flow with
            | Ok (terminal, out_flow) ->
                if
                  (not (Action.terminal_equal h.Megaflow.terminal terminal))
                  || not (Flow.equal h.Megaflow.out_flow out_flow)
                then ok := false
            | Error _ -> ok := false)
        | None, _ -> ()
      done;
      !ok)

(* Under random install/lookup/expire churn with an evicting policy, the
   megaflow's two indexes must remain a bijection and occupancy must never
   exceed capacity. *)
let prop_megaflow_invariants_under_churn =
  QCheck2.Test.make ~name:"megaflow invariants under eviction churn" ~count:25
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Gf_util.Rng.create seed in
      let p = random_pipeline rng ~tables:3 ~rules_per_table:10 in
      let policy =
        Gf_util.Rng.pick rng
          [| Gf_cache.Evict.Lru; Gf_cache.Evict.Random; Gf_cache.Evict.Priority_aware |]
      in
      let cache = Megaflow.create ~policy ~capacity:4 () in
      let ok = ref true in
      for i = 1 to 150 do
        let now = float_of_int i in
        (match Executor.execute p (pool_flow rng) with
        | Ok tr -> ignore (Megaflow.install cache ~now ~version:i tr)
        | Error _ -> ());
        ignore (Megaflow.lookup cache ~now (pool_flow rng));
        if i mod 40 = 0 then ignore (Megaflow.expire cache ~now ~max_idle:20.0);
        if Megaflow.occupancy cache > 4 || not (Megaflow.check_invariants cache) then
          ok := false
      done;
      !ok)

(* The invariant that licenses the ranked first-match TSS walk
   (Tss.lookup_first): wherever Megaflow entries overlap, they agree — every
   matching entry reproduces the slowpath decision, so whichever entry a
   first-match walk returns is correct. *)
let prop_megaflow_any_match_correct =
  QCheck2.Test.make ~name:"every matching megaflow entry is correct" ~count:25
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Gf_util.Rng.create seed in
      let p = random_pipeline rng ~tables:4 ~rules_per_table:10 in
      let cache = Megaflow.create ~capacity:4096 () in
      for _ = 1 to 120 do
        match Executor.execute p (pool_flow rng) with
        | Ok tr -> ignore (Megaflow.install cache ~now:0.0 ~version:0 tr)
        | Error _ -> ()
      done;
      let entries = Megaflow.entries_fmatches cache in
      let ok = ref true in
      for _ = 1 to 80 do
        let flow = pool_flow rng in
        let matching = List.filter (fun fm -> Gf_flow.Fmatch.matches fm flow) entries in
        match matching with
        | [] -> ()
        | _ :: _ -> (
            (* The cache's own answer must equal the slowpath, and every
               matching entry region must produce the same decision (probe
               via lookup, which returns some matching entry). *)
            match (Megaflow.lookup cache ~now:0.0 flow, Executor.terminal_of p flow) with
            | (Some h, _), Ok (terminal, out_flow) ->
                if
                  (not (Action.terminal_equal h.Megaflow.terminal terminal))
                  || not (Flow.equal h.Megaflow.out_flow out_flow)
                then ok := false
            | (None, _), _ -> ok := false (* matched entries but lookup missed *)
            | (Some _, _), Error _ -> ok := false)
      done;
      !ok)

(* Satellite: Priority_aware under capacity churn.  Whatever the
   interleaving of installs, refreshing lookups and expiry sweeps at a full
   table, the policy must (a) always admit the incoming entry by evicting
   exactly one admissible victim, (b) keep occupancy at/below capacity, and
   (c) count every pressure eviction exactly once in the stats. *)
let prop_priority_aware_churn =
  QCheck2.Test.make ~name:"priority-aware eviction under capacity churn"
    ~count:40
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Gf_util.Rng.create seed in
      let capacity = 2 + Gf_util.Rng.int rng 6 in
      let c =
        Microflow.create ~policy:Gf_cache.Evict.Priority_aware ~capacity ()
      in
      let f i = Flow.make [ (Field.Vlan, i) ] in
      let pressure = ref 0 in
      let ok = ref true in
      for i = 1 to 300 do
        let now = float_of_int i in
        let key = 1 + Gf_util.Rng.int rng 40 in
        (match Gf_util.Rng.int rng 4 with
        | 0 | 1 ->
            let evicted = Microflow.install c ~now (f key) a_hit in
            pressure := !pressure + evicted;
            (* The incoming entry is always admitted (Priority_aware never
               rejects), and at most one victim pays for it. *)
            if evicted > 1 then ok := false;
            if Microflow.lookup c ~now (f key) = None then ok := false
        | 2 -> ignore (Microflow.lookup c ~now (f key))
        | _ -> if i mod 60 = 0 then ignore (Microflow.expire c ~now ~max_idle:25.0));
        if Microflow.occupancy c > capacity then ok := false
      done;
      !ok
      && !pressure = (Microflow.stats c).Cache_stats.pressure_evictions
      && (Microflow.stats c).Cache_stats.rejected = 0)

let test_megaflow_search_algos_agree () =
  let rng = Gf_util.Rng.create 25 in
  let p = random_pipeline rng ~tables:4 ~rules_per_table:10 in
  let tss = Megaflow.create ~search:`Tss ~capacity:4096 () in
  let nm = Megaflow.create ~search:`Nuevomatch ~capacity:4096 () in
  for _ = 1 to 100 do
    let flow = pool_flow rng in
    match Executor.execute p flow with
    | Ok tr ->
        ignore (Megaflow.install tss ~now:0.0 ~version:0 tr);
        ignore (Megaflow.install nm ~now:0.0 ~version:0 tr)
    | Error _ -> ()
  done;
  for _ = 1 to 200 do
    let flow = pool_flow rng in
    let a, _ = Megaflow.lookup tss ~now:1.0 flow in
    let b, _ = Megaflow.lookup nm ~now:1.0 flow in
    match (a, b) with
    | Some x, Some y ->
        Alcotest.check terminal_testable "same terminal" x.Megaflow.terminal
          y.Megaflow.terminal
    | None, None -> ()
    | Some _, None | None, Some _ -> Alcotest.fail "tss/nm disagree on hit"
  done

let suite =
  [
    ("microflow basic", `Quick, test_microflow_basic);
    ("microflow lru", `Quick, test_microflow_lru_eviction);
    ("microflow expire", `Quick, test_microflow_expire);
    ("microflow invalidate", `Quick, test_microflow_invalidate_all);
    ("microflow eviction policies", `Quick, test_microflow_policy_pressure);
    ("cache stats", `Quick, test_cache_stats);
    ("megaflow dedup", `Quick, test_megaflow_collapses_flows);
    ("megaflow capacity", `Quick, test_megaflow_capacity_reject);
    ("megaflow pressure eviction", `Quick, test_megaflow_pressure_eviction);
    ("megaflow lru keeps hot entry", `Quick, test_megaflow_lru_keeps_hot_entry);
    ("megaflow expire", `Quick, test_megaflow_expire);
    ("megaflow revalidation", `Quick, test_megaflow_revalidation_detects_change);
    ("megaflow tss/nm agree", `Quick, test_megaflow_search_algos_agree);
  ]

let props =
  [
    prop_megaflow_consistent;
    prop_megaflow_revalidate_sound;
    prop_megaflow_invariants_under_churn;
    prop_megaflow_any_match_correct;
    prop_priority_aware_churn;
  ]
