(* Tests for gigaflow.engine: SPSC ring, batches, and the streaming
   engine's determinism against sequential sharded replay. *)

module Ring = Gf_engine.Ring
module Batch = Gf_engine.Batch
module Engine = Gf_engine.Engine
module Datapath = Gf_sim.Datapath
module Metrics = Gf_sim.Metrics
module Parallel = Gf_sim.Parallel
module Pipebench = Gf_workload.Pipebench
module Ruleset = Gf_workload.Ruleset
module Trace = Gf_workload.Trace
module Catalog = Gf_pipelines.Catalog
module Histogram = Gf_telemetry.Histogram
module Telemetry = Gf_telemetry.Telemetry

(* ------------------------------- ring -------------------------------- *)

let test_ring_capacity_blocking () =
  let r = Ring.create ~capacity:5 in
  let cap = Ring.capacity r in
  Alcotest.(check int) "rounds up to a power of two" 8 cap;
  for i = 0 to cap - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "push %d accepted" i)
      true (Ring.try_push r i)
  done;
  Alcotest.(check bool) "push refused at capacity" false (Ring.try_push r 99);
  Alcotest.(check (option int)) "fifo head" (Some 0) (Ring.try_pop r);
  Alcotest.(check bool) "space after pop" true (Ring.try_push r cap);
  for i = 1 to cap do
    Alcotest.(check (option int))
      (Printf.sprintf "fifo %d" i)
      (Some i) (Ring.try_pop r)
  done;
  Alcotest.(check (option int)) "empty pops None" None (Ring.try_pop r)

let prop_ring_spsc =
  QCheck2.Test.make
    ~name:"spsc ring: fifo, no loss, no dup across a domain pair" ~count:15
    QCheck2.Gen.(pair (1 -- 32) (list_size (0 -- 400) small_int))
    (fun (capacity, xs) ->
      let r = Ring.create ~capacity in
      let n = List.length xs in
      (* Consumer domain blocks on [pop]; the producer blocks on [push]
         when the ring fills — any loss, duplication or reorder shows up
         as a mismatched list (a lost item deadlocks into the test
         timeout instead of passing). *)
      let consumer =
        Domain.spawn (fun () -> List.init n (fun _ -> Ring.pop r))
      in
      List.iter (fun x -> Ring.push r x) xs;
      let got = Domain.join consumer in
      got = xs)

(* ------------------------------- batch ------------------------------- *)

let test_batch_pool_roundtrip () =
  let b = Batch.create ~size:64 in
  Alcotest.(check int) "size" 64 (Batch.size b);
  Alcotest.(check int) "created empty" 0 b.Batch.len;
  Alcotest.(check bool) "not poison" false (Batch.is_poison b);
  Alcotest.(check bool) "poison is poison" true (Batch.is_poison Batch.poison)

(* ------------------------- engine determinism ------------------------- *)

let small_profile =
  {
    Gf_workload.Classbench.acl_profile with
    Gf_workload.Classbench.endpoints = 128;
    subnets = 16;
    services = 32;
  }

(* Strong fingerprint: every merged counter that must agree between the
   engine and sequential sharded replay — aggregates, the full per-level
   breakdown, occupancy peaks, and the exact latency sum (compared as
   bits: the merge order is fixed, so even float addition order must
   coincide). *)
let strong_fingerprint (m : Metrics.t) =
  let f x = Int64.to_string (Int64.bits_of_float x) in
  String.concat ","
    ([
       string_of_int m.Metrics.packets; string_of_int m.Metrics.hw_hits;
       string_of_int m.Metrics.sw_hits; string_of_int m.Metrics.slowpaths;
       string_of_int m.Metrics.drops; string_of_int m.Metrics.hw_installs;
       string_of_int m.Metrics.hw_shared; string_of_int m.Metrics.hw_rejected;
       string_of_int m.Metrics.hw_evictions;
       string_of_int m.Metrics.hw_pressure_evictions;
       string_of_int m.Metrics.cycles_userspace;
       string_of_int m.Metrics.cycles_partition;
       string_of_int m.Metrics.cycles_rulegen;
       string_of_int m.Metrics.cycles_sw_search;
       string_of_int m.Metrics.hw_entries_peak;
       string_of_int m.Metrics.hw_entries_final;
       string_of_int (Gf_util.Stats.Acc.count m.Metrics.latency);
       f (Gf_util.Stats.Acc.total m.Metrics.latency);
       string_of_int (Histogram.count m.Metrics.latency_hist);
       f (Histogram.sum m.Metrics.latency_hist);
     ]
    @ List.concat_map
        (fun (l : Metrics.level) ->
          [
            l.Metrics.level_name; string_of_int l.Metrics.hits;
            string_of_int l.Metrics.misses; string_of_int l.Metrics.installs;
            string_of_int l.Metrics.shared; string_of_int l.Metrics.rejected;
            string_of_int l.Metrics.evictions;
            string_of_int l.Metrics.pressure_evictions;
            string_of_int l.Metrics.deferred;
            string_of_int l.Metrics.demotions;
            string_of_int l.Metrics.work; f l.Metrics.latency_us;
            string_of_int l.Metrics.occupancy_peak;
            string_of_int l.Metrics.occupancy_final;
            string_of_int (Histogram.count l.Metrics.latency_hist);
          ])
        (Metrics.levels m))

let steady_trace () =
  let w =
    Pipebench.make ~profile:small_profile ~combos:512 ~unique_flows:1000
      ~duration:20.0
      ~info:(Option.get (Catalog.find "PSC"))
      ~locality:Ruleset.High ~seed:77 ()
  in
  let stream =
    Trace.steady ~duration:5.0 ~zipf_s:1.1 ~packets:20_000 ~seed:11
      ~flows:w.Pipebench.flows ()
  in
  (Pipebench.pipeline w, Trace.trace_of_stream stream)

let test_engine_matches_sequential () =
  let pipeline, strace = steady_trace () in
  List.iter
    (fun (name, cfg) ->
      List.iter
        (fun domains ->
          let seq =
            Parallel.replay ~mode:`Sequential ~domains ~cfg pipeline strace
          in
          let eng =
            Engine.replay ~batch_size:256 ~domains ~cfg pipeline
              (Trace.stream_of_trace strace)
          in
          Alcotest.(check string)
            (Printf.sprintf "%s d=%d merged metrics" name domains)
            (strong_fingerprint seq.Parallel.merged)
            (strong_fingerprint eng.Parallel.merged))
        [ 1; 2; 4 ])
    [
      ("emc_mf_sw", Datapath.emc_mf_sw ());
      ("emc_gf_sw", Datapath.emc_gf_sw ());
      (* Capacity small enough that heavy-hitter admission actually defers,
         promotes and demotes during the run. *)
      ("mf_sw_hh", Datapath.mf_sw_hh ~mf_capacity:32 ());
      ( "gf_sw_hh",
        Datapath.gf_sw_hh ~gf:(Gf_core.Config.v ~tables:2 ~table_capacity:16 ()) () );
    ]

let test_engine_batch_size_invariant () =
  let pipeline, strace = steady_trace () in
  let cfg = Datapath.emc_mf_sw () in
  let run bs =
    strong_fingerprint
      (Engine.replay ~batch_size:bs ~domains:2 ~cfg pipeline
         (Trace.stream_of_trace strace))
        .Parallel.merged
  in
  let ref_fp = run 256 in
  List.iter
    (fun bs ->
      Alcotest.(check string)
        (Printf.sprintf "batch=%d = batch=256" bs)
        ref_fp (run bs))
    [ 1; 17; 1024 ]

(* --------------------- sampler cadence transparency --------------------- *)

let cadence_presets () =
  [|
    ("mf_sw_hh", Datapath.mf_sw_hh ~mf_capacity:32 ());
    ( "gf_sw_hh",
      Datapath.gf_sw_hh ~gf:(Gf_core.Config.v ~tables:2 ~table_capacity:16 ()) ()
    );
  |]

(* The pull-model sampler's cadence is an observation schedule, not a
   semantic knob: whatever [sample_every] (including 0 = series off), the
   merged metrics must be bit-identical to the uninstrumented run.  Runs
   on the admission presets, whose defer/promote/demote paths exercise
   every passive emission site.  Plain fingerprints are memoised per
   (preset, domains) — the property draws only the cadence fresh. *)
let prop_engine_sampler_cadence_transparent =
  let setup =
    lazy
      (let pipeline, strace = steady_trace () in
       (pipeline, strace, cadence_presets (), Hashtbl.create 8))
  in
  QCheck2.Test.make
    ~name:"engine telemetry: sampler cadence leaves merged metrics bit-identical"
    ~count:12
    QCheck2.Gen.(triple (0 -- 1) (1 -- 2) (oneofl [ 0; 1; 17; 700; 5000 ]))
    (fun (pi, domains, sample_every) ->
      let pipeline, strace, presets, plain = Lazy.force setup in
      let name, cfg = presets.(pi) in
      let fp_plain =
        match Hashtbl.find_opt plain (name, domains) with
        | Some fp -> fp
        | None ->
            let r =
              Engine.replay ~batch_size:256 ~domains ~cfg pipeline
                (Trace.stream_of_trace strace)
            in
            let fp = strong_fingerprint r.Parallel.merged in
            Hashtbl.add plain (name, domains) fp;
            fp
      in
      let telemetry =
        {
          Telemetry.sample_every;
          event_capacity = 256;
          event_sample_every = 5;
          trace_sample_every = 0;
        }
      in
      let r =
        Engine.replay ~telemetry ~batch_size:256 ~domains ~cfg pipeline
          (Trace.stream_of_trace strace)
      in
      strong_fingerprint r.Parallel.merged = fp_plain)

(* Beyond the metrics: the retained flight-recorder events and the final
   registry export are cadence-invariant too (the time-series length is
   not — that is the knob's whole job). *)
let test_engine_cadence_invariant_exports () =
  let pipeline, strace = steady_trace () in
  Array.iter
    (fun (name, cfg) ->
      List.iter
        (fun domains ->
          let run sample_every =
            let telemetry =
              {
                Telemetry.sample_every;
                event_capacity = 256;
                event_sample_every = 5;
                trace_sample_every = 0;
              }
            in
            Option.get
              (Engine.replay ~telemetry ~batch_size:256 ~domains ~cfg pipeline
                 (Trace.stream_of_trace strace))
                .Parallel.telemetry
          in
          (* The ring-flush diagnostic is the one legitimately
             cadence-dependent series: a slower sampler pulls less often,
             so the rings wrap more.  Everything else must be invariant. *)
          let scrub prom =
            prom |> String.split_on_char '\n'
            |> List.filter (fun line ->
                   not
                     (String.length line >= 34
                     && String.equal (String.sub line 0 34)
                          "gigaflow_passive_ring_flushes_tota"))
            |> String.concat "\n"
          in
          let tel0 = run 1 in
          List.iter
            (fun every ->
              let tel = run every in
              Alcotest.(check bool)
                (Printf.sprintf "%s d=%d every=%d events" name domains every)
                true
                (Telemetry.events tel0 = Telemetry.events tel);
              Alcotest.(check string)
                (Printf.sprintf "%s d=%d every=%d registry" name domains every)
                (scrub (Telemetry.prometheus tel0))
                (scrub (Telemetry.prometheus tel)))
            [ 700; 0 ])
        [ 1; 2 ])
    (cadence_presets ())

(* --------------------- tracer transparency + census --------------------- *)

(* The traversal tracer is observation-only: whatever the 1-in-N span
   cadence, both the walker's and the engine's strong fingerprints must
   be bit-identical to the trace-off run at every domain count.  Plain
   fingerprints are memoised; each draw re-runs only the traced side. *)
let prop_tracer_cadence_transparent =
  let setup =
    lazy
      (let pipeline, strace = steady_trace () in
       (pipeline, strace, cadence_presets (), Hashtbl.create 8, Hashtbl.create 4))
  in
  QCheck2.Test.make
    ~name:"tracer: cadences {1,17,701} leave walker/engine bit-identical"
    ~count:10
    QCheck2.Gen.(triple (0 -- 1) (oneofl [ 1; 2; 4 ]) (oneofl [ 1; 17; 701 ]))
    (fun (pi, domains, cadence) ->
      let pipeline, strace, presets, eng_plain, walk_plain =
        Lazy.force setup
      in
      let name, cfg = presets.(pi) in
      let telemetry trace_sample_every =
        {
          Telemetry.sample_every = 5_000;
          event_capacity = 256;
          event_sample_every = 0;
          trace_sample_every;
        }
      in
      let eng_fp trace_every =
        let r =
          Engine.replay
            ~telemetry:(telemetry trace_every)
            ~batch_size:256 ~domains ~cfg pipeline
            (Trace.stream_of_trace strace)
        in
        strong_fingerprint r.Parallel.merged
      in
      let walk_fp trace_every =
        let tel = Telemetry.create ~config:(telemetry trace_every) () in
        let dp = Datapath.create ~telemetry:tel cfg pipeline in
        strong_fingerprint (Datapath.run dp strace)
      in
      let memo tbl key f =
        match Hashtbl.find_opt tbl key with
        | Some v -> v
        | None ->
            let v = f () in
            Hashtbl.add tbl key v;
            v
      in
      let eng_ref = memo eng_plain (name, domains) (fun () -> eng_fp 0) in
      let walk_ref = memo walk_plain name (fun () -> walk_fp 0) in
      eng_fp cadence = eng_ref && walk_fp cadence = walk_ref)

(* Every [Metrics] miss is charged to exactly one census cause at the
   point it is resolved, so the merged tracer's census total must equal
   the summed per-level miss counters exactly — at every domain count, on
   a churn trace against the small heavy-hitter presets (defer, pressure
   eviction, idle expiry and revalidation all fire). *)
let test_miss_cause_census_reconciles () =
  let w =
    Pipebench.make ~profile:small_profile ~combos:512 ~unique_flows:1000
      ~duration:20.0
      ~info:(Option.get (Catalog.find "PSC"))
      ~locality:Ruleset.High ~seed:77 ()
  in
  let strace =
    Trace.churn ~duration:20.0 ~epochs:12 ~active:256 ~turnover:0.4
      ~packets_per_epoch:2048 ~seed:23 ~flows:w.Pipebench.flows ()
  in
  let telemetry =
    {
      Telemetry.sample_every = 5_000;
      event_capacity = 256;
      event_sample_every = 0;
      trace_sample_every = 101;
    }
  in
  Array.iter
    (fun (name, cfg) ->
      List.iter
        (fun domains ->
          let r =
            Engine.replay ~telemetry ~batch_size:256 ~domains ~cfg
              (Pipebench.pipeline w)
              (Trace.stream_of_trace strace)
          in
          let tel = Option.get r.Parallel.telemetry in
          let tracer = Option.get (Telemetry.tracer tel) in
          let total_misses =
            List.fold_left
              (fun acc (l : Metrics.level) -> acc + l.Metrics.misses)
              0
              (Metrics.levels r.Parallel.merged)
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s d=%d: misses observed" name domains)
            true (total_misses > 0);
          Alcotest.(check int)
            (Printf.sprintf "%s d=%d: census = metrics misses" name domains)
            total_misses
            (Gf_telemetry.Tracer.census_total tracer))
        [ 1; 2; 4 ])
    (cadence_presets ())

(* ------------------------------- soak -------------------------------- *)

(* A million-packet steady-state run with the full telemetry stack on:
   after the first measurement window (memo tables, ring and recorder
   warm-up), the live heap must stay flat — the passive records are
   preallocated and the packet path allocation-free, so any growth is a
   leak. *)
let test_soak_live_heap_flat () =
  let w =
    Pipebench.make ~profile:small_profile ~combos:512 ~unique_flows:1000
      ~duration:20.0
      ~info:(Option.get (Catalog.find "PSC"))
      ~locality:Ruleset.High ~seed:77 ()
  in
  let total = 1_200_000 and window = 200_000 in
  let stream =
    Trace.steady ~duration:60.0 ~zipf_s:1.1 ~packets:total ~seed:11
      ~flows:w.Pipebench.flows ()
  in
  let telemetry =
    Telemetry.create
      ~config:
        {
          Telemetry.sample_every = 10_000;
          event_capacity = 512;
          event_sample_every = 7;
          trace_sample_every = 0;
        }
      ()
  in
  let dp =
    Datapath.create ~telemetry (Datapath.emc_gf_sw ()) (Pipebench.pipeline w)
  in
  let batch = 1024 in
  let times = Array.make batch 0.0 in
  let flow_ids = Array.make batch 0 in
  let flows = Array.make batch Gf_flow.Flow.zero in
  let processed = ref 0 in
  let live = ref [] in
  let continue = ref true in
  while !continue do
    let k = Trace.fill stream ~times ~flow_ids ~flows ~max:batch in
    if k = 0 then continue := false
    else begin
      for i = 0 to k - 1 do
        ignore
          (Datapath.process_memo dp ~now:times.(i) ~flow_id:flow_ids.(i)
             flows.(i))
      done;
      Datapath.maybe_sample dp ~time:times.(k - 1);
      let before = !processed in
      processed := !processed + k;
      if !processed / window > before / window then begin
        Gc.full_major ();
        live := float_of_int (Gc.stat ()).Gc.live_words :: !live
      end
    end
  done;
  ignore (Datapath.finalize dp ~time:60.0);
  Alcotest.(check int) "soaked the full stream" total !processed;
  match List.rev !live with
  | _warmup :: (ref0 :: _ as steady) when List.length steady >= 3 ->
      List.iteri
        (fun i lw ->
          let drift = Float.abs (lw -. ref0) /. ref0 in
          Alcotest.(check bool)
            (Printf.sprintf "window %d live-word drift %.4f <= 5%%" (i + 2)
               drift)
            true (drift <= 0.05))
        steady
  | ws -> Alcotest.failf "soak produced only %d windows" (List.length ws)

let suite =
  [
    Alcotest.test_case "ring capacity + blocking" `Quick
      test_ring_capacity_blocking;
    Alcotest.test_case "batch pool roundtrip" `Quick test_batch_pool_roundtrip;
    Alcotest.test_case "engine = sequential (presets x domains)" `Slow
      test_engine_matches_sequential;
    Alcotest.test_case "engine invariant to batch size" `Slow
      test_engine_batch_size_invariant;
    Alcotest.test_case "cadence-invariant events + registry" `Slow
      test_engine_cadence_invariant_exports;
    Alcotest.test_case "miss-cause census reconciles with metrics" `Slow
      test_miss_cause_census_reconciles;
    Alcotest.test_case "soak: live heap flat over 1.2M packets" `Slow
      test_soak_live_heap_flat;
  ]

let props =
  [
    prop_ring_spsc; prop_engine_sampler_cadence_transparent;
    prop_tracer_cadence_transparent;
  ]
