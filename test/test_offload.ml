(* Tests for gigaflow.offload (the heavy-hitter admission sketch), the
   cuckoo software cache level and the end-to-end skew-aware admission
   path. *)

module Field = Gf_flow.Field
module Flow = Gf_flow.Flow
module Action = Gf_pipeline.Action
module Heavy_hitter = Gf_offload.Heavy_hitter
module Cuckoo = Gf_cache.Cuckoo
module Cache_stats = Gf_cache.Cache_stats
module Catalog = Gf_pipelines.Catalog
module Ruleset = Gf_workload.Ruleset
module Pipebench = Gf_workload.Pipebench
module Trace = Gf_workload.Trace
module Datapath = Gf_sim.Datapath
module Metrics = Gf_sim.Metrics

let flow i = Flow.make [ (Field.Vlan, i) ]

(* ------------------------------ sketch ------------------------------ *)

let test_hh_exact_when_small () =
  (* With at most k distinct flows the sketch is an exact counter. *)
  let t = Heavy_hitter.create ~k:8 in
  for round = 1 to 5 do
    for i = 1 to 4 do
      if i <= round then Heavy_hitter.observe t (flow i)
    done
  done;
  (* flow i observed (5 - i + 1) times for i in 1..4 *)
  List.iter
    (fun i ->
      Alcotest.(check int)
        (Printf.sprintf "count flow %d" i)
        (6 - i)
        (Heavy_hitter.count t (flow i));
      Alcotest.(check int)
        (Printf.sprintf "guaranteed flow %d" i)
        (6 - i)
        (Heavy_hitter.guaranteed t (flow i)))
    [ 1; 2; 3; 4 ];
  Alcotest.(check int) "size" 4 (Heavy_hitter.size t);
  Alcotest.(check int) "observed" 14 (Heavy_hitter.observed t);
  Alcotest.(check bool) "untracked counts 0" true
    (Heavy_hitter.count t (flow 99) = 0)

let test_hh_replacement_inherits_error () =
  let t = Heavy_hitter.create ~k:2 in
  Heavy_hitter.observe t (flow 1);
  Heavy_hitter.observe t (flow 1);
  Heavy_hitter.observe t (flow 2);
  (* Full: flow 3 replaces the minimum (flow 2, count 1) and inherits its
     count as error. *)
  Heavy_hitter.observe t (flow 3);
  Alcotest.(check int) "count = victim + 1" 2 (Heavy_hitter.count t (flow 3));
  Alcotest.(check int) "guaranteed strips inherited" 1
    (Heavy_hitter.guaranteed t (flow 3));
  Alcotest.(check bool) "victim gone" true (Heavy_hitter.count t (flow 2) = 0);
  Alcotest.(check bool) "not hot on inherited count" false
    (Heavy_hitter.hot t ~threshold:2 (flow 3));
  Alcotest.(check bool) "hot at its guaranteed count" true
    (Heavy_hitter.hot t ~threshold:1 (flow 3))

let test_hh_decay () =
  let t = Heavy_hitter.create ~k:4 in
  for _ = 1 to 8 do
    Heavy_hitter.observe t (flow 1)
  done;
  Heavy_hitter.observe t (flow 2);
  Heavy_hitter.decay t;
  Alcotest.(check int) "halved" 4 (Heavy_hitter.count t (flow 1));
  Alcotest.(check int) "floor-halving prunes singletons" 0
    (Heavy_hitter.count t (flow 2));
  Alcotest.(check int) "size shrank" 1 (Heavy_hitter.size t);
  (* The sketch must keep working after compaction. *)
  Heavy_hitter.observe t (flow 3);
  Alcotest.(check int) "fresh insert after decay" 1 (Heavy_hitter.count t (flow 3))

let test_hh_top_order () =
  let t = Heavy_hitter.create ~k:8 in
  List.iter
    (fun (i, n) ->
      for _ = 1 to n do
        Heavy_hitter.observe t (flow i)
      done)
    [ (1, 3); (2, 7); (3, 5) ];
  let ranks = List.map (fun (_, c, _) -> c) (Heavy_hitter.top t ~n:3) in
  Alcotest.(check (list int)) "descending counts" [ 7; 5; 3 ] ranks

(* Sketch property: for any observation stream, count over-estimates and
   guaranteed = count - err under-estimates the true per-flow frequency,
   and the tracked set never exceeds k. *)
let prop_hh_bounds =
  QCheck2.Test.make ~name:"space-saving count/guaranteed bracket the truth"
    ~count:50
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Gf_util.Rng.create seed in
      let k = 1 + Gf_util.Rng.int rng 8 in
      let universe = 1 + Gf_util.Rng.int rng 24 in
      let t = Heavy_hitter.create ~k in
      let truth = Hashtbl.create 32 in
      let ok = ref true in
      for _ = 1 to 400 do
        let i = 1 + Gf_util.Rng.int rng universe in
        Heavy_hitter.observe t (flow i);
        Hashtbl.replace truth i (1 + Option.value ~default:0 (Hashtbl.find_opt truth i));
        if Heavy_hitter.size t > k then ok := false
      done;
      Hashtbl.iter
        (fun i true_count ->
          let c = Heavy_hitter.count t (flow i) in
          let g = Heavy_hitter.guaranteed t (flow i) in
          if c > 0 && (c < true_count || g > true_count) then ok := false)
        truth;
      !ok)

(* Merge property: merging per-shard sketches is deterministic (stable
   tie-breaks) and preserves the union's summed counts for flows tracked
   on exactly one side — the cross-shard reporting path. *)
let prop_hh_merge =
  QCheck2.Test.make ~name:"sketch merge is deterministic and sums counts"
    ~count:50
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Gf_util.Rng.create seed in
      let k = 2 + Gf_util.Rng.int rng 6 in
      let a = Heavy_hitter.create ~k and b = Heavy_hitter.create ~k in
      (* Disjoint shards: even flows to [a], odd flows to [b] (RSS-style). *)
      for _ = 1 to 300 do
        let i = 1 + Gf_util.Rng.int rng 16 in
        Heavy_hitter.observe (if i mod 2 = 0 then a else b) (flow i)
      done;
      let fingerprint m =
        List.map
          (fun (f, c, e) -> Printf.sprintf "%d:%d:%d" (Flow.hash f) c e)
          (Heavy_hitter.top m ~n:k)
      in
      let m1 = Heavy_hitter.merge a b and m2 = Heavy_hitter.merge a b in
      let deterministic = fingerprint m1 = fingerprint m2 in
      let observed_ok =
        Heavy_hitter.observed m1
        = Heavy_hitter.observed a + Heavy_hitter.observed b
      in
      (* Any flow surviving into the merge carries at least the count either
         side tracked for it (disjoint shards: the other side contributes
         nothing). *)
      let counts_ok =
        List.for_all
          (fun (f, c, _) ->
            c >= Heavy_hitter.count a f && c >= Heavy_hitter.count b f)
          (Heavy_hitter.top m1 ~n:k)
      in
      deterministic && observed_ok && counts_ok)

let test_hh_policy_strings () =
  let roundtrip s expect =
    match Heavy_hitter.policy_of_string s with
    | Ok p -> Alcotest.(check string) s expect (Heavy_hitter.policy_to_string p)
    | Error e -> Alcotest.fail e
  in
  roundtrip "all" "all";
  roundtrip "hh" (Printf.sprintf "hh:%d@%d" Heavy_hitter.default_k Heavy_hitter.default_threshold);
  roundtrip "hh:32" (Printf.sprintf "hh:32@%d" Heavy_hitter.default_threshold);
  Alcotest.(check bool) "garbage rejected" true
    (Result.is_error (Heavy_hitter.policy_of_string "hh:zero"))

(* ------------------------------ cuckoo ------------------------------ *)

let a_hit = { Cuckoo.terminal = Action.Output 1; out_flow = Flow.zero }

let test_cuckoo_roundtrip () =
  let c = Cuckoo.create ~capacity:64 () in
  Alcotest.(check bool) "miss first" true (Cuckoo.lookup c ~now:0.0 (flow 1) = None);
  ignore (Cuckoo.install c ~now:0.0 (flow 1) a_hit);
  (match Cuckoo.lookup c ~now:1.0 (flow 1) with
  | Some h -> Alcotest.(check bool) "terminal" true (h.Cuckoo.terminal = Action.Output 1)
  | None -> Alcotest.fail "installed flow missing");
  Alcotest.(check int) "occupancy" 1 (Cuckoo.occupancy c);
  (* Same-key reinstall replaces, does not duplicate. *)
  ignore (Cuckoo.install c ~now:2.0 (flow 1) { a_hit with terminal = Action.Drop });
  Alcotest.(check int) "still one entry" 1 (Cuckoo.occupancy c);
  match Cuckoo.lookup c ~now:3.0 (flow 1) with
  | Some h -> Alcotest.(check bool) "replaced" true (h.Cuckoo.terminal = Action.Drop)
  | None -> Alcotest.fail "replaced flow missing"

let test_cuckoo_expire_and_flush () =
  let c = Cuckoo.create ~capacity:64 () in
  ignore (Cuckoo.install c ~now:0.0 (flow 1) a_hit);
  ignore (Cuckoo.install c ~now:5.0 (flow 2) a_hit);
  Alcotest.(check int) "one expired" 1 (Cuckoo.expire c ~now:11.0 ~max_idle:10.0);
  Alcotest.(check bool) "old gone" true (Cuckoo.lookup c ~now:11.0 (flow 1) = None);
  Alcotest.(check bool) "fresh kept" true (Cuckoo.lookup c ~now:11.0 (flow 2) <> None);
  Alcotest.(check int) "flush" 1 (Cuckoo.invalidate_all c);
  Alcotest.(check int) "empty" 0 (Cuckoo.occupancy c)

let test_cuckoo_reject_at_capacity () =
  let c = Cuckoo.create ~policy:Gf_cache.Evict.Reject ~capacity:4 () in
  for i = 1 to 4 do
    ignore (Cuckoo.install c ~now:(float_of_int i) (flow i) a_hit)
  done;
  Alcotest.(check int) "full" 4 (Cuckoo.occupancy c);
  Alcotest.(check int) "reject evicts nothing" 0
    (Cuckoo.install c ~now:5.0 (flow 5) a_hit);
  Alcotest.(check int) "occupancy capped" 4 (Cuckoo.occupancy c);
  Alcotest.(check bool) "newcomer absent" true (Cuckoo.lookup c ~now:6.0 (flow 5) = None);
  Alcotest.(check int) "rejection counted" 1 (Cuckoo.stats c).Cache_stats.rejected;
  (* Existing entries survive the refused install. *)
  for i = 1 to 4 do
    Alcotest.(check bool)
      (Printf.sprintf "flow %d intact" i)
      true
      (Cuckoo.lookup c ~now:6.0 (flow i) <> None)
  done

(* Under random install/lookup/expire churn, occupancy must track the set
   of live keys exactly: every install either finds its key or frees a slot
   first, so [occupancy] = |distinct keys resident| <= capacity + drift
   from pressure evictions already subtracted. *)
let prop_cuckoo_churn =
  QCheck2.Test.make ~name:"cuckoo size accounting under churn" ~count:50
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Gf_util.Rng.create seed in
      let policy =
        Gf_util.Rng.pick rng
          [|
            Gf_cache.Evict.Reject; Gf_cache.Evict.Lru; Gf_cache.Evict.Random;
            Gf_cache.Evict.Priority_aware;
          |]
      in
      let capacity = 4 + Gf_util.Rng.int rng 12 in
      let c = Cuckoo.create ~policy ~capacity () in
      let ok = ref true in
      for i = 1 to 400 do
        let now = float_of_int i in
        let f = flow (1 + Gf_util.Rng.int rng 64) in
        (match Gf_util.Rng.int rng 3 with
        | 0 -> ignore (Cuckoo.install c ~now f a_hit)
        | 1 ->
            (* A lookup hit must return exactly what an install wrote. *)
            ignore (Cuckoo.lookup c ~now f)
        | _ -> if i mod 50 = 0 then ignore (Cuckoo.expire c ~now ~max_idle:30.0));
        if Cuckoo.occupancy c > Cuckoo.slots c then ok := false
      done;
      (* Count live keys by probing the whole key universe: occupancy must
         agree with what lookup can actually reach. *)
      let reachable = ref 0 in
      for i = 1 to 64 do
        if Cuckoo.lookup c ~now:1000.0 (flow i) <> None then incr reachable
      done;
      !ok && !reachable = Cuckoo.occupancy c)

(* ----------------------------- retarget ------------------------------ *)

let test_hh_retarget_preserves_hot_set () =
  let t = Heavy_hitter.create ~k:8 in
  (* Flow i observed (9 - i) times: 1 is the biggest elephant. *)
  for i = 1 to 8 do
    for _ = 1 to 9 - i do
      Heavy_hitter.observe t (flow i)
    done
  done;
  let observed = Heavy_hitter.observed t in
  (* Shrink: the lowest-count rows fall off, the elephants survive with
     their counts (not rebuilt from scratch). *)
  Heavy_hitter.retarget t ~k:3;
  Alcotest.(check int) "k" 3 (Heavy_hitter.k t);
  Alcotest.(check int) "size" 3 (Heavy_hitter.size t);
  Alcotest.(check int) "observed carries over" observed (Heavy_hitter.observed t);
  List.iter
    (fun i ->
      Alcotest.(check int)
        (Printf.sprintf "count flow %d survives" i)
        (9 - i)
        (Heavy_hitter.count t (flow i)))
    [ 1; 2; 3 ];
  Alcotest.(check int) "truncated flow forgotten" 0
    (Heavy_hitter.count t (flow 7));
  Alcotest.(check bool) "invariants" true (Heavy_hitter.check_invariants t);
  (* Grow: everything tracked stays, new rows open up. *)
  Heavy_hitter.retarget t ~k:16;
  Alcotest.(check int) "k after grow" 16 (Heavy_hitter.k t);
  Alcotest.(check int) "size after grow" 3 (Heavy_hitter.size t);
  Alcotest.(check int) "counts after grow" 8 (Heavy_hitter.count t (flow 1));
  Heavy_hitter.observe t (flow 42);
  Alcotest.(check int) "new flow admitted" 1 (Heavy_hitter.count t (flow 42));
  Alcotest.(check bool) "invariants after grow" true
    (Heavy_hitter.check_invariants t);
  (* Same k is a no-op; k < 1 is a caller bug. *)
  Heavy_hitter.retarget t ~k:16;
  Alcotest.(check int) "no-op keeps size" 4 (Heavy_hitter.size t);
  match Heavy_hitter.retarget t ~k:0 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "retarget accepted k=0"

(* Structural invariant under arbitrary interleavings of every mutation
   the sketch supports — observe, decay, merge, retarget: the boundary
   index must keep mapping each live count to the leftmost row of its
   run (the O(1) bump-by-swap precondition). *)
let prop_hh_invariants_under_interleaving =
  QCheck2.Test.make
    ~name:"sketch invariants hold under observe/decay/merge/retarget" ~count:80
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Gf_util.Rng.create seed in
      let t = ref (Heavy_hitter.create ~k:(1 + Gf_util.Rng.int rng 8)) in
      let ok = ref true in
      let step () =
        match Gf_util.Rng.int rng 20 with
        | 0 -> Heavy_hitter.decay !t
        | 1 ->
            (* Retarget to a nearby k, shrink or grow. *)
            Heavy_hitter.retarget !t ~k:(1 + Gf_util.Rng.int rng 12)
        | 2 ->
            let other = Heavy_hitter.create ~k:(1 + Gf_util.Rng.int rng 8) in
            for _ = 1 to Gf_util.Rng.int rng 40 do
              Heavy_hitter.observe other (flow (1 + Gf_util.Rng.int rng 24))
            done;
            t := Heavy_hitter.merge !t other
        | _ -> Heavy_hitter.observe !t (flow (1 + Gf_util.Rng.int rng 24))
      in
      for _ = 1 to 200 do
        step ();
        if not (Heavy_hitter.check_invariants !t) then ok := false
      done;
      !ok)

(* --------------------------- end-to-end ----------------------------- *)

let elephant_workload () =
  Pipebench.make_elephant
    ~combos:512 ~unique_flows:4000 ~elephants:16 ~elephant_share:0.8
    ~packets:16_384
    ~info:(Option.get (Catalog.find "PSC"))
    ~locality:Ruleset.High ~seed:7 ()

(* The tentpole acceptance property in miniature: on an elephant/mice trace
   with constrained hardware capacity, heavy-hitter admission beats the
   admit-all Reject baseline on hardware hit rate. *)
let test_admission_beats_reject () =
  let w = elephant_workload () in
  let run cfg =
    let dp = Datapath.create cfg (Pipebench.pipeline w) in
    Metrics.hw_hit_rate (Datapath.run dp w.Pipebench.trace)
  in
  let hh = run (Datapath.mf_sw_hh ~mf_capacity:16 ()) in
  let reject = run (Datapath.mf_sw ~mf_capacity:16 ()) in
  let lru =
    run (Datapath.with_policy Gf_cache.Evict.Lru (Datapath.mf_sw ~mf_capacity:16 ()))
  in
  Alcotest.(check bool)
    (Printf.sprintf "hh (%.3f) > reject (%.3f)" hh reject)
    true (hh > reject);
  Alcotest.(check bool)
    (Printf.sprintf "hh (%.3f) > lru (%.3f)" hh lru)
    true (hh > lru)

(* Walker and batched engine must stay bit-identical under admission: the
   sketch is observed exactly once per packet on every packet path. *)
let test_admission_walker_engine_agree () =
  let w = elephant_workload () in
  let cfg = Datapath.gf_sw_hh ~gf:(Gf_core.Config.v ~tables:2 ~table_capacity:8 ()) () in
  let pipeline = Pipebench.pipeline w in
  let seq =
    Gf_sim.Parallel.replay ~mode:`Sequential ~domains:1 ~cfg pipeline
      w.Pipebench.trace
  in
  let eng =
    Gf_engine.Engine.replay ~batch_size:256 ~domains:1 ~cfg pipeline
      (Trace.stream_of_trace w.Pipebench.trace)
  in
  let fp (m : Metrics.t) =
    ( m.Metrics.packets, m.Metrics.hw_hits, m.Metrics.sw_hits,
      m.Metrics.slowpaths, m.Metrics.hw_installs, m.Metrics.hw_deferred,
      m.Metrics.hw_demotions, m.Metrics.hw_evictions )
  in
  Alcotest.(check bool)
    "walker = engine under admission" true
    (fp seq.Gf_sim.Parallel.merged = fp eng.Gf_sim.Parallel.merged)

(* ---------------------------- registry ------------------------------ *)

let suite =
  [
    Alcotest.test_case "sketch exact when small" `Quick test_hh_exact_when_small;
    Alcotest.test_case "sketch replacement inherits error" `Quick
      test_hh_replacement_inherits_error;
    Alcotest.test_case "sketch decay" `Quick test_hh_decay;
    Alcotest.test_case "sketch top order" `Quick test_hh_top_order;
    Alcotest.test_case "policy strings" `Quick test_hh_policy_strings;
    Alcotest.test_case "cuckoo roundtrip" `Quick test_cuckoo_roundtrip;
    Alcotest.test_case "cuckoo expire + flush" `Quick test_cuckoo_expire_and_flush;
    Alcotest.test_case "cuckoo reject at capacity" `Quick
      test_cuckoo_reject_at_capacity;
    Alcotest.test_case "sketch retarget preserves hot set" `Quick
      test_hh_retarget_preserves_hot_set;
    Alcotest.test_case "hh admission beats reject + lru" `Slow
      test_admission_beats_reject;
    Alcotest.test_case "walker = engine under admission" `Slow
      test_admission_walker_engine_agree;
  ]

let props =
  [
    prop_hh_bounds; prop_hh_merge; prop_hh_invariants_under_interleaving;
    prop_cuckoo_churn;
  ]
