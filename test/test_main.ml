let () =
  Alcotest.run "gigaflow"
    [
      ("util", Test_util.suite);
      ("flow", Test_flow.suite);
      Helpers.qsuite "flow:props" Test_flow.props;
      ("classifier", Test_classifier.suite);
      Helpers.qsuite "classifier:props" Test_classifier.props;
      ("pipeline", Test_pipeline.suite);
      Helpers.qsuite "pipeline:props" Test_pipeline.props;
      ("cache", Test_cache.suite);
      Helpers.qsuite "cache:props" Test_cache.props;
      ("core", Test_core.suite);
      Helpers.qsuite "core:props" Test_core.props;
      ("interop", Test_interop.suite);
      ("pipelines", Test_pipelines.suite);
      ("workload", Test_workload.suite);
      ("offload", Test_offload.suite);
      Helpers.qsuite "offload:props" Test_offload.props;
      ("sim", Test_sim.suite);
      Helpers.qsuite "sim:props" Test_sim.props;
      ("telemetry", Test_telemetry.suite);
      Helpers.qsuite "telemetry:props" Test_telemetry.props;
      ("engine", Test_engine.suite);
      ("control", Test_control.suite);
      Helpers.qsuite "engine:props" Test_engine.props;
    ]
