(* Tests for gigaflow.sim (Datapath, Metrics) and gigaflow.nic. *)

module Datapath = Gf_sim.Datapath
module Metrics = Gf_sim.Metrics
module Latency = Gf_nic.Latency
module Resources = Gf_nic.Resources
module Pcie = Gf_nic.Pcie
module Pipebench = Gf_workload.Pipebench
module Ruleset = Gf_workload.Ruleset
module Trace = Gf_workload.Trace
module Catalog = Gf_pipelines.Catalog
module Executor = Gf_pipeline.Executor
module Action = Gf_pipeline.Action

let small_profile =
  {
    Gf_workload.Classbench.acl_profile with
    Gf_workload.Classbench.endpoints = 128;
    subnets = 16;
    services = 32;
  }

let small_workload ?(locality = Ruleset.High) ?(seed = 77) () =
  Pipebench.make ~profile:small_profile ~combos:512 ~unique_flows:2000 ~duration:20.0
    ~info:(Option.get (Catalog.find "PSC"))
    ~locality ~seed ()

let churn_workload ?(locality = Ruleset.Low) ?(seed = 77) () =
  (* A rotating active-flow window over a rule space far larger than the
     caches: the regime where the replacement policy decides the hit rate. *)
  Pipebench.make_churn ~profile:small_profile ~combos:2048 ~unique_flows:8000
    ~active:1024 ~turnover:0.25 ~epochs:20 ~packets_per_epoch:1024
    ~info:(Option.get (Catalog.find "PSC"))
    ~locality ~seed ()

let run cfg w =
  let dp = Datapath.create cfg (Pipebench.pipeline w) in
  let m = Datapath.run dp w.Pipebench.trace in
  (dp, m)

let test_metrics_accounting () =
  let w = small_workload () in
  let _, m = run (Datapath.emc_mf_sw ()) w in
  Alcotest.(check int) "every packet counted"
    (Trace.packet_count w.Pipebench.trace)
    m.Metrics.packets;
  Alcotest.(check int) "hits + sw + slow = packets" m.Metrics.packets
    (m.Metrics.hw_hits + m.Metrics.sw_hits + m.Metrics.slowpaths);
  Alcotest.(check int) "miss count" (Metrics.hw_miss_count m)
    (m.Metrics.sw_hits + m.Metrics.slowpaths);
  Alcotest.(check bool) "latency recorded" true
    (Gf_util.Stats.Acc.count m.Metrics.latency = m.Metrics.packets);
  Alcotest.(check bool) "hit rate sane" true
    (Metrics.hw_hit_rate m >= 0.0 && Metrics.hw_hit_rate m <= 1.0)

let test_metrics_zero_packet_guards () =
  (* Ratios on a fresh/empty run must be well-defined zeros, not NaN. *)
  let m = Metrics.create () in
  List.iter
    (fun (name, v) ->
      Alcotest.(check (float 0.0)) name 0.0 v;
      Alcotest.(check bool) (name ^ " finite") true (Float.is_finite v))
    [
      ("hw_hit_rate", Metrics.hw_hit_rate m);
      ("mean_latency_us", Metrics.mean_latency_us m);
      ("overhead_ratio", Metrics.overhead_ratio m);
    ]

let test_datapath_backends_consistent_decisions () =
  (* Every packet's decision must equal the slowpath decision, whatever the
     cache backend. *)
  let w = small_workload () in
  List.iter
    (fun cfg ->
      let dp = Datapath.create cfg (Pipebench.pipeline w) in
      let pipeline = Datapath.pipeline dp in
      let checked = ref 0 in
      Array.iter
        (fun (pkt : Trace.packet) ->
          let _, terminal, _ =
            Datapath.process dp ~now:pkt.Trace.time pkt.Trace.flow
          in
          if !checked < 3000 then begin
            incr checked;
            match (terminal, Executor.terminal_of pipeline pkt.Trace.flow) with
            | Some t, Ok (t', _) ->
                if not (Action.terminal_equal t t') then
                  Alcotest.failf "decision mismatch"
            | None, _ -> Alcotest.fail "no decision"
            | Some _, Error _ -> Alcotest.fail "slowpath error"
          end)
        w.Pipebench.trace.Trace.packets)
    [ Datapath.emc_mf_sw (); Datapath.emc_gf_sw () ]

let test_gigaflow_beats_megaflow_under_pressure () =
  (* With caches far smaller than the flow population, Gigaflow's sharing
     must win on hit rate (the paper's headline, scaled down). *)
  let w = small_workload () in
  let mf_cfg = Datapath.emc_mf_sw ~mf_capacity:256 () in
  let gf_cfg =
    Datapath.emc_gf_sw ~gf:(Gf_core.Config.v ~tables:4 ~table_capacity:64 ()) ()
  in
  let _, mf = run mf_cfg w in
  let _, gf = run gf_cfg w in
  Alcotest.(check bool)
    (Printf.sprintf "gigaflow %.3f > megaflow %.3f" (Metrics.hw_hit_rate gf)
       (Metrics.hw_hit_rate mf))
    true
    (Metrics.hw_hit_rate gf > Metrics.hw_hit_rate mf)

(* Tentpole acceptance: on a churn trace, LRU eviction must beat the
   historical full-table-rejects behaviour for both the Megaflow and the
   Gigaflow preset.  Idle expiry is effectively disabled so the comparison
   isolates the replacement policy. *)
let test_lru_beats_reject_on_churn () =
  let w = churn_workload () in
  let compare_policies name base =
    let _, mr = run (Datapath.with_policy Gf_cache.Evict.Reject base) w in
    let _, ml = run (Datapath.with_policy Gf_cache.Evict.Lru base) w in
    Alcotest.(check bool)
      (Printf.sprintf "%s: lru %.3f > reject %.3f" name (Metrics.hw_hit_rate ml)
         (Metrics.hw_hit_rate mr))
      true
      (Metrics.hw_hit_rate ml > Metrics.hw_hit_rate mr)
  in
  compare_policies "megaflow" (Datapath.mf_sw ~mf_capacity:256 ~max_idle:1e6 ());
  compare_policies "gigaflow"
    (Datapath.gf_sw
       ~gf:(Gf_core.Config.v ~tables:4 ~table_capacity:64 ())
       ~max_idle:1e6 ())

let test_pressure_eviction_accounting () =
  let w = churn_workload () in
  let base =
    Datapath.gf_sw
      ~gf:(Gf_core.Config.v ~tables:4 ~table_capacity:64 ())
      ~max_idle:1e6 ()
  in
  let lvl m name =
    match Metrics.find_level m name with
    | Some l -> l
    | None -> Alcotest.failf "missing level %s" name
  in
  (* Default (Reject): installs bounce off the full LTM, nothing is evicted
     under pressure — today's counters exactly. *)
  let _, mr = run base w in
  let gf_r = lvl mr "gf" in
  Alcotest.(check int) "reject: no pressure evictions" 0
    mr.Metrics.hw_pressure_evictions;
  Alcotest.(check bool) "reject: rejections counted" true (gf_r.Metrics.rejected > 0);
  (* Per-level override by metrics name: only the LTM switches to LRU. *)
  let _, ml = run (Datapath.with_level_policy ~level:"gf" Gf_cache.Evict.Lru base) w in
  let gf_l = lvl ml "gf" in
  Alcotest.(check bool) "lru: pressure evictions happen" true
    (gf_l.Metrics.pressure_evictions > 0);
  Alcotest.(check int) "hw aggregate = ltm level" ml.Metrics.hw_pressure_evictions
    gf_l.Metrics.pressure_evictions;
  Alcotest.(check int) "sw level untouched" 0
    (lvl ml "sw-mf").Metrics.pressure_evictions;
  Alcotest.(check bool) "occupancy never exceeds capacity" true
    (gf_l.Metrics.occupancy_peak <= 4 * 64)

let test_sw_cache_absorbs_misses () =
  let w = small_workload () in
  let with_sw = Datapath.emc_mf_sw ~mf_capacity:128 () in
  let no_sw = Datapath.without_software with_sw in
  let _, a = run no_sw w in
  let _, b = run with_sw w in
  Alcotest.(check int) "no sw hits when disabled" 0 a.Metrics.sw_hits;
  Alcotest.(check bool) "sw cache absorbs slowpaths" true
    (b.Metrics.slowpaths < a.Metrics.slowpaths)

let test_expiry_keeps_occupancy_bounded () =
  let w = small_workload () in
  let cfg = Datapath.emc_mf_sw ~max_idle:0.5 ~expire_every:0.25 () in
  let dp, m = run cfg w in
  Alcotest.(check bool) "evictions happened" true (m.Metrics.hw_evictions > 0);
  Alcotest.(check bool) "final occupancy below peak" true
    (Datapath.hw_occupancy dp <= m.Metrics.hw_entries_peak)

let test_miss_sink_and_on_packet () =
  let w = small_workload () in
  let dp = Datapath.create (Datapath.emc_gf_sw ()) (Pipebench.pipeline w) in
  let events = ref 0 and miss_cycles = ref 0 in
  let m =
    Datapath.run
      ~on_packet:(fun _ _ _ -> incr events)
      ~miss_sink:(fun ~flow_id:_ ~cycles -> miss_cycles := !miss_cycles + cycles)
      dp w.Pipebench.trace
  in
  Alcotest.(check int) "callback per packet" m.Metrics.packets !events;
  (* Slowpath packets account for all userspace/partition/rulegen cycles
     plus their own software-cache searches; software hits burn search
     cycles outside the sink. *)
  let floor_cycles =
    m.Metrics.cycles_userspace + m.Metrics.cycles_partition + m.Metrics.cycles_rulegen
  in
  Alcotest.(check bool) "miss cycles bounded" true
    (!miss_cycles >= floor_cycles && !miss_cycles <= Metrics.total_cycles m)

let test_latency_model () =
  Alcotest.(check bool) "deployment ordering" true
    (Latency.cache_hit_us Latency.Offload_fpga < Latency.cache_hit_us Latency.Dpdk_host
    && Latency.cache_hit_us Latency.Dpdk_host < Latency.cache_hit_us Latency.Dpdk_arm
    && Latency.cache_hit_us Latency.Dpdk_arm < Latency.cache_hit_us Latency.Kernel_host
    && Latency.cache_hit_us Latency.Kernel_host < Latency.cache_hit_us Latency.Kernel_arm);
  Alcotest.(check (float 1e-9)) "paper's fpga hit" 8.62
    (Latency.cache_hit_us Latency.Offload_fpga);
  let slow1 =
    Latency.slowpath_us ~pipeline_lookups:5 ~tuple_probes:20 ~partition_work:100
      ~rulegen_work:4 ~installs:4
  in
  let slow2 =
    Latency.slowpath_us ~pipeline_lookups:10 ~tuple_probes:40 ~partition_work:400
      ~rulegen_work:4 ~installs:4
  in
  Alcotest.(check bool) "monotone in work" true (slow2 > slow1);
  Alcotest.(check bool) "sw search scales" true
    (Latency.sw_search_us ~work:100 () > Latency.sw_search_us ~work:10 ());
  Alcotest.(check bool) "nm units cheaper" true
    (Latency.sw_search_us ~algo:`Nuevomatch ~work:100 ()
    < Latency.sw_search_us ~algo:`Tss ~work:100 ())

let test_resources_model () =
  let e = Resources.estimate ~tables:4 ~table_capacity:8192 in
  (* Calibrated to the paper's prototype: 47% LUT, 33% FF, 49% BRAM, 38 W. *)
  Alcotest.(check (float 0.5)) "luts" 47.0 e.Resources.luts_pct;
  Alcotest.(check (float 0.5)) "ffs" 33.0 e.Resources.ffs_pct;
  Alcotest.(check (float 0.5)) "bram" 49.0 e.Resources.bram_pct;
  Alcotest.(check (float 0.5)) "power" 38.0 e.Resources.power_w;
  Alcotest.(check bool) "fits budget" true (Resources.fits e);
  let big = Resources.estimate ~tables:8 ~table_capacity:200_000 in
  Alcotest.(check bool) "oversized rejected" false (Resources.fits big)

let test_multicore_distribution () =
  let census = Hashtbl.create 16 in
  for flow = 0 to 999 do
    Hashtbl.replace census flow (100 + (flow mod 7))
  done;
  let one = Gf_sim.Multicore.distribute ~cores:1 census in
  let four = Gf_sim.Multicore.distribute ~cores:4 census in
  Alcotest.(check int) "total conserved" (Gf_sim.Multicore.total_load one)
    (Gf_sim.Multicore.total_load four);
  Alcotest.(check int) "1-core max = total" (Gf_sim.Multicore.total_load one)
    (Gf_sim.Multicore.max_load one);
  let s = Gf_sim.Multicore.speedup ~baseline:one four in
  Alcotest.(check bool) (Printf.sprintf "near-linear speedup (%.2f)" s) true
    (s > 3.0 && s <= 4.2);
  Alcotest.(check bool) "balanced" true (Gf_sim.Multicore.imbalance four < 1.2)

(* ------------------------- parallel replay ------------------------- *)

module Parallel = Gf_sim.Parallel
module Multicore = Gf_sim.Multicore

(* The merged counters that must be identical between replay modes.  Wall
   times and latency means differ (timing), but sample counts must not.
   Includes the per-level breakdown so a mismatch hiding inside one level
   (while aggregates coincide) still fails. *)
let fingerprint (m : Metrics.t) =
  [
    m.Metrics.packets; m.Metrics.hw_hits; m.Metrics.sw_hits; m.Metrics.slowpaths;
    m.Metrics.drops; m.Metrics.hw_installs; m.Metrics.hw_shared;
    m.Metrics.hw_rejected; m.Metrics.hw_evictions; m.Metrics.cycles_userspace;
    m.Metrics.cycles_partition; m.Metrics.cycles_rulegen;
    m.Metrics.cycles_sw_search; m.Metrics.hw_entries_final;
    Gf_util.Stats.Acc.count m.Metrics.latency;
  ]
  @ List.concat_map
      (fun (l : Metrics.level) ->
        [
          l.Metrics.hits; l.Metrics.misses; l.Metrics.installs; l.Metrics.shared;
          l.Metrics.rejected; l.Metrics.evictions; l.Metrics.work;
          l.Metrics.occupancy_final;
        ])
      (Metrics.levels m)

let test_metrics_merge () =
  let mk hits sw lat =
    let m = Metrics.create () in
    m.Metrics.packets <- hits + sw;
    m.Metrics.hw_hits <- hits;
    m.Metrics.sw_hits <- sw;
    m.Metrics.hw_entries_peak <- hits;
    List.iter (Gf_util.Stats.Acc.add m.Metrics.latency) lat;
    m
  in
  let a = mk 3 1 [ 1.0; 2.0; 3.0; 4.0 ] in
  let b = mk 5 2 [ 10.0; 20.0; 30.0; 40.0; 50.0; 60.0; 70.0 ] in
  Metrics.merge ~into:a b;
  Alcotest.(check int) "packets add" 11 a.Metrics.packets;
  Alcotest.(check int) "hw_hits add" 8 a.Metrics.hw_hits;
  Alcotest.(check int) "sw_hits add" 3 a.Metrics.sw_hits;
  Alcotest.(check int) "peaks sum (disjoint caches)" 8 a.Metrics.hw_entries_peak;
  Alcotest.(check int) "src unchanged" 5 b.Metrics.hw_hits;
  let acc = a.Metrics.latency in
  Alcotest.(check int) "latency count" 11 (Gf_util.Stats.Acc.count acc);
  Alcotest.(check (float 1e-9)) "latency total" 290.0 (Gf_util.Stats.Acc.total acc);
  (* Chan's merge must agree exactly with feeding one accumulator. *)
  let flat = Gf_util.Stats.Acc.create () in
  List.iter (Gf_util.Stats.Acc.add flat)
    [ 1.0; 2.0; 3.0; 4.0; 10.0; 20.0; 30.0; 40.0; 50.0; 60.0; 70.0 ];
  Alcotest.(check (float 1e-6)) "merged mean" (Gf_util.Stats.Acc.mean flat)
    (Gf_util.Stats.Acc.mean acc);
  Alcotest.(check (float 1e-6)) "merged variance" (Gf_util.Stats.Acc.variance flat)
    (Gf_util.Stats.Acc.variance acc);
  Alcotest.(check (float 1e-9)) "merged min" 1.0 (Gf_util.Stats.Acc.min acc);
  Alcotest.(check (float 1e-9)) "merged max" 70.0 (Gf_util.Stats.Acc.max acc);
  (* aggregate = left fold of merge into a fresh record *)
  let c = mk 2 0 [ 5.0 ] in
  let agg = Metrics.aggregate [ b; c ] in
  Alcotest.(check int) "aggregate packets" 9 agg.Metrics.packets;
  Alcotest.(check int) "aggregate latency count" 8
    (Gf_util.Stats.Acc.count agg.Metrics.latency)

let test_parallel_shard_partition () =
  let w = small_workload () in
  let trace = w.Pipebench.trace in
  let shards = Parallel.shard ~domains:4 trace in
  Alcotest.(check int) "four shards" 4 (Array.length shards);
  let total =
    Array.fold_left (fun acc s -> acc + Trace.packet_count s) 0 shards
  in
  Alcotest.(check int) "packets conserved" (Trace.packet_count trace) total;
  let owner = Hashtbl.create 256 in
  Array.iteri
    (fun d s ->
      let last_time = ref neg_infinity in
      Array.iter
        (fun (p : Trace.packet) ->
          (match Hashtbl.find_opt owner p.Trace.flow_id with
          | Some d' when d' <> d -> Alcotest.failf "flow %d on shards %d and %d" p.Trace.flow_id d' d
          | _ -> Hashtbl.replace owner p.Trace.flow_id d);
          if p.Trace.time < !last_time then Alcotest.fail "shard not time-ordered";
          last_time := p.Trace.time)
        s.Trace.packets;
      Alcotest.(check int) "unique_flows recounted"
        (let seen = Hashtbl.create 64 in
         Array.iter (fun (p : Trace.packet) -> Hashtbl.replace seen p.Trace.flow_id ()) s.Trace.packets;
         Hashtbl.length seen)
        s.Trace.unique_flows)
    shards;
  Alcotest.(check int) "flows conserved" trace.Trace.unique_flows (Hashtbl.length owner)

let test_parallel_single_domain_matches_datapath () =
  let w = small_workload () in
  let pipeline = Pipebench.pipeline w in
  List.iter
    (fun cfg ->
      let plain =
        Datapath.run (Datapath.create cfg (Gf_pipeline.Pipeline.copy pipeline))
          w.Pipebench.trace
      in
      List.iter
        (fun mode ->
          let r = Parallel.replay ~mode ~domains:1 ~cfg pipeline w.Pipebench.trace in
          Alcotest.(check (list int)) "1-domain replay = plain run"
            (fingerprint plain)
            (fingerprint r.Parallel.merged))
        [ `Domains; `Sequential ])
    [ Datapath.emc_mf_sw (); Datapath.emc_gf_sw () ]

let test_parallel_model_cross_validation () =
  let w = small_workload () in
  let r =
    Parallel.replay ~mode:`Sequential ~domains:4 ~cfg:(Datapath.emc_gf_sw ())
      (Pipebench.pipeline w) w.Pipebench.trace
  in
  let measured = Parallel.measured_loads r in
  let model = Parallel.model_loads r in
  (* Same census, same hash: the static model must predict the measured
     per-domain slowpath loads exactly. *)
  Alcotest.(check (array int)) "model = measurement" model.Multicore.loads
    measured.Multicore.loads;
  Alcotest.(check bool) "some slowpath load" true
    (Multicore.total_load measured > 0)

(* The headline property: real domains change wall-clock, never results.
   For every domain count, running the shards on N domains and running the
   same shards back-to-back on one domain yield identical merged metrics. *)
let prop_parallel_domains_equal_sequential =
  QCheck2.Test.make ~name:"parallel replay: domains = sequential merged metrics"
    ~count:3
    QCheck2.Gen.(pair (0 -- 1000) bool)
    (fun (seed, use_gigaflow) ->
      let w = small_workload ~seed () in
      let pipeline = Pipebench.pipeline w in
      let cfg =
        if use_gigaflow then Datapath.emc_gf_sw () else Datapath.emc_mf_sw ()
      in
      List.for_all
        (fun domains ->
          let par =
            Parallel.replay ~mode:`Domains ~domains ~cfg pipeline w.Pipebench.trace
          in
          let seq =
            Parallel.replay ~mode:`Sequential ~domains ~cfg pipeline
              w.Pipebench.trace
          in
          fingerprint par.Parallel.merged = fingerprint seq.Parallel.merged
          && par.Parallel.merged.Metrics.packets
             = Trace.packet_count w.Pipebench.trace)
        [ 1; 2; 4 ])

(* ---------------------- cache-hierarchy walker ---------------------- *)

module Cache_level = Gf_sim.Cache_level

(* The generic walker must reproduce the hard-coded datapath EXACTLY.
   These fingerprints are captured on the fixed-seed small workload; any
   drift in hit/miss/install/eviction counts, cycle accounting or total
   latency is a behaviour change, not a refactor.  (Recaptured once when
   [Rng.int] switched from modulo to exactly-uniform rejection sampling,
   and again when [Zipf.sample] switched from CDF binary search to
   Walker's alias method — sanctioned stream changes: same distribution,
   different fixed-seed sequence.  The default [Reject]/[Lru] replacement
   policies reproduce these numbers bit-identically.) *)
let test_hierarchy_regression () =
  let check_cfg name cfg expected expected_lat =
    let w = small_workload () in
    let _, m = run cfg w in
    Alcotest.(check (list int)) (name ^ " counters")
      expected
      [
        m.Metrics.packets; m.Metrics.hw_hits; m.Metrics.sw_hits;
        m.Metrics.slowpaths; m.Metrics.drops; m.Metrics.hw_installs;
        m.Metrics.hw_shared; m.Metrics.hw_rejected; m.Metrics.hw_evictions;
        m.Metrics.cycles_userspace; m.Metrics.cycles_partition;
        m.Metrics.cycles_rulegen; m.Metrics.cycles_sw_search;
        m.Metrics.hw_entries_peak; m.Metrics.hw_entries_final;
      ];
    Alcotest.(check (float 1e-6)) (name ^ " total latency") expected_lat
      (Gf_util.Stats.Acc.total m.Metrics.latency)
  in
  check_cfg "emc_mf_sw" (Datapath.emc_mf_sw ())
    [ 10615; 9725; 65; 825; 0; 825; 0; 0; 825; 9469350; 0; 0; 35466750; 825; 0 ]
    102509.357692308;
  check_cfg "emc_gf_sw" (Datapath.emc_gf_sw ())
    [
      10615; 10193; 27; 395; 0; 591; 785; 0; 587; 4305450; 2872440; 1100800;
      13129200; 582; 4;
    ]
    100581.611538461;
  check_cfg "emc_mf_sw short idle"
    (Datapath.emc_mf_sw ~max_idle:0.5 ~expire_every:0.25 ())
    [
      10615; 3864; 5047; 1704; 0; 1704; 0; 0; 1703; 19336650; 0; 0; 74490750;
      139; 1;
    ]
    125345.673076914

(* Satellite: per-level eviction accounting.  The seed dropped EMC and
   software-cache eviction counts on the floor ([ignore]d); now every
   level's sweep is recorded, and the hardware aggregate equals the sum of
   hardware-tier levels. *)
let test_per_level_eviction_accounting () =
  let w = small_workload () in
  let cfg = Datapath.emc_mf_sw ~max_idle:0.5 ~expire_every:0.25 () in
  let _, m = run cfg w in
  let lvl name =
    match Metrics.find_level m name with
    | Some l -> l
    | None -> Alcotest.failf "missing level %s" name
  in
  let nic = lvl "nic-mf" and emc = lvl "emc" and sw = lvl "sw-mf" in
  Alcotest.(check int) "hw aggregate = nic level" m.Metrics.hw_evictions
    nic.Metrics.evictions;
  Alcotest.(check bool) "EMC evictions counted, not ignored" true
    (emc.Metrics.evictions > 0);
  Alcotest.(check bool) "software-cache evictions counted" true
    (sw.Metrics.evictions > 0);
  (* Consultation counts telescope down the hierarchy: every packet hits
     the first level; each deeper level sees exactly the misses above. *)
  Alcotest.(check int) "first level sees all packets" m.Metrics.packets
    (nic.Metrics.hits + nic.Metrics.misses);
  Alcotest.(check int) "emc sees nic misses" nic.Metrics.misses
    (emc.Metrics.hits + emc.Metrics.misses);
  Alcotest.(check int) "sw sees emc misses" emc.Metrics.misses
    (sw.Metrics.hits + sw.Metrics.misses);
  Alcotest.(check int) "sw misses = slowpaths" sw.Metrics.misses
    m.Metrics.slowpaths

(* Satellite: the software cache's longer idle budget is a per-level
   descriptor field (default 4x the hierarchy's), not a magic constant in
   the walker — and a spec-level override wins. *)
let test_per_level_max_idle () =
  let w = small_workload () in
  let budget cfg name =
    let dp = Datapath.create cfg (Pipebench.pipeline w) in
    match
      List.find_opt (fun l -> Cache_level.name l = name) (Datapath.levels dp)
    with
    | Some l -> (Cache_level.descriptor l).Cache_level.max_idle
    | None -> Alcotest.failf "missing level %s" name
  in
  let cfg = Datapath.emc_gf_sw ~max_idle:2.0 () in
  Alcotest.(check (float 1e-9)) "gf takes the hierarchy default" 2.0
    (budget cfg "gf");
  Alcotest.(check (float 1e-9)) "emc takes the hierarchy default" 2.0
    (budget cfg "emc");
  Alcotest.(check (float 1e-9)) "sw wildcard cache defaults to 4x" 8.0
    (budget cfg "sw-mf");
  let overridden =
    {
      cfg with
      Datapath.levels =
        List.map
          (function
            | Cache_level.Sw_megaflow s ->
                Cache_level.Sw_megaflow { s with max_idle = Some 1.5 }
            | s -> s)
          cfg.Datapath.levels;
    }
  in
  Alcotest.(check (float 1e-9)) "spec override wins" 1.5
    (budget overridden "sw-mf")

(* Satellite: cache transparency.  Whatever the hierarchy — including none
   at all on the hardware side — the terminal decision for every packet
   equals the bare slowpath's. *)
let prop_hierarchy_transparent =
  QCheck2.Test.make ~name:"cache hierarchy is decision-transparent" ~count:2
    QCheck2.Gen.(0 -- 1000)
    (fun seed ->
      let w = small_workload ~seed () in
      let reference = Pipebench.pipeline w in
      List.for_all
        (fun name ->
          let cfg = Option.get (Datapath.preset name) in
          let dp = Datapath.create cfg (Gf_pipeline.Pipeline.copy reference) in
          Array.for_all
            (fun (pkt : Trace.packet) ->
              let _, terminal, _ =
                Datapath.process dp ~now:pkt.Trace.time pkt.Trace.flow
              in
              match (terminal, Executor.terminal_of reference pkt.Trace.flow) with
              | Some t, Ok (t', _) -> Action.terminal_equal t t'
              | _, _ -> false)
            w.Pipebench.trace.Trace.packets)
        Datapath.preset_names)

(* Domain replicas of a custom (non-preset) hierarchy must merge to
   sequential-identical metrics, per-level counters included (they are part
   of [fingerprint]). *)
let test_parallel_custom_hierarchy () =
  let w = small_workload () in
  let cfg =
    {
      Datapath.name = "custom_gf_sw";
      levels =
        [
          Cache_level.Gf_ltm
            {
              gf = Gf_core.Config.v ~tables:4 ~table_capacity:512 ();
              max_idle = None;
            };
          Cache_level.Sw_megaflow
            { search = `Tss; capacity = 100_000; max_idle = Some 5.0; evict = None };
        ];
      max_idle = 2.0;
      expire_every = 0.5;
      admission = Gf_offload.Heavy_hitter.Admit_all;
    }
  in
  let pipeline = Pipebench.pipeline w in
  let par = Parallel.replay ~mode:`Domains ~domains:4 ~cfg pipeline w.Pipebench.trace in
  let seq =
    Parallel.replay ~mode:`Sequential ~domains:4 ~cfg pipeline w.Pipebench.trace
  in
  Alcotest.(check (list int)) "domains = sequential, per level"
    (fingerprint seq.Parallel.merged)
    (fingerprint par.Parallel.merged);
  Alcotest.(check (list string)) "replicas preserve level names"
    [ "gf"; "sw-mf" ]
    (List.map
       (fun (l : Metrics.level) -> l.Metrics.level_name)
       (Metrics.levels par.Parallel.merged))

let test_pcie_model () =
  Alcotest.(check (float 1e-9)) "empty batch" 0.0 (Pcie.batch_us ~ops:0);
  Alcotest.(check bool) "batch amortises" true
    (Pcie.batch_us ~ops:10 < 10.0 *. (Pcie.write_entry_us +. 0.6) +. 1e-9)

let suite =
  [
    ("metrics accounting", `Quick, test_metrics_accounting);
    ("metrics zero-packet guards", `Quick, test_metrics_zero_packet_guards);
    ("datapath decisions = slowpath", `Slow, test_datapath_backends_consistent_decisions);
    ("gigaflow beats megaflow under pressure", `Slow, test_gigaflow_beats_megaflow_under_pressure);
    ("lru beats reject on churn", `Quick, test_lru_beats_reject_on_churn);
    ("pressure eviction accounting", `Quick, test_pressure_eviction_accounting);
    ("software cache absorbs misses", `Quick, test_sw_cache_absorbs_misses);
    ("expiry bounds occupancy", `Quick, test_expiry_keeps_occupancy_bounded);
    ("run callbacks", `Quick, test_miss_sink_and_on_packet);
    ("latency model", `Quick, test_latency_model);
    ("resources model", `Quick, test_resources_model);
    ("multicore distribution", `Quick, test_multicore_distribution);
    ("metrics merge", `Quick, test_metrics_merge);
    ("parallel shard partition", `Quick, test_parallel_shard_partition);
    ("parallel 1-domain = plain datapath", `Slow, test_parallel_single_domain_matches_datapath);
    ("parallel model cross-validation", `Quick, test_parallel_model_cross_validation);
    ("hierarchy walker = pre-refactor datapath", `Quick, test_hierarchy_regression);
    ("per-level eviction accounting", `Quick, test_per_level_eviction_accounting);
    ("per-level idle budgets", `Quick, test_per_level_max_idle);
    ("parallel custom hierarchy", `Slow, test_parallel_custom_hierarchy);
    ("pcie model", `Quick, test_pcie_model);
  ]

let props = [ prop_parallel_domains_equal_sequential; prop_hierarchy_transparent ]
