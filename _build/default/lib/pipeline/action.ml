type terminal = Output of int | Drop | Controller

type control = Goto of int | Terminal of terminal

type t = { set_fields : (Gf_flow.Field.t * int) list; control : control }

let goto ?(set_fields = []) table = { set_fields; control = Goto table }

let output ?(set_fields = []) port = { set_fields; control = Terminal (Output port) }

let drop ?(set_fields = []) () = { set_fields; control = Terminal Drop }

let controller () = { set_fields = []; control = Terminal Controller }

let apply_sets t flow =
  List.fold_left (fun f (field, v) -> Gf_flow.Flow.set f field v) flow t.set_fields

let terminal_equal a b =
  match (a, b) with
  | Output p, Output q -> p = q
  | Drop, Drop -> true
  | Controller, Controller -> true
  | (Output _ | Drop | Controller), _ -> false

let equal a b =
  a.set_fields = b.set_fields
  &&
  match (a.control, b.control) with
  | Goto x, Goto y -> x = y
  | Terminal x, Terminal y -> terminal_equal x y
  | (Goto _ | Terminal _), _ -> false

let pp_terminal fmt = function
  | Output p -> Format.fprintf fmt "output:%d" p
  | Drop -> Format.pp_print_string fmt "drop"
  | Controller -> Format.pp_print_string fmt "controller"

let pp fmt t =
  List.iter
    (fun (f, v) -> Format.fprintf fmt "set %s=%#x; " (Gf_flow.Field.name f) v)
    t.set_fields;
  match t.control with
  | Goto table -> Format.fprintf fmt "goto:%d" table
  | Terminal term -> pp_terminal fmt term
