(** ovs-ofctl-style textual flow syntax.

    Parses and prints rules in the familiar `ovs-ofctl add-flow` dialect so
    pipelines can be loaded from (and dumped to) plain text:

    {v
    table=4,priority=100,ip,nw_dst=10.1.2.0/24,actions=mod_dl_dst:02:00:00:00:0f:fe,goto_table:5
    table=5,priority=90,tcp,tp_dst=443,actions=output:7
    table=5,priority=0,actions=drop
    v}

    Supported match keys: [in_port], [dl_src], [dl_dst], [dl_type] (also the
    [ip], [tcp], [udp], [icmp], [arp] shorthands), [dl_vlan], [nw_src],
    [nw_dst] (with optional [/len]), [nw_proto], [tp_src], [tp_dst].
    Supported actions: [output:N], [drop], [controller],
    [goto_table:N]/[resubmit(,N)], [mod_dl_src:MAC], [mod_dl_dst:MAC],
    [mod_nw_src:IP], [mod_nw_dst:IP], [mod_tp_src:N], [mod_tp_dst:N],
    [mod_vlan_vid:N]. *)

type flow_line = {
  table : int;  (** Defaults to 0 when absent. *)
  priority : int;  (** Defaults to 32768, as in OpenFlow. *)
  fmatch : Gf_flow.Fmatch.t;
  action : Action.t;
}

val parse_flow : string -> (flow_line, string) result
(** Parse one flow line.  Unknown keys or malformed values produce a
    descriptive [Error]. *)

val parse_flows : string -> (flow_line list, string) result
(** Parse a whole add-flows file: one flow per line; blank lines and
    [#]-comments are skipped.  The error names the offending line number. *)

val print_flow : flow_line -> string
(** Render in the same dialect; [parse_flow (print_flow f)] round-trips to
    an equivalent flow. *)

val load_into : Pipeline.t -> string -> (int, string) result
(** Parse a flow file and add every rule to the pipeline (fresh rule ids).
    Returns the number of rules added.  Fails without modifying anything if
    any line is malformed or names an unknown table. *)

val dump_pipeline : Pipeline.t -> string
(** Dump every rule of every table, one flow line each (akin to
    [ovs-ofctl dump-flows]). *)
