type t = { id : int; priority : int; fmatch : Gf_flow.Fmatch.t; action : Action.t }

let v ~id ~priority ~fmatch ~action = { id; priority; fmatch; action }

let matches t flow = Gf_flow.Fmatch.matches t.fmatch flow

let equal a b =
  a.id = b.id && a.priority = b.priority
  && Gf_flow.Fmatch.equal a.fmatch b.fmatch
  && Action.equal a.action b.action

let same_behaviour a b =
  a.priority = b.priority
  && Gf_flow.Fmatch.equal a.fmatch b.fmatch
  && Action.equal a.action b.action

let pp fmt t =
  Format.fprintf fmt "[#%d p=%d %a -> %a]" t.id t.priority Gf_flow.Fmatch.pp t.fmatch
    Action.pp t.action
