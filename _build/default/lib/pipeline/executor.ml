type error = Loop_limit of int | Bad_goto of int

type prefix = {
  prefix_steps : Traversal.step array;
  status :
    [ `Terminal of Action.terminal | `More of int | `Stuck of int ];
}

let default_max_steps = 256

let trace ?start ~max_steps pipeline input =
  let rec go table_id flow steps_rev count =
    if count >= max_steps then
      { prefix_steps = Array.of_list (List.rev steps_rev); status = `More table_id }
    else
      match Pipeline.table_opt pipeline table_id with
      | None ->
          { prefix_steps = Array.of_list (List.rev steps_rev); status = `Stuck table_id }
      | Some table ->
          let result = Oftable.lookup table flow in
          let outcome, action =
            match result.Oftable.outcome with
            | `Hit rule -> (`Rule rule, rule.Ofrule.action)
            | `Miss -> (`Table_miss, Oftable.miss_action table)
          in
          let flow_out = Action.apply_sets action flow in
          let step =
            {
              Traversal.table_id;
              outcome;
              action;
              wildcard = result.Oftable.consulted;
              flow_in = flow;
              flow_out;
              probes = result.Oftable.probes;
            }
          in
          let steps_rev = step :: steps_rev in
          (match action.Action.control with
          | Action.Goto next -> go next flow_out steps_rev (count + 1)
          | Action.Terminal terminal ->
              {
                prefix_steps = Array.of_list (List.rev steps_rev);
                status = `Terminal terminal;
              })
  in
  go (Option.value ~default:(Pipeline.entry pipeline) start) input [] 0

let execute ?(max_steps = default_max_steps) ?start pipeline input =
  let prefix = trace ?start ~max_steps pipeline input in
  match prefix.status with
  | `Terminal terminal ->
      let steps = prefix.prefix_steps in
      let output = steps.(Array.length steps - 1).Traversal.flow_out in
      Ok { Traversal.input; steps; terminal; output }
  | `More _ -> Error (Loop_limit max_steps)
  | `Stuck id -> Error (Bad_goto id)

let terminal_of ?max_steps pipeline flow =
  match execute ?max_steps pipeline flow with
  | Ok t -> Ok (t.Traversal.terminal, t.Traversal.output)
  | Error e -> Error e

let pp_error fmt = function
  | Loop_limit n -> Format.fprintf fmt "loop limit exceeded (%d steps)" n
  | Bad_goto id -> Format.fprintf fmt "goto unknown table %d" id
