(** Declarative pipeline specifications.

    The five real-world pipelines of the paper's Table 1 are described as
    data: a list of tables (with the fields each is configured to match) and
    a list of {b traversal templates} — the unique table-lookup sequences the
    pipeline exhibits, with the subset of fields each hop matches.  The
    workload generator (Pipebench) instantiates rules along these templates;
    {!instantiate} builds the executable pipeline skeleton. *)

type table_spec = {
  table_id : int;
  table_name : string;
  fields : Gf_flow.Field.t list;
      (** All fields this table may match on (any template). *)
}

type hop = {
  table : int;
  hop_fields : Gf_flow.Field.t list;
      (** Fields matched at this hop; must be a subset of the table's
          declared fields. *)
}

type traversal_spec = { hops : hop list }
(** Table ids along a template must be strictly increasing (feed-forward),
    which guarantees termination; the final hop's rules carry the terminal
    action. *)

type spec = {
  spec_name : string;
  entry_table : int;
  tables : table_spec list;
  traversals : traversal_spec list;
}

val validate : spec -> (unit, string) result
(** Checks id uniqueness, entry presence, hop/table consistency and
    feed-forward ordering. *)

val instantiate : spec -> Pipeline.t
(** Build the pipeline skeleton: every declared table, no rules.  Each
    table's miss action is goto-next-declared-table; the last table's miss
    drops.  Raises [Invalid_argument] if [validate] fails. *)

val table_fields : spec -> int -> Gf_flow.Field.Set.t
(** Declared field set of a table.  Raises [Not_found]. *)

val unique_paths : spec -> int list list
(** The distinct table-id sequences among the templates (the "Traversals"
    column of the paper's Table 1). *)
