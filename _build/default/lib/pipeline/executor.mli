(** Slowpath execution: run a flow through the pipeline and record the
    traversal (paper section 4.2.1).

    The executor follows goto control flow from the entry table, applying
    set-field actions, until a terminal action (output/drop/controller) is
    reached.  Loops are cut off at [max_steps] (vSwitch pipelines may contain
    loops in general; the paper unrolls control flow into linear traversals,
    which is exactly what tracing does). *)

type error =
  | Loop_limit of int  (** more than [max_steps] lookups *)
  | Bad_goto of int  (** goto to a non-existent table id *)

type prefix = {
  prefix_steps : Traversal.step array;
  status :
    [ `Terminal of Action.terminal  (** pipeline finished within the budget *)
    | `More of int  (** budget exhausted; next table would be this id *)
    | `Stuck of int  (** goto to a non-existent table id *) ];
}

val trace :
  ?start:int -> max_steps:int -> Pipeline.t -> Gf_flow.Flow.t -> prefix
(** Execute at most [max_steps] lookups and return the partial trace.  This
    is the primitive behind {!execute} and behind Gigaflow's sub-traversal
    revalidation, which re-runs only the [length] steps a cached rule
    covers. *)

val execute :
  ?max_steps:int ->
  ?start:int ->
  Pipeline.t ->
  Gf_flow.Flow.t ->
  (Traversal.t, error) result
(** [max_steps] defaults to 256 (the OVS resubmit depth cited in the paper).
    [start] defaults to the pipeline entry table; revalidation uses it to
    re-execute a sub-traversal from its parent table (paper section 4.3.1). *)

val terminal_of :
  ?max_steps:int ->
  Pipeline.t ->
  Gf_flow.Flow.t ->
  (Action.terminal * Gf_flow.Flow.t, error) result
(** Like {!execute} but returns only the decision — what a cache hit must
    reproduce.  Used pervasively by consistency tests. *)

val pp_error : Format.formatter -> error -> unit
