module Field = Gf_flow.Field

type table_spec = { table_id : int; table_name : string; fields : Field.t list }

type hop = { table : int; hop_fields : Field.t list }

type traversal_spec = { hops : hop list }

type spec = {
  spec_name : string;
  entry_table : int;
  tables : table_spec list;
  traversals : traversal_spec list;
}

let validate spec =
  let ( let* ) = Result.bind in
  let table_ids = List.map (fun t -> t.table_id) spec.tables in
  let sorted = List.sort_uniq compare table_ids in
  let* () =
    if List.length sorted <> List.length table_ids then Error "duplicate table ids"
    else Ok ()
  in
  let* () =
    if List.mem spec.entry_table table_ids then Ok ()
    else Error "entry table not declared"
  in
  let find_table id = List.find_opt (fun t -> t.table_id = id) spec.tables in
  let check_traversal i tr =
    let* () = if tr.hops = [] then Error (Printf.sprintf "traversal %d empty" i) else Ok () in
    let rec check prev = function
      | [] -> Ok ()
      | hop :: rest -> (
          match find_table hop.table with
          | None -> Error (Printf.sprintf "traversal %d: unknown table %d" i hop.table)
          | Some tspec ->
              if hop.table <= prev then
                Error (Printf.sprintf "traversal %d: tables not increasing at %d" i hop.table)
              else if
                List.exists (fun f -> not (List.mem f tspec.fields)) hop.hop_fields
              then
                Error
                  (Printf.sprintf "traversal %d: hop fields exceed table %d fields" i
                     hop.table)
              else check hop.table rest)
    in
    check min_int tr.hops
  in
  let rec check_all i = function
    | [] -> Ok ()
    | tr :: rest ->
        let* () = check_traversal i tr in
        check_all (i + 1) rest
  in
  check_all 0 spec.traversals

let instantiate spec =
  (match validate spec with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Builder.instantiate: " ^ msg));
  let ordered = List.sort (fun a b -> compare a.table_id b.table_id) spec.tables in
  let rec build = function
    | [] -> []
    | [ last ] ->
        [
          Oftable.create ~id:last.table_id ~name:last.table_name
            ~match_fields:(Field.Set.of_list last.fields)
            ~miss:(Action.drop ());
        ]
    | t :: (next :: _ as rest) ->
        Oftable.create ~id:t.table_id ~name:t.table_name
          ~match_fields:(Field.Set.of_list t.fields)
          ~miss:(Action.goto next.table_id)
        :: build rest
  in
  Pipeline.create ~name:spec.spec_name ~entry:spec.entry_table (build ordered)

let table_fields spec id =
  match List.find_opt (fun t -> t.table_id = id) spec.tables with
  | Some t -> Field.Set.of_list t.fields
  | None -> raise Not_found

let unique_paths spec =
  spec.traversals
  |> List.map (fun tr -> List.map (fun h -> h.table) tr.hops)
  |> List.sort_uniq compare
