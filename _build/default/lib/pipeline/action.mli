(** OpenFlow-style actions attached to vSwitch pipeline rules.

    A rule carries a list of header modifications plus a control decision:
    continue to another table (goto), or terminate the traversal with an
    output port or a drop.  The same action vocabulary is reused by cache
    entries (Megaflow and Gigaflow LTM), where the modifications are the
    "commit" computed by rule generation (paper section 4.2.3). *)

type terminal =
  | Output of int  (** forward to (virtual) port *)
  | Drop
  | Controller     (** punt to the control plane; treated as a slowpath-only
                       decision and never cached *)

type control =
  | Goto of int        (** resubmit to the vSwitch table with this id *)
  | Terminal of terminal

type t = {
  set_fields : (Gf_flow.Field.t * int) list;
      (** header rewrites, applied left to right *)
  control : control;
}

val goto : ?set_fields:(Gf_flow.Field.t * int) list -> int -> t
val output : ?set_fields:(Gf_flow.Field.t * int) list -> int -> t
val drop : ?set_fields:(Gf_flow.Field.t * int) list -> unit -> t
val controller : unit -> t

val apply_sets : t -> Gf_flow.Flow.t -> Gf_flow.Flow.t
(** Apply only the header rewrites. *)

val terminal_equal : terminal -> terminal -> bool
val equal : t -> t -> bool

val pp_terminal : Format.formatter -> terminal -> unit
val pp : Format.formatter -> t -> unit
