module Field = Gf_flow.Field
module Flow = Gf_flow.Flow
module Mask = Gf_flow.Mask

type step = {
  table_id : int;
  outcome : [ `Rule of Ofrule.t | `Table_miss ];
  action : Action.t;
  wildcard : Mask.t;
  flow_in : Flow.t;
  flow_out : Flow.t;
  probes : int;
}

type t = {
  input : Flow.t;
  steps : step array;
  terminal : Action.terminal;
  output : Flow.t;
}

let length t = Array.length t.steps

let path t = Array.to_list (Array.map (fun s -> s.table_id) t.steps)

let path_signature t =
  String.concat ">" (List.map string_of_int (path t))

let step_fields s = Mask.fields s.wildcard

(* Re-base consulted wildcards onto the flow entering step [first]: a bit of
   field [f] consulted at step [k] constrains the segment-entry flow only if
   no action in steps [first..k-1] overwrote [f].  Fields are overwritten
   atomically (set-field replaces the whole field), so per-field tracking is
   exact. *)
let wildcard_of_steps steps ~first ~last =
  assert (first >= 0 && last < Array.length steps && first <= last);
  let overwritten = ref Field.Set.empty in
  let acc = ref Mask.empty in
  for k = first to last do
    let s = steps.(k) in
    let effective =
      Field.Set.fold (fun f m -> Mask.set m f 0) !overwritten s.wildcard
    in
    acc := Mask.union !acc effective;
    List.iter
      (fun (f, _) -> overwritten := Field.Set.add f !overwritten)
      s.action.Action.set_fields
  done;
  !acc

let segment_wildcard t ~first ~last = wildcard_of_steps t.steps ~first ~last

let megaflow_wildcard t = segment_wildcard t ~first:0 ~last:(Array.length t.steps - 1)

(* The commit is the composition of the segment's actual set-field actions
   (last writer per field wins), not the before/after flow diff: a rule may
   set a field to the value the parent flow already carried, and the rewrite
   must still be replayed for other packets matching the cached entry. *)
let commit_of_steps steps ~first ~last =
  assert (first >= 0 && last < Array.length steps && first <= last);
  let written = Array.make Field.count None in
  for k = first to last do
    List.iter
      (fun (f, v) -> written.(Field.index f) <- Some v)
      steps.(k).action.Action.set_fields
  done;
  let acc = ref [] in
  for i = Field.count - 1 downto 0 do
    match written.(i) with
    | Some v -> acc := (Field.of_index i, v) :: !acc
    | None -> ()
  done;
  !acc

let segment_commit t ~first ~last = commit_of_steps t.steps ~first ~last

let pp fmt t =
  Format.fprintf fmt "@[<v>traversal (%d steps) input %a@," (Array.length t.steps)
    Flow.pp t.input;
  Array.iter
    (fun s ->
      Format.fprintf fmt "  T%d %s -> %a@," s.table_id
        (match s.outcome with
        | `Rule r -> Printf.sprintf "rule#%d" r.Ofrule.id
        | `Table_miss -> "miss")
        Action.pp s.action)
    t.steps;
  Format.fprintf fmt "  terminal: %a@]" Action.pp_terminal t.terminal
