(** A single vSwitch pipeline rule: priority, ternary match, action.

    Rules live inside an {!Oftable}; ids are unique within a pipeline so
    traversals and revalidation can refer to the exact rule matched. *)

type t = private {
  id : int;
  priority : int;
  fmatch : Gf_flow.Fmatch.t;
  action : Action.t;
}

val v : id:int -> priority:int -> fmatch:Gf_flow.Fmatch.t -> action:Action.t -> t

val matches : t -> Gf_flow.Flow.t -> bool

val equal : t -> t -> bool
(** Structural equality (including id). *)

val same_behaviour : t -> t -> bool
(** Equality ignoring id: same priority, match and action.  Used by
    revalidation to decide whether a changed table still treats a flow
    identically. *)

val pp : Format.formatter -> t -> unit
