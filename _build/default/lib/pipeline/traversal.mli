(** A traversal: the complete trace of one flow through the vSwitch pipeline.

    This is the paper's [<T, F, W>] vector (Fig. 5b): the sequence of tables
    looked up, the flow state before/after each lookup, and the wildcard of
    header bits each lookup consulted.  Traversals are produced by
    {!Executor} and consumed by the Megaflow cache (collapse to one rule) and
    by Gigaflow (partition into sub-traversals). *)

type step = {
  table_id : int;
  outcome : [ `Rule of Ofrule.t | `Table_miss ];
      (** Which rule matched, or the table's default (miss) path. *)
  action : Action.t;  (** The action that was applied at this step. *)
  wildcard : Gf_flow.Mask.t;
      (** Raw consulted bits of the {e current} flow state at lookup time.
          Rule generation re-bases these onto a segment's entry flow by
          discounting fields overwritten earlier in the segment. *)
  flow_in : Gf_flow.Flow.t;
  flow_out : Gf_flow.Flow.t;
  probes : int;  (** TSS tuples probed (classifier cost model input). *)
}

type t = {
  input : Gf_flow.Flow.t;
  steps : step array;  (** Non-empty. *)
  terminal : Action.terminal;
  output : Gf_flow.Flow.t;  (** Flow state after the last step. *)
}

val length : t -> int
(** Number of table lookups ([N] in the paper). *)

val path : t -> int list
(** The table-id sequence; two traversals with equal paths are the same
    "unique traversal" in the sense of the paper's Table 1. *)

val path_signature : t -> string
(** Compact string form of [path], usable as a hashtable key. *)

val step_fields : step -> Gf_flow.Field.Set.t
(** Fields with at least one consulted bit in this step. *)

val megaflow_wildcard : t -> Gf_flow.Mask.t
(** The union of all step wildcards re-based onto the input flow: bits of a
    field consulted after the field was overwritten by an earlier action do
    not constrain the input and are excluded.  This is the wildcard of the
    single-rule (Megaflow) collapse of the traversal. *)

val segment_wildcard : t -> first:int -> last:int -> Gf_flow.Mask.t
(** Same re-basing restricted to steps [first..last] (inclusive), relative to
    the flow entering step [first].  [megaflow_wildcard t] equals
    [segment_wildcard t ~first:0 ~last:(length t - 1)]. *)

val wildcard_of_steps : step array -> first:int -> last:int -> Gf_flow.Mask.t
(** {!segment_wildcard} on a bare step array (used by revalidation, which
    re-traces only a prefix and has no complete traversal). *)

val commit_of_steps : step array -> first:int -> last:int -> (Gf_flow.Field.t * int) list
(** {!segment_commit} on a bare step array. *)

val segment_commit : t -> first:int -> last:int -> (Gf_flow.Field.t * int) list
(** The paper's "commit" (section 4.2.3): the header rewrites a cache entry
    must replay for steps [first..last].  Computed as the composition of the
    segment's actual set-field actions (last writer per field wins) rather
    than a before/after flow diff, so rewrites to already-held values are
    preserved for other packets matching the entry.  Listed in field-index
    order. *)

val pp : Format.formatter -> t -> unit
