lib/pipeline/traversal.mli: Action Format Gf_flow Ofrule
