lib/pipeline/pipeline.mli: Format Ofrule Oftable
