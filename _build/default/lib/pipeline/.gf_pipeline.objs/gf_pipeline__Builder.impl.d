lib/pipeline/builder.ml: Action Gf_flow List Oftable Pipeline Printf Result
