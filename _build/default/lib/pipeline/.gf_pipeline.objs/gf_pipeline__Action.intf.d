lib/pipeline/action.mli: Format Gf_flow
