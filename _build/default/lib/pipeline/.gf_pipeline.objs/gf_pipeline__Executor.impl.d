lib/pipeline/executor.ml: Action Array Format List Ofrule Oftable Option Pipeline Traversal
