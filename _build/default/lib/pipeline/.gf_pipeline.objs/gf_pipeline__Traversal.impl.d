lib/pipeline/traversal.ml: Action Array Format Gf_flow List Ofrule Printf String
