lib/pipeline/ofrule.mli: Action Format Gf_flow
