lib/pipeline/ofp_text.ml: Action Buffer Gf_flow Gf_util List Ofrule Oftable Pipeline Printf Result String
