lib/pipeline/builder.mli: Gf_flow Pipeline
