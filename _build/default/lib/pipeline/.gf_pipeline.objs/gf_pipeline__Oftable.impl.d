lib/pipeline/oftable.ml: Action Array Format Gf_flow Gf_util Hashtbl List Ofrule Option Printf
