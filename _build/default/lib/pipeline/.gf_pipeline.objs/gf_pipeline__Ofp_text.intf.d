lib/pipeline/ofp_text.mli: Action Gf_flow Pipeline
