lib/pipeline/oftable.mli: Action Format Gf_flow Ofrule
