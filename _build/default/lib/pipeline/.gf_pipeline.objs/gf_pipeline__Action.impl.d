lib/pipeline/action.ml: Format Gf_flow List
