lib/pipeline/executor.mli: Action Format Gf_flow Pipeline Traversal
