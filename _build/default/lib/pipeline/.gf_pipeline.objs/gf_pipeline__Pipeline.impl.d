lib/pipeline/pipeline.ml: Format Hashtbl List Oftable Printf
