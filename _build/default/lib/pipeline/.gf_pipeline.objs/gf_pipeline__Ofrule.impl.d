lib/pipeline/ofrule.ml: Action Format Gf_flow
