module Field = Gf_flow.Field
module Fmatch = Gf_flow.Fmatch
module Headers = Gf_flow.Headers

type flow_line = {
  table : int;
  priority : int;
  fmatch : Fmatch.t;
  action : Action.t;
}

let ( let* ) = Result.bind

let int_of ~what s =
  match int_of_string_opt s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "invalid %s: %S" what s)

let mac_of ~what s =
  match Headers.mac s with
  | v -> Ok v
  | exception Invalid_argument _ -> Error (Printf.sprintf "invalid %s: %S" what s)

let ip_prefix_of ~what s =
  match String.split_on_char '/' s with
  | [ ip ] -> (
      match Headers.ipv4 ip with
      | v -> Ok (v, 32)
      | exception Invalid_argument _ -> Error (Printf.sprintf "invalid %s: %S" what s))
  | [ ip; len ] -> (
      match (Headers.ipv4 ip, int_of_string_opt len) with
      | v, Some l when l >= 0 && l <= 32 -> Ok (v, l)
      | _, (Some _ | None) ->
          Error (Printf.sprintf "invalid prefix length in %s: %S" what s)
      | exception Invalid_argument _ ->
          Error (Printf.sprintf "invalid %s: %S" what s))
  | _ -> Error (Printf.sprintf "invalid %s: %S" what s)

(* Split "a,b(c,d),e" on top-level commas only (resubmit(,N) has one). *)
let split_top_commas s =
  let parts = ref [] and buf = Buffer.create 16 and depth = ref 0 in
  String.iter
    (fun c ->
      match c with
      | '(' ->
          incr depth;
          Buffer.add_char buf c
      | ')' ->
          decr depth;
          Buffer.add_char buf c
      | ',' when !depth = 0 ->
          parts := Buffer.contents buf :: !parts;
          Buffer.clear buf
      | c -> Buffer.add_char buf c)
    s;
  parts := Buffer.contents buf :: !parts;
  List.rev_map String.trim !parts |> List.rev |> List.filter (fun p -> p <> "")

let parse_one_action token =
  let prefixed prefix =
    let n = String.length prefix in
    if String.length token > n && String.sub token 0 n = prefix then
      Some (String.sub token n (String.length token - n))
    else None
  in
  match String.lowercase_ascii token with
  | "drop" -> Ok `Drop
  | "controller" -> Ok `Controller
  | _ -> (
      match prefixed "output:" with
      | Some port ->
          let* p = int_of ~what:"output port" port in
          Ok (`Output p)
      | None -> (
          match prefixed "goto_table:" with
          | Some t ->
              let* t = int_of ~what:"goto table" t in
              Ok (`Goto t)
          | None -> (
              match prefixed "resubmit(," with
              | Some rest when String.length rest > 0 && rest.[String.length rest - 1] = ')'
                ->
                  let* t =
                    int_of ~what:"resubmit table"
                      (String.sub rest 0 (String.length rest - 1))
                  in
                  Ok (`Goto t)
              | Some _ | None -> (
                  let mods =
                    [
                      ("mod_dl_src:", Field.Eth_src, `Mac);
                      ("mod_dl_dst:", Field.Eth_dst, `Mac);
                      ("mod_nw_src:", Field.Ip_src, `Ip);
                      ("mod_nw_dst:", Field.Ip_dst, `Ip);
                      ("mod_tp_src:", Field.Tp_src, `Int);
                      ("mod_tp_dst:", Field.Tp_dst, `Int);
                      ("mod_vlan_vid:", Field.Vlan, `Int);
                    ]
                  in
                  let rec try_mods = function
                    | [] -> Error (Printf.sprintf "unknown action: %S" token)
                    | (prefix, field, kind) :: rest -> (
                        match prefixed prefix with
                        | None -> try_mods rest
                        | Some value ->
                            let* v =
                              match kind with
                              | `Mac -> mac_of ~what:prefix value
                              | `Ip -> (
                                  match Headers.ipv4 value with
                                  | v -> Ok v
                                  | exception Invalid_argument _ ->
                                      Error (Printf.sprintf "invalid ip in %S" token))
                              | `Int -> int_of ~what:prefix value
                            in
                            Ok (`Set (field, v)))
                  in
                  try_mods mods))))

let parse_actions s =
  let tokens = split_top_commas s in
  if tokens = [] then Error "empty actions"
  else begin
    let* parsed =
      List.fold_left
        (fun acc token ->
          let* acc = acc in
          let* a = parse_one_action token in
          Ok (a :: acc))
        (Ok []) tokens
    in
    let parsed = List.rev parsed in
    let set_fields =
      List.filter_map (function `Set (f, v) -> Some (f, v) | _ -> None) parsed
    in
    let controls =
      List.filter_map
        (function
          | `Goto t -> Some (Action.Goto t)
          | `Output p -> Some (Action.Terminal (Action.Output p))
          | `Drop -> Some (Action.Terminal Action.Drop)
          | `Controller -> Some (Action.Terminal Action.Controller)
          | `Set _ -> None)
        parsed
    in
    match controls with
    | [ control ] -> Ok { Action.set_fields; control }
    | [] -> Error "actions need exactly one of output/drop/controller/goto_table"
    | _ -> Error "multiple forwarding decisions in one action list"
  end

let parse_match_key fmatch key value =
  let exact field v = Ok (Fmatch.with_prefix fmatch field ~value:v ~len:(Field.width field)) in
  match key with
  | "in_port" ->
      let* v = int_of ~what:"in_port" value in
      exact Field.In_port v
  | "dl_src" ->
      let* v = mac_of ~what:"dl_src" value in
      exact Field.Eth_src v
  | "dl_dst" ->
      let* v = mac_of ~what:"dl_dst" value in
      exact Field.Eth_dst v
  | "dl_type" ->
      let* v = int_of ~what:"dl_type" value in
      exact Field.Eth_type v
  | "dl_vlan" ->
      let* v = int_of ~what:"dl_vlan" value in
      exact Field.Vlan v
  | "nw_src" ->
      let* v, len = ip_prefix_of ~what:"nw_src" value in
      Ok (Fmatch.with_prefix fmatch Field.Ip_src ~value:v ~len)
  | "nw_dst" ->
      let* v, len = ip_prefix_of ~what:"nw_dst" value in
      Ok (Fmatch.with_prefix fmatch Field.Ip_dst ~value:v ~len)
  | "nw_proto" ->
      let* v = int_of ~what:"nw_proto" value in
      exact Field.Ip_proto v
  | "tp_src" ->
      let* v = int_of ~what:"tp_src" value in
      exact Field.Tp_src v
  | "tp_dst" ->
      let* v = int_of ~what:"tp_dst" value in
      exact Field.Tp_dst v
  | _ -> Error (Printf.sprintf "unknown match key: %S" key)

let parse_shorthand fmatch token =
  let eth ty = Ok (Fmatch.with_prefix fmatch Field.Eth_type ~value:ty ~len:16) in
  let ip_proto p =
    let* fm = eth Headers.ethertype_ipv4 in
    Ok (Fmatch.with_prefix fm Field.Ip_proto ~value:p ~len:8)
  in
  match token with
  | "ip" -> eth Headers.ethertype_ipv4
  | "arp" -> eth Headers.ethertype_arp
  | "tcp" -> ip_proto Headers.proto_tcp
  | "udp" -> ip_proto Headers.proto_udp
  | "icmp" -> ip_proto Headers.proto_icmp
  | _ -> Error (Printf.sprintf "unknown match shorthand: %S" token)

let parse_flow line =
  (* Separate actions=... (everything after it, commas included) from the
     match part. *)
  let line = String.trim line in
  let marker = "actions=" in
  let rec find_marker i =
    if i + String.length marker > String.length line then None
    else if String.sub line i (String.length marker) = marker then Some i
    else find_marker (i + 1)
  in
  match find_marker 0 with
  | None -> Error "missing actions="
  | Some i ->
      let match_part = String.sub line 0 i in
      let actions_part =
        String.sub line (i + String.length marker)
          (String.length line - i - String.length marker)
      in
      let* action = parse_actions actions_part in
      let tokens =
        String.split_on_char ',' match_part
        |> List.map String.trim
        |> List.filter (fun t -> t <> "")
      in
      let* table, priority, fmatch =
        List.fold_left
          (fun acc token ->
            let* table, priority, fmatch = acc in
            match String.index_opt token '=' with
            | None ->
                let* fmatch = parse_shorthand fmatch token in
                Ok (table, priority, fmatch)
            | Some eq -> (
                let key = String.sub token 0 eq in
                let value = String.sub token (eq + 1) (String.length token - eq - 1) in
                match key with
                | "table" ->
                    let* t = int_of ~what:"table" value in
                    Ok (t, priority, fmatch)
                | "priority" ->
                    let* p = int_of ~what:"priority" value in
                    Ok (table, p, fmatch)
                | _ ->
                    let* fmatch = parse_match_key fmatch key value in
                    Ok (table, priority, fmatch)))
          (Ok (0, 32768, Fmatch.any))
          tokens
      in
      Ok { table; priority; fmatch; action }

let parse_flows text =
  let lines = String.split_on_char '\n' text in
  let rec go n acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        let trimmed = String.trim line in
        if trimmed = "" || trimmed.[0] = '#' then go (n + 1) acc rest
        else (
          match parse_flow trimmed with
          | Ok flow -> go (n + 1) (flow :: acc) rest
          | Error e -> Error (Printf.sprintf "line %d: %s" n e))
  in
  go 1 [] lines

let print_match fmatch =
  let pattern = Fmatch.pattern fmatch and mask = Fmatch.mask fmatch in
  let parts = ref [] in
  let add s = parts := s :: !parts in
  let get f = Gf_flow.Flow.get pattern f in
  let mask_of f = Gf_flow.Mask.get mask f in
  let full f = mask_of f = Field.full_mask f in
  if mask_of Field.In_port <> 0 then add (Printf.sprintf "in_port=%d" (get Field.In_port));
  if mask_of Field.Eth_src <> 0 then
    add (Printf.sprintf "dl_src=%s" (Headers.mac_to_string (get Field.Eth_src)));
  if mask_of Field.Eth_dst <> 0 then
    add (Printf.sprintf "dl_dst=%s" (Headers.mac_to_string (get Field.Eth_dst)));
  if mask_of Field.Eth_type <> 0 then
    add (Printf.sprintf "dl_type=0x%04x" (get Field.Eth_type));
  if mask_of Field.Vlan <> 0 then add (Printf.sprintf "dl_vlan=%d" (get Field.Vlan));
  let ip field key =
    let m = mask_of field in
    if m <> 0 then begin
      let len = Gf_util.Bitops.popcount m in
      if full field then
        add (Printf.sprintf "%s=%s" key (Headers.ipv4_to_string (get field)))
      else add (Printf.sprintf "%s=%s/%d" key (Headers.ipv4_to_string (get field)) len)
    end
  in
  ip Field.Ip_src "nw_src";
  ip Field.Ip_dst "nw_dst";
  if mask_of Field.Ip_proto <> 0 then
    add (Printf.sprintf "nw_proto=%d" (get Field.Ip_proto));
  if mask_of Field.Tp_src <> 0 then add (Printf.sprintf "tp_src=%d" (get Field.Tp_src));
  if mask_of Field.Tp_dst <> 0 then add (Printf.sprintf "tp_dst=%d" (get Field.Tp_dst));
  String.concat "," (List.rev !parts)

let print_action (a : Action.t) =
  let mods =
    List.map
      (fun (f, v) ->
        match f with
        | Field.Eth_src -> "mod_dl_src:" ^ Headers.mac_to_string v
        | Field.Eth_dst -> "mod_dl_dst:" ^ Headers.mac_to_string v
        | Field.Ip_src -> "mod_nw_src:" ^ Headers.ipv4_to_string v
        | Field.Ip_dst -> "mod_nw_dst:" ^ Headers.ipv4_to_string v
        | Field.Tp_src -> Printf.sprintf "mod_tp_src:%d" v
        | Field.Tp_dst -> Printf.sprintf "mod_tp_dst:%d" v
        | Field.Vlan -> Printf.sprintf "mod_vlan_vid:%d" v
        | Field.In_port | Field.Eth_type | Field.Ip_proto ->
            Printf.sprintf "set_field:%d" v (* not expressible; best effort *))
      a.Action.set_fields
  in
  let control =
    match a.Action.control with
    | Action.Goto t -> Printf.sprintf "goto_table:%d" t
    | Action.Terminal (Action.Output p) -> Printf.sprintf "output:%d" p
    | Action.Terminal Action.Drop -> "drop"
    | Action.Terminal Action.Controller -> "controller"
  in
  String.concat "," (mods @ [ control ])

let print_flow f =
  let m = print_match f.fmatch in
  Printf.sprintf "table=%d,priority=%d%s%s,actions=%s" f.table f.priority
    (if m = "" then "" else ",")
    m (print_action f.action)

let load_into pipeline text =
  let* flows = parse_flows text in
  let* () =
    List.fold_left
      (fun acc f ->
        let* () = acc in
        if Pipeline.table_opt pipeline f.table = None then
          Error (Printf.sprintf "unknown table %d" f.table)
        else Ok ())
      (Ok ()) flows
  in
  List.iter
    (fun f ->
      Pipeline.add_rule pipeline ~table:f.table
        (Ofrule.v ~id:(Pipeline.fresh_rule_id pipeline) ~priority:f.priority
           ~fmatch:f.fmatch ~action:f.action))
    flows;
  Ok (List.length flows)

let dump_pipeline pipeline =
  let buf = Buffer.create 1024 in
  List.iter
    (fun table ->
      List.iter
        (fun (r : Ofrule.t) ->
          Buffer.add_string buf
            (print_flow
               {
                 table = Oftable.id table;
                 priority = r.priority;
                 fmatch = r.fmatch;
                 action = r.action;
               });
          Buffer.add_char buf '\n')
        (Oftable.rules table))
    (Pipeline.tables pipeline);
  Buffer.contents buf
