(** The end-to-end datapath simulator: SmartNIC cache in front, software
    cache behind it, userspace pipeline as the slowpath (paper Fig. 2b /
    Fig. 5a).

    A packet is looked up in the SmartNIC cache (Megaflow single-table or
    Gigaflow LTM, per configuration).  On a miss it is upcalled to
    software and walks OVS's cache hierarchy (paper section 2.1): the
    exact-match Microflow cache (EMC), then the software wildcard cache
    (TSS or NuevoMatch search — the Fig. 17 axis), and finally the full
    pipeline, which installs entries into the software caches and the
    SmartNIC.  Idle entries expire on a periodic sweep. *)

type backend = Megaflow_offload | Gigaflow_offload

val backend_name : backend -> string

type config = {
  backend : backend;
  gf : Gf_core.Config.t;  (** Gigaflow geometry (used by [Gigaflow_offload]). *)
  mf_capacity : int;  (** SmartNIC Megaflow capacity ([Megaflow_offload]). *)
  sw_enabled : bool;
  sw_search : Gf_classifier.Searcher.algo;
  sw_capacity : int;
  emc_capacity : int;
      (** First software level, OVS's exact-match cache (EMC/Microflow);
          0 disables it.  Default 8192, the OVS default. *)
  max_idle : float;  (** Idle eviction budget, seconds. *)
  expire_every : float;  (** Period of the eviction sweep, seconds. *)
}

val megaflow_32k : config
(** The paper's baseline: Megaflow offload with 32K entries. *)

val gigaflow_4x8k : config
(** The paper's headline configuration: 4 tables x 8K entries. *)

type t

val create : config -> Gf_pipeline.Pipeline.t -> t
val config : t -> config
val pipeline : t -> Gf_pipeline.Pipeline.t

val gigaflow : t -> Gf_core.Gigaflow.t option
(** The Gigaflow instance, when the backend is [Gigaflow_offload]. *)

val hw_megaflow : t -> Gf_cache.Megaflow.t option

val hw_occupancy : t -> int

type outcome = Hw_hit | Sw_hit | Slowpath

val process :
  t -> now:float -> Gf_flow.Flow.t -> outcome * Gf_pipeline.Action.terminal option * float
(** Handle one packet: returns the path taken, the forwarding decision
    ([None] if the slowpath failed, e.g. a pipeline loop) and the modelled
    latency in microseconds.  Updates metrics. *)

val run :
  ?on_packet:(Gf_workload.Trace.packet -> outcome -> float -> unit) ->
  ?miss_sink:(flow_id:int -> cycles:int -> unit) ->
  t ->
  Gf_workload.Trace.t ->
  Metrics.t
(** Replay a trace.  [on_packet] observes every packet (Fig. 18 timelines);
    [miss_sink] observes slowpath CPU work per flow (Fig. 19 RSS
    scaling). *)

val metrics : t -> Metrics.t
