type t = {
  mutable packets : int;
  mutable hw_hits : int;
  mutable sw_hits : int;
  mutable slowpaths : int;
  mutable drops : int;
  mutable hw_installs : int;
  mutable hw_shared : int;
  mutable hw_rejected : int;
  mutable hw_evictions : int;
  latency : Gf_util.Stats.Acc.t;
  mutable cycles_userspace : int;
  mutable cycles_partition : int;
  mutable cycles_rulegen : int;
  mutable cycles_sw_search : int;
  mutable hw_entries_peak : int;
  mutable hw_entries_final : int;
}

let create () =
  {
    packets = 0;
    hw_hits = 0;
    sw_hits = 0;
    slowpaths = 0;
    drops = 0;
    hw_installs = 0;
    hw_shared = 0;
    hw_rejected = 0;
    hw_evictions = 0;
    latency = Gf_util.Stats.Acc.create ();
    cycles_userspace = 0;
    cycles_partition = 0;
    cycles_rulegen = 0;
    cycles_sw_search = 0;
    hw_entries_peak = 0;
    hw_entries_final = 0;
  }

let hw_hit_rate t =
  if t.packets = 0 then nan else float_of_int t.hw_hits /. float_of_int t.packets

let hw_miss_count t = t.sw_hits + t.slowpaths

let total_cycles t =
  t.cycles_userspace + t.cycles_partition + t.cycles_rulegen + t.cycles_sw_search

let mean_latency_us t = Gf_util.Stats.Acc.mean t.latency

let overhead_ratio t =
  if t.cycles_userspace = 0 then nan
  else
    float_of_int (t.cycles_partition + t.cycles_rulegen)
    /. float_of_int t.cycles_userspace

let pp fmt t =
  Format.fprintf fmt
    "packets=%d hw_hits=%d (%.2f%%) sw_hits=%d slowpaths=%d entries=%d (peak %d) \
     installs=%d shared=%d rejected=%d evictions=%d avg_lat=%.2fus"
    t.packets t.hw_hits (100.0 *. hw_hit_rate t) t.sw_hits t.slowpaths
    t.hw_entries_final t.hw_entries_peak t.hw_installs t.hw_shared t.hw_rejected
    t.hw_evictions (mean_latency_us t)
