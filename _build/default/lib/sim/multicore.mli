(** Multi-core slowpath scaling (paper Appendix A).

    OVS distributes SmartNIC cache misses across vSwitch cores with RSS:
    each flow hashes to one core, so per-flow work never splits and
    per-core load drops roughly proportionally with the core count.  This
    module turns a per-flow slowpath-cycle census (collected by
    {!Datapath.run}'s [miss_sink]) into per-core load figures. *)

type t = {
  cores : int;
  loads : int array;  (** Cycles per core, length [cores]. *)
}

val distribute : cores:int -> (int, int) Hashtbl.t -> t
(** RSS-hash each flow id onto one of [cores] cores and sum its cycles
    there. Deterministic. *)

val max_load : t -> int
(** The bottleneck core's cycles. *)

val total_load : t -> int

val imbalance : t -> float
(** max over mean per-core load; 1.0 = perfectly balanced. *)

val speedup : baseline:t -> t -> float
(** Bottleneck-load ratio between a baseline (typically 1 core) and this
    distribution. *)
