module Action = Gf_pipeline.Action
module Pipeline = Gf_pipeline.Pipeline
module Executor = Gf_pipeline.Executor
module Megaflow = Gf_cache.Megaflow
module Gigaflow = Gf_core.Gigaflow
module Ltm_cache = Gf_core.Ltm_cache
module Latency = Gf_nic.Latency
module Cache_stats = Gf_cache.Cache_stats

type backend = Megaflow_offload | Gigaflow_offload

let backend_name = function
  | Megaflow_offload -> "Megaflow"
  | Gigaflow_offload -> "Gigaflow"

type config = {
  backend : backend;
  gf : Gf_core.Config.t;
  mf_capacity : int;
  sw_enabled : bool;
  sw_search : Gf_classifier.Searcher.algo;
  sw_capacity : int;
  emc_capacity : int;
      (* software exact-match cache (OVS's EMC/Microflow level); 0 disables *)
  max_idle : float;
  expire_every : float;
}

let base =
  {
    backend = Megaflow_offload;
    gf = Gf_core.Config.default;
    mf_capacity = 32_768;
    sw_enabled = true;
    sw_search = `Tss;
    sw_capacity = 1_000_000;
    emc_capacity = 8192; (* OVS's EMC default entry count *)
    max_idle = 10.0;
    expire_every = 1.0;
  }

let megaflow_32k = base

let gigaflow_4x8k = { base with backend = Gigaflow_offload }

type hw = Hw_mf of Megaflow.t | Hw_gf of Gigaflow.t

type t = {
  cfg : config;
  pipeline : Pipeline.t;
  hw : hw;
  emc : Gf_cache.Microflow.t option; (* first software level: exact match *)
  sw : Megaflow.t option;
  metrics : Metrics.t;
  mutable last_expire : float;
}

let create cfg pipeline =
  let hw =
    match cfg.backend with
    | Megaflow_offload -> Hw_mf (Megaflow.create ~capacity:cfg.mf_capacity ())
    | Gigaflow_offload ->
        Hw_gf (Gigaflow.create { cfg.gf with Gf_core.Config.max_idle = cfg.max_idle })
  in
  let sw =
    if cfg.sw_enabled then
      Some (Megaflow.create ~search:cfg.sw_search ~capacity:cfg.sw_capacity ())
    else None
  in
  let emc =
    if cfg.sw_enabled && cfg.emc_capacity > 0 then
      Some (Gf_cache.Microflow.create ~capacity:cfg.emc_capacity)
    else None
  in
  { cfg; pipeline; hw; emc; sw; metrics = Metrics.create (); last_expire = 0.0 }

let config t = t.cfg
let pipeline t = t.pipeline

let gigaflow t = match t.hw with Hw_gf gf -> Some gf | Hw_mf _ -> None
let hw_megaflow t = match t.hw with Hw_mf mf -> Some mf | Hw_gf _ -> None

let hw_occupancy t =
  match t.hw with
  | Hw_mf mf -> Megaflow.occupancy mf
  | Hw_gf gf -> Ltm_cache.occupancy (Gigaflow.cache gf)

let hw_stats t =
  match t.hw with
  | Hw_mf mf -> Megaflow.stats mf
  | Hw_gf gf -> Ltm_cache.stats (Gigaflow.cache gf)

type outcome = Hw_hit | Sw_hit | Slowpath

let maybe_expire t ~now =
  if now -. t.last_expire >= t.cfg.expire_every then begin
    t.last_expire <- now;
    let evicted =
      match t.hw with
      | Hw_mf mf -> Megaflow.expire mf ~now ~max_idle:t.cfg.max_idle
      | Hw_gf gf -> Gigaflow.expire gf ~now
    in
    t.metrics.Metrics.hw_evictions <- t.metrics.Metrics.hw_evictions + evicted;
    (match t.emc with
    | Some emc -> ignore (Gf_cache.Microflow.expire emc ~now ~max_idle:t.cfg.max_idle)
    | None -> ());
    match t.sw with
    | Some sw -> ignore (Megaflow.expire sw ~now ~max_idle:(4.0 *. t.cfg.max_idle))
    | None -> ()
  end

let hw_lookup t ~now flow =
  match t.hw with
  | Hw_mf mf ->
      let hit, _work = Megaflow.lookup mf ~now flow in
      (match hit with
      | Some h -> Some h.Megaflow.terminal
      | None -> None)
  | Hw_gf gf -> (
      let hit, _work = Gigaflow.lookup gf ~now ~pipeline:t.pipeline flow in
      match hit with
      | Some h -> Some h.Ltm_cache.terminal
      | None -> None)

(* Full slowpath: execute the pipeline, install into the SmartNIC and the
   software cache.  Returns (terminal option, service latency us, cpu
   cycles). *)
let slowpath t ~now flow =
  let m = t.metrics in
  match t.hw with
  | Hw_gf gf -> (
      match Gigaflow.handle_miss gf ~now ~pipeline:t.pipeline flow with
      | Error _ -> (None, Latency.upcall_us, 0)
      | Ok outcome ->
          let w = outcome.Gigaflow.work in
          let installs =
            match outcome.Gigaflow.install with
            | Ltm_cache.Installed { fresh; shared } ->
                m.Metrics.hw_installs <- m.Metrics.hw_installs + fresh;
                m.Metrics.hw_shared <- m.Metrics.hw_shared + shared;
                fresh
            | Ltm_cache.Rejected ->
                m.Metrics.hw_rejected <- m.Metrics.hw_rejected + 1;
                0
          in
          (match t.sw with
          | Some sw ->
              ignore
                (Megaflow.install sw ~now ~version:(Pipeline.version t.pipeline)
                   outcome.Gigaflow.traversal)
          | None -> ());
          let cu =
            Latency.cycles_userspace ~pipeline_lookups:w.Gigaflow.pipeline_lookups
              ~tuple_probes:w.Gigaflow.tuple_probes
          in
          let cp = Latency.cycles_partition ~partition_work:w.Gigaflow.partition_work in
          let cr = Latency.cycles_rulegen ~rulegen_work:w.Gigaflow.rulegen_work in
          m.Metrics.cycles_userspace <- m.Metrics.cycles_userspace + cu;
          m.Metrics.cycles_partition <- m.Metrics.cycles_partition + cp;
          m.Metrics.cycles_rulegen <- m.Metrics.cycles_rulegen + cr;
          let lat =
            Latency.slowpath_us ~pipeline_lookups:w.Gigaflow.pipeline_lookups
              ~tuple_probes:w.Gigaflow.tuple_probes
              ~partition_work:w.Gigaflow.partition_work
              ~rulegen_work:w.Gigaflow.rulegen_work ~installs
          in
          (Some outcome.Gigaflow.traversal.Gf_pipeline.Traversal.terminal, lat, cu + cp + cr))
  | Hw_mf mf -> (
      match Executor.execute t.pipeline flow with
      | Error _ -> (None, Latency.upcall_us, 0)
      | Ok traversal ->
          let installs =
            match Megaflow.install mf ~now ~version:(Pipeline.version t.pipeline) traversal with
            | `Installed ->
                m.Metrics.hw_installs <- m.Metrics.hw_installs + 1;
                1
            | `Exists -> 0
            | `Rejected ->
                m.Metrics.hw_rejected <- m.Metrics.hw_rejected + 1;
                0
          in
          (match t.sw with
          | Some sw ->
              ignore
                (Megaflow.install sw ~now ~version:(Pipeline.version t.pipeline) traversal)
          | None -> ());
          let n = Gf_pipeline.Traversal.length traversal in
          let probes =
            Array.fold_left
              (fun acc s -> acc + s.Gf_pipeline.Traversal.probes)
              0 traversal.Gf_pipeline.Traversal.steps
          in
          let cu = Latency.cycles_userspace ~pipeline_lookups:n ~tuple_probes:probes in
          m.Metrics.cycles_userspace <- m.Metrics.cycles_userspace + cu;
          let lat =
            Latency.slowpath_us ~pipeline_lookups:n ~tuple_probes:probes
              ~partition_work:0 ~rulegen_work:0 ~installs
          in
          (Some traversal.Gf_pipeline.Traversal.terminal, lat, cu))

let process t ~now flow =
  let m = t.metrics in
  maybe_expire t ~now;
  m.Metrics.packets <- m.Metrics.packets + 1;
  let outcome, terminal, latency =
    match hw_lookup t ~now flow with
    | Some terminal ->
        m.Metrics.hw_hits <- m.Metrics.hw_hits + 1;
        (Hw_hit, Some terminal, Latency.hw_hit_us)
    | None -> (
        (* Upcall to software.  First level: the exact-match cache (OVS's
           EMC) — one hash probe, no wildcards. *)
        let emc_result =
          match t.emc with
          | None -> None
          | Some emc -> Gf_cache.Microflow.lookup emc ~now flow
        in
        let sw_result =
          match emc_result with
          | Some h -> Some (h.Gf_cache.Microflow.terminal, 0.4 (* one hash probe *))
          | None -> (
          match t.sw with
          | None -> None
          | Some sw -> (
              let hit, work = Megaflow.lookup sw ~now flow in
              let search_us =
                Latency.sw_search_us ~algo:(t.cfg.sw_search :> [ `Tss | `Nuevomatch | `Linear ]) ~work ()
              in
              m.Metrics.cycles_sw_search <-
                m.Metrics.cycles_sw_search + (work * 450);
              match hit with
              | Some h ->
                  (* Promote to the EMC for subsequent packets. *)
                  (match t.emc with
                  | Some emc ->
                      Gf_cache.Microflow.install emc ~now flow
                        {
                          Gf_cache.Microflow.terminal = h.Megaflow.terminal;
                          out_flow = h.Megaflow.out_flow;
                        }
                  | None -> ());
                  Some (h.Megaflow.terminal, search_us)
              | None -> None))
        in
        match sw_result with
        | Some (terminal, search_us) ->
            m.Metrics.sw_hits <- m.Metrics.sw_hits + 1;
            (Sw_hit, Some terminal, Latency.upcall_us +. Latency.sw_base_us +. search_us)
        | None ->
            m.Metrics.slowpaths <- m.Metrics.slowpaths + 1;
            let terminal, service_us, _cycles = slowpath t ~now flow in
            (Slowpath, terminal, Latency.upcall_us +. Latency.sw_base_us +. service_us))
  in
  (match terminal with
  | Some Action.Drop -> m.Metrics.drops <- m.Metrics.drops + 1
  | Some (Action.Output _ | Action.Controller) | None -> ());
  Gf_util.Stats.Acc.add m.Metrics.latency latency;
  let occ = hw_occupancy t in
  if occ > m.Metrics.hw_entries_peak then m.Metrics.hw_entries_peak <- occ;
  (outcome, terminal, latency)

let run ?on_packet ?miss_sink t trace =
  Array.iter
    (fun (pkt : Gf_workload.Trace.packet) ->
      let before = Metrics.total_cycles t.metrics in
      let outcome, _terminal, latency =
        process t ~now:pkt.Gf_workload.Trace.time pkt.Gf_workload.Trace.flow
      in
      (match (outcome, miss_sink) with
      | Slowpath, Some sink ->
          sink ~flow_id:pkt.Gf_workload.Trace.flow_id
            ~cycles:(Metrics.total_cycles t.metrics - before)
      | (Hw_hit | Sw_hit | Slowpath), _ -> ());
      match on_packet with
      | Some f -> f pkt outcome latency
      | None -> ())
    trace.Gf_workload.Trace.packets;
  t.metrics.Metrics.hw_entries_final <- hw_occupancy t;
  ignore (hw_stats t);
  t.metrics

let metrics t = t.metrics
