lib/sim/multicore.mli: Hashtbl
