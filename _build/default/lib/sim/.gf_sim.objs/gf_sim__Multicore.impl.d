lib/sim/multicore.ml: Array Hashtbl
