lib/sim/datapath.mli: Gf_cache Gf_classifier Gf_core Gf_flow Gf_pipeline Gf_workload Metrics
