lib/sim/metrics.ml: Format Gf_util
