lib/sim/metrics.mli: Format Gf_util
