lib/sim/datapath.ml: Array Gf_cache Gf_classifier Gf_core Gf_nic Gf_pipeline Gf_util Gf_workload Metrics
