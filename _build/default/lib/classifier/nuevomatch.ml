module Field = Gf_flow.Field
module Flow = Gf_flow.Flow
module Mask = Gf_flow.Mask
module Fmatch = Gf_flow.Fmatch

let algorithm = "nuevomatch"

(* Default/reporting dimension; each trained iSet picks its own best
   dimension (see [carve]). *)
let index_field = Field.Ip_dst

let max_isets = 12
let model_buckets = 512

(* Fraction of total entries the delta may reach before retraining. *)
let retrain_fraction = 0.25

(* The envelope of an entry's projection onto a field: every flow matching
   the entry has that field's value in [lo, hi] (lo = pattern,
   hi = pattern | ~mask, which bounds because value = pattern | extra
   bits). *)
let envelope field (e : 'a Entry.t) =
  let pattern = Flow.get (Fmatch.pattern e.fmatch) field in
  let mask = Mask.get (Fmatch.mask e.fmatch) field in
  let hi = pattern lor (Field.full_mask field land lnot mask) in
  (pattern, hi)

type 'a iset = {
  field : Field.t; (* the dimension this iSet's model indexes *)
  sorted : 'a Entry.t array; (* by envelope lo; envelopes pairwise disjoint *)
  los : int array;
  his : int array;
  (* Learned CDF over the key range actually occupied: [base] and
     [bucket_width] map a key to a bucket whose start index bounds the
     local search — the RMI error-bounded prediction. *)
  base : int;
  bucket_width : int;
  bucket_start : int array;
}

type 'a t = {
  by_key : (int, 'a Entry.t) Hashtbl.t;
  mutable isets : 'a iset list;
  remainder : 'a Tss.t; (* static entries that fit no iSet *)
  delta : 'a Tss.t; (* dynamic inserts since last training *)
  mutable iset_keys : (int, unit) Hashtbl.t; (* keys frozen inside iSet arrays *)
  mutable removed : (int, unit) Hashtbl.t; (* iSet keys logically deleted *)
  mutable trained_size : int;
}

let create () =
  {
    by_key = Hashtbl.create 64;
    isets = [];
    remainder = Tss.create ();
    delta = Tss.create ();
    iset_keys = Hashtbl.create 64;
    removed = Hashtbl.create 16;
    trained_size = 0;
  }


let build_iset field entries =
  let sorted = Array.of_list entries in
  Array.sort (fun a b -> compare (fst (envelope field a)) (fst (envelope field b))) sorted;
  let n = Array.length sorted in
  let los = Array.map (fun e -> fst (envelope field e)) sorted in
  let his = Array.map (fun e -> snd (envelope field e)) sorted in
  (* Learned CDF approximation over the occupied key range: for each of
     [model_buckets] equal sub-ranges of [los.(0), los.(n-1)], precompute
     the first array index whose lo falls at/after the range start.
     Prediction = bucket start; local search walks forward, bounded by the
     bucket's population (the RMI error bound). *)
  let base = los.(0) in
  let span = max 1 (los.(n - 1) - base) in
  let bucket_width = (span / model_buckets) + 1 in
  let bucket_start = Array.make (model_buckets + 1) n in
  let b = ref 0 in
  for i = 0 to n - 1 do
    while !b <= (los.(i) - base) / bucket_width do
      bucket_start.(!b) <- i;
      incr b
    done
  done;
  (* Remaining buckets already default to n. *)
  { field; sorted; los; his; base; bucket_width; bucket_start }

(* Greedy interval scheduling on one field: maximal set of pairwise-disjoint
   envelopes. *)
let split_disjoint field entries =
  let by_hi =
    List.sort
      (fun a b -> compare (snd (envelope field a)) (snd (envelope field b)))
      entries
  in
  let chosen = ref [] and rest = ref [] in
  let frontier = ref (-1) in
  List.iter
    (fun e ->
      let lo, hi = envelope field e in
      if lo > !frontier then begin
        chosen := e :: !chosen;
        frontier := hi
      end
      else rest := e :: !rest)
    by_hi;
  (!chosen, !rest)

(* Candidate model dimensions, widest/most discriminating first. *)
let candidate_fields =
  [
    Field.Ip_dst;
    Field.Ip_src;
    Field.Eth_dst;
    Field.Eth_src;
    Field.Tp_dst;
    Field.Tp_src;
    Field.Vlan;
    Field.In_port;
  ]

let retrain t =
  let live =
    Hashtbl.fold (fun _ e acc -> e :: acc) t.by_key []
  in
  Tss.clear t.remainder;
  Tss.clear t.delta;
  Hashtbl.reset t.iset_keys;
  Hashtbl.reset t.removed;
  let rec carve rounds entries isets =
    if rounds = 0 || entries = [] then (List.rev isets, entries)
    else begin
      (* Pick the dimension yielding the largest disjoint set this round —
         NuevoMatch's per-iSet dimension selection. *)
      let best =
        List.fold_left
          (fun acc field ->
            let chosen, rest = split_disjoint field entries in
            match acc with
            | Some (_, best_chosen, _) when List.length chosen <= List.length best_chosen
              ->
                acc
            | _ -> Some (field, chosen, rest))
          None candidate_fields
      in
      match best with
      | None -> (List.rev isets, entries)
      | Some (field, chosen, rest) ->
          (* A tiny iSet is not worth a model; push it to the remainder. *)
          if List.length chosen < 4 then (List.rev isets, entries)
          else begin
            List.iter
              (fun (e : 'a Entry.t) -> Hashtbl.replace t.iset_keys e.key ())
              chosen;
            carve (rounds - 1) rest (build_iset field chosen :: isets)
          end
    end
  in
  let isets, rest = carve max_isets live [] in
  t.isets <- isets;
  List.iter (fun e -> Tss.insert t.remainder e) rest;
  t.trained_size <- List.length live

let insert t entry =
  if Hashtbl.mem t.by_key entry.Entry.key then
    invalid_arg "Nuevomatch.insert: duplicate key";
  Hashtbl.add t.by_key entry.Entry.key entry;
  Tss.insert t.delta entry;
  let total = Hashtbl.length t.by_key in
  if
    float_of_int (Tss.size t.delta)
    > Float.max 64.0 (retrain_fraction *. float_of_int total)
  then retrain t

let remove t key =
  match Hashtbl.find_opt t.by_key key with
  | None -> false
  | Some _ ->
      Hashtbl.remove t.by_key key;
      if Hashtbl.mem t.iset_keys key then Hashtbl.replace t.removed key ()
      else if not (Tss.remove t.remainder key) then ignore (Tss.remove t.delta key);
      true

let size t = Hashtbl.length t.by_key

let lookup_iset t iset flow work =
  let key = Flow.get flow iset.field in
  let n = Array.length iset.sorted in
  if n = 0 then (None, work)
  else begin
    let b = max 0 ((key - iset.base) / iset.bucket_width) in
    (* The model predicts a position; the true candidate is the entry with
       the largest lo <= key.  Because envelopes are pairwise disjoint, no
       earlier envelope can reach the key, so that single candidate is the
       only one to validate.  An envelope opened in an earlier bucket may
       span into this one, hence the -1 rewind before the forward scan. *)
    let start = max 0 (iset.bucket_start.(min b model_buckets) - 1) in
    let work = ref (work + 1) (* model evaluation *) in
    let candidate = ref (-1) in
    let i = ref start in
    let continue = ref true in
    while !continue && !i < n do
      if iset.los.(!i) > key then continue := false
      else begin
        incr work;
        candidate := !i;
        incr i
      end
    done;
    let best =
      if !candidate < 0 then None
      else begin
        let e = iset.sorted.(!candidate) in
        if
          iset.his.(!candidate) >= key
          && (not (Hashtbl.mem t.removed e.Entry.key))
          && Entry.matches e flow
        then Some e
        else None
      end
    in
    (best, !work)
  end

let lookup t flow =
  let best = ref None in
  let work = ref 0 in
  let consider = function
    | None -> ()
    | Some (e : 'a Entry.t) -> (
        match !best with
        | Some b when not (Entry.better e b) -> ()
        | _ -> best := Some e)
  in
  List.iter
    (fun iset ->
      let r, w = lookup_iset t iset flow !work in
      work := w;
      consider r)
    t.isets;
  let r, w = Tss.lookup t.remainder flow in
  work := !work + w;
  consider r;
  let r, w = Tss.lookup t.delta flow in
  work := !work + w;
  consider r;
  (!best, !work)

let entries t = Hashtbl.fold (fun _ e acc -> e :: acc) t.by_key []

let clear t =
  Hashtbl.reset t.by_key;
  t.isets <- [];
  Tss.clear t.remainder;
  Tss.clear t.delta;
  Hashtbl.reset t.iset_keys;
  Hashtbl.reset t.removed;
  t.trained_size <- 0

let iset_count t = List.length t.isets

let delta_size t = Tss.size t.delta

let remainder_size t = Tss.size t.remainder
