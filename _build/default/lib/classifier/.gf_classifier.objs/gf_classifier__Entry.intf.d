lib/classifier/entry.mli: Gf_flow
