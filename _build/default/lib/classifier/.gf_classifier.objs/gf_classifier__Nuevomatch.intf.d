lib/classifier/nuevomatch.mli: Classifier_intf Gf_flow
