lib/classifier/nuevomatch.ml: Array Entry Float Gf_flow Hashtbl List Tss
