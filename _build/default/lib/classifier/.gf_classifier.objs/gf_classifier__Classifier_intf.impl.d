lib/classifier/classifier_intf.ml: Entry Gf_flow
