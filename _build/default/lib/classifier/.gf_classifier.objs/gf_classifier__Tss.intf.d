lib/classifier/tss.mli: Classifier_intf Entry Gf_flow
