lib/classifier/searcher.ml: Classifier_intf Entry Gf_flow Linear Nuevomatch Tss
