lib/classifier/searcher.mli: Entry Gf_flow
