lib/classifier/linear.mli: Classifier_intf
