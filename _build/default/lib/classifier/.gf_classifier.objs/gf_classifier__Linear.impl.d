lib/classifier/linear.ml: Entry Hashtbl
