lib/classifier/tss.ml: Entry Gf_flow Hashtbl List Option
