lib/classifier/entry.ml: Gf_flow
