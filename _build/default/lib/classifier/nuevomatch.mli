(** A NuevoMatch-style learned classifier (Rashelbach et al., SIGCOMM'20 /
    NSDI'22), reimplemented in the RMI spirit.

    Entries are split into {b independent sets} (iSets): groups whose
    projections onto a selected index field have pairwise non-overlapping
    value envelopes.  Each iSet is sorted by envelope start and indexed by a
    learned CDF approximation (a bucketised piecewise model playing the role
    of RQ-RMI) that predicts the array position of a key with bounded local
    search.  Entries that fit no iSet fall back to a small TSS remainder, and
    dynamic inserts land in a TSS delta that triggers a retrain once it grows
    past a fraction of the static structure — mirroring the original's
    train-then-serve design.

    Lookup cost is O(#iSets + local search + remainder tuples), i.e. nearly
    constant and independent of the number of rules, which is exactly the
    property Fig. 17 of the Gigaflow paper exercises.  Hit/miss volumes are
    unaffected (same matches as TSS/linear, verified by property tests). *)

include Classifier_intf.S

val index_field : Gf_flow.Field.t
(** The dimension the learned models index (IPv4 destination, the most
    discriminating field in datacenter rulesets). *)

val iset_count : 'a t -> int
(** Number of trained iSets (0 before first training). *)

val delta_size : 'a t -> int
(** Entries currently in the untrained delta. *)

val remainder_size : 'a t -> int
(** Trained entries that fit no iSet and fell back to the TSS remainder —
    the structure's cost driver (its tuples are probed on every lookup). *)

val retrain : 'a t -> unit
(** Force retraining now (otherwise it happens automatically when the delta
    outgrows the trained structure). *)
