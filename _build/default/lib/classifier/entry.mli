(** The entry type shared by all software packet classifiers.

    A classifier stores prioritised ternary entries and answers
    highest-priority-match queries; the Megaflow cache, the Gigaflow LTM
    tables and standalone rule tables all instantiate it with their own
    payload type. *)

type 'a t = {
  key : int;  (** Unique id within one classifier instance. *)
  fmatch : Gf_flow.Fmatch.t;
  priority : int;
  payload : 'a;
}

val v : key:int -> fmatch:Gf_flow.Fmatch.t -> priority:int -> 'a -> 'a t

val matches : 'a t -> Gf_flow.Flow.t -> bool

val better : 'a t -> 'a t -> bool
(** [better a b] iff [a] wins over [b]: higher priority, ties toward the
    lower key (deterministic). *)
