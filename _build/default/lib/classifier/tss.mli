(** Tuple Space Search (Srinivasan, Suri & Varghese, SIGCOMM'99).

    Entries are grouped by mask into tuples; each tuple is a hash table from
    the pre-masked pattern to its best entry.  Lookup probes tuples in
    decreasing max-priority order and stops as soon as the current winner
    strictly out-prioritises every remaining tuple.  Work units = tuples
    probed (the O(M) cost the paper and NuevoMatch target). *)

include Classifier_intf.S

val tuple_count : 'a t -> int
(** Number of distinct masks currently stored. *)

val lookup_first : 'a t -> Gf_flow.Flow.t -> 'a Entry.t option * int
(** First-match walk over hit-frequency-ranked tuples (a matching tuple is
    promoted to the front, like OVS's ranked subtables).  {b Only} correct
    when any matching entry is acceptable to the caller — the Megaflow
    cache's situation, where overlapping entries always agree (every entry
    reproduces the slowpath decision; property-tested).  Misses still probe
    every tuple. *)
