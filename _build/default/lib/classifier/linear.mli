(** Reference classifier: priority-ordered linear scan.

    O(n) per lookup; exists to specify correct behaviour.  TSS and
    NuevoMatch are property-tested against it. *)

include Classifier_intf.S
