type 'a t = { key : int; fmatch : Gf_flow.Fmatch.t; priority : int; payload : 'a }

let v ~key ~fmatch ~priority payload = { key; fmatch; priority; payload }

let matches t flow = Gf_flow.Fmatch.matches t.fmatch flow

let better a b = a.priority > b.priority || (a.priority = b.priority && a.key < b.key)
