module Flow = Gf_flow.Flow
module Mask = Gf_flow.Mask
module Fmatch = Gf_flow.Fmatch

type 'a tuple = {
  mask : Mask.t;
  buckets : (Flow.t, 'a Entry.t list) Hashtbl.t; (* best-first lists *)
  mutable max_priority : int;
  mutable count : int;
}

type 'a t = {
  by_key : (int, 'a Entry.t) Hashtbl.t;
  tuples : (Mask.t, 'a tuple) Hashtbl.t;
  mutable ordered : 'a tuple list; (* max_priority desc; valid when not dirty *)
  mutable ranked : 'a tuple list; (* hit-frequency order for first-match mode *)
  mutable dirty : bool;
  scratch : Flow.Scratch.t; (* transient masked-key buffer for lookups *)
}

let algorithm = "tss"

let create () =
  {
    by_key = Hashtbl.create 64;
    tuples = Hashtbl.create 16;
    ordered = [];
    ranked = [];
    dirty = false;
    scratch = Flow.Scratch.create ();
  }

let entry_order (a : 'a Entry.t) (b : 'a Entry.t) =
  if Entry.better a b then -1 else if Entry.better b a then 1 else 0

let insert t entry =
  if Hashtbl.mem t.by_key entry.Entry.key then invalid_arg "Tss.insert: duplicate key";
  Hashtbl.add t.by_key entry.Entry.key entry;
  let mask = Fmatch.mask entry.Entry.fmatch in
  let tuple =
    match Hashtbl.find_opt t.tuples mask with
    | Some tu -> tu
    | None ->
        let tu = { mask; buckets = Hashtbl.create 32; max_priority = min_int; count = 0 } in
        Hashtbl.add t.tuples mask tu;
        t.ranked <- t.ranked @ [ tu ];
        tu
  in
  let key = Fmatch.pattern entry.Entry.fmatch in
  let existing = Option.value ~default:[] (Hashtbl.find_opt tuple.buckets key) in
  Hashtbl.replace tuple.buckets key (List.sort entry_order (entry :: existing));
  tuple.count <- tuple.count + 1;
  if entry.Entry.priority > tuple.max_priority then tuple.max_priority <- entry.Entry.priority;
  t.dirty <- true

let recompute_max tuple =
  let m = ref min_int in
  Hashtbl.iter
    (fun _ entries ->
      List.iter (fun (e : 'a Entry.t) -> if e.priority > !m then m := e.priority) entries)
    tuple.buckets;
  tuple.max_priority <- !m

let remove t key =
  match Hashtbl.find_opt t.by_key key with
  | None -> false
  | Some entry ->
      Hashtbl.remove t.by_key key;
      let mask = Fmatch.mask entry.Entry.fmatch in
      (match Hashtbl.find_opt t.tuples mask with
      | None -> ()
      | Some tuple ->
          let bucket_key = Fmatch.pattern entry.Entry.fmatch in
          (match Hashtbl.find_opt tuple.buckets bucket_key with
          | None -> ()
          | Some entries ->
              let remaining = List.filter (fun (e : 'a Entry.t) -> e.key <> key) entries in
              if remaining = [] then Hashtbl.remove tuple.buckets bucket_key
              else Hashtbl.replace tuple.buckets bucket_key remaining);
          tuple.count <- tuple.count - 1;
          if tuple.count <= 0 then begin
            Hashtbl.remove t.tuples mask;
            t.ranked <- List.filter (fun tu -> tu != tuple) t.ranked
          end
          else if entry.Entry.priority >= tuple.max_priority then recompute_max tuple);
      t.dirty <- true;
      true

let size t = Hashtbl.length t.by_key

let ensure t =
  if t.dirty then begin
    t.ordered <-
      Hashtbl.fold (fun _ tu acc -> tu :: acc) t.tuples []
      |> List.sort (fun a b -> compare b.max_priority a.max_priority);
    t.dirty <- false
  end

let lookup t flow =
  ensure t;
  let rec go tuples best probes =
    match tuples with
    | [] -> (best, probes)
    | tuple :: rest -> (
        match best with
        | Some (b : 'a Entry.t) when b.priority > tuple.max_priority -> (best, probes)
        | _ ->
            let probes = probes + 1 in
            let key = Mask.apply_scratch tuple.mask flow t.scratch in
            let candidate =
              match Hashtbl.find_opt tuple.buckets key with
              | Some (e :: _) -> Some e
              | Some [] | None -> None
            in
            let best =
              match (best, candidate) with
              | None, c -> c
              | b, None -> b
              | Some b, Some c -> if Entry.better c b then Some c else Some b
            in
            go rest best probes)
  in
  go t.ordered None 0

(* First-match walk over hit-frequency-ranked tuples: sound when entries are
   pairwise disjoint (at most one can match), which Megaflow guarantees by
   construction.  A hit promotes its tuple to the front, so hot tuples are
   probed first — the ranked-subtable optimisation of OVS's dpcls. *)
let lookup_first t flow =
  let rec go acc tuples probes =
    match tuples with
    | [] -> (None, probes)
    | tuple :: rest -> (
        let probes = probes + 1 in
        let key = Mask.apply_scratch tuple.mask flow t.scratch in
        match Hashtbl.find_opt tuple.buckets key with
        | Some (e :: _) ->
            if acc <> [] then t.ranked <- tuple :: List.rev_append acc rest;
            (Some e, probes)
        | Some [] | None -> go (tuple :: acc) rest probes)
  in
  go [] t.ranked 0

let entries t = Hashtbl.fold (fun _ e acc -> e :: acc) t.by_key []

let clear t =
  Hashtbl.reset t.by_key;
  Hashtbl.reset t.tuples;
  t.ordered <- [];
  t.ranked <- [];
  t.dirty <- false

let tuple_count t = Hashtbl.length t.tuples
