type 'a t = { by_key : (int, 'a Entry.t) Hashtbl.t }

let algorithm = "linear"

let create () = { by_key = Hashtbl.create 64 }

let insert t entry =
  if Hashtbl.mem t.by_key entry.Entry.key then
    invalid_arg "Linear.insert: duplicate key";
  Hashtbl.add t.by_key entry.Entry.key entry

let remove t key =
  if Hashtbl.mem t.by_key key then begin
    Hashtbl.remove t.by_key key;
    true
  end
  else false

let size t = Hashtbl.length t.by_key

let lookup t flow =
  let best = ref None in
  let scanned = ref 0 in
  Hashtbl.iter
    (fun _ entry ->
      incr scanned;
      if Entry.matches entry flow then
        match !best with
        | Some b when not (Entry.better entry b) -> ()
        | _ -> best := Some entry)
    t.by_key;
  (!best, !scanned)

let entries t = Hashtbl.fold (fun _ e acc -> e :: acc) t.by_key []

let clear t = Hashtbl.reset t.by_key
