(** Runtime-selectable classifier: wraps {!Linear}, {!Tss} or {!Nuevomatch}
    behind one value type so caches can switch search algorithms by
    configuration (the paper's Fig. 17 compares TSS vs NuevoMatch on the
    same cache contents). *)

type algo = [ `Linear | `Tss | `Nuevomatch ]

val algo_name : algo -> string
val algo_of_string : string -> algo option

type 'a t

val create : algo -> 'a t
val algo : 'a t -> algo
val insert : 'a t -> 'a Entry.t -> unit
val remove : 'a t -> int -> bool
val size : 'a t -> int
val lookup : 'a t -> Gf_flow.Flow.t -> 'a Entry.t option * int

val lookup_disjoint : 'a t -> Gf_flow.Flow.t -> 'a Entry.t option * int
(** Like {!lookup} but the caller asserts that any matching entry is
    acceptable (entries agree wherever they overlap), enabling the
    first-match ranked walk for TSS (see {!Tss.lookup_first}); other
    algorithms fall back to {!lookup}. *)

val entries : 'a t -> 'a Entry.t list
val clear : 'a t -> unit
