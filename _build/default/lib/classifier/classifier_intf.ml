(** Common signature of the software packet classifiers.

    [lookup] returns the winning entry together with the {b work units}
    spent: an abstract count of memory probes (TSS tuples scanned, learned-
    model evaluations + secondary-search steps, or entries scanned for the
    linear reference).  The latency model converts work units to time. *)

module type S = sig
  type 'a t

  val algorithm : string
  (** Short name, e.g. ["tss"]. *)

  val create : unit -> 'a t

  val insert : 'a t -> 'a Entry.t -> unit
  (** Raises [Invalid_argument] on a duplicate key. *)

  val remove : 'a t -> int -> bool
  (** Remove by key; returns whether an entry was removed. *)

  val size : 'a t -> int

  val lookup : 'a t -> Gf_flow.Flow.t -> 'a Entry.t option * int
  (** Highest-priority match (ties toward lowest key) and work units. *)

  val entries : 'a t -> 'a Entry.t list
  (** In unspecified order. *)

  val clear : 'a t -> unit
end
