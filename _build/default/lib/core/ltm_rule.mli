(** A Gigaflow LTM cache rule (paper Fig. 5b / section 4.2.3).

    One rule caches one sub-traversal.  Its components are exactly the
    paper's tuple: a table tag [tau] (exact match on the starting vSwitch
    table id), a ternary match predicate [M] with wildcard [omega], a
    priority [rho] equal to the sub-traversal length (the LTM criterion),
    and an action [alpha] — the commit (header rewrites) plus either a jump
    to the next expected table tag or the terminal decision. *)

type next =
  | Next_tag of int
      (** The sub-traversal ends mid-pipeline; the packet's tag becomes the
          id of the next vSwitch table and a later LTM table must match. *)
  | Done of Gf_pipeline.Action.terminal
      (** The sub-traversal reaches the end of the pipeline. *)

type origin = {
  parent_flow : Gf_flow.Flow.t;
      (** Flow state at the sub-traversal's first step, used as the
          representative input for revalidation. *)
  length : int;  (** Number of vSwitch tables spanned. *)
  version : int;  (** Pipeline version when the rule was generated. *)
}

type t = {
  tag_in : int;  (** Starting vSwitch table id ([tau]). *)
  fmatch : Gf_flow.Fmatch.t;  (** Match predicate + wildcard ([M], [omega]). *)
  priority : int;  (** Sub-traversal length ([rho]). *)
  commit : (Gf_flow.Field.t * int) list;  (** Header rewrites to replay. *)
  next : next;
  origin : origin;
}

type signature
(** The behavioural identity of a rule: everything except [origin].  Two
    rules with equal signatures are interchangeable in the cache, which is
    what enables cross-traversal sharing. *)

val signature : t -> signature
val same_rule : t -> t -> bool
(** Signature equality. *)

val pp : Format.formatter -> t -> unit
