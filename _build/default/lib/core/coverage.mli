(** Rule-space coverage: how many distinct end-to-end flow rules the cache
    contents can serve (the paper's Table 2 metric).

    For Megaflow, coverage is simply the number of entries.  For Gigaflow,
    sub-traversals compose: any tag-consistent chain of entries across the K
    tables is an implicit end-to-end rule, so coverage is the number of
    distinct chains from the entry tag to the terminal state — counted by a
    dynamic program over (table, tag) states with skip edges (a packet
    passes an LTM table it does not match). *)

val count : Ltm_cache.t -> entry_tag:int -> float
(** Number of end-to-end rule combinations currently reachable.  Float,
    because cross-products overflow 63-bit integers long before they stop
    being informative. *)

val brute_force : Ltm_cache.t -> entry_tag:int -> int
(** Exhaustive chain enumeration; exponential, only for tests on tiny
    caches. *)
