(** LTM rule creation from a partitioned traversal (paper section 4.2.3).

    For each sub-traversal the generated rule carries:
    - wildcard [omega] = union of the consulted wildcards of its lookups,
      re-based onto the segment-entry flow (bits of fields overwritten
      earlier in the segment are implied, not matched);
    - match predicate [M] = segment-entry flow AND [omega];
    - priority [rho] = number of tables spanned (the LTM criterion);
    - tag [tau] = id of the sub-traversal's first vSwitch table; the action
      updates the tag to the next expected table id, or emits the terminal
      decision for the final segment;
    - commit = the composition of the segment's set-field actions.

    Because each lookup's consulted wildcard already includes the
    unwildcarded bits of every higher-priority rule probed, the generated
    entries satisfy the paper's rule-dependency requirement: a cache hit can
    never shadow a higher-priority vSwitch rule. *)

val rules_of_partition :
  version:int ->
  Gf_pipeline.Traversal.t ->
  Partitioner.segment list ->
  Ltm_rule.t list
(** Segments must be contiguous, ordered and cover the whole traversal
    (which {!Partitioner.partition} guarantees); raises [Invalid_argument]
    otherwise.  [version] is the pipeline version recorded for
    revalidation. *)
