module Field = Gf_flow.Field
module Mask = Gf_flow.Mask
module Traversal = Gf_pipeline.Traversal

type scheme = Disjoint | Random | One_to_one

type segment = { first : int; last : int }

let segment_length s = s.last - s.first + 1

let step_fieldsets traversal =
  Array.map Traversal.step_fields traversal.Traversal.steps

(* Connected-overlap check.  Steps that consult no field (default hops)
   constrain nothing and never break coherence. *)
let coherent fieldsets ~first ~last =
  let idxs =
    List.filter
      (fun i -> not (Field.Set.is_empty fieldsets.(i)))
      (List.init (last - first + 1) (fun k -> first + k))
  in
  match idxs with
  | [] | [ _ ] -> true
  | seed :: _ ->
      (* BFS over the overlap graph. *)
      let visited = Hashtbl.create 8 in
      let queue = Queue.create () in
      Queue.add seed queue;
      Hashtbl.replace visited seed ();
      while not (Queue.is_empty queue) do
        let i = Queue.pop queue in
        List.iter
          (fun j ->
            if
              (not (Hashtbl.mem visited j))
              && not (Field.Set.disjoint fieldsets.(i) fieldsets.(j))
            then begin
              Hashtbl.replace visited j ();
              Queue.add j queue
            end)
          idxs
      done;
      List.for_all (Hashtbl.mem visited) idxs

(* Per-(first, last) segment score and tie-break penalty, precomputed.
   Score: length when the segment is coherent, 0 otherwise.  Penalty: the
   wildcard bits an incoherent segment's cache entry would carry — used to
   pick the least constraining merge when K forces boundary crossings. *)
let tables_of traversal =
  let n = Traversal.length traversal in
  let fieldsets = step_fieldsets traversal in
  let score = Array.make_matrix n n 0 in
  let penalty = Array.make_matrix n n 0 in
  for first = 0 to n - 1 do
    for last = first to n - 1 do
      if coherent fieldsets ~first ~last then
        score.(first).(last) <- last - first + 1
      else
        penalty.(first).(last) <-
          Mask.bits (Traversal.segment_wildcard traversal ~first ~last)
    done
  done;
  (score, penalty)

let evaluate traversal segments =
  let score, penalty = tables_of traversal in
  List.fold_left
    (fun (s, p) seg ->
      (s + score.(seg.first).(seg.last), p + penalty.(seg.first).(seg.last)))
    (0, 0) segments

(* (score, penalty) values ordered: higher score first, then lower
   penalty. *)
let better (s1, p1) (s2, p2) = s1 > s2 || (s1 = s2 && p1 < p2)

let disjoint_partition traversal ~max_segments =
  let n = Traversal.length traversal in
  let kmax = min max_segments n in
  let seg_score, seg_penalty = tables_of traversal in
  let dp = Array.make_matrix (n + 1) (kmax + 1) None in
  let parent = Array.make_matrix (n + 1) (kmax + 1) (-1) in
  dp.(0).(0) <- Some (0, 0);
  for i = 1 to n do
    for k = 1 to min kmax i do
      for j = k - 1 to i - 1 do
        match dp.(j).(k - 1) with
        | None -> ()
        | Some (s, p) ->
            let v = (s + seg_score.(j).(i - 1), p + seg_penalty.(j).(i - 1)) in
            let improves =
              match dp.(i).(k) with None -> true | Some cur -> better v cur
            in
            if improves then begin
              dp.(i).(k) <- Some v;
              parent.(i).(k) <- j
            end
      done
    done
  done;
  (* Fewest segments among the best (score, penalty): iterate k ascending
     and replace only on strict improvement. *)
  let best_k = ref 1 in
  for k = 2 to kmax do
    match (dp.(n).(k), dp.(n).(!best_k)) with
    | Some v, Some cur -> if better v cur then best_k := k
    | Some _, None -> best_k := k
    | None, _ -> ()
  done;
  let rec rebuild i k acc =
    if k = 0 then acc
    else
      let j = parent.(i).(k) in
      rebuild j (k - 1) ({ first = j; last = i - 1 } :: acc)
  in
  rebuild n !best_k []

let random_partition rng ~n ~max_segments =
  let kmax = min max_segments n in
  let m = 1 + Gf_util.Rng.int rng kmax in
  (* Choose m-1 distinct cut points among the n-1 gaps. *)
  let gaps = Array.init (n - 1) (fun i -> i + 1) in
  Gf_util.Rng.shuffle rng gaps;
  let cuts = Array.sub gaps 0 (min (m - 1) (n - 1)) in
  Array.sort compare cuts;
  let bounds = Array.to_list cuts @ [ n ] in
  let rec build start = function
    | [] -> []
    | b :: rest -> { first = start; last = b - 1 } :: build b rest
  in
  build 0 bounds

let one_to_one ~n ~max_segments =
  let kmax = min max_segments n in
  let head = List.init (kmax - 1) (fun i -> { first = i; last = i }) in
  head @ [ { first = kmax - 1; last = n - 1 } ]

let partition ?rng scheme ~max_segments traversal =
  if max_segments < 1 then invalid_arg "Partitioner.partition: max_segments < 1";
  let n = Traversal.length traversal in
  assert (n > 0);
  if n = 1 then [ { first = 0; last = 0 } ]
  else
    match scheme with
    | Disjoint -> disjoint_partition traversal ~max_segments
    | One_to_one -> one_to_one ~n ~max_segments
    | Random -> (
        match rng with
        | None -> invalid_arg "Partitioner.partition: Random requires ~rng"
        | Some rng -> random_partition rng ~n ~max_segments)

let brute_force_best traversal ~max_segments =
  let n = Traversal.length traversal in
  let seg_score, seg_penalty = tables_of traversal in
  let best = ref None in
  let rec go start count score penalty =
    if start = n then begin
      let v = (score, penalty, count) in
      let improves =
        match !best with
        | None -> true
        | Some (s, p, c) ->
            better (score, penalty) (s, p)
            || (score = s && penalty = p && count < c)
      in
      if improves then best := Some v
    end
    else if count < max_segments then
      for last = start to n - 1 do
        go (last + 1) (count + 1)
          (score + seg_score.(start).(last))
          (penalty + seg_penalty.(start).(last))
      done
  in
  go 0 0 0 0;
  match !best with Some v -> v | None -> (0, 0, 0)
