(* Tag state: Some table_id = expecting that vSwitch table; None = done. *)

let edges_of_cache cache =
  let k = (Ltm_cache.config cache).Config.tables in
  let edges = Array.make k [] in
  Ltm_cache.iter_rules cache (fun ~table stored ->
      let rule = stored.Ltm_table.rule in
      edges.(table) <- (rule.Ltm_rule.tag_in, rule.Ltm_rule.next) :: edges.(table));
  edges

let count cache ~entry_tag =
  let edges = edges_of_cache cache in
  (* ways maps a tag state to the number of distinct chains reaching it. *)
  let ways : (int option, float) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.replace ways (Some entry_tag) 1.0;
  Array.iter
    (fun table_edges ->
      let next_ways : (int option, float) Hashtbl.t = Hashtbl.create 16 in
      (* Skip edge: a packet may pass the table unmatched. *)
      Hashtbl.iter (fun tag w -> Hashtbl.replace next_ways tag w) ways;
      List.iter
        (fun (tag_in, next) ->
          match Hashtbl.find_opt ways (Some tag_in) with
          | None -> ()
          | Some w ->
              let dst =
                match next with
                | Ltm_rule.Next_tag tag -> Some tag
                | Ltm_rule.Done _ -> None
              in
              Hashtbl.replace next_ways dst
                (w +. Option.value ~default:0.0 (Hashtbl.find_opt next_ways dst)))
        table_edges;
      Hashtbl.reset ways;
      Hashtbl.iter (Hashtbl.replace ways) next_ways)
    edges;
  Option.value ~default:0.0 (Hashtbl.find_opt ways None)

let brute_force cache ~entry_tag =
  let edges = edges_of_cache cache in
  let k = Array.length edges in
  let rec go i tag =
    match tag with
    | None -> 1
    | Some tag_id ->
        if i >= k then 0
        else
          let skip = go (i + 1) (Some tag_id) in
          let matched =
            List.fold_left
              (fun acc (tag_in, next) ->
                if tag_in = tag_id then
                  acc
                  + go (i + 1)
                      (match next with
                      | Ltm_rule.Next_tag t -> Some t
                      | Ltm_rule.Done _ -> None)
                else acc)
              0 edges.(i)
          in
          skip + matched
  in
  go 0 (Some entry_tag)
