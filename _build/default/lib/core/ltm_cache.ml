module Action = Gf_pipeline.Action
module Flow = Gf_flow.Flow
module Cache_stats = Gf_cache.Cache_stats

type hit = { terminal : Action.terminal; out_flow : Flow.t; tables_matched : int }

type install_result = Installed of { fresh : int; shared : int } | Rejected

type t = {
  config : Config.t;
  tables : Ltm_table.t array;
  stats : Cache_stats.t;
}

let create config =
  (match Config.validate config with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Ltm_cache.create: " ^ msg));
  {
    config;
    tables =
      Array.init config.Config.tables (fun _ ->
          Ltm_table.create ~capacity:config.Config.table_capacity);
    stats = Cache_stats.create ();
  }

let config t = t.config
let stats t = t.stats

let occupancy t = Array.fold_left (fun acc table -> acc + Ltm_table.occupancy table) 0 t.tables

let table_occupancies t = Array.map Ltm_table.occupancy t.tables

let available_tables t =
  Array.fold_left (fun acc table -> if Ltm_table.is_full table then acc else acc + 1) 0 t.tables

let apply_commit commit flow =
  List.fold_left (fun f (field, v) -> Flow.set f field v) flow commit

let lookup t ~now ~entry_tag flow =
  let k = Array.length t.tables in
  let rec walk i tag flow matched work =
    if i >= k then (None, work)
    else begin
      let stored, w = Ltm_table.lookup t.tables.(i) ~tag flow in
      let work = work + w in
      match stored with
      | None -> walk (i + 1) tag flow matched work
      | Some s -> (
          s.Ltm_table.last_used <- now;
          let rule = s.Ltm_table.rule in
          let flow = apply_commit rule.Ltm_rule.commit flow in
          match rule.Ltm_rule.next with
          | Ltm_rule.Done terminal ->
              (Some { terminal; out_flow = flow; tables_matched = matched + 1 }, work)
          | Ltm_rule.Next_tag tag -> walk (i + 1) tag flow (matched + 1) work)
    end
  in
  let result, work = walk 0 entry_tag flow 0 0 in
  Cache_stats.record_lookup t.stats ~hit:(Option.is_some result);
  (result, work)

(* Placement planning: segments must land in strictly increasing table
   positions; segment i (0-based, m total) must sit at a position p with
   enough tables after it for the remaining segments (p <= K - (m - i)).
   Reuse of an identical entry is free; otherwise the first non-full
   feasible table is taken.  All-or-nothing. *)
let plan t rules =
  let k = Array.length t.tables in
  let m = List.length rules in
  if m > k then None
  else begin
    let placements = ref [] in
    let rec go i min_pos = function
      | [] -> Some (List.rev !placements)
      | rule :: rest -> (
          let max_pos = k - (m - i) in
          let rec find_reuse p =
            if p > max_pos then None
            else
              match Ltm_table.find_identical t.tables.(p) rule with
              | Some stored -> Some (p, `Reuse stored)
              | None -> find_reuse (p + 1)
          in
          let rec find_free p =
            if p > max_pos then None
            else if not (Ltm_table.is_full t.tables.(p)) then Some (p, `Fresh rule)
            else find_free (p + 1)
          in
          match
            match find_reuse min_pos with
            | Some r -> Some r
            | None -> find_free min_pos
          with
          | None -> None
          | Some (p, action) ->
              placements := (p, action) :: !placements;
              go (i + 1) (p + 1) rest)
    in
    go 0 0 rules
  end

let install t ~now rules =
  match plan t rules with
  | None ->
      t.stats.Cache_stats.rejected <- t.stats.Cache_stats.rejected + 1;
      Rejected
  | Some placements ->
      let fresh = ref 0 and shared = ref 0 in
      List.iter
        (fun (p, action) ->
          match action with
          | `Reuse stored ->
              stored.Ltm_table.shares <- stored.Ltm_table.shares + 1;
              stored.Ltm_table.last_used <- now;
              incr shared
          | `Fresh rule ->
              ignore (Ltm_table.insert t.tables.(p) ~now rule);
              incr fresh)
        placements;
      t.stats.Cache_stats.installs <- t.stats.Cache_stats.installs + !fresh;
      t.stats.Cache_stats.shared <- t.stats.Cache_stats.shared + !shared;
      Installed { fresh = !fresh; shared = !shared }

let expire t ~now ~max_idle =
  let total = ref 0 in
  Array.iter
    (fun table ->
      let victims =
        Ltm_table.fold table ~init:[] ~f:(fun acc stored ->
            if now -. stored.Ltm_table.last_used > max_idle then stored :: acc else acc)
      in
      List.iter (Ltm_table.remove table) victims;
      total := !total + List.length victims)
    t.tables;
  t.stats.Cache_stats.evictions <- t.stats.Cache_stats.evictions + !total;
  !total

(* Re-derive the rule a stored entry should be and compare signatures. *)
let revalidate_stored pipeline (stored : Ltm_table.stored) =
  let rule = stored.Ltm_table.rule in
  let origin = rule.Ltm_rule.origin in
  let prefix =
    Gf_pipeline.Executor.trace ~start:rule.Ltm_rule.tag_in
      ~max_steps:origin.Ltm_rule.length pipeline origin.Ltm_rule.parent_flow
  in
  let steps = prefix.Gf_pipeline.Executor.prefix_steps in
  let executed = Array.length steps in
  let consistent =
    executed = origin.Ltm_rule.length
    &&
    let next_ok =
      match (rule.Ltm_rule.next, prefix.Gf_pipeline.Executor.status) with
      | Ltm_rule.Done terminal, `Terminal terminal' ->
          Action.terminal_equal terminal terminal'
      | Ltm_rule.Next_tag tag, `More tag' -> tag = tag'
      | Ltm_rule.Done _, (`More _ | `Stuck _)
      | Ltm_rule.Next_tag _, (`Terminal _ | `Stuck _) ->
          false
    in
    next_ok
    &&
    let last = executed - 1 in
    let wildcard = Gf_pipeline.Traversal.wildcard_of_steps steps ~first:0 ~last in
    let fmatch = Gf_flow.Fmatch.v ~pattern:origin.Ltm_rule.parent_flow ~mask:wildcard in
    let commit = Gf_pipeline.Traversal.commit_of_steps steps ~first:0 ~last in
    Gf_flow.Fmatch.equal fmatch rule.Ltm_rule.fmatch && commit = rule.Ltm_rule.commit
  in
  (consistent, executed)

let revalidate t pipeline =
  let evicted = ref 0 and work = ref 0 in
  Array.iter
    (fun table ->
      let victims =
        Ltm_table.fold table ~init:[] ~f:(fun acc stored ->
            let consistent, executed = revalidate_stored pipeline stored in
            work := !work + executed;
            if consistent then acc else stored :: acc)
      in
      List.iter (Ltm_table.remove table) victims;
      evicted := !evicted + List.length victims)
    t.tables;
  t.stats.Cache_stats.evictions <- t.stats.Cache_stats.evictions + !evicted;
  (!evicted, !work)

let sharing_histogram t =
  let counts = Hashtbl.create 16 in
  Array.iter
    (fun table ->
      Ltm_table.iter table (fun stored ->
          let s = stored.Ltm_table.shares in
          Hashtbl.replace counts s (1 + Option.value ~default:0 (Hashtbl.find_opt counts s))))
    t.tables;
  Hashtbl.fold (fun shares n acc -> (shares, n) :: acc) counts []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let mean_sharing t =
  let total = ref 0 and n = ref 0 in
  Array.iter
    (fun table ->
      Ltm_table.iter table (fun stored ->
          total := !total + stored.Ltm_table.shares;
          incr n))
    t.tables;
  if !n = 0 then nan else float_of_int !total /. float_of_int !n

let iter_rules t f =
  Array.iteri (fun i table -> Ltm_table.iter table (fun stored -> f ~table:i stored)) t.tables

let clear t =
  Array.iteri
    (fun i _ ->
      t.tables.(i) <- Ltm_table.create ~capacity:t.config.Config.table_capacity)
    t.tables
