lib/core/rulegen.ml: Array Gf_flow Gf_pipeline List Ltm_rule Partitioner
