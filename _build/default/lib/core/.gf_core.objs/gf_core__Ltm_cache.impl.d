lib/core/ltm_cache.ml: Array Config Gf_cache Gf_flow Gf_pipeline Hashtbl List Ltm_rule Ltm_table Option
