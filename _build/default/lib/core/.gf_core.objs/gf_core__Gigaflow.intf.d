lib/core/gigaflow.mli: Config Gf_flow Gf_pipeline Ltm_cache Partitioner
