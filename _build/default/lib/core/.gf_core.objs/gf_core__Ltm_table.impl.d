lib/core/ltm_table.ml: Gf_classifier Hashtbl Ltm_rule Option
