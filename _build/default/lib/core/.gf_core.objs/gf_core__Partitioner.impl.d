lib/core/partitioner.ml: Array Gf_flow Gf_pipeline Gf_util Hashtbl List Queue
