lib/core/config.ml: Partitioner
