lib/core/ltm_cache.mli: Config Gf_cache Gf_flow Gf_pipeline Ltm_rule Ltm_table
