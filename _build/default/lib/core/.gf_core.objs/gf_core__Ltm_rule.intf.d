lib/core/ltm_rule.mli: Format Gf_flow Gf_pipeline
