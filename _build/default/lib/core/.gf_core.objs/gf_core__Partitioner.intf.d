lib/core/partitioner.mli: Gf_flow Gf_pipeline Gf_util
