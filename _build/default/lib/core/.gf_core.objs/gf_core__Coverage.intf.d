lib/core/coverage.mli: Ltm_cache
