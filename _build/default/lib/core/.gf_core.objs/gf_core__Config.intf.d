lib/core/config.mli: Partitioner
