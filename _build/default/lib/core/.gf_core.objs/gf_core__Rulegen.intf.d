lib/core/rulegen.mli: Gf_pipeline Ltm_rule Partitioner
