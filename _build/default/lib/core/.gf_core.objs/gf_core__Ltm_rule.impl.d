lib/core/ltm_rule.ml: Array Format Gf_flow Gf_pipeline List
