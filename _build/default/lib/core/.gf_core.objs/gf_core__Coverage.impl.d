lib/core/coverage.ml: Array Config Hashtbl List Ltm_cache Ltm_rule Ltm_table Option
