lib/core/ltm_table.mli: Gf_flow Ltm_rule
