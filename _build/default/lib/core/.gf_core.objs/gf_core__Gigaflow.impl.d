lib/core/gigaflow.ml: Array Config Gf_pipeline Gf_util List Ltm_cache Partitioner Rulegen
