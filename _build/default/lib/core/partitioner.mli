(** Sub-traversal partition generation (paper section 4.2.2).

    A partition cuts a traversal of N lookups into at most K contiguous
    segments.  The paper's Disjoint Partitioning (DP) scores a segment by
    its length when the fields it consults form one overlapping group, and
    by 0 when the segment straddles a disjoint-field boundary; the optimal
    partition maximises the total score, which simultaneously (1) separates
    disjoint field sets into different cache tables — maximising
    cross-product rule coverage — and (2) prefers longer sub-traversals —
    minimising entries per traversal.

    When K < the number of natural field groups, some boundary-crossing
    merge is unavoidable and several partitions tie on score.  Ties are
    broken by the total number of match bits carried by incoherent
    segments (fewer constrained bits ⇒ the merged entry is shared by more
    flows), and then by segment count.

    Two baseline schemes are provided for the paper's Fig. 16 ablation:
    random contiguous cuts (RND) and the ideal 1-1 mapping (one segment per
    vSwitch table). *)

type scheme =
  | Disjoint  (** the paper's DP algorithm *)
  | Random  (** uniformly random contiguous partition into <= K segments *)
  | One_to_one
      (** one segment per lookup; if the traversal is longer than K the tail
          collapses into the final segment *)

type segment = { first : int; last : int }
(** Inclusive step-index range within the traversal. *)

val segment_length : segment -> int

val step_fieldsets : Gf_pipeline.Traversal.t -> Gf_flow.Field.Set.t array
(** The consulted-field set of each lookup — the input to coherence
    scoring. *)

val coherent : Gf_flow.Field.Set.t array -> first:int -> last:int -> bool
(** True when the segment's steps form a connected overlap graph (an edge
    joins two steps sharing a consulted field): the segment does not cross a
    disjoint-field boundary. Empty-field steps (pure default hops) connect
    to anything — they constrain no header bits. *)

val evaluate : Gf_pipeline.Traversal.t -> segment list -> int * int
(** [(score, penalty)]: score = sum over segments of (length if coherent
    else 0); penalty = total wildcard bits of incoherent segments. *)

val partition :
  ?rng:Gf_util.Rng.t ->
  scheme ->
  max_segments:int ->
  Gf_pipeline.Traversal.t ->
  segment list
(** Cut the traversal into 1..max_segments contiguous segments covering all
    steps.  [max_segments] must be >= 1.  [rng] is required for [Random].
    For [Disjoint] the result maximises score, then minimises penalty, then
    segment count.  O(N^2 K) dynamic program (N <= 256). *)

val brute_force_best : Gf_pipeline.Traversal.t -> max_segments:int -> int * int * int
(** Exhaustive search over all partitions: the lexicographically best
    (score, -penalty, -segments), returned as (score, penalty, segments).
    Exponential; only for property tests on small N. *)
