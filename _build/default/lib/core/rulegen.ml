module Fmatch = Gf_flow.Fmatch
module Traversal = Gf_pipeline.Traversal

let check_cover traversal segments =
  let n = Traversal.length traversal in
  let rec go expected = function
    | [] ->
        if expected <> n then invalid_arg "Rulegen: segments do not cover traversal"
    | s :: rest ->
        if s.Partitioner.first <> expected || s.Partitioner.last < s.Partitioner.first
        then invalid_arg "Rulegen: segments not contiguous"
        else go (s.Partitioner.last + 1) rest
  in
  go 0 segments

let rules_of_partition ~version traversal segments =
  check_cover traversal segments;
  let steps = traversal.Traversal.steps in
  let n = Array.length steps in
  List.map
    (fun { Partitioner.first; last } ->
      let entry_flow = steps.(first).Traversal.flow_in in
      let wildcard = Traversal.segment_wildcard traversal ~first ~last in
      let fmatch = Fmatch.v ~pattern:entry_flow ~mask:wildcard in
      let commit = Traversal.segment_commit traversal ~first ~last in
      let next =
        if last = n - 1 then Ltm_rule.Done traversal.Traversal.terminal
        else Ltm_rule.Next_tag steps.(last + 1).Traversal.table_id
      in
      {
        Ltm_rule.tag_in = steps.(first).Traversal.table_id;
        fmatch;
        priority = last - first + 1;
        commit;
        next;
        origin = { parent_flow = entry_flow; length = last - first + 1; version };
      })
    segments
