module Fmatch = Gf_flow.Fmatch
module Action = Gf_pipeline.Action

type next = Next_tag of int | Done of Action.terminal

type origin = { parent_flow : Gf_flow.Flow.t; length : int; version : int }

type t = {
  tag_in : int;
  fmatch : Fmatch.t;
  priority : int;
  commit : (Gf_flow.Field.t * int) list;
  next : next;
  origin : origin;
}

type signature = {
  sig_tag_in : int;
  sig_pattern : int array;
  sig_mask : int array;
  sig_priority : int;
  sig_commit : (int * int) list;
  sig_next : next;
}

let signature t =
  {
    sig_tag_in = t.tag_in;
    sig_pattern = Gf_flow.Flow.to_array (Fmatch.pattern t.fmatch);
    sig_mask =
      Array.map
        (fun f -> Gf_flow.Mask.get (Fmatch.mask t.fmatch) f)
        Gf_flow.Field.all;
    sig_priority = t.priority;
    sig_commit = List.map (fun (f, v) -> (Gf_flow.Field.index f, v)) t.commit;
    sig_next = t.next;
  }

let same_rule a b = signature a = signature b

let pp_next fmt = function
  | Next_tag tag -> Format.fprintf fmt "tag:=%d" tag
  | Done terminal -> Format.fprintf fmt "done(%a)" Action.pp_terminal terminal

let pp fmt t =
  Format.fprintf fmt "[tau=%d rho=%d %a" t.tag_in t.priority Fmatch.pp t.fmatch;
  List.iter
    (fun (f, v) -> Format.fprintf fmt " set %s=%#x" (Gf_flow.Field.name f) v)
    t.commit;
  Format.fprintf fmt " %a]" pp_next t.next
