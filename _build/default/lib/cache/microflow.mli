(** The exact-match (Microflow) cache: first level of the OVS cache
    hierarchy, capturing temporal locality.

    Keyed on the full header vector; one lookup, no wildcards.  Entries
    expire after [max_idle] of disuse and are evicted LRU when the cache is
    full. *)

type hit = {
  terminal : Gf_pipeline.Action.terminal;
  out_flow : Gf_flow.Flow.t;
}

type t

val create : capacity:int -> t
val capacity : t -> int
val occupancy : t -> int
val stats : t -> Cache_stats.t

val lookup : t -> now:float -> Gf_flow.Flow.t -> hit option
(** Refreshes the entry's last-used time on a hit. *)

val install : t -> now:float -> Gf_flow.Flow.t -> hit -> unit
(** Evicts the least recently used entry if full; replaces an existing entry
    for the same flow. *)

val expire : t -> now:float -> max_idle:float -> int
(** Remove entries idle longer than [max_idle]; returns how many. *)

val invalidate_all : t -> int
(** Flush (e.g. on any pipeline rule change — exact-match entries carry no
    dependency information, so OVS-style full invalidation is the only safe
    response). Returns how many entries were dropped. *)
