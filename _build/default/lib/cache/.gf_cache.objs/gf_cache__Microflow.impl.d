lib/cache/microflow.ml: Cache_stats Gf_flow Gf_pipeline Hashtbl List
