lib/cache/cache_stats.ml: Format
