lib/cache/megaflow.mli: Cache_stats Gf_classifier Gf_flow Gf_pipeline
