lib/cache/microflow.mli: Cache_stats Gf_flow Gf_pipeline
