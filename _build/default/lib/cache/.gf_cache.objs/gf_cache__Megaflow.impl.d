lib/cache/megaflow.ml: Array Cache_stats Gf_classifier Gf_flow Gf_pipeline Hashtbl List
