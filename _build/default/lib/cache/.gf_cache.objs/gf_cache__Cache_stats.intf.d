lib/cache/cache_stats.mli: Format
