type estimate = {
  luts_pct : float;
  ffs_pct : float;
  bram_pct : float;
  power_w : float;
}

(* Anchor point: the paper's 4 x 8K configuration. *)
let ref_tables = 4.0
let ref_entries = 4.0 *. 8192.0

(* Fixed shell (OpenNIC, MACs, PCIe DMA) vs per-table parser/match logic,
   split so the anchor reproduces the paper's figures. *)
let lut_base = 23.0
let lut_per_table = 6.0
let ff_base = 17.0
let ff_per_table = 4.0
let bram_base = 9.0
let bram_per_entry = 40.0 /. ref_entries
let power_base = 18.0
let power_per_table = 2.5
let power_per_entry = 10.0 /. ref_entries

let estimate ~tables ~table_capacity =
  let t = float_of_int tables in
  let entries = float_of_int (tables * table_capacity) in
  ignore ref_tables;
  {
    luts_pct = lut_base +. (lut_per_table *. t);
    ffs_pct = ff_base +. (ff_per_table *. t);
    bram_pct = bram_base +. (bram_per_entry *. entries);
    power_w = power_base +. (power_per_table *. t) +. (power_per_entry *. entries);
  }

let fits e =
  e.luts_pct <= 100.0 && e.ffs_pct <= 100.0 && e.bram_pct <= 100.0 && e.power_w <= 75.0

let pp fmt e =
  Format.fprintf fmt "LUT %.0f%%, FF %.0f%%, BRAM/URAM %.0f%%, %.0f W" e.luts_pct
    e.ffs_pct e.bram_pct e.power_w
