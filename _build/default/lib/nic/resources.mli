(** FPGA resource and power occupancy model for the LTM pipeline.

    The paper's prototype (4 ternary MATs on an Alveo U250, P4SDNet) uses
    47% of LUTs, 33% of FFs, 49% of BRAM/URAM and 38 W (section 5).  This
    module scales those measurements with the cache geometry so
    configuration sweeps can report estimated occupancy: logic grows with
    the number of tables, memory with total entry bits (each entry stores
    ~2x its 139 match bits for value+mask plus action/priority state). *)

type estimate = {
  luts_pct : float;
  ffs_pct : float;
  bram_pct : float;
  power_w : float;
}

val estimate : tables:int -> table_capacity:int -> estimate

val fits : estimate -> bool
(** All resources <= 100% and power within the 75 W PCIe budget the paper
    cites. *)

val pp : Format.formatter -> estimate -> unit
