let write_entry_us = 1.8
let delete_entry_us = 0.9
let doorbell_us = 0.6

let batch_us ~ops =
  if ops <= 0 then 0.0 else doorbell_us +. (float_of_int ops *. write_entry_us)
