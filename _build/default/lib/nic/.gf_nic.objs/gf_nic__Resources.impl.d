lib/nic/resources.ml: Format
