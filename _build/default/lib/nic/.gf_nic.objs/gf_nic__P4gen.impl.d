lib/nic/p4gen.ml: Buffer Gf_core Printf
