lib/nic/latency.ml:
