lib/nic/latency.mli:
