lib/nic/pcie.ml:
