lib/nic/p4gen.mli: Gf_core
