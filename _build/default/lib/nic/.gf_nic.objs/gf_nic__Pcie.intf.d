lib/nic/pcie.mli:
