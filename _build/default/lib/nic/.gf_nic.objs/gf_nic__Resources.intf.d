lib/nic/resources.mli: Format
