let ltm_table_name k = Printf.sprintf "gf%d" k

(* The emitted program mirrors the paper's Fig. 6: every LTM table performs
   an exact match on the 8-bit table tag and ternary matches on the ingress
   port and the standard L2/L3/L4 five-tuple fields; actions rewrite header
   fields, update the tag, and forward/drop.  A final stage punts packets
   whose tag never reached DONE to the slowpath port. *)
let emit ~tables ~table_capacity =
  let buf = Buffer.create 8192 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  line "/* Gigaflow LTM cache pipeline — generated; do not edit.";
  line "   Geometry: %d tables x %d entries (paper Fig. 6 table layout). */" tables
    table_capacity;
  line "#include <core.p4>";
  line "#include <v1model.p4>";
  line "";
  line "const bit<8>  TAG_DONE      = 0xFF;";
  line "const bit<9>  SLOWPATH_PORT = 510;";
  line "const bit<16> TYPE_IPV4     = 0x0800;";
  line "";
  line "header ethernet_t {";
  line "  bit<48> dst;";
  line "  bit<48> src;";
  line "  bit<16> ether_type;";
  line "}";
  line "";
  line "header vlan_t {";
  line "  bit<3>  pcp;";
  line "  bit<1>  cfi;";
  line "  bit<12> vid;";
  line "  bit<16> ether_type;";
  line "}";
  line "";
  line "header ipv4_t {";
  line "  bit<4>  version;";
  line "  bit<4>  ihl;";
  line "  bit<8>  diffserv;";
  line "  bit<16> total_len;";
  line "  bit<16> identification;";
  line "  bit<3>  flags;";
  line "  bit<13> frag_offset;";
  line "  bit<8>  ttl;";
  line "  bit<8>  protocol;";
  line "  bit<16> hdr_checksum;";
  line "  bit<32> src;";
  line "  bit<32> dst;";
  line "}";
  line "";
  line "header l4_t {";
  line "  bit<16> sport;";
  line "  bit<16> dport;";
  line "}";
  line "";
  line "struct headers_t {";
  line "  ethernet_t eth;";
  line "  vlan_t     vlan;";
  line "  ipv4_t     ipv4;";
  line "  l4_t       l4;";
  line "}";
  line "";
  line "struct meta_t {";
  line "  bit<8>  table_tag;   // tau: next expected vSwitch table";
  line "  bit<16> tp_src;";
  line "  bit<16> tp_dst;";
  line "  bit<1>  done;";
  line "}";
  line "";
  line "parser LtmParser(packet_in pkt, out headers_t hdr, inout meta_t meta,";
  line "                 inout standard_metadata_t std) {";
  line "  state start {";
  line "    pkt.extract(hdr.eth);";
  line "    transition select(hdr.eth.ether_type) {";
  line "      0x8100:    parse_vlan;";
  line "      TYPE_IPV4: parse_ipv4;";
  line "      default:   accept;";
  line "    }";
  line "  }";
  line "  state parse_vlan {";
  line "    pkt.extract(hdr.vlan);";
  line "    transition select(hdr.vlan.ether_type) {";
  line "      TYPE_IPV4: parse_ipv4;";
  line "      default:   accept;";
  line "    }";
  line "  }";
  line "  state parse_ipv4 {";
  line "    pkt.extract(hdr.ipv4);";
  line "    transition select(hdr.ipv4.protocol) {";
  line "      6:  parse_l4;";
  line "      17: parse_l4;";
  line "      default: accept;";
  line "    }";
  line "  }";
  line "  state parse_l4 {";
  line "    pkt.extract(hdr.l4);";
  line "    meta.tp_src = hdr.l4.sport;";
  line "    meta.tp_dst = hdr.l4.dport;";
  line "    transition accept;";
  line "  }";
  line "}";
  line "";
  line "control LtmIngress(inout headers_t hdr, inout meta_t meta,";
  line "                   inout standard_metadata_t std) {";
  line "  action set_ethernet(bit<48> smac, bit<48> dmac) {";
  line "    hdr.eth.src = smac;";
  line "    hdr.eth.dst = dmac;";
  line "  }";
  line "  action set_ip(bit<32> saddr, bit<32> daddr) {";
  line "    hdr.ipv4.src = saddr;";
  line "    hdr.ipv4.dst = daddr;";
  line "  }";
  line "  action set_transport(bit<16> sport, bit<16> dport) {";
  line "    meta.tp_src = sport;";
  line "    meta.tp_dst = dport;";
  line "  }";
  line "  action update_table_tag(bit<8> next_tag) {";
  line "    meta.table_tag = next_tag;";
  line "  }";
  line "  action forward(bit<9> port) {";
  line "    std.egress_spec = port;";
  line "    meta.table_tag = TAG_DONE;";
  line "    meta.done = 1;";
  line "  }";
  line "  action drop_packet() {";
  line "    mark_to_drop(std);";
  line "    meta.table_tag = TAG_DONE;";
  line "    meta.done = 1;";
  line "  }";
  for k = 1 to tables do
    line "";
    line "  // LTM table GF%d: exact match on the tag, ternary on headers" k;
    line "  table %s {" (ltm_table_name k);
    line "    key = {";
    line "      meta.table_tag    : exact;    // tau";
    line "      std.ingress_port  : ternary;  // in_port";
    line "      hdr.eth.src       : ternary;";
    line "      hdr.eth.dst       : ternary;";
    line "      hdr.eth.ether_type: ternary;";
    line "      hdr.vlan.vid      : ternary;";
    line "      hdr.ipv4.src      : ternary;";
    line "      hdr.ipv4.dst      : ternary;";
    line "      hdr.ipv4.protocol : ternary;";
    line "      meta.tp_src       : ternary;";
    line "      meta.tp_dst       : ternary;";
    line "    }";
    line "    actions = {";
    line "      set_ethernet;";
    line "      set_ip;";
    line "      set_transport;";
    line "      update_table_tag;";
    line "      forward;";
    line "      drop_packet;";
    line "      NoAction;";
    line "    }";
    line "    size = %d;" table_capacity;
    line "    default_action = NoAction();  // pass through; tag gating makes skips safe";
    line "  }"
  done;
  line "";
  line "  apply {";
  line "    meta.done = 0;";
  for k = 1 to tables do
    line "    if (meta.done == 0) { %s.apply(); }" (ltm_table_name k)
  done;
  line "    if (meta.done == 0) {";
  line "      // Incomplete tag chain: punt to the slowpath vSwitch.";
  line "      std.egress_spec = SLOWPATH_PORT;";
  line "    }";
  line "  }";
  line "}";
  line "";
  line "control LtmEgress(inout headers_t hdr, inout meta_t meta,";
  line "                  inout standard_metadata_t std) {";
  line "  apply {";
  line "    if (hdr.l4.isValid()) {";
  line "      hdr.l4.sport = meta.tp_src;";
  line "      hdr.l4.dport = meta.tp_dst;";
  line "    }";
  line "  }";
  line "}";
  line "";
  line "control LtmVerifyChecksum(inout headers_t hdr, inout meta_t meta) { apply {} }";
  line "control LtmComputeChecksum(inout headers_t hdr, inout meta_t meta) { apply {} }";
  line "";
  line "control LtmDeparser(packet_out pkt, in headers_t hdr) {";
  line "  apply {";
  line "    pkt.emit(hdr.eth);";
  line "    pkt.emit(hdr.vlan);";
  line "    pkt.emit(hdr.ipv4);";
  line "    pkt.emit(hdr.l4);";
  line "  }";
  line "}";
  line "";
  line "V1Switch(LtmParser(), LtmVerifyChecksum(), LtmIngress(), LtmEgress(),";
  line "         LtmComputeChecksum(), LtmDeparser()) main;";
  Buffer.contents buf

let emit_for (config : Gf_core.Config.t) =
  emit ~tables:config.Gf_core.Config.tables
    ~table_capacity:config.Gf_core.Config.table_capacity
