(** P4 code generation for the LTM SmartNIC pipeline.

    The paper's prototype (section 5) is ~350 lines of P4 compiled with
    P4SDNet to the Alveo U250: K homogeneous match-action tables, each doing
    an exact match on the table tag and ternary matches on the ten header
    fields of Fig. 6.  This module emits that program for any cache
    geometry, so the configuration used in simulation can be carried to a
    real P4 target (and so the artifact includes the hardware half of the
    design in reviewable form). *)

val ltm_table_name : int -> string
(** ["gf1"], ["gf2"], ... *)

val emit : tables:int -> table_capacity:int -> string
(** The complete P4_16 program: headers, parser, [tables] LTM stages wired
    in sequence with tag gating, deparser, and the miss-to-slowpath punt
    path.  Deterministic text (suitable for golden tests). *)

val emit_for : Gf_core.Config.t -> string
(** {!emit} with the geometry of a simulator configuration. *)
