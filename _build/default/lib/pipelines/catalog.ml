type info = {
  code : string;
  description : string;
  spec : Gf_pipeline.Builder.spec;
}

let all =
  [
    { code = Ofd.name; description = Ofd.description; spec = Ofd.spec };
    { code = Psc.name; description = Psc.description; spec = Psc.spec };
    { code = Ols.name; description = Ols.description; spec = Ols.spec };
    { code = Ant.name; description = Ant.description; spec = Ant.spec };
    { code = Otl.name; description = Otl.description; spec = Otl.spec };
  ]

let find code =
  let code = String.uppercase_ascii code in
  List.find_opt (fun info -> String.equal info.code code) all

let table_count info = List.length info.spec.Gf_pipeline.Builder.tables

let traversal_count info =
  List.length (Gf_pipeline.Builder.unique_paths info.spec)

let instantiate info = Gf_pipeline.Builder.instantiate info.spec
