(** OLS — the OVN logical switch pipeline (ovn-northd's ls_in/ls_out
    stages), which manages virtual network topologies with logical segments
    on top of OVS; paper Table 1: 30 tables, 23 unique traversals.

    Tables 0-19 model the ingress (ls_in) stages — port security, FDB,
    pre-ACL/ACL, load balancing, ARP/DHCP/DNS responders, L2 lookup — and
    tables 20-29 the egress (ls_out) stages.  Traversals are the distinct
    stage combinations OVN datapath flows exhibit (policied vs plain pods,
    load-balanced services, responders, drops, ...). *)

open Gf_flow.Field
module B = Gf_pipeline.Builder

let name = "OLS"
let description = "OVN logical switch pipeline (OVN ls_in/ls_out stages)"

(* Ingress stages. *)
let t_port_sec_l2 = 0
let t_port_sec_ip = 1
let t_port_sec_nd = 2
let t_lookup_fdb = 3
let t_put_fdb = 4
let t_pre_acl = 5
let t_pre_lb = 6
let t_pre_stateful = 7
let t_acl_hint = 8
let t_acl = 9
let t_qos_mark = 10
let t_lb = 11
let t_stateful = 12
let t_arp_rsp = 13
let t_dhcp_opts = 14
let t_dhcp_rsp = 15
let t_dns_lkup = 16
let t_dns_rsp = 17
let t_ext_port = 18
let t_l2_lkup = 19

(* Egress stages. *)
let t_out_pre_lb = 20
let t_out_pre_acl = 21
let t_out_pre_stateful = 22
let t_out_lb = 23
let t_out_acl_hint = 24
let t_out_acl = 25
let t_out_qos = 26
let t_out_stateful = 27
let t_out_port_sec_ip = 28
let t_out_port_sec_l2 = 29

let spec : B.spec =
  {
    B.spec_name = name;
    entry_table = t_port_sec_l2;
    tables =
      [
        { B.table_id = t_port_sec_l2; table_name = "ls_in_port_sec_l2"; fields = [ In_port; Eth_src; Vlan ] };
        { B.table_id = t_port_sec_ip; table_name = "ls_in_port_sec_ip"; fields = [ Eth_src; Ip_src ] };
        { B.table_id = t_port_sec_nd; table_name = "ls_in_port_sec_nd"; fields = [ Eth_src; Eth_type ] };
        { B.table_id = t_lookup_fdb; table_name = "ls_in_lookup_fdb"; fields = [ Eth_src ] };
        { B.table_id = t_put_fdb; table_name = "ls_in_put_fdb"; fields = [ Eth_src ] };
        { B.table_id = t_pre_acl; table_name = "ls_in_pre_acl"; fields = [ Ip_src; Ip_dst ] };
        { B.table_id = t_pre_lb; table_name = "ls_in_pre_lb"; fields = [ Ip_dst; Ip_proto ] };
        { B.table_id = t_pre_stateful; table_name = "ls_in_pre_stateful"; fields = [ Ip_proto ] };
        { B.table_id = t_acl_hint; table_name = "ls_in_acl_hint"; fields = [ Ip_proto ] };
        { B.table_id = t_acl; table_name = "ls_in_acl"; fields = [ Ip_src; Ip_dst; Ip_proto; Tp_src; Tp_dst ] };
        { B.table_id = t_qos_mark; table_name = "ls_in_qos_mark"; fields = [ Ip_src; Ip_proto ] };
        { B.table_id = t_lb; table_name = "ls_in_lb"; fields = [ Ip_dst; Ip_proto; Tp_dst ] };
        { B.table_id = t_stateful; table_name = "ls_in_stateful"; fields = [ Ip_proto ] };
        { B.table_id = t_arp_rsp; table_name = "ls_in_arp_rsp"; fields = [ Eth_type; Ip_dst ] };
        { B.table_id = t_dhcp_opts; table_name = "ls_in_dhcp_options"; fields = [ Ip_proto; Tp_dst ] };
        { B.table_id = t_dhcp_rsp; table_name = "ls_in_dhcp_response"; fields = [ Ip_proto; Tp_dst ] };
        { B.table_id = t_dns_lkup; table_name = "ls_in_dns_lookup"; fields = [ Ip_proto; Tp_dst ] };
        { B.table_id = t_dns_rsp; table_name = "ls_in_dns_response"; fields = [ Ip_proto; Tp_dst ] };
        { B.table_id = t_ext_port; table_name = "ls_in_external_port"; fields = [ In_port; Eth_type ] };
        { B.table_id = t_l2_lkup; table_name = "ls_in_l2_lkup"; fields = [ Eth_dst ] };
        { B.table_id = t_out_pre_lb; table_name = "ls_out_pre_lb"; fields = [ Ip_dst; Ip_proto ] };
        { B.table_id = t_out_pre_acl; table_name = "ls_out_pre_acl"; fields = [ Ip_src; Ip_dst ] };
        { B.table_id = t_out_pre_stateful; table_name = "ls_out_pre_stateful"; fields = [ Ip_proto ] };
        { B.table_id = t_out_lb; table_name = "ls_out_lb"; fields = [ Ip_dst; Ip_proto; Tp_dst ] };
        { B.table_id = t_out_acl_hint; table_name = "ls_out_acl_hint"; fields = [ Ip_proto ] };
        { B.table_id = t_out_acl; table_name = "ls_out_acl"; fields = [ Ip_src; Ip_dst; Ip_proto; Tp_src; Tp_dst ] };
        { B.table_id = t_out_qos; table_name = "ls_out_qos"; fields = [ Ip_dst; Ip_proto ] };
        { B.table_id = t_out_stateful; table_name = "ls_out_stateful"; fields = [ Ip_proto ] };
        { B.table_id = t_out_port_sec_ip; table_name = "ls_out_port_sec_ip"; fields = [ Eth_dst; Ip_dst ] };
        { B.table_id = t_out_port_sec_l2; table_name = "ls_out_port_sec_l2"; fields = [ Eth_dst; Vlan ] };
      ];
    traversals =
      (let hop table hop_fields = { B.table; hop_fields } in
       let psl2 = hop t_port_sec_l2 [ In_port; Eth_src ] in
       let psl2v = hop t_port_sec_l2 [ In_port; Eth_src; Vlan ] in
       let psip = hop t_port_sec_ip [ Eth_src; Ip_src ] in
       let psnd = hop t_port_sec_nd [ Eth_src; Eth_type ] in
       let fdb = hop t_lookup_fdb [ Eth_src ] in
       let putfdb = hop t_put_fdb [ Eth_src ] in
       let pre_acl = hop t_pre_acl [ Ip_dst ] in
       let pre_lb = hop t_pre_lb [ Ip_dst; Ip_proto ] in
       let pre_st = hop t_pre_stateful [] in
       let acl_hint = hop t_acl_hint [] in
       let acl5 = hop t_acl [ Ip_proto; Tp_dst ] in
       let acl_l4 = hop t_acl [ Ip_proto; Tp_src; Tp_dst ] in
       let qos = hop t_qos_mark [ Ip_src; Ip_proto ] in
       let lb = hop t_lb [ Ip_dst; Ip_proto; Tp_dst ] in
       let stateful = hop t_stateful [] in
       let arp = hop t_arp_rsp [ Eth_type; Ip_dst ] in
       let dhcp = hop t_dhcp_opts [ Ip_proto; Tp_dst ] in
       let dhcp_rsp = hop t_dhcp_rsp [ Ip_proto; Tp_dst ] in
       let dns = hop t_dns_lkup [ Ip_proto; Tp_dst ] in
       let dns_rsp = hop t_dns_rsp [ Ip_proto; Tp_dst ] in
       let ext = hop t_ext_port [ In_port; Eth_type ] in
       let l2 = hop t_l2_lkup [ Eth_dst ] in
       let o_pre_lb = hop t_out_pre_lb [ Ip_dst; Ip_proto ] in
       let o_pre_acl = hop t_out_pre_acl [ Ip_dst ] in
       let o_pre_st = hop t_out_pre_stateful [] in
       let o_lb = hop t_out_lb [ Ip_dst; Ip_proto; Tp_dst ] in
       let o_acl_hint = hop t_out_acl_hint [] in
       let o_acl = hop t_out_acl [ Ip_proto; Tp_dst ] in
       let o_acl_l4 = hop t_out_acl [ Ip_proto; Tp_src; Tp_dst ] in
       let o_qos = hop t_out_qos [ Ip_dst; Ip_proto ] in
       let o_st = hop t_out_stateful [] in
       let o_psip = hop t_out_port_sec_ip [ Eth_dst; Ip_dst ] in
       let o_psl2 = hop t_out_port_sec_l2 [ Eth_dst ] in
       List.map
         (fun hops -> { B.hops })
         [
           (* 1: plain known-MAC L2 forwarding *)
           [ psl2; fdb; l2; o_psl2 ];
           (* 2: L2 with FDB learning *)
           [ psl2; fdb; putfdb; l2; o_psl2 ];
           (* 3: VLAN-tagged L2 with ND port security *)
           [ psl2v; psnd; fdb; l2; o_psl2 ];
           (* 4: L2 with IP port security both ways *)
           [ psl2; psip; fdb; l2; o_psip; o_psl2 ];
           (* 5: ARP responder *)
           [ psl2; psnd; arp; l2; o_psl2 ];
           (* 6: DHCP request/response *)
           [ psl2; psip; pre_lb; dhcp; dhcp_rsp; l2; o_psl2 ];
           (* 7: DNS lookup/response *)
           [ psl2; psip; dns; dns_rsp; l2; o_psl2 ];
           (* 8: stateful ACL allow (ingress only) *)
           [ psl2; psip; pre_acl; pre_st; acl_hint; acl5; stateful; l2; o_psl2 ];
           (* 9: stateful ACL allow with egress ACL *)
           [ psl2; psip; pre_acl; pre_st; acl_hint; acl5; stateful; l2; o_pre_acl; o_pre_st; o_acl; o_psl2 ];
           (* 10: L4-only ACL allow *)
           [ psl2; psip; pre_acl; acl_l4; l2; o_psl2 ];
           (* 11: ACL drop at ingress *)
           [ psl2; psip; pre_acl; acl5 ];
           (* 12: load-balanced service (VIP DNAT) *)
           [ psl2; psip; pre_lb; pre_st; lb; stateful; l2; o_pre_lb; o_psl2 ];
           (* 13: load-balanced service with ingress ACL *)
           [ psl2; psip; pre_lb; pre_st; acl_hint; acl5; lb; stateful; l2; o_pre_lb; o_psl2 ];
           (* 14: LB with egress LB stage (return traffic) *)
           [ psl2; psip; pre_lb; pre_st; lb; stateful; l2; o_pre_lb; o_pre_st; o_lb; o_psl2 ];
           (* 15: QoS-marked traffic *)
           [ psl2; psip; pre_acl; qos; l2; o_qos; o_psl2 ];
           (* 16: QoS + ACL *)
           [ psl2; psip; pre_acl; acl_hint; acl5; qos; l2; o_qos; o_psl2 ];
           (* 17: external/localnet port path *)
           [ psl2; ext; l2; o_psl2 ];
           (* 18: external port with egress ACL *)
           [ psl2; ext; l2; o_pre_acl; o_acl_l4; o_psl2 ];
           (* 19: egress ACL drop *)
           [ psl2; psip; fdb; l2; o_pre_acl; o_pre_st; o_acl ];
           (* 20: unknown MAC flood *)
           [ psl2; fdb; putfdb; l2 ];
           (* 21: full stateful service chain (ACL + LB + QoS + egress checks) *)
           [ psl2; psip; pre_acl; pre_lb; pre_st; acl_hint; acl5; lb; stateful; l2; o_pre_lb; o_acl_hint; o_acl; o_st; o_psl2 ];
           (* 22: hint-assisted fast ACL (conntrack established) *)
           [ psl2; psip; pre_st; acl_hint; stateful; l2; o_psl2 ];
           (* 23: established egress-only check *)
           [ psl2; fdb; l2; o_pre_st; o_acl_hint; o_st; o_psl2 ];
         ]);
  }
