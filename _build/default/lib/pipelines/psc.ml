(** PSC — the L2L3-ACL Open vSwitch pipeline used in PISCES (Shahbaz et al.,
    SIGCOMM'16); paper Table 1: 7 tables, 2 unique traversals.

    Classic learning-switch-plus-router shape: port and VLAN admission, MAC
    learning, then either L2 forwarding or L3 routing guarded by a 5-tuple
    ACL, and a common egress table. *)

open Gf_flow.Field
module B = Gf_pipeline.Builder

let name = "PSC"
let description = "L2L3-ACL OVS pipeline as used in PISCES"

let t_port = 0
let t_vlan = 1
let t_mac_learn = 2
let t_l2_fwd = 3
let t_l3_route = 4
let t_acl = 5
let t_egress = 6

let spec : B.spec =
  {
    B.spec_name = name;
    entry_table = t_port;
    tables =
      [
        { B.table_id = t_port; table_name = "port_admission"; fields = [ In_port ] };
        { B.table_id = t_vlan; table_name = "vlan_ingress"; fields = [ In_port; Vlan ] };
        { B.table_id = t_mac_learn; table_name = "mac_learning"; fields = [ In_port; Eth_src ] };
        { B.table_id = t_l2_fwd; table_name = "l2_forwarding"; fields = [ Eth_dst ] };
        { B.table_id = t_l3_route; table_name = "l3_routing"; fields = [ Eth_type; Ip_dst ] };
        {
          B.table_id = t_acl;
          table_name = "acl";
          fields = [ Ip_src; Ip_dst; Ip_proto; Tp_src; Tp_dst ];
        };
        { B.table_id = t_egress; table_name = "egress"; fields = [ Eth_dst ] };
      ];
    traversals =
      [
        (* Pure L2 switching. *)
        {
          B.hops =
            [
              { B.table = t_port; hop_fields = [ In_port ] };
              { B.table = t_vlan; hop_fields = [ In_port; Vlan ] };
              { B.table = t_mac_learn; hop_fields = [ In_port; Eth_src ] };
              { B.table = t_l2_fwd; hop_fields = [ Eth_dst ] };
              { B.table = t_egress; hop_fields = [ Eth_dst ] };
            ];
        };
        (* Routed traffic through the ACL. *)
        {
          B.hops =
            [
              { B.table = t_port; hop_fields = [ In_port ] };
              { B.table = t_vlan; hop_fields = [ In_port; Vlan ] };
              { B.table = t_mac_learn; hop_fields = [ In_port; Eth_src ] };
              { B.table = t_l3_route; hop_fields = [ Eth_type; Ip_dst ] };
              { B.table = t_acl; hop_fields = [ Ip_proto; Tp_dst ] };
              { B.table = t_egress; hop_fields = [ Eth_dst ] };
            ];
        };
      ];
  }
