(** The catalog of real-world vSwitch pipelines (paper Table 1). *)

type info = {
  code : string;  (** Short code used throughout the paper: OFD, PSC, ... *)
  description : string;
  spec : Gf_pipeline.Builder.spec;
}

val all : info list
(** In the paper's Table 1 order: OFD, PSC, OLS, ANT, OTL. *)

val find : string -> info option
(** Case-insensitive lookup by code. *)

val table_count : info -> int
val traversal_count : info -> int
(** Number of distinct table-id paths among the templates. *)

val instantiate : info -> Gf_pipeline.Pipeline.t
