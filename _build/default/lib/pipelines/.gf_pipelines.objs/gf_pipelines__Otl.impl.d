lib/pipelines/otl.ml: Gf_flow Gf_pipeline List
