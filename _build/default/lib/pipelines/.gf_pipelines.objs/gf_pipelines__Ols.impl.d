lib/pipelines/ols.ml: Gf_flow Gf_pipeline List
