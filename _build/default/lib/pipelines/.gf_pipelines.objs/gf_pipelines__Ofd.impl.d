lib/pipelines/ofd.ml: Gf_flow Gf_pipeline
