lib/pipelines/otl.mli: Gf_pipeline
