lib/pipelines/ofd.mli: Gf_pipeline
