lib/pipelines/psc.mli: Gf_pipeline
