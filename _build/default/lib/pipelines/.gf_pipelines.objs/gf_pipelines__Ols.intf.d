lib/pipelines/ols.mli: Gf_pipeline
