lib/pipelines/catalog.ml: Ant Gf_pipeline List Ofd Ols Otl Psc String
