lib/pipelines/ant.mli: Gf_pipeline
