lib/pipelines/catalog.mli: Gf_pipeline
