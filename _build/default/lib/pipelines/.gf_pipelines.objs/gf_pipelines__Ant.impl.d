lib/pipelines/ant.ml: Gf_flow Gf_pipeline List
