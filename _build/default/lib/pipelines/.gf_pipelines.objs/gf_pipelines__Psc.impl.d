lib/pipelines/psc.ml: Gf_flow Gf_pipeline
