(** See {!Catalog} for the common access path; this module contributes one
    of the paper's Table 1 pipelines. *)

val name : string
(** The paper's short code. *)

val description : string

val spec : Gf_pipeline.Builder.spec
(** Tables (with declared match fields) and traversal templates; validated
    by the test suite against Table 1's table/traversal counts. *)
