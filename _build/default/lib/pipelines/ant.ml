(** ANT — the Antrea OVS pipeline implementing Kubernetes networking and
    NetworkPolicy; paper Table 1: 22 tables, 20 unique traversals.

    Models Antrea's documented table chain: classification, SpoofGuard, ARP,
    conntrack, egress NetworkPolicy stages, L3 forwarding with SNAT and
    service load balancing (kube-proxy replacement), ingress NetworkPolicy
    stages, conntrack commit and L2 output. *)

open Gf_flow.Field
module B = Gf_pipeline.Builder

let name = "ANT"
let description = "Antrea Kubernetes CNI OVS pipeline (NetworkPolicy + services)"

let t_classify = 0
let t_spoofguard = 1
let t_arp = 2
let t_ct_state = 3
let t_ct = 4
let t_anp_egress = 5
let t_egress_rule = 6
let t_egress_default = 7
let t_egress_metric = 8
let t_service_lb = 9
let t_endpoint_dnat = 10
let t_l3_fwd = 11
let t_snat = 12
let t_dec_ttl = 13
let t_anp_ingress = 14
let t_ingress_rule = 15
let t_ingress_default = 16
let t_ingress_metric = 17
let t_ct_commit = 18
let t_hairpin = 19
let t_l2_fwd = 20
let t_output = 21

let spec : B.spec =
  {
    B.spec_name = name;
    entry_table = t_classify;
    tables =
      [
        { B.table_id = t_classify; table_name = "classification"; fields = [ In_port ] };
        { B.table_id = t_spoofguard; table_name = "spoofguard"; fields = [ In_port; Eth_src; Ip_src ] };
        { B.table_id = t_arp; table_name = "arp_responder"; fields = [ Eth_type; Ip_dst ] };
        { B.table_id = t_ct_state; table_name = "conntrack_state"; fields = [ Ip_proto ] };
        { B.table_id = t_ct; table_name = "conntrack"; fields = [ Ip_src; Ip_dst; Ip_proto ] };
        { B.table_id = t_anp_egress; table_name = "antrea_policy_egress"; fields = [ Ip_src; Ip_dst; Ip_proto; Tp_dst ] };
        { B.table_id = t_egress_rule; table_name = "egress_rule"; fields = [ Ip_src; Ip_dst; Tp_dst ] };
        { B.table_id = t_egress_default; table_name = "egress_default"; fields = [ Ip_src; Ip_dst ] };
        { B.table_id = t_egress_metric; table_name = "egress_metric"; fields = [] };
        { B.table_id = t_l3_fwd; table_name = "l3_forwarding"; fields = [ Ip_dst ] };
        { B.table_id = t_snat; table_name = "snat"; fields = [ Ip_src; Ip_dst ] };
        { B.table_id = t_dec_ttl; table_name = "l3_dec_ttl"; fields = [] };
        { B.table_id = t_service_lb; table_name = "service_lb"; fields = [ Ip_dst; Ip_proto; Tp_dst ] };
        { B.table_id = t_endpoint_dnat; table_name = "endpoint_dnat"; fields = [ Ip_dst; Tp_dst ] };
        { B.table_id = t_anp_ingress; table_name = "antrea_policy_ingress"; fields = [ Ip_src; Ip_dst; Ip_proto; Tp_dst ] };
        { B.table_id = t_ingress_rule; table_name = "ingress_rule"; fields = [ Ip_src; Ip_dst; Tp_dst ] };
        { B.table_id = t_ingress_default; table_name = "ingress_default"; fields = [ Ip_src; Ip_dst ] };
        { B.table_id = t_ingress_metric; table_name = "ingress_metric"; fields = [] };
        { B.table_id = t_ct_commit; table_name = "conntrack_commit"; fields = [ Ip_proto ] };
        { B.table_id = t_hairpin; table_name = "hairpin"; fields = [ In_port ] };
        { B.table_id = t_l2_fwd; table_name = "l2_forwarding"; fields = [ Eth_dst ] };
        { B.table_id = t_output; table_name = "output"; fields = [ Eth_dst ] };
      ];
    traversals =
      (let hop table hop_fields = { B.table; hop_fields } in
       let cls = hop t_classify [ In_port ] in
       let sg = hop t_spoofguard [ In_port; Eth_src; Ip_src ] in
       let arp = hop t_arp [ Eth_type; Ip_dst ] in
       let cts = hop t_ct_state [] in
       let ct = hop t_ct [] in
       let anp_e = hop t_anp_egress [ Ip_dst; Ip_proto; Tp_dst ] in
       let er = hop t_egress_rule [ Ip_dst; Tp_dst ] in
       let ed = hop t_egress_default [ Ip_src ] in
       let em = hop t_egress_metric [] in
       let l3 = hop t_l3_fwd [ Ip_dst ] in
       let snat = hop t_snat [ Ip_src ] in
       let ttl = hop t_dec_ttl [] in
       let svc = hop t_service_lb [ Ip_dst; Ip_proto; Tp_dst ] in
       let dnat = hop t_endpoint_dnat [ Ip_dst; Tp_dst ] in
       let anp_i = hop t_anp_ingress [ Ip_src; Ip_proto; Tp_dst ] in
       let ir = hop t_ingress_rule [ Ip_src; Tp_dst ] in
       let id_ = hop t_ingress_default [ Ip_dst ] in
       let im = hop t_ingress_metric [] in
       let ctc = hop t_ct_commit [] in
       let hp = hop t_hairpin [ In_port ] in
       let l2 = hop t_l2_fwd [ Eth_dst ] in
       let out = hop t_output [ Eth_dst ] in
       List.map
         (fun hops -> { B.hops })
         [
           (* 1: ARP responder *)
           [ cls; arp ];
           (* 2: pod-to-pod same node, no policies *)
           [ cls; sg; cts; ct; l2; out ];
           (* 3: pod-to-pod with egress rule allow *)
           [ cls; sg; cts; ct; er; em; l2; out ];
           (* 4: pod-to-pod with ingress rule allow *)
           [ cls; sg; cts; ct; ir; im; l2; out ];
           (* 5: pod-to-pod with both policy directions *)
           [ cls; sg; cts; ct; er; em; ir; im; ctc; l2; out ];
           (* 6: Antrea-native egress policy allow *)
           [ cls; sg; cts; ct; anp_e; em; l2; out ];
           (* 7: Antrea-native ingress policy allow *)
           [ cls; sg; cts; ct; anp_i; im; l2; out ];
           (* 8: egress default deny *)
           [ cls; sg; cts; ct; er; ed ];
           (* 9: ingress default deny *)
           [ cls; sg; cts; ct; ir; id_ ];
           (* 10: routed pod-to-pod (different node) *)
           [ cls; sg; cts; ct; l3; ttl; l2; out ];
           (* 11: routed with egress policy *)
           [ cls; sg; cts; ct; er; em; l3; ttl; l2; out ];
           (* 12: pod-to-external with SNAT *)
           [ cls; sg; cts; ct; l3; snat; ttl; l2; out ];
           (* 13: service VIP, same-node endpoint *)
           [ cls; sg; cts; ct; svc; dnat; ctc; l2; out ];
           (* 14: service VIP, remote endpoint (routed) *)
           [ cls; sg; cts; ct; svc; dnat; l3; ttl; ctc; l2; out ];
           (* 15: service VIP guarded by ingress policy *)
           [ cls; sg; cts; ct; svc; dnat; ir; im; ctc; l2; out ];
           (* 16: hairpin service (client is endpoint) *)
           [ cls; sg; cts; ct; svc; dnat; hp; out ];
           (* 17: established connection fast path *)
           [ cls; sg; cts; l2; out ];
           (* 18: established routed fast path *)
           [ cls; sg; cts; l3; ttl; l2; out ];
           (* 19: node-to-pod (gateway port) *)
           [ cls; cts; ct; ir; im; l2; out ];
           (* 20: full policy + service chain *)
           [ cls; sg; cts; ct; anp_e; er; em; svc; dnat; anp_i; ir; im; ctc; l2; out ];
         ]);
  }
