(** OFD — the OpenFlow Data Plane Abstraction (OF-DPA) pipeline used to
    integrate hardware/software switches in CORD; paper Table 1: 10 tables,
    5 unique traversals.

    Models OF-DPA's fixed stage layout: ingress port, VLAN, termination MAC,
    unicast/multicast routing, bridging, policy ACL and the group stages. *)

open Gf_flow.Field
module B = Gf_pipeline.Builder

let name = "OFD"
let description = "OpenFlow Data Plane Abstraction (OF-DPA) pipeline (CORD)"

let t_port = 0
let t_vlan = 1
let t_term_mac = 2
let t_ucast = 3
let t_mcast = 4
let t_bridging = 5
let t_acl = 6
let t_l2_group = 7
let t_l3_group = 8
let t_egress = 9

let spec : B.spec =
  {
    B.spec_name = name;
    entry_table = t_port;
    tables =
      [
        { B.table_id = t_port; table_name = "ingress_port"; fields = [ In_port ] };
        { B.table_id = t_vlan; table_name = "vlan"; fields = [ In_port; Vlan ] };
        {
          B.table_id = t_term_mac;
          table_name = "termination_mac";
          fields = [ Vlan; Eth_dst; Eth_type ];
        };
        { B.table_id = t_ucast; table_name = "unicast_routing"; fields = [ Ip_dst ] };
        { B.table_id = t_mcast; table_name = "multicast_routing"; fields = [ Ip_dst ] };
        { B.table_id = t_bridging; table_name = "bridging"; fields = [ Eth_dst ] };
        {
          B.table_id = t_acl;
          table_name = "policy_acl";
          fields = [ Ip_src; Ip_dst; Ip_proto; Tp_src; Tp_dst ];
        };
        { B.table_id = t_l2_group; table_name = "l2_interface_group"; fields = [ Eth_dst ] };
        { B.table_id = t_l3_group; table_name = "l3_unicast_group"; fields = [ Eth_dst ] };
        { B.table_id = t_egress; table_name = "egress_vlan"; fields = [ In_port; Vlan ] };
      ];
    traversals =
      (let admission =
         [
           { B.table = t_port; hop_fields = [ In_port ] };
           { B.table = t_vlan; hop_fields = [ In_port; Vlan ] };
         ]
       in
       [
         (* Bridged traffic with a policy-ACL check. *)
         {
           B.hops =
             admission
             @ [
                 { B.table = t_bridging; hop_fields = [ Eth_dst ] };
                 { B.table = t_acl; hop_fields = [ Ip_proto; Tp_dst ] };
                 { B.table = t_l2_group; hop_fields = [ Eth_dst ] };
               ];
         };
         (* Unicast routed traffic. *)
         {
           B.hops =
             admission
             @ [
                 { B.table = t_term_mac; hop_fields = [ Vlan; Eth_dst; Eth_type ] };
                 { B.table = t_ucast; hop_fields = [ Ip_dst ] };
                 { B.table = t_acl; hop_fields = [ Ip_proto; Tp_dst ] };
                 { B.table = t_l3_group; hop_fields = [ Eth_dst ] };
               ];
         };
         (* Multicast routed traffic. *)
         {
           B.hops =
             admission
             @ [
                 { B.table = t_term_mac; hop_fields = [ Vlan; Eth_dst; Eth_type ] };
                 { B.table = t_mcast; hop_fields = [ Ip_dst ] };
                 { B.table = t_acl; hop_fields = [ Ip_src; Ip_proto ] };
                 { B.table = t_l3_group; hop_fields = [ Eth_dst ] };
               ];
         };
         (* Traffic stopped (or punted) by the policy ACL. *)
         {
           B.hops =
             admission
             @ [
                 { B.table = t_bridging; hop_fields = [ Eth_dst ] };
                 { B.table = t_acl; hop_fields = [ Ip_src; Ip_dst; Ip_proto ] };
               ];
         };
         (* VLAN cross-connect fast path. *)
         {
           B.hops = admission @ [ { B.table = t_egress; hop_fields = [ In_port; Vlan ] } ];
         };
       ]);
  }
