(** OTL — OpenFlow Table Type Patterns (TTP) configuring L2L3-ACL policies
    in OVS; paper Table 1: 8 tables, 11 unique traversals.

    The TTP exposes the same L2/L3/ACL stages as PSC but with two separate
    ACL tables (IP-level and L4-level) that traversals may include in any
    combination, which is what produces the larger unique-traversal count. *)

open Gf_flow.Field
module B = Gf_pipeline.Builder

let name = "OTL"
let description = "OpenFlow Table Type Patterns (TTP) L2L3-ACL OVS pipeline"

let t_port = 0
let t_vlan = 1
let t_l2_src = 2
let t_l2_dst = 3
let t_l3 = 4
let t_acl_ip = 5
let t_acl_l4 = 6
let t_output = 7

let spec : B.spec =
  {
    B.spec_name = name;
    entry_table = t_port;
    tables =
      [
        { B.table_id = t_port; table_name = "port"; fields = [ In_port ] };
        { B.table_id = t_vlan; table_name = "vlan"; fields = [ In_port; Vlan ] };
        { B.table_id = t_l2_src; table_name = "l2_src"; fields = [ In_port; Eth_src ] };
        { B.table_id = t_l2_dst; table_name = "l2_dst"; fields = [ Eth_dst ] };
        { B.table_id = t_l3; table_name = "l3_routing"; fields = [ Eth_type; Ip_dst ] };
        { B.table_id = t_acl_ip; table_name = "acl_ip"; fields = [ Ip_src; Ip_proto ] };
        { B.table_id = t_acl_l4; table_name = "acl_l4"; fields = [ Ip_proto; Tp_src; Tp_dst ] };
        { B.table_id = t_output; table_name = "output"; fields = [ Eth_dst ] };
      ];
    traversals =
      (let hop table hop_fields = { B.table; hop_fields } in
       let port = hop t_port [ In_port ] in
       let vlan = hop t_vlan [ In_port; Vlan ] in
       let l2s = hop t_l2_src [ In_port; Eth_src ] in
       let l2d = hop t_l2_dst [ Eth_dst ] in
       let l3 = hop t_l3 [ Eth_type; Ip_dst ] in
       let aip = hop t_acl_ip [ Ip_src; Ip_proto ] in
       let al4 = hop t_acl_l4 [ Ip_proto; Tp_src; Tp_dst ] in
       let al4d = hop t_acl_l4 [ Ip_proto; Tp_dst ] in
       let out = hop t_output [ Eth_dst ] in
       List.map
         (fun hops -> { B.hops })
         [
           (* L2 switching, with the four ACL combinations. *)
           [ port; vlan; l2s; l2d; out ];
           [ port; vlan; l2s; l2d; al4d; out ];
           [ port; vlan; l2s; l2d; aip; out ];
           [ port; vlan; l2s; l2d; aip; al4; out ];
           (* L3 routing, with the four ACL combinations. *)
           [ port; vlan; l2s; l3; out ];
           [ port; vlan; l2s; l3; al4d; out ];
           [ port; vlan; l2s; l3; aip; out ];
           [ port; vlan; l2s; l3; aip; al4; out ];
           (* VLAN flood/broadcast shortcut. *)
           [ port; vlan; out ];
           (* Untagged L2 traffic skipping VLAN admission. *)
           [ port; l2s; l2d; out ];
           (* Router-port ingress straight to L3 with an L4 ACL. *)
           [ port; l3; al4; out ];
         ]);
  }
