lib/flow/mask.ml: Array Field Flow Format Gf_util List Stdlib
