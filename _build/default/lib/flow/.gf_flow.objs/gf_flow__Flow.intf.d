lib/flow/flow.mli: Field Format
