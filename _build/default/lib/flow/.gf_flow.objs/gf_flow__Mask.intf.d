lib/flow/mask.mli: Field Flow Format
