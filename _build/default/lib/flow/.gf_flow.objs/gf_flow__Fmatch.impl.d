lib/flow/fmatch.ml: Array Field Flow Format Gf_util List Mask
