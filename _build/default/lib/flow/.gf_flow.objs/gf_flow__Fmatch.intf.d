lib/flow/fmatch.mli: Field Flow Format Mask
