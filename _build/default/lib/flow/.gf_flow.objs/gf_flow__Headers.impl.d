lib/flow/headers.ml: Field Flow List Printf String
