lib/flow/field.ml: Array Format Gf_util Stdlib String
