lib/flow/flow.ml: Array Field Format List Stdlib
