lib/flow/field.mli: Format Stdlib
