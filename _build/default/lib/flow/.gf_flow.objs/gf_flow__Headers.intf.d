lib/flow/headers.mli: Flow
