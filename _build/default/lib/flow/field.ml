type t =
  | In_port
  | Eth_src
  | Eth_dst
  | Eth_type
  | Vlan
  | Ip_src
  | Ip_dst
  | Ip_proto
  | Tp_src
  | Tp_dst

let all =
  [| In_port; Eth_src; Eth_dst; Eth_type; Vlan; Ip_src; Ip_dst; Ip_proto; Tp_src; Tp_dst |]

let count = Array.length all

let index = function
  | In_port -> 0
  | Eth_src -> 1
  | Eth_dst -> 2
  | Eth_type -> 3
  | Vlan -> 4
  | Ip_src -> 5
  | Ip_dst -> 6
  | Ip_proto -> 7
  | Tp_src -> 8
  | Tp_dst -> 9

let of_index i =
  if i < 0 || i >= count then invalid_arg "Field.of_index";
  all.(i)

let width = function
  | In_port -> 16
  | Eth_src -> 48
  | Eth_dst -> 48
  | Eth_type -> 16
  | Vlan -> 12
  | Ip_src -> 32
  | Ip_dst -> 32
  | Ip_proto -> 8
  | Tp_src -> 16
  | Tp_dst -> 16

let full_mask f = Gf_util.Bitops.mask_of_width (width f)

let name = function
  | In_port -> "in_port"
  | Eth_src -> "eth_src"
  | Eth_dst -> "eth_dst"
  | Eth_type -> "eth_type"
  | Vlan -> "vlan"
  | Ip_src -> "ip_src"
  | Ip_dst -> "ip_dst"
  | Ip_proto -> "ip_proto"
  | Tp_src -> "tp_src"
  | Tp_dst -> "tp_dst"

let of_name s =
  let rec go i =
    if i >= count then None
    else if String.equal (name all.(i)) s then Some all.(i)
    else go (i + 1)
  in
  go 0

let pp fmt f = Format.pp_print_string fmt (name f)

let compare a b = Stdlib.compare (index a) (index b)
let equal a b = index a = index b

module Set = struct
  include Stdlib.Set.Make (struct
    type nonrec t = t

    let compare = compare
  end)

  let pp fmt s =
    Format.fprintf fmt "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ",")
         pp)
      (elements s)

  let disjoint = disjoint
end
