(** The fixed header-field vocabulary of the datapath.

    Gigaflow's LTM table (paper Fig. 6) matches on ten standard header fields
    plus an exact-match table tag.  We model exactly those ten fields; every
    flow, wildcard and rule in the repository is a vector over this set. *)

type t =
  | In_port      (** ingress (virtual) port, 16 bits *)
  | Eth_src      (** Ethernet source MAC, 48 bits *)
  | Eth_dst      (** Ethernet destination MAC, 48 bits *)
  | Eth_type     (** EtherType, 16 bits *)
  | Vlan         (** VLAN id, 12 bits *)
  | Ip_src       (** IPv4 source, 32 bits *)
  | Ip_dst       (** IPv4 destination, 32 bits *)
  | Ip_proto     (** IPv4 protocol, 8 bits *)
  | Tp_src       (** L4 source port, 16 bits *)
  | Tp_dst       (** L4 destination port, 16 bits *)

val count : int
(** Number of fields (10). *)

val all : t array
(** All fields in index order. *)

val index : t -> int
(** Dense index in [\[0, count)]. *)

val of_index : int -> t
(** Inverse of [index]; raises [Invalid_argument] out of range. *)

val width : t -> int
(** Bit width of the field. *)

val full_mask : t -> int
(** All-ones mask of the field's width. *)

val name : t -> string
(** Short lowercase name, e.g. ["ip_dst"]. *)

val of_name : string -> t option

val pp : Format.formatter -> t -> unit

val compare : t -> t -> int
val equal : t -> t -> bool

(** Sets of fields; used to describe what a vSwitch table matches on and to
    compute disjointness between sub-traversals. *)
module Set : sig
  include Stdlib.Set.S with type elt = t

  val pp : Format.formatter -> t -> unit

  val disjoint : t -> t -> bool
  (** No common field. (Re-exported from [Stdlib.Set.S] for clarity.) *)
end
