(** Convenience constructors for realistic packet header vectors.

    Keeps workload generators and examples readable: build TCP/UDP/ARP-style
    flows without spelling out every field. *)

val ethertype_ipv4 : int
val ethertype_arp : int
val proto_tcp : int
val proto_udp : int
val proto_icmp : int

val ipv4 : string -> int
(** [ipv4 "10.0.0.1"] parses dotted-quad notation. Raises
    [Invalid_argument] on malformed input. *)

val ipv4_to_string : int -> string

val mac : string -> int
(** [mac "aa:bb:cc:00:11:22"] parses a MAC address. *)

val mac_to_string : int -> string

val tcp :
  ?in_port:int ->
  ?eth_src:int ->
  ?eth_dst:int ->
  ?vlan:int ->
  src:int ->
  dst:int ->
  sport:int ->
  dport:int ->
  unit ->
  Flow.t
(** An IPv4/TCP flow signature. [src]/[dst] are IPv4 addresses. *)

val udp :
  ?in_port:int ->
  ?eth_src:int ->
  ?eth_dst:int ->
  ?vlan:int ->
  src:int ->
  dst:int ->
  sport:int ->
  dport:int ->
  unit ->
  Flow.t

val l2 : ?in_port:int -> ?vlan:int -> eth_src:int -> eth_dst:int -> unit -> Flow.t
(** A plain L2 frame (no IP payload). *)
