let ethertype_ipv4 = 0x0800
let ethertype_arp = 0x0806
let proto_tcp = 6
let proto_udp = 17
let proto_icmp = 1

let ipv4 s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> (
      try
        let oct x =
          let v = int_of_string x in
          if v < 0 || v > 255 then failwith "octet" else v
        in
        (oct a lsl 24) lor (oct b lsl 16) lor (oct c lsl 8) lor oct d
      with _ -> invalid_arg ("Headers.ipv4: " ^ s))
  | _ -> invalid_arg ("Headers.ipv4: " ^ s)

let ipv4_to_string v =
  Printf.sprintf "%d.%d.%d.%d" ((v lsr 24) land 0xff) ((v lsr 16) land 0xff)
    ((v lsr 8) land 0xff) (v land 0xff)

let mac s =
  match String.split_on_char ':' s with
  | [ _; _; _; _; _; _ ] as parts -> (
      try
        List.fold_left
          (fun acc p ->
            let v = int_of_string ("0x" ^ p) in
            if v < 0 || v > 255 then failwith "byte" else (acc lsl 8) lor v)
          0 parts
      with _ -> invalid_arg ("Headers.mac: " ^ s))
  | _ -> invalid_arg ("Headers.mac: " ^ s)

let mac_to_string v =
  Printf.sprintf "%02x:%02x:%02x:%02x:%02x:%02x" ((v lsr 40) land 0xff)
    ((v lsr 32) land 0xff) ((v lsr 24) land 0xff) ((v lsr 16) land 0xff)
    ((v lsr 8) land 0xff) (v land 0xff)

let ip_flow ~proto ?(in_port = 1) ?(eth_src = 0x020000000001) ?(eth_dst = 0x020000000002)
    ?(vlan = 0) ~src ~dst ~sport ~dport () =
  Flow.make
    [
      (Field.In_port, in_port);
      (Field.Eth_src, eth_src);
      (Field.Eth_dst, eth_dst);
      (Field.Eth_type, ethertype_ipv4);
      (Field.Vlan, vlan);
      (Field.Ip_src, src);
      (Field.Ip_dst, dst);
      (Field.Ip_proto, proto);
      (Field.Tp_src, sport);
      (Field.Tp_dst, dport);
    ]

let tcp ?in_port ?eth_src ?eth_dst ?vlan ~src ~dst ~sport ~dport () =
  ip_flow ~proto:proto_tcp ?in_port ?eth_src ?eth_dst ?vlan ~src ~dst ~sport ~dport ()

let udp ?in_port ?eth_src ?eth_dst ?vlan ~src ~dst ~sport ~dport () =
  ip_flow ~proto:proto_udp ?in_port ?eth_src ?eth_dst ?vlan ~src ~dst ~sport ~dport ()

let l2 ?(in_port = 1) ?(vlan = 0) ~eth_src ~eth_dst () =
  Flow.make
    [
      (Field.In_port, in_port);
      (Field.Eth_src, eth_src);
      (Field.Eth_dst, eth_dst);
      (Field.Eth_type, ethertype_arp);
      (Field.Vlan, vlan);
    ]
