type t = int array
(* Invariant: length = Field.count; slot i holds the value of
   [Field.of_index i], truncated to the field width. *)

let zero = Array.make Field.count 0

let truncate f v = v land Field.full_mask f

let make bindings =
  let a = Array.make Field.count 0 in
  List.iter (fun (f, v) -> a.(Field.index f) <- truncate f v) bindings;
  a

let get t f = t.(Field.index f)

let set t f v =
  let a = Array.copy t in
  a.(Field.index f) <- truncate f v;
  a

let equal a b = a = b
let compare = Stdlib.compare

let hash t =
  (* FNV-1a over the slots; cheap and good enough for hashtable keys. *)
  let h = ref 0x3bf29ce484222325 in
  Array.iter
    (fun v ->
      h := (!h lxor v) * 0x100000001b3;
      h := !h land max_int)
    t;
  !h

let to_array t = Array.copy t

let of_array a =
  if Array.length a <> Field.count then invalid_arg "Flow.of_array";
  Array.mapi (fun i v -> truncate (Field.of_index i) v) a

let pp fmt t =
  let first = ref true in
  Array.iteri
    (fun i v ->
      if v <> 0 then begin
        if not !first then Format.pp_print_char fmt ' ';
        first := false;
        Format.fprintf fmt "%s=%#x" (Field.name (Field.of_index i)) v
      end)
    t;
  if !first then Format.pp_print_string fmt "<zero>"

let to_string t = Format.asprintf "%a" pp t

module Scratch = struct
  type nonrec t = int array

  let create () = Array.make Field.count 0

  let fill_masked s ~mask flow =
    for i = 0 to Field.count - 1 do
      s.(i) <- mask.(i) land flow.(i)
    done;
    s
end
