type t = int array
(* Same representation as Flow.t: slot i masks [Field.of_index i]. *)

let truncate f v = v land Field.full_mask f

let empty = Array.make Field.count 0

let full = Array.map Field.full_mask Field.all

let make bindings =
  let a = Array.make Field.count 0 in
  List.iter (fun (f, v) -> a.(Field.index f) <- truncate f v) bindings;
  a

let exact_fields fields =
  let a = Array.make Field.count 0 in
  List.iter (fun f -> a.(Field.index f) <- Field.full_mask f) fields;
  a

let prefix f len = make [ (f, Gf_util.Bitops.prefix_mask ~width:(Field.width f) len) ]

let get t f = t.(Field.index f)

let set t f v =
  let a = Array.copy t in
  a.(Field.index f) <- truncate f v;
  a

let union a b = Array.init Field.count (fun i -> a.(i) lor b.(i))
let inter a b = Array.init Field.count (fun i -> a.(i) land b.(i))

let equal a b = a = b
let compare = Stdlib.compare

let hash t =
  let h = ref 0x3bf29ce484222325 in
  Array.iter
    (fun v ->
      h := (!h lxor v) * 0x100000001b3;
      h := !h land max_int)
    t;
  !h

let is_empty t = Array.for_all (fun v -> v = 0) t

let bits t = Array.fold_left (fun acc v -> acc + Gf_util.Bitops.popcount v) 0 t

let fields t =
  let s = ref Field.Set.empty in
  Array.iteri (fun i v -> if v <> 0 then s := Field.Set.add (Field.of_index i) !s) t;
  !s

let disjoint a b =
  let rec go i = i >= Field.count || ((a.(i) = 0 || b.(i) = 0) && go (i + 1)) in
  go 0

let subsumes ~loose ~tight =
  let rec go i =
    i >= Field.count || (loose.(i) land tight.(i) = loose.(i) && go (i + 1))
  in
  go 0

let apply t flow =
  let fa = Flow.to_array flow in
  Flow.of_array (Array.init Field.count (fun i -> fa.(i) land t.(i)))

let apply_scratch t flow scratch = Flow.Scratch.fill_masked scratch ~mask:t flow

let matches t ~pattern flow =
  let pa = Flow.to_array pattern and fa = Flow.to_array flow in
  let rec go i =
    i >= Field.count || (pa.(i) land t.(i) = fa.(i) land t.(i) && go (i + 1))
  in
  go 0

let pp fmt t =
  let first = ref true in
  Array.iteri
    (fun i v ->
      if v <> 0 then begin
        if not !first then Format.pp_print_char fmt ' ';
        first := false;
        let f = Field.of_index i in
        if v = Field.full_mask f then Format.fprintf fmt "%s=*exact*" (Field.name f)
        else Format.fprintf fmt "%s=%#x" (Field.name f) v
      end)
    t;
  if !first then Format.pp_print_string fmt "<any>"

let to_string t = Format.asprintf "%a" pp t
