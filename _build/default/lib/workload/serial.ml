module Flow = Gf_flow.Flow
module Field = Gf_flow.Field

let ( let* ) = Result.bind

let flow_to_line flow =
  Flow.to_array flow |> Array.to_list
  |> List.map (Printf.sprintf "%x")
  |> String.concat " "

let flow_of_line line =
  let parts = String.split_on_char ' ' (String.trim line) |> List.filter (( <> ) "") in
  if List.length parts <> Field.count then
    Error (Printf.sprintf "expected %d fields, got %d" Field.count (List.length parts))
  else
    try
      Ok (Flow.of_array (Array.of_list (List.map (fun p -> int_of_string ("0x" ^ p)) parts)))
    with _ -> Error ("malformed flow line: " ^ line)

let flows_header = "# gigaflow-flows v1"

let flows_to_string flows =
  let buf = Buffer.create (Array.length flows * 48) in
  Buffer.add_string buf flows_header;
  Buffer.add_char buf '\n';
  Array.iter
    (fun f ->
      Buffer.add_string buf (flow_to_line f);
      Buffer.add_char buf '\n')
    flows;
  Buffer.contents buf

let nonempty_lines text =
  String.split_on_char '\n' text |> List.map String.trim |> List.filter (( <> ) "")

let flows_of_string text =
  match nonempty_lines text with
  | header :: rest when header = flows_header ->
      let* flows =
        List.fold_left
          (fun acc line ->
            let* acc = acc in
            let* f = flow_of_line line in
            Ok (f :: acc))
          (Ok []) rest
      in
      Ok (Array.of_list (List.rev flows))
  | _ -> Error "missing gigaflow-flows header"

let trace_header = "# gigaflow-trace v1"

let trace_to_string (t : Trace.t) =
  let buf = Buffer.create (Trace.packet_count t * 24) in
  Buffer.add_string buf trace_header;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Printf.sprintf "duration %.6f\n" t.Trace.duration);
  (* Flow table: the distinct flows, indexed by flow id. *)
  let flows = Array.make t.Trace.unique_flows None in
  Array.iter
    (fun (p : Trace.packet) ->
      if flows.(p.Trace.flow_id) = None then flows.(p.Trace.flow_id) <- Some p.Trace.flow)
    t.Trace.packets;
  Buffer.add_string buf (Printf.sprintf "flows %d\n" t.Trace.unique_flows);
  Array.iter
    (fun f ->
      Buffer.add_string buf (flow_to_line (Option.value ~default:Flow.zero f));
      Buffer.add_char buf '\n')
    flows;
  Buffer.add_string buf (Printf.sprintf "packets %d\n" (Trace.packet_count t));
  Array.iter
    (fun (p : Trace.packet) ->
      Buffer.add_string buf (Printf.sprintf "%.6f %d\n" p.Trace.time p.Trace.flow_id))
    t.Trace.packets;
  Buffer.contents buf

let trace_of_string text =
  match nonempty_lines text with
  | header :: rest when header = trace_header -> (
      let parse_kv key line =
        match String.split_on_char ' ' line with
        | [ k; v ] when k = key -> Ok v
        | _ -> Error (Printf.sprintf "expected %S line, got %S" key line)
      in
      match rest with
      | duration_line :: rest -> (
          let* duration_s = parse_kv "duration" duration_line in
          let* duration =
            match float_of_string_opt duration_s with
            | Some d -> Ok d
            | None -> Error "bad duration"
          in
          match rest with
          | flows_line :: rest ->
              let* nflows_s = parse_kv "flows" flows_line in
              let* nflows =
                match int_of_string_opt nflows_s with
                | Some n when n >= 0 -> Ok n
                | _ -> Error "bad flow count"
              in
              let rec take n acc = function
                | rest when n = 0 -> Ok (List.rev acc, rest)
                | [] -> Error "truncated flow table"
                | line :: rest ->
                    let* f = flow_of_line line in
                    take (n - 1) (f :: acc) rest
              in
              let* flow_list, rest = take nflows [] rest in
              let flows = Array.of_list flow_list in
              let* rest =
                match rest with
                | packets_line :: rest ->
                    let* _ = parse_kv "packets" packets_line in
                    Ok rest
                | [] -> Error "missing packets section"
              in
              let* packets =
                List.fold_left
                  (fun acc line ->
                    let* acc = acc in
                    match String.split_on_char ' ' line with
                    | [ time_s; id_s ] -> (
                        match (float_of_string_opt time_s, int_of_string_opt id_s) with
                        | Some time, Some flow_id when flow_id >= 0 && flow_id < nflows ->
                            Ok ({ Trace.time; flow_id; flow = flows.(flow_id) } :: acc)
                        | _ -> Error ("bad packet line: " ^ line))
                    | _ -> Error ("bad packet line: " ^ line))
                  (Ok []) rest
              in
              Ok
                {
                  Trace.packets = Array.of_list (List.rev packets);
                  unique_flows = nflows;
                  duration;
                }
          | [] -> Error "missing flows section")
      | [] -> Error "missing duration")
  | _ -> Error "missing gigaflow-trace header"

let save ~path data =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc data)

let load ~path =
  match open_in path with
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> Ok (really_input_string ic (in_channel_length ic)))
  | exception Sys_error e -> Error e
