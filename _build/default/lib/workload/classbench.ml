module Rng = Gf_util.Rng
module Zipf = Gf_util.Zipf
module Bitops = Gf_util.Bitops

type profile = {
  endpoints : int;
  subnets : int;
  services : int;
  ports : int;
  vlans : int;
  popularity : float;
  src_exact : float;
  src_wide : float;
  dst_exact : float;
  dst_wide : float;
  proto_any : float;
  tp_src_pinned : float;
  tp_dst_any : float;
  tail_src : float;  (* P(rule references a cold, near-unique source endpoint) *)
  tail_dst : float;
  tail_svc : float;
}

let acl_profile =
  {
    endpoints = 2048;
    subnets = 256;
    services = 512;
    ports = 48;
    vlans = 64;
    popularity = 0.9;
    src_exact = 0.12;
    src_wide = 0.06;
    dst_exact = 0.15;
    dst_wide = 0.06;
    proto_any = 0.12;
    tp_src_pinned = 0.02;
    tp_dst_any = 0.20;
    tail_src = 0.35;
    tail_dst = 0.35;
    tail_svc = 0.05;
  }

let firewall_profile =
  {
    endpoints = 768;
    subnets = 96;
    services = 256;
    ports = 8;
    vlans = 12;
    popularity = 1.05;
    src_exact = 0.15;
    src_wide = 0.25;
    dst_exact = 0.20;
    dst_wide = 0.20;
    proto_any = 0.25;
    tp_src_pinned = 0.05;
    tp_dst_any = 0.40;
    tail_src = 0.20;
    tail_dst = 0.20;
    tail_svc = 0.15;
  }

let ipsec_profile =
  {
    endpoints = 2048;
    subnets = 256;
    services = 128;
    ports = 16;
    vlans = 32;
    popularity = 0.7;
    src_exact = 0.60;
    src_wide = 0.02;
    dst_exact = 0.65;
    dst_wide = 0.02;
    proto_any = 0.05;
    tp_src_pinned = 0.15;
    tp_dst_any = 0.15;
    tail_src = 0.50;
    tail_dst = 0.50;
    tail_svc = 0.05;
  }

type rule = {
  ip_src : int * int;
  ip_dst : int * int;
  proto : int option;
  tp_src : int option;
  tp_dst : int option;
  eth_src : int;
  eth_dst : int;
  vlan : int;
  in_port : int;
}

type endpoint = { mac : int; ip : int; subnet : int; vlan : int; in_port : int }

type service = { svc_proto : int; svc_port : int }

type t = {
  rng : Rng.t;
  profile : profile;
  endpoint_pool : endpoint array;
  service_pool : service array;
  zipf_endpoint : Zipf.t;
  zipf_service : Zipf.t;
}

let well_known_ports = [| 22; 53; 80; 123; 179; 443; 3306; 5432; 6379; 8080; 8443; 9090 |]

(* Subnet s lives at 10.(s/256).(s mod 256).0/24, so /16 aggregates group
   256 consecutive subnets — a realistic nested-prefix hierarchy. *)
let subnet_base s = (10 lsl 24) lor ((s land 0xFFFF) lsl 8)

let create ?(profile = acl_profile) ~seed () =
  let rng = Rng.create seed in
  let p = profile in
  let endpoint_pool =
    Array.init p.endpoints (fun _ ->
        let subnet = Rng.int rng p.subnets in
        let host = 1 + Rng.int rng 254 in
        let mac = 0x020000000000 lor Rng.int rng (1 lsl 40) in
        {
          mac;
          ip = subnet_base subnet lor host;
          subnet;
          (* VLAN and ingress port correlate with the subnet, as in a real
             rack: one VLAN per subnet group, a few ports per VLAN. *)
          vlan = 10 + (subnet mod p.vlans);
          in_port = 1 + (((subnet * 7) + Rng.int rng 3) mod p.ports);
        })
  in
  let service_pool =
    Array.init p.services (fun i ->
        let svc_port =
          if i < Array.length well_known_ports then well_known_ports.(i)
          else 1024 + Rng.int rng 30000
        in
        let svc_proto = if Rng.bernoulli rng 0.75 then 6 else 17 in
        { svc_proto; svc_port })
  in
  {
    rng;
    profile = p;
    endpoint_pool;
    service_pool;
    zipf_endpoint = Zipf.create ~n:p.endpoints ~s:p.popularity;
    zipf_service = Zipf.create ~n:p.services ~s:p.popularity;
  }

let profile t = t.profile

let ip_constraint rng ~exact_p ~wide_p (e : endpoint) =
  let r = Rng.float rng 1.0 in
  if r < exact_p then (e.ip, 32)
  else if r < exact_p +. wide_p then
    (subnet_base e.subnet land Bitops.prefix_mask ~width:32 16, 16)
  else (subnet_base e.subnet, 24)

(* Cold-tail draws: near-unique components outside the hot pools, living in
   their own subnet range so they do not nest inside core prefixes. *)
let tail_endpoint t =
  let rng = t.rng in
  let p = t.profile in
  let subnet = p.subnets + Rng.int rng (65536 - p.subnets) in
  {
    mac = 0x020000000000 lor Rng.int rng (1 lsl 40);
    ip = subnet_base subnet lor (1 + Rng.int rng 254);
    subnet;
    vlan = 10 + (subnet mod p.vlans);
    in_port = 1 + (subnet * 7 mod p.ports);
  }

(* Tail services live in the ephemeral port range, core services below it —
   the standard registered/ephemeral split.  This keeps the cold tail
   excludable from hot-service cache entries with a single prefix bit. *)
let tail_service t =
  let rng = t.rng in
  {
    svc_proto = (if Rng.bernoulli rng 0.75 then 6 else 17);
    svc_port = 32768 + Rng.int rng 32768;
  }

let pick_rule t =
  let rng = t.rng in
  let p = t.profile in
  let src =
    if Rng.bernoulli rng p.tail_src then tail_endpoint t
    else t.endpoint_pool.(Zipf.sample t.zipf_endpoint rng)
  in
  let dst =
    if Rng.bernoulli rng p.tail_dst then tail_endpoint t
    else t.endpoint_pool.(Zipf.sample t.zipf_endpoint rng)
  in
  let svc =
    if Rng.bernoulli rng p.tail_svc then tail_service t
    else t.service_pool.(Zipf.sample t.zipf_service rng)
  in
  let proto =
    if Rng.bernoulli rng p.proto_any then None
    else if Rng.bernoulli rng 0.93 then Some svc.svc_proto
    else Some 1 (* a sprinkle of ICMP rules *)
  in
  let tp_src, tp_dst =
    match proto with
    | Some 1 | None -> (None, None)
    | Some _ ->
        ( (if Rng.bernoulli rng p.tp_src_pinned then
             Some t.service_pool.(Zipf.sample t.zipf_service rng).svc_port
           else None),
          if Rng.bernoulli rng p.tp_dst_any then None else Some svc.svc_port )
  in
  {
    ip_src = ip_constraint rng ~exact_p:p.src_exact ~wide_p:p.src_wide src;
    ip_dst = ip_constraint rng ~exact_p:p.dst_exact ~wide_p:p.dst_wide dst;
    proto;
    tp_src;
    tp_dst;
    eth_src = src.mac;
    eth_dst = dst.mac;
    vlan = src.vlan;
    in_port = src.in_port;
  }

let generate t n = Array.init n (fun _ -> pick_rule t)

(* Per-VLAN first-hop gateways: a handful of router MACs.  They live in a
   distinct locally-administered OUI (0x06...) so that an L2-lookup miss on
   a gateway-addressed frame is excluded from the endpoint MAC population
   (0x02...) by a short constant prefix — as in a real deployment where
   router MACs are recognisable, and important for cache-entry sharing. *)
let gateway_mac _t (rule : rule) = 0x06FFFF000000 lor (rule.vlan land 0xFF)

(* Fig. 4: average multiplicity of k-field sub-tuples over the 5-tuple
   (ip_src, ip_dst, proto, tp_src, tp_dst). *)
let five_tuple_sharing rules ~k =
  assert (k >= 1 && k <= 5);
  let project rule = function
    | 0 -> Printf.sprintf "s%d/%d" (fst rule.ip_src) (snd rule.ip_src)
    | 1 -> Printf.sprintf "d%d/%d" (fst rule.ip_dst) (snd rule.ip_dst)
    | 2 -> Printf.sprintf "p%s" (match rule.proto with Some p -> string_of_int p | None -> "*")
    | 3 -> Printf.sprintf "S%s" (match rule.tp_src with Some p -> string_of_int p | None -> "*")
    | 4 -> Printf.sprintf "D%s" (match rule.tp_dst with Some p -> string_of_int p | None -> "*")
    | _ -> assert false
  in
  let rec subsets start size =
    if size = 0 then [ [] ]
    else if start >= 5 then []
    else
      List.map (fun rest -> start :: rest) (subsets (start + 1) (size - 1))
      @ subsets (start + 1) size
  in
  let ratios =
    List.map
      (fun subset ->
        let counts = Hashtbl.create 1024 in
        Array.iter
          (fun rule ->
            let key = String.concat "|" (List.map (project rule) subset) in
            Hashtbl.replace counts key
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts key)))
          rules;
        float_of_int (Array.length rules) /. float_of_int (Hashtbl.length counts))
      (subsets 0 k)
  in
  List.fold_left ( +. ) 0.0 ratios /. float_of_int (List.length ratios)
