(** Plain-text serialization of workloads, so generated rulesets, flow sets
    and traces can be saved, inspected, diffed and replayed outside the
    process that generated them (pipelines themselves serialize via
    [Gf_pipeline.Ofp_text]).

    Formats are line-oriented and versioned by a header line; all functions
    are inverses of each other (round-trip tested). *)

val flows_to_string : Gf_flow.Flow.t array -> string
(** One flow per line: ten hexadecimal field values in {!Gf_flow.Field}
    index order. *)

val flows_of_string : string -> (Gf_flow.Flow.t array, string) result

val trace_to_string : Trace.t -> string
(** Header with flow table, then one [time flow_id] line per packet. *)

val trace_of_string : string -> (Trace.t, string) result

val save : path:string -> string -> unit
(** Write a serialized blob to a file. *)

val load : path:string -> (string, string) result
