module Rng = Gf_util.Rng
module Field = Gf_flow.Field
module Flow = Gf_flow.Flow
module Fmatch = Gf_flow.Fmatch
module Headers = Gf_flow.Headers
module Action = Gf_pipeline.Action
module Builder = Gf_pipeline.Builder
module Pipeline = Gf_pipeline.Pipeline
module Ofrule = Gf_pipeline.Ofrule
module Catalog = Gf_pipelines.Catalog

type locality = High | Low

let locality_name = function High -> "high" | Low -> "low"

type combo = { template : int; cb : Classbench.rule; weight : float }

(* What we know about a field while building a rule chain: the constraint a
   flow must satisfy to take this combo's path. *)
type constr = Exact of int | Prefix of int * int | Any

type t = {
  info : Catalog.info;
  pipeline : Pipeline.t;
  combos : combo array;
  entry_views : constr array array; (* per combo: per-field entry constraint *)
}

let pipeline t = t.pipeline
let info t = t.info
let combo_count t = Array.length t.combos
let combos t = t.combos
let rule_count t = Pipeline.rule_count t.pipeline

(* Deterministic derived values: rewrites must depend only on the matched
   components so identical components produce identical rules. *)
let mix a b =
  let h = (a * 0x9E3779B1) lxor (b * 0x85EBCA77) in
  let h = h lxor (h lsr 13) in
  abs h

let router_mac = 0x02000000FFFE
let gateway_ip = Headers.ipv4 "10.255.255.1"

(* Service backends depend on the service only (each service has its own
   backend set), keeping post-DNAT match diversity bounded by the service
   population. *)
let backend_ip cb =
  let p = Option.value ~default:80 cb.Classbench.tp_dst in
  (192 lsl 24) lor (168 lsl 16) lor (mix p 7 land 0xFFFF)

let backend_port cb =
  match cb.Classbench.tp_dst with
  | Some p -> 30000 + (mix p 3 mod 2768)
  | None -> 30080

let out_port_of cb = 1 + (mix cb.Classbench.eth_dst 11 mod 32)

(* Does the table name indicate a given role? *)
let name_has table_name subs =
  List.exists
    (fun sub ->
      let len = String.length sub and n = String.length table_name in
      let rec at i = i + len <= n && (String.sub table_name i len = sub || at (i + 1)) in
      at 0)
    subs

let is_router name = name_has name [ "rout"; "l3_forward"; "l3_fwd" ]
let is_lb name = name_has name [ "lb"; "dnat" ]
let is_snat name = name_has name [ "snat" ]
let is_deny name = name_has name [ "acl"; "default" ]
let is_arp name = name_has name [ "arp" ]

(* Build the ternary match of one hop from the current view, restricted to
   the hop's declared fields.  [Any]-constrained fields are skipped. *)
let hop_match view hop_fields =
  List.fold_left
    (fun fm field ->
      match view.(Field.index field) with
      | Any -> fm
      | Exact v ->
          Fmatch.with_prefix fm field ~value:v ~len:(Field.width field)
      | Prefix (v, len) -> Fmatch.with_prefix fm field ~value:v ~len)
    Fmatch.any hop_fields

let prefix_bits_of view hop_fields =
  List.fold_left
    (fun acc field ->
      match view.(Field.index field) with
      | Any -> acc
      | Exact _ -> acc + Field.width field
      | Prefix (_, len) -> acc + len)
    0 hop_fields

let view_of_cb ~arp (cb : Classbench.rule) =
  let v = Array.make Field.count Any in
  let set f c = v.(Field.index f) <- c in
  set In_port (Exact cb.in_port);
  set Eth_src (Exact cb.eth_src);
  set Eth_dst (Exact cb.eth_dst);
  set Vlan (Exact cb.vlan);
  set Eth_type (Exact (if arp then Headers.ethertype_arp else Headers.ethertype_ipv4));
  set Ip_src (Prefix (fst cb.ip_src, snd cb.ip_src));
  set Ip_dst (Prefix (fst cb.ip_dst, snd cb.ip_dst));
  (match cb.proto with Some p -> set Ip_proto (Exact p) | None -> ());
  (match cb.tp_src with Some p -> set Tp_src (Exact p) | None -> ());
  (match cb.tp_dst with Some p -> set Tp_dst (Exact p) | None -> ());
  v

(* Header rewrites a hop performs, as (field, value) pairs, derived from the
   table's role.  Routing rewrites the MACs to (router, destination
   endpoint); load balancing DNATs to the service backend; SNAT rewrites
   the source. *)
let hop_rewrites table_name cb =
  if is_router table_name then
    [ (Field.Eth_src, router_mac); (Field.Eth_dst, cb.Classbench.eth_dst) ]
  else if is_lb table_name then
    [ (Field.Ip_dst, backend_ip cb); (Field.Tp_dst, backend_port cb) ]
  else if is_snat table_name then [ (Field.Ip_src, gateway_ip) ]
  else []

let install_chain pipeline spec ~band ~dedup ~gateway (template_idx : int) cb =
  let traversal = List.nth spec.Builder.traversals template_idx in
  let hops = traversal.Builder.hops in
  let table_name_of h = Gf_pipeline.Oftable.name (Pipeline.table pipeline h.Builder.table) in
  let arp = List.exists (fun h -> is_arp (table_name_of h)) hops in
  let routed = List.exists (fun h -> is_router (table_name_of h)) hops in
  let view = view_of_cb ~arp cb in
  (* Off-subnet traffic is L2-addressed to the first-hop gateway, not to the
     destination endpoint; routing rewrites it back (see [hop_rewrites]). *)
  if routed then view.(Field.index Field.Eth_dst) <- Exact gateway;
  let entry_view = Array.copy view in
  let rec go = function
    | [] -> ()
    | hop :: rest ->
        let table = Pipeline.table pipeline hop.Builder.table in
        let table_name = Gf_pipeline.Oftable.name table in
        let fmatch = hop_match view hop.Builder.hop_fields in
        let rewrites = hop_rewrites table_name cb in
        let control =
          match rest with
          | next :: _ -> Action.Goto next.Builder.table
          | [] ->
              if is_deny table_name then Action.Terminal Action.Drop
              else Action.Terminal (Action.Output (out_port_of cb))
        in
        let priority = band + prefix_bits_of view hop.Builder.hop_fields in
        let key = (hop.Builder.table, priority, fmatch) in
        if not (Hashtbl.mem dedup key) then begin
          Hashtbl.replace dedup key ();
          let action = { Action.set_fields = rewrites; control } in
          Pipeline.add_rule pipeline ~table:hop.Builder.table
            (Ofrule.v ~id:(Pipeline.fresh_rule_id pipeline) ~priority ~fmatch ~action)
        end;
        (* Apply rewrites to the view so later hops match post-rewrite
           values. *)
        List.iter (fun (f, v) -> view.(Field.index f) <- Exact v) rewrites;
        go rest
  in
  go hops;
  entry_view

(* Component-recurrence weights: how many combos share each component. *)
let compute_weights combos =
  let counts = Hashtbl.create 1024 in
  let bump key = Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key)) in
  let keys (cb : Classbench.rule) =
    [
      ("ed", cb.eth_dst);
      ("es", cb.eth_src);
      ("vl", cb.vlan);
      ("dp", mix (fst cb.ip_dst) (snd cb.ip_dst));
      ("sp", mix (fst cb.ip_src) (snd cb.ip_src));
      ("td", Option.value ~default:(-1) cb.tp_dst);
      ("ts", Option.value ~default:(-1) cb.tp_src);
    ]
  in
  Array.iter (fun (_, cb) -> List.iter bump (keys cb)) combos;
  Array.map
    (fun (template, cb) ->
      (* Multiplicative weight: a combo is popular only when all of its
         components recur — this is what concentrates high-locality traffic
         on shareable sub-traversals (the paper's Fig. 4 selection). *)
      let w =
        List.fold_left
          (fun acc key ->
            acc
            *. float_of_int
                 (Option.value ~default:1 (Hashtbl.find_opt counts key)))
          1.0 (keys cb)
      in
      (* Temper the product so high-locality traffic concentrates on
         popular components without collapsing onto a handful of combos:
         combinations stay diverse (megaflow still sees a large rule
         space), components recur (sub-traversals are shared). *)
      { template; cb; weight = w ** 0.35 })
    combos

let build ?profile ?(combos = 4096) ~info ~seed () =
  let spec = info.Catalog.spec in
  let pipeline = Builder.instantiate spec in
  let rng = Rng.create seed in
  let cb_gen = Classbench.create ?profile ~seed:(seed lxor 0x5EED) () in
  let cb_rules = Classbench.generate cb_gen combos in
  let n_templates = List.length spec.Builder.traversals in
  let dedup = Hashtbl.create 4096 in
  let entry_views = Array.make combos [||] in
  let raw =
    Array.init combos (fun i ->
        let template = Rng.int rng n_templates in
        let cb = cb_rules.(i) in
        let band = 100 * (n_templates - template) in
        let gateway = Classbench.gateway_mac cb_gen cb in
        entry_views.(i) <- install_chain pipeline spec ~band ~dedup ~gateway template cb;
        (template, cb))
  in
  { info; pipeline; combos = compute_weights raw; entry_views }

let concretize_view t rng view =
  ignore t;
  let value field = function
    | Exact v -> v
    | Prefix (net, len) ->
        let host_bits = Field.width field - len in
        if host_bits = 0 then net else net lor Rng.int rng (1 lsl host_bits)
    | Any -> (
        match field with
        | Field.Ip_proto -> 6
        | Field.Tp_src | Field.Tp_dst -> 1024 + Rng.int rng 60000
        | _ -> Rng.int rng (1 lsl min 30 (Field.width field)))
  in
  Flow.of_array
    (Array.mapi (fun i c -> value (Field.of_index i) c) view)

let concretize t rng combo =
  (* Locate the combo's entry view by identity search. *)
  let idx = ref (-1) in
  Array.iteri (fun i c -> if c == combo then idx := i) t.combos;
  let view =
    if !idx >= 0 then t.entry_views.(!idx)
    else view_of_cb ~arp:false combo.cb
  in
  concretize_view t rng view

let sample_flows ?combo_filter t ~seed ~locality ~n =
  let rng = Rng.create seed in
  let eligible =
    match combo_filter with
    | None -> Array.init (Array.length t.combos) (fun i -> i)
    | Some keep ->
        Array.of_list
          (List.filter keep (List.init (Array.length t.combos) (fun i -> i)))
  in
  let m = Array.length eligible in
  if m = 0 then invalid_arg "Ruleset.sample_flows: empty combo filter";
  let cumulative =
    match locality with
    | Low -> [||]
    | High ->
        let acc = ref 0.0 in
        Array.map
          (fun i ->
            acc := !acc +. t.combos.(i).weight;
            !acc)
          eligible
  in
  let pick_combo () =
    match locality with
    | Low -> eligible.(Rng.int rng m)
    | High ->
        let total = cumulative.(m - 1) in
        let target = Rng.float rng total in
        let lo = ref 0 and hi = ref (m - 1) in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if cumulative.(mid) >= target then hi := mid else lo := mid + 1
        done;
        eligible.(!lo)
  in
  let seen = Hashtbl.create n in
  let out = Array.make n Flow.zero in
  let count = ref 0 in
  let attempts = ref 0 in
  let max_attempts = 50 * n in
  while !count < n && !attempts < max_attempts do
    incr attempts;
    let i = pick_combo () in
    let flow = concretize_view t rng t.entry_views.(i) in
    if not (Hashtbl.mem seen flow) then begin
      Hashtbl.replace seen flow ();
      out.(!count) <- flow;
      incr count
    end
  done;
  if !count < n then Array.sub out 0 !count else out
