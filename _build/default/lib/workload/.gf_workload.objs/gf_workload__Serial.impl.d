lib/workload/serial.ml: Array Buffer Fun Gf_flow List Option Printf Result String Trace
