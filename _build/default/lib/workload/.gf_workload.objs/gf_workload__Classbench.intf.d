lib/workload/classbench.mli:
