lib/workload/pipebench.mli: Classbench Gf_flow Gf_pipeline Gf_pipelines Ruleset Trace
