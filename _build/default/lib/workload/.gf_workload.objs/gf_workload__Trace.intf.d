lib/workload/trace.mli: Gf_flow
