lib/workload/ruleset.ml: Array Classbench Gf_flow Gf_pipeline Gf_pipelines Gf_util Hashtbl List Option String
