lib/workload/classbench.ml: Array Gf_util Hashtbl List Option Printf String
