lib/workload/pipebench.ml: Gf_flow Ruleset Trace
