lib/workload/trace.ml: Array Float Gf_flow Gf_util
