lib/workload/serial.mli: Gf_flow Trace
