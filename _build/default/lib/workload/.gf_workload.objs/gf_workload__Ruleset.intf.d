lib/workload/ruleset.mli: Classbench Gf_flow Gf_pipeline Gf_pipelines Gf_util
