(** Multi-table ruleset construction — the heart of the paper's Pipebench
    (section 6.1): populate a real-world pipeline with rules derived from a
    ClassBench-style ruleset, and sample concrete flows from it.

    For each {b combo} we pick a traversal template of the pipeline and a
    ClassBench rule, then project the rule's components onto every hop of
    the template: the hop's match uses exactly the fields the template says
    that table matches, taking values (exact MACs/VLANs/ports, IP prefixes)
    from the ClassBench rule.  Hop actions jump to the template's next
    table; routing/LB/SNAT-style tables additionally rewrite headers, with
    rewrite values derived {e deterministically from the matched
    components} so that identical components yield identical rules — which
    is what lets different combos share pipeline rules, and ultimately lets
    Gigaflow share sub-traversal cache entries.

    Flows are concretized from combos (wildcard bits filled randomly).
    High-locality sampling weights combos by how often their components
    recur across the ruleset (the paper's Fig. 4 frequency); low-locality
    sampling is uniform. *)

type locality = High | Low

val locality_name : locality -> string

type combo = {
  template : int;  (** Traversal-template index. *)
  cb : Classbench.rule;
  weight : float;  (** Component-recurrence weight (high-locality). *)
}

type t

val build :
  ?profile:Classbench.profile ->
  ?combos:int ->
  info:Gf_pipelines.Catalog.info ->
  seed:int ->
  unit ->
  t
(** [combos] defaults to 4096 rule chains. Deterministic in [seed]. *)

val pipeline : t -> Gf_pipeline.Pipeline.t
val info : t -> Gf_pipelines.Catalog.info
val combo_count : t -> int
val combos : t -> combo array
val rule_count : t -> int
(** Total pipeline rules installed (after deduplication). *)

val sample_flows :
  ?combo_filter:(int -> bool) ->
  t ->
  seed:int ->
  locality:locality ->
  n:int ->
  Gf_flow.Flow.t array
(** [n] distinct concrete flows.  Deterministic in [seed].  [combo_filter]
    restricts sampling to a subset of combo indices — used to build
    workloads over disjoint rule-space regions (the paper's Fig. 18). *)

val concretize : t -> Gf_util.Rng.t -> combo -> Gf_flow.Flow.t
(** One concrete flow matching the combo's entry constraints. *)
