(** A ClassBench-style ruleset synthesizer (Taylor & Turner, ToN'07).

    ClassBench's essential property is that rule field values are not
    independent: a datacenter has a bounded population of {b endpoints}
    (VM/pod with a MAC, an IP inside a subnet, a VLAN and an ingress port)
    and of {b services} (protocol + destination port), and rules are drawn
    from the cross-product of those populations.  Sub-tuples of fields
    therefore recur across many rules (the paper's Fig. 4), while the full
    5-tuple is almost unique per rule — exactly the structure that lets
    Gigaflow cache shared sub-traversals while Megaflow must cache the
    cross-product.

    Prefixes nest realistically: a rule constrains its source/destination
    at endpoint (/32), subnet (/24) or aggregate (/16) granularity, which
    exercises the minimal dependency-unwildcarding machinery
    (section 4.2.3 of the paper). *)

type profile = {
  endpoints : int;  (** Distinct VMs/pods. *)
  subnets : int;  (** /24 networks the endpoints live in. *)
  services : int;  (** Distinct (protocol, destination port) services. *)
  ports : int;  (** Physical/virtual ingress ports. *)
  vlans : int;
  popularity : float;  (** Zipf exponent for pool element reuse. *)
  src_exact : float;  (** P(rule matches source at /32). *)
  src_wide : float;  (** P(rule matches source at /16); remainder /24. *)
  dst_exact : float;
  dst_wide : float;
  proto_any : float;  (** P(rule wildcards the IP protocol). *)
  tp_src_pinned : float;  (** P(rule pins the source port). *)
  tp_dst_any : float;  (** P(rule wildcards the destination port). *)
  tail_src : float;
      (** P(rule references a cold, near-unique source endpoint).  The
          component population is two-tier: a hot core pool (shared by many
          rules — high-locality traffic lives here) plus a cold long tail
          of near-unique endpoints/services (scanners, ephemeral peers);
          uniform rule selection (low locality) drags the tail in. *)
  tail_dst : float;
  tail_svc : float;
}

val acl_profile : profile
(** Datacenter ACL-style preset (the paper's default seed). *)

val firewall_profile : profile
(** Smaller populations, wider wildcards. *)

val ipsec_profile : profile
(** Narrow, endpoint-pair-heavy rules. *)

type rule = {
  ip_src : int * int;  (** (network value, prefix length) *)
  ip_dst : int * int;
  proto : int option;  (** [None] = any *)
  tp_src : int option;
  tp_dst : int option;
  eth_src : int;
  eth_dst : int;  (** Destination endpoint MAC (L2 traffic view). *)
  vlan : int;
  in_port : int;
}

type t

val create : ?profile:profile -> seed:int -> unit -> t

val profile : t -> profile

val generate : t -> int -> rule array
(** [generate t n] draws [n] rules (deterministic in the seed). *)

val gateway_mac : t -> rule -> int
(** The first-hop router MAC a flow of this rule would use when routed off
    its subnet (per-VLAN gateways). *)

val five_tuple_sharing : rule array -> k:int -> float
(** Fig. 4's metric: the average number of rules sharing a given [k]-field
    sub-tuple of the 5-tuple, averaged over all C(5,k) field choices.
    [k] in [1, 5]. *)
