(** Bit-level helpers shared by the flow/mask algebra and the generators. *)

val mask_of_width : int -> int
(** [mask_of_width w] is a value with the low [w] bits set. [0 <= w <= 62]. *)

val prefix_mask : width:int -> int -> int
(** [prefix_mask ~width len] is the mask matching the top [len] bits of a
    [width]-bit field (CIDR-style), e.g.
    [prefix_mask ~width:32 24 = 0xFFFFFF00]. *)

val popcount : int -> int
(** Number of set bits. *)

val is_subset : sub:int -> super:int -> bool
(** [is_subset ~sub ~super] iff every bit of [sub] is set in [super]. *)
