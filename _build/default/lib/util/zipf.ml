type t = { n : int; s : float; cdf : float array }

let create ~n ~s =
  assert (n > 0);
  assert (s >= 0.0);
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for r = 0 to n - 1 do
    acc := !acc +. (1.0 /. ((float_of_int (r + 1)) ** s));
    cdf.(r) <- !acc
  done;
  let total = !acc in
  for r = 0 to n - 1 do
    cdf.(r) <- cdf.(r) /. total
  done;
  { n; s; cdf }

let n t = t.n
let exponent t = t.s

let sample t rng =
  let u = Rng.float rng 1.0 in
  (* Binary search for the first index with cdf >= u. *)
  let lo = ref 0 and hi = ref (t.n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo

let pmf t r =
  assert (r >= 0 && r < t.n);
  if r = 0 then t.cdf.(0) else t.cdf.(r) -. t.cdf.(r - 1)
