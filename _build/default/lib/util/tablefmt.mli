(** ASCII table rendering for benchmark and experiment reports.

    The bench harness prints every paper table/figure as a plain-text table;
    this module centralises alignment and formatting so all reports look the
    same. *)

type align = Left | Right

type t

val create : ?title:string -> string list -> t
(** [create ~title headers] starts a table with the given column headers.
    All rows must have the same number of cells as [headers]. *)

val add_row : t -> string list -> unit

val add_sep : t -> unit
(** Insert a horizontal separator before the next row. *)

val render : ?align:align list -> t -> string
(** Render the full table.  [align] defaults to left for the first column and
    right for the rest (the common "label + numbers" layout). *)

val print : ?align:align list -> t -> unit
(** [render] followed by [print_string] and a newline flush. *)

(** {1 Number formatting helpers} *)

val fmt_int : int -> string
(** Thousands-separated integer, e.g. [12_345] -> ["12,345"]. *)

val fmt_float : ?dp:int -> float -> string
(** Fixed-point float, default 2 decimal places. *)

val fmt_pct : ?dp:int -> float -> string
(** [fmt_pct 0.514] = ["51.40%"] (input is a fraction). *)

val fmt_times : ?dp:int -> float -> string
(** [fmt_times 450.] = ["450.0x"]. *)

val fmt_si : float -> string
(** Engineering notation: 14_700_000. -> ["14.7M"], 48_000. -> ["48.0K"]. *)
