(** Zipf-distributed sampling over ranks [0 .. n-1].

    Used to model the skewed popularity of flows and rules in traffic traces
    (CAIDA-like behaviour): rank r is drawn with probability proportional to
    [1 / (r+1)^s]. *)

type t

val create : n:int -> s:float -> t
(** [create ~n ~s] precomputes the CDF for [n] ranks and exponent [s].
    Requires [n > 0] and [s >= 0] ([s = 0] degenerates to uniform). *)

val n : t -> int
val exponent : t -> float

val sample : t -> Rng.t -> int
(** Draw a rank in [\[0, n)]; rank 0 is the most popular. *)

val pmf : t -> int -> float
(** [pmf t r] is the probability of rank [r]. *)
