lib/util/bitops.mli:
