lib/util/rng.mli:
