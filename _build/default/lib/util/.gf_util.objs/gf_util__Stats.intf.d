lib/util/stats.mli:
