lib/util/bitops.ml:
