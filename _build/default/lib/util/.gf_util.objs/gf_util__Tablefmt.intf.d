lib/util/tablefmt.mli:
