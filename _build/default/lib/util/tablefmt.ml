type align = Left | Right

type row = Cells of string list | Sep

type t = {
  title : string option;
  headers : string list;
  ncols : int;
  mutable rows : row list; (* reversed *)
}

let create ?title headers =
  { title; headers; ncols = List.length headers; rows = [] }

let add_row t cells =
  if List.length cells <> t.ncols then
    invalid_arg "Tablefmt.add_row: wrong number of cells";
  t.rows <- Cells cells :: t.rows

let add_sep t = t.rows <- Sep :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let render ?align t =
  let rows = List.rev t.rows in
  let widths = Array.of_list (List.map String.length t.headers) in
  let update cells =
    List.iteri
      (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c)
      cells
  in
  List.iter (function Cells c -> update c | Sep -> ()) rows;
  let aligns =
    match align with
    | Some a ->
        if List.length a <> t.ncols then
          invalid_arg "Tablefmt.render: wrong number of aligns";
        Array.of_list a
    | None -> Array.init t.ncols (fun i -> if i = 0 then Left else Right)
  in
  let buf = Buffer.create 1024 in
  let sep_line () =
    Array.iteri
      (fun i w ->
        Buffer.add_string buf (if i = 0 then "+" else "+");
        Buffer.add_string buf (String.make (w + 2) '-'))
      widths;
    Buffer.add_string buf "+\n"
  in
  let emit_cells cells =
    List.iteri
      (fun i c ->
        Buffer.add_string buf "| ";
        Buffer.add_string buf (pad aligns.(i) widths.(i) c);
        Buffer.add_char buf ' ')
      cells;
    Buffer.add_string buf "|\n"
  in
  (match t.title with
  | Some title ->
      Buffer.add_string buf title;
      Buffer.add_char buf '\n'
  | None -> ());
  sep_line ();
  emit_cells t.headers;
  sep_line ();
  List.iter (function Cells c -> emit_cells c | Sep -> sep_line ()) rows;
  sep_line ();
  Buffer.contents buf

let print ?align t =
  print_string (render ?align t);
  print_newline ()

let fmt_int n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3) + 1) in
  if n < 0 then Buffer.add_char buf '-';
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let fmt_float ?(dp = 2) x = Printf.sprintf "%.*f" dp x

let fmt_pct ?(dp = 2) x = Printf.sprintf "%.*f%%" dp (x *. 100.0)

let fmt_times ?(dp = 1) x = Printf.sprintf "%.*fx" dp x

let fmt_si x =
  let ax = Float.abs x in
  if ax >= 1e9 then Printf.sprintf "%.1fG" (x /. 1e9)
  else if ax >= 1e6 then Printf.sprintf "%.1fM" (x /. 1e6)
  else if ax >= 1e3 then Printf.sprintf "%.1fK" (x /. 1e3)
  else Printf.sprintf "%.0f" x
