type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 finaliser (variant 13 of Stafford's mix). *)
let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = bits64 t in
  { state = seed }

let int t bound =
  assert (bound > 0);
  (* Keep 62 bits so the value always fits OCaml's 63-bit int as
     non-negative. *)
  let x = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  x mod bound

let int_in t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (bits64 t) 1L = 1L

let float t bound =
  (* 53 random bits -> uniform float in [0,1). *)
  let x = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int x /. 9007199254740992.0 *. bound

let bernoulli t p = float t 1.0 < p

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick_weighted t items =
  let total = Array.fold_left (fun acc (_, w) -> acc +. Float.max w 0.0) 0.0 items in
  if total <= 0.0 then invalid_arg "Rng.pick_weighted: no positive weight";
  let target = float t total in
  let n = Array.length items in
  let rec go i acc =
    if i = n - 1 then fst items.(i)
    else
      let acc = acc +. Float.max (snd items.(i)) 0.0 in
      if target < acc then fst items.(i) else go (i + 1) acc
  in
  go 0 0.0

let geometric t p =
  assert (p > 0.0 && p <= 1.0);
  if p >= 1.0 then 0
  else
    let u = float t 1.0 in
    (* Inverse CDF; u = 0 maps to 0 failures. *)
    int_of_float (Float.floor (log1p (-.u) /. log1p (-.p)))

let pareto t ~alpha ~xmin =
  assert (alpha > 0.0 && xmin > 0.0);
  let u = 1.0 -. float t 1.0 in
  xmin /. (u ** (1.0 /. alpha))

let exponential t ~mean =
  assert (mean > 0.0);
  let u = 1.0 -. float t 1.0 in
  -.mean *. log u
