let mask_of_width w =
  assert (w >= 0 && w <= 62);
  if w = 0 then 0 else (1 lsl w) - 1

let prefix_mask ~width len =
  assert (len >= 0 && len <= width);
  mask_of_width width land lnot (mask_of_width (width - len))

let popcount n =
  let rec go n acc = if n = 0 then acc else go (n lsr 1) (acc + (n land 1)) in
  go n 0

let is_subset ~sub ~super = sub land super = sub
