(* Live rule updates and cache revalidation (paper section 4.3): an operator
   tightens an ACL while traffic is flowing; both caches must evict exactly
   the entries the change invalidates, and Gigaflow's shorter sub-traversals
   make its revalidation sweep cheaper.

   Run with:  dune exec examples/rule_updates.exe *)

module Catalog = Gf_pipelines.Catalog
module Ruleset = Gf_workload.Ruleset
module Executor = Gf_pipeline.Executor
module Pipeline = Gf_pipeline.Pipeline
module Megaflow = Gf_cache.Megaflow
module Gigaflow = Gf_core.Gigaflow
module Action = Gf_pipeline.Action
module Field = Gf_flow.Field
module Fmatch = Gf_flow.Fmatch

let () =
  let info = Option.get (Catalog.find "PSC") in
  let rs = Ruleset.build ~combos:16_384 ~info ~seed:33 () in
  let pipeline = Ruleset.pipeline rs in
  let flows = Ruleset.sample_flows rs ~seed:5 ~locality:Ruleset.High ~n:20_000 in

  (* Warm both caches. *)
  let mf = Megaflow.create ~capacity:32_768 () in
  let gf = Gigaflow.create (Gf_core.Config.v ~tables:4 ~table_capacity:8192 ()) in
  Array.iter
    (fun flow ->
      ignore (Gigaflow.handle_miss gf ~now:0.0 ~pipeline flow);
      match Executor.execute pipeline flow with
      | Ok tr -> ignore (Megaflow.install mf ~now:0.0 ~version:(Pipeline.version pipeline) tr)
      | Error _ -> ())
    flows;
  Printf.printf "Warmed caches: Megaflow %d entries, Gigaflow %d entries\n\n%!"
    (Megaflow.occupancy mf)
    (Gf_core.Ltm_cache.occupancy (Gigaflow.cache gf));

  (* The operator blocks TCP/443 at the ACL table (table 5 in PSC) with a
     top-priority deny. *)
  Printf.printf "Operator adds: table=5 priority=10000 tcp,tp_dst=443 -> drop\n%!";
  Pipeline.add_rule pipeline ~table:5
    (Gf_pipeline.Ofrule.v
       ~id:(Pipeline.fresh_rule_id pipeline)
       ~priority:10_000
       ~fmatch:
         (Fmatch.of_fields
            [ (Field.Ip_proto, Gf_flow.Headers.proto_tcp); (Field.Tp_dst, 443) ])
       ~action:(Action.drop ()));

  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, 1000.0 *. (Unix.gettimeofday () -. t0))
  in
  let (mf_evicted, mf_work), mf_ms = time (fun () -> Megaflow.revalidate mf pipeline) in
  let (gf_evicted, gf_work), gf_ms = time (fun () -> Gigaflow.revalidate gf pipeline) in
  Printf.printf "\nRevalidation after the update:\n";
  Printf.printf "  Megaflow: evicted %5d entries, re-executed %6d lookups (%.0f ms)\n"
    mf_evicted mf_work mf_ms;
  Printf.printf "  Gigaflow: evicted %5d entries, re-executed %6d lookups (%.0f ms)\n"
    gf_evicted gf_work gf_ms;

  (* Consistency audit: after revalidation no cache may contradict the new
     pipeline. *)
  let audited = ref 0 and wrong = ref 0 in
  Array.iter
    (fun flow ->
      let expected = Executor.terminal_of pipeline flow in
      let check = function
        | None -> ()
        | Some terminal -> (
            incr audited;
            match expected with
            | Ok (t, _) when Action.terminal_equal t terminal -> ()
            | _ -> incr wrong)
      in
      check
        (Option.map (fun (h : Megaflow.hit) -> h.Megaflow.terminal)
           (fst (Megaflow.lookup mf ~now:1.0 flow)));
      check
        (Option.map
           (fun (h : Gf_core.Ltm_cache.hit) -> h.Gf_core.Ltm_cache.terminal)
           (fst (Gigaflow.lookup gf ~now:1.0 ~pipeline flow))))
    flows;
  Printf.printf "\nPost-update audit: %d cache hits checked, %d inconsistent\n" !audited
    !wrong;
  if !wrong = 0 then
    print_endline "Both caches are consistent with the updated pipeline."
  else print_endline "BUG: stale cache entries survived revalidation!"
