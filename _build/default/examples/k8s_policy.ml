(* Kubernetes NetworkPolicy scenario: the Antrea pipeline (ANT), the paper's
   deepest policy chain (22 tables).  Shows how the disjoint partitioner
   carves a long traversal into compact sub-traversals, and what each LTM
   table ends up holding.

   Run with:  dune exec examples/k8s_policy.exe *)

module Catalog = Gf_pipelines.Catalog
module Ruleset = Gf_workload.Ruleset
module Executor = Gf_pipeline.Executor
module Traversal = Gf_pipeline.Traversal
module Partitioner = Gf_core.Partitioner
module Gigaflow = Gf_core.Gigaflow
module Ltm_cache = Gf_core.Ltm_cache
module Tablefmt = Gf_util.Tablefmt

let () =
  let info = Option.get (Catalog.find "ANT") in
  Printf.printf "Pipeline: %s — %s\n%!" info.Catalog.code info.Catalog.description;
  let rs = Ruleset.build ~combos:16_384 ~info ~seed:11 () in
  let pipeline = Ruleset.pipeline rs in
  let flows = Ruleset.sample_flows rs ~seed:3 ~locality:Ruleset.High ~n:10_000 in

  (* Show how one long policy traversal gets partitioned. *)
  let sample =
    let best = ref None in
    Array.iter
      (fun flow ->
        match Executor.execute pipeline flow with
        | Ok tr -> (
            match !best with
            | Some cur when Traversal.length cur >= Traversal.length tr -> ()
            | _ -> best := Some tr)
        | Error _ -> ())
      flows;
    Option.get !best
  in
  Printf.printf "\nA %d-lookup policy traversal: tables %s\n"
    (Traversal.length sample)
    (String.concat " > " (List.map string_of_int (Traversal.path sample)));
  let segments = Partitioner.partition Partitioner.Disjoint ~max_segments:4 sample in
  List.iteri
    (fun i seg ->
      let wc = Traversal.segment_wildcard sample ~first:seg.Partitioner.first ~last:seg.Partitioner.last in
      Printf.printf "  sub-traversal %d: steps %d-%d, matches { %s }\n" (i + 1)
        seg.Partitioner.first seg.Partitioner.last
        (Format.asprintf "%a" Gf_flow.Mask.pp wc))
    segments;

  (* Run the whole flow set through a Gigaflow cache and report per-table
     load and sharing. *)
  let gf = Gigaflow.create (Gf_core.Config.v ~tables:4 ~table_capacity:8192 ()) in
  Array.iter
    (fun flow ->
      match Gigaflow.lookup gf ~now:0.0 ~pipeline flow with
      | Some _, _ -> ()
      | None, _ -> ignore (Gigaflow.handle_miss gf ~now:0.0 ~pipeline flow))
    flows;
  let cache = Gigaflow.cache gf in
  Printf.printf "\nAfter %d flows:\n" (Array.length flows);
  let t = Tablefmt.create [ "LTM table"; "Entries" ] in
  Array.iteri
    (fun i occ -> Tablefmt.add_row t [ Printf.sprintf "GF%d" (i + 1); Tablefmt.fmt_int occ ])
    (Ltm_cache.table_occupancies cache);
  Tablefmt.print t;
  Printf.printf "Sub-traversal sharing: %.2f installations per entry\n"
    (Ltm_cache.mean_sharing cache);
  Printf.printf "Rule-space coverage: %s end-to-end rule combinations\n"
    (Tablefmt.fmt_si
       (Gf_core.Coverage.count cache ~entry_tag:(Gf_pipeline.Pipeline.entry pipeline)));
  let hist = Ltm_cache.sharing_histogram cache in
  let top = List.rev hist in
  (match top with
  | (shares, _) :: _ ->
      Printf.printf "Most-shared entry serves %d distinct installations.\n" shares
  | [] -> ())
