examples/dynamic_workload.ml: Array Float Gf_core Gf_pipelines Gf_sim Gf_util Gf_workload Option Printf
