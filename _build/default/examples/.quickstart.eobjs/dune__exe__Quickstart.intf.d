examples/quickstart.mli:
