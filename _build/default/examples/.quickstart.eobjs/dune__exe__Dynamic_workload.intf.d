examples/dynamic_workload.mli:
