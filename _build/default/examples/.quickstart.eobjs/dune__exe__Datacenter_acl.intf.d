examples/datacenter_acl.mli:
