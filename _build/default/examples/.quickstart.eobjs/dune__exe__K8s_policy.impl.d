examples/k8s_policy.ml: Array Format Gf_core Gf_flow Gf_pipeline Gf_pipelines Gf_util Gf_workload List Option Printf String
