examples/quickstart.ml: Array Format Gf_core Gf_flow Gf_pipeline List Printf String
