examples/rule_updates.mli:
