examples/datacenter_acl.ml: Array Gf_core Gf_pipelines Gf_sim Gf_util Gf_workload List Option Printf
