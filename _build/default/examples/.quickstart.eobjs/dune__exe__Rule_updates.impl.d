examples/rule_updates.ml: Array Gf_cache Gf_core Gf_flow Gf_pipeline Gf_pipelines Gf_workload Option Printf Unix
