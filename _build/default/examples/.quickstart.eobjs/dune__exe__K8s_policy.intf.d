examples/k8s_policy.mli:
