(* Shared generators and utilities for the test suites. *)

module Field = Gf_flow.Field
module Flow = Gf_flow.Flow
module Mask = Gf_flow.Mask
module Fmatch = Gf_flow.Fmatch
module Action = Gf_pipeline.Action
module Ofrule = Gf_pipeline.Ofrule
module Oftable = Gf_pipeline.Oftable
module Pipeline = Gf_pipeline.Pipeline
module Executor = Gf_pipeline.Executor

let gen_field = QCheck2.Gen.oneofl (Array.to_list Field.all)

(* A random per-field mask biased toward realistic shapes: empty, full, or a
   prefix. *)
let gen_field_mask field =
  let open QCheck2.Gen in
  let width = Field.width field in
  frequency
    [
      (3, pure 0);
      (3, pure (Field.full_mask field));
      (3, map (fun len -> Gf_util.Bitops.prefix_mask ~width len) (1 -- width));
      (1, map (fun m -> m land Field.full_mask field) (0 -- max_int));
    ]

let gen_mask =
  let open QCheck2.Gen in
  let rec build fields acc =
    match fields with
    | [] -> pure acc
    | f :: rest -> gen_field_mask f >>= fun m -> build rest ((f, m) :: acc)
  in
  map Mask.make (build (Array.to_list Field.all) [])

let gen_value field =
  QCheck2.Gen.map
    (fun v -> v land Field.full_mask field)
    QCheck2.Gen.(0 -- max_int)

let gen_flow =
  let open QCheck2.Gen in
  let rec build fields acc =
    match fields with
    | [] -> pure acc
    | f :: rest -> gen_value f >>= fun v -> build rest ((f, v) :: acc)
  in
  map Flow.make (build (Array.to_list Field.all) [])

let gen_fmatch =
  QCheck2.Gen.map2
    (fun pattern mask -> Fmatch.v ~pattern ~mask)
    gen_flow gen_mask

(* Small value pools make overlaps and shared components likely — random
   64-bit values would never collide. *)
let pool_value rng field =
  let bound =
    match field with
    | Field.In_port -> 4
    | Field.Vlan -> 3
    | Field.Eth_type -> 2
    | Field.Ip_proto -> 3
    | Field.Eth_src | Field.Eth_dst -> 6
    | Field.Ip_src | Field.Ip_dst -> 8
    | Field.Tp_src | Field.Tp_dst -> 5
  in
  (* Spread pool values across the field's width so prefixes discriminate. *)
  let v = Gf_util.Rng.int rng bound in
  (v * 0x10493) land Field.full_mask field

let pool_flow rng =
  Flow.make (List.map (fun f -> (f, pool_value rng f)) (Array.to_list Field.all))

(* A random rule over a small field subset with pool values, prefix-biased
   masks and a supplied action. *)
let pool_rule rng ~id ~action =
  let nfields = 1 + Gf_util.Rng.int rng 3 in
  let fields =
    List.init nfields (fun _ -> Gf_util.Rng.pick rng Field.all) |> List.sort_uniq compare
  in
  let fmatch =
    List.fold_left
      (fun fm f ->
        let width = Field.width f in
        let len =
          if Gf_util.Rng.bool rng then width else 1 + Gf_util.Rng.int rng width
        in
        Fmatch.with_prefix fm f ~value:(pool_value rng f) ~len)
      Fmatch.any fields
  in
  Ofrule.v ~id ~priority:(Gf_util.Rng.int rng 8) ~fmatch ~action

(* A small random feed-forward pipeline with pool-valued rules; every goto
   targets a strictly larger table id, so execution always terminates. *)
let random_pipeline rng ~tables ~rules_per_table =
  let table_ids = List.init tables (fun i -> i) in
  let mk_table id =
    Oftable.create ~id ~name:(Printf.sprintf "t%d" id)
      ~match_fields:(Field.Set.of_list (Array.to_list Field.all))
      ~miss:
        (if id = tables - 1 || Gf_util.Rng.bool rng then Action.drop ()
         else Action.goto (id + 1))
  in
  let pipeline = Pipeline.create ~name:"random" ~entry:0 (List.map mk_table table_ids) in
  List.iter
    (fun table_id ->
      for _ = 1 to rules_per_table do
        let action =
          if table_id = tables - 1 || Gf_util.Rng.bernoulli rng 0.4 then
            if Gf_util.Rng.bool rng then Action.output (Gf_util.Rng.int rng 8)
            else Action.drop ()
          else begin
            let next = table_id + 1 + Gf_util.Rng.int rng (tables - table_id - 1) in
            let set_fields =
              if Gf_util.Rng.bernoulli rng 0.3 then
                [ (Gf_util.Rng.pick rng Field.all, pool_value rng (Gf_util.Rng.pick rng Field.all)) ]
              else []
            in
            Action.goto ~set_fields next
          end
        in
        Pipeline.add_rule pipeline ~table:table_id
          (pool_rule rng ~id:(Pipeline.fresh_rule_id pipeline) ~action)
      done)
    table_ids;
  pipeline

(* A flow agreeing with [flow] on every significant bit of [mask], random
   elsewhere — the probe used by cache-consistency properties. *)
let agreeing_flow rng mask flow =
  let fa = Flow.to_array flow in
  let values =
    Array.mapi
      (fun i v ->
        let f = Field.of_index i in
        let m = Mask.get mask f in
        let noise = Gf_util.Rng.int rng (1 lsl min 30 (Field.width f)) in
        (v land m) lor (noise land lnot m land Field.full_mask f))
      fa
  in
  Flow.of_array values

let terminal_testable =
  Alcotest.testable Action.pp_terminal Action.terminal_equal

let flow_testable = Alcotest.testable Flow.pp Flow.equal
let mask_testable = Alcotest.testable Mask.pp Mask.equal
let fmatch_testable = Alcotest.testable Fmatch.pp Fmatch.equal

let qsuite name tests =
  (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)
