test/test_pipelines.ml: Alcotest Gf_flow Gf_pipeline Gf_pipelines List
