test/test_flow.ml: Alcotest Array Gf_flow Gf_util Helpers Option QCheck2
