test/test_pipeline.ml: Alcotest Array Gf_flow Gf_pipeline Gf_util Helpers List Printf QCheck2 Result
