test/test_sim.ml: Alcotest Array Gf_core Gf_nic Gf_pipeline Gf_pipelines Gf_sim Gf_util Gf_workload Hashtbl List Option Printf
