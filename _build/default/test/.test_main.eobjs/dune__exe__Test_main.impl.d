test/test_main.ml: Alcotest Helpers Test_cache Test_classifier Test_core Test_flow Test_interop Test_pipeline Test_pipelines Test_sim Test_util Test_workload
