test/helpers.ml: Alcotest Array Gf_flow Gf_pipeline Gf_util List Printf QCheck2 QCheck_alcotest
