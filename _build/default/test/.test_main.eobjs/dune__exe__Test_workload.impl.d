test/test_workload.ml: Alcotest Array Gf_flow Gf_pipeline Gf_pipelines Gf_workload Hashtbl List Option Printf
