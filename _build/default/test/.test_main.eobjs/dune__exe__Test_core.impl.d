test/test_core.ml: Alcotest Array Float Fmatch Fun Gf_cache Gf_core Gf_flow Gf_pipeline Gf_util Helpers List Printf QCheck2 Result
