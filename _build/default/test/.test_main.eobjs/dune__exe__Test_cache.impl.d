test/test_cache.ml: Alcotest Fmatch Gf_cache Gf_flow Gf_pipeline Gf_util Helpers List QCheck2
