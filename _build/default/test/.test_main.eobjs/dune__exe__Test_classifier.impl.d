test/test_classifier.ml: Alcotest Field Flow Fmatch Gf_classifier Gf_pipeline Gf_util Helpers List Option Printf QCheck2
