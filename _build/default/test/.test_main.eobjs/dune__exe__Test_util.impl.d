test/test_util.ml: Alcotest Array Float Gf_util Hashtbl List Option String
