test/test_interop.ml: Alcotest Array Float Gf_flow Gf_nic Gf_pipeline Gf_sim Gf_util Gf_workload Helpers List Printf String
