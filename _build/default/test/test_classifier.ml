(* Tests for gigaflow.classifier: Linear, TSS, NuevoMatch, Searcher. *)

open Helpers
module Entry = Gf_classifier.Entry
module Linear = Gf_classifier.Linear
module Tss = Gf_classifier.Tss
module Nm = Gf_classifier.Nuevomatch
module Searcher = Gf_classifier.Searcher

(* Build the same entries into every classifier. *)
let random_entries rng n =
  List.init n (fun key ->
      let action = Gf_pipeline.Action.output key in
      let rule = pool_rule rng ~id:key ~action in
      Entry.v ~key ~fmatch:rule.Gf_pipeline.Ofrule.fmatch
        ~priority:rule.Gf_pipeline.Ofrule.priority key)

let winner_key : 'a. 'a Entry.t option -> int = function
  | None -> -1
  | Some e -> e.Entry.key

let test_entry_better () =
  let fm = Fmatch.any in
  let a = Entry.v ~key:1 ~fmatch:fm ~priority:5 () in
  let b = Entry.v ~key:2 ~fmatch:fm ~priority:5 () in
  let c = Entry.v ~key:3 ~fmatch:fm ~priority:7 () in
  Alcotest.(check bool) "priority wins" true (Entry.better c a);
  Alcotest.(check bool) "tie to lower key" true (Entry.better a b);
  Alcotest.(check bool) "not better than self" false (Entry.better a a)

let agreement_prop name lookup_b =
  QCheck2.Test.make ~name ~count:60
    QCheck2.Gen.(pair (int_range 0 10_000) (int_range 1 120))
    (fun (seed, n) ->
      let rng = Gf_util.Rng.create seed in
      let entries = random_entries rng n in
      let lin = Linear.create () in
      List.iter (Linear.insert lin) entries;
      let other = lookup_b entries in
      let ok = ref true in
      for _ = 1 to 50 do
        let flow = pool_flow rng in
        let expected, _ = Linear.lookup lin flow in
        let got = other flow in
        if winner_key expected <> winner_key got then ok := false
      done;
      !ok)

let prop_tss_agrees_linear =
  agreement_prop "tss = linear reference" (fun entries ->
      let t = Tss.create () in
      List.iter (Tss.insert t) entries;
      fun flow -> fst (Tss.lookup t flow))

let prop_nm_agrees_linear =
  agreement_prop "nuevomatch = linear reference" (fun entries ->
      let t = Nm.create () in
      List.iter (Nm.insert t) entries;
      Nm.retrain t;
      fun flow -> fst (Nm.lookup t flow))

let prop_nm_untrained_agrees =
  agreement_prop "nuevomatch (delta only) = linear" (fun entries ->
      let t = Nm.create () in
      List.iter (Nm.insert t) entries;
      fun flow -> fst (Nm.lookup t flow))

let removal_prop name create insert remove lookup =
  QCheck2.Test.make ~name ~count:40
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let rng = Gf_util.Rng.create seed in
      let entries = random_entries rng 80 in
      let t = create () in
      List.iter (insert t) entries;
      (* Remove half the keys. *)
      List.iteri
        (fun i (e : int Entry.t) -> if i mod 2 = 0 then assert (remove t e.Entry.key))
        entries;
      let lin = Linear.create () in
      List.iteri (fun i e -> if i mod 2 = 1 then Linear.insert lin e) entries;
      let ok = ref true in
      for _ = 1 to 50 do
        let flow = pool_flow rng in
        if winner_key (fst (Linear.lookup lin flow)) <> winner_key (lookup t flow) then
          ok := false
      done;
      !ok)

let prop_tss_removal =
  removal_prop "tss after removals = linear" Tss.create Tss.insert Tss.remove
    (fun t flow -> fst (Tss.lookup t flow))

let prop_nm_removal =
  removal_prop "nuevomatch after removals = linear"
    (fun () ->
      let t = Nm.create () in
      t)
    Nm.insert Nm.remove
    (fun t flow -> fst (Nm.lookup t flow))

let prop_nm_removal_trained =
  removal_prop "nuevomatch (trained) after removals = linear"
    (fun () -> Nm.create ())
    (fun t e ->
      Nm.insert t e;
      if Nm.size t = 80 then Nm.retrain t)
    Nm.remove
    (fun t flow -> fst (Nm.lookup t flow))

let test_duplicate_key_rejected () =
  let t = Tss.create () in
  let e = Entry.v ~key:1 ~fmatch:Fmatch.any ~priority:0 () in
  Tss.insert t e;
  Alcotest.check_raises "duplicate" (Invalid_argument "Tss.insert: duplicate key")
    (fun () -> Tss.insert t e)

let test_tss_tuple_count () =
  let t = Tss.create () in
  let fm1 = Fmatch.of_fields [ (Field.Ip_dst, 1) ] in
  let fm2 = Fmatch.of_fields [ (Field.Ip_dst, 2) ] in
  let fm3 = Fmatch.of_fields [ (Field.Tp_dst, 3) ] in
  Tss.insert t (Entry.v ~key:1 ~fmatch:fm1 ~priority:0 ());
  Tss.insert t (Entry.v ~key:2 ~fmatch:fm2 ~priority:0 ());
  Tss.insert t (Entry.v ~key:3 ~fmatch:fm3 ~priority:0 ());
  Alcotest.(check int) "two masks = two tuples" 2 (Tss.tuple_count t);
  ignore (Tss.remove t 3);
  Alcotest.(check int) "tuple gc'd" 1 (Tss.tuple_count t)

let test_tss_priority_pruning () =
  (* A high-priority match in the first tuple must stop the search. *)
  let t = Tss.create () in
  Tss.insert t
    (Entry.v ~key:1 ~fmatch:(Fmatch.of_fields [ (Field.Vlan, 1) ]) ~priority:10 ());
  for k = 2 to 11 do
    Tss.insert t
      (Entry.v ~key:k ~fmatch:(Fmatch.of_fields [ (Field.Tp_dst, k) ]) ~priority:1 ())
  done;
  let flow = Flow.make [ (Field.Vlan, 1); (Field.Tp_dst, 5) ] in
  let result, work = Tss.lookup t flow in
  Alcotest.(check int) "high priority wins" 1 (winner_key result);
  Alcotest.(check bool) "pruned" true (work <= 2)

let test_nm_trains_isets () =
  let rng = Gf_util.Rng.create 99 in
  let t = Nm.create () in
  (* Many disjoint ip_dst exact entries: ideal iSet material. *)
  for k = 0 to 199 do
    let fm = Fmatch.of_fields [ (Field.Ip_dst, k * 1000) ] in
    Nm.insert t (Entry.v ~key:k ~fmatch:fm ~priority:0 ())
  done;
  Nm.retrain t;
  Alcotest.(check bool) "at least one iset" true (Nm.iset_count t >= 1);
  Alcotest.(check int) "delta empty after train" 0 (Nm.delta_size t);
  (* Lookup cost should be far below the entry count. *)
  let flow = Flow.make [ (Field.Ip_dst, 57 * 1000) ] in
  let result, work = Nm.lookup t flow in
  Alcotest.(check int) "found" 57 (winner_key result);
  Alcotest.(check bool) (Printf.sprintf "o(1)-ish work (%d)" work) true (work < 40);
  ignore rng

let test_nm_auto_retrain () =
  let t = Nm.create () in
  for k = 0 to 999 do
    let fm = Fmatch.of_fields [ (Field.Ip_dst, k * 64) ] in
    Nm.insert t (Entry.v ~key:k ~fmatch:fm ~priority:0 ())
  done;
  (* The 25% delta threshold must have triggered training along the way. *)
  Alcotest.(check bool) "auto-trained" true (Nm.iset_count t >= 1)

let test_searcher_dispatch () =
  List.iter
    (fun algo ->
      let s = Searcher.create algo in
      Searcher.insert s (Entry.v ~key:1 ~fmatch:(Fmatch.of_fields [ (Field.Vlan, 4) ]) ~priority:1 "x");
      Alcotest.(check int) "size" 1 (Searcher.size s);
      let hit, _ = Searcher.lookup s (Flow.make [ (Field.Vlan, 4) ]) in
      Alcotest.(check bool) "hit" true (Option.is_some hit);
      let miss, _ = Searcher.lookup s (Flow.make [ (Field.Vlan, 5) ]) in
      Alcotest.(check bool) "miss" true (Option.is_none miss);
      Alcotest.(check bool) "remove" true (Searcher.remove s 1);
      Alcotest.(check int) "empty" 0 (Searcher.size s))
    [ `Linear; `Tss; `Nuevomatch ]

let test_searcher_names () =
  Alcotest.(check (option string)) "roundtrip tss" (Some "tss")
    (Option.map Searcher.algo_name (Searcher.algo_of_string "tss"));
  Alcotest.(check (option string)) "nm alias" (Some "nuevomatch")
    (Option.map Searcher.algo_name (Searcher.algo_of_string "nm"));
  Alcotest.(check bool) "unknown" true (Searcher.algo_of_string "bogus" = None)

let suite =
  [
    ("entry ordering", `Quick, test_entry_better);
    ("duplicate key rejected", `Quick, test_duplicate_key_rejected);
    ("tss tuple count", `Quick, test_tss_tuple_count);
    ("tss priority pruning", `Quick, test_tss_priority_pruning);
    ("nm trains isets", `Quick, test_nm_trains_isets);
    ("nm auto retrain", `Quick, test_nm_auto_retrain);
    ("searcher dispatch", `Quick, test_searcher_dispatch);
    ("searcher names", `Quick, test_searcher_names);
  ]

let props =
  [
    prop_tss_agrees_linear;
    prop_nm_agrees_linear;
    prop_nm_untrained_agrees;
    prop_tss_removal;
    prop_nm_removal;
    prop_nm_removal_trained;
  ]
