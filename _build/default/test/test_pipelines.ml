(* Tests for gigaflow.pipelines: the five real-world specs of Table 1. *)

module Catalog = Gf_pipelines.Catalog
module Builder = Gf_pipeline.Builder
module Pipeline = Gf_pipeline.Pipeline
module Executor = Gf_pipeline.Executor

let expected = [ ("OFD", 10, 5); ("PSC", 7, 2); ("OLS", 30, 23); ("ANT", 22, 20); ("OTL", 8, 11) ]

let test_table1_counts () =
  List.iter
    (fun (code, tables, traversals) ->
      match Catalog.find code with
      | None -> Alcotest.failf "missing pipeline %s" code
      | Some info ->
          Alcotest.(check int) (code ^ " tables") tables (Catalog.table_count info);
          Alcotest.(check int) (code ^ " traversals") traversals
            (Catalog.traversal_count info))
    expected

let test_all_specs_valid () =
  List.iter
    (fun info ->
      match Builder.validate info.Catalog.spec with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s invalid: %s" info.Catalog.code e)
    Catalog.all

let test_find_case_insensitive () =
  Alcotest.(check bool) "lowercase" true (Catalog.find "psc" <> None);
  Alcotest.(check bool) "unknown" true (Catalog.find "XYZ" = None)

let test_instantiation_executes () =
  (* An empty instantiated pipeline must route any packet through the miss
     chain to a terminal. *)
  List.iter
    (fun info ->
      let p = Catalog.instantiate info in
      Alcotest.(check int)
        (info.Catalog.code ^ " table count")
        (Catalog.table_count info) (Pipeline.table_count p);
      match Executor.execute p Gf_flow.Flow.zero with
      | Ok _ -> ()
      | Error e ->
          Alcotest.failf "%s: miss chain fails: %a" info.Catalog.code Executor.pp_error e)
    Catalog.all

let test_unique_paths_strictly_increasing () =
  List.iter
    (fun info ->
      List.iter
        (fun path ->
          let rec check = function
            | a :: (b :: _ as rest) ->
                if a >= b then
                  Alcotest.failf "%s: non-increasing path" info.Catalog.code
                else check rest
            | _ -> ()
          in
          check path)
        (Builder.unique_paths info.Catalog.spec))
    Catalog.all

let test_paper_order () =
  Alcotest.(check (list string)) "Table 1 order"
    [ "OFD"; "PSC"; "OLS"; "ANT"; "OTL" ]
    (List.map (fun i -> i.Catalog.code) Catalog.all)

let suite =
  [
    ("table 1 counts", `Quick, test_table1_counts);
    ("all specs valid", `Quick, test_all_specs_valid);
    ("find is case-insensitive", `Quick, test_find_case_insensitive);
    ("instantiated pipelines execute", `Quick, test_instantiation_executes);
    ("paths strictly increasing", `Quick, test_unique_paths_strictly_increasing);
    ("paper order", `Quick, test_paper_order);
  ]
