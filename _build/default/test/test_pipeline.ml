(* Tests for gigaflow.pipeline: Action, Ofrule, Oftable (including minimal
   dependency unwildcarding), Pipeline, Executor, Traversal, Builder. *)

open Helpers
module Field = Gf_flow.Field
module Flow = Gf_flow.Flow
module Mask = Gf_flow.Mask
module Fmatch = Gf_flow.Fmatch
module Action = Gf_pipeline.Action
module Ofrule = Gf_pipeline.Ofrule
module Oftable = Gf_pipeline.Oftable
module Pipeline = Gf_pipeline.Pipeline
module Executor = Gf_pipeline.Executor
module Traversal = Gf_pipeline.Traversal
module Builder = Gf_pipeline.Builder
module Headers = Gf_flow.Headers

let test_action_apply_sets () =
  let a = Action.goto ~set_fields:[ (Field.Vlan, 9); (Field.Tp_dst, 80) ] 3 in
  let f = Action.apply_sets a Flow.zero in
  Alcotest.(check int) "vlan" 9 (Flow.get f Field.Vlan);
  Alcotest.(check int) "port" 80 (Flow.get f Field.Tp_dst)

let test_action_equal () =
  Alcotest.(check bool) "same" true (Action.equal (Action.drop ()) (Action.drop ()));
  Alcotest.(check bool) "different" false
    (Action.equal (Action.output 1) (Action.output 2));
  Alcotest.(check bool) "goto vs terminal" false
    (Action.equal (Action.goto 1) (Action.output 1))

let test_ofrule_same_behaviour () =
  let fm = Fmatch.of_fields [ (Field.Vlan, 1) ] in
  let a = Ofrule.v ~id:1 ~priority:5 ~fmatch:fm ~action:(Action.drop ()) in
  let b = Ofrule.v ~id:2 ~priority:5 ~fmatch:fm ~action:(Action.drop ()) in
  Alcotest.(check bool) "behaviour equal" true (Ofrule.same_behaviour a b);
  Alcotest.(check bool) "not structurally equal" false (Ofrule.equal a b)

let mk_table ?(miss = Action.drop ()) rules =
  let t =
    Oftable.create ~id:0 ~name:"t"
      ~match_fields:(Field.Set.of_list (Array.to_list Field.all))
      ~miss
  in
  List.iter (Oftable.add_rule t) rules;
  t

let test_oftable_priority_selection () =
  let fm_broad = Fmatch.of_fields [ (Field.Vlan, 1) ] in
  let fm_narrow = Fmatch.of_fields [ (Field.Vlan, 1); (Field.Tp_dst, 80) ] in
  let t =
    mk_table
      [
        Ofrule.v ~id:1 ~priority:1 ~fmatch:fm_broad ~action:(Action.output 1);
        Ofrule.v ~id:2 ~priority:10 ~fmatch:fm_narrow ~action:(Action.output 2);
      ]
  in
  let flow = Flow.make [ (Field.Vlan, 1); (Field.Tp_dst, 80) ] in
  (match (Oftable.lookup t flow).Oftable.outcome with
  | `Hit r -> Alcotest.(check int) "narrow wins" 2 r.Ofrule.id
  | `Miss -> Alcotest.fail "expected hit");
  let flow2 = Flow.make [ (Field.Vlan, 1); (Field.Tp_dst, 81) ] in
  match (Oftable.lookup t flow2).Oftable.outcome with
  | `Hit r -> Alcotest.(check int) "broad catches rest" 1 r.Ofrule.id
  | `Miss -> Alcotest.fail "expected hit"

let test_oftable_tie_break_lowest_id () =
  let fm = Fmatch.of_fields [ (Field.Vlan, 1) ] in
  let fm2 = Fmatch.of_fields [ (Field.Vlan, 1); (Field.In_port, 0) ] in
  let t =
    mk_table
      [
        Ofrule.v ~id:5 ~priority:3 ~fmatch:fm ~action:(Action.output 1);
        Ofrule.v ~id:2 ~priority:3 ~fmatch:fm2 ~action:(Action.output 2);
      ]
  in
  let flow = Flow.make [ (Field.Vlan, 1) ] in
  match (Oftable.lookup t flow).Oftable.outcome with
  | `Hit r -> Alcotest.(check int) "lowest id wins tie" 2 r.Ofrule.id
  | `Miss -> Alcotest.fail "expected hit"

let test_oftable_remove () =
  let fm = Fmatch.of_fields [ (Field.Vlan, 1) ] in
  let t = mk_table [ Ofrule.v ~id:1 ~priority:1 ~fmatch:fm ~action:(Action.drop ()) ] in
  Alcotest.(check bool) "removed" true (Oftable.remove_rule t 1);
  Alcotest.(check bool) "absent" false (Oftable.remove_rule t 1);
  match (Oftable.lookup t (Flow.make [ (Field.Vlan, 1) ])).Oftable.outcome with
  | `Miss -> ()
  | `Hit _ -> Alcotest.fail "rule not removed"

(* The paper's section 4.2.3 example: rules at /32, /24, /16, /8 with
   descending priorities; a flow matching the /16 must get a wildcard that
   excludes the /32 and /24 rules with prefix-extension bits. *)
let test_minimal_unwildcarding_paper_example () =
  let mk id priority len ip =
    Ofrule.v ~id ~priority
      ~fmatch:(Fmatch.with_prefix Fmatch.any Field.Ip_dst ~value:(Headers.ipv4 ip) ~len)
      ~action:(Action.output id)
  in
  let t =
    mk_table
      [
        mk 1 400 32 "192.168.14.15";
        mk 2 300 24 "192.168.14.0";
        mk 3 200 16 "192.168.0.0";
        mk 4 100 8 "192.0.0.0";
      ]
  in
  let flow = Flow.make [ (Field.Ip_dst, Headers.ipv4 "192.168.21.27") ] in
  let result = Oftable.lookup t flow in
  (match result.Oftable.outcome with
  | `Hit r -> Alcotest.(check int) "matches /16 rule" 3 r.Ofrule.id
  | `Miss -> Alcotest.fail "expected hit");
  let m = Mask.get result.Oftable.consulted Field.Ip_dst in
  (* The paper derives 255.255.240.0 (/20): enough bits to exclude the /24
     (and a fortiori the /32), no more. *)
  Alcotest.(check int) "paper's /20 wildcard" (Headers.ipv4 "255.255.240.0") m

(* Soundness of the consulted wildcard: any flow agreeing with the original
   on the consulted bits must select the same rule (or miss alike). *)
let prop_unwildcard_sound =
  QCheck2.Test.make ~name:"consulted wildcard preserves the winner" ~count:120
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Gf_util.Rng.create seed in
      let rules =
        List.init 60 (fun id -> pool_rule rng ~id ~action:(Action.output id))
      in
      let t = mk_table rules in
      let ok = ref true in
      for _ = 1 to 40 do
        let flow = pool_flow rng in
        let r1 = Oftable.lookup t flow in
        for _ = 1 to 5 do
          let probe = agreeing_flow rng r1.Oftable.consulted flow in
          let r2 = Oftable.lookup t probe in
          let same =
            match (r1.Oftable.outcome, r2.Oftable.outcome) with
            | `Hit a, `Hit b -> a.Ofrule.id = b.Ofrule.id
            | `Miss, `Miss -> true
            | `Hit _, `Miss | `Miss, `Hit _ -> false
          in
          if not same then ok := false
        done
      done;
      !ok)

(* The wildcard should also be reasonably tight: matching a lone rule in an
   otherwise empty table must consult exactly that rule's mask. *)
let test_unwildcard_tight_single_rule () =
  let fm = Fmatch.of_fields [ (Field.Vlan, 3) ] in
  let t = mk_table [ Ofrule.v ~id:1 ~priority:1 ~fmatch:fm ~action:(Action.drop ()) ] in
  let result = Oftable.lookup t (Flow.make [ (Field.Vlan, 3); (Field.Tp_dst, 99) ]) in
  Alcotest.check mask_testable "exactly the rule mask" (Fmatch.mask fm)
    result.Oftable.consulted

let test_unwildcard_disjoint_tuple_free () =
  (* A probed tuple whose keys are all far from the flow must cost few
     bits. *)
  let narrow =
    Ofrule.v ~id:1 ~priority:10
      ~fmatch:
        (Fmatch.with_prefix Fmatch.any Field.Ip_dst ~value:(Headers.ipv4 "172.16.0.1")
           ~len:32)
      ~action:(Action.output 1)
  in
  let broad =
    Ofrule.v ~id:2 ~priority:1
      ~fmatch:
        (Fmatch.with_prefix Fmatch.any Field.Ip_dst ~value:(Headers.ipv4 "10.0.0.0")
           ~len:8)
      ~action:(Action.output 2)
  in
  let t = mk_table [ narrow; broad ] in
  let result = Oftable.lookup t (Flow.make [ (Field.Ip_dst, Headers.ipv4 "10.1.2.3") ]) in
  let bits = Gf_util.Bitops.popcount (Mask.get result.Oftable.consulted Field.Ip_dst) in
  Alcotest.(check bool)
    (Printf.sprintf "few ip bits consulted (%d)" bits)
    true (bits <= 8)

let test_pipeline_structure () =
  let rng = Gf_util.Rng.create 11 in
  let p = random_pipeline rng ~tables:4 ~rules_per_table:5 in
  Alcotest.(check int) "tables" 4 (Pipeline.table_count p);
  Alcotest.(check int) "rules" 20 (Pipeline.rule_count p);
  Alcotest.(check bool) "table lookup" true (Pipeline.table_opt p 2 <> None);
  Alcotest.(check bool) "missing table" true (Pipeline.table_opt p 42 = None)

let test_pipeline_version_bumps () =
  let rng = Gf_util.Rng.create 12 in
  let p = random_pipeline rng ~tables:3 ~rules_per_table:2 in
  let v0 = Pipeline.version p in
  Pipeline.add_rule p ~table:0
    (pool_rule rng ~id:(Pipeline.fresh_rule_id p) ~action:(Action.drop ()));
  Alcotest.(check bool) "bumped on add" true (Pipeline.version p > v0);
  let v1 = Pipeline.version p in
  Alcotest.(check bool) "no bump on missing remove" true
    ((not (Pipeline.remove_rule p ~table:0 999_999)) && Pipeline.version p = v1)

let test_executor_terminates_and_traces () =
  let rng = Gf_util.Rng.create 13 in
  let p = random_pipeline rng ~tables:5 ~rules_per_table:8 in
  for _ = 1 to 200 do
    let flow = pool_flow rng in
    match Executor.execute p flow with
    | Error e -> Alcotest.failf "executor error: %a" Executor.pp_error e
    | Ok tr ->
        Alcotest.(check bool) "non-empty" true (Traversal.length tr >= 1);
        Alcotest.(check flow_testable) "input recorded" flow tr.Traversal.input;
        (* Steps chain: each flow_out is the next flow_in. *)
        let steps = tr.Traversal.steps in
        for i = 0 to Array.length steps - 2 do
          Alcotest.(check flow_testable) "chained" steps.(i).Traversal.flow_out
            steps.(i + 1).Traversal.flow_in
        done;
        Alcotest.(check flow_testable) "output is last flow_out"
          steps.(Array.length steps - 1).Traversal.flow_out tr.Traversal.output
  done

let test_executor_loop_guard () =
  (* A table that resubmits to itself must hit the loop limit... tables here
     are feed-forward, so emulate with goto to an unknown table instead. *)
  let t0 =
    Oftable.create ~id:0 ~name:"t0" ~match_fields:Field.Set.empty
      ~miss:(Action.goto 7)
  in
  let p = Pipeline.create ~name:"bad" ~entry:0 [ t0 ] in
  match Executor.execute p Flow.zero with
  | Error (Executor.Bad_goto 7) -> ()
  | Error e -> Alcotest.failf "unexpected error %a" Executor.pp_error e
  | Ok _ -> Alcotest.fail "expected Bad_goto"

let test_executor_trace_prefix () =
  let rng = Gf_util.Rng.create 14 in
  let p = random_pipeline rng ~tables:5 ~rules_per_table:8 in
  let flow = pool_flow rng in
  match Executor.execute p flow with
  | Error _ -> Alcotest.fail "unexpected error"
  | Ok tr ->
      let n = Traversal.length tr in
      if n >= 2 then begin
        let prefix = Executor.trace ~max_steps:1 p flow in
        Alcotest.(check int) "one step" 1 (Array.length prefix.Executor.prefix_steps);
        match prefix.Executor.status with
        | `More next ->
            Alcotest.(check int) "next table matches full trace" next
              tr.Traversal.steps.(1).Traversal.table_id
        | `Terminal _ | `Stuck _ -> Alcotest.fail "expected More"
      end

(* Traversal re-basing: a field consulted after being overwritten must not
   constrain the megaflow wildcard. *)
let test_traversal_rebasing () =
  let t0 =
    Oftable.create ~id:0 ~name:"t0" ~match_fields:(Field.Set.singleton Field.Vlan)
      ~miss:(Action.drop ())
  in
  Oftable.add_rule t0
    (Ofrule.v ~id:0 ~priority:1
       ~fmatch:(Fmatch.of_fields [ (Field.Vlan, 1) ])
       ~action:(Action.goto ~set_fields:[ (Field.Tp_dst, 8080) ] 1));
  let t1 =
    Oftable.create ~id:1 ~name:"t1" ~match_fields:(Field.Set.singleton Field.Tp_dst)
      ~miss:(Action.drop ())
  in
  Oftable.add_rule t1
    (Ofrule.v ~id:1 ~priority:1
       ~fmatch:(Fmatch.of_fields [ (Field.Tp_dst, 8080) ])
       ~action:(Action.output 1));
  let p = Pipeline.create ~name:"rebase" ~entry:0 [ t0; t1 ] in
  let flow = Flow.make [ (Field.Vlan, 1); (Field.Tp_dst, 443) ] in
  match Executor.execute p flow with
  | Error _ -> Alcotest.fail "unexpected error"
  | Ok tr ->
      let w = Traversal.megaflow_wildcard tr in
      Alcotest.(check int) "tp_dst not in input wildcard" 0 (Mask.get w Field.Tp_dst);
      Alcotest.(check int) "vlan in input wildcard" (Field.full_mask Field.Vlan)
        (Mask.get w Field.Vlan);
      (* The commit must replay the rewrite even though table 1 matched the
         rewritten value. *)
      let commit = Traversal.segment_commit tr ~first:0 ~last:(Traversal.length tr - 1) in
      Alcotest.(check bool) "commit contains rewrite" true
        (List.mem (Field.Tp_dst, 8080) commit)

let test_traversal_commit_composition () =
  (* Last writer wins; rewrites to the incumbent value are preserved. *)
  let mk_chain =
    let t0 =
      Oftable.create ~id:0 ~name:"t0" ~match_fields:Field.Set.empty
        ~miss:(Action.goto ~set_fields:[ (Field.Vlan, 5) ] 1)
    in
    let t1 =
      Oftable.create ~id:1 ~name:"t1" ~match_fields:Field.Set.empty
        ~miss:(Action.output ~set_fields:[ (Field.Vlan, 6); (Field.Tp_src, 1) ] 1)
    in
    Pipeline.create ~name:"commit" ~entry:0 [ t0; t1 ]
  in
  let flow = Flow.make [ (Field.Vlan, 6) ] in
  match Executor.execute mk_chain flow with
  | Error _ -> Alcotest.fail "unexpected error"
  | Ok tr ->
      let commit = Traversal.segment_commit tr ~first:0 ~last:(Traversal.length tr - 1) in
      Alcotest.(check bool) "last writer wins" true (List.mem (Field.Vlan, 6) commit);
      Alcotest.(check bool) "tp_src rewrite recorded" true
        (List.mem (Field.Tp_src, 1) commit)

let test_builder_validation () =
  let open Builder in
  let good =
    {
      spec_name = "g";
      entry_table = 0;
      tables =
        [
          { table_id = 0; table_name = "a"; fields = [ Field.In_port ] };
          { table_id = 1; table_name = "b"; fields = [ Field.Vlan ] };
        ];
      traversals =
        [ { hops = [ { table = 0; hop_fields = [ Field.In_port ] }; { table = 1; hop_fields = [] } ] } ];
    }
  in
  Alcotest.(check bool) "valid" true (validate good = Ok ());
  let dup = { good with tables = good.tables @ [ { table_id = 0; table_name = "c"; fields = [] } ] } in
  Alcotest.(check bool) "duplicate ids rejected" true (Result.is_error (validate dup));
  let bad_entry = { good with entry_table = 9 } in
  Alcotest.(check bool) "bad entry rejected" true (Result.is_error (validate bad_entry));
  let decreasing =
    {
      good with
      traversals =
        [ { hops = [ { table = 1; hop_fields = [] }; { table = 0; hop_fields = [] } ] } ];
    }
  in
  Alcotest.(check bool) "decreasing rejected" true (Result.is_error (validate decreasing));
  let bad_fields =
    {
      good with
      traversals = [ { hops = [ { table = 0; hop_fields = [ Field.Tp_dst ] } ] } ];
    }
  in
  Alcotest.(check bool) "hop fields exceed table" true
    (Result.is_error (validate bad_fields))

let test_builder_instantiate_miss_chain () =
  let open Builder in
  let spec =
    {
      spec_name = "chain";
      entry_table = 0;
      tables =
        [
          { table_id = 0; table_name = "a"; fields = [] };
          { table_id = 2; table_name = "b"; fields = [] };
        ];
      traversals = [ { hops = [ { table = 0; hop_fields = [] } ] } ];
    }
  in
  let p = instantiate spec in
  (* Misses chain 0 -> 2 -> drop. *)
  match Executor.execute p Flow.zero with
  | Ok tr ->
      Alcotest.(check (list int)) "miss path" [ 0; 2 ] (Traversal.path tr);
      Alcotest.check terminal_testable "drops" Action.Drop tr.Traversal.terminal
  | Error _ -> Alcotest.fail "unexpected error"

(* Adversarial nesting: many rules on ONE field with nested prefixes and
   crossing priorities — the hardest case for minimal exclusion. *)
let prop_unwildcard_nested_prefixes =
  QCheck2.Test.make ~name:"nested-prefix exclusion stays sound" ~count:80
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Gf_util.Rng.create seed in
      let rules =
        List.init 40 (fun id ->
            let len = 8 + (4 * Gf_util.Rng.int rng 7) (* 8..32 step 4 *) in
            (* Cluster networks so prefixes genuinely nest. *)
            let net =
              (10 lsl 24)
              lor (Gf_util.Rng.int rng 4 lsl 16)
              lor (Gf_util.Rng.int rng 8 lsl 8)
              lor Gf_util.Rng.int rng 256
            in
            Ofrule.v ~id ~priority:(Gf_util.Rng.int rng 500)
              ~fmatch:(Fmatch.with_prefix Fmatch.any Field.Ip_dst ~value:net ~len)
              ~action:(Action.output id))
      in
      let t = mk_table rules in
      let ok = ref true in
      for _ = 1 to 60 do
        let flow =
          Flow.make
            [
              ( Field.Ip_dst,
                (10 lsl 24)
                lor (Gf_util.Rng.int rng 4 lsl 16)
                lor Gf_util.Rng.int rng 65536 );
            ]
        in
        let r1 = Oftable.lookup t flow in
        for _ = 1 to 6 do
          let probe = agreeing_flow rng r1.Oftable.consulted flow in
          let r2 = Oftable.lookup t probe in
          let same =
            match (r1.Oftable.outcome, r2.Oftable.outcome) with
            | `Hit a, `Hit b -> a.Ofrule.id = b.Ofrule.id
            | `Miss, `Miss -> true
            | `Hit _, `Miss | `Miss, `Hit _ -> false
          in
          if not same then ok := false
        done
      done;
      !ok)

let suite =
  [
    ("action apply_sets", `Quick, test_action_apply_sets);
    ("action equality", `Quick, test_action_equal);
    ("ofrule same_behaviour", `Quick, test_ofrule_same_behaviour);
    ("oftable priority selection", `Quick, test_oftable_priority_selection);
    ("oftable tie-break by id", `Quick, test_oftable_tie_break_lowest_id);
    ("oftable remove", `Quick, test_oftable_remove);
    ("minimal unwildcarding (paper 4.2.3 example)", `Quick, test_minimal_unwildcarding_paper_example);
    ("unwildcard tight for single rule", `Quick, test_unwildcard_tight_single_rule);
    ("unwildcard cheap for distant tuples", `Quick, test_unwildcard_disjoint_tuple_free);
    ("pipeline structure", `Quick, test_pipeline_structure);
    ("pipeline version bumps", `Quick, test_pipeline_version_bumps);
    ("executor traces chains", `Quick, test_executor_terminates_and_traces);
    ("executor bad goto", `Quick, test_executor_loop_guard);
    ("executor prefix trace", `Quick, test_executor_trace_prefix);
    ("traversal wildcard re-basing", `Quick, test_traversal_rebasing);
    ("traversal commit composition", `Quick, test_traversal_commit_composition);
    ("builder validation", `Quick, test_builder_validation);
    ("builder miss chain", `Quick, test_builder_instantiate_miss_chain);
  ]

let props = [ prop_unwildcard_sound; prop_unwildcard_nested_prefixes ]
