(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md for the experiment index).

   Usage:
     dune exec bench/main.exe                 # everything, paper scale
     dune exec bench/main.exe -- --only fig8,fig9
     dune exec bench/main.exe -- --scale 0.25 # quarter-scale quick pass
     dune exec bench/main.exe -- --list       # available experiment ids *)

let registry : (string * string * (unit -> unit)) list =
  [
    ("tab1", "Table 1: real-world pipelines", Bench_tab1.run);
    ("fig4", "Fig. 4: header-tuple sharing", Bench_fig4.run);
    ("headline", "Figs. 8-13 + Table 2: end-to-end comparison", Bench_headline.run);
    ("sweep", "Figs. 3, 14, 15: table-count sweep", Bench_sweep.run);
    ("fig16", "Fig. 16: partitioning schemes (RND/DP/1-1)", Bench_fig16.run);
    ("fig17", "Fig. 17: TSS vs NuevoMatch software search", Bench_fig17.run);
    ("fig18", "Fig. 18: dynamic workload arrival", Bench_fig18.run);
    ("fig19", "Fig. 19: CPU core scaling", Bench_fig19.run);
    ("sec636", "Sec. 6.3.6: latencies, revalidation, resources", Bench_sec636.run);
    ("ablation", "Ablations: unwildcarding & adaptive fallback", Bench_ablation.run);
    ("micro", "Bechamel microbenchmarks", Bench_micro.run);
  ]

(* Aliases so every figure id from DESIGN.md resolves. *)
let aliases =
  [
    ("fig3", "sweep"); ("fig8", "headline"); ("fig9", "headline");
    ("fig10", "headline"); ("fig11", "headline"); ("fig12", "headline");
    ("fig13", "headline"); ("tab2", "headline"); ("fig14", "sweep");
    ("fig15", "sweep");
  ]

let resolve id =
  let id = String.lowercase_ascii (String.trim id) in
  match List.assoc_opt id aliases with Some target -> target | None -> id

let () =
  let only = ref [] in
  let list_only = ref false in
  let spec =
    [
      ( "--only",
        Arg.String
          (fun s -> only := !only @ List.map resolve (String.split_on_char ',' s)),
        "IDS  comma-separated experiment ids (see --list)" );
      ("--scale", Arg.Set_float Common.scale, "F  scale workload sizes by F (default 1.0)");
      ("--seed", Arg.Set_int Common.seed, "N  master random seed (default 42)");
      ("--list", Arg.Set list_only, " list experiment ids and exit");
      ("--quiet-build", Arg.Set Common.quiet_build, " suppress workload build logs");
    ]
  in
  Arg.parse spec
    (fun anon -> only := !only @ [ resolve anon ])
    "gigaflow benchmark harness";
  if !list_only then begin
    List.iter (fun (id, descr, _) -> Printf.printf "%-10s %s\n" id descr) registry;
    exit 0
  end;
  let selected =
    match !only with
    | [] -> registry
    | ids ->
        List.filter (fun (id, _, _) -> List.mem id ids) registry
  in
  if selected = [] then begin
    prerr_endline "no matching experiments; try --list";
    exit 1
  end;
  Printf.printf
    "Gigaflow reproduction benchmarks (seed %d, scale %.2f)\n\
     Workloads: %d combos, %d unique flows per pipeline/locality\n%!"
    !Common.seed !Common.scale (Common.combos ()) (Common.unique_flows ());
  let t0 = Unix.gettimeofday () in
  List.iter (fun (_, _, run) -> run ()) selected;
  Printf.printf "\nTotal bench time: %.0f s\n%!" (Unix.gettimeofday () -. t0)
