(* Fig. 19 (Appendix A): CPU core scaling.  Cache misses are RSS-hashed
   across vSwitch cores; per-core slowpath load falls proportionally, and
   Gigaflow's lower total miss volume keeps the absolute per-core load
   below Megaflow's at every core count. *)

open Common
module Ruleset = Gf_workload.Ruleset
module Multicore = Gf_sim.Multicore

let run () =
  section "Fig. 19: vSwitch CPU load vs number of cores (RSS over misses)";
  List.iter
    (fun (name, backend) ->
      let r = headline "PSC" Ruleset.High backend in
      let t =
        Tablefmt.create
          ~title:(Printf.sprintf "%s (PSC, high locality)" name)
          [ "Cores"; "Max per-core load (Mcycles)"; "Total (Mcycles)" ]
      in
      List.iter
        (fun cores ->
          let d = Multicore.distribute ~cores r.flow_cycles in
          Tablefmt.add_row t
            [
              string_of_int cores;
              Tablefmt.fmt_float ~dp:1 (float_of_int (Multicore.max_load d) /. 1e6);
              Tablefmt.fmt_float ~dp:1 (float_of_int (Multicore.total_load d) /. 1e6);
            ])
        [ 1; 2; 4; 8 ];
      Tablefmt.print t)
    [ ("Megaflow (32K)", "megaflow"); ("Gigaflow (4x8K)", "gigaflow") ];
  note "Paper: per-core misses fall proportionally with cores for both;";
  note "Gigaflow carries a lower total CPU load throughout."
