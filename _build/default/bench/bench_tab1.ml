(* Table 1: the real-world vSwitch pipelines. *)

open Common

let run () =
  section "Table 1: real-world Open vSwitch pipelines";
  let t = Tablefmt.create [ "Pipeline"; "Description"; "Tables"; "Traversals" ] in
  List.iter
    (fun info ->
      Tablefmt.add_row t
        [
          info.Catalog.code;
          info.Catalog.description;
          string_of_int (Catalog.table_count info);
          string_of_int (Catalog.traversal_count info);
        ])
    Catalog.all;
  Tablefmt.print t;
  note "Paper: OFD 10/5, PSC 7/2, OLS 30/23, ANT 22/20, OTL 8/11."
