(* Section 6.3.6: deployment-point latencies and cache revalidation speed. *)

open Common
module Ruleset = Gf_workload.Ruleset
module Latency = Gf_nic.Latency
module Megaflow = Gf_cache.Megaflow
module Executor = Gf_pipeline.Executor
module Gigaflow = Gf_core.Gigaflow
module Resources = Gf_nic.Resources

let deployments =
  [
    Latency.Offload_fpga;
    Latency.Dpdk_host;
    Latency.Dpdk_arm;
    Latency.Kernel_host;
    Latency.Kernel_arm;
  ]

let latency_table () =
  let t =
    Tablefmt.create ~title:"Cache-hit latency by deployment point (model constants)"
      [ "Deployment"; "Mean (us)"; "Stddev (us)" ]
  in
  List.iter
    (fun d ->
      Tablefmt.add_row t
        [
          Latency.deployment_name d;
          Tablefmt.fmt_float ~dp:2 (Latency.cache_hit_us d);
          Tablefmt.fmt_float ~dp:1 (Latency.cache_hit_stddev_us d);
        ])
    deployments;
  Tablefmt.print t;
  note "Paper: 8.62 +/- 0.4 us for both FPGA offloads; 12.61 (DPDK/host),";
  note "51.26 (DPDK/ARM), 671.48 (kernel/host), 3606.37 us (kernel/ARM)."

let revalidation () =
  say "";
  say "  Revalidation: Megaflow (32K) vs Gigaflow (4x8K) on OLS";
  let w = workload "OLS" Ruleset.High in
  let pipeline = Gf_workload.Pipebench.pipeline w in
  let mf = Megaflow.create ~capacity:(scaled 32_768) () in
  let gf =
    Gigaflow.create (Gf_core.Config.v ~tables:4 ~table_capacity:(scaled 8192) ())
  in
  (* Fill both caches from the same flows. *)
  let flows = w.Gf_workload.Pipebench.flows in
  let n = min (Array.length flows) (scaled 60_000) in
  for i = 0 to n - 1 do
    ignore (Gigaflow.handle_miss gf ~now:0.0 ~pipeline flows.(i));
    match Executor.execute pipeline flows.(i) with
    | Ok tr -> ignore (Megaflow.install mf ~now:0.0 ~version:0 tr)
    | Error _ -> ()
  done;
  let time f =
    let t0 = Unix.gettimeofday () in
    let result = f () in
    (result, 1000.0 *. (Unix.gettimeofday () -. t0))
  in
  let (_, mf_work), mf_ms = time (fun () -> Megaflow.revalidate mf pipeline) in
  let (_, gf_work), gf_ms = time (fun () -> Gigaflow.revalidate gf pipeline) in
  let t =
    Tablefmt.create
      [ "Cache"; "Entries"; "Lookups re-executed"; "Per entry"; "Wall (ms)" ]
  in
  let mf_entries = Megaflow.occupancy mf in
  let gf_entries = Gf_core.Ltm_cache.occupancy (Gigaflow.cache gf) in
  Tablefmt.add_row t
    [
      "Megaflow (32K)";
      Tablefmt.fmt_int mf_entries;
      Tablefmt.fmt_int mf_work;
      Tablefmt.fmt_float ~dp:2 (float_of_int mf_work /. float_of_int (max 1 mf_entries));
      Tablefmt.fmt_float ~dp:0 mf_ms;
    ];
  Tablefmt.add_row t
    [
      "Gigaflow (4x8K)";
      Tablefmt.fmt_int gf_entries;
      Tablefmt.fmt_int gf_work;
      Tablefmt.fmt_float ~dp:2 (float_of_int gf_work /. float_of_int (max 1 gf_entries));
      Tablefmt.fmt_float ~dp:0 gf_ms;
    ];
  Tablefmt.print t;
  note "Paper: revalidating Megaflow (32K, OLS) takes 527 ms vs 272 ms for";
  note "Gigaflow — ~2x faster, because sub-traversals are shorter and fewer";
  note "entries are live."

let resources () =
  say "";
  say "  FPGA resource/power model (paper section 5 anchor):";
  let e = Resources.estimate ~tables:4 ~table_capacity:8192 in
  note "Gigaflow 4x8K on Alveo U250: %s" (Format.asprintf "%a" Resources.pp e);
  note "Paper prototype: 47%% LUT, 33%% FF, 49%% BRAM/URAM, 38 W, 100G."

let run () =
  section "Section 6.3.6: deployment latencies, revalidation, resources";
  latency_table ();
  revalidation ();
  resources ()
