bench/bench_fig4.ml: Common Gf_workload List Printf Tablefmt
