bench/bench_fig17.ml: Common Datapath Gf_workload Metrics Tablefmt
