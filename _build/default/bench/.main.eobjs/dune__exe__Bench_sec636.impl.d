bench/bench_sec636.ml: Array Common Format Gf_cache Gf_core Gf_nic Gf_pipeline Gf_workload List Tablefmt Unix
