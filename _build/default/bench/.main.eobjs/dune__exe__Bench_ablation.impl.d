bench/bench_ablation.ml: Common Datapath Gf_core Gf_pipeline Gf_workload List Metrics Tablefmt
