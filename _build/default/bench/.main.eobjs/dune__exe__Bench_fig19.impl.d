bench/bench_fig19.ml: Common Gf_sim Gf_workload List Printf Tablefmt
