bench/main.ml: Arg Bench_ablation Bench_fig16 Bench_fig17 Bench_fig18 Bench_fig19 Bench_fig4 Bench_headline Bench_micro Bench_sec636 Bench_sweep Bench_tab1 Common List Printf String Unix
