bench/bench_tab1.ml: Catalog Common List Tablefmt
