bench/bench_micro.ml: Analyze Array Bechamel Benchmark Common Gf_cache Gf_core Gf_pipeline Gf_workload Hashtbl Instance List Measure Printf Staged Tablefmt Test Time Toolkit
