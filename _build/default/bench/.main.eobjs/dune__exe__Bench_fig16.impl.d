bench/bench_fig16.ml: Common Datapath Gf_core Gf_workload List Metrics Tablefmt
