bench/bench_fig18.ml: Array Common Datapath Float Gf_workload List Printf Tablefmt
