bench/main.mli:
