bench/bench_headline.ml: Common Float Gf_core Gf_sim Gf_workload List Metrics Tablefmt
