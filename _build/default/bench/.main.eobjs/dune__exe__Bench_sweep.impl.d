bench/bench_sweep.ml: Common Datapath Float Gf_core Gf_workload Hashtbl List Metrics Printf Tablefmt
