bench/common.ml: Float Gf_core Gf_pipeline Gf_pipelines Gf_sim Gf_util Gf_workload Hashtbl Option Printf String Unix
