(* Bechamel microbenchmarks of the core operations: classifier lookups, the
   LTM cache walk, slowpath execution, partitioning and rule generation. *)

open Common
module Ruleset = Gf_workload.Ruleset
module Executor = Gf_pipeline.Executor
module Partitioner = Gf_core.Partitioner
module Rulegen = Gf_core.Rulegen
module Gigaflow = Gf_core.Gigaflow
module Megaflow = Gf_cache.Megaflow
open Bechamel
open Toolkit

let benchmarks () =
  (* A modest shared workload: one pipeline, prewarmed caches. *)
  let profile =
    {
      Gf_workload.Classbench.acl_profile with
      Gf_workload.Classbench.endpoints = 1024;
      subnets = 128;
      services = 256;
    }
  in
  let w =
    Gf_workload.Pipebench.make ~profile ~combos:8192 ~unique_flows:10_000
      ~duration:30.0 ~info:(info "PSC") ~locality:Ruleset.High ~seed:!seed ()
  in
  let pipeline = Gf_workload.Pipebench.pipeline w in
  let flows = w.Gf_workload.Pipebench.flows in
  let gf = Gigaflow.create (Gf_core.Config.v ~tables:4 ~table_capacity:8192 ()) in
  let mf = Megaflow.create ~capacity:32_768 () in
  Array.iteri
    (fun i flow ->
      if i < 8000 then begin
        ignore (Gigaflow.handle_miss gf ~now:0.0 ~pipeline flow);
        match Executor.execute pipeline flow with
        | Ok tr -> ignore (Megaflow.install mf ~now:0.0 ~version:0 tr)
        | Error _ -> ()
      end)
    flows;
  let traversals =
    Array.to_list flows |> List.filteri (fun i _ -> i < 64)
    |> List.filter_map (fun flow ->
           match Executor.execute pipeline flow with Ok tr -> Some tr | Error _ -> None)
    |> Array.of_list
  in
  let idx = ref 0 in
  let next arr =
    idx := (!idx + 1) land 0xFFFF;
    arr.(!idx mod Array.length arr)
  in
  [
    Test.make ~name:"slowpath: pipeline execute (PSC)"
      (Staged.stage (fun () -> ignore (Executor.execute pipeline (next flows))));
    Test.make ~name:"megaflow: hw cache lookup"
      (Staged.stage (fun () -> ignore (Megaflow.lookup mf ~now:1.0 (next flows))));
    Test.make ~name:"gigaflow: LTM cache walk"
      (Staged.stage (fun () -> ignore (Gigaflow.lookup gf ~now:1.0 ~pipeline (next flows))));
    Test.make ~name:"partitioner: disjoint DP"
      (Staged.stage (fun () ->
           ignore
             (Partitioner.partition Partitioner.Disjoint ~max_segments:4
                (next traversals))));
    Test.make ~name:"rulegen: rules_of_partition"
      (Staged.stage (fun () ->
           let tr = next traversals in
           let segs = Partitioner.partition Partitioner.Disjoint ~max_segments:4 tr in
           ignore (Rulegen.rules_of_partition ~version:0 tr segs)));
  ]

let run () =
  section "Microbenchmarks (Bechamel): core operation costs";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let tests = benchmarks () in
  let results =
    List.map
      (fun test ->
        let results = Benchmark.all cfg instances test in
        (Test.name test, results))
      tests
  in
  let t = Tablefmt.create [ "Operation"; "ns/op (monotonic clock)" ] in
  List.iter
    (fun (name, raw) ->
      let analyzed =
        Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
          (Instance.monotonic_clock) raw
      in
      Hashtbl.iter
        (fun _ result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Tablefmt.add_row t [ name; Printf.sprintf "%.0f" est ]
          | _ -> Tablefmt.add_row t [ name; "n/a" ])
        analyzed)
    results;
  Tablefmt.print t;
  note "Simulator throughput context: one packet = one cache walk; a miss";
  note "adds slowpath execution + partitioning + rule generation."
