(* Fig. 4: average frequency of a k-field header tuple recurring in a
   ClassBench-style ruleset (200,000 rules), k = 5 down to 1. *)

open Common
module Classbench = Gf_workload.Classbench

let run () =
  section "Fig. 4: header-tuple sharing in the ClassBench-style ruleset";
  let n = scaled 200_000 in
  let rules = Classbench.generate (Classbench.create ~seed:!seed ()) n in
  let t =
    Tablefmt.create ~title:(Printf.sprintf "%d rules" n)
      [ "Matching fields"; "Avg rules sharing a tuple" ]
  in
  List.iter
    (fun k ->
      let s = Classbench.five_tuple_sharing rules ~k in
      Tablefmt.add_row t [ string_of_int k; Tablefmt.fmt_float ~dp:2 s ])
    [ 5; 4; 3; 2; 1 ];
  Tablefmt.print t;
  note "Paper: sharing rises steeply as fields decrease; the full 5-tuple";
  note "is nearly unique (~1.03) while 1-4 field tuples are shared by";
  note "hundreds of rules on average."
