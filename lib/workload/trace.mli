(** CAIDA-style packet trace synthesis.

    Only two statistics of the CAIDA traces matter to the paper's
    experiments — heavy-tailed flow sizes and overlapping flow lifetimes
    with bursty inter-packet gaps — and both are modelled here: flow sizes
    are Pareto-distributed, each flow starts at a uniformly random offset
    in the trace and emits packets separated by exponential gaps. *)

type packet = {
  time : float;  (** seconds from trace start *)
  flow_id : int;  (** index into the unique-flow array *)
  flow : Gf_flow.Flow.t;
}

type t = {
  packets : packet array;  (** sorted by time *)
  unique_flows : int;
  duration : float;
}

val generate :
  ?duration:float ->
  ?mean_flow_size:float ->
  ?max_flow_size:int ->
  ?start_spread:float ->
  ?lifetime_frac:float ->
  seed:int ->
  flows:Gf_flow.Flow.t array ->
  unit ->
  t
(** [duration] defaults to 60 s; [mean_flow_size] to 8 packets;
    [max_flow_size] caps the Pareto tail (default 2048); flows start
    uniformly within the first [start_spread] of the trace (default 0.5)
    and live for roughly [lifetime_frac] of it (default 0.3).
    Deterministic in [seed]. *)

val churn :
  ?duration:float ->
  ?epochs:int ->
  ?active:int ->
  ?turnover:float ->
  ?packets_per_epoch:int ->
  seed:int ->
  flows:Gf_flow.Flow.t array ->
  unit ->
  t
(** A capacity-pressure trace: the trace is cut into [epochs] equal slices
    (default 30 over a 60 s [duration]); each slice draws
    [packets_per_epoch] packets (default 2048) uniformly from an
    [active]-wide window (default 512) into [flows], and between slices
    the window slides by [turnover * active] flows (default 0.25),
    wrapping around the array.  The rotating population keeps installing
    fresh entries while recently-cold ones still occupy space — the
    regime where replacement policy choice matters.  Deterministic in
    [seed]. *)

val elephant_mice :
  ?duration:float ->
  ?elephants:int ->
  ?elephant_share:float ->
  ?packets:int ->
  seed:int ->
  flows:Gf_flow.Flow.t array ->
  unit ->
  t
(** A two-population skew trace: the first [elephants] flows (default 16)
    carry [elephant_share] of the [packets] (defaults 0.8 and 32768); the
    rest are mice drawn uniformly — each appears only a handful of times
    over the whole trace.  The regime where hardware-slot admission policy
    dominates: any slot spent on a mouse is wasted.  Deterministic in
    [seed]. *)

val drifting_skew :
  ?duration:float ->
  ?epochs:int ->
  ?zipf_s:float ->
  ?drift:int ->
  ?packets_per_epoch:int ->
  seed:int ->
  flows:Gf_flow.Flow.t array ->
  unit ->
  t
(** Zipf(s=[zipf_s], default 1.2) traffic whose rank -> flow mapping
    rotates by [drift] flows (default 64) each of [epochs] epochs
    (default 8 x 4096 packets): the heavy-hitter identity set slides, so
    entries for yesterday's elephants go cold while still holding cache
    space.  Separates admission schemes that track drift (decay +
    demotion) from ones that only gate installs.  Deterministic in
    [seed]. *)

val packet_count : t -> int

(** {1 Streaming}

    A pull-based packet source for the batched engine: the consumer hands
    over its own buffers and receives up to [max] packets per call, so
    arbitrarily long traces cost constant memory (no materialised packet
    array, no global sort). *)

type stream

val fill :
  stream ->
  times:float array ->
  flow_ids:int array ->
  flows:Gf_flow.Flow.t array ->
  max:int ->
  int
(** Pull the next batch: writes up to [max] packets into the buffer
    prefixes (all three arrays must have length >= [max]) and returns the
    count written; [0] means end of stream.  Times are nondecreasing
    across calls.  A given [flow_id] is always paired with the same flow
    value (the contract the engine's memoisation relies on). *)

val stream_unique_flows : stream -> int
val stream_duration : stream -> float

val stream_of_trace : t -> stream
(** Iterate a materialised trace (one pass; for determinism comparisons
    against array-based replay). *)

val steady :
  ?duration:float ->
  ?zipf_s:float ->
  packets:int ->
  seed:int ->
  flows:Gf_flow.Flow.t array ->
  unit ->
  stream
(** A constant-memory steady-state source: each of [packets] packets draws
    its flow Zipf(s=[zipf_s], default 1.1) independently over [flows]
    (rank 0 most popular) with exponential inter-packet gaps averaging
    [duration / packets] seconds.  The popular-flow working set is stable
    for the whole stream — the regime where caches (and the engine's
    memo replay) converge — in contrast to {!generate}'s flow churn.
    Deterministic in [seed]. *)

val trace_of_stream : ?batch:int -> stream -> t
(** Materialise a stream (test/debug helper — drains it fully). *)

val concat : t -> t -> offset:float -> t
(** [concat a b ~offset] shifts [b]'s packets by [offset] seconds and merges
    (for the paper's Fig. 18 dynamic-arrival experiment).  Flow ids of [b]
    are renumbered after [a]'s. *)
