(** Pipebench — the paper's workload tool (section 6.1): one call builds a
    populated pipeline, a unique-flow set of the requested locality and a
    CAIDA-style packet trace over it. *)

type workload = {
  ruleset : Ruleset.t;
  flows : Gf_flow.Flow.t array;
  trace : Trace.t;
  locality : Ruleset.locality;
}

val make :
  ?profile:Classbench.profile ->
  ?combos:int ->
  ?unique_flows:int ->
  ?duration:float ->
  ?mean_flow_size:float ->
  info:Gf_pipelines.Catalog.info ->
  locality:Ruleset.locality ->
  seed:int ->
  unit ->
  workload
(** Defaults: 4096 combos, 100_000 unique flows, 60 s trace, mean flow size
    8 packets.  Fully deterministic in [seed]. *)

val make_churn :
  ?profile:Classbench.profile ->
  ?combos:int ->
  ?unique_flows:int ->
  ?duration:float ->
  ?epochs:int ->
  ?active:int ->
  ?turnover:float ->
  ?packets_per_epoch:int ->
  info:Gf_pipelines.Catalog.info ->
  locality:Ruleset.locality ->
  seed:int ->
  unit ->
  workload
(** Like {!make} but the trace comes from {!Trace.churn}: a rotating
    active-flow window (size [active], [turnover] fraction replaced each of
    [epochs] epochs) that keeps every fixed-capacity cache under install
    pressure.  Same ruleset/flow determinism as {!make}. *)

val make_elephant :
  ?profile:Classbench.profile ->
  ?combos:int ->
  ?unique_flows:int ->
  ?duration:float ->
  ?elephants:int ->
  ?elephant_share:float ->
  ?packets:int ->
  info:Gf_pipelines.Catalog.info ->
  locality:Ruleset.locality ->
  seed:int ->
  unit ->
  workload
(** Like {!make} but the trace comes from {!Trace.elephant_mice}: a few
    elephants carry most packets over a sea of one-shot mice — the
    hardware-slot admission benchmark workload. *)

val make_drift :
  ?profile:Classbench.profile ->
  ?combos:int ->
  ?unique_flows:int ->
  ?duration:float ->
  ?epochs:int ->
  ?zipf_s:float ->
  ?drift:int ->
  ?packets_per_epoch:int ->
  info:Gf_pipelines.Catalog.info ->
  locality:Ruleset.locality ->
  seed:int ->
  unit ->
  workload
(** Like {!make} but the trace comes from {!Trace.drifting_skew}: Zipf
    traffic whose heavy-hitter identity set rotates each epoch. *)

val pipeline : workload -> Gf_pipeline.Pipeline.t
