type workload = {
  ruleset : Ruleset.t;
  flows : Gf_flow.Flow.t array;
  trace : Trace.t;
  locality : Ruleset.locality;
}

let make ?profile ?combos ?(unique_flows = 100_000) ?duration ?mean_flow_size ~info
    ~locality ~seed () =
  let ruleset = Ruleset.build ?profile ?combos ~info ~seed () in
  let flows = Ruleset.sample_flows ruleset ~seed:(seed lxor 0xF10) ~locality ~n:unique_flows in
  let trace = Trace.generate ?duration ?mean_flow_size ~seed:(seed lxor 0x7ACE) ~flows () in
  { ruleset; flows; trace; locality }

let make_churn ?profile ?combos ?(unique_flows = 100_000) ?duration ?epochs ?active
    ?turnover ?packets_per_epoch ~info ~locality ~seed () =
  let ruleset = Ruleset.build ?profile ?combos ~info ~seed () in
  let flows =
    Ruleset.sample_flows ruleset ~seed:(seed lxor 0xF10) ~locality ~n:unique_flows
  in
  let trace =
    Trace.churn ?duration ?epochs ?active ?turnover ?packets_per_epoch
      ~seed:(seed lxor 0x7ACE) ~flows ()
  in
  { ruleset; flows; trace; locality }

let make_elephant ?profile ?combos ?(unique_flows = 100_000) ?duration ?elephants
    ?elephant_share ?packets ~info ~locality ~seed () =
  let ruleset = Ruleset.build ?profile ?combos ~info ~seed () in
  let flows =
    Ruleset.sample_flows ruleset ~seed:(seed lxor 0xF10) ~locality ~n:unique_flows
  in
  let trace =
    Trace.elephant_mice ?duration ?elephants ?elephant_share ?packets
      ~seed:(seed lxor 0x7ACE) ~flows ()
  in
  { ruleset; flows; trace; locality }

let make_drift ?profile ?combos ?(unique_flows = 100_000) ?duration ?epochs ?zipf_s
    ?drift ?packets_per_epoch ~info ~locality ~seed () =
  let ruleset = Ruleset.build ?profile ?combos ~info ~seed () in
  let flows =
    Ruleset.sample_flows ruleset ~seed:(seed lxor 0xF10) ~locality ~n:unique_flows
  in
  let trace =
    Trace.drifting_skew ?duration ?epochs ?zipf_s ?drift ?packets_per_epoch
      ~seed:(seed lxor 0x7ACE) ~flows ()
  in
  { ruleset; flows; trace; locality }

let pipeline w = Ruleset.pipeline w.ruleset
