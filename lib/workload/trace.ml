module Rng = Gf_util.Rng

type packet = { time : float; flow_id : int; flow : Gf_flow.Flow.t }

type t = { packets : packet array; unique_flows : int; duration : float }

let generate ?(duration = 60.0) ?(mean_flow_size = 8.0) ?(max_flow_size = 2048)
    ?(start_spread = 0.5) ?(lifetime_frac = 0.3) ~seed ~flows () =
  let rng = Rng.create seed in
  let n = Array.length flows in
  let packets = ref [] in
  let total = ref 0 in
  (* Pareto with alpha=1.25: heavy tail; xmin scaled so the mean before
     capping is roughly [mean_flow_size] (mean = xmin * a / (a - 1)). *)
  let alpha = 1.25 in
  let xmin = mean_flow_size *. (alpha -. 1.0) /. alpha in
  for flow_id = 0 to n - 1 do
    let size =
      min max_flow_size (max 1 (int_of_float (Rng.pareto rng ~alpha ~xmin)))
    in
    let start = Rng.float rng (duration *. start_spread) in
    (* Spread the flow's packets over a lifetime of ~[lifetime_frac] of the
       trace with exponential gaps (bursty), so that a large fraction of
       flows is concurrently live — the paper's cache-pressure regime. *)
    let mean_gap =
      Float.max 1e-4 (duration *. (lifetime_frac /. 0.3) *. 0.5 /. float_of_int size)
    in
    let time = ref start in
    for _ = 1 to size do
      packets := { time = !time; flow_id; flow = flows.(flow_id) } :: !packets;
      incr total;
      time := !time +. Rng.exponential rng ~mean:mean_gap
    done
  done;
  let arr = Array.of_list !packets in
  Array.sort (fun a b -> compare a.time b.time) arr;
  { packets = arr; unique_flows = n; duration }

(* Churn: a rotating active window over the flow array.  Each epoch draws
   its packets uniformly from the [active]-wide window, then the window
   slides by [turnover * active] flows — old flows go cold, fresh flows
   appear, and any fixed-capacity cache sees sustained install pressure
   instead of a converging working set. *)
let churn ?(duration = 60.0) ?(epochs = 30) ?(active = 512) ?(turnover = 0.25)
    ?(packets_per_epoch = 2048) ~seed ~flows () =
  let rng = Rng.create seed in
  let n = Array.length flows in
  assert (n > 0 && epochs > 0 && packets_per_epoch >= 0);
  let active = max 1 (min active n) in
  let shift =
    int_of_float (Float.round (Float.max 0.0 turnover *. float_of_int active))
  in
  let epoch_len = duration /. float_of_int epochs in
  let packets = ref [] in
  let start = ref 0 in
  for e = 0 to epochs - 1 do
    let t0 = float_of_int e *. epoch_len in
    for _ = 1 to packets_per_epoch do
      let flow_id = (!start + Rng.int rng active) mod n in
      let time = t0 +. Rng.float rng epoch_len in
      packets := { time; flow_id; flow = flows.(flow_id) } :: !packets
    done;
    start := (!start + shift) mod n
  done;
  let arr = Array.of_list !packets in
  Array.sort (fun a b -> compare a.time b.time) arr;
  { packets = arr; unique_flows = n; duration }

let packet_count t = Array.length t.packets

let concat a b ~offset =
  let shifted =
    Array.map
      (fun p -> { p with time = p.time +. offset; flow_id = p.flow_id + a.unique_flows })
      b.packets
  in
  let merged = Array.append a.packets shifted in
  Array.sort (fun p q -> compare p.time q.time) merged;
  {
    packets = merged;
    unique_flows = a.unique_flows + b.unique_flows;
    duration = Float.max a.duration (offset +. b.duration);
  }
