module Rng = Gf_util.Rng
module Zipf = Gf_util.Zipf

type packet = { time : float; flow_id : int; flow : Gf_flow.Flow.t }

type t = { packets : packet array; unique_flows : int; duration : float }

let generate ?(duration = 60.0) ?(mean_flow_size = 8.0) ?(max_flow_size = 2048)
    ?(start_spread = 0.5) ?(lifetime_frac = 0.3) ~seed ~flows () =
  let rng = Rng.create seed in
  let n = Array.length flows in
  let packets = ref [] in
  let total = ref 0 in
  (* Pareto with alpha=1.25: heavy tail; xmin scaled so the mean before
     capping is roughly [mean_flow_size] (mean = xmin * a / (a - 1)). *)
  let alpha = 1.25 in
  let xmin = mean_flow_size *. (alpha -. 1.0) /. alpha in
  for flow_id = 0 to n - 1 do
    let size =
      min max_flow_size (max 1 (int_of_float (Rng.pareto rng ~alpha ~xmin)))
    in
    let start = Rng.float rng (duration *. start_spread) in
    (* Spread the flow's packets over a lifetime of ~[lifetime_frac] of the
       trace with exponential gaps (bursty), so that a large fraction of
       flows is concurrently live — the paper's cache-pressure regime. *)
    let mean_gap =
      Float.max 1e-4 (duration *. (lifetime_frac /. 0.3) *. 0.5 /. float_of_int size)
    in
    let time = ref start in
    for _ = 1 to size do
      packets := { time = !time; flow_id; flow = flows.(flow_id) } :: !packets;
      incr total;
      time := !time +. Rng.exponential rng ~mean:mean_gap
    done
  done;
  let arr = Array.of_list !packets in
  Array.sort (fun a b -> compare a.time b.time) arr;
  { packets = arr; unique_flows = n; duration }

(* Churn: a rotating active window over the flow array.  Each epoch draws
   its packets uniformly from the [active]-wide window, then the window
   slides by [turnover * active] flows — old flows go cold, fresh flows
   appear, and any fixed-capacity cache sees sustained install pressure
   instead of a converging working set. *)
let churn ?(duration = 60.0) ?(epochs = 30) ?(active = 512) ?(turnover = 0.25)
    ?(packets_per_epoch = 2048) ~seed ~flows () =
  let rng = Rng.create seed in
  let n = Array.length flows in
  assert (n > 0 && epochs > 0 && packets_per_epoch >= 0);
  let active = max 1 (min active n) in
  let shift =
    int_of_float (Float.round (Float.max 0.0 turnover *. float_of_int active))
  in
  let epoch_len = duration /. float_of_int epochs in
  let packets = ref [] in
  let start = ref 0 in
  for e = 0 to epochs - 1 do
    let t0 = float_of_int e *. epoch_len in
    for _ = 1 to packets_per_epoch do
      let flow_id = (!start + Rng.int rng active) mod n in
      let time = t0 +. Rng.float rng epoch_len in
      packets := { time; flow_id; flow = flows.(flow_id) } :: !packets
    done;
    start := (!start + shift) mod n
  done;
  let arr = Array.of_list !packets in
  Array.sort (fun a b -> compare a.time b.time) arr;
  { packets = arr; unique_flows = n; duration }

(* Elephant/mice: a tiny set of elephants carries [elephant_share] of the
   packets; every other packet picks a mouse uniformly from the rest of
   the flow array.  With thousands of mice and tens of thousands of
   packets each mouse shows up only a handful of times — below any sane
   hotness threshold — which is exactly the regime where admission policy
   decides who owns the scarce hardware slots. *)
let elephant_mice ?(duration = 60.0) ?(elephants = 16) ?(elephant_share = 0.8)
    ?(packets = 32_768) ~seed ~flows () =
  let rng = Rng.create seed in
  let n = Array.length flows in
  assert (n > 0 && packets >= 0);
  let elephants = max 1 (min elephants n) in
  let mice = n - elephants in
  let mean_gap = duration /. float_of_int (Stdlib.max 1 packets) in
  let time = ref 0.0 in
  let arr =
    Array.init packets (fun _ ->
        let flow_id =
          if mice = 0 || Rng.float rng 1.0 < elephant_share then
            Rng.int rng elephants
          else elephants + Rng.int rng mice
        in
        let p = { time = !time; flow_id; flow = flows.(flow_id) } in
        time := !time +. Rng.exponential rng ~mean:mean_gap;
        p)
  in
  { packets = arr; unique_flows = n; duration }

(* Drifting skew: Zipf-popular traffic whose rank -> flow mapping rotates
   by [drift] flows every epoch, so the elephant identity set slides over
   the flow array.  Yesterday's heavy hitters go cold while still holding
   cache entries — the trace that separates admission policies that track
   drift (decay + demotion) from ones that only gate installs. *)
let drifting_skew ?(duration = 60.0) ?(epochs = 8) ?(zipf_s = 1.2) ?(drift = 64)
    ?(packets_per_epoch = 4096) ~seed ~flows () =
  let rng = Rng.create seed in
  let n = Array.length flows in
  assert (n > 0 && epochs > 0 && packets_per_epoch >= 0);
  let zipf = Zipf.create ~n ~s:zipf_s in
  let epoch_len = duration /. float_of_int epochs in
  let mean_gap = epoch_len /. float_of_int (Stdlib.max 1 packets_per_epoch) in
  let arr = Array.make (epochs * packets_per_epoch) { time = 0.0; flow_id = 0; flow = Gf_flow.Flow.zero } in
  for e = 0 to epochs - 1 do
    let offset = e * drift in
    let time = ref (float_of_int e *. epoch_len) in
    for i = 0 to packets_per_epoch - 1 do
      let flow_id = (Zipf.sample zipf rng + offset) mod n in
      arr.((e * packets_per_epoch) + i) <-
        { time = !time; flow_id; flow = flows.(flow_id) };
      time := !time +. Rng.exponential rng ~mean:mean_gap
    done
  done;
  (* Exponential gaps can overshoot an epoch boundary; restore the global
     nondecreasing-times contract the streaming consumers rely on. *)
  Array.sort (fun a b -> compare a.time b.time) arr;
  { packets = arr; unique_flows = n; duration }

let packet_count t = Array.length t.packets

(* --------------------------- streaming pull --------------------------- *)

type stream = {
  fill :
    times:float array ->
    flow_ids:int array ->
    flows:Gf_flow.Flow.t array ->
    max:int ->
    int;
  stream_unique_flows : int;
  stream_duration : float;
}

let fill s = s.fill
let stream_unique_flows s = s.stream_unique_flows
let stream_duration s = s.stream_duration

let stream_of_trace t =
  let pos = ref 0 in
  let fill ~times ~flow_ids ~flows ~max =
    let n = Array.length t.packets in
    let k = Stdlib.min max (n - !pos) in
    for i = 0 to k - 1 do
      let p = t.packets.(!pos + i) in
      times.(i) <- p.time;
      flow_ids.(i) <- p.flow_id;
      flows.(i) <- p.flow
    done;
    pos := !pos + k;
    k
  in
  { fill; stream_unique_flows = t.unique_flows; stream_duration = t.duration }

(* Steady-state traffic: every packet picks its flow Zipf-independently, so
   the popular-flow working set is stable for the whole stream (no flow
   births/deaths).  Packets are generated batch-at-a-time straight into the
   caller's buffers — memory use is constant no matter how long the
   stream. *)
let steady ?(duration = 60.0) ?(zipf_s = 1.1) ~packets ~seed ~flows () =
  let rng = Rng.create seed in
  let n = Array.length flows in
  assert (n > 0 && packets >= 0);
  let zipf = Zipf.create ~n ~s:zipf_s in
  let mean_gap = duration /. float_of_int (Stdlib.max 1 packets) in
  let time = ref 0.0 in
  let remaining = ref packets in
  let fill ~times ~flow_ids ~flows:out ~max =
    let k = Stdlib.min max !remaining in
    for i = 0 to k - 1 do
      let fid = Zipf.sample zipf rng in
      times.(i) <- !time;
      flow_ids.(i) <- fid;
      out.(i) <- flows.(fid);
      time := !time +. Rng.exponential rng ~mean:mean_gap
    done;
    remaining := !remaining - k;
    k
  in
  { fill; stream_unique_flows = n; stream_duration = duration }

(* Materialise a stream (test/debug helper; the steady generator exists
   precisely so callers can avoid this). *)
let trace_of_stream ?(batch = 4096) s =
  let times = Array.make batch 0.0 in
  let flow_ids = Array.make batch 0 in
  let flows = Array.make batch Gf_flow.Flow.zero in
  let acc = ref [] in
  let rec pull () =
    let k = s.fill ~times ~flow_ids ~flows ~max:batch in
    if k > 0 then begin
      for i = 0 to k - 1 do
        acc := { time = times.(i); flow_id = flow_ids.(i); flow = flows.(i) } :: !acc
      done;
      pull ()
    end
  in
  pull ();
  {
    packets = Array.of_list (List.rev !acc);
    unique_flows = s.stream_unique_flows;
    duration = s.stream_duration;
  }

let concat a b ~offset =
  let shifted =
    Array.map
      (fun p -> { p with time = p.time +. offset; flow_id = p.flow_id + a.unique_flows })
      b.packets
  in
  let merged = Array.append a.packets shifted in
  Array.sort (fun p q -> compare p.time q.time) merged;
  {
    packets = merged;
    unique_flows = a.unique_flows + b.unique_flows;
    duration = Float.max a.duration (offset +. b.duration);
  }
