(** Small statistics toolkit for experiment reporting: running accumulators,
    percentiles and fixed-width histograms. *)

(** {1 Running accumulator} *)

module Acc : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit

  val merge : into:t -> t -> unit
  (** Fold [src]'s samples into [into] (Chan's pairwise mean/M2 update):
      afterwards [into] reports the same count/mean/variance/min/max as if
      it had seen both sample streams.  [src] is unchanged.  Used to
      aggregate per-domain metrics after parallel replay. *)

  val count : t -> int
  val total : t -> float
  val mean : t -> float
  (** Mean of the samples; [nan] when empty. *)

  val variance : t -> float
  (** Unbiased sample variance (Welford); [nan] with fewer than two samples. *)

  val stddev : t -> float
  val min : t -> float
  val max : t -> float
end

(** {1 Batch helpers}

    All batch helpers drop NaN samples before aggregating — one garbage
    sample must not poison (or, under a comparison sort, arbitrarily
    reorder) the whole batch.  An all-NaN or empty input yields [nan]. *)

val mean : float array -> float
(** Mean of the non-NaN samples; [nan] when none. *)

val stddev : float array -> float
(** Unbiased sample standard deviation of the non-NaN samples; [0.0] for a
    single sample (no observed spread), [nan] when none — callers writing
    JSON must treat [nan] as "absent", never print it. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0, 100\]]; linear interpolation between
    order statistics of the non-NaN samples ([Float.compare], total order).
    The input array is not modified.  Raises [Invalid_argument] when [p] is
    out of range or NaN (a real check, not an [assert] — it survives
    [-noassert] builds). *)

val median : float array -> float

(** {1 Histogram} *)

module Histogram : sig
  type t

  val create : lo:float -> hi:float -> bins:int -> t
  val add : t -> float -> unit
  (** Out-of-range samples are clamped into the first/last bin. *)

  val counts : t -> int array
  val total : t -> int
  val bin_bounds : t -> int -> float * float
end
