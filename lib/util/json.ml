(* Minimal JSON: a value type, a compact printer and a recursive-descent
   parser.  Used by the telemetry exporters (JSON Lines emission) and by the
   CLI's telemetry-check validator; deliberately dependency-free. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------ printing ------------------------------ *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      (* JSON has no NaN/inf literal; emit null so every line stays
         machine-parseable (matches the benches' jfloat convention). *)
      if Float.is_nan f || Float.abs f = infinity then
        Buffer.add_string buf "null"
      else Buffer.add_string buf (Printf.sprintf "%.12g" f)
  | Str s -> escape_to buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* ------------------------------ parsing ------------------------------ *)

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> parse_error "expected %c at offset %d, got %c" ch c.pos x
  | None -> parse_error "expected %c at offset %d, got end of input" ch c.pos

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else parse_error "bad literal at offset %d" c.pos

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> parse_error "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some '"' -> advance c; Buffer.add_char buf '"'; loop ()
        | Some '\\' -> advance c; Buffer.add_char buf '\\'; loop ()
        | Some '/' -> advance c; Buffer.add_char buf '/'; loop ()
        | Some 'n' -> advance c; Buffer.add_char buf '\n'; loop ()
        | Some 't' -> advance c; Buffer.add_char buf '\t'; loop ()
        | Some 'r' -> advance c; Buffer.add_char buf '\r'; loop ()
        | Some 'b' -> advance c; Buffer.add_char buf '\b'; loop ()
        | Some 'f' -> advance c; Buffer.add_char buf '\012'; loop ()
        | Some 'u' ->
            advance c;
            if c.pos + 4 > String.length c.src then parse_error "bad \\u escape";
            let hex = String.sub c.src c.pos 4 in
            c.pos <- c.pos + 4;
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> parse_error "bad \\u escape %S" hex
            in
            (* Encode the code point as UTF-8 (surrogates left as-is: the
               validator only needs round-trippable text, not full WTF-8). *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end;
            loop ()
        | _ -> parse_error "bad escape at offset %d" c.pos)
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek c with Some ch -> is_num_char ch | None -> false) do
    advance c
  done;
  let s = String.sub c.src start (c.pos - start) in
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> parse_error "bad number %S at offset %d" s start)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> parse_error "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' -> Str (parse_string c)
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              items (v :: acc)
          | Some ']' ->
              advance c;
              List.rev (v :: acc)
          | _ -> parse_error "expected , or ] at offset %d" c.pos
        in
        List (items [])
      end
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              members ((k, v) :: acc)
          | Some '}' ->
              advance c;
              List.rev ((k, v) :: acc)
          | _ -> parse_error "expected , or } at offset %d" c.pos
        in
        Obj (members [])
      end
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> parse_error "unexpected %c at offset %d" ch c.pos

let of_string s =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos <> String.length s then
        Error (Printf.sprintf "trailing garbage at offset %d" c.pos)
      else Ok v
  | exception Parse_error msg -> Error msg

(* ----------------------------- accessors ----------------------------- *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_float_opt = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None
let to_string_opt = function Str s -> Some s | _ -> None
let to_list_opt = function List xs -> Some xs | _ -> None
