type t = {
  n : int;
  s : float;
  cdf : float array;  (* for pmf / rank queries *)
  prob : float array;  (* alias-method acceptance thresholds *)
  alias : int array;
}

let create ~n ~s =
  assert (n > 0);
  assert (s >= 0.0);
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for r = 0 to n - 1 do
    acc := !acc +. (1.0 /. (float_of_int (r + 1) ** s));
    cdf.(r) <- !acc
  done;
  let total = !acc in
  for r = 0 to n - 1 do
    cdf.(r) <- cdf.(r) /. total
  done;
  (* Walker's alias table (Vose's stable construction): sampling is two
     array reads per draw instead of a binary search over the CDF — the
     trace generator draws one rank per packet, so this is on the streaming
     engine's per-packet path. *)
  let prob = Array.make n 1.0 in
  let alias = Array.init n (fun i -> i) in
  let scaled =
    Array.init n (fun r ->
        let p = if r = 0 then cdf.(0) else cdf.(r) -. cdf.(r - 1) in
        p *. float_of_int n)
  in
  let small = Array.make n 0 and large = Array.make n 0 in
  let ns = ref 0 and nl = ref 0 in
  for r = 0 to n - 1 do
    if scaled.(r) < 1.0 then begin
      small.(!ns) <- r;
      incr ns
    end
    else begin
      large.(!nl) <- r;
      incr nl
    end
  done;
  while !ns > 0 && !nl > 0 do
    decr ns;
    let l = small.(!ns) in
    let g = large.(!nl - 1) in
    prob.(l) <- scaled.(l);
    alias.(l) <- g;
    scaled.(g) <- scaled.(g) -. (1.0 -. scaled.(l));
    if scaled.(g) < 1.0 then begin
      decr nl;
      small.(!ns) <- g;
      incr ns
    end
  done;
  (* Leftovers (either list) are 1.0 up to rounding. *)
  { n; s; cdf; prob; alias }

let n t = t.n
let exponent t = t.s

(* One uniform draw serves both the column pick and the acceptance test
   (the standard trick), so the RNG stream advances exactly as the old
   CDF binary search did — one draw per sample. *)
let sample t rng =
  let u = Rng.float rng (float_of_int t.n) in
  let i = int_of_float u in
  let i = if i >= t.n then t.n - 1 else i in
  if u -. float_of_int i < t.prob.(i) then i else t.alias.(i)

let pmf t r =
  assert (r >= 0 && r < t.n);
  if r = 0 then t.cdf.(0) else t.cdf.(r) -. t.cdf.(r - 1)
