type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 finaliser (variant 13 of Stafford's mix). *)
let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = bits64 t in
  { state = seed }

(* Smallest all-ones mask covering [v] (v > 0). *)
let mask_above v =
  let m = v lor (v lsr 1) in
  let m = m lor (m lsr 2) in
  let m = m lor (m lsr 4) in
  let m = m lor (m lsr 8) in
  let m = m lor (m lsr 16) in
  m lor (m lsr 32)

let int t bound =
  assert (bound > 0);
  (* Bitmask-and-reject sampling: draw 62 bits (always a non-negative OCaml
     int), mask down to the smallest power-of-two window covering [bound],
     and redraw on overshoot.  Unlike [x mod bound] this is exactly uniform
     for every bound, not just powers of two; each draw accepts with
     probability > 1/2, so the expected number of redraws is < 1.  For
     power-of-two bounds the mask equals [bound - 1] and nothing is ever
     rejected, so those streams are identical to the modulo era. *)
  let mask = mask_above (bound - 1) in
  let rec draw () =
    let x = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) land mask in
    if x < bound then x else draw ()
  in
  draw ()

let int_in t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (bits64 t) 1L = 1L

let float t bound =
  (* 53 random bits -> uniform float in [0,1). *)
  let x = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int x /. 9007199254740992.0 *. bound

let bernoulli t p = float t 1.0 < p

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick_weighted t items =
  let total = Array.fold_left (fun acc (_, w) -> acc +. Float.max w 0.0) 0.0 items in
  if total <= 0.0 then invalid_arg "Rng.pick_weighted: no positive weight";
  let target = float t total in
  let n = Array.length items in
  let rec go i acc =
    if i = n - 1 then fst items.(i)
    else
      let acc = acc +. Float.max (snd items.(i)) 0.0 in
      if target < acc then fst items.(i) else go (i + 1) acc
  in
  go 0 0.0

let geometric t p =
  assert (p > 0.0 && p <= 1.0);
  if p >= 1.0 then 0
  else
    let u = float t 1.0 in
    (* Inverse CDF; u = 0 maps to 0 failures.  For tiny [p] the ratio can
       exceed [max_int] (and [int_of_float] on such floats is unspecified),
       so clamp before truncating; NaN cannot arise (u < 1, 0 < p < 1) but
       is mapped to 0 defensively all the same. *)
    let x = Float.floor (log1p (-.u) /. log1p (-.p)) in
    if Float.is_nan x then 0
    else if x >= float_of_int max_int then max_int
    else if x <= 0.0 then 0
    else int_of_float x

let pareto t ~alpha ~xmin =
  assert (alpha > 0.0 && xmin > 0.0);
  let u = 1.0 -. float t 1.0 in
  xmin /. (u ** (1.0 /. alpha))

let exponential t ~mean =
  assert (mean > 0.0);
  let u = 1.0 -. float t 1.0 in
  -.mean *. log u
