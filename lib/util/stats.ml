module Acc = struct
  type t = {
    mutable count : int;
    mutable total : float;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () =
    { count = 0; total = 0.0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

  (* Welford's online algorithm keeps the variance numerically stable. *)
  let add t x =
    t.count <- t.count + 1;
    t.total <- t.total +. x;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  (* Chan et al.'s pairwise update: merging per-domain accumulators must
     give the same mean/variance as feeding all samples to one accumulator
     (up to float rounding). *)
  let merge ~into src =
    if src.count > 0 then
      if into.count = 0 then begin
        into.count <- src.count;
        into.total <- src.total;
        into.mean <- src.mean;
        into.m2 <- src.m2;
        into.min <- src.min;
        into.max <- src.max
      end
      else begin
        let na = float_of_int into.count and nb = float_of_int src.count in
        let n = na +. nb in
        let delta = src.mean -. into.mean in
        into.mean <- into.mean +. (delta *. nb /. n);
        into.m2 <- into.m2 +. src.m2 +. (delta *. delta *. na *. nb /. n);
        into.count <- into.count + src.count;
        into.total <- into.total +. src.total;
        if src.min < into.min then into.min <- src.min;
        if src.max > into.max then into.max <- src.max
      end

  let count t = t.count
  let total t = t.total
  let mean t = if t.count = 0 then nan else t.mean
  let variance t = if t.count < 2 then nan else t.m2 /. float_of_int (t.count - 1)
  let stddev t = sqrt (variance t)
  let min t = if t.count = 0 then nan else t.min
  let max t = if t.count = 0 then nan else t.max
end

(* NaN samples poison every downstream aggregate (and order arbitrarily
   under comparison), so the batch helpers drop them up front: a sensor
   that produced garbage for one sample shouldn't void the whole batch.
   Returns the input array itself when it is NaN-free (the common case —
   no copy on the hot path). *)
let drop_nan xs =
  let nans = Array.fold_left (fun n x -> if Float.is_nan x then n + 1 else n) 0 xs in
  if nans = 0 then xs
  else begin
    let out = Array.make (Array.length xs - nans) 0.0 in
    let j = ref 0 in
    Array.iter
      (fun x ->
        if not (Float.is_nan x) then begin
          out.(!j) <- x;
          incr j
        end)
      xs;
    out
  end

let mean xs =
  let xs = drop_nan xs in
  if Array.length xs = 0 then nan
  else Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let stddev xs =
  let xs = drop_nan xs in
  let n = Array.length xs in
  if n = 0 then nan
  else if n = 1 then 0.0
  else begin
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    sqrt (ss /. float_of_int (n - 1))
  end

let percentile xs p =
  (* Not an assert: the bounds check must survive [-noassert] builds —
     an out-of-range (or NaN) [p] is a caller bug, not a tunable. *)
  if not (p >= 0.0 && p <= 100.0) then
    invalid_arg (Printf.sprintf "Stats.percentile: p = %h not in [0, 100]" p);
  let xs = drop_nan xs in
  let n = Array.length xs in
  if n = 0 then nan
  else begin
    let sorted = Array.copy xs in
    Array.sort Float.compare sorted;
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then sorted.(lo)
    else begin
      let frac = rank -. float_of_int lo in
      (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
    end
  end

let median xs = percentile xs 50.0

module Histogram = struct
  type t = { lo : float; hi : float; counts : int array; mutable total : int }

  let create ~lo ~hi ~bins =
    assert (bins > 0 && hi > lo);
    { lo; hi; counts = Array.make bins 0; total = 0 }

  let add t x =
    let bins = Array.length t.counts in
    let raw = (x -. t.lo) /. (t.hi -. t.lo) *. float_of_int bins in
    let i = int_of_float (Float.floor raw) in
    let i = if i < 0 then 0 else if i >= bins then bins - 1 else i in
    t.counts.(i) <- t.counts.(i) + 1;
    t.total <- t.total + 1

  let counts t = Array.copy t.counts
  let total t = t.total

  let bin_bounds t i =
    let bins = Array.length t.counts in
    assert (i >= 0 && i < bins);
    let w = (t.hi -. t.lo) /. float_of_int bins in
    (t.lo +. (w *. float_of_int i), t.lo +. (w *. float_of_int (i + 1)))
end
