(** Minimal JSON value type, compact printer and parser.

    Backs the telemetry exporters (JSON Lines emission) and the CLI's
    [telemetry-check] validator.  The printer emits [null] for non-finite
    floats so every emitted line stays machine-parseable. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
val to_buffer : Buffer.t -> t -> unit

val of_string : string -> (t, string) result
(** Parse one complete JSON value; trailing non-whitespace is an error. *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** Object field lookup ([None] on non-objects and missing keys). *)

val to_float_opt : t -> float option
(** Numeric value as float ([Int] widens). *)

val to_int_opt : t -> int option
val to_string_opt : t -> string option
val to_list_opt : t -> t list option
