(** Deterministic pseudo-random number generation.

    Every source of randomness in the repository flows through this module so
    that experiments are reproducible bit-for-bit from a seed.  The generator
    is SplitMix64 (Steele, Lea & Flood, OOPSLA'14): tiny state, excellent
    statistical quality for simulation workloads, and a cheap [split]
    operation for deriving independent sub-streams. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from a seed. *)

val copy : t -> t
(** [copy t] duplicates the state, so both copies produce the same stream. *)

val split : t -> t
(** [split t] derives an independent generator and advances [t].  Use this to
    hand sub-streams to sub-components without correlating them. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0].
    Exactly uniform for every bound (bitmask-and-reject sampling, not the
    modulo-biased [bits mod bound]). *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val bool : t -> bool

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick_weighted : t -> ('a * float) array -> 'a
(** [pick_weighted t items] samples proportionally to the (positive) weights.
    Requires a non-empty array with at least one positive weight. *)

val geometric : t -> float -> int
(** [geometric t p] counts Bernoulli(p) failures before the first success
    (support {0, 1, ...}). Requires [0 < p <= 1].  The result is clamped to
    [\[0, max_int\]] — tiny [p] would otherwise overflow the int range, where
    [int_of_float] is unspecified. *)

val pareto : t -> alpha:float -> xmin:float -> float
(** Pareto(alpha, xmin) sample; heavy-tailed, used for flow sizes. *)

val exponential : t -> mean:float -> float
(** Exponential sample with the given mean; used for inter-arrival gaps. *)
