module Flow = Gf_flow.Flow

(* Stream-summary layout: rows [0, size) of the flat arrays hold the tracked
   entries sorted by count descending.  [index] maps a tracked flow to its
   row; [boundary] maps a count value to the leftmost row holding it.  An
   increment of row [i] swaps it with the leftmost row of its equal-count
   run (one O(1) swap keeps the array sorted), then bumps the count there.
   The minimum entry is always row [size - 1]. *)
type t = {
  mutable k : int;
  mutable flows : Flow.t array;
  mutable counts : int array;
  mutable errs : int array;
  index : int Flow.Tbl.t;
  boundary : (int, int) Hashtbl.t;
  mutable size : int;
  mutable observed : int;
}

let create ~k =
  if k < 1 then invalid_arg "Heavy_hitter.create: k must be >= 1";
  {
    k;
    flows = Array.make k Flow.zero;
    counts = Array.make k 0;
    errs = Array.make k 0;
    index = Flow.Tbl.create (2 * k);
    boundary = Hashtbl.create (2 * k);
    size = 0;
    observed = 0;
  }

let k t = t.k
let size t = t.size
let observed t = t.observed

(* Move row [i] (count c) to the head of its run and bump it to c+1,
   maintaining the sorted order and the boundary map. *)
let bump t i =
  let c = t.counts.(i) in
  let j = match Hashtbl.find_opt t.boundary c with Some j -> j | None -> i in
  if j <> i then begin
    let fi = t.flows.(i) and fj = t.flows.(j) in
    t.flows.(i) <- fj;
    t.flows.(j) <- fi;
    let tmp = t.errs.(i) in
    t.errs.(i) <- t.errs.(j);
    t.errs.(j) <- tmp;
    (* counts are equal by construction; no swap needed *)
    Flow.Tbl.replace t.index fi j;
    Flow.Tbl.replace t.index fj i
  end;
  (* shrink (or drop) the run of [c], which now starts one row later *)
  if j + 1 < t.size && t.counts.(j + 1) = c then
    Hashtbl.replace t.boundary c (j + 1)
  else Hashtbl.remove t.boundary c;
  t.counts.(j) <- c + 1;
  (* row [j] is now the rightmost of the (c+1)-run; it only becomes the
     boundary if no (c+1)-run existed before *)
  if not (Hashtbl.mem t.boundary (c + 1)) then
    Hashtbl.replace t.boundary (c + 1) j

let observe t flow =
  t.observed <- t.observed + 1;
  match Flow.Tbl.find_opt t.index flow with
  | Some i -> bump t i
  | None ->
      if t.size < t.k then begin
        let i = t.size in
        t.flows.(i) <- flow;
        t.counts.(i) <- 0;
        t.errs.(i) <- 0;
        Flow.Tbl.replace t.index flow i;
        if not (Hashtbl.mem t.boundary 0) then Hashtbl.replace t.boundary 0 i;
        t.size <- t.size + 1;
        bump t i
      end
      else begin
        (* replace the minimum entry; its count becomes the newcomer's
           error bound (space-saving inheritance) *)
        let i = t.k - 1 in
        let victim = t.flows.(i) in
        let c = t.counts.(i) in
        Flow.Tbl.remove t.index victim;
        t.flows.(i) <- flow;
        t.errs.(i) <- c;
        Flow.Tbl.replace t.index flow i;
        bump t i
      end

let count t flow =
  match Flow.Tbl.find_opt t.index flow with
  | Some i -> t.counts.(i)
  | None -> 0

let guaranteed t flow =
  match Flow.Tbl.find_opt t.index flow with
  | Some i -> t.counts.(i) - t.errs.(i)
  | None -> 0

let hot t ~threshold flow = guaranteed t flow >= threshold

let rebuild_boundary t =
  Hashtbl.reset t.boundary;
  for i = t.size - 1 downto 0 do
    Hashtbl.replace t.boundary t.counts.(i) i
  done

let decay t =
  let live = ref 0 in
  for i = 0 to t.size - 1 do
    let c = t.counts.(i) / 2 in
    if c = 0 then Flow.Tbl.remove t.index t.flows.(i)
    else begin
      let j = !live in
      if j <> i then begin
        t.flows.(j) <- t.flows.(i);
        Flow.Tbl.replace t.index t.flows.(j) j
      end;
      t.counts.(j) <- c;
      t.errs.(j) <- t.errs.(i) / 2;
      incr live
    end
  done;
  (* halving is monotone, so the surviving prefix is still sorted *)
  t.size <- !live;
  rebuild_boundary t

let retarget t ~k =
  if k < 1 then invalid_arg "Heavy_hitter.retarget: k must be >= 1";
  if k <> t.k then begin
    (* Rows are sorted by count descending, so truncation on shrink drops
       exactly the lowest-count entries. *)
    for i = k to t.size - 1 do
      Flow.Tbl.remove t.index t.flows.(i)
    done;
    let size = min t.size k in
    let flows = Array.make k Flow.zero in
    let counts = Array.make k 0 in
    let errs = Array.make k 0 in
    Array.blit t.flows 0 flows 0 size;
    Array.blit t.counts 0 counts 0 size;
    Array.blit t.errs 0 errs 0 size;
    t.k <- k;
    t.flows <- flows;
    t.counts <- counts;
    t.errs <- errs;
    t.size <- size;
    rebuild_boundary t
  end

let check_invariants t =
  let ok = ref (t.size >= 0 && t.size <= t.k) in
  (* counts sorted descending, errors within the space-saving bound *)
  for i = 0 to t.size - 1 do
    if i > 0 && t.counts.(i) > t.counts.(i - 1) then ok := false;
    if t.errs.(i) < 0 || t.errs.(i) > t.counts.(i) then ok := false
  done;
  (* index is exactly { flow_i -> i } over the live prefix *)
  if Flow.Tbl.length t.index <> t.size then ok := false;
  for i = 0 to t.size - 1 do
    match Flow.Tbl.find_opt t.index t.flows.(i) with
    | Some j when j = i -> ()
    | _ -> ok := false
  done;
  (* boundary maps each live count to the leftmost row of its run, and
     holds no other key *)
  let runs = Hashtbl.create 16 in
  for i = t.size - 1 downto 0 do
    Hashtbl.replace runs t.counts.(i) i
  done;
  if Hashtbl.length t.boundary <> Hashtbl.length runs then ok := false;
  Hashtbl.iter
    (fun c leftmost ->
      match Hashtbl.find_opt t.boundary c with
      | Some j when j = leftmost -> ()
      | _ -> ok := false)
    runs;
  !ok

let top t ~n =
  let rows = ref [] in
  for i = t.size - 1 downto 0 do
    rows := (t.flows.(i), t.counts.(i), t.errs.(i)) :: !rows
  done;
  let cmp (f1, c1, e1) (f2, c2, e2) =
    if c1 <> c2 then compare c2 c1
    else if e1 <> e2 then compare e1 e2
    else Flow.compare f1 f2
  in
  let sorted = List.stable_sort cmp !rows in
  List.filteri (fun i _ -> i < n) sorted

let merge a b =
  let k = max a.k b.k in
  let acc = Flow.Tbl.create (2 * k) in
  let add t =
    for i = 0 to t.size - 1 do
      let f = t.flows.(i) in
      let c, e =
        match Flow.Tbl.find_opt acc f with
        | Some (c, e) -> (c, e)
        | None -> (0, 0)
      in
      Flow.Tbl.replace acc f (c + t.counts.(i), e + t.errs.(i))
    done
  in
  add a;
  add b;
  let rows = Flow.Tbl.fold (fun f (c, e) l -> (f, c, e) :: l) acc [] in
  let cmp (f1, c1, e1) (f2, c2, e2) =
    if c1 <> c2 then compare c2 c1
    else if e1 <> e2 then compare e1 e2
    else Flow.compare f1 f2
  in
  let sorted = List.stable_sort cmp rows in
  let merged = create ~k in
  List.iteri
    (fun i (f, c, e) ->
      if i < k then begin
        merged.flows.(i) <- f;
        merged.counts.(i) <- c;
        merged.errs.(i) <- e;
        Flow.Tbl.replace merged.index f i;
        merged.size <- i + 1
      end)
    sorted;
  merged.observed <- a.observed + b.observed;
  rebuild_boundary merged;
  merged

(* ---------------------------------------------------------------- *)
(* Admission policy                                                 *)
(* ---------------------------------------------------------------- *)

type policy = Admit_all | Heavy_hitter of { k : int; threshold : int }

let default_k = 128
let default_threshold = 4

let policy_to_string = function
  | Admit_all -> "all"
  | Heavy_hitter { k; threshold } -> Printf.sprintf "hh:%d@%d" k threshold

let policy_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "all" | "none" | "off" -> Ok Admit_all
  | "hh" ->
      Ok (Heavy_hitter { k = default_k; threshold = default_threshold })
  | s when String.length s > 3 && String.sub s 0 3 = "hh:" -> (
      let rest = String.sub s 3 (String.length s - 3) in
      match int_of_string_opt rest with
      | Some k when k >= 1 ->
          Ok (Heavy_hitter { k; threshold = default_threshold })
      | _ -> Error (Printf.sprintf "bad heavy-hitter K in %S" s))
  | _ ->
      Error
        (Printf.sprintf "unknown admission policy %S (expected all|hh|hh:K)" s)

let policy_with_threshold p threshold =
  match p with
  | Admit_all -> Admit_all
  | Heavy_hitter { k; _ } -> Heavy_hitter { k; threshold }
