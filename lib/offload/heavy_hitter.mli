(** Space-saving (Misra–Gries / "stream-summary") top-K heavy-hitter sketch
    over flow keys.

    Tracks at most [k] flows.  Every observation is O(1): the tracked
    entries live in a flat array kept sorted by count (descending), and a
    count → leftmost-index map lets an increment move an entry across its
    equal-count run with a single swap.  When an untracked flow arrives and
    the sketch is full, the minimum entry is replaced and its count is
    inherited as the newcomer's error bound — the classic space-saving
    guarantee: [count f] over-estimates the true frequency by at most
    [err f], so [count f - err f] (the {e guaranteed} count) never
    over-estimates.

    Determinism: observations are pure state-machine transitions (no RNG,
    no wall clock), so per-shard sketches over disjoint RSS flow sets are
    reproducible and {!merge} is deterministic — the `Domains==Sequential`
    bit-identity property survives admission decisions made from the
    sketch. *)

type t

val create : k:int -> t
(** [create ~k] tracks up to [k] flows ([k >= 1]).  All storage is
    preallocated; steady-state observation does not allocate. *)

val k : t -> int
val size : t -> int
(** Number of flows currently tracked (<= k). *)

val observed : t -> int
(** Total observations since creation (not reset by {!decay}). *)

val observe : t -> Gf_flow.Flow.t -> unit
(** Count one packet for [flow].  O(1). *)

val count : t -> Gf_flow.Flow.t -> int
(** Estimated frequency (upper bound); 0 if untracked. *)

val guaranteed : t -> Gf_flow.Flow.t -> int
(** [count - err]: hits definitely attributed to this flow since it entered
    the sketch.  Never over-estimates the true frequency.  0 if
    untracked. *)

val hot : t -> threshold:int -> Gf_flow.Flow.t -> bool
(** [hot t ~threshold f] is [guaranteed t f >= threshold] — the admission
    predicate.  Using the guaranteed count makes admission robust to the
    inherited-error over-estimate: a mouse that just replaced the minimum
    entry starts with [guaranteed = 1] no matter how large the inherited
    count is. *)

val decay : t -> unit
(** Halve every count and error bound and drop entries that reach zero —
    the periodic aging step that lets the hot set track drifting skew.
    O(k); run it on the expiry-sweep cadence, not per packet. *)

val retarget : t -> k:int -> unit
(** Resize the sketch to track up to [k] flows {e in place}, preserving the
    tracked entries instead of rebuilding from scratch: shrinking truncates
    the lowest-count rows (the sorted suffix), growing reallocates storage
    and keeps every entry.  O(k); counts, error bounds and [observed] carry
    over, so an online controller can retune K without losing the hot set.
    No-op when [k] already matches. *)

val check_invariants : t -> bool
(** Structural self-check (test hook): rows [0, size) sorted by count
    descending with [0 <= err <= count], [index] is exactly the live
    flow→row map, and [boundary] maps each live count to the leftmost row
    of its run and nothing else.  O(k). *)

val top : t -> n:int -> (Gf_flow.Flow.t * int * int) list
(** [(flow, count, err)] for the [n] highest-count entries, count
    descending (ties broken by [Flow.compare] for determinism). *)

val merge : t -> t -> t
(** Combine two sketches into a fresh one of the same [k] (the larger of
    the two if they differ): flows tracked by both sum their counts and
    errors; the union is re-ranked and truncated to the top [k].  With
    RSS-disjoint shards this is exact union.  Deterministic: ties are
    broken by [Flow.compare]. *)

(** {1 Admission policy} *)

type policy =
  | Admit_all  (** legacy behaviour: every slowpath installs everywhere *)
  | Heavy_hitter of { k : int; threshold : int }
      (** hardware tiers only admit flows with [guaranteed >= threshold] *)

val default_k : int
val default_threshold : int

val policy_to_string : policy -> string

val policy_of_string : string -> (policy, string) result
(** Accepts ["all"], ["hh"], ["hh:K"] (e.g. ["hh:256"]). *)

val policy_with_threshold : policy -> int -> policy
(** Override the threshold; identity on [Admit_all]. *)
