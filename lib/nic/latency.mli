(** Parametric latency model for the end-to-end datapath.

    Hardware constants come straight from the paper's measurements
    (section 6.3.6): the FPGA LTM/Megaflow offload hits in ~9 us; software
    paths add an upcall, a classifier search and — on a full miss — the
    userspace pipeline plus Gigaflow's partitioning/rule-generation work.
    Software work is expressed in work units (tuples probed, DP operations,
    rules generated) and converted to time via per-unit costs calibrated to
    a 2.6 GHz server core (the paper's Xeon 8358P). *)

type deployment =
  | Offload_fpga  (** OVS/Megaflow-Offload or OVS/Gigaflow-Offload (Alveo U250) *)
  | Dpdk_host  (** OVS/DPDK on a host CPU core *)
  | Dpdk_arm  (** OVS/DPDK on the BlueField-2 ARM SoC *)
  | Kernel_host  (** OVS kernel datapath on the host *)
  | Kernel_arm  (** OVS kernel datapath on the BlueField-2 ARM SoC *)

val deployment_name : deployment -> string

val cache_hit_us : deployment -> float
(** Mean cache-hit latency of the deployment point (paper section 6.3.6):
    8.62 us for the FPGA offloads, 12.61 us DPDK/host, 51.26 us DPDK/ARM,
    671.48 us kernel/host, 3606.37 us kernel/ARM. *)

val cache_hit_stddev_us : deployment -> float

(** {1 Datapath components (FPGA-offload deployment)} *)

val hw_hit_us : float
(** Latency of a packet served entirely by the SmartNIC cache (~9 us,
    paper section 6.2.2). *)

val upcall_us : float
(** PCIe + handoff cost of sending a missed packet to software. *)

val emc_hit_us : float
(** Exact-match (EMC/Microflow) cache hit: one hash probe, no wildcard
    search.  Added on top of [upcall_us + sw_base_us]. *)

val cuckoo_hit_us : float
(** Cuckoo exact-match hit: up to two bucket probes over the full header
    vector.  Added on top of [upcall_us + sw_base_us]. *)

val sw_base_us : float
(** Fixed software forwarding cost (parse, action execution, transmit);
    [upcall_us + sw_base_us + sw_search_us] reproduces the paper's
    OVS/DPDK cache-hit latency of ~12.6 us. *)

val sw_search_us :
  ?algo:[ `Tss | `Nuevomatch | `Linear ] -> work:int -> unit -> float
(** Software cache search time from classifier work units.  A learned-model
    unit is ~7x cheaper than a TSS tuple probe (hot arithmetic vs hash
    probes over masked keys; cf. the NuevoMatch papers). *)

val slowpath_us :
  pipeline_lookups:int ->
  tuple_probes:int ->
  partition_work:int ->
  rulegen_work:int ->
  installs:int ->
  float
(** Full slowpath service time (excluding the upcall). *)

(** {1 CPU cycle accounting (paper Fig. 13)} *)

val cpu_hz : float
(** 2.6 GHz. *)

val probe_cycles : int
(** CPU cycles per software-classifier work unit (one hash-table tuple
    probe including mask application, ~450 cycles) — the per-level
    [cycles_per_work] of software wildcard-cache levels. *)

val cycles_userspace : pipeline_lookups:int -> tuple_probes:int -> int
val cycles_partition : partition_work:int -> int
val cycles_rulegen : rulegen_work:int -> int

val us_of_cycles : int -> float

(** {1 Telemetry} *)

val histogram_lo_us : float
(** Finest latency the model can produce (a fraction of an EMC hit) — the
    lower bound of the telemetry latency histograms' log-linear region. *)

val histogram_hi_us : float
(** Above any modelled slowpath burst; the histograms' upper bound. *)

val latency_histogram : unit -> Gf_telemetry.Histogram.t
(** A log-linear histogram whose bucket range is derived from the model's
    own extremes, so every modelled latency lands in the bounded-relative-
    error region rather than the clamped under/overflow buckets. *)
