type deployment = Offload_fpga | Dpdk_host | Dpdk_arm | Kernel_host | Kernel_arm

let deployment_name = function
  | Offload_fpga -> "OVS/Offload (Alveo U250)"
  | Dpdk_host -> "OVS/DPDK (host CPU)"
  | Dpdk_arm -> "OVS/DPDK (BlueField-2 ARM)"
  | Kernel_host -> "OVS/Kernel (host CPU)"
  | Kernel_arm -> "OVS/Kernel (BlueField-2 ARM)"

(* Measured means from the paper, section 6.3.6. *)
let cache_hit_us = function
  | Offload_fpga -> 8.62
  | Dpdk_host -> 12.61
  | Dpdk_arm -> 51.26
  | Kernel_host -> 671.48
  | Kernel_arm -> 3606.37

let cache_hit_stddev_us = function
  | Offload_fpga -> 0.4
  | Dpdk_host -> 1.1
  | Dpdk_arm -> 9.7
  | Kernel_host -> 13.4
  | Kernel_arm -> 237.1

let hw_hit_us = 9.0

(* EMC (exact-match cache) hit: one hash probe over the full header
   vector, no wildcard search. *)
let emc_hit_us = 0.4

(* Cuckoo exact-match hit: up to two bucket probes (8 slots / 2 cache
   lines) over the full header vector — a shade above the EMC's single
   probe, far below any wildcard search. *)
let cuckoo_hit_us = 0.55

(* One PCIe round trip plus ring handoff and wakeup: calibrated so that a
   software cache hit lands at the paper's OVS/DPDK figure (~12.6 us). *)
let upcall_us = 5.5

(* Fixed software forwarding cost (parse, action execution, tx). *)
let sw_base_us = 5.0

let cpu_hz = 2.6e9

(* Per-unit cycle costs, calibrated so that the slowpath breakdown
   reproduces the paper's Fig. 13 shape (see DESIGN.md):
   - a hash-table tuple probe, including mask application: ~450 cycles
   - per-table translation overhead (flow extraction, action build): ~1200
   - one DP inner-loop operation of the partitioner: ~45
   - generating one LTM rule (mask unions + commit diff): ~800 *)
let probe_cycles = 450
let xlate_cycles = 1200
let dp_cycles = 45
let rulegen_cycles = 800

let cycles_userspace ~pipeline_lookups ~tuple_probes =
  (tuple_probes * probe_cycles) + (pipeline_lookups * xlate_cycles)

let cycles_partition ~partition_work = partition_work * dp_cycles

let cycles_rulegen ~rulegen_work = rulegen_work * rulegen_cycles

let us_of_cycles c = float_of_int c /. cpu_hz *. 1e6

(* Software classifier search cost per work unit.  A TSS tuple probe is a
   hash-table access over a masked key (~cache-miss bound); a learned-model
   work unit (RQ-RMI inference step or local-search step) is arithmetic on
   hot data — the NuevoMatch paper reports ~35 ns per inference vs
   hundreds of ns per tuple probe. *)
let sw_search_us ?(algo = `Tss) ~work () =
  let per_unit = match algo with `Nuevomatch -> 0.035 | `Tss | `Linear -> 0.25 in
  per_unit *. float_of_int work

let install_us = 1.8 (* PCIe table write, per new entry *)

let slowpath_us ~pipeline_lookups ~tuple_probes ~partition_work ~rulegen_work ~installs =
  us_of_cycles
    (cycles_userspace ~pipeline_lookups ~tuple_probes
    + cycles_partition ~partition_work
    + cycles_rulegen ~rulegen_work)
  +. (float_of_int installs *. install_us)

(* Telemetry histogram bounds, derived from the model's own extremes: the
   cheapest event it can produce is a fraction of an EMC hit (0.4 us), the
   costliest realistic path is a kernel/ARM slowpath burst (~1e4 us) with
   headroom for pathological rule-generation storms.  Using the model to
   fix the bucket range keeps every modelled latency inside the log-linear
   region (sub-bucket relative error), never in the clamped under/overflow
   buckets. *)
let histogram_lo_us = emc_hit_us /. 8.0
let histogram_hi_us = 1.0e7

let latency_histogram () =
  Gf_telemetry.Histogram.create ~lo:histogram_lo_us ~hi:histogram_hi_us ()
