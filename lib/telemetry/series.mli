(** Time-series sampler: periodic snapshots of per-level hit rate,
    occupancy and latency quantiles.

    The producer (the datapath) builds a {!sample} whenever {!due} says the
    cadence has come round; this module owns only the cadence and the
    buffer.  Samples are drained as JSON Lines by {!Export.sample_json}. *)

type level_sample = {
  ls_level : string;
  ls_tier : string;  (** "hardware" | "software" *)
  ls_hits : int;
  ls_misses : int;
  ls_hit_rate : float;  (** 0.0 when the level was never consulted *)
  ls_occupancy : int;
  ls_p50_us : float;
  ls_p99_us : float;
}

type sample = {
  s_packet : int;  (** packets processed when the snapshot was taken *)
  s_time : float;  (** virtual trace time, seconds *)
  s_hw_hits : int;
  s_sw_hits : int;
  s_slowpaths : int;
  s_hw_hit_rate : float;
  s_mean_us : float;
  s_p50_us : float;
  s_p90_us : float;
  s_p99_us : float;
  s_p999_us : float;
  s_levels : level_sample list;
}

type t

val create : every:int -> t
(** Snapshot cadence in packets; must be positive. *)

val every : t -> int

val due : t -> packets:int -> bool
(** True on every [every]-th packet, and never twice for the same packet
    count (so a final flush can push unconditionally). *)

val push : t -> sample -> unit
(** Append a sample (deduplicated by packet count against the newest). *)

val samples : t -> sample list
(** Oldest first. *)

val length : t -> int
val last : t -> sample option

val merge : into:t -> t -> unit
(** Keep every shard's samples, ordered by packet index (each shard counts
    its own packets).  [src] is unchanged. *)
