(** Telemetry facade: one handle bundling the metric {!Registry}, the event
    flight {!Recorder} and the time-series {!Series} sampler, with a single
    {!merge} for parallel shard aggregation.

    Hot-path contract: instrumented code holds a [Telemetry.t option] and
    pattern-matches at each emission site — the [None] branch is a no-op
    performing no allocation and no calls, so disabled telemetry leaves the
    de-allocated datapath hot path untouched. *)

type config = {
  sample_every : int;  (** time-series cadence in packets; 0 disables *)
  event_capacity : int;  (** flight-recorder ring size *)
  event_sample_every : int;  (** record every Nth event; 0 disables *)
  trace_sample_every : int;
      (** traversal-tracer 1-in-N cadence; 0 disables tracing *)
}

val default_config : config
(** [{ sample_every = 10_000; event_capacity = 4096;
       event_sample_every = 1; trace_sample_every = 0 }] *)

type t

val create : ?config:config -> unit -> t

val config : t -> config
val registry : t -> Registry.t
val recorder : t -> Recorder.t option
val series : t -> Series.t option

val tracer : t -> Tracer.t option

val set_tracer : t -> Tracer.t -> unit
(** Attach the traversal tracer.  Called by the datapath at creation
    (it alone knows the level names) when [trace_sample_every > 0];
    last attachment wins. *)

val event :
  t ->
  packet:int ->
  time:float ->
  level:string ->
  latency_us:float ->
  count:int ->
  Recorder.kind ->
  unit
(** Offer an event to the flight recorder (no-op when disabled). *)

val events : t -> Recorder.event list
(** Retained flight-recorder events, oldest first. *)

val samples : t -> Series.sample list

val sample_due : t -> packets:int -> bool
val push_sample : t -> Series.sample -> unit

val merge : into:t -> t -> unit
(** Merge a shard's telemetry: registries merge by (name, labels) with
    exact histogram merge, recorder rings concatenate (newest events win),
    series interleave by packet index, tracers flush then sum (a target
    with no tracer adopts the first shard's).  [src] is unchanged. *)

val write_jsonl : ?meta:(string * Gf_util.Json.t) list -> out_channel -> t -> unit
(** Emit the full JSONL stream: one [{"type":"meta",...}] line (with the
    caller's extra fields and the recorder census), every time-series
    sample, then every retained event. *)

val prometheus : t -> string
(** Prometheus text exposition of the registry. *)
