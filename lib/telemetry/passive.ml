(* Passive (pull-model) telemetry: flat preallocated records that the
   datapath hot path writes with plain field and array stores, and that a
   sampler drains on its own cadence — per batch in the streaming engine,
   per N packets in the walker, and unconditionally at finalize.

   Three write targets, all owned per shard:

   - [counters]: one record per cache level with one mutable int field per
     event kind.  The per-packet path bumps a field — no hashtable lookup,
     no closure, no call.  [to_registry] exports them as the
     [gigaflow_events_total{level,kind}] series at finalize.
   - latency rings ([lat_ring]): raw (value, bucket index) pairs appended
     for every recorded latency; [flush_lat] bulk-records them into the
     owning histogram ([Histogram.record_seq]).  Bit-identical to inline
     [Histogram.record] — same buckets, same left-to-right float sum — but
     the count/sum/min/max aggregation (and its boxed-float stores) runs
     once per flush instead of once per sample.
   - the event ring: a struct-of-arrays ring of flight-recorder candidates
     (int/float array columns, no per-event record allocation);
     [flush_events] hands it to [Recorder.ingest], which applies the
     every-Nth sampling against the recorder's persistent candidate
     census — so flush cadence (ring-full, sampler tick, finalize) cannot
     change which events are retained.

   Determinism: every flush preserves emission order, and each histogram
   and recorder is fed by exactly one ring, so a shard's final telemetry
   is a pure function of its packet stream — identical whatever cadence
   the sampler ran at.  Shard merges (Metrics.merge / Telemetry.merge)
   happen after finalize, which flushes everything, so the established
   Domains==Sequential bit-identity is untouched. *)

type counters = {
  c_level : string;
  mutable c_hits : int;
  mutable c_misses : int;
  mutable c_installs : int;
  mutable c_evicts : int;
  mutable c_promotes : int;
  mutable c_revalidates : int;
  mutable c_rejects : int;
  mutable c_pressure_evicts : int;
  mutable c_defers : int;
  mutable c_demotes : int;
}

type lat_ring = {
  lr_vals : float array;
  lr_idxs : int array;  (* lr_idxs.(k) = Histogram.index h lr_vals.(k) *)
  mutable lr_len : int;
  mutable lr_wraps : int;  (* ring-full auto-flushes (capacity wraps) *)
}

type t = {
  counters : counters array;  (* walk order, one record per level *)
  lat_global : lat_ring;
  lat_levels : lat_ring array;  (* same order as [counters] *)
  (* Struct-of-arrays flight-recorder candidate ring. *)
  ev_kind : int array;  (* Recorder.kind_tag *)
  ev_level : int array;  (* index into [level_names] *)
  ev_packet : int array;
  ev_count : int array;
  ev_time : float array;
  ev_lat : float array;
  mutable ev_len : int;
  mutable ev_wraps : int;  (* event-ring-full auto-flushes *)
  level_names : string array;
  recorder : Recorder.t option;
  events_on : bool;
      (* [recorder <> None], exposed as a plain field so emission sites
         skip the event-ring append (a call) with one load when event
         tracing is off. *)
}

let default_lat_capacity = 1024
let default_event_capacity = 4096

let fresh_counters name =
  {
    c_level = name;
    c_hits = 0;
    c_misses = 0;
    c_installs = 0;
    c_evicts = 0;
    c_promotes = 0;
    c_revalidates = 0;
    c_rejects = 0;
    c_pressure_evicts = 0;
    c_defers = 0;
    c_demotes = 0;
  }

let create ?(lat_capacity = default_lat_capacity)
    ?(event_capacity = default_event_capacity) ~level_names ~recorder () =
  if lat_capacity < 1 then
    invalid_arg "Passive.create: lat_capacity must be positive";
  if event_capacity < 1 then
    invalid_arg "Passive.create: event_capacity must be positive";
  let ring () =
    {
      lr_vals = Array.make lat_capacity 0.0;
      lr_idxs = Array.make lat_capacity 0;
      lr_len = 0;
      lr_wraps = 0;
    }
  in
  {
    counters = Array.map fresh_counters level_names;
    lat_global = ring ();
    lat_levels = Array.map (fun _ -> ring ()) level_names;
    ev_kind = Array.make event_capacity 0;
    ev_level = Array.make event_capacity 0;
    ev_packet = Array.make event_capacity 0;
    ev_count = Array.make event_capacity 0;
    ev_time = Array.make event_capacity 0.0;
    ev_lat = Array.make event_capacity 0.0;
    ev_len = 0;
    ev_wraps = 0;
    level_names;
    recorder;
    events_on = Option.is_some recorder;
  }

(* ---------------------------- latency rings ---------------------------- *)

let flush_lat r h =
  if r.lr_len > 0 then begin
    Histogram.record_seq h ~idxs:r.lr_idxs ~vals:r.lr_vals r.lr_len;
    r.lr_len <- 0
  end

(* Append with the bucket index precomputed (the compiled replay fast path
   reuses its memoised index, paying no log2 at all). *)
let lat_note_at r h ~idx x =
  let k = r.lr_len in
  r.lr_vals.(k) <- x;
  r.lr_idxs.(k) <- idx;
  r.lr_len <- k + 1;
  if k + 1 = Array.length r.lr_vals then begin
    r.lr_wraps <- r.lr_wraps + 1;
    flush_lat r h
  end

let lat_note r h x = lat_note_at r h ~idx:(Histogram.index h x) x

(* ----------------------------- event ring ------------------------------ *)

let flush_events t =
  if t.ev_len > 0 then begin
    (match t.recorder with
    | Some r ->
        Recorder.ingest r ~kinds:t.ev_kind ~levels:t.ev_level
          ~level_names:t.level_names ~packets:t.ev_packet ~times:t.ev_time
          ~lats:t.ev_lat ~counts:t.ev_count t.ev_len
    | None -> ());
    t.ev_len <- 0
  end

let note t ~kind ~level ~packet ~time ~lat ~count =
  if t.events_on then begin
    let k = t.ev_len in
    t.ev_kind.(k) <- Recorder.kind_tag kind;
    t.ev_level.(k) <- level;
    t.ev_packet.(k) <- packet;
    t.ev_count.(k) <- count;
    t.ev_time.(k) <- time;
    t.ev_lat.(k) <- lat;
    t.ev_len <- k + 1;
    if k + 1 = Array.length t.ev_kind then begin
      t.ev_wraps <- t.ev_wraps + 1;
      flush_events t
    end
  end

(* ------------------------------- export -------------------------------- *)

let iter_kinds f c =
  f "hit" c.c_hits;
  f "miss" c.c_misses;
  f "install" c.c_installs;
  f "evict" c.c_evicts;
  f "promote" c.c_promotes;
  f "revalidate" c.c_revalidates;
  f "reject" c.c_rejects;
  f "pressure_evict" c.c_pressure_evicts;
  f "defer" c.c_defers;
  f "demote" c.c_demotes

(* Export the candidate census as [gigaflow_events_total{level,kind}].
   Values are *set* (mirroring [Metrics.to_registry]), so exporting twice
   is idempotent; shard registries still sum under [Registry.merge]
   because each shard exports its own disjoint records. *)
let to_registry t registry =
  let help = "Datapath event candidates observed by the passive records" in
  Array.iter
    (fun c ->
      iter_kinds
        (fun kind v ->
          let r =
            Registry.counter registry
              ~labels:[ ("kind", kind); ("level", c.c_level) ]
              ~help "gigaflow_events_total"
          in
          r := v)
        c)
    t.counters;
  (* Ring-full auto-flush counts: a non-zero value means the sampler's
     pull cadence is slower than the ring fills — the records still stay
     exact (flushes are order-preserving), but the misconfiguration is
     now observable instead of silent. *)
  let fhelp = "Ring-full auto-flushes of the passive records" in
  let setf ring v =
    let r =
      Registry.counter registry
        ~labels:[ ("ring", ring) ]
        ~help:fhelp "gigaflow_passive_ring_flushes_total"
    in
    r := v
  in
  setf "latency_global" t.lat_global.lr_wraps;
  Array.iteri
    (fun i r -> setf ("latency:" ^ t.level_names.(i)) r.lr_wraps)
    t.lat_levels;
  setf "events" t.ev_wraps

let ring_flushes t =
  t.lat_global.lr_wraps + t.ev_wraps
  + Array.fold_left (fun acc r -> acc + r.lr_wraps) 0 t.lat_levels

let total_candidates t =
  Array.fold_left
    (fun acc c ->
      let s = ref acc in
      iter_kinds (fun _ v -> s := !s + v) c;
      !s)
    0 t.counters
