(** Traversal tracer: hot-path span recording for 1-in-N sampled packets
    (struct-of-arrays ring, plain array stores) plus an always-on,
    allocation-free miss-cause census, pulled into {!Attribution} by the
    sampler off the packet loop.

    Determinism: packet k of a shard's stream is traced iff
    [k mod sample_every = 0] — a pure function of the stream — and the
    census is exact, so Domains==Sequential bit-identity and sampler
    cadence invariance hold by construction.  One tracer per shard; merge
    after finalize. *)

type cause = Attribution.cause =
  | Cold
  | Deferred_admission
  | Pressure_evicted
  | Expired
  | Revalidation
  | Tag_chain_stall

type t = {
  sample_every : int;
  mutable until : int;
      (** packets until the next traced one; 0 = the current packet *)
  mutable active : bool;  (** current packet is being traced *)
  sp_packet : int array;
  sp_time : float array;
  sp_level : int array;
  sp_table : int array;
  sp_depth : int array;
  sp_cycles : int array;
  sp_outcome : int array;
  mutable sp_len : int;
  attr : Attribution.t;
}
(** Exposed (Passive-style) so the datapath's packet paths can inline
    the common-case countdown and [active] checks instead of paying a
    cross-module call per packet.  Treat every field except [until] and
    [active] as private. *)

val create :
  ?span_capacity:int ->
  ?retain:int ->
  sample_every:int ->
  level_names:string array ->
  unit ->
  t
(** [sample_every] must be ≥ 1 (1 traces every packet).  [span_capacity]
    (default 2048) bounds the ring between pulls; [retain] is forwarded
    to {!Attribution.create}. *)

val sample_every : t -> int

val on_packet : t -> bool
(** Advance the packet countdown and return whether this packet is
    traced.  Must be called exactly once per packet, before any {!span},
    on every replay path. *)

val active : t -> bool
(** Whether the current packet (last {!on_packet}) is being traced. *)

val span :
  t ->
  packet:int ->
  time:float ->
  level:int ->
  table:int ->
  depth:int ->
  cycles:int ->
  outcome:int ->
  unit
(** Append one span (see {!Attribution} for outcome codes); flushes to
    the attribution aggregates when the ring fills.  Only call when
    {!active} — the tracer does not re-check. *)

val miss : t -> level:int -> cause -> unit
(** Charge one miss to [cause] — every miss, sampled or not.  One
    int-array increment. *)

val flush : t -> unit
(** Pull the span ring into the attribution aggregates (emission order
    preserved); called by samplers and finalize. *)

val attribution : t -> Attribution.t
(** Flush, then expose the aggregates. *)

val census_total : t -> int
val census_get : t -> level:int -> cause -> int

val merge : into:t -> t -> unit
(** Flush both sides, then sum into [into] ({!Attribution.merge}). *)
