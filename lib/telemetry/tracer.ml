(* Traversal tracer: the hot-path half of the profiler.  For 1-in-N
   sampled packets the datapath appends span-shaped entries (packet id,
   level probed, pipeline table visited, LTM tag-chain step, modeled
   cycles, outcome) to a struct-of-arrays ring with plain array stores —
   no allocation, no calls.  A sampler pulls the ring into {!Attribution}
   on its own cadence (ring-full, per batch in the engine, per N packets
   in the walker, unconditionally at finalize).

   Two always-on responsibilities ride alongside the sampled spans:

   - the packet countdown ([on_packet]) decides deterministically whether
     the current packet is traced: packet k of the shard's stream is
     sampled iff k mod sample_every = 0, a pure function of the stream,
     so Domains==Sequential and cadence invariance hold by construction;
   - the miss-cause census ([miss]) charges every datapath miss — sampled
     or not — to exactly one {!Attribution.cause} with a single int-array
     increment, so per-cause counts reconcile against [Metrics] misses.

   Like the passive records, a tracer is owned by one shard and merged
   after finalize, preserving the established bit-identity. *)

type cause = Attribution.cause =
  | Cold
  | Deferred_admission
  | Pressure_evicted
  | Expired
  | Revalidation
  | Tag_chain_stall

type t = {
  sample_every : int;
  mutable until : int;  (* packets until the next traced one; 0 = now *)
  mutable active : bool;  (* current packet is being traced *)
  (* Struct-of-arrays span ring. *)
  sp_packet : int array;
  sp_time : float array;
  sp_level : int array;
  sp_table : int array;
  sp_depth : int array;
  sp_cycles : int array;
  sp_outcome : int array;
  mutable sp_len : int;
  attr : Attribution.t;
}

let default_span_capacity = 2048

let create ?(span_capacity = default_span_capacity) ?retain ~sample_every
    ~level_names () =
  if sample_every < 1 then
    invalid_arg "Tracer.create: sample_every must be positive";
  if span_capacity < 1 then
    invalid_arg "Tracer.create: span_capacity must be positive";
  {
    sample_every;
    until = 0;
    active = false;
    sp_packet = Array.make span_capacity 0;
    sp_time = Array.make span_capacity 0.0;
    sp_level = Array.make span_capacity 0;
    sp_table = Array.make span_capacity 0;
    sp_depth = Array.make span_capacity 0;
    sp_cycles = Array.make span_capacity 0;
    sp_outcome = Array.make span_capacity 0;
    sp_len = 0;
  attr = Attribution.create ?retain ~level_names ();
  }

let sample_every t = t.sample_every
let active t = t.active

let flush t =
  if t.sp_len > 0 then begin
    for k = 0 to t.sp_len - 1 do
      Attribution.ingest_span t.attr ~packet:t.sp_packet.(k)
        ~time:t.sp_time.(k) ~level:t.sp_level.(k) ~table:t.sp_table.(k)
        ~depth:t.sp_depth.(k) ~cycles:t.sp_cycles.(k)
        ~outcome:t.sp_outcome.(k)
    done;
    t.sp_len <- 0
  end

(* Called once per packet, first thing, on every replay path.  Decides
   whether this packet's traversal is traced: packet k of the shard's
   stream iff [k mod sample_every = 0], kept as a countdown so the
   per-packet cost is a decrement, not a division. *)
let on_packet t =
  let a = t.until = 0 in
  t.until <- (if a then t.sample_every - 1 else t.until - 1);
  t.active <- a;
  if a then Attribution.note_sampled_packet t.attr;
  a

let span t ~packet ~time ~level ~table ~depth ~cycles ~outcome =
  let k = t.sp_len in
  t.sp_packet.(k) <- packet;
  t.sp_time.(k) <- time;
  t.sp_level.(k) <- level;
  t.sp_table.(k) <- table;
  t.sp_depth.(k) <- depth;
  t.sp_cycles.(k) <- cycles;
  t.sp_outcome.(k) <- outcome;
  t.sp_len <- k + 1;
  if k + 1 = Array.length t.sp_packet then flush t

let miss t ~level cause = Attribution.miss_cause t.attr ~level cause

let attribution t =
  flush t;
  t.attr

let census_total t = Attribution.census_total t.attr
let census_get t ~level cause = Attribution.census_get t.attr ~level cause

(* [until] is per-shard stream position and stays with [into] — a merged
   tracer aggregates, it does not keep tracing a stream. *)
let merge ~into src =
  flush into;
  flush src;
  Attribution.merge ~into:into.attr src.attr
