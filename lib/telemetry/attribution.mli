(** Attribution: aggregates spans pulled from the traversal {!Tracer} into
    per-level probe-cost breakdowns, per-pipeline-table cycle totals,
    sub-traversal reuse-depth histograms and a miss-cause census, exported
    as folded-stack text, chrome://tracing JSON, Prometheus series and
    profile JSONL.  Runs entirely off the packet loop. *)

(** Why a datapath miss happened, resolved at the point the miss is
    charged so every [Metrics] miss maps to exactly one cause. *)
type cause =
  | Cold  (** flow never installed at this level (or unknown flow id) *)
  | Deferred_admission  (** heavy-hitter admission kept/demoted it cold *)
  | Pressure_evicted  (** install rejected or entry pressure-evicted *)
  | Expired  (** flow idle past the level's max-idle window *)
  | Revalidation  (** rule-update revalidation dropped the entry *)
  | Tag_chain_stall  (** LTM matched a chain prefix that dead-ended *)

val n_causes : int
val cause_index : cause -> int
val cause_name : cause -> string
val all_causes : cause list

(** Span outcome codes shared with {!Tracer}. *)

val outcome_miss : int
val outcome_hit : int
val outcome_slowpath : int
val outcome_name : int -> string

type t

val create : ?retain:int -> level_names:string array -> unit -> t
(** [retain] bounds the spans kept verbatim for the chrome trace (default
    4096); the {e first} sampled spans are retained so the set is
    independent of flush cadence. *)

val level_names : t -> string array
val sampled_packets : t -> int
val spans : t -> int

val ingest_span :
  t ->
  packet:int ->
  time:float ->
  level:int ->
  table:int ->
  depth:int ->
  cycles:int ->
  outcome:int ->
  unit
(** Fold one span into the aggregates.  Probe spans ([outcome_miss] /
    [outcome_hit]) charge (level, outcome); slowpath spans charge pipeline
    table [table].  [depth] is the LTM tag-chain reuse depth (1/0 for
    unchained levels). *)

val note_sampled_packet : t -> unit

val miss_cause : t -> level:int -> cause -> unit
(** Charge one miss at [level] to [cause].  Allocation-free (one int-array
    increment) — called on the packet path for {e every} miss, sampled or
    not, so the census reconciles with [Metrics]. *)

val census_get : t -> level:int -> cause -> int
val census_total : t -> int

val top_causes : ?n:int -> t -> (string * string * int) list
(** [(level, cause, count)] rows sorted by count descending (deterministic
    tie order), optionally truncated to the top [n]. *)

val merge : into:t -> t -> unit
(** Sum aggregates and census; retained spans concatenate in merge order,
    capped at [into]'s retain bound.  [src] is unchanged. *)

val folded : t -> string
(** Folded-stack text ("frame;frame count" lines, counts in modeled
    cycles) for flamegraph.pl / speedscope; sorted, deterministic. *)

val chrome_json : ?us_of_cycles:(int -> float) -> t -> string
(** chrome://tracing JSON ("X" complete events from the retained spans;
    ts = virtual time in µs, dur via [us_of_cycles], default 1 GHz). *)

val to_registry : t -> Registry.t -> unit
(** Export as [gigaflow_profile_*] series (values set, so re-export is
    idempotent; shard registries still sum under [Registry.merge]). *)

val write_jsonl :
  ?meta:(string * Gf_util.Json.t) list ->
  total_misses:int ->
  out_channel ->
  t ->
  unit
(** Emit profile JSONL: [profile_meta], per-(level,outcome)
    [profile_level] lines, [profile_table], [profile_depth],
    [profile_cause] and a [profile_summary] reconciling the census
    against the caller's [Metrics] miss total. *)
