(* Time-series sampler: periodic snapshots of per-level hit rate, occupancy
   and latency quantiles, accumulated in memory and drained as JSON Lines by
   the exporters.  The producer (the datapath) decides what goes into a
   sample; this module owns only the cadence and the buffer. *)

type level_sample = {
  ls_level : string;
  ls_tier : string;
  ls_hits : int;
  ls_misses : int;
  ls_hit_rate : float;  (* 0.0 when the level was never consulted *)
  ls_occupancy : int;
  ls_p50_us : float;
  ls_p99_us : float;
}

type sample = {
  s_packet : int;  (* packets processed when the snapshot was taken *)
  s_time : float;  (* virtual trace time *)
  s_hw_hits : int;
  s_sw_hits : int;
  s_slowpaths : int;
  s_hw_hit_rate : float;
  s_mean_us : float;
  s_p50_us : float;
  s_p90_us : float;
  s_p99_us : float;
  s_p999_us : float;
  s_levels : level_sample list;
}

type t = {
  every : int;
  mutable rev_samples : sample list;
  mutable last_packet : int;  (* packet index of the newest sample, -1 if none *)
}

let create ~every =
  if every < 1 then invalid_arg "Series.create: every must be positive";
  { every; rev_samples = []; last_packet = -1 }

let every t = t.every

(* A snapshot is due on every [every]-th packet (and never twice for the
   same packet count, so a final flush can call [push] unconditionally). *)
let due t ~packets = packets mod t.every = 0 && packets <> t.last_packet

let push t sample =
  if sample.s_packet <> t.last_packet then begin
    t.rev_samples <- sample :: t.rev_samples;
    t.last_packet <- sample.s_packet
  end

let samples t = List.rev t.rev_samples
let length t = List.length t.rev_samples

let last t = match t.rev_samples with [] -> None | s :: _ -> Some s

(* Shard merge keeps every shard's samples, ordered by packet index (each
   shard counts its own packets, so interleaving by s_packet is the only
   meaningful order).  The merged series no longer deduplicates by packet
   index — two shards legitimately snapshot at the same count. *)
let merge ~into src =
  let all = samples into @ samples src in
  let sorted = List.stable_sort (fun a b -> compare a.s_packet b.s_packet) all in
  into.rev_samples <- List.rev sorted;
  into.last_packet <- -1
