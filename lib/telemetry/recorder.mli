(** Event flight recorder: a fixed-size ring buffer of structured datapath
    events with configurable sampling.

    Every [sample_every]-th candidate event offered to {!record} is kept;
    the ring retains the newest [capacity] kept events and {!drain} returns
    them oldest-first.  Instrumentation can therefore fire on every
    hit/miss/install/evict without the recorder growing past O(capacity). *)

type kind =
  | Hit
  | Miss
  | Install
  | Evict
  | Promote
  | Revalidate
  | Reject
  | Pressure_evict
  | Defer
  | Demote

val kind_name : kind -> string
(** Lower-case wire name ("hit", "miss", ...). *)

val kind_tag : kind -> int
(** Dense integer tag, the storage format of the passive layer's
    struct-of-arrays candidate ring ({!Passive}). *)

val kind_of_tag : int -> kind
(** Inverse of {!kind_tag}; raises [Invalid_argument] on unknown tags. *)

type event = {
  seq : int;  (** candidate index within this recorder, 0-based *)
  packet : int;  (** virtual packet index when the event fired *)
  time : float;  (** virtual trace time, seconds *)
  level : string;  (** cache-level name; [""] for datapath-wide events *)
  kind : kind;
  latency_us : float;  (** 0 where latency is not meaningful *)
  count : int;  (** entries evicted / rules installed; 1 for hit/miss *)
}

type t

val create : ?capacity:int -> ?sample_every:int -> unit -> t
(** Defaults: [capacity = 4096], [sample_every = 1] (keep everything). *)

val record :
  t ->
  packet:int ->
  time:float ->
  level:string ->
  latency_us:float ->
  count:int ->
  kind ->
  unit

val ingest :
  t ->
  kinds:int array ->
  levels:int array ->
  level_names:string array ->
  packets:int array ->
  times:float array ->
  lats:float array ->
  counts:int array ->
  int ->
  unit
(** [ingest t ... n] offers [n] candidates (column-wise: [kinds] holds
    {!kind_tag}s, [levels] indexes [level_names]) in their emission order,
    applying the every-[sample_every]-th sampling against the persistent
    candidate census — retained events are identical to having offered
    each candidate to {!record} at emission time, whatever cadence the
    caller drains its ring at.  This is {!Passive.flush_events}'s sink. *)

val drain : t -> event list
(** Retained events, oldest first.  Non-destructive. *)

val capacity : t -> int
val sample_every : t -> int

val seen : t -> int
(** Candidate events offered (before sampling). *)

val recorded : t -> int
(** Events that passed sampling (monotone; may exceed [capacity]). *)

val retained : t -> int
(** Events currently in the ring: [min recorded capacity]. *)

val dropped : t -> int
(** Sampled events the ring has overwritten: [recorded - retained]. *)

val merge : into:t -> t -> unit
(** Append [src]'s retained events into [into]'s ring (bypassing [into]'s
    sampling — they were already sampled) and add its candidate census.
    Per-shard streams concatenate in merge order; the ring then keeps the
    newest [capacity] of the combined stream.  [src] is unchanged. *)
