(* Mergeable metric registry: counters, gauges and latency histograms keyed
   by (name, labels).  Lookup is O(metrics) — instrumented code is expected
   to resolve its metric handles once (at datapath creation) and mutate the
   returned refs directly, so the registry itself is never on the per-packet
   path. *)

type labels = (string * string) list

type metric =
  | Counter of int ref
  | Gauge of float ref
  | Histogram of Histogram.t

type entry = {
  name : string;
  labels : labels;
  help : string;
  metric : metric;
}

type t = { mutable entries : entry list (* reverse registration order *) }

let create () = { entries = [] }

let normalize_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let find t name labels =
  let labels = normalize_labels labels in
  List.find_opt
    (fun e -> String.equal e.name name && e.labels = labels)
    t.entries

let register t name labels help metric =
  t.entries <-
    { name; labels = normalize_labels labels; help; metric } :: t.entries;
  metric

let counter t ?(labels = []) ?(help = "") name =
  match find t name labels with
  | Some { metric = Counter r; _ } -> r
  | Some _ -> invalid_arg ("Registry.counter: " ^ name ^ " is not a counter")
  | None -> (
      match register t name labels help (Counter (ref 0)) with
      | Counter r -> r
      | _ -> assert false)

let gauge t ?(labels = []) ?(help = "") name =
  match find t name labels with
  | Some { metric = Gauge r; _ } -> r
  | Some _ -> invalid_arg ("Registry.gauge: " ^ name ^ " is not a gauge")
  | None -> (
      match register t name labels help (Gauge (ref 0.0)) with
      | Gauge r -> r
      | _ -> assert false)

let histogram t ?(labels = []) ?(help = "") ?lo ?hi ?sub name =
  match find t name labels with
  | Some { metric = Histogram h; _ } -> h
  | Some _ -> invalid_arg ("Registry.histogram: " ^ name ^ " is not a histogram")
  | None -> (
      match register t name labels help (Histogram (Histogram.create ?lo ?hi ?sub ())) with
      | Histogram h -> h
      | _ -> assert false)

let set_histogram t ?(labels = []) ?(help = "") name h =
  match find t name labels with
  | Some { metric = Histogram _; _ } ->
      (* Replace in place so re-exporting a run's metrics is idempotent. *)
      let labels = normalize_labels labels in
      t.entries <-
        List.map
          (fun e ->
            if String.equal e.name name && e.labels = labels then
              { e with metric = Histogram h }
            else e)
          t.entries
  | Some _ ->
      invalid_arg ("Registry.set_histogram: " ^ name ^ " is not a histogram")
  | None -> ignore (register t name labels help (Histogram h))

(* Registration order: oldest first (entries list is kept reversed). *)
let iter f t =
  List.iter
    (fun e -> f ~name:e.name ~labels:e.labels ~help:e.help e.metric)
    (List.rev t.entries)

let cardinal t = List.length t.entries

(* Merge by (name, labels): counters and gauges add (shards own disjoint
   caches, so instantaneous gauges like occupancy sum), histograms merge
   exactly.  Metrics only [src] has seen are copied in. *)
let merge ~into src =
  List.iter
    (fun e ->
      match (e.metric, find into e.name e.labels) with
      | Counter r, Some { metric = Counter r'; _ } -> r' := !r' + !r
      | Gauge r, Some { metric = Gauge r'; _ } -> r' := !r' +. !r
      | Histogram h, Some { metric = Histogram h'; _ } ->
          Histogram.merge ~into:h' h
      | _, Some _ ->
          invalid_arg ("Registry.merge: metric kind mismatch for " ^ e.name)
      | Counter r, None -> ignore (register into e.name e.labels e.help (Counter (ref !r)))
      | Gauge r, None -> ignore (register into e.name e.labels e.help (Gauge (ref !r)))
      | Histogram h, None ->
          ignore (register into e.name e.labels e.help (Histogram (Histogram.copy h))))
    (List.rev src.entries)
