(* Event flight recorder: a fixed-size ring of structured datapath events
   with configurable sampling.  The ring keeps the newest [capacity]
   recorded events; draining returns them oldest-first.  Sampling happens at
   record time (every [sample_every]-th candidate is kept), so a hot level
   can emit millions of candidates while the recorder stays O(capacity). *)

type kind =
  | Hit
  | Miss
  | Install
  | Evict
  | Promote
  | Revalidate
  | Reject
  | Pressure_evict
  | Defer
  | Demote

let kind_name = function
  | Hit -> "hit"
  | Miss -> "miss"
  | Install -> "install"
  | Evict -> "evict"
  | Promote -> "promote"
  | Revalidate -> "revalidate"
  | Reject -> "reject"
  | Pressure_evict -> "pressure_evict"
  | Defer -> "defer"
  | Demote -> "demote"

(* Integer tags for [kind], the storage format of the passive layer's
   struct-of-arrays candidate ring (int-array columns, no per-event
   allocation on the emitting path). *)
let kind_tag = function
  | Hit -> 0
  | Miss -> 1
  | Install -> 2
  | Evict -> 3
  | Promote -> 4
  | Revalidate -> 5
  | Reject -> 6
  | Pressure_evict -> 7
  | Defer -> 8
  | Demote -> 9

let kind_of_tag = function
  | 0 -> Hit
  | 1 -> Miss
  | 2 -> Install
  | 3 -> Evict
  | 4 -> Promote
  | 5 -> Revalidate
  | 6 -> Reject
  | 7 -> Pressure_evict
  | 8 -> Defer
  | 9 -> Demote
  | n -> invalid_arg (Printf.sprintf "Recorder.kind_of_tag: %d" n)

type event = {
  seq : int;  (* candidate index within this recorder, 0-based *)
  packet : int;  (* virtual packet index when the event fired *)
  time : float;  (* virtual trace time, seconds *)
  level : string;  (* cache-level name, "" for datapath-wide events *)
  kind : kind;
  latency_us : float;  (* 0 where latency is not meaningful *)
  count : int;  (* e.g. entries evicted / rules installed; 1 for hit/miss *)
}

type t = {
  capacity : int;
  sample_every : int;
  ring : event option array;
  mutable seen : int;  (* candidates offered *)
  mutable written : int;  (* events written into the ring, monotone *)
}

let create ?(capacity = 4096) ?(sample_every = 1) () =
  if capacity < 1 then invalid_arg "Recorder.create: capacity must be positive";
  if sample_every < 1 then
    invalid_arg "Recorder.create: sample_every must be positive";
  { capacity; sample_every; ring = Array.make capacity None; seen = 0; written = 0 }

let capacity t = t.capacity
let sample_every t = t.sample_every
let seen t = t.seen
let recorded t = t.written
let retained t = min t.written t.capacity
let dropped t = max 0 (t.written - t.capacity)

(* Append an already-sampled event (merge path). *)
let push t ev =
  t.ring.(t.written mod t.capacity) <- Some ev;
  t.written <- t.written + 1

let record t ~packet ~time ~level ~latency_us ~count kind =
  let s = t.seen in
  t.seen <- s + 1;
  if s mod t.sample_every = 0 then
    push t { seq = s; packet; time; level; kind; latency_us; count }

(* Batch-consume a passive candidate ring: [n] candidates in their
   original emission order, described column-wise ([kinds] holds
   [kind_tag]s, [levels] indexes [level_names]).  Sampling runs against
   the persistent candidate census [seen], exactly as if each candidate
   had been offered to [record] at emission time — so the caller's drain
   cadence cannot change which events are retained. *)
let ingest t ~kinds ~levels ~level_names ~packets ~times ~lats ~counts n =
  for i = 0 to n - 1 do
    let s = t.seen in
    t.seen <- s + 1;
    if s mod t.sample_every = 0 then
      push t
        {
          seq = s;
          packet = packets.(i);
          time = times.(i);
          level = level_names.(levels.(i));
          kind = kind_of_tag kinds.(i);
          latency_us = lats.(i);
          count = counts.(i);
        }
  done

(* Oldest-to-newest retained events. *)
let drain t =
  let n = retained t in
  let start = t.written - n in
  List.init n (fun i ->
      match t.ring.((start + i) mod t.capacity) with
      | Some ev -> ev
      | None -> assert false)

(* Fold [src]'s retained events into [into]'s ring (already sampled, so
   they bypass [into]'s sampling) and account its candidate census.  Shard
   merge: per-shard event streams are concatenated in merge order, and the
   ring then keeps the newest [capacity] of the combined stream. *)
let merge ~into src =
  List.iter (push into) (drain src);
  into.seen <- into.seen + src.seen
