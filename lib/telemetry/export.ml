(* Exporters: Prometheus text exposition for a registry snapshot, and JSON
   Lines encoding for time-series samples and flight-recorder events. *)

module Json = Gf_util.Json

(* --------------------------- Prometheus text --------------------------- *)

(* Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. *)
let sanitize_name name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let label_string labels =
  match labels with
  | [] -> ""
  | _ ->
      let one (k, v) =
        Printf.sprintf "%s=%S" (sanitize_name k) v
      in
      "{" ^ String.concat "," (List.map one labels) ^ "}"

let fmt_value v =
  if Float.is_nan v then "NaN"
  else if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else Printf.sprintf "%.12g" v

(* Histograms are exposed summary-style (pre-computed quantiles + _sum +
   _count): log-linear buckets would need hundreds of `le` series each,
   and the quantiles are what the scrape is for. *)
let quantiles = [ 0.5; 0.9; 0.99; 0.999 ]

let prometheus_to_buffer buf registry =
  let typed = Hashtbl.create 16 in
  let header name help kind =
    if not (Hashtbl.mem typed name) then begin
      Hashtbl.add typed name ();
      if help <> "" then
        Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  Registry.iter
    (fun ~name ~labels ~help metric ->
      let name = sanitize_name name in
      match metric with
      | Registry.Counter r ->
          header name help "counter";
          Buffer.add_string buf
            (Printf.sprintf "%s%s %d\n" name (label_string labels) !r)
      | Registry.Gauge r ->
          header name help "gauge";
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" name (label_string labels) (fmt_value !r))
      | Registry.Histogram h ->
          header name help "summary";
          List.iter
            (fun q ->
              let ls = labels @ [ ("quantile", Printf.sprintf "%g" q) ] in
              Buffer.add_string buf
                (Printf.sprintf "%s%s %s\n" name (label_string ls)
                   (fmt_value (Histogram.quantile h q))))
            quantiles;
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" name (label_string labels)
               (fmt_value (Histogram.sum h)));
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" name (label_string labels)
               (Histogram.count h)))
    registry

let prometheus registry =
  let buf = Buffer.create 4096 in
  prometheus_to_buffer buf registry;
  Buffer.contents buf

(* ------------------------------ JSON Lines ------------------------------ *)

let level_sample_json (l : Series.level_sample) =
  Json.Obj
    [
      ("level", Json.Str l.Series.ls_level);
      ("tier", Json.Str l.Series.ls_tier);
      ("hits", Json.Int l.Series.ls_hits);
      ("misses", Json.Int l.Series.ls_misses);
      ("hit_rate", Json.Float l.Series.ls_hit_rate);
      ("occupancy", Json.Int l.Series.ls_occupancy);
      ("p50_us", Json.Float l.Series.ls_p50_us);
      ("p99_us", Json.Float l.Series.ls_p99_us);
    ]

let sample_json (s : Series.sample) =
  Json.Obj
    [
      ("type", Json.Str "sample");
      ("packet", Json.Int s.Series.s_packet);
      ("time", Json.Float s.Series.s_time);
      ("hw_hits", Json.Int s.Series.s_hw_hits);
      ("sw_hits", Json.Int s.Series.s_sw_hits);
      ("slowpaths", Json.Int s.Series.s_slowpaths);
      ("hw_hit_rate", Json.Float s.Series.s_hw_hit_rate);
      ("mean_us", Json.Float s.Series.s_mean_us);
      ("p50_us", Json.Float s.Series.s_p50_us);
      ("p90_us", Json.Float s.Series.s_p90_us);
      ("p99_us", Json.Float s.Series.s_p99_us);
      ("p999_us", Json.Float s.Series.s_p999_us);
      ("levels", Json.List (List.map level_sample_json s.Series.s_levels));
    ]

let event_json (e : Recorder.event) =
  Json.Obj
    [
      ("type", Json.Str "event");
      ("seq", Json.Int e.Recorder.seq);
      ("packet", Json.Int e.Recorder.packet);
      ("time", Json.Float e.Recorder.time);
      ("level", Json.Str e.Recorder.level);
      ("kind", Json.Str (Recorder.kind_name e.Recorder.kind));
      ("latency_us", Json.Float e.Recorder.latency_us);
      ("count", Json.Int e.Recorder.count);
    ]

let write_line oc json =
  output_string oc (Json.to_string json);
  output_char oc '\n'
