(** Log-linear (HDR-style) histogram with exact merge.

    The positive axis from [lo] upward is split into octaves, each octave
    into [sub] equal-width sub-buckets, so every bucket's relative width is
    at most [1/sub] — recorded quantiles are within that relative error of
    the exact order statistic.  Two histograms with the same layout merge
    {e exactly} (count arrays add), so per-domain histograms aggregate
    without losing tail fidelity.

    [record] allocates nothing (one log2 plus integer/float mutation) and
    is cheap enough to stay always-on in the datapath's per-packet path. *)

type t

val create : ?lo:float -> ?hi:float -> ?sub:int -> unit -> t
(** [create ~lo ~hi ~sub ()] covers [\[lo, hi)] with log-linear buckets
    plus an underflow bucket ([< lo], including non-positive samples) and
    an overflow bucket ([>= hi], clamped).  Defaults: [lo = 0.1],
    [hi = 1e7], [sub = 32] (relative error ~3%). *)

val record : t -> float -> unit

val index : t -> float -> int
(** Bucket index {!record} would use for a sample — exposed so hot paths
    that record the same value repeatedly (the batched engine's compiled
    hit replay, whose hardware-hit latency is constant) can compute it
    once and use {!record_at}. *)

val record_at : t -> int -> float -> unit
(** [record_at t i x] is {!record}[ t x] with the bucket index [i]
    precomputed; [i] must equal [index t x]. *)

val record_seq : t -> idxs:int array -> vals:float array -> int -> unit
(** [record_seq t ~idxs ~vals n] records [vals.(0..n-1)] in order, each
    with its precomputed bucket index ([idxs.(k)] must equal
    [index t vals.(k)]).  Bit-identical to [n] {!record} calls — same
    buckets, same left-to-right float sum — with the aggregate updates
    hoisted out of the loop.  This is the passive telemetry layer's
    flush path ({!Passive.flush_lat}). *)

val count : t -> int
val sum : t -> float

val mean : t -> float
(** 0.0 when empty. *)

val min_value : t -> float
(** Exact minimum recorded sample; [nan] when empty. *)

val max_value : t -> float
(** Exact maximum recorded sample; [nan] when empty. *)

val quantile : t -> float -> float
(** [quantile t q] with [q] in [\[0, 1\]]: representative value of the
    bucket holding the rank-[ceil q*count] sample, clamped into the exact
    observed [min, max] range.  0.0 when empty. *)

val p50 : t -> float
val p90 : t -> float
val p99 : t -> float
val p999 : t -> float

val relative_error : t -> float
(** Worst-case relative bucket width, [1/sub]: a reported quantile [v]
    brackets the exact order statistic within [v * (1 +- relative_error)]
    (plus the underflow bucket's absolute [lo] bound for sub-[lo]
    samples). *)

val merge : into:t -> t -> unit
(** Add [src]'s buckets into [into].  Exact: afterwards [into] equals a
    histogram that recorded both sample streams.  Raises [Invalid_argument]
    if the layouts differ.  [src] is unchanged. *)

val same_layout : t -> t -> bool
val copy : t -> t

val bounds_of_value : t -> float -> float * float
(** Bounds of the bucket a value would land in (test oracle support). *)

val iter_buckets : (lo:float -> hi:float -> count:int -> unit) -> t -> unit
(** Iterate non-empty buckets in increasing value order. *)
