(* Attribution: the pull side of the traversal tracer.  [Tracer] fills a
   span ring on the packet path; this module aggregates the pulled spans
   into per-level probe-cost breakdowns, per-pipeline-table cycle totals,
   sub-traversal reuse-depth histograms and a miss-cause census, and
   renders them as folded-stack text (flamegraphs), chrome://tracing JSON,
   Prometheus series and profile JSONL.

   Everything here runs off the packet loop (at flush / finalize / export
   time), so plain hashless int arrays with doubling growth are enough;
   determinism only requires that ingest order is a pure function of the
   shard's packet stream, which the tracer's ring guarantees. *)

module Json = Gf_util.Json

(* ------------------------------ causes ------------------------------- *)

type cause =
  | Cold
  | Deferred_admission
  | Pressure_evicted
  | Expired
  | Revalidation
  | Tag_chain_stall

let n_causes = 6

let cause_index = function
  | Cold -> 0
  | Deferred_admission -> 1
  | Pressure_evicted -> 2
  | Expired -> 3
  | Revalidation -> 4
  | Tag_chain_stall -> 5

let cause_name = function
  | Cold -> "cold"
  | Deferred_admission -> "deferred_admission"
  | Pressure_evicted -> "pressure_evicted"
  | Expired -> "expired"
  | Revalidation -> "revalidation"
  | Tag_chain_stall -> "tag_chain_stall"

let all_causes =
  [
    Cold;
    Deferred_admission;
    Pressure_evicted;
    Expired;
    Revalidation;
    Tag_chain_stall;
  ]

(* ------------------------------ outcomes ----------------------------- *)

(* Span outcome codes, shared with [Tracer]: a probe span at a cache level
   either missed or hit; a slowpath span charges one pipeline table. *)
let outcome_miss = 0
let outcome_hit = 1
let outcome_slowpath = 2

let outcome_name = function
  | 0 -> "miss"
  | 1 -> "hit"
  | 2 -> "slowpath"
  | _ -> "unknown"

(* ------------------------------- state ------------------------------- *)

type t = {
  level_names : string array;
  n_levels : int;
  mutable sampled_packets : int;
  mutable spans : int;
  level_cycles : int array;  (* (level * 2 + outcome) -> modeled cycles *)
  level_spans : int array;  (* same indexing: probe spans observed *)
  mutable depth_hist : int array;  (* reuse depth -> hit spans; grows *)
  mutable table_cycles : int array;  (* pipeline table id -> cycles; grows *)
  mutable table_visits : int array;
  census : int array;  (* (level * n_causes + cause) -> misses *)
  (* The first [retain] sampled spans are kept verbatim for the chrome
     trace; keeping a prefix (rather than newest-wins) makes the retained
     set independent of flush cadence. *)
  retain : int;
  mutable r_packet : int array;
  mutable r_time : float array;
  mutable r_level : int array;
  mutable r_table : int array;
  mutable r_depth : int array;
  mutable r_cycles : int array;
  mutable r_outcome : int array;
  mutable r_len : int;
}

let default_retain = 4096

let create ?(retain = default_retain) ~level_names () =
  let n = Array.length level_names in
  {
    level_names;
    n_levels = n;
    sampled_packets = 0;
    spans = 0;
    level_cycles = Array.make (max 1 (n * 2)) 0;
    level_spans = Array.make (max 1 (n * 2)) 0;
    depth_hist = Array.make 8 0;
    table_cycles = Array.make 16 0;
    table_visits = Array.make 16 0;
    census = Array.make (max 1 (n * n_causes)) 0;
    retain;
    r_packet = [||];
    r_time = [||];
    r_level = [||];
    r_table = [||];
    r_depth = [||];
    r_cycles = [||];
    r_outcome = [||];
    r_len = 0;
  }

let level_names t = t.level_names
let sampled_packets t = t.sampled_packets
let spans t = t.spans

let grown a n =
  if n < Array.length a then a
  else begin
    let b = Array.make (max (n + 1) (2 * Array.length a + 1)) 0 in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

let retain_span t ~packet ~time ~level ~table ~depth ~cycles ~outcome =
  if t.r_len < t.retain then begin
    if t.r_len = Array.length t.r_packet then begin
      let cap = max 256 (min t.retain (2 * Array.length t.r_packet + 1)) in
      let gi a =
        let b = Array.make cap 0 in
        Array.blit a 0 b 0 t.r_len;
        b
      in
      let gf a =
        let b = Array.make cap 0.0 in
        Array.blit a 0 b 0 t.r_len;
        b
      in
      t.r_packet <- gi t.r_packet;
      t.r_time <- gf t.r_time;
      t.r_level <- gi t.r_level;
      t.r_table <- gi t.r_table;
      t.r_depth <- gi t.r_depth;
      t.r_cycles <- gi t.r_cycles;
      t.r_outcome <- gi t.r_outcome
    end;
    let k = t.r_len in
    t.r_packet.(k) <- packet;
    t.r_time.(k) <- time;
    t.r_level.(k) <- level;
    t.r_table.(k) <- table;
    t.r_depth.(k) <- depth;
    t.r_cycles.(k) <- cycles;
    t.r_outcome.(k) <- outcome;
    t.r_len <- k + 1
  end

let ingest_span t ~packet ~time ~level ~table ~depth ~cycles ~outcome =
  t.spans <- t.spans + 1;
  if outcome = outcome_slowpath then begin
    if table >= 0 then begin
      t.table_cycles <- grown t.table_cycles table;
      t.table_visits <- grown t.table_visits table;
      t.table_cycles.(table) <- t.table_cycles.(table) + cycles;
      t.table_visits.(table) <- t.table_visits.(table) + 1
    end
  end
  else if level >= 0 && level < t.n_levels then begin
    let i = (level * 2) + outcome in
    t.level_cycles.(i) <- t.level_cycles.(i) + cycles;
    t.level_spans.(i) <- t.level_spans.(i) + 1;
    if outcome = outcome_hit then begin
      t.depth_hist <- grown t.depth_hist depth;
      t.depth_hist.(depth) <- t.depth_hist.(depth) + 1
    end
  end;
  retain_span t ~packet ~time ~level ~table ~depth ~cycles ~outcome

let note_sampled_packet t = t.sampled_packets <- t.sampled_packets + 1

(* ------------------------------- census ------------------------------ *)

let miss_cause t ~level cause =
  let i = (level * n_causes) + cause_index cause in
  t.census.(i) <- t.census.(i) + 1

let census_get t ~level cause = t.census.((level * n_causes) + cause_index cause)
let census_total t = Array.fold_left ( + ) 0 t.census

(* Per-(level, cause) counts sorted by count descending, then by level and
   cause index for a deterministic tie order. *)
let top_causes ?n t =
  let rows = ref [] in
  for l = 0 to t.n_levels - 1 do
    List.iter
      (fun c ->
        let v = census_get t ~level:l c in
        if v > 0 then rows := (t.level_names.(l), cause_name c, v) :: !rows)
      all_causes
  done;
  let sorted =
    List.sort (fun (_, _, a) (_, _, b) -> compare b a) (List.rev !rows)
  in
  match n with
  | None -> sorted
  | Some n -> List.filteri (fun i _ -> i < n) sorted

(* ------------------------------- merge ------------------------------- *)

let merge ~into src =
  if into.n_levels <> src.n_levels then
    invalid_arg "Attribution.merge: mismatched level counts";
  into.sampled_packets <- into.sampled_packets + src.sampled_packets;
  into.spans <- into.spans + src.spans;
  Array.iteri
    (fun i v -> into.level_cycles.(i) <- into.level_cycles.(i) + v)
    src.level_cycles;
  Array.iteri
    (fun i v -> into.level_spans.(i) <- into.level_spans.(i) + v)
    src.level_spans;
  Array.iteri (fun i v -> into.census.(i) <- into.census.(i) + v) src.census;
  into.depth_hist <- grown into.depth_hist (Array.length src.depth_hist - 1);
  Array.iteri
    (fun i v -> into.depth_hist.(i) <- into.depth_hist.(i) + v)
    src.depth_hist;
  into.table_cycles <- grown into.table_cycles (Array.length src.table_cycles - 1);
  into.table_visits <- grown into.table_visits (Array.length src.table_visits - 1);
  Array.iteri
    (fun i v -> into.table_cycles.(i) <- into.table_cycles.(i) + v)
    src.table_cycles;
  Array.iteri
    (fun i v -> into.table_visits.(i) <- into.table_visits.(i) + v)
    src.table_visits;
  (* Retained spans concatenate in merge order (shard order is fixed by
     the caller), capped at [into.retain]. *)
  for k = 0 to src.r_len - 1 do
    retain_span into ~packet:src.r_packet.(k) ~time:src.r_time.(k)
      ~level:src.r_level.(k) ~table:src.r_table.(k) ~depth:src.r_depth.(k)
      ~cycles:src.r_cycles.(k) ~outcome:src.r_outcome.(k)
  done

(* ------------------------------- exports ----------------------------- *)

(* Folded-stack text: one "frame1;frame2 count" line per aggregate, counts
   in modeled cycles — feed straight to flamegraph.pl / speedscope.  Sorted
   lexicographically so output is deterministic. *)
let folded t =
  let lines = ref [] in
  for l = 0 to t.n_levels - 1 do
    for o = 0 to 1 do
      let c = t.level_cycles.((l * 2) + o) in
      if t.level_spans.((l * 2) + o) > 0 then
        lines :=
          Printf.sprintf "datapath;%s;%s %d" t.level_names.(l) (outcome_name o)
            c
          :: !lines
    done
  done;
  Array.iteri
    (fun id v ->
      if t.table_visits.(id) > 0 then
        lines := Printf.sprintf "datapath;slowpath;table_%d %d" id v :: !lines)
    t.table_cycles;
  String.concat "\n" (List.sort compare !lines) ^ "\n"

let span_name t ~level ~table ~outcome =
  if outcome = outcome_slowpath then Printf.sprintf "table_%d" table
  else if level >= 0 && level < t.n_levels then
    Printf.sprintf "%s:%s" t.level_names.(level) (outcome_name outcome)
  else "span"

(* chrome://tracing "X" (complete) events from the retained spans: ts is
   the packet's virtual time in microseconds, dur the span's modeled
   cycles converted by [us_of_cycles] (default 1 GHz). *)
let chrome_json ?(us_of_cycles = fun c -> float_of_int c *. 1e-3) t =
  let events = ref [] in
  for k = t.r_len - 1 downto 0 do
    let outcome = t.r_outcome.(k) in
    let tid =
      if outcome = outcome_slowpath then t.n_levels else t.r_level.(k)
    in
    events :=
      Json.Obj
        [
          ("name", Json.Str (span_name t ~level:t.r_level.(k) ~table:t.r_table.(k) ~outcome));
          ("ph", Json.Str "X");
          ("ts", Json.Float (t.r_time.(k) *. 1e6));
          ("dur", Json.Float (us_of_cycles t.r_cycles.(k)));
          ("pid", Json.Int 0);
          ("tid", Json.Int tid);
          ( "args",
            Json.Obj
              [
                ("packet", Json.Int t.r_packet.(k));
                ("depth", Json.Int t.r_depth.(k));
                ("cycles", Json.Int t.r_cycles.(k));
              ] );
        ]
      :: !events
  done;
  Json.to_string
    (Json.Obj
       [
         ("traceEvents", Json.List !events);
         ("displayTimeUnit", Json.Str "ms");
       ])

let to_registry t registry =
  let set ?labels ~help name v =
    let r = Registry.counter registry ?labels ~help name in
    r := v
  in
  set ~help:"Packets selected by the traversal tracer"
    "gigaflow_profile_sampled_packets_total" t.sampled_packets;
  set ~help:"Traversal spans ingested by the profiler"
    "gigaflow_profile_spans_total" t.spans;
  for l = 0 to t.n_levels - 1 do
    for o = 0 to 1 do
      if t.level_spans.((l * 2) + o) > 0 then
        set
          ~labels:
            [ ("level", t.level_names.(l)); ("outcome", outcome_name o) ]
          ~help:"Modeled cycles attributed to sampled cache-level probes"
          "gigaflow_profile_cycles_total"
          t.level_cycles.((l * 2) + o)
    done;
    List.iter
      (fun c ->
        let v = census_get t ~level:l c in
        if v > 0 then
          set
            ~labels:[ ("level", t.level_names.(l)); ("cause", cause_name c) ]
            ~help:"Datapath misses by resolved cause"
            "gigaflow_profile_miss_cause_total" v)
      all_causes
  done;
  Array.iteri
    (fun id v ->
      if t.table_visits.(id) > 0 then
        set
          ~labels:[ ("table", string_of_int id) ]
          ~help:"Modeled slowpath cycles attributed to pipeline tables"
          "gigaflow_profile_table_cycles_total" v)
    t.table_cycles;
  Array.iteri
    (fun d v ->
      if v > 0 then
        set
          ~labels:[ ("depth", string_of_int d) ]
          ~help:"Sampled hit spans by sub-traversal reuse depth"
          "gigaflow_profile_reuse_depth_total" v)
    t.depth_hist

(* Profile JSONL: a meta line, per-(level,outcome) probe aggregates,
   per-table slowpath aggregates, the reuse-depth histogram, the full
   miss-cause census and a summary line reconciling the census against
   the [Metrics] miss total the caller observed. *)
let write_jsonl ?(meta = []) ~total_misses oc t =
  let line j = Export.write_line oc (Json.Obj j) in
  line
    ((("type", Json.Str "profile_meta") :: meta)
    @ [
        ("sampled_packets", Json.Int t.sampled_packets);
        ("spans", Json.Int t.spans);
        ( "levels",
          Json.List
            (Array.to_list (Array.map (fun n -> Json.Str n) t.level_names)) );
      ]);
  for l = 0 to t.n_levels - 1 do
    for o = 0 to 1 do
      if t.level_spans.((l * 2) + o) > 0 then
        line
          [
            ("type", Json.Str "profile_level");
            ("level", Json.Str t.level_names.(l));
            ("outcome", Json.Str (outcome_name o));
            ("spans", Json.Int t.level_spans.((l * 2) + o));
            ("cycles", Json.Int t.level_cycles.((l * 2) + o));
          ]
    done
  done;
  Array.iteri
    (fun id v ->
      if v > 0 then
        line
          [
            ("type", Json.Str "profile_table");
            ("table", Json.Int id);
            ("visits", Json.Int v);
            ("cycles", Json.Int t.table_cycles.(id));
          ])
    t.table_visits;
  Array.iteri
    (fun d v ->
      if v > 0 then
        line
          [
            ("type", Json.Str "profile_depth");
            ("depth", Json.Int d);
            ("spans", Json.Int v);
          ])
    t.depth_hist;
  for l = 0 to t.n_levels - 1 do
    List.iter
      (fun c ->
        let v = census_get t ~level:l c in
        if v > 0 then
          line
            [
              ("type", Json.Str "profile_cause");
              ("level", Json.Str t.level_names.(l));
              ("cause", Json.Str (cause_name c));
              ("count", Json.Int v);
            ])
      all_causes
  done;
  let total = census_total t in
  line
    [
      ("type", Json.Str "profile_summary");
      ("census_total", Json.Int total);
      ("total_misses", Json.Int total_misses);
      ("reconciled", Json.Bool (total = total_misses));
    ]
