(** Mergeable metric registry: counters, gauges and latency histograms
    keyed by (name, labels).

    Instrumented code resolves its handles once (e.g. at datapath creation)
    and mutates the returned refs directly — registry lookup is never on
    the per-packet path.  [merge] folds one registry into another by
    (name, labels): counters and gauges add (parallel shards own disjoint
    caches, so instantaneous gauges like occupancy sum), histograms merge
    exactly. *)

type t

type labels = (string * string) list

type metric =
  | Counter of int ref
  | Gauge of float ref
  | Histogram of Histogram.t

val create : unit -> t

val counter : t -> ?labels:labels -> ?help:string -> string -> int ref
(** Find-or-create.  Raises [Invalid_argument] if the name is already
    registered with a different metric kind. *)

val gauge : t -> ?labels:labels -> ?help:string -> string -> float ref

val histogram :
  t ->
  ?labels:labels ->
  ?help:string ->
  ?lo:float ->
  ?hi:float ->
  ?sub:int ->
  string ->
  Histogram.t

val set_histogram :
  t -> ?labels:labels -> ?help:string -> string -> Histogram.t -> unit
(** Register an externally-owned histogram (e.g. the datapath's always-on
    latency histograms) so exporters see it.  Re-registering the same
    (name, labels) replaces the previous histogram (idempotent export);
    raises [Invalid_argument] if it names a non-histogram metric. *)

val iter :
  (name:string -> labels:labels -> help:string -> metric -> unit) -> t -> unit
(** Iterate in registration order. *)

val cardinal : t -> int

val merge : into:t -> t -> unit
(** Fold [src] into [into] by (name, labels); metrics only [src] has seen
    are copied in.  [src] is unchanged. *)
