(* Log-linear (HDR-style) histogram.

   The positive axis from [lo] upwards is divided into octaves (powers of
   two), each octave into [sub] equal-width linear sub-buckets, so the
   relative width of any bucket is at most 1/sub — recorded quantiles are
   within that relative error of the exact order statistic.  Bucket layout
   is a pure function of (lo, sub, octaves), so two histograms with the same
   layout merge exactly by adding their count arrays: merging per-domain
   histograms is indistinguishable from recording the concatenated sample
   stream (this is what keeps tail quantiles honest across Parallel
   shards).

   [record] allocates nothing: a bucket-index computation (one log2) and
   integer/float mutations, cheap enough to stay always-on in the
   datapath's per-packet path. *)

type t = {
  lo : float;  (* lower bound of the first log bucket; > 0 *)
  sub : int;  (* sub-buckets per octave *)
  octaves : int;
  counts : int array;  (* [0] underflow, then octaves*sub, last overflow *)
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

let default_lo = 0.1
let default_hi = 1.0e7
let default_sub = 32

let create ?(lo = default_lo) ?(hi = default_hi) ?(sub = default_sub) () =
  if not (lo > 0.0 && hi > lo) then invalid_arg "Histogram.create: need 0 < lo < hi";
  if sub < 1 then invalid_arg "Histogram.create: sub must be positive";
  let octaves = int_of_float (Float.ceil (Float.log2 (hi /. lo))) in
  let octaves = max 1 octaves in
  {
    lo;
    sub;
    octaves;
    counts = Array.make (2 + (octaves * sub)) 0;
    count = 0;
    sum = 0.0;
    min_v = infinity;
    max_v = neg_infinity;
  }

let same_layout a b = a.lo = b.lo && a.sub = b.sub && a.octaves = b.octaves

let count t = t.count
let sum t = t.sum
let min_value t = if t.count = 0 then nan else t.min_v
let max_value t = if t.count = 0 then nan else t.max_v
let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count

let relative_error t = 1.0 /. float_of_int t.sub

(* Bucket index for a sample.  Values below [lo] (including <= 0) land in
   the underflow bucket; values past the top octave clamp into overflow. *)
let index t x =
  if not (x >= t.lo) then 0
  else begin
    let e = int_of_float (Float.log2 (x /. t.lo)) in
    (* Guard the float rounding of log2 around exact powers of two. *)
    let e = if t.lo *. Float.ldexp 1.0 e > x then e - 1 else e in
    if e >= t.octaves then 1 + (t.octaves * t.sub)
    else begin
      let base = t.lo *. Float.ldexp 1.0 e in
      let s = int_of_float (float_of_int t.sub *. ((x /. base) -. 1.0)) in
      let s = if s < 0 then 0 else if s >= t.sub then t.sub - 1 else s in
      1 + (e * t.sub) + s
    end
  end

let record t x =
  let i = index t x in
  t.counts.(i) <- t.counts.(i) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum +. x;
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x

(* [record] with the bucket index precomputed (callers that record a
   constant value repeatedly hoist the log2 out of their per-sample
   path); [i] must equal [index t x]. *)
let record_at t i x =
  t.counts.(i) <- t.counts.(i) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum +. x;
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x

(* Bulk ingestion for the passive layer's raw-latency rings: [n] samples
   with their bucket indices precomputed ([idxs.(k)] must equal
   [index t vals.(k)]).  Bit-identical to calling [record] on each sample
   in order — the sum accumulates left-to-right from the current [t.sum] —
   but count/sum/min/max live in locals across the loop, so the per-sample
   boxed-float field stores are paid once per flush, not once per
   sample. *)
let record_seq t ~idxs ~vals n =
  let counts = t.counts in
  let s = ref t.sum and mn = ref t.min_v and mx = ref t.max_v in
  for k = 0 to n - 1 do
    let x = vals.(k) in
    let i = idxs.(k) in
    counts.(i) <- counts.(i) + 1;
    s := !s +. x;
    if x < !mn then mn := x;
    if x > !mx then mx := x
  done;
  t.count <- t.count + n;
  t.sum <- !s;
  t.min_v <- !mn;
  t.max_v <- !mx

(* Bounds of bucket [i]: the underflow bucket spans [0, lo), log bucket
   (e, s) spans lo*2^e*[1 + s/sub, 1 + (s+1)/sub), overflow spans
   [lo*2^octaves, inf). *)
let bucket_bounds t i =
  if i = 0 then (0.0, t.lo)
  else if i = 1 + (t.octaves * t.sub) then
    (t.lo *. Float.ldexp 1.0 t.octaves, infinity)
  else begin
    let e = (i - 1) / t.sub and s = (i - 1) mod t.sub in
    let base = t.lo *. Float.ldexp 1.0 e in
    ( base *. (1.0 +. (float_of_int s /. float_of_int t.sub)),
      base *. (1.0 +. (float_of_int (s + 1) /. float_of_int t.sub)) )
  end

let bounds_of_value t x = bucket_bounds t (index t x)

(* Representative value of a bucket: its midpoint, clamped into the
   exactly-tracked [min, max] observed range so open-ended buckets (and the
   extremes) report real values. *)
let representative t i =
  let lo_b, hi_b = bucket_bounds t i in
  let mid =
    if hi_b = infinity then t.max_v
    else if i = 0 then t.lo /. 2.0
    else (lo_b +. hi_b) /. 2.0
  in
  let mid = if mid < t.min_v then t.min_v else mid in
  if mid > t.max_v then t.max_v else mid

(* Rank-based quantile: the value at rank ceil(q * count) (1-based), i.e.
   the smallest recorded value such that at least a fraction q of samples
   are <= it.  0.0 on an empty histogram. *)
let quantile t q =
  if t.count = 0 then 0.0
  else begin
    let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
    let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int t.count))) in
    let rec walk i cum =
      let cum = cum + t.counts.(i) in
      if cum >= rank then representative t i else walk (i + 1) cum
    in
    walk 0 0
  end

let p50 t = quantile t 0.50
let p90 t = quantile t 0.90
let p99 t = quantile t 0.99
let p999 t = quantile t 0.999

let merge ~into src =
  if not (same_layout into src) then
    invalid_arg "Histogram.merge: layouts differ";
  Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) src.counts;
  into.count <- into.count + src.count;
  into.sum <- into.sum +. src.sum;
  if src.min_v < into.min_v then into.min_v <- src.min_v;
  if src.max_v > into.max_v then into.max_v <- src.max_v

let copy t =
  {
    t with
    counts = Array.copy t.counts;
  }

let iter_buckets f t =
  Array.iteri
    (fun i c ->
      if c > 0 then begin
        let lo_b, hi_b = bucket_bounds t i in
        f ~lo:lo_b ~hi:hi_b ~count:c
      end)
    t.counts
