(** Exporters: Prometheus text exposition and JSON Lines encoding.

    Histograms are exposed Prometheus-summary-style (pre-computed
    p50/p90/p99/p99.9 + [_sum] + [_count]) — log-linear buckets would need
    hundreds of [le] series each, and the quantiles are what the scrape is
    for. *)

val prometheus : Registry.t -> string
(** Render a registry snapshot in Prometheus text exposition format. *)

val prometheus_to_buffer : Buffer.t -> Registry.t -> unit

val sample_json : Series.sample -> Gf_util.Json.t
(** One time-series snapshot as a [{"type":"sample", ...}] object. *)

val event_json : Recorder.event -> Gf_util.Json.t
(** One flight-recorder event as an [{"type":"event", ...}] object. *)

val write_line : out_channel -> Gf_util.Json.t -> unit
(** Write one JSON value followed by a newline (one JSONL record). *)

val sanitize_name : string -> string
(** Map a metric name onto Prometheus' allowed charset. *)
