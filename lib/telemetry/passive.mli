(** Passive (pull-model) telemetry: flat preallocated records written by
    the datapath hot path with plain field/array stores, drained by a
    sampler on its own cadence (per batch in the streaming engine, per N
    packets in the walker, unconditionally at finalize).

    The record types are exposed transparently on purpose: emission sites
    mutate the fields directly — no hashtable lookups, no closures, no
    calls on the per-packet path.  All histogram bucket aggregation,
    series appending and flight-recorder sampling happens at flush time,
    off the packet loop.

    Determinism: flushes preserve emission order and each histogram /
    recorder is fed by exactly one ring, so a shard's final telemetry is a
    pure function of its packet stream — identical at any sampler cadence.
    Finalize-time flushing precedes shard merges, so Domains==Sequential
    bit-identity is preserved. *)

type counters = {
  c_level : string;
  mutable c_hits : int;
  mutable c_misses : int;
  mutable c_installs : int;
  mutable c_evicts : int;
  mutable c_promotes : int;
  mutable c_revalidates : int;
  mutable c_rejects : int;
  mutable c_pressure_evicts : int;
  mutable c_defers : int;
  mutable c_demotes : int;
}
(** Per-level event-candidate census: one mutable int per event kind,
    bumped by the hot path.  Counts are in event units (entries evicted,
    rules installed, 1 per hit/miss). *)

type lat_ring = {
  lr_vals : float array;
  lr_idxs : int array;  (** [lr_idxs.(k) = Histogram.index h lr_vals.(k)] *)
  mutable lr_len : int;
  mutable lr_wraps : int;
      (** ring-full auto-flushes — non-zero means the sampler cadence is
          slower than the ring fills *)
}
(** Raw-latency ring: samples with their precomputed bucket indices,
    bulk-recorded into the owning histogram on flush
    ({!Histogram.record_seq}, bit-identical to inline records). *)

type t = {
  counters : counters array;  (** walk order, one record per level *)
  lat_global : lat_ring;
  lat_levels : lat_ring array;  (** same order as [counters] *)
  ev_kind : int array;
  ev_level : int array;
  ev_packet : int array;
  ev_count : int array;
  ev_time : float array;
  ev_lat : float array;
  mutable ev_len : int;
  mutable ev_wraps : int;  (** event-ring-full auto-flushes *)
  level_names : string array;
  recorder : Recorder.t option;
  events_on : bool;
      (** [recorder <> None]; emission sites test this field to skip the
          event-ring append entirely when event tracing is off. *)
}

val create :
  ?lat_capacity:int ->
  ?event_capacity:int ->
  level_names:string array ->
  recorder:Recorder.t option ->
  unit ->
  t
(** Defaults: [lat_capacity = 1024] samples per ring,
    [event_capacity = 4096] candidates. *)

val flush_lat : lat_ring -> Histogram.t -> unit
(** Bulk-record the ring's samples into [h] in emission order and empty
    it.  Afterwards [h] is bit-identical to having called
    [Histogram.record] per sample inline. *)

val lat_note : lat_ring -> Histogram.t -> float -> unit
(** Append one sample (bucket index computed here — one log2, the same
    the inline record would have paid), flushing into the histogram when
    the ring fills. *)

val lat_note_at : lat_ring -> Histogram.t -> idx:int -> float -> unit
(** {!lat_note} with the bucket index precomputed ([idx] must equal
    [Histogram.index h x]) — the compiled replay fast path pays no log2. *)

val note :
  t ->
  kind:Recorder.kind ->
  level:int ->
  packet:int ->
  time:float ->
  lat:float ->
  count:int ->
  unit
(** Append a flight-recorder candidate to the event ring ([level] indexes
    [level_names]), flushing to the recorder when the ring fills.  No-op
    when [events_on] is false. *)

val flush_events : t -> unit
(** Hand the ring's candidates to {!Recorder.ingest} in emission order and
    empty it.  Retained events are identical to having offered each
    candidate to [Recorder.record] at emission time. *)

val to_registry : t -> Registry.t -> unit
(** Export the candidate census as [gigaflow_events_total{level,kind}]
    and the ring-full auto-flush counts as
    [gigaflow_passive_ring_flushes_total{ring}] (rings: [latency_global],
    [latency:<level>], [events]).  Values are set (not added), so
    re-export is idempotent; shard registries still sum under
    {!Registry.merge}. *)

val total_candidates : t -> int
(** Sum of every per-level, per-kind census field (test support). *)

val ring_flushes : t -> int
(** Total ring-full auto-flushes across every ring (test support). *)
