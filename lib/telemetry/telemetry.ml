(* Telemetry facade: one handle bundling the metric registry, the event
   flight recorder and the time-series sampler, with a single merge for
   parallel shard aggregation.

   The hot-path contract: instrumented code holds a [Telemetry.t option]
   and pattern-matches at every emission site — the [None] branch is a
   no-op that performs no allocation and no calls, so disabled telemetry
   leaves the de-allocated datapath hot path untouched. *)

type config = {
  sample_every : int;  (* time-series cadence in packets; 0 disables *)
  event_capacity : int;  (* flight-recorder ring size *)
  event_sample_every : int;  (* record every Nth event; 0 disables *)
  trace_sample_every : int;  (* traversal-tracer 1-in-N cadence; 0 disables *)
}

let default_config =
  {
    sample_every = 10_000;
    event_capacity = 4096;
    event_sample_every = 1;
    trace_sample_every = 0;
  }

type t = {
  config : config;
  registry : Registry.t;
  recorder : Recorder.t option;
  series : Series.t option;
  (* The traversal tracer needs level names only the datapath knows, so
     the datapath attaches it at creation when [trace_sample_every > 0]
     (mirroring [Gigaflow.attach_telemetry]); [merge] then aggregates
     shard tracers like every other component. *)
  mutable tracer : Tracer.t option;
}

let create ?(config = default_config) () =
  {
    config;
    registry = Registry.create ();
    recorder =
      (if config.event_sample_every > 0 then
         Some
           (Recorder.create ~capacity:config.event_capacity
              ~sample_every:config.event_sample_every ())
       else None);
    series =
      (if config.sample_every > 0 then Some (Series.create ~every:config.sample_every)
       else None);
    tracer = None;
  }

let config t = t.config
let registry t = t.registry
let recorder t = t.recorder
let series t = t.series
let tracer t = t.tracer
let set_tracer t tr = t.tracer <- Some tr

let event t ~packet ~time ~level ~latency_us ~count kind =
  match t.recorder with
  | Some r -> Recorder.record r ~packet ~time ~level ~latency_us ~count kind
  | None -> ()

let events t = match t.recorder with Some r -> Recorder.drain r | None -> []
let samples t = match t.series with Some s -> Series.samples s | None -> []

let sample_due t ~packets =
  match t.series with Some s -> Series.due s ~packets | None -> false

let push_sample t sample =
  match t.series with Some s -> Series.push s sample | None -> ()

(* Merge a shard's telemetry: registries merge by (name, labels), recorder
   rings concatenate (newest events win), series interleave by packet
   index.  Configs must agree — shards are created from one config. *)
let merge ~into src =
  Registry.merge ~into:into.registry src.registry;
  (match (into.recorder, src.recorder) with
  | Some a, Some b -> Recorder.merge ~into:a b
  | _ -> ());
  (match (into.series, src.series) with
  | Some a, Some b -> Series.merge ~into:a b
  | _ -> ());
  match (into.tracer, src.tracer) with
  | Some a, Some b -> Tracer.merge ~into:a b
  | None, Some b ->
      (* The merge target (a fresh handle) has no datapath, hence no
         tracer; adopt the first shard's and fold the rest in. *)
      into.tracer <- Some b
  | _ -> ()

(* ------------------------------ output ------------------------------ *)

(* The full JSONL stream: one meta line, every time-series sample, then
   every retained flight-recorder event.  [meta] lets the caller prepend
   run parameters (workload, hierarchy, seed). *)
let write_jsonl ?(meta = []) oc t =
  let recorder_meta =
    match t.recorder with
    | Some r ->
        [
          ("events_seen", Gf_util.Json.Int (Recorder.seen r));
          ("events_recorded", Gf_util.Json.Int (Recorder.recorded r));
          ("events_dropped", Gf_util.Json.Int (Recorder.dropped r));
          ("event_sample_every", Gf_util.Json.Int (Recorder.sample_every r));
        ]
    | None -> []
  in
  Export.write_line oc
    (Gf_util.Json.Obj
       ((("type", Gf_util.Json.Str "meta") :: meta)
       @ [ ("samples", Gf_util.Json.Int (List.length (samples t))) ]
       @ recorder_meta));
  List.iter (fun s -> Export.write_line oc (Export.sample_json s)) (samples t);
  List.iter (fun e -> Export.write_line oc (Export.event_json e)) (events t)

let prometheus t = Export.prometheus t.registry
