(** Gigaflow cache configuration.

    The paper's headline configuration is 4 tables x 8K entries ("Gigaflow
    (4x8K)") against a Megaflow baseline of one 32K-entry table — equal
    total SRAM/TCAM budget. *)

type t = {
  tables : int;  (** K, the number of LTM tables (paper: 2-5, default 4). *)
  table_capacity : int;  (** Entries per table (paper: 8K or 100K). *)
  scheme : Partitioner.scheme;  (** Partitioning algorithm (default DP). *)
  max_idle : float;
      (** Seconds of disuse before an entry may be evicted (OVS-style
          max-idle; paper section 4.3.2).  Default 10 s, matching OVS. *)
  adaptive : bool;
      (** The paper's section 7 traffic-profile-guided optimisation: sample
          recent sub-traversal sharing and, when sharing is scarce (a
          low-locality environment), fall back to installing whole-traversal
          (Megaflow-style) entries so the cache never does worse than the
          baseline.  Default off (the paper's evaluated configuration). *)
  adaptive_threshold : float;
      (** Minimum fraction of probe installations satisfied by sharing for
          sub-traversal caching to stay on (default 0.15). *)
  policy : Gf_cache.Evict.policy;
      (** Replacement policy applied per LTM table under capacity pressure.
          Default [Reject] (the historical behaviour: a full placement plan
          fails and the traversal is not cached).  Under any evicting policy
          victims are restricted to tag-chain-safe entries — ones whose
          removal cannot strand a dependent continuation in a later table. *)
}

val default : t
(** 4 x 8192, disjoint partitioning, 10 s max-idle, [Reject] replacement. *)

val v :
  ?tables:int ->
  ?table_capacity:int ->
  ?scheme:Partitioner.scheme ->
  ?max_idle:float ->
  ?adaptive:bool ->
  ?adaptive_threshold:float ->
  ?policy:Gf_cache.Evict.policy ->
  unit ->
  t

val total_capacity : t -> int

val validate : t -> (unit, string) result
