module Action = Gf_pipeline.Action
module Flow = Gf_flow.Flow
module Cache_stats = Gf_cache.Cache_stats
module Evict = Gf_cache.Evict

type hit = { terminal : Action.terminal; out_flow : Flow.t; tables_matched : int }

type install_result =
  | Installed of { fresh : int; shared : int; pressure_evicted : int }
  | Rejected

(* Per-flow lookup memo (see [lookup_memo]): result, work and the matched
   entries (the walk's touch set) of the last lookup for a flow id, valid
   while [generation] is unchanged — i.e. while no install/eviction has
   changed any table's entry set.  Touch-only mutations (last-used /
   last-hit refreshes, share counts) deliberately do not invalidate:
   replay reapplies them exactly. *)
type memo = {
  mutable m_gen : int;
  mutable m_result : hit option;
  mutable m_work : int;
  mutable m_touched : Ltm_table.stored list; (* reverse match order, as walked *)
}

type t = {
  mutable config : Config.t;
  rng : Gf_util.Rng.t;
  tables : Ltm_table.t array;
  stats : Cache_stats.t;
  memo_tbl : (int, memo) Hashtbl.t; (* flow id -> last lookup *)
  mutable generation : int; (* bumped on any structural entry-set change *)
  mutable last_depth : int;
      (* tables matched by the most recent lookup: the tag-chain reuse
         depth on a hit, the partial-prefix progress on a miss (non-zero
         means the chain matched a prefix then dead-ended — a stall).
         Observability only; never read by the datapath logic. *)
}

let create ?(rng_seed = 0x61F) config =
  (match Config.validate config with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Ltm_cache.create: " ^ msg));
  {
    config;
    rng = Gf_util.Rng.create rng_seed;
    tables =
      Array.init config.Config.tables (fun _ ->
          Ltm_table.create ~capacity:config.Config.table_capacity);
    stats = Cache_stats.create ();
    memo_tbl = Hashtbl.create 256;
    generation = 0;
    last_depth = 0;
  }

let config t = t.config
let stats t = t.stats
let last_depth t = t.last_depth

(* Replacement policy is read per install from [t.config], so swapping the
   config record is the whole actuation; geometry fields are untouched. *)
let set_policy t policy = t.config <- { t.config with Config.policy }

let occupancy t = Array.fold_left (fun acc table -> acc + Ltm_table.occupancy table) 0 t.tables

let table_occupancies t = Array.map Ltm_table.occupancy t.tables

let available_tables t =
  Array.fold_left (fun acc table -> if Ltm_table.is_full table then acc else acc + 1) 0 t.tables

let apply_commit commit flow =
  List.fold_left (fun f (field, v) -> Flow.set f field v) flow commit

let lookup_core t ~now ~entry_tag flow =
  let k = Array.length t.tables in
  let matched_entries = ref [] in
  let rec walk i tag flow matched work =
    if i >= k then (None, work)
    else begin
      let stored, w = Ltm_table.lookup t.tables.(i) ~tag flow in
      let work = work + w in
      match stored with
      | None -> walk (i + 1) tag flow matched work
      | Some s -> (
          s.Ltm_table.last_used <- now;
          matched_entries := s :: !matched_entries;
          let rule = s.Ltm_table.rule in
          let flow = apply_commit rule.Ltm_rule.commit flow in
          match rule.Ltm_rule.next with
          | Ltm_rule.Done terminal ->
              (Some { terminal; out_flow = flow; tables_matched = matched + 1 }, work)
          | Ltm_rule.Next_tag tag -> walk (i + 1) tag flow (matched + 1) work)
    end
  in
  let result, work = walk 0 entry_tag flow 0 0 in
  (* Completion recency: only full traversals refresh [last_hit], so a dead
     chain prefix that every miss still touches goes cold in the eyes of
     the replacement policies (it keeps its [last_used] touches for idle
     expiry, preserving legacy expiry behaviour). *)
  if Option.is_some result then
    List.iter (fun s -> s.Ltm_table.last_hit <- now) !matched_entries;
  Cache_stats.record_lookup t.stats ~hit:(Option.is_some result);
  t.last_depth <- List.length !matched_entries;
  (result, work, !matched_entries)

let lookup t ~now ~entry_tag flow =
  let result, work, _ = lookup_core t ~now ~entry_tag flow in
  (result, work)

(* Memoised lookup keyed by trace flow id.  While no install/eviction has
   changed any table's entry set (generation guard), a repeat packet of a
   known flow replays the previous walk: same result and work (tag gating
   and priority scans are deterministic over a fixed entry set), same
   touch side effects on the matched entries.  Observably identical to
   {!lookup}; callers must present the same [flow] value for a given
   [flow_id]. *)
let lookup_memo t ~now ~entry_tag ~flow_id flow =
  match Hashtbl.find_opt t.memo_tbl flow_id with
  | Some m when m.m_gen = t.generation ->
      List.iter (fun s -> s.Ltm_table.last_used <- now) m.m_touched;
      if Option.is_some m.m_result then
        List.iter (fun s -> s.Ltm_table.last_hit <- now) m.m_touched;
      Cache_stats.record_lookup t.stats ~hit:(Option.is_some m.m_result);
      t.last_depth <- List.length m.m_touched;
      (m.m_result, m.m_work)
  | memo ->
      let result, work, touched = lookup_core t ~now ~entry_tag flow in
      (match memo with
      | Some m ->
          m.m_gen <- t.generation;
          m.m_result <- result;
          m.m_work <- work;
          m.m_touched <- touched
      | None ->
          Hashtbl.replace t.memo_tbl flow_id
            { m_gen = t.generation; m_result = result; m_work = work; m_touched = touched });
      (result, work)

(* Compiled hit replay for the datapath's per-flow fast path: after
   {!lookup_memo} stored a hit for [flow_id], a closure performing just
   that hit's per-packet side effects (touch the matched entries, stats)
   with the memo find hoisted out.  The LTM walk's work and touch set
   depend on every table's contents (tag gating, priority scan order), so
   validity is the generation guard plus the memo still holding the same
   result; [None] once stale. *)
let prepare_replay t ~flow_id =
  match Hashtbl.find_opt t.memo_tbl flow_id with
  | Some ({ m_result = Some _ as result0; _ } as m) ->
      Some
        (fun ~now ->
          if m.m_gen = t.generation && m.m_result == result0 then begin
            List.iter
              (fun s ->
                s.Ltm_table.last_used <- now;
                s.Ltm_table.last_hit <- now)
              m.m_touched;
            Cache_stats.record_lookup t.stats ~hit:true;
            Some m.m_work
          end
          else None)
  | Some { m_result = None; _ } | None -> None

(* Placement planning: segments must land in strictly increasing table
   positions; segment i (0-based, m total) must sit at a position p with
   enough tables after it for the remaining segments (p <= K - (m - i)).
   Reuse of an identical entry is free; otherwise the first non-full
   feasible table is taken.  All-or-nothing.  On failure, [`Stuck (lo,
   hi)] reports the feasible position range of the first unplaceable
   segment — every table in it is full — so pressure eviction knows
   where a freed slot would help. *)
let plan_ex t rules =
  let k = Array.length t.tables in
  let m = List.length rules in
  if m > k then `Too_long
  else begin
    let placements = ref [] in
    let rec go i min_pos = function
      | [] -> `Ok (List.rev !placements)
      | rule :: rest -> (
          let max_pos = k - (m - i) in
          let rec find_reuse p =
            if p > max_pos then None
            else
              match Ltm_table.find_identical t.tables.(p) rule with
              | Some stored -> Some (p, `Reuse stored)
              | None -> find_reuse (p + 1)
          in
          let rec find_free p =
            if p > max_pos then None
            else if not (Ltm_table.is_full t.tables.(p)) then Some (p, `Fresh rule)
            else find_free (p + 1)
          in
          match
            match find_reuse min_pos with
            | Some r -> Some r
            | None -> find_free min_pos
          with
          | None -> `Stuck (min_pos, max_pos)
          | Some (p, action) ->
              placements := (p, action) :: !placements;
              go (i + 1) (p + 1) rest)
    in
    go 0 0 rules
  end

(* Tag-chain-safe victims in the full tables of positions [lo..hi].  A
   victim is safe when removing it cannot strand a dependent
   continuation: either its chain terminates here ([Done]), or no entry
   in a later table consumes the tag it produces.  (Evicting a
   {e successor} is always correctness-safe — the walk dead-ends and the
   packet falls back to the slowpath — but it would leave the
   predecessor's continuation unreachable garbage, so we never create
   that shape.) *)
let safe_victims t ~lo ~hi =
  let k = Array.length t.tables in
  let last_consumer = Hashtbl.create 16 in
  for p = 0 to k - 1 do
    Ltm_table.iter t.tables.(p) (fun s ->
        Hashtbl.replace last_consumer s.Ltm_table.rule.Ltm_rule.tag_in p)
  done;
  let safe p (s : Ltm_table.stored) =
    match s.Ltm_table.rule.Ltm_rule.next with
    | Ltm_rule.Done _ -> true
    | Ltm_rule.Next_tag tag -> (
        match Hashtbl.find_opt last_consumer tag with
        | None -> true
        | Some q -> q <= p (* the walk only moves forward; consumers at or
                              before [p] can never follow this entry *))
  in
  let acc = ref [] in
  for p = lo to hi do
    if Ltm_table.is_full t.tables.(p) then
      Ltm_table.iter t.tables.(p) (fun s -> if safe p s then acc := (p, s) :: !acc)
  done;
  !acc

let pick_victim t candidates =
  let policy = t.config.Config.policy in
  match (policy, candidates) with
  | Evict.Reject, _ | _, [] -> None
  | Evict.Random, _ ->
      let n = List.length candidates in
      Some (List.nth candidates (Gf_util.Rng.int t.rng n))
  | (Evict.Lru | Evict.Priority_aware), _ ->
      let better (p, (s : Ltm_table.stored)) (p', (s' : Ltm_table.stored)) =
        let lru () =
          (* Rank by completion recency, not raw touch recency: dead chain
             prefixes are touched by every miss but never complete, and
             must look cold here. *)
          s.Ltm_table.last_hit < s'.Ltm_table.last_hit
          || (s.Ltm_table.last_hit = s'.Ltm_table.last_hit
             && (p, s.Ltm_table.key) < (p', s'.Ltm_table.key))
        in
        match policy with
        | Evict.Priority_aware ->
            (* Priority encodes sub-traversal length: shed the shortest
               (least coverage) first, then least recently used. *)
            let pr = s.Ltm_table.rule.Ltm_rule.priority
            and pr' = s'.Ltm_table.rule.Ltm_rule.priority in
            pr < pr' || (pr = pr' && lru ())
        | _ -> lru ()
      in
      List.fold_left
        (fun best c ->
          match best with Some b when not (better c b) -> best | _ -> Some c)
        None candidates

let install t ~now rules =
  let k = Array.length t.tables in
  let pressure = ref 0 in
  let rec attempt budget =
    match plan_ex t rules with
    | `Ok placements -> Some placements
    | `Too_long -> None
    | `Stuck (lo, hi) -> (
        if budget = 0 then None
        else
          match pick_victim t (safe_victims t ~lo ~hi) with
          | Some (p, s) ->
              Ltm_table.remove t.tables.(p) s;
              t.stats.Cache_stats.pressure_evictions <-
                t.stats.Cache_stats.pressure_evictions + 1;
              incr pressure;
              attempt (budget - 1)
          | None -> None)
  in
  match attempt (2 * k) with
  | None ->
      t.stats.Cache_stats.rejected <- t.stats.Cache_stats.rejected + 1;
      (* A failed plan may still have evicted victims while replanning. *)
      if !pressure > 0 then t.generation <- t.generation + 1;
      Rejected
  | Some placements ->
      let fresh = ref 0 and shared = ref 0 in
      List.iter
        (fun (p, action) ->
          match action with
          | `Reuse stored ->
              stored.Ltm_table.shares <- stored.Ltm_table.shares + 1;
              stored.Ltm_table.last_used <- now;
              stored.Ltm_table.last_hit <- now;
              incr shared
          | `Fresh rule ->
              ignore (Ltm_table.insert t.tables.(p) ~now rule);
              incr fresh)
        placements;
      t.stats.Cache_stats.installs <- t.stats.Cache_stats.installs + !fresh;
      t.stats.Cache_stats.shared <- t.stats.Cache_stats.shared + !shared;
      (* Reuse-only installs touch recency/shares but change no entry set:
         memoised lookups stay valid. *)
      if !fresh > 0 || !pressure > 0 then t.generation <- t.generation + 1;
      Installed { fresh = !fresh; shared = !shared; pressure_evicted = !pressure }

let expire t ~now ~max_idle =
  let total = ref 0 in
  Array.iter
    (fun table ->
      let victims =
        Ltm_table.fold table ~init:[] ~f:(fun acc stored ->
            if now -. stored.Ltm_table.last_used > max_idle then stored :: acc else acc)
      in
      List.iter (Ltm_table.remove table) victims;
      total := !total + List.length victims)
    t.tables;
  t.stats.Cache_stats.evictions <- t.stats.Cache_stats.evictions + !total;
  if !total > 0 then t.generation <- t.generation + 1;
  !total

(* Admission re-partition sweep: evict stored rules whose originating flow
   went cold under the caller's hotness predicate.  Shared rules (shares >
   0) are kept — their single recorded parent flow is not representative
   of every traversal reusing them.  Like {!expire}, no tag-chain-safety
   filter is needed: evicting a predecessor just dead-ends its consumers
   to the slowpath. *)
let demote t ~is_hot =
  let total = ref 0 in
  Array.iter
    (fun table ->
      let victims =
        Ltm_table.fold table ~init:[] ~f:(fun acc stored ->
            if
              stored.Ltm_table.shares = 0
              && not (is_hot stored.Ltm_table.rule.Ltm_rule.origin.Ltm_rule.parent_flow)
            then stored :: acc
            else acc)
      in
      List.iter (Ltm_table.remove table) victims;
      total := !total + List.length victims)
    t.tables;
  t.stats.Cache_stats.evictions <- t.stats.Cache_stats.evictions + !total;
  if !total > 0 then t.generation <- t.generation + 1;
  !total

(* Re-derive the rule a stored entry should be and compare signatures. *)
let revalidate_stored pipeline (stored : Ltm_table.stored) =
  let rule = stored.Ltm_table.rule in
  let origin = rule.Ltm_rule.origin in
  let prefix =
    Gf_pipeline.Executor.trace ~start:rule.Ltm_rule.tag_in
      ~max_steps:origin.Ltm_rule.length pipeline origin.Ltm_rule.parent_flow
  in
  let steps = prefix.Gf_pipeline.Executor.prefix_steps in
  let executed = Array.length steps in
  let consistent =
    executed = origin.Ltm_rule.length
    &&
    let next_ok =
      match (rule.Ltm_rule.next, prefix.Gf_pipeline.Executor.status) with
      | Ltm_rule.Done terminal, `Terminal terminal' ->
          Action.terminal_equal terminal terminal'
      | Ltm_rule.Next_tag tag, `More tag' -> tag = tag'
      | Ltm_rule.Done _, (`More _ | `Stuck _)
      | Ltm_rule.Next_tag _, (`Terminal _ | `Stuck _) ->
          false
    in
    next_ok
    &&
    let last = executed - 1 in
    let wildcard = Gf_pipeline.Traversal.wildcard_of_steps steps ~first:0 ~last in
    let fmatch = Gf_flow.Fmatch.v ~pattern:origin.Ltm_rule.parent_flow ~mask:wildcard in
    let commit = Gf_pipeline.Traversal.commit_of_steps steps ~first:0 ~last in
    Gf_flow.Fmatch.equal fmatch rule.Ltm_rule.fmatch && commit = rule.Ltm_rule.commit
  in
  (consistent, executed)

let revalidate t pipeline =
  let evicted = ref 0 and work = ref 0 in
  Array.iter
    (fun table ->
      let victims =
        Ltm_table.fold table ~init:[] ~f:(fun acc stored ->
            let consistent, executed = revalidate_stored pipeline stored in
            work := !work + executed;
            if consistent then acc else stored :: acc)
      in
      List.iter (Ltm_table.remove table) victims;
      evicted := !evicted + List.length victims)
    t.tables;
  t.stats.Cache_stats.evictions <- t.stats.Cache_stats.evictions + !evicted;
  if !evicted > 0 then t.generation <- t.generation + 1;
  (!evicted, !work)

let sharing_histogram t =
  let counts = Hashtbl.create 16 in
  Array.iter
    (fun table ->
      Ltm_table.iter table (fun stored ->
          let s = stored.Ltm_table.shares in
          Hashtbl.replace counts s (1 + Option.value ~default:0 (Hashtbl.find_opt counts s))))
    t.tables;
  Hashtbl.fold (fun shares n acc -> (shares, n) :: acc) counts []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let mean_sharing t =
  let total = ref 0 and n = ref 0 in
  Array.iter
    (fun table ->
      Ltm_table.iter table (fun stored ->
          total := !total + stored.Ltm_table.shares;
          incr n))
    t.tables;
  if !n = 0 then nan else float_of_int !total /. float_of_int !n

let iter_rules t f =
  Array.iteri (fun i table -> Ltm_table.iter table (fun stored -> f ~table:i stored)) t.tables

(* One forward pass suffices: tags only flow to strictly later tables, and
   a tag once produced (or an entry tag) stays available for every later
   table because non-matching tables pass the packet through unchanged. *)
let stranded t ~entry_tags =
  let k = Array.length t.tables in
  let available = Hashtbl.create 16 in
  List.iter (fun tag -> Hashtbl.replace available tag ()) entry_tags;
  let count = ref 0 in
  for p = 0 to k - 1 do
    let produced = ref [] in
    Ltm_table.iter t.tables.(p) (fun s ->
        if Hashtbl.mem available s.Ltm_table.rule.Ltm_rule.tag_in then (
          match s.Ltm_table.rule.Ltm_rule.next with
          | Ltm_rule.Done _ -> ()
          | Ltm_rule.Next_tag tag -> produced := tag :: !produced)
        else incr count);
    List.iter (fun tag -> Hashtbl.replace available tag ()) !produced
  done;
  !count

let clear t =
  Array.iteri
    (fun i _ ->
      t.tables.(i) <- Ltm_table.create ~capacity:t.config.Config.table_capacity)
    t.tables;
  t.generation <- t.generation + 1
