module Entry = Gf_classifier.Entry
module Tss = Gf_classifier.Tss

type stored = {
  rule : Ltm_rule.t;
  key : int;
  mutable last_used : float;
  mutable last_hit : float;
      (* last time a walk *completed* through this entry (or an install
         reused it) — unlike [last_used], partial walks that dead-end and
         fall to the slowpath do not refresh it, so replacement policies
         see dead chain prefixes as cold even though every miss still
         touches them. *)
  mutable shares : int;
}

type t = {
  capacity : int;
  by_tag : (int, stored Tss.t) Hashtbl.t;
      (* exact match on the tag = one classifier per tag value *)
  by_signature : (Ltm_rule.signature, stored) Hashtbl.t;
  by_key : (int, stored) Hashtbl.t;
  mutable next_key : int;
}

let create ~capacity =
  assert (capacity > 0);
  {
    capacity;
    by_tag = Hashtbl.create 16;
    by_signature = Hashtbl.create 64;
    by_key = Hashtbl.create 64;
    next_key = 0;
  }

let capacity t = t.capacity
let occupancy t = Hashtbl.length t.by_key
let is_full t = occupancy t >= t.capacity

let lookup t ~tag flow =
  match Hashtbl.find_opt t.by_tag tag with
  | None -> (None, 1)
  | Some classifier ->
      let result, work = Tss.lookup classifier flow in
      ((match result with Some e -> Some e.Entry.payload | None -> None), max 1 work)

let find_identical t rule = Hashtbl.find_opt t.by_signature (Ltm_rule.signature rule)

let insert t ~now rule =
  if is_full t then invalid_arg "Ltm_table.insert: table full";
  let key = t.next_key in
  t.next_key <- key + 1;
  let stored = { rule; key; last_used = now; last_hit = now; shares = 1 } in
  let classifier =
    match Hashtbl.find_opt t.by_tag rule.Ltm_rule.tag_in with
    | Some c -> c
    | None ->
        let c = Tss.create () in
        Hashtbl.add t.by_tag rule.Ltm_rule.tag_in c;
        c
  in
  Tss.insert classifier
    (Entry.v ~key ~fmatch:rule.Ltm_rule.fmatch ~priority:rule.Ltm_rule.priority stored);
  Hashtbl.replace t.by_signature (Ltm_rule.signature rule) stored;
  Hashtbl.replace t.by_key key stored;
  stored

let remove t stored =
  match Hashtbl.find_opt t.by_key stored.key with
  | None -> ()
  | Some s ->
      Hashtbl.remove t.by_key s.key;
      Hashtbl.remove t.by_signature (Ltm_rule.signature s.rule);
      (match Hashtbl.find_opt t.by_tag s.rule.Ltm_rule.tag_in with
      | Some classifier -> ignore (Tss.remove classifier s.key)
      | None -> ())

let iter t f = Hashtbl.iter (fun _ s -> f s) t.by_key

let fold t ~init ~f = Hashtbl.fold (fun _ s acc -> f acc s) t.by_key init

let tag_edges t =
  let counts = Hashtbl.create 16 in
  iter t (fun s ->
      let key = (s.rule.Ltm_rule.tag_in, s.rule.Ltm_rule.next) in
      Hashtbl.replace counts key
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts key)));
  Hashtbl.fold (fun (tag_in, next) n acc -> (tag_in, next, n) :: acc) counts []
