(** Facade tying the Gigaflow pieces together: miss handling runs the
    slowpath pipeline, partitions the traversal, generates LTM rules and
    installs them — the full workflow of the paper's Fig. 5a.

    The facade also accounts the slowpath work performed (pipeline lookups,
    partitioning, rule generation), which feeds the CPU and latency models
    (paper Figs. 12 and 13). *)

type slowpath_work = {
  pipeline_lookups : int;  (** Tables traversed in the slowpath. *)
  tuple_probes : int;  (** TSS tuples probed across those lookups. *)
  partition_work : int;
      (** Segment-score evaluations performed by the partitioner (the
          O(N^2 K) DP loop count; 0 for schemes without search). *)
  rulegen_work : int;  (** Rules generated (each O(#fields)). *)
}

type miss_outcome = {
  traversal : Gf_pipeline.Traversal.t;
  install : Ltm_cache.install_result;
  segments : Partitioner.segment list;
  work : slowpath_work;
}

type t

val create : ?rng_seed:int -> Config.t -> t
(** [rng_seed] only matters for the [Random] partitioning scheme. *)

val cache : t -> Ltm_cache.t
val config : t -> Config.t

val set_policy : t -> Gf_cache.Evict.policy -> unit
(** Swap the LTM replacement policy online (forwards to
    {!Ltm_cache.set_policy}; {!config} reflects the change).  Geometry is
    hardware-fixed and cannot be retuned online. *)

val in_fallback : t -> bool
(** Whether the adaptive traffic-profile monitor (paper section 7; enabled
    by {!Config.t.adaptive}) currently installs whole-traversal
    Megaflow-style entries because recent sub-traversal sharing was below
    threshold. Always [false] when the feature is off. *)

val attach_telemetry : t -> Gf_telemetry.Registry.t -> unit
(** Register install-path counters in [registry]
    ([gigaflow_ltm_rules_total{result=fresh|shared|rejected}],
    [gigaflow_ltm_segments_total], whole-traversal installs, adaptive
    fallback flips and the fallback-active gauge) and update them on every
    subsequent {!install_traversal}.  Handles are resolved once here;
    without attachment the install path performs no telemetry work. *)

val lookup :
  t -> now:float -> pipeline:Gf_pipeline.Pipeline.t -> Gf_flow.Flow.t ->
  Ltm_cache.hit option * int
(** LTM cache lookup (the entry tag is the pipeline's entry table). *)

val lookup_memo :
  t ->
  now:float ->
  pipeline:Gf_pipeline.Pipeline.t ->
  flow_id:int ->
  Gf_flow.Flow.t ->
  Ltm_cache.hit option * int
(** {!Ltm_cache.lookup_memo} with the pipeline's entry tag: observably
    identical to {!lookup}, with repeat flows replayed from the per-flow
    memo while the cache's entry set is unchanged. *)

val prepare_replay : t -> flow_id:int -> (now:float -> int option) option
(** {!Ltm_cache.prepare_replay} on the underlying LTM cache. *)

type install_outcome = {
  install : Ltm_cache.install_result;
  segments : Partitioner.segment list;
  partition_work : int;
  rulegen_work : int;
}

val install_traversal :
  t -> now:float -> version:int -> Gf_pipeline.Traversal.t -> install_outcome
(** The install half of {!handle_miss}: partition an already-executed
    traversal into at most [available_tables] segments, generate LTM rules
    ([version] is the pipeline version) and install them, updating the
    adaptive traffic profile.  Lets a cache hierarchy execute the slowpath
    once and feed the same traversal to every level. *)

val handle_miss :
  t ->
  now:float ->
  pipeline:Gf_pipeline.Pipeline.t ->
  Gf_flow.Flow.t ->
  (miss_outcome, Gf_pipeline.Executor.error) result
(** Slowpath processing of one missed packet: execute, then
    {!install_traversal}. *)

val expire : t -> now:float -> int
(** Max-idle eviction using the configured idle budget. *)

val demote : t -> is_hot:(Gf_flow.Flow.t -> bool) -> int
(** See {!Ltm_cache.demote}. *)

val revalidate : t -> Gf_pipeline.Pipeline.t -> int * int
(** See {!Ltm_cache.revalidate}. *)
