(** One hardware LTM table ([GF_k] in the paper): a capacity-bounded
    match-action table performing an exact match on the table tag and a
    ternary match on the ten header fields, selecting the highest-priority
    (longest sub-traversal) winner.

    Mirrors the homogeneous P4 table of the paper's Fig. 6: any table can
    hold any sub-traversal, preserving pipeline programmability. *)

type stored = {
  rule : Ltm_rule.t;
  key : int;  (** Unique within the table. *)
  mutable last_used : float;
  mutable last_hit : float;
      (** Last time a walk {e completed} through this entry or an install
          reused it.  Partial walks that dead-end do not refresh it, so
          replacement policies can tell dead chain prefixes (touched by
          every miss) from entries still carrying full traversals.
          [last_used] keeps the touch-on-match semantics and drives idle
          expiry. *)
  mutable shares : int;
      (** How many distinct installations resolved to this entry (1 at
          creation; +1 per deduplicated reuse) — the sharing statistic of
          the paper's Fig. 11. *)
}

type t

val create : capacity:int -> t
val capacity : t -> int
val occupancy : t -> int
val is_full : t -> bool

val lookup : t -> tag:int -> Gf_flow.Flow.t -> stored option * int
(** Longest-traversal match among entries with the given tag; ties go to the
    oldest entry (lowest key).  Returns the classifier work units. *)

val find_identical : t -> Ltm_rule.t -> stored option
(** Entry with the same behavioural signature, if present. *)

val insert : t -> now:float -> Ltm_rule.t -> stored
(** Raises [Invalid_argument] when full — callers plan placement first. *)

val remove : t -> stored -> unit

val iter : t -> (stored -> unit) -> unit
val fold : t -> init:'a -> f:('a -> stored -> 'a) -> 'a

val tag_edges : t -> (int * Ltm_rule.next * int) list
(** [(tag_in, next, multiplicity)] aggregated over entries — the input to
    rule-space coverage counting. *)
