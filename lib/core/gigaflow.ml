module Traversal = Gf_pipeline.Traversal
module Executor = Gf_pipeline.Executor
module Pipeline = Gf_pipeline.Pipeline

type slowpath_work = {
  pipeline_lookups : int;
  tuple_probes : int;
  partition_work : int;
  rulegen_work : int;
}

type miss_outcome = {
  traversal : Traversal.t;
  install : Ltm_cache.install_result;
  segments : Partitioner.segment list;
  work : slowpath_work;
}

(* Traffic-profile-guided fallback (paper section 7): every [probe_period]-th
   miss is partitioned normally regardless of mode, measuring how much
   sub-traversal sharing the current traffic offers; per [window] of misses
   the mode flips between sub-traversal caching and whole-traversal
   (Megaflow-style) entries. *)
type adaptive_state = {
  mutable fallback : bool;
  mutable misses_in_window : int;
  mutable probe_fresh : int;
  mutable probe_shared : int;
}

let probe_period = 8
let window = 1024

(* Install-path telemetry handles, resolved once at {!attach_telemetry}
   time.  [None] (the default) keeps {!install_traversal} free of any
   telemetry work. *)
type probes = {
  p_fresh : int ref;
  p_shared : int ref;
  p_rejected : int ref;
  p_segments : int ref;
  p_whole : int ref;  (* whole-traversal (fallback-mode) installs *)
  p_flips : int ref;  (* adaptive fallback mode changes *)
  p_fallback : float ref;  (* gauge: 1.0 while in fallback mode *)
}

type t = {
  mutable config : Config.t;
  cache : Ltm_cache.t;
  rng : Gf_util.Rng.t;
  adaptive : adaptive_state;
  mutable probes : probes option;
}

let create ?(rng_seed = 0x61F1) config =
  {
    config;
    cache = Ltm_cache.create config;
    rng = Gf_util.Rng.create rng_seed;
    adaptive =
      { fallback = false; misses_in_window = 0; probe_fresh = 0; probe_shared = 0 };
    probes = None;
  }

let attach_telemetry t registry =
  let counter ?labels name help =
    Gf_telemetry.Registry.counter registry ?labels ~help name
  in
  t.probes <-
    Some
      {
        p_fresh =
          counter "gigaflow_ltm_rules_total"
            ~labels:[ ("result", "fresh") ]
            "LTM rules installed by result";
        p_shared = counter "gigaflow_ltm_rules_total" ~labels:[ ("result", "shared") ] "";
        p_rejected =
          counter "gigaflow_ltm_rules_total" ~labels:[ ("result", "rejected") ] "";
        p_segments =
          counter "gigaflow_ltm_segments_total"
            "Sub-traversal segments produced by the partitioner";
        p_whole =
          counter "gigaflow_ltm_whole_traversal_installs_total"
            "Installs collapsed to one whole-traversal entry (adaptive fallback)";
        p_flips =
          counter "gigaflow_ltm_fallback_flips_total"
            "Adaptive traffic-profile mode changes";
        p_fallback =
          Gf_telemetry.Registry.gauge registry
            ~help:"1 while the adaptive fallback (whole-traversal mode) is active"
            "gigaflow_ltm_fallback_active";
      }

let cache t = t.cache
let config t = t.config

let set_policy t policy =
  t.config <- { t.config with Config.policy };
  Ltm_cache.set_policy t.cache policy

let in_fallback t = t.adaptive.fallback

let lookup t ~now ~pipeline flow =
  Ltm_cache.lookup t.cache ~now ~entry_tag:(Pipeline.entry pipeline) flow

let lookup_memo t ~now ~pipeline ~flow_id flow =
  Ltm_cache.lookup_memo t.cache ~now ~entry_tag:(Pipeline.entry pipeline) ~flow_id flow

let prepare_replay t ~flow_id = Ltm_cache.prepare_replay t.cache ~flow_id

type install_outcome = {
  install : Ltm_cache.install_result;
  segments : Partitioner.segment list;
  partition_work : int;
  rulegen_work : int;
}

(* Everything after slowpath execution: partition the traversal, generate
   LTM rules, install, and update the adaptive traffic profile.  Split from
   {!handle_miss} so cache-hierarchy adapters can install from a traversal
   the datapath already executed. *)
let install_traversal t ~now ~version traversal =
  let n = Traversal.length traversal in
  let budget = max 1 (Ltm_cache.available_tables t.cache) in
  let a = t.adaptive in
  let probe = t.config.Config.adaptive && a.misses_in_window mod probe_period = 0 in
  let whole = t.config.Config.adaptive && a.fallback && not probe in
  let segments =
    if whole then
      (* Low-locality fallback: one Megaflow-style whole-traversal entry. *)
      [ { Partitioner.first = 0; last = n - 1 } ]
    else
      Partitioner.partition ~rng:t.rng t.config.Config.scheme ~max_segments:budget
        traversal
  in
  let rules = Rulegen.rules_of_partition ~version traversal segments in
  let install = Ltm_cache.install t.cache ~now rules in
  (match t.probes with
  | None -> ()
  | Some p ->
      p.p_segments := !(p.p_segments) + List.length segments;
      if whole then incr p.p_whole;
      (match install with
      | Ltm_cache.Installed { fresh; shared; _ } ->
          p.p_fresh := !(p.p_fresh) + fresh;
          p.p_shared := !(p.p_shared) + shared
      | Ltm_cache.Rejected -> incr p.p_rejected));
  if t.config.Config.adaptive then begin
    a.misses_in_window <- a.misses_in_window + 1;
    (match install with
    | Ltm_cache.Installed { fresh; shared; _ } when probe ->
        a.probe_fresh <- a.probe_fresh + fresh;
        a.probe_shared <- a.probe_shared + shared
    | Ltm_cache.Installed _ | Ltm_cache.Rejected -> ());
    if a.misses_in_window >= window then begin
      let total = a.probe_fresh + a.probe_shared in
      let sharing =
        if total = 0 then 0.0 else float_of_int a.probe_shared /. float_of_int total
      in
      let next = sharing < t.config.Config.adaptive_threshold in
      (match t.probes with
      | Some p ->
          if next <> a.fallback then incr p.p_flips;
          p.p_fallback := if next then 1.0 else 0.0
      | None -> ());
      a.fallback <- next;
      a.misses_in_window <- 0;
      a.probe_fresh <- 0;
      a.probe_shared <- 0
    end
  end;
  let partition_work =
    match t.config.Config.scheme with
    | Partitioner.Disjoint ->
        (* The DP evaluates every (first, last) segment plus the O(N^2 K)
           table fill; count the dominant term. *)
        n * n * min budget n
    | Partitioner.Random | Partitioner.One_to_one -> n
  in
  { install; segments; partition_work; rulegen_work = List.length rules }

let handle_miss t ~now ~pipeline flow =
  match Executor.execute pipeline flow with
  | Error e -> Error e
  | Ok traversal ->
      let o = install_traversal t ~now ~version:(Pipeline.version pipeline) traversal in
      let tuple_probes =
        Array.fold_left
          (fun acc s -> acc + s.Traversal.probes)
          0 traversal.Traversal.steps
      in
      Ok
        {
          traversal;
          install = o.install;
          segments = o.segments;
          work =
            {
              pipeline_lookups = Traversal.length traversal;
              tuple_probes;
              partition_work = o.partition_work;
              rulegen_work = o.rulegen_work;
            };
        }

let expire t ~now = Ltm_cache.expire t.cache ~now ~max_idle:t.config.Config.max_idle
let demote t ~is_hot = Ltm_cache.demote t.cache ~is_hot

let revalidate t pipeline = Ltm_cache.revalidate t.cache pipeline
