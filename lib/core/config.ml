type t = {
  tables : int;
  table_capacity : int;
  scheme : Partitioner.scheme;
  max_idle : float;
  adaptive : bool;
  adaptive_threshold : float;
  policy : Gf_cache.Evict.policy;
}

let default =
  {
    tables = 4;
    table_capacity = 8192;
    scheme = Partitioner.Disjoint;
    max_idle = 10.0;
    adaptive = false;
    adaptive_threshold = 0.15;
    policy = Gf_cache.Evict.Reject;
  }

let v ?(tables = default.tables) ?(table_capacity = default.table_capacity)
    ?(scheme = default.scheme) ?(max_idle = default.max_idle)
    ?(adaptive = default.adaptive) ?(adaptive_threshold = default.adaptive_threshold)
    ?(policy = default.policy) () =
  { tables; table_capacity; scheme; max_idle; adaptive; adaptive_threshold; policy }

let total_capacity t = t.tables * t.table_capacity

let validate t =
  if t.tables < 1 then Error "tables must be >= 1"
  else if t.table_capacity < 1 then Error "table_capacity must be >= 1"
  else if t.max_idle <= 0.0 then Error "max_idle must be positive"
  else Ok ()
