(** The Gigaflow LTM cache: K feed-forward LTM tables walked in order with
    tag gating (paper section 4.1).

    A packet enters with its tag set to the pipeline's entry table id.  Each
    LTM table is probed with (tag, headers); a match applies the rule's
    commit and tag update, a non-match passes the packet through unchanged
    (tag gating makes skipping safe — the example of the paper's Fig. 5c,
    where a rule in GF1 jumps straight to GF3).  The walk is a {b hit} iff
    the tag reaches the terminal state; otherwise the packet goes to the
    slowpath. *)

type hit = {
  terminal : Gf_pipeline.Action.terminal;
  out_flow : Gf_flow.Flow.t;
  tables_matched : int;  (** How many LTM tables contributed a rule. *)
}

type install_result =
  | Installed of { fresh : int; shared : int; pressure_evicted : int }
      (** [fresh] new entries written; [shared] segments satisfied by
          existing identical entries; [pressure_evicted] entries removed
          under capacity pressure to make the placement feasible (always 0
          under the [Reject] policy). *)
  | Rejected  (** No feasible placement (tables full). *)

type t

val create : ?rng_seed:int -> Config.t -> t
(** [create config] builds an empty cache; [rng_seed] feeds the [Random]
    replacement policy's victim choice. *)

val config : t -> Config.t
val stats : t -> Gf_cache.Cache_stats.t

val set_policy : t -> Gf_cache.Evict.policy -> unit
(** Swap the replacement policy online (the policy is consulted per
    install, so this takes effect on the next infeasible plan); geometry
    and the rest of the config are untouched. *)

val last_depth : t -> int
(** Tables matched by the most recent {!lookup} / {!lookup_memo}: the
    tag-chain reuse depth on a hit, the partial-prefix progress on a miss
    (non-zero means the chain dead-ended — a tag-chain stall).
    Observability hook for the traversal tracer; never feeds back into
    cache behaviour. *)

val occupancy : t -> int
(** Total entries across all tables. *)

val table_occupancies : t -> int array

val available_tables : t -> int
(** Number of non-full tables — the partitioner's segment budget for the
    next installation (paper section 4.2.1's GF set). *)

val lookup : t -> now:float -> entry_tag:int -> Gf_flow.Flow.t -> hit option * int
(** [entry_tag] is the pipeline's entry table id.  Returns the hit (if the
    walk completed) and total work units. Touches matched entries. *)

val lookup_memo :
  t -> now:float -> entry_tag:int -> flow_id:int -> Gf_flow.Flow.t -> hit option * int
(** Observably identical to {!lookup}, but repeat packets of a known flow
    replay the memoised walk — result, work and the recency touches on the
    matched entries — while no install or eviction has changed any table's
    entry set (a generation counter guards validity).  Requires that a
    given [flow_id] is always presented with the same [flow] value (true
    of every {!Gf_workload.Trace} generator). *)

val prepare_replay : t -> flow_id:int -> (now:float -> int option) option
(** Compiled per-flow hit replay for the batched engine's fast path:
    after {!lookup_memo} returned a hit for [flow_id], a closure that
    performs exactly that hit's per-packet side effects (recency touches
    on the matched entries, stats) with the memo find hoisted out.  Each
    call re-validates (generation unchanged and the memo still holding
    the same result) and returns the walk work, or [None] once stale —
    the caller falls back to {!lookup_memo} and compiles a fresh replay.
    [None] if the flow's memo is absent or a miss. *)

val install : t -> now:float -> Ltm_rule.t list -> install_result
(** Install the rules of one partitioned traversal, in segment order.  Each
    segment reuses an identical existing entry when one exists in a
    feasible table (sharing), otherwise takes a slot in the first feasible
    non-full table.  All-or-nothing on the rules themselves: on
    infeasibility, no segment is installed.

    When the plan is infeasible and [Config.policy] is an evicting policy,
    entries are evicted (bounded, one per replanning round) from the full
    tables blocking the first unplaceable segment until the plan succeeds
    or no tag-chain-safe victim remains.  Victims are restricted to safe
    entries — ones whose removal cannot strand a dependent continuation
    in a later table (their chain terminates, or nothing downstream
    consumes the tag they produce). *)

val stranded : t -> entry_tags:int list -> int
(** Number of entries unreachable by any walk starting from one of
    [entry_tags] — stranded continuations whose predecessor chain is
    gone.  The safe-victim rule keeps this at 0 (checked by tests);
    idle expiry can transiently strand entries, exactly as in the
    pre-policy behaviour. *)

val expire : t -> now:float -> max_idle:float -> int
(** Evict entries idle longer than [max_idle]; returns how many.  This is
    the selective sub-traversal eviction of paper section 4.3.2. *)

val demote : t -> is_hot:(Gf_flow.Flow.t -> bool) -> int
(** Admission re-partition sweep: evict unshared stored rules whose
    originating parent flow fails [is_hot] (shared rules are kept — one
    recorded parent is not representative of every traversal reusing
    them).  Returns how many rules were demoted. *)

val revalidate : t -> Gf_pipeline.Pipeline.t -> int * int
(** Re-trace every entry's parent flow from its tagged vSwitch table for the
    entry's sub-traversal length and evict entries whose regenerated
    rule differs (paper section 4.3.1).  Returns [(evicted, work)] with
    [work] = total table lookups re-executed; sub-traversals being shorter
    than full traversals is what makes this ~2x cheaper than Megaflow
    revalidation (paper section 6.3.6). *)

val sharing_histogram : t -> (int * int) list
(** [(shares, entry count)] pairs, sorted by [shares] — data behind the
    paper's Fig. 11. *)

val mean_sharing : t -> float
(** Average number of installations resolved per entry. *)

val iter_rules : t -> (table:int -> Ltm_table.stored -> unit) -> unit

val clear : t -> unit
