(** A programmable vSwitch pipeline: an ordered collection of match-action
    tables with goto-based control flow (the slowpath the caches accelerate).

    The pipeline carries a monotonically increasing {b version}, bumped on
    every rule mutation; cache revalidation compares entry versions against
    it to know when consistency must be re-checked (paper section 4.3.1). *)

type t

val create : name:string -> entry:int -> Oftable.t list -> t
(** Table ids must be unique and include [entry]. *)

val name : t -> string
val entry : t -> int
val version : t -> int

val copy : t -> t
(** Independent replica for a parallel-replay domain: same tables, rules and
    version, but private lookup state (tuple indexes, scratch buffers) so
    concurrent replays never race.  Rule mutations on either side are not
    seen by the other. *)

val table : t -> int -> Oftable.t
(** Raises [Not_found] for an unknown table id. *)

val table_opt : t -> int -> Oftable.t option
val tables : t -> Oftable.t list
(** In increasing table-id order. *)

val table_count : t -> int
val rule_count : t -> int

val add_rule : t -> table:int -> Ofrule.t -> unit
(** Bumps the version. *)

val remove_rule : t -> table:int -> int -> bool
(** Bumps the version when a rule was removed. *)

val fresh_rule_id : t -> int
(** Allocates pipeline-unique rule ids. *)

val pp : Format.formatter -> t -> unit
