type t = {
  name : string;
  entry : int;
  tables : (int, Oftable.t) Hashtbl.t;
  mutable version : int;
  mutable next_rule_id : int;
}

let create ~name ~entry tables =
  let by_id = Hashtbl.create (List.length tables) in
  List.iter
    (fun table ->
      let id = Oftable.id table in
      if Hashtbl.mem by_id id then
        invalid_arg (Printf.sprintf "Pipeline.create: duplicate table id %d" id);
      Hashtbl.add by_id id table)
    tables;
  if not (Hashtbl.mem by_id entry) then
    invalid_arg "Pipeline.create: entry table not present";
  { name; entry; tables = by_id; version = 0; next_rule_id = 0 }

let name t = t.name
let entry t = t.entry
let version t = t.version

(* Per-domain replica for parallel replay: table lookups mutate scratch
   buffers and lazily-rebuilt tuple indexes, so domains must not share
   [Oftable.t]s.  Rule records themselves are immutable and stay shared.
   Preserves [version] (cache entries installed from the replica carry the
   same revalidation version) and [next_rule_id]. *)
let copy t =
  let tables = Hashtbl.create (Hashtbl.length t.tables) in
  Hashtbl.iter (fun id table -> Hashtbl.add tables id (Oftable.copy table)) t.tables;
  { t with tables }

let table t id =
  match Hashtbl.find_opt t.tables id with
  | Some table -> table
  | None -> raise Not_found

let table_opt t id = Hashtbl.find_opt t.tables id

let tables t =
  Hashtbl.fold (fun _ table acc -> table :: acc) t.tables []
  |> List.sort (fun a b -> compare (Oftable.id a) (Oftable.id b))

let table_count t = Hashtbl.length t.tables

let rule_count t =
  Hashtbl.fold (fun _ table acc -> acc + Oftable.size table) t.tables 0

let add_rule t ~table:table_id rule =
  Oftable.add_rule (table t table_id) rule;
  t.version <- t.version + 1

let remove_rule t ~table:table_id rule_id =
  let removed = Oftable.remove_rule (table t table_id) rule_id in
  if removed then t.version <- t.version + 1;
  removed

let fresh_rule_id t =
  let id = t.next_rule_id in
  t.next_rule_id <- id + 1;
  id

let pp fmt t =
  Format.fprintf fmt "@[<v>pipeline %s (entry %d, %d tables, %d rules)@,%a@]" t.name
    t.entry (table_count t) (rule_count t)
    (Format.pp_print_list Oftable.pp)
    (tables t)
