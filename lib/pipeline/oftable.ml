module Field = Gf_flow.Field
module Flow = Gf_flow.Flow
module Mask = Gf_flow.Mask
module Fmatch = Gf_flow.Fmatch

(* One tuple of the search: all rules sharing a mask.  [field_keys] holds,
   per masked field, the sorted distinct key values present — the index the
   minimal-unwildcarding overlap checks binary-search (see [lookup]). *)
type tuple = {
  mask : Mask.t;
  mutable max_priority : int;
  entries : Ofrule.t list Flow.Tbl.t;
  mutable field_keys : (int * int array) list; (* (field index, sorted keys) *)
}

type t = {
  id : int;
  name : string;
  match_fields : Gf_flow.Field.Set.t;
  miss : Action.t;
  rules : (int, Ofrule.t) Hashtbl.t;
  mutable tuples : tuple list; (* sorted by max_priority desc *)
  mutable dirty : bool;
  scratch : Flow.Scratch.t; (* transient masked-key buffer for lookups *)
}

type lookup_result = {
  outcome : [ `Hit of Ofrule.t | `Miss ];
  consulted : Mask.t;
  probes : int;
}

let unwildcard_mode : [ `Minimal | `Full ] ref = ref `Minimal

let create ~id ~name ~match_fields ~miss =
  {
    id;
    name;
    match_fields;
    miss;
    rules = Hashtbl.create 64;
    tuples = [];
    dirty = false;
    scratch = Flow.Scratch.create ();
  }

let id t = t.id
let name t = t.name
let match_fields t = t.match_fields
let miss_action t = t.miss
let size t = Hashtbl.length t.rules

(* Best-first rule order: higher priority first, then lower id. *)
let rule_order (a : Ofrule.t) (b : Ofrule.t) =
  let c = compare b.priority a.priority in
  if c <> 0 then c else compare a.id b.id

let rules t =
  Hashtbl.fold (fun _ r acc -> r :: acc) t.rules [] |> List.sort rule_order

let build_field_keys tuple =
  let keys = Flow.Tbl.fold (fun key _ acc -> key :: acc) tuple.entries [] in
  tuple.field_keys <-
    List.filter_map
      (fun f ->
        if Mask.get tuple.mask f = 0 then None
        else begin
          let values =
            List.sort_uniq compare (List.map (fun k -> Flow.get k f) keys)
          in
          Some (Field.index f, Array.of_list values)
        end)
      (Array.to_list Field.all)

let rebuild t =
  let by_mask : tuple Mask.Tbl.t = Mask.Tbl.create 16 in
  Hashtbl.iter
    (fun _ (r : Ofrule.t) ->
      let mask = Mask.intern (Fmatch.mask r.fmatch) in
      let tuple =
        match Mask.Tbl.find_opt by_mask mask with
        | Some tu -> tu
        | None ->
            let tu =
              {
                mask;
                max_priority = min_int;
                entries = Flow.Tbl.create 32;
                field_keys = [];
              }
            in
            Mask.Tbl.add by_mask mask tu;
            tu
      in
      if r.priority > tuple.max_priority then tuple.max_priority <- r.priority;
      let key = Fmatch.pattern r.fmatch in
      let existing = Option.value ~default:[] (Flow.Tbl.find_opt tuple.entries key) in
      Flow.Tbl.replace tuple.entries key (List.sort rule_order (r :: existing)))
    t.rules;
  Mask.Tbl.iter (fun _ tuple -> build_field_keys tuple) by_mask;
  t.tuples <-
    Mask.Tbl.fold (fun _ tu acc -> tu :: acc) by_mask []
    |> List.sort (fun a b -> compare b.max_priority a.max_priority);
  t.dirty <- false

let ensure t = if t.dirty then rebuild t

(* Independent replica for a parallel-replay domain: shares the (immutable)
   rules but owns its search state — tuple tables, lazy-rebuild flag and the
   scratch probe buffer are all mutated during lookups, so replicas must not
   share them across domains. *)
let copy t =
  {
    id = t.id;
    name = t.name;
    match_fields = t.match_fields;
    miss = t.miss;
    rules = Hashtbl.copy t.rules;
    tuples = [];
    dirty = true;
    scratch = Flow.Scratch.create ();
  }

let add_rule t (r : Ofrule.t) =
  if Hashtbl.mem t.rules r.id then
    invalid_arg (Printf.sprintf "Oftable.add_rule: duplicate rule id %d" r.id);
  Hashtbl.add t.rules r.id r;
  t.dirty <- true

let remove_rule t rule_id =
  if Hashtbl.mem t.rules rule_id then begin
    Hashtbl.remove t.rules rule_id;
    t.dirty <- true;
    true
  end
  else false

let find_rule t rule_id = Hashtbl.find_opt t.rules rule_id

(* ------------------------------------------------------------------ *)
(* Minimal dependency unwildcarding (paper section 4.2.3).

   A cached entry derived from this lookup is the region of flows agreeing
   with [flow] on the consulted mask W.  Correctness requires that no flow
   in the region can match a rule that would beat the winner.  Instead of
   unioning every probed tuple mask into W (sound but so fat that every
   cache entry becomes flow-specific), we exclude each dangerous tuple with
   as few bits as possible:

   - if some field of the tuple provably has no key inside the region's
     value interval, the tuple is already excluded — zero bits;
   - otherwise we extend the region's prefix on one field, one bit at a
     time (the paper's 192.168.21.27 -> 255.255.240.0 example), until the
     interval is key-free;
   - if no single field resolves the overlap, fall back to unioning the
     tuple's whole mask (always sound).                                  *)

(* Longest all-ones prefix of [m] within [width] bits. *)
let leading_prefix_len ~width m =
  let rec go i =
    if i >= width then width
    else if m land (1 lsl (width - 1 - i)) = 0 then i
    else go (i + 1)
  in
  go 0

(* Is [m] exactly a prefix mask?  The interval reasoning below is only
   valid for contiguous-from-the-top masks; anything else is handled
   conservatively. *)
let prefix_shaped ~width m =
  m = Gf_util.Bitops.prefix_mask ~width (leading_prefix_len ~width m)

(* Does tuple [tu] contain a key whose [fi]-field value-range intersects
   [lo, hi] (raw value interval)?  Keys are masked patterns; a key [k] with
   prefix mask of length p covers [k, k | suffix].  Only called when the
   tuple's field mask is prefix-shaped. *)
let field_has_key_in tu fi ~fmask ~lo ~hi =
  match List.assoc_opt fi tu.field_keys with
  | None | Some [||] -> false
  | Some keys ->
      (* Aligned keys: the smallest key whose covered range can reach [lo]
         is [lo land fmask]. *)
      let klo = lo land fmask in
      (* Binary search: first key >= klo. *)
      let n = Array.length keys in
      let l = ref 0 and r = ref n in
      while !l < !r do
        let mid = (!l + !r) / 2 in
        if keys.(mid) >= klo then r := mid else l := mid + 1
      done;
      !l < n && keys.(!l) <= hi

(* The region's value interval for field [f] under wildcard [w]: bits in the
   leading prefix of [w] are pinned to [flow]'s, the rest are free. *)
let region_interval ~flow ~w f =
  let width = Field.width f in
  let plen = leading_prefix_len ~width (Mask.get w f) in
  let pmask = Gf_util.Bitops.prefix_mask ~width plen in
  let base = Flow.get flow f land pmask in
  (base, base lor (Field.full_mask f land lnot pmask), plen)

(* Fields in the order we prefer to spend exclusion bits on: IP prefixes
   first (where nesting actually occurs), then ports, then L2. *)
let refinement_order =
  [
    Field.Ip_dst;
    Field.Ip_src;
    Field.Tp_dst;
    Field.Tp_src;
    Field.Eth_dst;
    Field.Eth_src;
    Field.Vlan;
    Field.In_port;
    Field.Eth_type;
    Field.Ip_proto;
  ]

(* Exclude tuple [tu] from the region (flow, w); returns the augmented
   wildcard. *)
let exclude_tuple ~flow w tu =
  let fields =
    List.filter (fun f -> Mask.get tu.mask f <> 0) refinement_order
  in
  (* Already excluded?  (Non-prefix-shaped tuple fields are conservatively
     treated as overlapping.) *)
  let overlaps f =
    let width = Field.width f in
    let fmask = Mask.get tu.mask f in
    (not (prefix_shaped ~width fmask))
    ||
    let lo, hi, _ = region_interval ~flow ~w f in
    field_has_key_in tu (Field.index f) ~fmask ~lo ~hi
  in
  if List.exists (fun f -> not (overlaps f)) fields then w
  else begin
    (* Try to resolve on a single field by extending the region prefix. *)
    let try_field f =
      let width = Field.width f in
      let fmask = Mask.get tu.mask f in
      if not (prefix_shaped ~width fmask) then None
      else begin
      let tuple_plen = leading_prefix_len ~width fmask in
      let _, _, plen0 = region_interval ~flow ~w f in
      let rec extend plen =
        if plen > tuple_plen then None
        else begin
          let pmask = Gf_util.Bitops.prefix_mask ~width plen in
          let base = Flow.get flow f land pmask in
          let hi = base lor (Field.full_mask f land lnot pmask) in
          if field_has_key_in tu (Field.index f) ~fmask ~lo:base ~hi then
            extend (plen + 1)
          else Some plen
        end
      in
      (* Start one past the current constraint — the current one overlaps. *)
      match extend (plen0 + 1) with
      | Some plen ->
          Some (Mask.set w f (Mask.get w f lor Gf_util.Bitops.prefix_mask ~width plen))
      | None -> None
      end
    in
    let rec first_resolving = function
      | [] -> Mask.union w tu.mask (* fat but always sound *)
      | f :: rest -> (
          match try_field f with Some w' -> w' | None -> first_resolving rest)
    in
    first_resolving fields
  end

let lookup t flow =
  ensure t;
  (* Pass 1: probe tuples best-priority-first to find the winner, recording
     which tuples were consulted. *)
  let rec go tuples best probed probes =
    match tuples with
    | [] -> (best, probed, probes)
    | tuple :: rest -> (
        match best with
        | Some (r : Ofrule.t) when r.priority > tuple.max_priority ->
            (best, probed, probes)
        | _ ->
            let probes = probes + 1 in
            let key = Mask.apply_scratch tuple.mask flow t.scratch in
            let candidate =
              match Flow.Tbl.find_opt tuple.entries key with
              | Some (r :: _) -> Some r
              | Some [] | None -> None
            in
            let best =
              match (best, candidate) with
              | None, c -> c
              | b, None -> b
              | Some b, Some c -> if rule_order c b < 0 then Some c else Some b
            in
            go rest best (tuple :: probed) probes)
  in
  let best, probed, probes = go t.tuples None [] 0 in
  (* Pass 2: build the consulted wildcard — the winner's own mask plus
     minimal exclusion bits for every probed tuple that could beat it. *)
  let consulted =
    match (!unwildcard_mode, best) with
    | `Full, _ ->
        (* Ablation: naive union of every probed tuple mask. *)
        List.fold_left (fun w tu -> Mask.union w tu.mask) Mask.empty probed
    | `Minimal, best -> (
    match best with
    | Some r ->
        let win_mask = Fmatch.mask r.fmatch in
        List.fold_left
          (fun w tu ->
            if Mask.equal tu.mask win_mask then w
            else if
              tu.max_priority > r.priority
              || tu.max_priority = r.priority (* ties: conservative *)
            then exclude_tuple ~flow w tu
            else w)
          win_mask probed
    | None -> List.fold_left (fun w tu -> exclude_tuple ~flow w tu) Mask.empty probed)
  in
  match best with
  | Some r -> { outcome = `Hit r; consulted; probes }
  | None -> { outcome = `Miss; consulted; probes }

let distinct_masks t =
  ensure t;
  List.length t.tuples

let pp fmt t =
  Format.fprintf fmt "table %d (%s): %d rules, fields %a" t.id t.name (size t)
    Gf_flow.Field.Set.pp t.match_fields
