(** A match-action table in the vSwitch pipeline.

    Lookup uses Tuple Space Search internally (rules grouped by mask), which
    also yields the two signals the caching layers need:

    - the {b consulted wildcard}: the union of the masks of every tuple that
      had to be probed before the winner was known.  Caching these bits is
      exactly OVS's Megaflow unwildcarding discipline and implements the
      paper's rule-dependency management (section 4.2.3): a cached entry
      carrying the consulted bits can never shadow a higher-priority rule.
    - the {b probe count}: how many tuples were searched, which feeds the
      software classifier cost model (TSS cost is O(#masks)).

    Tables also declare the {b field set} they are configured to match on;
    the partitioner uses declared fields to find disjoint boundaries. *)

type t

val unwildcard_mode : [ `Minimal | `Full ] ref
(** Ablation knob (global, default [`Minimal]).  [`Minimal] is the paper's
    section 4.2.3 discipline: the winner's mask plus just enough exclusion
    bits per dangerous tuple.  [`Full] is the naive OVS-style union of every
    probed tuple mask — sound, but it makes cache entries nearly
    flow-specific and destroys sub-traversal sharing (quantified by the
    ablation benchmark). *)

type lookup_result = {
  outcome : [ `Hit of Ofrule.t | `Miss ];
  consulted : Gf_flow.Mask.t;
      (** Union of probed tuple masks; on a miss this covers every tuple, so
          a cached miss-entry is also dependency-safe. *)
  probes : int;  (** Number of tuples probed. *)
}

val create :
  id:int -> name:string -> match_fields:Gf_flow.Field.Set.t -> miss:Action.t -> t
(** [miss] is the table's default action, applied when no rule matches. *)

val id : t -> int
val name : t -> string
val match_fields : t -> Gf_flow.Field.Set.t
val miss_action : t -> Action.t
val size : t -> int
val rules : t -> Ofrule.t list
(** In decreasing (priority, then increasing id) order. *)

val add_rule : t -> Ofrule.t -> unit
(** Raises [Invalid_argument] if a rule with the same id is present. *)

val remove_rule : t -> int -> bool
(** [remove_rule t id] returns whether a rule was removed. *)

val find_rule : t -> int -> Ofrule.t option

val copy : t -> t
(** Independent replica sharing the (immutable) rules but owning its search
    state (tuple tables, scratch buffers) — safe to use from another domain
    while the original keeps serving lookups.  See {!Pipeline.copy}. *)

val lookup : t -> Gf_flow.Flow.t -> lookup_result
(** Highest-priority matching rule; ties broken toward the lowest rule id
    (deterministic, mirroring OVS's stable behaviour). *)

val distinct_masks : t -> int
(** Number of tuples (distinct masks), i.e. the TSS search cost bound. *)

val pp : Format.formatter -> t -> unit
