(** Per-field bit masks (wildcards).

    A [Mask.t] records which header bits a lookup consulted — the paper's
    wildcard vectors [W_i] and [omega_k].  A set bit means "this bit of the
    header is significant"; a clear bit is wildcarded.  Sub-traversal rule
    generation is built on the union/intersection algebra of this module
    (paper section 4.2.3). *)

type t

val empty : t
(** All bits wildcarded (matches everything). *)

val full : t
(** Every bit of every field significant (exact match). *)

val make : (Field.t * int) list -> t
(** Masks for the listed fields (truncated to field width); others empty. *)

val exact_fields : Field.t list -> t
(** Full-width masks on the listed fields only. *)

val prefix : Field.t -> int -> t
(** [prefix f len] is a single-field CIDR-style prefix mask of [len] bits. *)

val get : t -> Field.t -> int
val set : t -> Field.t -> int -> t

val union : t -> t -> t
(** Bitwise OR per field — combining the wildcards of the tables in a
    sub-traversal. *)

val inter : t -> t -> t
(** Bitwise AND per field. *)

val equal : t -> t -> bool
(** Structural, with a physical-equality fast path (see {!intern}). *)

val compare : t -> t -> int
val hash : t -> int

module Tbl : Hashtbl.S with type key = t
(** Hash table keyed by masks using {!hash}/{!equal} (monomorphic). *)

val intern : t -> t
(** Hash-consing: returns the canonical representative of this mask value,
    so repeated equality checks between interned masks reduce to pointer
    comparisons.  Idempotent, thread-safe (parallel replay domains intern
    concurrently); the canonical table grows with the number of {e distinct}
    masks ever seen (rule + consulted wildcards — small and bounded by the
    ruleset, so it is never evicted). *)

val is_empty : t -> bool

val bits : t -> int
(** Total number of significant bits across all fields. *)

val fields : t -> Field.Set.t
(** Fields with at least one significant bit. *)

val disjoint : t -> t -> bool
(** No field has significant bits in both masks. *)

val subsumes : loose:t -> tight:t -> bool
(** [subsumes ~loose ~tight] iff every significant bit of [loose] is also
    significant in [tight] — i.e. [loose] matches a superset of headers. *)

val apply : t -> Flow.t -> Flow.t
(** [apply m f] keeps only the significant bits of [f] (the paper's
    match-predicate construction: predicate = flow AND wildcard). *)

val apply_scratch : t -> Flow.t -> Flow.Scratch.t -> Flow.t
(** Allocation-free {!apply} into a reusable buffer; the result aliases the
    scratch (see {!Flow.Scratch}) and is only for transient lookups. *)

val matches : t -> pattern:Flow.t -> Flow.t -> bool
(** [matches m ~pattern f] iff [f] agrees with [pattern] on every significant
    bit of [m].  [pattern] need not be pre-masked. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
