type t = int array
(* Same representation as Flow.t: slot i masks [Field.of_index i]. *)

let truncate f v = v land Field.full_mask f

let empty = Array.make Field.count 0

let full = Array.map Field.full_mask Field.all

let make bindings =
  let a = Array.make Field.count 0 in
  List.iter (fun (f, v) -> a.(Field.index f) <- truncate f v) bindings;
  a

let exact_fields fields =
  let a = Array.make Field.count 0 in
  List.iter (fun f -> a.(Field.index f) <- Field.full_mask f) fields;
  a

let prefix f len = make [ (f, Gf_util.Bitops.prefix_mask ~width:(Field.width f) len) ]

let get t f = t.(Field.index f)

let set t f v =
  let a = Array.copy t in
  a.(Field.index f) <- truncate f v;
  a

let union a b = Array.init Field.count (fun i -> a.(i) lor b.(i))
let inter a b = Array.init Field.count (fun i -> a.(i) land b.(i))

(* Physical equality first: interned masks (see [intern]) make the common
   same-tuple comparison a single pointer check. *)
let equal a b =
  a == b
  ||
  let rec go i =
    i >= Field.count
    || (Int.equal (Array.unsafe_get a i) (Array.unsafe_get b i) && go (i + 1))
  in
  go 0

let compare = Stdlib.compare

(* Same accumulator-passing FNV-1a as [Flow.hash]. *)
let rec hash_loop t i h =
  if i >= Field.count then h land max_int
  else hash_loop t (i + 1) ((h lxor Array.unsafe_get t i) * 0x100000001b3)

let hash t = hash_loop t 0 0x3bf29ce484222325

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

(* Hash-consing: one canonical array per distinct mask value, so that tuple
   bookkeeping in the classifiers ([Tss.insert], [Oftable.rebuild]) hits the
   [==] fast path of [equal].  The table only ever holds distinct rule /
   consulted wildcards — a few hundred in the largest workloads — and is
   mutex-guarded because parallel replay domains intern concurrently. *)
let intern_lock = Mutex.create ()

let interned : t Tbl.t = Tbl.create 256

let intern m =
  Mutex.protect intern_lock (fun () ->
      match Tbl.find_opt interned m with
      | Some canonical -> canonical
      | None ->
          Tbl.add interned m m;
          m)

let () = List.iter (fun m -> ignore (intern m)) [ empty; full ]

let is_empty t = Array.for_all (fun v -> v = 0) t

let bits t = Array.fold_left (fun acc v -> acc + Gf_util.Bitops.popcount v) 0 t

let fields t =
  let s = ref Field.Set.empty in
  Array.iteri (fun i v -> if v <> 0 then s := Field.Set.add (Field.of_index i) !s) t;
  !s

let disjoint a b =
  let rec go i = i >= Field.count || ((a.(i) = 0 || b.(i) = 0) && go (i + 1)) in
  go 0

let subsumes ~loose ~tight =
  let rec go i =
    i >= Field.count || (loose.(i) land tight.(i) = loose.(i) && go (i + 1))
  in
  go 0

let apply t flow = Flow.land_array flow t

let apply_scratch t flow scratch = Flow.Scratch.fill_masked scratch ~mask:t flow

let matches t ~pattern flow =
  let rec go i =
    i >= Field.count
    ||
    let f = Field.of_index i in
    Int.equal (Flow.get pattern f land t.(i)) (Flow.get flow f land t.(i))
    && go (i + 1)
  in
  go 0

let pp fmt t =
  let first = ref true in
  Array.iteri
    (fun i v ->
      if v <> 0 then begin
        if not !first then Format.pp_print_char fmt ' ';
        first := false;
        let f = Field.of_index i in
        if v = Field.full_mask f then Format.fprintf fmt "%s=*exact*" (Field.name f)
        else Format.fprintf fmt "%s=%#x" (Field.name f) v
      end)
    t;
  if !first then Format.pp_print_string fmt "<any>"

let to_string t = Format.asprintf "%a" pp t
