type t = int array
(* Invariant: length = Field.count; slot i holds the value of
   [Field.of_index i], truncated to the field width. *)

let zero = Array.make Field.count 0

let truncate f v = v land Field.full_mask f

let make bindings =
  let a = Array.make Field.count 0 in
  List.iter (fun (f, v) -> a.(Field.index f) <- truncate f v) bindings;
  a

let get t f = t.(Field.index f)

let set t f v =
  let a = Array.copy t in
  a.(Field.index f) <- truncate f v;
  a

let update t bindings =
  match bindings with
  | [] -> t
  | _ ->
      let a = Array.copy t in
      List.iter (fun (f, v) -> a.(Field.index f) <- truncate f v) bindings;
      a

(* Monomorphic slot-by-slot comparison: both arrays have length
   [Field.count] by invariant, and avoiding polymorphic [compare] keeps the
   per-packet cache probes allocation- and call-free. *)
let equal a b =
  a == b
  ||
  let rec go i =
    i >= Field.count
    || (Int.equal (Array.unsafe_get a i) (Array.unsafe_get b i) && go (i + 1))
  in
  go 0

let compare = Stdlib.compare

(* FNV-1a over the slots; cheap and good enough for hashtable keys.
   Accumulator-passing loop: no ref cell, no closure, one final masking.
   [unsafe_get] is fine — length = Field.count by invariant. *)
let rec hash_loop t i h =
  if i >= Field.count then h land max_int
  else hash_loop t (i + 1) ((h lxor Array.unsafe_get t i) * 0x100000001b3)

let hash t = hash_loop t 0 0x3bf29ce484222325

let to_array t = Array.copy t

let of_array a =
  if Array.length a <> Field.count then invalid_arg "Flow.of_array";
  Array.mapi (fun i v -> truncate (Field.of_index i) v) a

(* Single-pass masked copy: AND can only clear bits, so the result needs no
   re-truncation (unlike [of_array]).  This is [Mask.apply]'s engine. *)
let land_array t m = Array.init Field.count (fun i -> t.(i) land m.(i))

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

let pp fmt t =
  let first = ref true in
  Array.iteri
    (fun i v ->
      if v <> 0 then begin
        if not !first then Format.pp_print_char fmt ' ';
        first := false;
        Format.fprintf fmt "%s=%#x" (Field.name (Field.of_index i)) v
      end)
    t;
  if !first then Format.pp_print_string fmt "<zero>"

let to_string t = Format.asprintf "%a" pp t

module Scratch = struct
  type nonrec t = int array

  let create () = Array.make Field.count 0

  let fill_masked s ~mask flow =
    for i = 0 to Field.count - 1 do
      s.(i) <- mask.(i) land flow.(i)
    done;
    s
end
