(** A flow signature: one concrete value per header field.

    A [Flow.t] plays two roles, matching the paper's notation: it is both the
    header vector of an incoming packet ([F]) and the evolving flow state as
    actions modify fields while the packet moves through the pipeline
    ([F^i]).  Values are immutable; [set] returns an updated copy. *)

type t

val zero : t
(** All fields 0. *)

val make : (Field.t * int) list -> t
(** [make bindings] is [zero] with the given fields set.  Values are
    truncated to the field width.  Later bindings win. *)

val get : t -> Field.t -> int
val set : t -> Field.t -> int -> t

val update : t -> (Field.t * int) list -> t
(** [update t bindings] applies every binding with a {b single} copy of the
    underlying vector (vs. one copy per field with repeated {!set}) — the
    cache-hit commit path.  [update t \[\]] is [t] itself, allocation-free. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val to_array : t -> int array
(** Copy of the underlying 10-slot vector (index = [Field.index]). *)

val of_array : int array -> t
(** Inverse of [to_array]; requires length [Field.count]; values are truncated
    to field width. *)

val land_array : t -> int array -> t
(** [land_array f m] is the flow whose slot [i] is [get f (of_index i) land
    m.(i)] — a single-pass masked copy.  [m] must have length
    {!Field.count}; see [Mask.apply] for the public wrapper. *)

module Tbl : Hashtbl.S with type key = t
(** Hash table keyed by flows using {!hash}/{!equal} (monomorphic — no
    polymorphic-compare traversals on the per-packet lookup path). *)

val pp : Format.formatter -> t -> unit
(** Prints only non-zero fields, e.g. [eth_dst=0x2 ip_dst=0xa000001]. *)

val to_string : t -> string

(** Reusable flow buffer for allocation-free hot paths (classifier probes).

    A scratch's {!Scratch.view} aliases mutable storage: it is only valid
    until the next fill and must never be stored (e.g. never inserted as a
    hash-table key) — only used for transient structural lookups. *)
module Scratch : sig
  type flow := t
  type t

  val create : unit -> t

  val fill_masked : t -> mask:int array -> flow -> flow
  (** [fill_masked s ~mask f] stores the per-field AND of [mask] and [f]
      into [s] and returns the aliased view. [mask] must have length
      {!Field.count} (see [Mask.apply_scratch] for the checked wrapper). *)
end
