type t = { pattern : Flow.t; mask : Mask.t }

(* Interning the mask here means every fmatch built anywhere in the system —
   pipeline rules, Megaflow entries, LTM rules — carries a canonical mask,
   so the by-mask tuple grouping in the classifiers compares pointers. *)
let v ~pattern ~mask =
  let mask = Mask.intern mask in
  { pattern = Mask.apply mask pattern; mask }

let any = { pattern = Flow.zero; mask = Mask.empty }

let exact flow = { pattern = flow; mask = Mask.full }

let of_fields bindings =
  let pattern = Flow.make bindings in
  let mask = Mask.exact_fields (List.map fst bindings) in
  v ~pattern ~mask

let with_prefix t f ~value ~len =
  let pm = Gf_util.Bitops.prefix_mask ~width:(Field.width f) len in
  let mask = Mask.set t.mask f (Mask.get t.mask f lor pm) in
  let pattern = Flow.set t.pattern f (value land pm lor Flow.get t.pattern f) in
  v ~pattern ~mask

let matches t flow = Mask.matches t.mask ~pattern:t.pattern flow

let mask t = t.mask
let pattern t = t.pattern
let fields t = Mask.fields t.mask

let equal a b = Flow.equal a.pattern b.pattern && Mask.equal a.mask b.mask

let compare a b =
  let c = Mask.compare a.mask b.mask in
  if c <> 0 then c else Flow.compare a.pattern b.pattern

let hash t = (Flow.hash t.pattern * 31) + Mask.hash t.mask

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

let is_more_specific a ~than:b =
  Mask.subsumes ~loose:b.mask ~tight:a.mask
  && Mask.matches b.mask ~pattern:b.pattern a.pattern

let overlaps a b =
  (* They overlap iff the patterns agree on every bit both masks constrain. *)
  let shared = Mask.inter a.mask b.mask in
  Mask.matches shared ~pattern:a.pattern b.pattern

let pp fmt t =
  if Mask.is_empty t.mask then Format.pp_print_string fmt "<any>"
  else begin
    let pa = Flow.to_array t.pattern in
    let first = ref true in
    Field.Set.iter
      (fun f ->
        if not !first then Format.pp_print_char fmt ' ';
        first := false;
        let i = Field.index f in
        let m = Mask.get t.mask f in
        if m = Field.full_mask f then
          Format.fprintf fmt "%s=%#x" (Field.name f) pa.(i)
        else Format.fprintf fmt "%s=%#x/%#x" (Field.name f) pa.(i) m)
      (Mask.fields t.mask)
  end

let to_string t = Format.asprintf "%a" pp t
