(** A ternary match: a pattern flow plus a wildcard mask.

    This is the match half of every rule in the system — vSwitch pipeline
    rules, Megaflow cache entries and Gigaflow LTM entries all embed an
    [Fmatch.t].  The pattern is kept in canonical (pre-masked) form so
    structural equality coincides with match equivalence. *)

type t = private { pattern : Flow.t; mask : Mask.t }

val v : pattern:Flow.t -> mask:Mask.t -> t
(** Canonicalises: stores [Mask.apply mask pattern] and the
    {!Mask.intern}ed mask, so by-mask grouping downstream compares
    pointers. *)

val any : t
(** Matches every flow. *)

val exact : Flow.t -> t
(** Matches exactly one flow. *)

val of_fields : (Field.t * int) list -> t
(** Exact match on the listed fields, wildcard elsewhere. *)

val with_prefix : t -> Field.t -> value:int -> len:int -> t
(** Add a CIDR-style prefix constraint on one field. *)

val matches : t -> Flow.t -> bool

val mask : t -> Mask.t
val pattern : t -> Flow.t
val fields : t -> Field.Set.t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

module Tbl : Hashtbl.S with type key = t
(** Hash table keyed by matches using {!hash}/{!equal} (monomorphic). *)

val is_more_specific : t -> than:t -> bool
(** [is_more_specific a ~than:b] iff [a]'s mask subsumes... i.e. [a] constrains
    every bit [b] constrains (and matches a subset of what [b] matches when
    the shared bits agree). *)

val overlaps : t -> t -> bool
(** Some flow matches both. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
