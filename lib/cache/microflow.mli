(** The exact-match (Microflow) cache: first level of the OVS cache
    hierarchy, capturing temporal locality.

    Keyed on the full header vector; one lookup, no wildcards.  Entries
    expire after [max_idle] of disuse; at capacity the replacement policy
    decides ([Lru] — the historical behaviour — by default). *)

type hit = {
  terminal : Gf_pipeline.Action.terminal;
  out_flow : Gf_flow.Flow.t;
}

type t

val create : ?policy:Evict.policy -> ?rng_seed:int -> capacity:int -> unit -> t
(** [policy] defaults to [Lru] (the EMC has always evicted LRU when full);
    [rng_seed] feeds the [Random] policy's victim choice. *)

val capacity : t -> int
val policy : t -> Evict.policy

val set_policy : t -> Evict.policy -> unit
(** Swap the replacement policy online; applies from the next install. *)

val set_capacity : t -> int -> unit
(** Retune the admission bound online ([>= 1]).  Shrinking does not evict
    residents — the new bound bites on the next install. *)

val occupancy : t -> int
val stats : t -> Cache_stats.t

val lookup : t -> now:float -> Gf_flow.Flow.t -> hit option
(** Refreshes the entry's last-used time on a hit. *)

val install : t -> now:float -> Gf_flow.Flow.t -> hit -> int
(** Insert (replacing any existing entry for the same flow).  At capacity
    the policy picks a victim; returns the number of entries evicted under
    pressure (0 or 1).  Under [Reject] a full cache refuses the install
    (counted in [Cache_stats.rejected]) and returns 0. *)

val expire : t -> now:float -> max_idle:float -> int
(** Remove entries idle longer than [max_idle]; returns how many. *)

val invalidate_all : t -> int
(** Flush (e.g. on any pipeline rule change — exact-match entries carry no
    dependency information, so OVS-style full invalidation is the only safe
    response). Returns how many entries were dropped. *)
