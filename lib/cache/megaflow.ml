module Flow = Gf_flow.Flow
module Fmatch = Gf_flow.Fmatch
module Entry = Gf_classifier.Entry
module Searcher = Gf_classifier.Searcher
module Action = Gf_pipeline.Action
module Traversal = Gf_pipeline.Traversal
module Executor = Gf_pipeline.Executor

type hit = { terminal : Action.terminal; out_flow : Flow.t }

type payload = {
  commit : (Gf_flow.Field.t * int) list;
  terminal : Action.terminal;
  parent_input : Flow.t; (* representative flow for revalidation *)
  version : int;
  mutable last_used : float;
  mutable live : bool;
      (* flipped to false when the entry leaves the table, so memoised
         lookups holding the entry can self-invalidate in O(1) without a
         global generation sweep (see [lookup_memo]) *)
}

(* Per-flow lookup memo (see [lookup_memo]).  A memoised {e hit} is valid
   while its entry is still in the table ([payload.live]): entries are
   pairwise disjoint, so the memoised entry stays the unique match no
   matter what else is installed, and the ranked-TSS replay recomputes the
   probe count positionally so it tracks rank drift and tuple churn
   exactly.  (Stateless search algorithms replay [m_work] verbatim, so
   they additionally require [generation] unchanged.)  A memoised {e miss}
   is valid only while [generation] is unchanged — miss work probes the
   whole entry set, so any structural change stales it.  Touch-only
   mutations (last-used refreshes, TSS rank promotions) never invalidate:
   replay reapplies them exactly. *)
type memo = {
  mutable m_gen : int;
  mutable m_entry : payload Entry.t option;
  mutable m_hit : hit option;
  mutable m_work : int;
}

type t = {
  mutable capacity : int;
  mutable policy : Evict.policy;
  rng : Gf_util.Rng.t;
  searcher : payload Searcher.t;
  by_fmatch : int Fmatch.Tbl.t; (* match -> classifier key *)
  by_key : (int, Fmatch.t * payload) Hashtbl.t;
  stats : Cache_stats.t;
  mutable next_key : int;
  memo_tbl : (int, memo) Hashtbl.t; (* flow id -> last lookup *)
  mutable generation : int; (* bumped on any structural entry-set change *)
  stable_replay : bool;
      (* hit replays stay exact under entry-set churn (ranked TSS walk) *)
}

let create ?(search = `Tss) ?(policy = Evict.Reject) ?(rng_seed = 0x3F1A)
    ~capacity () =
  assert (capacity > 0);
  {
    capacity;
    policy;
    rng = Gf_util.Rng.create rng_seed;
    searcher = Searcher.create search;
    by_fmatch = Fmatch.Tbl.create capacity;
    by_key = Hashtbl.create capacity;
    stats = Cache_stats.create ();
    next_key = 0;
    memo_tbl = Hashtbl.create 256;
    generation = 0;
    stable_replay = (search = `Tss);
  }

let capacity t = t.capacity
let policy t = t.policy
let set_policy t policy = t.policy <- policy

(* Shrinking the bound does not evict residents; it bites on the next
   install (which then evicts down under the evicting policies). *)
let set_capacity t capacity =
  if capacity < 1 then
    invalid_arg "Megaflow.set_capacity: capacity must be >= 1";
  t.capacity <- capacity

let occupancy t = Hashtbl.length t.by_key
let stats t = t.stats
let search_algo t = Searcher.algo t.searcher

(* One array copy for the whole commit (none when it is empty), not one
   [Flow.set] copy per field — this runs on every cache hit. *)
let apply_commit commit flow = Flow.update flow commit

let lookup t ~now flow =
  let result, work = Searcher.lookup_disjoint t.searcher flow in
  match result with
  | Some entry ->
      let payload = entry.Entry.payload in
      payload.last_used <- now;
      Cache_stats.record_lookup t.stats ~hit:true;
      (Some { terminal = payload.terminal; out_flow = apply_commit payload.commit flow }, work)
  | None ->
      Cache_stats.record_lookup t.stats ~hit:false;
      (None, work)

(* Memoised lookup keyed by trace flow id.  A repeat packet of a known
   flow replays the previous result: same hit record, same touch side
   effects (last-used refresh, stats, TSS rank promotion — probe work is
   recomputed from the tuple's current rank so it matches what a live
   ranked walk would report).  Hit memos stay valid across installs and
   unrelated evictions (entry [live] flag + positional replay); miss memos
   and stateless-search hit memos need the entry set unchanged
   ([generation] guard).  Observably identical to {!lookup}; callers must
   present the same [flow] value for a given [flow_id]. *)
let lookup_memo t ~now ~flow_id flow =
  match Hashtbl.find_opt t.memo_tbl flow_id with
  | Some ({ m_entry = Some entry; _ } as m)
    when entry.Entry.payload.live && (t.stable_replay || m.m_gen = t.generation)
    ->
      let payload = entry.Entry.payload in
      payload.last_used <- now;
      Cache_stats.record_lookup t.stats ~hit:true;
      (m.m_hit, Searcher.replay_disjoint t.searcher entry ~prev_work:m.m_work)
  | Some ({ m_entry = None; _ } as m) when m.m_gen = t.generation ->
      Cache_stats.record_lookup t.stats ~hit:false;
      (None, m.m_work)
  | memo ->
      let result, work = Searcher.lookup_disjoint t.searcher flow in
      let hit =
        match result with
        | Some entry ->
            let payload = entry.Entry.payload in
            payload.last_used <- now;
            Cache_stats.record_lookup t.stats ~hit:true;
            Some
              { terminal = payload.terminal; out_flow = apply_commit payload.commit flow }
        | None ->
            Cache_stats.record_lookup t.stats ~hit:false;
            None
      in
      (match memo with
      | Some m ->
          m.m_gen <- t.generation;
          m.m_entry <- result;
          m.m_hit <- hit;
          m.m_work <- work
      | None ->
          Hashtbl.replace t.memo_tbl flow_id
            { m_gen = t.generation; m_entry = result; m_hit = hit; m_work = work });
      (hit, work)

(* Compiled hit replay for the datapath's per-flow fast path: after
   {!lookup_memo} stored a hit for [flow_id], return a closure performing
   just that hit's per-packet side effects (touch, stats, ranked-walk work
   + promotion) with every lookup hoisted out — no memo-table find, no
   mask hash.  The closure re-validates on each call (entry unchanged and
   still live, plus the generation guard for stateless search) and returns
   [None] once stale, after which the caller must fall back to
   {!lookup_memo} and compile a fresh replay. *)
let prepare_replay t ~flow_id =
  match Hashtbl.find_opt t.memo_tbl flow_id with
  | Some ({ m_entry = Some entry as entry0; _ } as m) ->
      let compiled = Searcher.prepare_replay t.searcher entry in
      let payload = entry.Entry.payload in
      Some
        (fun ~now ->
          if
            m.m_entry == entry0 && payload.live
            && (t.stable_replay || m.m_gen = t.generation)
          then begin
            payload.last_used <- now;
            Cache_stats.record_lookup t.stats ~hit:true;
            Some (match compiled with Some f -> f () | None -> m.m_work)
          end
          else None)
  | Some { m_entry = None; _ } | None -> None

(* Collapse a traversal into (match, commit, terminal). *)
let collapse traversal =
  let wildcard = Traversal.megaflow_wildcard traversal in
  let fmatch = Fmatch.v ~pattern:traversal.Traversal.input ~mask:wildcard in
  let commit =
    Traversal.segment_commit traversal ~first:0
      ~last:(Array.length traversal.Traversal.steps - 1)
  in
  (fmatch, commit, traversal.Traversal.terminal)

let remove_key_quiet t key =
  match Hashtbl.find_opt t.by_key key with
  | None -> ()
  | Some (fmatch, payload) ->
      payload.live <- false;
      Hashtbl.remove t.by_key key;
      Fmatch.Tbl.remove t.by_fmatch fmatch;
      ignore (Searcher.remove t.searcher key)

(* Victim selection under capacity pressure.  [Lru] takes the least
   recently used entry; [Priority_aware] (Megaflow entries all share
   priority 0) prefers the oldest pipeline version, then LRU; [Random]
   takes a uniform entry.  Ties break towards the lowest key so a fixed
   seed replays identically. *)
let pick_victim t =
  let better (k, p) (k', p') =
    match t.policy with
    | Evict.Lru ->
        p.last_used < p'.last_used || (p.last_used = p'.last_used && k < k')
    | Evict.Priority_aware ->
        p.version < p'.version
        || (p.version = p'.version
           && (p.last_used < p'.last_used || (p.last_used = p'.last_used && k < k')))
    | Evict.Random | Evict.Reject -> k < k' (* unused; see below *)
  in
  match t.policy with
  | Evict.Reject -> None
  | Evict.Random ->
      let n = Hashtbl.length t.by_key in
      if n = 0 then None
      else begin
        let target = Gf_util.Rng.int t.rng n in
        let i = ref 0 and victim = ref None in
        Hashtbl.iter
          (fun k _ ->
            if !i = target then victim := Some k;
            incr i)
          t.by_key;
        !victim
      end
  | Evict.Lru | Evict.Priority_aware ->
      Hashtbl.fold
        (fun k (_, p) acc ->
          match acc with
          | Some best when not (better (k, p) best) -> acc
          | _ -> Some (k, p))
        t.by_key None
      |> Option.map fst

let install t ~now ~version traversal =
  let fmatch, commit, terminal = collapse traversal in
  match Fmatch.Tbl.find_opt t.by_fmatch fmatch with
  | Some key ->
      (match Hashtbl.find_opt t.by_key key with
      | Some (_, payload) -> payload.last_used <- now
      | None ->
          (* by_fmatch and by_key index the same entry set; a key present in
             one but not the other means an eviction path forgot a table. *)
          assert false);
      `Exists
  | None ->
      let pressure = ref 0 in
      while
        occupancy t >= t.capacity
        &&
        match pick_victim t with
        | Some victim ->
            remove_key_quiet t victim;
            t.stats.Cache_stats.pressure_evictions <-
              t.stats.Cache_stats.pressure_evictions + 1;
            incr pressure;
            true
        | None -> false
      do
        ()
      done;
      if occupancy t >= t.capacity then begin
        t.stats.Cache_stats.rejected <- t.stats.Cache_stats.rejected + 1;
        `Rejected
      end
      else begin
        let key = t.next_key in
        t.next_key <- key + 1;
        let payload =
          {
            commit;
            terminal;
            parent_input = traversal.Traversal.input;
            version;
            last_used = now;
            live = true;
          }
        in
        Searcher.insert t.searcher (Entry.v ~key ~fmatch ~priority:0 payload);
        Fmatch.Tbl.replace t.by_fmatch fmatch key;
        Hashtbl.replace t.by_key key (fmatch, payload);
        t.stats.Cache_stats.installs <- t.stats.Cache_stats.installs + 1;
        (* Entry set changed (insert, plus any pressure evictions above):
           invalidate memoised lookups. *)
        t.generation <- t.generation + 1;
        `Installed !pressure
      end

let remove_key t key =
  match Hashtbl.find_opt t.by_key key with
  | None -> ()
  | Some (fmatch, payload) ->
      payload.live <- false;
      Hashtbl.remove t.by_key key;
      Fmatch.Tbl.remove t.by_fmatch fmatch;
      ignore (Searcher.remove t.searcher key);
      t.stats.Cache_stats.evictions <- t.stats.Cache_stats.evictions + 1

let expire t ~now ~max_idle =
  let stale =
    Hashtbl.fold
      (fun key (_, payload) acc ->
        if now -. payload.last_used > max_idle then key :: acc else acc)
      t.by_key []
  in
  List.iter (remove_key t) stale;
  if stale <> [] then t.generation <- t.generation + 1;
  List.length stale

(* Admission-sweep demotion: drop entries whose representative flow went
   cold according to the caller's hotness predicate (heavy-hitter sketch),
   freeing hardware slots for the current hot set.  Same machinery as
   {!expire}: removed entries flip [live] and bump the generation so memos
   and compiled replays self-invalidate. *)
let demote t ~is_hot =
  let cold =
    Hashtbl.fold
      (fun key (_, payload) acc ->
        if is_hot payload.parent_input then acc else key :: acc)
      t.by_key []
  in
  List.iter (remove_key t) cold;
  if cold <> [] then t.generation <- t.generation + 1;
  List.length cold

let revalidate t pipeline =
  let work = ref 0 in
  let victims =
    Hashtbl.fold
      (fun key (fmatch, payload) acc ->
        match Executor.execute pipeline payload.parent_input with
        | Error _ -> key :: acc
        | Ok traversal ->
            work := !work + Traversal.length traversal;
            let fmatch', commit', terminal' = collapse traversal in
            if
              Fmatch.equal fmatch fmatch'
              && payload.commit = commit'
              && Action.terminal_equal payload.terminal terminal'
            then acc
            else key :: acc)
      t.by_key []
  in
  List.iter (remove_key t) victims;
  if victims <> [] then t.generation <- t.generation + 1;
  (List.length victims, !work)

let entries_fmatches t = Fmatch.Tbl.fold (fun f _ acc -> f :: acc) t.by_fmatch []

let check_invariants t =
  Fmatch.Tbl.length t.by_fmatch = Hashtbl.length t.by_key
  && Fmatch.Tbl.fold
       (fun fmatch key ok ->
         ok
         &&
         match Hashtbl.find_opt t.by_key key with
         | Some (fmatch', _) -> Fmatch.equal fmatch fmatch'
         | None -> false)
       t.by_fmatch true
