type policy = Reject | Lru | Random | Priority_aware

let all = [ Reject; Lru; Random; Priority_aware ]

let to_string = function
  | Reject -> "reject"
  | Lru -> "lru"
  | Random -> "random"
  | Priority_aware -> "priority"

let of_string = function
  | "reject" -> Some Reject
  | "lru" -> Some Lru
  | "random" -> Some Random
  | "priority" | "priority_aware" | "priority-aware" -> Some Priority_aware
  | _ -> None

let pp fmt p = Format.pp_print_string fmt (to_string p)
