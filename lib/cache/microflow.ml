module Flow = Gf_flow.Flow

type hit = { terminal : Gf_pipeline.Action.terminal; out_flow : Flow.t }

type entry = { hit : hit; mutable last_used : float }

type t = {
  mutable capacity : int;
  mutable policy : Evict.policy;
  rng : Gf_util.Rng.t;
  table : entry Flow.Tbl.t; (* monomorphic hash/equal: no polymorphic compare per probe *)
  stats : Cache_stats.t;
}

let create ?(policy = Evict.Lru) ?(rng_seed = 0xE3C) ~capacity () =
  assert (capacity > 0);
  {
    capacity;
    policy;
    rng = Gf_util.Rng.create rng_seed;
    table = Flow.Tbl.create capacity;
    stats = Cache_stats.create ();
  }

let capacity t = t.capacity
let policy t = t.policy
let set_policy t policy = t.policy <- policy

let set_capacity t capacity =
  if capacity < 1 then
    invalid_arg "Microflow.set_capacity: capacity must be >= 1";
  t.capacity <- capacity

let occupancy t = Flow.Tbl.length t.table
let stats t = t.stats

let lookup t ~now flow =
  match Flow.Tbl.find_opt t.table flow with
  | Some entry ->
      entry.last_used <- now;
      Cache_stats.record_lookup t.stats ~hit:true;
      Some entry.hit
  | None ->
      Cache_stats.record_lookup t.stats ~hit:false;
      None

let evict_lru t =
  let victim = ref None in
  Flow.Tbl.iter
    (fun flow entry ->
      match !victim with
      | Some (_, e) when e.last_used <= entry.last_used -> ()
      | _ -> victim := Some (flow, entry))
    t.table;
  match !victim with
  | Some (flow, _) ->
      Flow.Tbl.remove t.table flow;
      t.stats.Cache_stats.pressure_evictions <-
        t.stats.Cache_stats.pressure_evictions + 1;
      true
  | None -> false

let evict_random t =
  let n = Flow.Tbl.length t.table in
  if n = 0 then false
  else begin
    let target = Gf_util.Rng.int t.rng n in
    let i = ref 0 and victim = ref None in
    Flow.Tbl.iter
      (fun flow _ ->
        if !i = target then victim := Some flow;
        incr i)
      t.table;
    match !victim with
    | Some flow ->
        Flow.Tbl.remove t.table flow;
        t.stats.Cache_stats.pressure_evictions <-
          t.stats.Cache_stats.pressure_evictions + 1;
        true
    | None -> false
  end

(* Exact-match entries carry no priority, so [Priority_aware] degenerates to
   recency — the only signal an EMC entry has. *)
let evict_one t =
  match t.policy with
  | Evict.Reject -> false
  | Evict.Lru | Evict.Priority_aware -> evict_lru t
  | Evict.Random -> evict_random t

let install t ~now flow hit =
  match Flow.Tbl.find_opt t.table flow with
  | Some _ ->
      Flow.Tbl.replace t.table flow { hit; last_used = now };
      t.stats.Cache_stats.installs <- t.stats.Cache_stats.installs + 1;
      0
  | None ->
      let evicted =
        if Flow.Tbl.length t.table >= t.capacity then
          if evict_one t then 1 else -1 (* -1: full and policy refused *)
        else 0
      in
      if evicted < 0 then begin
        t.stats.Cache_stats.rejected <- t.stats.Cache_stats.rejected + 1;
        0
      end
      else begin
        Flow.Tbl.replace t.table flow { hit; last_used = now };
        t.stats.Cache_stats.installs <- t.stats.Cache_stats.installs + 1;
        evicted
      end

let expire t ~now ~max_idle =
  let stale =
    Flow.Tbl.fold
      (fun flow entry acc -> if now -. entry.last_used > max_idle then flow :: acc else acc)
      t.table []
  in
  List.iter (Flow.Tbl.remove t.table) stale;
  let n = List.length stale in
  t.stats.Cache_stats.evictions <- t.stats.Cache_stats.evictions + n;
  n

let invalidate_all t =
  let n = Flow.Tbl.length t.table in
  Flow.Tbl.reset t.table;
  t.stats.Cache_stats.evictions <- t.stats.Cache_stats.evictions + n;
  n
