module Flow = Gf_flow.Flow

type hit = { terminal : Gf_pipeline.Action.terminal; out_flow : Flow.t }

type entry = { hit : hit; mutable last_used : float }

type t = {
  capacity : int;
  table : entry Flow.Tbl.t; (* monomorphic hash/equal: no polymorphic compare per probe *)
  stats : Cache_stats.t;
}

let create ~capacity =
  assert (capacity > 0);
  { capacity; table = Flow.Tbl.create capacity; stats = Cache_stats.create () }

let capacity t = t.capacity
let occupancy t = Flow.Tbl.length t.table
let stats t = t.stats

let lookup t ~now flow =
  match Flow.Tbl.find_opt t.table flow with
  | Some entry ->
      entry.last_used <- now;
      Cache_stats.record_lookup t.stats ~hit:true;
      Some entry.hit
  | None ->
      Cache_stats.record_lookup t.stats ~hit:false;
      None

let evict_lru t =
  let victim = ref None in
  Flow.Tbl.iter
    (fun flow entry ->
      match !victim with
      | Some (_, e) when e.last_used <= entry.last_used -> ()
      | _ -> victim := Some (flow, entry))
    t.table;
  match !victim with
  | Some (flow, _) ->
      Flow.Tbl.remove t.table flow;
      t.stats.Cache_stats.evictions <- t.stats.Cache_stats.evictions + 1
  | None -> ()

let install t ~now flow hit =
  (match Flow.Tbl.find_opt t.table flow with
  | Some _ -> Flow.Tbl.remove t.table flow
  | None -> if Flow.Tbl.length t.table >= t.capacity then evict_lru t);
  Flow.Tbl.replace t.table flow { hit; last_used = now };
  t.stats.Cache_stats.installs <- t.stats.Cache_stats.installs + 1

let expire t ~now ~max_idle =
  let stale =
    Flow.Tbl.fold
      (fun flow entry acc -> if now -. entry.last_used > max_idle then flow :: acc else acc)
      t.table []
  in
  List.iter (Flow.Tbl.remove t.table) stale;
  let n = List.length stale in
  t.stats.Cache_stats.evictions <- t.stats.Cache_stats.evictions + n;
  n

let invalidate_all t =
  let n = Flow.Tbl.length t.table in
  Flow.Tbl.reset t.table;
  t.stats.Cache_stats.evictions <- t.stats.Cache_stats.evictions + n;
  n
