(** The Megaflow cache: OVS's single-lookup wildcard cache (the paper's
    baseline, K = 1).

    Each entry collapses a whole traversal into one ternary rule: match =
    input flow masked by the traversal's re-based consulted wildcard; action
    = the commit (composed set-field rewrites) plus the terminal decision.
    The consulted wildcard carries the priority-dependency bits, so every
    entry — and therefore any overlap between entries — reproduces the
    slowpath decision exactly (property-tested), which licenses the ranked
    first-match search.

    The search structure is pluggable (TSS or NuevoMatch — Fig. 17); lookup
    reports the work units spent for the latency model. *)

type hit = {
  terminal : Gf_pipeline.Action.terminal;
  out_flow : Gf_flow.Flow.t;
}

type t

val create :
  ?search:Gf_classifier.Searcher.algo ->
  ?policy:Evict.policy ->
  ?rng_seed:int ->
  capacity:int ->
  unit ->
  t
(** [search] defaults to [`Tss]; [policy] to [Reject] (the historical
    behaviour: a full table refuses installs); [rng_seed] feeds the
    [Random] policy's victim choice. *)

val capacity : t -> int
val policy : t -> Evict.policy

val set_policy : t -> Evict.policy -> unit
(** Swap the replacement policy online; applies from the next install. *)

val set_capacity : t -> int -> unit
(** Retune the admission bound online ([>= 1]).  Shrinking does not evict
    residents — the new bound bites on the next install (which then evicts
    down under the evicting policies). *)

val occupancy : t -> int
val stats : t -> Cache_stats.t
val search_algo : t -> Gf_classifier.Searcher.algo

val check_invariants : t -> bool
(** [true] iff the two indexes ([by_fmatch] : match -> key and
    [by_key] : key -> match) form a bijection over the same entry set.
    An entry present in one but not the other would mean an eviction
    path forgot a table; [install] [assert]s the same property on the
    [`Exists] fast path. *)

val lookup : t -> now:float -> Gf_flow.Flow.t -> hit option * int
(** Result and classifier work units. Refreshes last-used on hit. *)

val lookup_memo : t -> now:float -> flow_id:int -> Gf_flow.Flow.t -> hit option * int
(** Observably identical to {!lookup}, but repeat packets of a known flow
    replay the memoised result, skipping the classifier search.  A hit
    memo stays valid while its entry is still cached — entries are
    pairwise disjoint, so it remains the unique match under any other
    install or eviction, and the ranked-TSS probe count is recomputed
    positionally; miss memos (and hit memos under stateless search, whose
    work cannot be recomputed) additionally require that no install or
    eviction has changed the entry set (a generation counter guards
    this).  Touch side effects — last-used refresh, stats, TSS rank
    promotion and its drifting probe count — are reapplied exactly.
    Requires that a given [flow_id] is always presented with the same
    [flow] value (true of every {!Gf_workload.Trace} generator). *)

val prepare_replay : t -> flow_id:int -> (now:float -> int option) option
(** Compiled per-flow hit replay for the batched engine's fast path:
    after {!lookup_memo} returned a hit for [flow_id], a closure that
    performs exactly that hit's per-packet side effects (last-used
    refresh, stats, ranked-walk probe count + promotion) with the memo
    find and mask hash hoisted out.  Each call re-validates and returns
    the probe work, or [None] once the memo is stale (entry evicted or
    replaced) — the caller must then fall back to {!lookup_memo} and
    compile a fresh replay.  [None] if the flow's memo is absent or a
    miss. *)

val install : t -> now:float -> version:int -> Gf_pipeline.Traversal.t ->
  [ `Installed of int | `Exists | `Rejected ]
(** Collapse the traversal and insert.  [`Installed n] reports the number
    of entries evicted under capacity pressure to make room (always 0
    under [Reject]); [`Exists] when an identical match is already cached
    (its last-used time is refreshed); [`Rejected] when the cache is full
    and the policy refuses to evict ([version] is the pipeline version,
    kept for revalidation bookkeeping and consulted by the
    [Priority_aware] victim choice). *)

val expire : t -> now:float -> max_idle:float -> int
(** Evict entries idle longer than [max_idle]; returns how many. *)

val demote : t -> is_hot:(Gf_flow.Flow.t -> bool) -> int
(** Admission re-partition sweep: evict every entry whose representative
    flow ([parent_input]) fails [is_hot], freeing hardware slots for the
    current heavy hitters.  Returns how many entries were demoted. *)

val revalidate : t -> Gf_pipeline.Pipeline.t -> int * int
(** Re-run every entry's parent flow through the (possibly updated) pipeline
    and evict entries whose regenerated match/action differ (paper
    section 4.3.1).  Returns [(evicted, work)] where [work] is the total
    number of table lookups performed — the cost the paper's section 6.3.6
    compares against Gigaflow's sub-traversal revalidation. *)

val entries_fmatches : t -> Gf_flow.Fmatch.t list
(** Current entry matches (diagnostics / tests). *)
