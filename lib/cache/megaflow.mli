(** The Megaflow cache: OVS's single-lookup wildcard cache (the paper's
    baseline, K = 1).

    Each entry collapses a whole traversal into one ternary rule: match =
    input flow masked by the traversal's re-based consulted wildcard; action
    = the commit (composed set-field rewrites) plus the terminal decision.
    The consulted wildcard carries the priority-dependency bits, so every
    entry — and therefore any overlap between entries — reproduces the
    slowpath decision exactly (property-tested), which licenses the ranked
    first-match search.

    The search structure is pluggable (TSS or NuevoMatch — Fig. 17); lookup
    reports the work units spent for the latency model. *)

type hit = {
  terminal : Gf_pipeline.Action.terminal;
  out_flow : Gf_flow.Flow.t;
}

type t

val create :
  ?search:Gf_classifier.Searcher.algo ->
  ?policy:Evict.policy ->
  ?rng_seed:int ->
  capacity:int ->
  unit ->
  t
(** [search] defaults to [`Tss]; [policy] to [Reject] (the historical
    behaviour: a full table refuses installs); [rng_seed] feeds the
    [Random] policy's victim choice. *)

val capacity : t -> int
val policy : t -> Evict.policy
val occupancy : t -> int
val stats : t -> Cache_stats.t
val search_algo : t -> Gf_classifier.Searcher.algo

val check_invariants : t -> bool
(** [true] iff the two indexes ([by_fmatch] : match -> key and
    [by_key] : key -> match) form a bijection over the same entry set.
    An entry present in one but not the other would mean an eviction
    path forgot a table; [install] [assert]s the same property on the
    [`Exists] fast path. *)

val lookup : t -> now:float -> Gf_flow.Flow.t -> hit option * int
(** Result and classifier work units. Refreshes last-used on hit. *)

val install : t -> now:float -> version:int -> Gf_pipeline.Traversal.t ->
  [ `Installed of int | `Exists | `Rejected ]
(** Collapse the traversal and insert.  [`Installed n] reports the number
    of entries evicted under capacity pressure to make room (always 0
    under [Reject]); [`Exists] when an identical match is already cached
    (its last-used time is refreshed); [`Rejected] when the cache is full
    and the policy refuses to evict ([version] is the pipeline version,
    kept for revalidation bookkeeping and consulted by the
    [Priority_aware] victim choice). *)

val expire : t -> now:float -> max_idle:float -> int
(** Evict entries idle longer than [max_idle]; returns how many. *)

val revalidate : t -> Gf_pipeline.Pipeline.t -> int * int
(** Re-run every entry's parent flow through the (possibly updated) pipeline
    and evict entries whose regenerated match/action differ (paper
    section 4.3.1).  Returns [(evicted, work)] where [work] is the total
    number of table lookups performed — the cost the paper's section 6.3.6
    compares against Gigaflow's sub-traversal revalidation. *)

val entries_fmatches : t -> Gf_flow.Fmatch.t list
(** Current entry matches (diagnostics / tests). *)
