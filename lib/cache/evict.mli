(** Replacement policies for capacity pressure.

    Every cache level (Microflow, Megaflow, the Gigaflow LTM tables) accepts
    a policy deciding what happens when an install arrives at a full table:

    - [Reject]: refuse the install and count it (the seed behaviour — a full
      cache stays frozen until idle-expiry or revalidation frees slots).
    - [Lru]: evict the least recently used admissible entry.
    - [Random]: evict a uniformly random admissible entry (what many NIC
      flow-table offload engines ship, being state-free in hardware).
    - [Priority_aware]: evict the lowest-priority admissible entry first
      (ties broken LRU); levels without meaningful priorities fall back to
      the oldest pipeline version, then LRU.

    Evictions made to admit a new entry are counted as
    [Cache_stats.pressure_evictions], separate from idle-expiry and
    revalidation evictions. *)

type policy = Reject | Lru | Random | Priority_aware

val all : policy list

val to_string : policy -> string
(** Stable lowercase name: "reject", "lru", "random", "priority". *)

val of_string : string -> policy option

val pp : Format.formatter -> policy -> unit
