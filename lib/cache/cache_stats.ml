type t = {
  mutable lookups : int;
  mutable hits : int;
  mutable misses : int;
  mutable installs : int;
  mutable shared : int;
  mutable rejected : int;
  mutable evictions : int;
  mutable pressure_evictions : int;
}

let create () =
  {
    lookups = 0;
    hits = 0;
    misses = 0;
    installs = 0;
    shared = 0;
    rejected = 0;
    evictions = 0;
    pressure_evictions = 0;
  }

let reset t =
  t.lookups <- 0;
  t.hits <- 0;
  t.misses <- 0;
  t.installs <- 0;
  t.shared <- 0;
  t.rejected <- 0;
  t.evictions <- 0;
  t.pressure_evictions <- 0

let hit_rate t =
  if t.lookups = 0 then nan else float_of_int t.hits /. float_of_int t.lookups

let record_lookup t ~hit =
  t.lookups <- t.lookups + 1;
  if hit then t.hits <- t.hits + 1 else t.misses <- t.misses + 1

let pp fmt t =
  Format.fprintf fmt
    "lookups=%d hits=%d misses=%d installs=%d shared=%d rejected=%d evictions=%d \
     pressure_evictions=%d"
    t.lookups t.hits t.misses t.installs t.shared t.rejected t.evictions
    t.pressure_evictions
