(** 2-choice cuckoo exact-match table (Snabb-ctable style).

    A software cache level for the long tail of mice that never earn a
    hardware slot: flat preallocated slot arrays, two buckets per key (the
    second hash is a deterministic remix of the first), four slots per
    bucket, and a bounded kick chain on insert.  Lookup probes at most 8
    slots — no hashtable chains, no polymorphic compare, no allocation.

    Semantics match {!Microflow}: exact match on the full header vector,
    entries carry the cached terminal + output flow, [max_idle] expiry, and
    an {!Evict.policy} under capacity pressure.  Under [Reject] a full
    bucket pair refuses the install (no kicking — nothing is ever displaced
    out of the table); under the evicting policies a failed kick chain
    drops the last displaced entry as one pressure eviction. *)

type hit = {
  terminal : Gf_pipeline.Action.terminal;
  out_flow : Gf_flow.Flow.t;
}

type t

val create : ?policy:Evict.policy -> ?rng_seed:int -> capacity:int -> unit -> t
(** [capacity] is the admission bound (installs beyond it consult the
    policy); the underlying slot array is sized to the next power-of-two
    bucket count holding [capacity] at ≤ 80% load so kick chains stay
    short.  [policy] defaults to [Lru]. *)

val capacity : t -> int
val slots : t -> int
(** Physical slot count (≥ capacity). *)

val policy : t -> Evict.policy

val set_policy : t -> Evict.policy -> unit
(** Swap the replacement policy online; applies from the next install. *)

val set_capacity : t -> int -> unit
(** Retune the admission bound online ([>= 1]), clamped to the physical
    slot count (bucket geometry is fixed at creation).  Shrinking does not
    evict residents — the new bound bites on the next install. *)

val occupancy : t -> int
val stats : t -> Cache_stats.t

val lookup : t -> now:float -> Gf_flow.Flow.t -> hit option
(** Refreshes the entry's last-used time on a hit. *)

val install : t -> now:float -> Gf_flow.Flow.t -> hit -> int
(** Insert (replacing any existing entry for the same key).  Returns the
    number of entries evicted under pressure (0 or 1).  Under [Reject] a
    refused install is counted in [Cache_stats.rejected] and returns 0. *)

val expire : t -> now:float -> max_idle:float -> int
(** Remove entries idle longer than [max_idle]; returns how many. *)

val invalidate_all : t -> int
(** Flush every entry (rule-change response; exact-match entries carry no
    dependency info).  Returns how many were dropped. *)

val max_probe : int
(** Slots probed per lookup (two buckets × bucket width) — exported for the
    latency model. *)
