module Flow = Gf_flow.Flow

type hit = {
  terminal : Gf_pipeline.Action.terminal;
  out_flow : Flow.t;
}

let bucket_width = 4
let max_probe = 2 * bucket_width
let max_kicks = 8

(* Slot-per-index flat arrays; [occupied] disambiguates live slots from the
   dummy fill (Flow.zero is a legal key). *)
type t = {
  mutable capacity : int;
  nbuckets : int; (* power of two *)
  bmask : int;
  mutable policy : Evict.policy;
  rng : Gf_util.Rng.t;
  keys : Flow.t array;
  hits : hit array;
  last_used : float array;
  occupied : bool array;
  stats : Cache_stats.t;
  mutable size : int;
}

let dummy_hit = { terminal = Gf_pipeline.Action.Drop; out_flow = Flow.zero }

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ?(policy = Evict.Lru) ?(rng_seed = 0xCC00) ~capacity () =
  assert (capacity > 0);
  (* size buckets so [capacity] live entries sit at <= 80% physical load *)
  let want_slots = (capacity * 5 / 4) + bucket_width in
  let nbuckets = next_pow2 ((want_slots + bucket_width - 1) / bucket_width) in
  let nslots = nbuckets * bucket_width in
  {
    capacity;
    nbuckets;
    bmask = nbuckets - 1;
    policy;
    rng = Gf_util.Rng.create rng_seed;
    keys = Array.make nslots Flow.zero;
    hits = Array.make nslots dummy_hit;
    last_used = Array.make nslots 0.0;
    occupied = Array.make nslots false;
    stats = Cache_stats.create ();
    size = 0;
  }

let capacity t = t.capacity
let slots t = t.nbuckets * bucket_width
let policy t = t.policy
let set_policy t policy = t.policy <- policy

(* The admission bound may move online; physical geometry (buckets/slots)
   is fixed, so the new bound is clamped to the slot count.  Shrinking does
   not evict residents — the bound bites on the next install. *)
let set_capacity t capacity =
  if capacity < 1 then invalid_arg "Cuckoo.set_capacity: capacity must be >= 1";
  t.capacity <- min capacity (t.nbuckets * bucket_width)
let occupancy t = t.size
let stats t = t.stats

let bucket1 t key = Flow.hash key land t.bmask

(* Deterministic remix for the alternate bucket; nudged when it collides
   with the primary so every key genuinely has two buckets. *)
let alt_bucket t key b =
  let h = Flow.hash key in
  let h2 = (h * 0x9E3779B1) lxor (h lsr 15) in
  let b2 = h2 land t.bmask in
  if b2 = b then (b + 1) land t.bmask else b2

(* Index of the slot holding [key] in bucket [b], or -1. *)
let find_in_bucket t b key =
  let base = b * bucket_width in
  let rec go i =
    if i = bucket_width then -1
    else if t.occupied.(base + i) && Flow.equal t.keys.(base + i) key then
      base + i
    else go (i + 1)
  in
  go 0

let find_slot t key =
  let b1 = bucket1 t key in
  let s = find_in_bucket t b1 key in
  if s >= 0 then s else find_in_bucket t (alt_bucket t key b1) key

let empty_in_bucket t b =
  let base = b * bucket_width in
  let rec go i =
    if i = bucket_width then -1
    else if not t.occupied.(base + i) then base + i
    else go (i + 1)
  in
  go 0

let lookup t ~now flow =
  let s = find_slot t flow in
  if s >= 0 then begin
    t.last_used.(s) <- now;
    Cache_stats.record_lookup t.stats ~hit:true;
    Some t.hits.(s)
  end
  else begin
    Cache_stats.record_lookup t.stats ~hit:false;
    None
  end

let clear_slot t s =
  t.occupied.(s) <- false;
  t.keys.(s) <- Flow.zero;
  t.hits.(s) <- dummy_hit;
  t.size <- t.size - 1

let fill_slot t s key hit now =
  if not t.occupied.(s) then t.size <- t.size + 1;
  t.occupied.(s) <- true;
  t.keys.(s) <- key;
  t.hits.(s) <- hit;
  t.last_used.(s) <- now

(* Victim slot among the (occupied) slots of buckets [b1]/[b2] for the
   evicting policies.  Exact-match entries carry no priority, so
   [Priority_aware] degenerates to recency, like the EMC. *)
let pick_victim t b1 b2 =
  let candidates = ref [] in
  let add b =
    let base = b * bucket_width in
    for i = 0 to bucket_width - 1 do
      if t.occupied.(base + i) then candidates := (base + i) :: !candidates
    done
  in
  add b1;
  if b2 <> b1 then add b2;
  match !candidates with
  | [] -> -1
  | cs -> (
      match t.policy with
      | Evict.Reject -> -1
      | Evict.Lru | Evict.Priority_aware ->
          List.fold_left
            (fun best s ->
              if best < 0 || t.last_used.(s) < t.last_used.(best) then s
              else best)
            (-1) cs
      | Evict.Random ->
          let cs = List.rev cs (* deterministic order *) in
          List.nth cs (Gf_util.Rng.int t.rng (List.length cs)))

(* Re-home displaced entries for up to [max_kicks] hops; on exhaustion the
   last displaced entry is dropped (one pressure eviction). *)
let rec kick t ~depth b key hit lu =
  let s = empty_in_bucket t b in
  if s >= 0 then begin
    fill_slot t s key hit lu;
    0
  end
  else if depth >= max_kicks then begin
    t.stats.Cache_stats.pressure_evictions <-
      t.stats.Cache_stats.pressure_evictions + 1;
    1
  end
  else begin
    let base = b * bucket_width in
    let v = base + Gf_util.Rng.int t.rng bucket_width in
    let vkey = t.keys.(v) and vhit = t.hits.(v) and vlu = t.last_used.(v) in
    t.keys.(v) <- key;
    t.hits.(v) <- hit;
    t.last_used.(v) <- lu;
    let vb1 = bucket1 t vkey in
    let vb = if vb1 = b then alt_bucket t vkey vb1 else vb1 in
    kick t ~depth:(depth + 1) vb vkey vhit vlu
  end

let install t ~now flow hit =
  let s = find_slot t flow in
  if s >= 0 then begin
    t.hits.(s) <- hit;
    t.last_used.(s) <- now;
    t.stats.Cache_stats.installs <- t.stats.Cache_stats.installs + 1;
    0
  end
  else begin
    let b1 = bucket1 t flow in
    let b2 = alt_bucket t flow b1 in
    let over = t.size >= t.capacity in
    if over && t.policy = Evict.Reject then begin
      t.stats.Cache_stats.rejected <- t.stats.Cache_stats.rejected + 1;
      0
    end
    else begin
      let pressure =
        if over then begin
          let v = pick_victim t b1 b2 in
          if v >= 0 then begin
            clear_slot t v;
            t.stats.Cache_stats.pressure_evictions <-
              t.stats.Cache_stats.pressure_evictions + 1;
            1
          end
          else 0
        end
        else 0
      in
      let s = empty_in_bucket t b1 in
      let s = if s >= 0 then s else empty_in_bucket t b2 in
      if s >= 0 then begin
        fill_slot t s flow hit now;
        t.stats.Cache_stats.installs <- t.stats.Cache_stats.installs + 1;
        pressure
      end
      else if t.policy = Evict.Reject then begin
        (* both buckets full: under Reject nothing may be displaced *)
        t.stats.Cache_stats.rejected <- t.stats.Cache_stats.rejected + 1;
        pressure
      end
      else begin
        (* displace a resident of b2 and re-home it down a bounded chain:
           the newcomer overwrites the first victim in place (net size
           unchanged — one in, one in hand), then the chain either finds
           the victim a home (net +1, counted by [fill_slot]) or drops the
           last displaced entry (net 0, counted inside [kick]) *)
        let b = b2 in
        let base = b * bucket_width in
        let v = base + Gf_util.Rng.int t.rng bucket_width in
        let vkey = t.keys.(v) and vhit = t.hits.(v) and vlu = t.last_used.(v) in
        t.keys.(v) <- flow;
        t.hits.(v) <- hit;
        t.last_used.(v) <- now;
        let vb1 = bucket1 t vkey in
        let vb = if vb1 = b then alt_bucket t vkey vb1 else vb1 in
        let dropped = kick t ~depth:1 vb vkey vhit vlu in
        t.stats.Cache_stats.installs <- t.stats.Cache_stats.installs + 1;
        pressure + dropped
      end
    end
  end

let expire t ~now ~max_idle =
  let n = ref 0 in
  for s = 0 to (t.nbuckets * bucket_width) - 1 do
    if t.occupied.(s) && now -. t.last_used.(s) > max_idle then begin
      clear_slot t s;
      incr n
    end
  done;
  t.stats.Cache_stats.evictions <- t.stats.Cache_stats.evictions + !n;
  !n

let invalidate_all t =
  let n = t.size in
  Array.fill t.occupied 0 (Array.length t.occupied) false;
  Array.fill t.keys 0 (Array.length t.keys) Flow.zero;
  Array.fill t.hits 0 (Array.length t.hits) dummy_hit;
  t.size <- 0;
  t.stats.Cache_stats.evictions <- t.stats.Cache_stats.evictions + n;
  n
