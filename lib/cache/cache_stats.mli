(** Shared hit/miss/installation counters for all cache flavours. *)

type t = {
  mutable lookups : int;
  mutable hits : int;
  mutable misses : int;
  mutable installs : int;  (** new entries written *)
  mutable shared : int;
      (** installations satisfied by an already-present identical entry
          (Gigaflow sub-traversal sharing; always 0 for Megaflow) *)
  mutable rejected : int;  (** installations refused for lack of space *)
  mutable evictions : int;  (** idle expiry + revalidation removals *)
  mutable pressure_evictions : int;
      (** entries evicted to admit a new install at capacity (replacement
          policy at work) — counted separately from idle/revalidation
          [evictions] *)
}

val create : unit -> t
val reset : t -> unit

val hit_rate : t -> float
(** Hits over lookups; [nan] when no lookups. *)

val record_lookup : t -> hit:bool -> unit

val pp : Format.formatter -> t -> unit
