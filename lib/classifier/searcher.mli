(** Runtime-selectable classifier: wraps {!Linear}, {!Tss} or {!Nuevomatch}
    behind one value type so caches can switch search algorithms by
    configuration (the paper's Fig. 17 compares TSS vs NuevoMatch on the
    same cache contents). *)

type algo = [ `Linear | `Tss | `Nuevomatch ]

val algo_name : algo -> string
val algo_of_string : string -> algo option

type 'a t

val create : algo -> 'a t
val algo : 'a t -> algo
val insert : 'a t -> 'a Entry.t -> unit
val remove : 'a t -> int -> bool
val size : 'a t -> int
val lookup : 'a t -> Gf_flow.Flow.t -> 'a Entry.t option * int

val lookup_disjoint : 'a t -> Gf_flow.Flow.t -> 'a Entry.t option * int
(** Like {!lookup} but the caller asserts that any matching entry is
    acceptable (entries agree wherever they overlap), enabling the
    first-match ranked walk for TSS (see {!Tss.lookup_first}); other
    algorithms fall back to {!lookup}. *)

val replay_disjoint : 'a t -> 'a Entry.t -> prev_work:int -> int
(** Replay a memoised {!lookup_disjoint} hit on [entry]: the work a live
    lookup would report now, with any self-organising side effect (TSS
    rank promotion) reapplied.  Stateless algorithms return [prev_work]
    unchanged, which is only sound while the entry set is structurally
    unchanged; the TSS walk is exact under churn as long as [entry] is
    still stored (see {!Tss.replay_first}). *)

val prepare_replay : 'a t -> 'a Entry.t -> (unit -> int) option
(** Compiled {!replay_disjoint}: per-entry setup hoisted out of the
    per-packet path (TSS resolves the entry's tuple once; see
    {!Tss.prepare_first}).  [None] for stateless algorithms — callers
    fall back to the memoised work value under their own generation
    guard.  The closure is valid only while [entry] remains stored. *)

val entries : 'a t -> 'a Entry.t list
val clear : 'a t -> unit
