module Flow = Gf_flow.Flow
module Mask = Gf_flow.Mask
module Fmatch = Gf_flow.Fmatch

(* Tuples are threaded onto an intrusive doubly-linked list ([rank_prev] /
   [rank_next]) holding the hit-frequency order used by [lookup_first]:
   append, removal and promote-to-front are all O(1), where the previous
   list representation paid O(#tuples) per insert ([@ [tu]]) and per remove
   ([List.filter]). *)
type 'a tuple = {
  mask : Mask.t;
  buckets : 'a Entry.t list Flow.Tbl.t; (* best-first lists *)
  mutable max_priority : int;
  mutable count : int;
  mutable rank_prev : 'a tuple option;
  mutable rank_next : 'a tuple option;
}

type 'a t = {
  by_key : (int, 'a Entry.t) Hashtbl.t;
  tuples : 'a tuple Mask.Tbl.t;
  mutable ordered : 'a tuple list; (* max_priority desc; valid when not dirty *)
  mutable rank_head : 'a tuple option; (* hit-frequency order (first-match mode) *)
  mutable rank_tail : 'a tuple option;
  mutable dirty : bool;
  scratch : Flow.Scratch.t; (* transient masked-key buffer for lookups *)
}

let algorithm = "tss"

let create () =
  {
    by_key = Hashtbl.create 64;
    tuples = Mask.Tbl.create 16;
    ordered = [];
    rank_head = None;
    rank_tail = None;
    dirty = false;
    scratch = Flow.Scratch.create ();
  }

let rank_append t tu =
  tu.rank_prev <- t.rank_tail;
  tu.rank_next <- None;
  (match t.rank_tail with
  | Some tail -> tail.rank_next <- Some tu
  | None -> t.rank_head <- Some tu);
  t.rank_tail <- Some tu

let rank_unlink t tu =
  (match tu.rank_prev with
  | Some p -> p.rank_next <- tu.rank_next
  | None -> t.rank_head <- tu.rank_next);
  (match tu.rank_next with
  | Some n -> n.rank_prev <- tu.rank_prev
  | None -> t.rank_tail <- tu.rank_prev);
  tu.rank_prev <- None;
  tu.rank_next <- None

let rank_promote t tu =
  match t.rank_head with
  | Some head when head == tu -> ()
  | _ ->
      rank_unlink t tu;
      tu.rank_next <- t.rank_head;
      (match t.rank_head with
      | Some head -> head.rank_prev <- Some tu
      | None -> t.rank_tail <- Some tu);
      t.rank_head <- Some tu

let entry_order (a : 'a Entry.t) (b : 'a Entry.t) =
  if Entry.better a b then -1 else if Entry.better b a then 1 else 0

let insert t entry =
  if Hashtbl.mem t.by_key entry.Entry.key then invalid_arg "Tss.insert: duplicate key";
  Hashtbl.add t.by_key entry.Entry.key entry;
  let mask = Mask.intern (Fmatch.mask entry.Entry.fmatch) in
  let tuple =
    match Mask.Tbl.find_opt t.tuples mask with
    | Some tu -> tu
    | None ->
        let tu =
          {
            mask;
            buckets = Flow.Tbl.create 32;
            max_priority = min_int;
            count = 0;
            rank_prev = None;
            rank_next = None;
          }
        in
        Mask.Tbl.add t.tuples mask tu;
        rank_append t tu;
        tu
  in
  let key = Fmatch.pattern entry.Entry.fmatch in
  let existing = Option.value ~default:[] (Flow.Tbl.find_opt tuple.buckets key) in
  Flow.Tbl.replace tuple.buckets key (List.sort entry_order (entry :: existing));
  tuple.count <- tuple.count + 1;
  if entry.Entry.priority > tuple.max_priority then tuple.max_priority <- entry.Entry.priority;
  t.dirty <- true

let recompute_max tuple =
  let m = ref min_int in
  Flow.Tbl.iter
    (fun _ entries ->
      List.iter (fun (e : 'a Entry.t) -> if e.priority > !m then m := e.priority) entries)
    tuple.buckets;
  tuple.max_priority <- !m

let remove t key =
  match Hashtbl.find_opt t.by_key key with
  | None -> false
  | Some entry ->
      Hashtbl.remove t.by_key key;
      let mask = Fmatch.mask entry.Entry.fmatch in
      (match Mask.Tbl.find_opt t.tuples mask with
      | None -> ()
      | Some tuple ->
          let bucket_key = Fmatch.pattern entry.Entry.fmatch in
          (match Flow.Tbl.find_opt tuple.buckets bucket_key with
          | None -> ()
          | Some entries ->
              let remaining = List.filter (fun (e : 'a Entry.t) -> e.key <> key) entries in
              if remaining = [] then Flow.Tbl.remove tuple.buckets bucket_key
              else Flow.Tbl.replace tuple.buckets bucket_key remaining);
          tuple.count <- tuple.count - 1;
          if tuple.count <= 0 then begin
            Mask.Tbl.remove t.tuples mask;
            rank_unlink t tuple
          end
          else if entry.Entry.priority >= tuple.max_priority then recompute_max tuple);
      t.dirty <- true;
      true

let size t = Hashtbl.length t.by_key

let ensure t =
  if t.dirty then begin
    t.ordered <-
      Mask.Tbl.fold (fun _ tu acc -> tu :: acc) t.tuples []
      |> List.sort (fun a b -> compare b.max_priority a.max_priority);
    t.dirty <- false
  end

let lookup t flow =
  ensure t;
  let rec go tuples best probes =
    match tuples with
    | [] -> (best, probes)
    | tuple :: rest -> (
        match best with
        | Some (b : 'a Entry.t) when b.priority > tuple.max_priority -> (best, probes)
        | _ ->
            let probes = probes + 1 in
            let key = Mask.apply_scratch tuple.mask flow t.scratch in
            let candidate =
              match Flow.Tbl.find_opt tuple.buckets key with
              | Some (e :: _) -> Some e
              | Some [] | None -> None
            in
            let best =
              match (best, candidate) with
              | None, c -> c
              | b, None -> b
              | Some b, Some c -> if Entry.better c b then Some c else Some b
            in
            go rest best probes)
  in
  go t.ordered None 0

(* First-match walk over hit-frequency-ranked tuples: sound when entries are
   pairwise disjoint (at most one can match), which Megaflow guarantees by
   construction.  A hit promotes its tuple to the front (O(1) on the
   intrusive list), so hot tuples are probed first — the ranked-subtable
   optimisation of OVS's dpcls. *)
let lookup_first t flow =
  let rec go node probes =
    match node with
    | None -> (None, probes)
    | Some tuple -> (
        let probes = probes + 1 in
        let key = Mask.apply_scratch tuple.mask flow t.scratch in
        match Flow.Tbl.find_opt tuple.buckets key with
        | Some (e :: _) ->
            rank_promote t tuple;
            (Some e, probes)
        | Some [] | None -> go tuple.rank_next probes)
  in
  go t.rank_head 0

(* Replay support for memoised first-match lookups: recompute the probe
   count a live [lookup_first] would pay {e right now} to reach [entry]'s
   tuple (its rank position changes as other flows promote their tuples),
   and apply the same promotion side effect — without re-masking the flow
   or re-probing any bucket.  Sound whenever [entry] is still present and
   entries are pairwise disjoint, even across unrelated inserts/removals:
   the positional walk counts exactly the tuples a live walk would probe
   before the (unique) match (see [Megaflow.lookup_memo]). *)
let replay_first t (entry : 'a Entry.t) =
  match Mask.Tbl.find_opt t.tuples (Fmatch.mask entry.Entry.fmatch) with
  | None -> None
  | Some tuple ->
      let rec pos node probes =
        match node with
        | None -> None
        | Some tu ->
            if tu == tuple then Some (probes + 1) else pos tu.rank_next (probes + 1)
      in
      (match pos t.rank_head 0 with
      | None -> None
      | Some probes ->
          rank_promote t tuple;
          Some probes)

(* Compiled form of [replay_first]: locate the entry's tuple once (one mask
   hash), and return a closure that does only the positional walk and the
   promotion.  The captured tuple object stays the entry's container for as
   long as the entry is in the classifier (entries never migrate between
   tuples), so callers may hold the closure until the entry is removed. *)
let prepare_first t (entry : 'a Entry.t) =
  match Mask.Tbl.find_opt t.tuples (Fmatch.mask entry.Entry.fmatch) with
  | None -> None
  | Some tuple ->
      Some
        (fun () ->
          let rec pos node probes =
            match node with
            | None -> invalid_arg "Tss.prepare_first: tuple left the rank list"
            | Some tu ->
                if tu == tuple then probes + 1 else pos tu.rank_next (probes + 1)
          in
          let probes = pos t.rank_head 0 in
          rank_promote t tuple;
          probes)

let entries t = Hashtbl.fold (fun _ e acc -> e :: acc) t.by_key []

let clear t =
  Hashtbl.reset t.by_key;
  Mask.Tbl.reset t.tuples;
  t.ordered <- [];
  t.rank_head <- None;
  t.rank_tail <- None;
  t.dirty <- false

let tuple_count t = Mask.Tbl.length t.tuples
