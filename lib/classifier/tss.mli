(** Tuple Space Search (Srinivasan, Suri & Varghese, SIGCOMM'99).

    Entries are grouped by mask into tuples; each tuple is a hash table from
    the pre-masked pattern to its best entry.  Lookup probes tuples in
    decreasing max-priority order and stops as soon as the current winner
    strictly out-prioritises every remaining tuple.  Work units = tuples
    probed (the O(M) cost the paper and NuevoMatch target). *)

include Classifier_intf.S

val tuple_count : 'a t -> int
(** Number of distinct masks currently stored. *)

val lookup_first : 'a t -> Gf_flow.Flow.t -> 'a Entry.t option * int
(** First-match walk over hit-frequency-ranked tuples (a matching tuple is
    promoted to the front, like OVS's ranked subtables).  {b Only} correct
    when any matching entry is acceptable to the caller — the Megaflow
    cache's situation, where overlapping entries always agree (every entry
    reproduces the slowpath decision; property-tested).  Misses still probe
    every tuple. *)

val replay_first : 'a t -> 'a Entry.t -> int option
(** Replay a memoised {!lookup_first} hit on [entry]: return the probe
    count a live ranked walk would report now (the entry's tuple rank
    position, which drifts as other flows promote their tuples) and
    promote the tuple, without re-masking or re-probing buckets.  [None]
    if the entry's tuple is gone.  Sound whenever [entry] is still stored
    and entries are pairwise disjoint, even across unrelated
    inserts/removals: the positional walk counts exactly the tuples a
    live walk would probe before the unique match. *)

val prepare_first : 'a t -> 'a Entry.t -> (unit -> int) option
(** Compiled {!replay_first}: resolve the entry's tuple once, returning a
    closure that performs only the positional walk and promotion (no mask
    hash per call).  The closure stays valid exactly as long as [entry]
    remains stored; callers must stop using it once the entry is removed
    (it raises if the tuple has left the rank list). *)
