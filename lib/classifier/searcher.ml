type algo = [ `Linear | `Tss | `Nuevomatch ]

let algo_name = function
  | `Linear -> "linear"
  | `Tss -> "tss"
  | `Nuevomatch -> "nuevomatch"

let algo_of_string = function
  | "linear" -> Some `Linear
  | "tss" -> Some `Tss
  | "nuevomatch" | "nm" -> Some `Nuevomatch
  | _ -> None

type 'a ops = {
  insert : 'a Entry.t -> unit;
  remove : int -> bool;
  size : unit -> int;
  lookup : Gf_flow.Flow.t -> 'a Entry.t option * int;
  lookup_disjoint : Gf_flow.Flow.t -> 'a Entry.t option * int;
  replay_disjoint : 'a Entry.t -> prev_work:int -> int;
  prepare_replay : 'a Entry.t -> (unit -> int) option;
  entries : unit -> 'a Entry.t list;
  clear : unit -> unit;
}

type 'a t = { algo : algo; ops : 'a ops }

let wrap (type p) (module C : Classifier_intf.S) : p ops =
  let c : p C.t = C.create () in
  {
    insert = C.insert c;
    remove = C.remove c;
    size = (fun () -> C.size c);
    lookup = C.lookup c;
    lookup_disjoint = C.lookup c;
    (* Stateless search: with the entry set unchanged, a fresh lookup
       reports the same work as the memoised one and has no side effect
       to reapply. *)
    replay_disjoint = (fun _ ~prev_work -> prev_work);
    (* No per-entry state to compile: callers fall back to the memoised
       work value (guarded by their generation check). *)
    prepare_replay = (fun _ -> None);
    entries = (fun () -> C.entries c);
    clear = (fun () -> C.clear c);
  }

(* TSS gets a dedicated wrapper so disjoint-entry users (the Megaflow cache)
   can use the ranked first-match walk. *)
let wrap_tss (type p) () : p ops =
  let c : p Tss.t = Tss.create () in
  {
    insert = Tss.insert c;
    remove = Tss.remove c;
    size = (fun () -> Tss.size c);
    lookup = Tss.lookup c;
    lookup_disjoint = Tss.lookup_first c;
    replay_disjoint =
      (fun e ~prev_work ->
        match Tss.replay_first c e with Some probes -> probes | None -> prev_work);
    prepare_replay = (fun e -> Tss.prepare_first c e);
    entries = (fun () -> Tss.entries c);
    clear = (fun () -> Tss.clear c);
  }

let create algo =
  let ops =
    match algo with
    | `Linear -> wrap (module Linear)
    | `Tss -> wrap_tss ()
    | `Nuevomatch -> wrap (module Nuevomatch)
  in
  { algo; ops }

let algo t = t.algo
let insert t e = t.ops.insert e
let remove t key = t.ops.remove key
let size t = t.ops.size ()
let lookup t flow = t.ops.lookup flow
let lookup_disjoint t flow = t.ops.lookup_disjoint flow
let replay_disjoint t entry ~prev_work = t.ops.replay_disjoint entry ~prev_work
let prepare_replay t entry = t.ops.prepare_replay entry
let entries t = t.ops.entries ()
let clear t = t.ops.clear ()
