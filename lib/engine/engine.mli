(** The batched streaming datapath engine.

    Replaces spawn-per-run parallel replay with a Snabb-style app graph of
    long-lived domains: a source on the calling domain pulls fixed-size
    packet batches from a {!Gf_workload.Trace.stream}, RSS-shards them
    over bounded SPSC {!Ring}s into per-shard worker domains (each owning
    a private {!Gf_sim.Datapath.t} over a pipeline replica, like OVS PMD
    threads), and merges per-shard metrics deterministically at drain.
    Batches recycle through a pre-allocated pool, so the steady state
    allocates nothing per packet.

    Workers process packets with {!Gf_sim.Datapath.process_memo} — the
    amortising walker that replays per-flow sub-traversal results while
    cache contents are unchanged — and check the telemetry sample cadence
    once per batch instead of once per packet.

    Determinism: demux uses [Multicore.rss_hash flow_id mod domains]
    (identical flow placement to {!Gf_sim.Parallel.shard}), per-shard
    packet order is the stream order, and shard metrics/telemetry merge in
    shard order — so the merged metrics are bit-identical to
    [Parallel.replay ~mode:`Sequential] over the materialised trace, at
    any worker count. *)

val default_batch_size : int
(** 256 packets. *)

val default_ring_depth : int
(** 8 batches per link direction. *)

val replay :
  ?telemetry:Gf_telemetry.Telemetry.config ->
  ?batch_size:int ->
  ?domains:int ->
  ?ring_depth:int ->
  cfg:Gf_sim.Datapath.config ->
  Gf_pipeline.Pipeline.t ->
  Gf_workload.Trace.stream ->
  Gf_sim.Parallel.result
(** Drain [stream] through the engine ([batch_size] defaults to
    {!default_batch_size}, [domains] to 1, [ring_depth] to
    {!default_ring_depth}).  [domains = 1] runs inline on the calling
    domain — no spawns, no rings — which is the honest single-core
    configuration throughput benchmarks compare against the per-packet
    walker.  [telemetry] creates a private sink per worker and merges them
    in shard order after the join.  The result's [mode] is [`Streamed];
    [wall_seconds] spans pull-to-join, [critical_path_seconds] is the
    slowest worker. *)
