(* Bounded single-producer single-consumer ring buffer.

   Head and tail are monotonically increasing packet counts (63-bit ints
   never wrap at any plausible rate); the slot index is [count land mask].
   Each side owns one atomic and keeps a cached snapshot of the other
   side's, so the steady-state fast path touches only its own cache line:
   the producer re-reads [head] only when the ring looks full, the
   consumer re-reads [tail] only when it looks empty (the classic SPSC
   optimisation; see Snabb's link.c / Rigtorp's SPSC queue).

   Publication safety: the slot write happens before the [Atomic.set] that
   makes it visible, and the consumer reads the slot only after an
   [Atomic.get] that observed the bump — the standard safe-publication
   idiom under the OCaml memory model.  [Atomic.make_contended] would be
   the 5.2+ way to keep the two atomics off one cache line; on 5.1 we
   allocate spacer blocks between them (best effort). *)

type 'a t = {
  slots : 'a option array;
  mask : int;
  tail : int Atomic.t;  (* producer-owned: next write count *)
  head : int Atomic.t;  (* consumer-owned: next read count *)
  mutable cached_head : int;  (* producer's snapshot of [head] *)
  mutable cached_tail : int;  (* consumer's snapshot of [tail] *)
}

(* A cache line of spacing (8 words) between consecutive atomics. *)
let spacer () = ignore (Sys.opaque_identity (Array.make 8 0))

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  let cap = ref 1 in
  while !cap < capacity do
    cap := !cap * 2
  done;
  let tail = Atomic.make 0 in
  spacer ();
  let head = Atomic.make 0 in
  spacer ();
  { slots = Array.make !cap None; mask = !cap - 1; tail; head; cached_head = 0;
    cached_tail = 0 }

let capacity t = Array.length t.slots

(* Approximate under concurrency; exact when the other side is quiescent. *)
let length t = Atomic.get t.tail - Atomic.get t.head

let try_push t v =
  let tail = Atomic.get t.tail in
  let full = tail - t.cached_head >= Array.length t.slots in
  let full =
    if not full then false
    else begin
      t.cached_head <- Atomic.get t.head;
      tail - t.cached_head >= Array.length t.slots
    end
  in
  if full then false
  else begin
    t.slots.(tail land t.mask) <- Some v;
    Atomic.set t.tail (tail + 1);
    true
  end

let try_pop t =
  let head = Atomic.get t.head in
  let empty = head >= t.cached_tail in
  let empty =
    if not empty then false
    else begin
      t.cached_tail <- Atomic.get t.tail;
      head >= t.cached_tail
    end
  in
  if empty then None
  else begin
    let i = head land t.mask in
    let v = t.slots.(i) in
    (* Drop the ring's reference so the value's lifetime is the
       consumer's, not the slot's next-overwrite time. *)
    t.slots.(i) <- None;
    Atomic.set t.head (head + 1);
    v
  end

(* Blocking waits: spin briefly (the peer is usually mid-batch), then
   sleep-poll.  The sleep matters on hosts with fewer cores than domains —
   a pure spin-wait would burn the very timeslice the peer needs to make
   progress. *)
let spin_budget = 512
let sleep_s = 0.0002

let push t v =
  let rec go spins =
    if not (try_push t v) then
      if spins < spin_budget then begin
        Domain.cpu_relax ();
        go (spins + 1)
      end
      else begin
        Unix.sleepf sleep_s;
        go spins
      end
  in
  go 0

let pop t =
  let rec go spins =
    match try_pop t with
    | Some v -> v
    | None ->
        if spins < spin_budget then begin
          Domain.cpu_relax ();
          go (spins + 1)
        end
        else begin
          Unix.sleepf sleep_s;
          go spins
        end
  in
  go 0
