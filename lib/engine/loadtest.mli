(** packetblaster-style SLO load test: sustained fixed-rate offered load
    through a single-server queue in front of the datapath, judged
    against a service-level objective window by window.

    Packet [n] of the stream arrives at [n / rate] seconds.  Service
    time is the datapath's modelled latency for the packet; a packet
    whose queueing delay would exceed the budget is tail-dropped and
    never reaches the datapath (a bounded rx ring under overload).
    Sojourn = queueing delay + service.  After [warmup] offered packets,
    [windows] consecutive windows of [window] offered packets each are
    measured: sojourn p50/p99/p99.9 and mean, drop rate, and the
    window's hardware hit rate, each checked against the {!slo}.

    Deterministic: no wall clock — the report is a pure function of
    (stream, rate, budget, window layout), so gates built on it are
    reproducible in CI. *)

type slo = {
  slo_p50_us : float;  (** sojourn median bound, microseconds *)
  slo_p99_us : float;
  slo_p999_us : float;
  slo_drop_rate : float;  (** dropped / offered bound per window *)
  slo_hw_hit_rate : float;  (** hardware hits / processed floor per window *)
}

val default_slo : slo
(** p50 <= 5 us, p99 <= 500 us, p99.9 <= 2000 us, drop rate <= 1%,
    hardware hit rate >= 50%. *)

type window = {
  w_index : int;
  w_offered : int;
  w_processed : int;
  w_dropped : int;
  w_drop_rate : float;
  w_mean_us : float;
  w_p50_us : float;
  w_p99_us : float;
  w_p999_us : float;
  w_hw_hit_rate : float;
  w_truncated : bool;
      (** The stream ran dry before the window filled ([w_offered] short
          of the configured window size): its quantiles are under-sampled,
          so the window is reported but excluded from SLO gating. *)
  w_violations : string list;
      (** One ["<metric> <observed> <cmp> <bound>"] line per violated
          objective; empty iff the window met the SLO.  Computed for
          truncated windows too (diagnostics), but never gated. *)
}

type report = {
  rate_pps : float;
  warmup : int;
  window_packets : int;
  queue_budget_us : float;
  slo : slo;
  preset : string;  (** Hierarchy preset name the run used. *)
  engine : string;  (** Replay engine flavour ("memo"). *)
  windows : window list;
  total_offered : int;
  total_processed : int;
  total_dropped : int;
  pass : bool;
      (** Every complete (non-truncated) measured window met every
          objective; [false] when no complete window was measured. *)
}

val run :
  ?queue_budget_us:float ->
  ?warmup:int ->
  ?window:int ->
  ?windows:int ->
  ?telemetry:Gf_telemetry.Telemetry.t ->
  ?controller:(Gf_sim.Datapath.t -> window -> unit) ->
  rate:float ->
  slo:slo ->
  Gf_sim.Datapath.config ->
  Gf_pipeline.Pipeline.t ->
  Gf_workload.Trace.stream ->
  report
(** Defaults: [queue_budget_us = 500], [warmup = 50_000],
    [window = 100_000], [windows = 5].  The stream must supply
    [warmup + windows * window] packets; if it runs dry early, the final
    partial window is reported with [w_truncated = true] and excluded
    from the gate; [pass] is [false] when no complete window was
    measured.  [telemetry] is passed through to the datapath (the
    loadtest then exercises the passive pull path per packet).

    [controller] is the adaptive-control actuation hook: it is invoked
    once per window close with the live datapath and the just-measured
    window — control cadence == measurement cadence — plus once when the
    warmup span ends, with a synthetic window of index [-1] measuring
    the warmup (never reported, never gated) so a controller can steer
    before window 0 is judged.  The hook may mutate datapath knobs
    ([Datapath.set_admission] / [set_evict_policy] /
    [set_level_capacity]); firing points are a pure function of the
    stream position, so a hook that never acts leaves the report
    bit-identical to a run without one. *)

val write_jsonl :
  ?meta:(string * Gf_util.Json.t) list ->
  ?extra:Gf_util.Json.t list ->
  out_channel ->
  report ->
  unit
(** One [loadtest_meta] line ([meta] pairs prepended; always carries the
    [commit] hash of the measuring tree, the [preset] name and the
    [engine] flavour), one [loadtest_window] line per window, then any
    [extra] lines (e.g. [controller_action] records from [Gf_control]),
    then one [loadtest_summary] line carrying the machine-readable
    pass/fail gate. *)
