(* packetblaster-style SLO load test: offer the datapath a sustained
   fixed-rate packet stream through a single-server queue and judge the
   observed sojourn latencies / drop rate / hardware hit rate against a
   service-level objective, window by window.

   The queue model is the textbook deterministic M/D/1-ish reduction:
   packet [n] arrives at [n / rate] seconds; service starts at
   [max (arrival, server_free)]; the modelled datapath latency of the
   packet (microseconds, from [Datapath.process_memo] at the arrival
   time) is its service time.  A packet whose queueing delay would
   exceed [queue_budget_us] is dropped at the tail and never reaches the
   datapath — exactly what a bounded NIC rx ring does under overload.
   Sojourn = queueing delay + service.

   Determinism: the whole run is a pure function of (stream, rate,
   budget, window layout) — no wall clock anywhere — so SLO gates built
   on it are reproducible in CI. *)

module Datapath = Gf_sim.Datapath
module Metrics = Gf_sim.Metrics
module Histogram = Gf_telemetry.Histogram
module Trace = Gf_workload.Trace
module Json = Gf_util.Json

type slo = {
  slo_p50_us : float;
  slo_p99_us : float;
  slo_p999_us : float;
  slo_drop_rate : float;
  slo_hw_hit_rate : float;
}

let default_slo =
  {
    slo_p50_us = 5.0;
    slo_p99_us = 500.0;
    slo_p999_us = 2000.0;
    slo_drop_rate = 0.01;
    slo_hw_hit_rate = 0.5;
  }

type window = {
  w_index : int;
  w_offered : int;
  w_processed : int;
  w_dropped : int;
  w_drop_rate : float;
  w_mean_us : float;
  w_p50_us : float;
  w_p99_us : float;
  w_p999_us : float;
  w_hw_hit_rate : float;  (* hardware hits / processed, this window *)
  w_truncated : bool;
      (* the stream ran dry before the window filled: its quantiles are
         under-sampled, so it is reported but excluded from SLO gating *)
  w_violations : string list;
}

type report = {
  rate_pps : float;
  warmup : int;
  window_packets : int;
  queue_budget_us : float;
  slo : slo;
  preset : string;
  engine : string;
  windows : window list;
  total_offered : int;
  total_processed : int;
  total_dropped : int;
  pass : bool;
}

(* Stamp reports with the code that produced them, so an archived
   loadtest JSONL is traceable to a commit; runs outside a work tree
   degrade to "unknown" rather than failing. *)
let git_commit () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    match (Unix.close_process_in ic, line) with
    | Unix.WEXITED 0, s when s <> "" -> s
    | _ -> "unknown"
  with _ -> "unknown"

(* SLO checks for one measurement window; violation strings are
   machine-greppable "<metric> <observed> <cmp> <bound>". *)
let violations slo w =
  let out = ref [] in
  let above name v bound =
    if v > bound then out := Printf.sprintf "%s %.3f > %.3f" name v bound :: !out
  and below name v bound =
    if v < bound then out := Printf.sprintf "%s %.3f < %.3f" name v bound :: !out
  in
  above "p50_us" w.w_p50_us slo.slo_p50_us;
  above "p99_us" w.w_p99_us slo.slo_p99_us;
  above "p999_us" w.w_p999_us slo.slo_p999_us;
  above "drop_rate" w.w_drop_rate slo.slo_drop_rate;
  below "hw_hit_rate" w.w_hw_hit_rate slo.slo_hw_hit_rate;
  List.rev !out

let run ?(queue_budget_us = 500.0) ?(warmup = 50_000) ?(window = 100_000)
    ?(windows = 5) ?telemetry ?controller ~rate ~slo cfg pipeline stream =
  if rate <= 0.0 then invalid_arg "Loadtest.run: rate must be positive";
  if warmup < 0 then invalid_arg "Loadtest.run: warmup must be non-negative";
  if window < 1 then invalid_arg "Loadtest.run: window must be positive";
  if windows < 1 then invalid_arg "Loadtest.run: windows must be positive";
  let dp = Datapath.create ?telemetry cfg pipeline in
  let m = Datapath.metrics dp in
  let batch = 1024 in
  let times = Array.make batch 0.0 in
  let flow_ids = Array.make batch 0 in
  let flows = Array.make batch Gf_flow.Flow.zero in
  let budget_s = queue_budget_us *. 1e-6 in
  let server_free = ref 0.0 in
  let offered = ref 0 (* total packets offered, warmup included *) in
  let dropped_total = ref 0 in
  let processed_total = ref 0 in
  (* Current measurement window; index -1 while warming up — the warmup
     span is measured like a window (its statistics feed the controller,
     never the report or the gate) so a controller can already steer
     before window 0 is judged.  The sojourn histogram is per window
     (quantiles are window statistics), allocated fresh at each window
     open — windows are few, packets are not. *)
  let hist = ref (Histogram.create ()) in
  let w_index = ref (-1) in
  let w_offered = ref 0 in
  let w_dropped = ref 0 in
  let w_processed = ref 0 in
  let w_hw_hits0 = ref 0 in
  let acc = ref [] in
  (* Close the current span: build its window record, append it to the
     report when it is a real measurement window (index >= 0), and fire
     the controller hook — control cadence == measurement cadence, and
     both are pure functions of the stream position, so attaching a
     controller changes nothing about when datapath state is read. *)
  let close_window () =
    if !w_offered > 0 then begin
      let h = !hist in
      let q f = if Histogram.count h = 0 then 0.0 else f h in
      let processed = !w_processed in
      let hw_delta = m.Metrics.hw_hits - !w_hw_hits0 in
      let w =
        {
          w_index = !w_index;
          w_offered = !w_offered;
          w_processed = processed;
          w_dropped = !w_dropped;
          w_drop_rate = float_of_int !w_dropped /. float_of_int !w_offered;
          w_mean_us = Histogram.mean h;
          w_p50_us = q Histogram.p50;
          w_p99_us = q Histogram.p99;
          w_p999_us = q Histogram.p999;
          w_hw_hit_rate =
            (if processed = 0 then 0.0
             else float_of_int hw_delta /. float_of_int processed);
          w_truncated = !w_index >= 0 && !w_offered < window;
          w_violations = [];
        }
      in
      let w = { w with w_violations = violations slo w } in
      if !w_index >= 0 then acc := w :: !acc;
      match controller with Some f -> f dp w | None -> ()
    end
  in
  let open_window () =
    incr w_index;
    w_offered := 0;
    w_dropped := 0;
    w_processed := 0;
    w_hw_hits0 := m.Metrics.hw_hits;
    hist := Histogram.create ()
  in
  let total_budget = warmup + (windows * window) in
  let continue = ref true in
  while !continue do
    let k = Trace.fill stream ~times ~flow_ids ~flows ~max:batch in
    if k = 0 then continue := false
    else
      for i = 0 to k - 1 do
        if !offered < total_budget then begin
          let in_measure = !offered >= warmup in
          if in_measure && (!offered - warmup) mod window = 0 then begin
            close_window ();
            open_window ()
          end;
          let arrival = float_of_int !offered /. rate in
          incr offered;
          incr w_offered;
          let qdelay = !server_free -. arrival in
          let qdelay = if qdelay > 0.0 then qdelay else 0.0 in
          if qdelay > budget_s then begin
            (* Tail drop: the packet never reaches the datapath. *)
            incr dropped_total;
            incr w_dropped
          end
          else begin
            let _, _, lat_us =
              Datapath.process_memo dp ~now:arrival ~flow_id:flow_ids.(i)
                flows.(i)
            in
            server_free := arrival +. qdelay +. (lat_us *. 1e-6);
            incr processed_total;
            incr w_processed;
            Histogram.record !hist ((qdelay *. 1e6) +. lat_us)
          end
        end
      done
  done;
  close_window ();
  ignore (Datapath.finalize dp ~time:(float_of_int !offered /. rate));
  let ws = List.rev !acc in
  (* Truncated windows (the stream ran dry mid-window) are reported but
     not gated: their quantiles are under-sampled and a p99 over a
     handful of packets can flip the verdict either way. *)
  let gated = List.filter (fun w -> not w.w_truncated) ws in
  {
    rate_pps = rate;
    warmup;
    window_packets = window;
    queue_budget_us;
    slo;
    preset = cfg.Datapath.name;
    engine = "memo";
    windows = ws;
    total_offered = !offered;
    total_processed = !processed_total;
    total_dropped = !dropped_total;
    pass = gated <> [] && List.for_all (fun w -> w.w_violations = []) gated;
  }

(* ------------------------------- output -------------------------------- *)

let meta_json ?(meta = []) r =
  Json.Obj
    ((("type", Json.Str "loadtest_meta") :: meta)
    @ [
        ("commit", Json.Str (git_commit ()));
        ("preset", Json.Str r.preset);
        ("engine", Json.Str r.engine);
        ("rate_pps", Json.Float r.rate_pps);
        ("warmup", Json.Int r.warmup);
        ("window", Json.Int r.window_packets);
        ("windows", Json.Int (List.length r.windows));
        ("queue_budget_us", Json.Float r.queue_budget_us);
        ("slo_p50_us", Json.Float r.slo.slo_p50_us);
        ("slo_p99_us", Json.Float r.slo.slo_p99_us);
        ("slo_p999_us", Json.Float r.slo.slo_p999_us);
        ("slo_drop_rate", Json.Float r.slo.slo_drop_rate);
        ("slo_hw_hit_rate", Json.Float r.slo.slo_hw_hit_rate);
      ])

let window_json w =
  Json.Obj
    [
      ("type", Json.Str "loadtest_window");
      ("index", Json.Int w.w_index);
      ("offered", Json.Int w.w_offered);
      ("processed", Json.Int w.w_processed);
      ("dropped", Json.Int w.w_dropped);
      ("drop_rate", Json.Float w.w_drop_rate);
      ("mean_us", Json.Float w.w_mean_us);
      ("p50_us", Json.Float w.w_p50_us);
      ("p99_us", Json.Float w.w_p99_us);
      ("p999_us", Json.Float w.w_p999_us);
      ("hw_hit_rate", Json.Float w.w_hw_hit_rate);
      ("truncated", Json.Bool w.w_truncated);
      ("violations", Json.List (List.map (fun v -> Json.Str v) w.w_violations));
    ]

let summary_json r =
  let nviol =
    List.fold_left (fun a w -> a + List.length w.w_violations) 0 r.windows
  in
  let ntrunc =
    List.fold_left (fun a w -> a + if w.w_truncated then 1 else 0) 0 r.windows
  in
  Json.Obj
    [
      ("type", Json.Str "loadtest_summary");
      ("pass", Json.Bool r.pass);
      ("windows", Json.Int (List.length r.windows));
      ("truncated_windows", Json.Int ntrunc);
      ("total_offered", Json.Int r.total_offered);
      ("total_processed", Json.Int r.total_processed);
      ("total_dropped", Json.Int r.total_dropped);
      ("violations", Json.Int nviol);
    ]

let write_jsonl ?meta ?(extra = []) oc r =
  let line j = output_string oc (Json.to_string j ^ "\n") in
  line (meta_json ?meta r);
  List.iter (fun w -> line (window_json w)) r.windows;
  List.iter line extra;
  line (summary_json r)
