(** Fixed-size packet batches in struct-of-arrays layout.

    Batches are allocated once per engine run (a small pool per worker
    link) and recycled over the return ring, so the steady-state datapath
    allocates nothing per packet.  Only the first [len] entries of each
    array are meaningful. *)

type t = {
  times : float array;
  flow_ids : int array;
  flows : Gf_flow.Flow.t array;
  mutable len : int;  (** valid prefix length; [-1] marks end-of-stream *)
}

val create : size:int -> t
(** A zeroed batch of capacity [size] ([len = 0]). *)

val size : t -> int
(** Capacity (array length), not current [len]. *)

val poison : t
(** The shared end-of-stream marker ([len = -1], empty arrays).  Pushed by
    the source after the last real batch; never recycled. *)

val is_poison : t -> bool
