(* A fixed-size packet batch in struct-of-arrays layout, allocated once
   and recycled through the engine's batch pool — the steady state moves
   no per-packet heap at all.  [len = -1] is the end-of-stream poison the
   source pushes after the last real batch. *)

type t = {
  times : float array;
  flow_ids : int array;
  flows : Gf_flow.Flow.t array;
  mutable len : int;
}

let create ~size =
  if size <= 0 then invalid_arg "Batch.create: size must be positive";
  {
    times = Array.make size 0.0;
    flow_ids = Array.make size 0;
    flows = Array.make size Gf_flow.Flow.zero;
    len = 0;
  }

let size b = Array.length b.times
let poison = { times = [||]; flow_ids = [||]; flows = [||]; len = -1 }
let is_poison b = b.len < 0
