(** Bounded single-producer single-consumer ring buffer — the links of the
    streaming engine's app graph (Snabb-style).

    Exactly one domain may push and exactly one may pop (they can be the
    same domain).  The fast path is wait-free and allocation-free: each
    side owns one atomic index and caches a snapshot of the other side's,
    so steady-state pushes and pops touch a single shared cache line only
    when the ring looks full/empty. *)

type 'a t

val create : capacity:int -> 'a t
(** [capacity] is rounded up to the next power of two. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Occupancy; approximate while the other side is concurrently active. *)

val try_push : 'a t -> 'a -> bool
(** [false] if the ring is full.  Producer side only. *)

val try_pop : 'a t -> 'a option
(** [None] if the ring is empty.  Consumer side only. *)

val push : 'a t -> 'a -> unit
(** Blocking {!try_push}: spins briefly, then sleep-polls (~0.2 ms) so an
    oversubscribed host's peer domain gets the timeslice it needs. *)

val pop : 'a t -> 'a
(** Blocking {!try_pop}; same wait strategy as {!push}. *)
