(* Push-based streaming engine (Snabb-style app graph).

   Topology:

     source (calling domain)
       --- demux by Multicore.rss_hash flow_id mod domains ---
     [ SPSC fwd ring ]  -> worker domain w: Datapath.process_memo per packet
     [ SPSC recycle ring ] <- processed batches return for refilling

   The source pulls packet batches from a [Trace.stream], scatters them
   into per-worker open batches and pushes full batches downstream; each
   long-lived worker domain owns a private [Datapath.t] over a
   [Pipeline.copy] replica (per-core caches, like OVS PMD threads) and
   processes whole batches between ring operations.  Batches come from a
   fixed per-link pool and circulate source -> fwd -> worker -> recycle ->
   source, so the steady state allocates nothing per packet.

   Determinism: the demux hash and per-shard packet order are exactly
   [Parallel.shard]'s, each worker is deterministic, and shard metrics are
   merged in shard order — so for a given stream the merged metrics are
   bit-identical to [Parallel.replay ~mode:`Sequential] over the
   materialised trace, at any worker count (property-tested). *)

module Trace = Gf_workload.Trace
module Pipeline = Gf_pipeline.Pipeline
module Telemetry = Gf_telemetry.Telemetry
module Datapath = Gf_sim.Datapath
module Metrics = Gf_sim.Metrics
module Multicore = Gf_sim.Multicore
module Parallel = Gf_sim.Parallel

let default_batch_size = 256
let default_ring_depth = 8

type link = { fwd : Batch.t Ring.t; recycle : Batch.t Ring.t }

(* Per-batch amortisation: one tight loop over the batch with no
   per-packet closure dispatch, the slowpath-cycle census folded in, and
   the telemetry sample-cadence check hoisted out of the per-packet path
   (checked once per batch — the engine's hot-path telemetry saving). *)
let process_batch dp ~flow_cycles (b : Batch.t) =
  let m = Datapath.metrics dp in
  for i = 0 to b.Batch.len - 1 do
    let before = Metrics.total_cycles m in
    let outcome, _terminal, _latency =
      Datapath.process_memo dp ~now:b.Batch.times.(i)
        ~flow_id:b.Batch.flow_ids.(i) b.Batch.flows.(i)
    in
    match outcome with
    | Datapath.Slowpath ->
        let fid = b.Batch.flow_ids.(i) in
        Hashtbl.replace flow_cycles fid
          (Metrics.total_cycles m - before
          + Option.value ~default:0 (Hashtbl.find_opt flow_cycles fid))
    | Datapath.Hw_hit | Datapath.Sw_hit -> ()
  done;
  (* Per-batch sampler tick: the pull side of the passive telemetry.
     [maybe_sample] flushes the datapath's passive rings and pushes a
     time-series sample when the batch crossed the cadence, so histogram
     bucketing and recorder sampling run here, not in the packet loop. *)
  if b.Batch.len > 0 then
    Datapath.maybe_sample dp ~time:b.Batch.times.(b.Batch.len - 1)

let shard_run ~domain_id ~t0 dp ~flow_cycles ~last_time =
  let metrics = Datapath.finalize dp ~time:last_time in
  {
    Parallel.domain_id;
    packets = metrics.Metrics.packets;
    metrics;
    wall_seconds = Unix.gettimeofday () -. t0;
    flow_cycles;
  }

(* domains = 1: no rings, no spawns — the calling domain pulls straight
   from the stream into one reused batch.  This is the honest single-core
   configuration the throughput benchmarks compare against the per-packet
   walker. *)
let run_inline ~batch_size dp stream =
  let b = Batch.create ~size:batch_size in
  let flow_cycles = Hashtbl.create 1024 in
  let last_time = ref 0.0 in
  let t0 = Unix.gettimeofday () in
  let rec loop () =
    let k =
      Trace.fill stream ~times:b.Batch.times ~flow_ids:b.Batch.flow_ids
        ~flows:b.Batch.flows ~max:(Batch.size b)
    in
    if k > 0 then begin
      b.Batch.len <- k;
      last_time := b.Batch.times.(k - 1);
      process_batch dp ~flow_cycles b;
      loop ()
    end
  in
  loop ();
  shard_run ~domain_id:0 ~t0 dp ~flow_cycles ~last_time:!last_time

let worker ~domain_id link dp =
  let flow_cycles = Hashtbl.create 1024 in
  let last_time = ref 0.0 in
  let t0 = Unix.gettimeofday () in
  let rec loop () =
    let b = Ring.pop link.fwd in
    if not (Batch.is_poison b) then begin
      if b.Batch.len > 0 then last_time := b.Batch.times.(b.Batch.len - 1);
      process_batch dp ~flow_cycles b;
      b.Batch.len <- 0;
      Ring.push link.recycle b;
      loop ()
    end
  in
  loop ();
  shard_run ~domain_id ~t0 dp ~flow_cycles ~last_time:!last_time

(* The source: pull a staging batch from the stream, scatter by RSS hash
   into per-worker open batches, push full ones downstream, and poison
   every link once the stream runs dry.  Runs on the calling domain. *)
let run_source ~batch_size links stream =
  let domains = Array.length links in
  let times = Array.make batch_size 0.0 in
  let flow_ids = Array.make batch_size 0 in
  let flows = Array.make batch_size Gf_flow.Flow.zero in
  let open_batches = Array.map (fun l -> Ring.pop l.recycle) links in
  let rec loop () =
    let k = Trace.fill stream ~times ~flow_ids ~flows ~max:batch_size in
    if k > 0 then begin
      for i = 0 to k - 1 do
        let w = Multicore.rss_hash flow_ids.(i) mod domains in
        let b = open_batches.(w) in
        b.Batch.times.(b.Batch.len) <- times.(i);
        b.Batch.flow_ids.(b.Batch.len) <- flow_ids.(i);
        b.Batch.flows.(b.Batch.len) <- flows.(i);
        b.Batch.len <- b.Batch.len + 1;
        if b.Batch.len = Batch.size b then begin
          Ring.push links.(w).fwd b;
          open_batches.(w) <- Ring.pop links.(w).recycle
        end
      done;
      loop ()
    end
  in
  loop ();
  Array.iteri
    (fun w b ->
      if b.Batch.len > 0 then Ring.push links.(w).fwd b;
      Ring.push links.(w).fwd Batch.poison)
    open_batches

let replay ?telemetry ?(batch_size = default_batch_size)
    ?(domains = 1) ?(ring_depth = default_ring_depth) ~cfg pipeline stream =
  if batch_size <= 0 then invalid_arg "Engine.replay: batch_size must be positive";
  if domains <= 0 then invalid_arg "Engine.replay: domains must be positive";
  let shard_telemetry =
    match telemetry with
    | None -> [||]
    | Some config ->
        Array.init domains (fun _ -> Telemetry.create ~config ())
  in
  let telemetry_of i =
    if Array.length shard_telemetry = 0 then None else Some shard_telemetry.(i)
  in
  (* Replicate the pipeline in the parent, before any domain runs (table
     lookups mutate scratch buffers and lazily-built indexes). *)
  let datapaths =
    Array.init domains (fun i ->
        Datapath.create ?telemetry:(telemetry_of i) cfg (Pipeline.copy pipeline))
  in
  let t0 = Unix.gettimeofday () in
  let shards =
    if domains = 1 then [| run_inline ~batch_size datapaths.(0) stream |]
    else begin
      let links =
        Array.init domains (fun _ ->
            let fwd = Ring.create ~capacity:ring_depth in
            let recycle = Ring.create ~capacity:(ring_depth + 1) in
            for _ = 1 to ring_depth do
              Ring.push recycle (Batch.create ~size:batch_size)
            done;
            { fwd; recycle })
      in
      let handles =
        Array.init domains (fun i ->
            Domain.spawn (fun () -> worker ~domain_id:i links.(i) datapaths.(i)))
      in
      run_source ~batch_size links stream;
      Array.map Domain.join handles
    end
  in
  let wall_seconds = Unix.gettimeofday () -. t0 in
  let critical_path_seconds =
    Array.fold_left
      (fun acc (s : Parallel.shard_run) -> Float.max acc s.Parallel.wall_seconds)
      0.0 shards
  in
  let merged =
    Metrics.aggregate
      (List.map (fun (s : Parallel.shard_run) -> s.Parallel.metrics)
         (Array.to_list shards))
  in
  let merged_telemetry =
    match telemetry with
    | None -> None
    | Some config ->
        let into = Telemetry.create ~config () in
        Array.iter (fun tel -> Telemetry.merge ~into tel) shard_telemetry;
        Some into
  in
  {
    Parallel.domains;
    mode = `Streamed;
    shards;
    merged;
    telemetry = merged_telemetry;
    wall_seconds;
    critical_path_seconds;
  }
