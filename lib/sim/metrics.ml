module Histogram = Gf_telemetry.Histogram

(* Per-level counters, keyed by the cache level's name.  Levels are
   registered by the datapath at creation time (in walk order) and merged
   across shards by name.  The latency histogram is always on: recording is
   allocation-free (bucket increments), and keeping it in Metrics — rather
   than behind the optional telemetry sink — is what lets [pp_levels] and
   the time-series sampler report per-level tail quantiles whose counts
   match these counters exactly. *)
type level = {
  level_name : string;
  mutable hits : int;
  mutable misses : int;
  mutable installs : int;
  mutable shared : int;
  mutable rejected : int;
  mutable evictions : int;
  mutable pressure_evictions : int;
  mutable deferred : int;
      (* hardware installs withheld by the admission policy (flow not yet
         hot enough for a slot) *)
  mutable demotions : int;
      (* entries evicted by the admission re-partition sweep (flow went
         cold); also included in [evictions] *)
  mutable work : int;
  mutable latency_us : float;
  mutable occupancy_peak : int;
  mutable occupancy_final : int;
  latency_hist : Histogram.t;  (* per-hit latency at this level *)
}

let level_create name =
  {
    level_name = name;
    hits = 0;
    misses = 0;
    installs = 0;
    shared = 0;
    rejected = 0;
    evictions = 0;
    pressure_evictions = 0;
    deferred = 0;
    demotions = 0;
    work = 0;
    latency_us = 0.0;
    occupancy_peak = 0;
    occupancy_final = 0;
    latency_hist = Gf_nic.Latency.latency_histogram ();
  }

type t = {
  mutable packets : int;
  mutable hw_hits : int;
  mutable sw_hits : int;
  mutable slowpaths : int;
  mutable drops : int;
  mutable hw_installs : int;
  mutable hw_shared : int;
  mutable hw_rejected : int;
  mutable hw_evictions : int;
  mutable hw_pressure_evictions : int;
  mutable hw_deferred : int;
  mutable hw_demotions : int;
  latency : Gf_util.Stats.Acc.t;
  mutable cycles_userspace : int;
  mutable cycles_partition : int;
  mutable cycles_rulegen : int;
  mutable cycles_sw_search : int;
  mutable hw_entries_peak : int;
  mutable hw_entries_final : int;
  latency_hist : Histogram.t;  (* end-to-end per-packet latency *)
  mutable levels : level list;  (* walk order *)
}

let create () =
  {
    packets = 0;
    hw_hits = 0;
    sw_hits = 0;
    slowpaths = 0;
    drops = 0;
    hw_installs = 0;
    hw_shared = 0;
    hw_rejected = 0;
    hw_evictions = 0;
    hw_pressure_evictions = 0;
    hw_deferred = 0;
    hw_demotions = 0;
    latency = Gf_util.Stats.Acc.create ();
    cycles_userspace = 0;
    cycles_partition = 0;
    cycles_rulegen = 0;
    cycles_sw_search = 0;
    hw_entries_peak = 0;
    hw_entries_final = 0;
    latency_hist = Gf_nic.Latency.latency_histogram ();
    levels = [];
  }

let levels t = t.levels

let find_level t name =
  List.find_opt (fun l -> String.equal l.level_name name) t.levels

let level t name =
  match find_level t name with
  | Some l -> l
  | None ->
      let l = level_create name in
      t.levels <- t.levels @ [ l ];
      l

let level_hit_rate (l : level) =
  let consulted = l.hits + l.misses in
  if consulted = 0 then 0.0 else float_of_int l.hits /. float_of_int consulted

let merge_level ~into:(into : level) (src : level) =
  Histogram.merge ~into:into.latency_hist src.latency_hist;
  into.hits <- into.hits + src.hits;
  into.misses <- into.misses + src.misses;
  into.installs <- into.installs + src.installs;
  into.shared <- into.shared + src.shared;
  into.rejected <- into.rejected + src.rejected;
  into.evictions <- into.evictions + src.evictions;
  into.pressure_evictions <- into.pressure_evictions + src.pressure_evictions;
  into.deferred <- into.deferred + src.deferred;
  into.demotions <- into.demotions + src.demotions;
  into.work <- into.work + src.work;
  into.latency_us <- into.latency_us +. src.latency_us;
  into.occupancy_peak <- into.occupancy_peak + src.occupancy_peak;
  into.occupancy_final <- into.occupancy_final + src.occupancy_final

(* Fold [src] into [into].  Counters are additive.  Occupancy figures are
   summed too: per-domain datapaths own disjoint caches, so the aggregate
   footprint at any instant is the sum (peaks are summed pessimistically —
   per-shard peaks need not coincide in time).  Per-level counters merge by
   level name, appending levels [into] has not seen. *)
let merge ~into src =
  into.packets <- into.packets + src.packets;
  into.hw_hits <- into.hw_hits + src.hw_hits;
  into.sw_hits <- into.sw_hits + src.sw_hits;
  into.slowpaths <- into.slowpaths + src.slowpaths;
  into.drops <- into.drops + src.drops;
  into.hw_installs <- into.hw_installs + src.hw_installs;
  into.hw_shared <- into.hw_shared + src.hw_shared;
  into.hw_rejected <- into.hw_rejected + src.hw_rejected;
  into.hw_evictions <- into.hw_evictions + src.hw_evictions;
  into.hw_pressure_evictions <- into.hw_pressure_evictions + src.hw_pressure_evictions;
  into.hw_deferred <- into.hw_deferred + src.hw_deferred;
  into.hw_demotions <- into.hw_demotions + src.hw_demotions;
  Gf_util.Stats.Acc.merge ~into:into.latency src.latency;
  Histogram.merge ~into:into.latency_hist src.latency_hist;
  into.cycles_userspace <- into.cycles_userspace + src.cycles_userspace;
  into.cycles_partition <- into.cycles_partition + src.cycles_partition;
  into.cycles_rulegen <- into.cycles_rulegen + src.cycles_rulegen;
  into.cycles_sw_search <- into.cycles_sw_search + src.cycles_sw_search;
  into.hw_entries_peak <- into.hw_entries_peak + src.hw_entries_peak;
  into.hw_entries_final <- into.hw_entries_final + src.hw_entries_final;
  List.iter (fun sl -> merge_level ~into:(level into sl.level_name) sl) src.levels

let aggregate ms =
  let t = create () in
  List.iter (fun m -> merge ~into:t m) ms;
  t

(* Ratio accessors return 0.0 (not nan) on zero-packet / zero-work runs:
   downstream JSON reports and the telemetry samplers want finite numbers,
   and a run that did nothing has a 0% hit rate and zero cost by any
   sensible reading.  [Stats.Acc.mean] itself still reports nan on empty —
   only these derived views are guarded. *)
let hw_hit_rate t =
  if t.packets = 0 then 0.0 else float_of_int t.hw_hits /. float_of_int t.packets

let hw_miss_count t = t.sw_hits + t.slowpaths

let total_cycles t =
  t.cycles_userspace + t.cycles_partition + t.cycles_rulegen + t.cycles_sw_search

let mean_latency_us t =
  if Gf_util.Stats.Acc.count t.latency = 0 then 0.0
  else Gf_util.Stats.Acc.mean t.latency

let overhead_ratio t =
  if t.cycles_userspace = 0 then 0.0
  else
    float_of_int (t.cycles_partition + t.cycles_rulegen)
    /. float_of_int t.cycles_userspace

let pp fmt t =
  Format.fprintf fmt
    "packets=%d hw_hits=%d (%.2f%%) sw_hits=%d slowpaths=%d entries=%d (peak %d) \
     installs=%d shared=%d rejected=%d evictions=%d pressure=%d avg_lat=%.2fus"
    t.packets t.hw_hits (100.0 *. hw_hit_rate t) t.sw_hits t.slowpaths
    t.hw_entries_final t.hw_entries_peak t.hw_installs t.hw_shared t.hw_rejected
    t.hw_evictions t.hw_pressure_evictions (mean_latency_us t)

(* One row per level, columns aligned across rows so multi-level output
   reads as a table.  p50/p99 come from the always-on per-level latency
   histograms (0.00 when the level never hit). *)
let pp_levels fmt t =
  let name_w =
    List.fold_left (fun w l -> max w (String.length l.level_name)) 5 t.levels
  in
  List.iter
    (fun (l : level) ->
      let q p = if Histogram.count l.latency_hist = 0 then 0.0 else p l.latency_hist in
      Format.fprintf fmt
        "level %-*s hits=%9d misses=%9d hit=%6.2f%% installs=%8d shared=%7d \
         rejected=%6d evictions=%7d pressure=%6d defer=%6d demote=%6d \
         work=%10d occ=%7d peak=%7d p50=%8.2fus p99=%8.2fus@."
        name_w l.level_name l.hits l.misses
        (100.0 *. level_hit_rate l)
        l.installs l.shared l.rejected l.evictions l.pressure_evictions l.deferred
        l.demotions l.work l.occupancy_final l.occupancy_peak (q Histogram.p50)
        (q Histogram.p99))
    t.levels

(* Export every counter into [registry] under stable Prometheus-style
   names; per-level series carry a [level] label.  Counters are *set* (the
   registry refs are overwritten, not incremented), so exporting twice is
   idempotent; merging registries from different shards still sums because
   each shard exports its own disjoint metrics object. *)
let to_registry t registry =
  let module R = Gf_telemetry.Registry in
  let set ?labels name help v =
    let r = R.counter registry ?labels ~help name in
    r := v
  in
  let setg ?labels name help v =
    let r = R.gauge registry ?labels ~help name in
    r := v
  in
  set "gigaflow_packets_total" "Packets replayed" t.packets;
  set "gigaflow_hw_hits_total" "Packets served by the SmartNIC cache" t.hw_hits;
  set "gigaflow_sw_hits_total" "Packets served by a software cache level" t.sw_hits;
  set "gigaflow_slowpaths_total" "Packets taking the full slowpath" t.slowpaths;
  set "gigaflow_drops_total" "Packets dropped (pipeline error)" t.drops;
  set "gigaflow_hw_installs_total" "Hardware rule installs" t.hw_installs;
  set "gigaflow_hw_shared_total" "Hardware installs satisfied by sharing" t.hw_shared;
  set "gigaflow_hw_rejected_total" "Hardware installs rejected (tables full)"
    t.hw_rejected;
  set "gigaflow_hw_evictions_total" "Hardware entries evicted" t.hw_evictions;
  set "gigaflow_hw_pressure_evictions_total"
    "Hardware entries evicted under capacity pressure" t.hw_pressure_evictions;
  set "gigaflow_hw_deferred_total"
    "Hardware installs withheld by the admission policy" t.hw_deferred;
  set "gigaflow_hw_demotions_total"
    "Hardware entries demoted by the admission re-partition sweep" t.hw_demotions;
  set "gigaflow_cycles_total" "Slowpath CPU cycles by component"
    ~labels:[ ("component", "userspace") ]
    t.cycles_userspace;
  set "gigaflow_cycles_total" "" ~labels:[ ("component", "partition") ]
    t.cycles_partition;
  set "gigaflow_cycles_total" "" ~labels:[ ("component", "rulegen") ] t.cycles_rulegen;
  set "gigaflow_cycles_total" ""
    ~labels:[ ("component", "sw_search") ]
    t.cycles_sw_search;
  setg "gigaflow_hw_entries" "Hardware cache occupancy (end of run)"
    (float_of_int t.hw_entries_final);
  setg "gigaflow_hw_entries_peak" "Peak hardware cache occupancy"
    (float_of_int t.hw_entries_peak);
  R.set_histogram registry ~help:"End-to-end per-packet latency (us)"
    "gigaflow_packet_latency_us" t.latency_hist;
  List.iter
    (fun l ->
      let labels = [ ("level", l.level_name) ] in
      set "gigaflow_level_hits_total" "Cache hits by level" ~labels l.hits;
      set "gigaflow_level_misses_total" "Cache misses by level" ~labels l.misses;
      set "gigaflow_level_installs_total" "Installs by level" ~labels l.installs;
      set "gigaflow_level_shared_total" "Shared installs by level" ~labels l.shared;
      set "gigaflow_level_rejected_total" "Rejected installs by level" ~labels
        l.rejected;
      set "gigaflow_level_evictions_total" "Evictions by level" ~labels l.evictions;
      set "gigaflow_level_pressure_evictions_total"
        "Capacity-pressure evictions by level" ~labels l.pressure_evictions;
      set "gigaflow_level_deferred_total"
        "Admission-deferred installs by level" ~labels l.deferred;
      set "gigaflow_level_demotions_total"
        "Admission-sweep demotions by level" ~labels l.demotions;
      set "gigaflow_level_work_total" "Classifier work units by level" ~labels l.work;
      setg "gigaflow_level_occupancy" "Level occupancy (end of run)" ~labels
        (float_of_int l.occupancy_final);
      setg "gigaflow_level_occupancy_peak" "Peak level occupancy" ~labels
        (float_of_int l.occupancy_peak);
      R.set_histogram registry ~labels ~help:"Per-hit latency by level (us)"
        "gigaflow_level_hit_latency_us" l.latency_hist)
    t.levels
