(* Per-level counters, keyed by the cache level's name.  Levels are
   registered by the datapath at creation time (in walk order) and merged
   across shards by name. *)
type level = {
  level_name : string;
  mutable hits : int;
  mutable misses : int;
  mutable installs : int;
  mutable shared : int;
  mutable rejected : int;
  mutable evictions : int;
  mutable work : int;
  mutable latency_us : float;
  mutable occupancy_peak : int;
  mutable occupancy_final : int;
}

let level_create name =
  {
    level_name = name;
    hits = 0;
    misses = 0;
    installs = 0;
    shared = 0;
    rejected = 0;
    evictions = 0;
    work = 0;
    latency_us = 0.0;
    occupancy_peak = 0;
    occupancy_final = 0;
  }

type t = {
  mutable packets : int;
  mutable hw_hits : int;
  mutable sw_hits : int;
  mutable slowpaths : int;
  mutable drops : int;
  mutable hw_installs : int;
  mutable hw_shared : int;
  mutable hw_rejected : int;
  mutable hw_evictions : int;
  latency : Gf_util.Stats.Acc.t;
  mutable cycles_userspace : int;
  mutable cycles_partition : int;
  mutable cycles_rulegen : int;
  mutable cycles_sw_search : int;
  mutable hw_entries_peak : int;
  mutable hw_entries_final : int;
  mutable levels : level list;  (* walk order *)
}

let create () =
  {
    packets = 0;
    hw_hits = 0;
    sw_hits = 0;
    slowpaths = 0;
    drops = 0;
    hw_installs = 0;
    hw_shared = 0;
    hw_rejected = 0;
    hw_evictions = 0;
    latency = Gf_util.Stats.Acc.create ();
    cycles_userspace = 0;
    cycles_partition = 0;
    cycles_rulegen = 0;
    cycles_sw_search = 0;
    hw_entries_peak = 0;
    hw_entries_final = 0;
    levels = [];
  }

let levels t = t.levels

let find_level t name =
  List.find_opt (fun l -> String.equal l.level_name name) t.levels

let level t name =
  match find_level t name with
  | Some l -> l
  | None ->
      let l = level_create name in
      t.levels <- t.levels @ [ l ];
      l

let level_hit_rate l =
  let consulted = l.hits + l.misses in
  if consulted = 0 then nan else float_of_int l.hits /. float_of_int consulted

let merge_level ~into src =
  into.hits <- into.hits + src.hits;
  into.misses <- into.misses + src.misses;
  into.installs <- into.installs + src.installs;
  into.shared <- into.shared + src.shared;
  into.rejected <- into.rejected + src.rejected;
  into.evictions <- into.evictions + src.evictions;
  into.work <- into.work + src.work;
  into.latency_us <- into.latency_us +. src.latency_us;
  into.occupancy_peak <- into.occupancy_peak + src.occupancy_peak;
  into.occupancy_final <- into.occupancy_final + src.occupancy_final

(* Fold [src] into [into].  Counters are additive.  Occupancy figures are
   summed too: per-domain datapaths own disjoint caches, so the aggregate
   footprint at any instant is the sum (peaks are summed pessimistically —
   per-shard peaks need not coincide in time).  Per-level counters merge by
   level name, appending levels [into] has not seen. *)
let merge ~into src =
  into.packets <- into.packets + src.packets;
  into.hw_hits <- into.hw_hits + src.hw_hits;
  into.sw_hits <- into.sw_hits + src.sw_hits;
  into.slowpaths <- into.slowpaths + src.slowpaths;
  into.drops <- into.drops + src.drops;
  into.hw_installs <- into.hw_installs + src.hw_installs;
  into.hw_shared <- into.hw_shared + src.hw_shared;
  into.hw_rejected <- into.hw_rejected + src.hw_rejected;
  into.hw_evictions <- into.hw_evictions + src.hw_evictions;
  Gf_util.Stats.Acc.merge ~into:into.latency src.latency;
  into.cycles_userspace <- into.cycles_userspace + src.cycles_userspace;
  into.cycles_partition <- into.cycles_partition + src.cycles_partition;
  into.cycles_rulegen <- into.cycles_rulegen + src.cycles_rulegen;
  into.cycles_sw_search <- into.cycles_sw_search + src.cycles_sw_search;
  into.hw_entries_peak <- into.hw_entries_peak + src.hw_entries_peak;
  into.hw_entries_final <- into.hw_entries_final + src.hw_entries_final;
  List.iter (fun sl -> merge_level ~into:(level into sl.level_name) sl) src.levels

let aggregate ms =
  let t = create () in
  List.iter (fun m -> merge ~into:t m) ms;
  t

let hw_hit_rate t =
  if t.packets = 0 then nan else float_of_int t.hw_hits /. float_of_int t.packets

let hw_miss_count t = t.sw_hits + t.slowpaths

let total_cycles t =
  t.cycles_userspace + t.cycles_partition + t.cycles_rulegen + t.cycles_sw_search

let mean_latency_us t = Gf_util.Stats.Acc.mean t.latency

let overhead_ratio t =
  if t.cycles_userspace = 0 then nan
  else
    float_of_int (t.cycles_partition + t.cycles_rulegen)
    /. float_of_int t.cycles_userspace

let pp fmt t =
  Format.fprintf fmt
    "packets=%d hw_hits=%d (%.2f%%) sw_hits=%d slowpaths=%d entries=%d (peak %d) \
     installs=%d shared=%d rejected=%d evictions=%d avg_lat=%.2fus"
    t.packets t.hw_hits (100.0 *. hw_hit_rate t) t.sw_hits t.slowpaths
    t.hw_entries_final t.hw_entries_peak t.hw_installs t.hw_shared t.hw_rejected
    t.hw_evictions (mean_latency_us t)

let pp_levels fmt t =
  List.iter
    (fun l ->
      Format.fprintf fmt
        "level %-8s hits=%d misses=%d (hit %.2f%%) installs=%d shared=%d \
         rejected=%d evictions=%d work=%d occ=%d (peak %d)@."
        l.level_name l.hits l.misses
        (100.0 *. level_hit_rate l)
        l.installs l.shared l.rejected l.evictions l.work l.occupancy_final
        l.occupancy_peak)
    t.levels
