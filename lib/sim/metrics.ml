type t = {
  mutable packets : int;
  mutable hw_hits : int;
  mutable sw_hits : int;
  mutable slowpaths : int;
  mutable drops : int;
  mutable hw_installs : int;
  mutable hw_shared : int;
  mutable hw_rejected : int;
  mutable hw_evictions : int;
  latency : Gf_util.Stats.Acc.t;
  mutable cycles_userspace : int;
  mutable cycles_partition : int;
  mutable cycles_rulegen : int;
  mutable cycles_sw_search : int;
  mutable hw_entries_peak : int;
  mutable hw_entries_final : int;
}

let create () =
  {
    packets = 0;
    hw_hits = 0;
    sw_hits = 0;
    slowpaths = 0;
    drops = 0;
    hw_installs = 0;
    hw_shared = 0;
    hw_rejected = 0;
    hw_evictions = 0;
    latency = Gf_util.Stats.Acc.create ();
    cycles_userspace = 0;
    cycles_partition = 0;
    cycles_rulegen = 0;
    cycles_sw_search = 0;
    hw_entries_peak = 0;
    hw_entries_final = 0;
  }

(* Fold [src] into [into].  Counters are additive.  Occupancy figures are
   summed too: per-domain datapaths own disjoint caches, so the aggregate
   footprint at any instant is the sum (peaks are summed pessimistically —
   per-shard peaks need not coincide in time). *)
let merge ~into src =
  into.packets <- into.packets + src.packets;
  into.hw_hits <- into.hw_hits + src.hw_hits;
  into.sw_hits <- into.sw_hits + src.sw_hits;
  into.slowpaths <- into.slowpaths + src.slowpaths;
  into.drops <- into.drops + src.drops;
  into.hw_installs <- into.hw_installs + src.hw_installs;
  into.hw_shared <- into.hw_shared + src.hw_shared;
  into.hw_rejected <- into.hw_rejected + src.hw_rejected;
  into.hw_evictions <- into.hw_evictions + src.hw_evictions;
  Gf_util.Stats.Acc.merge ~into:into.latency src.latency;
  into.cycles_userspace <- into.cycles_userspace + src.cycles_userspace;
  into.cycles_partition <- into.cycles_partition + src.cycles_partition;
  into.cycles_rulegen <- into.cycles_rulegen + src.cycles_rulegen;
  into.cycles_sw_search <- into.cycles_sw_search + src.cycles_sw_search;
  into.hw_entries_peak <- into.hw_entries_peak + src.hw_entries_peak;
  into.hw_entries_final <- into.hw_entries_final + src.hw_entries_final

let aggregate ms =
  let t = create () in
  List.iter (fun m -> merge ~into:t m) ms;
  t

let hw_hit_rate t =
  if t.packets = 0 then nan else float_of_int t.hw_hits /. float_of_int t.packets

let hw_miss_count t = t.sw_hits + t.slowpaths

let total_cycles t =
  t.cycles_userspace + t.cycles_partition + t.cycles_rulegen + t.cycles_sw_search

let mean_latency_us t = Gf_util.Stats.Acc.mean t.latency

let overhead_ratio t =
  if t.cycles_userspace = 0 then nan
  else
    float_of_int (t.cycles_partition + t.cycles_rulegen)
    /. float_of_int t.cycles_userspace

let pp fmt t =
  Format.fprintf fmt
    "packets=%d hw_hits=%d (%.2f%%) sw_hits=%d slowpaths=%d entries=%d (peak %d) \
     installs=%d shared=%d rejected=%d evictions=%d avg_lat=%.2fus"
    t.packets t.hw_hits (100.0 *. hw_hit_rate t) t.sw_hits t.slowpaths
    t.hw_entries_final t.hw_entries_peak t.hw_installs t.hw_shared t.hw_rejected
    t.hw_evictions (mean_latency_us t)
