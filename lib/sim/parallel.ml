(* Real multicore trace replay (OCaml 5 domains).

   Mirrors OVS's PMD-thread deployment: RSS spreads flows over cores, each
   core runs its own datapath instance with private caches, and aggregate
   throughput is the sum of per-core throughputs.  Sharding uses the same
   [Multicore.rss_hash] as the static load model, so the model and the real
   engine agree on flow placement by construction and can cross-validate
   each other ([model_loads] vs [measured_loads]).

   Each domain gets a [Pipeline.copy] replica (table lookups mutate scratch
   buffers and lazily-built tuple indexes) and its own [Datapath.t]; the
   only shared mutable state left is the mask hash-consing table, which is
   mutex-guarded. *)

module Trace = Gf_workload.Trace
module Pipeline = Gf_pipeline.Pipeline

type mode = [ `Domains | `Sequential | `Streamed ]

type shard_run = {
  domain_id : int;
  packets : int;
  metrics : Metrics.t;
  wall_seconds : float;
  flow_cycles : (int, int) Hashtbl.t;
}

type result = {
  domains : int;
  mode : mode;
  shards : shard_run array;
  merged : Metrics.t;
  telemetry : Gf_telemetry.Telemetry.t option;
  wall_seconds : float;
  critical_path_seconds : float;
}

let shard ~domains (trace : Trace.t) =
  if domains <= 0 then invalid_arg "Parallel.shard: domains must be positive";
  if domains = 1 then [| trace |]
  else begin
    let buckets = Array.make domains [] in
    let ps = trace.Trace.packets in
    (* Reverse walk so the per-shard cons lists come out in time order. *)
    for i = Array.length ps - 1 downto 0 do
      let p = ps.(i) in
      let d = Multicore.rss_hash p.Trace.flow_id mod domains in
      buckets.(d) <- p :: buckets.(d)
    done;
    Array.map
      (fun pkts ->
        let packets = Array.of_list pkts in
        let seen = Hashtbl.create 256 in
        Array.iter
          (fun (p : Trace.packet) -> Hashtbl.replace seen p.Trace.flow_id ())
          packets;
        {
          Trace.packets;
          unique_flows = Hashtbl.length seen;
          duration = trace.Trace.duration;
        })
      buckets
  end

let replay ?(mode = `Domains) ?(domains = 1) ?telemetry ~cfg pipeline trace =
  (match mode with
  | `Streamed ->
      (* The streaming engine lives above this library (gf_engine depends
         on gf_sim); [`Streamed] results are built by [Engine.replay]. *)
      invalid_arg "Parallel.replay: `Streamed mode is run by Gf_engine.Engine.replay"
  | `Domains | `Sequential -> ());
  let shard_traces = shard ~domains trace in
  (* Each shard gets a private telemetry sink (domains never share one —
     recording is unsynchronised by design); shard sinks are merged after
     the join, like metrics. *)
  let shard_telemetry =
    match telemetry with
    | None -> [||]
    | Some config ->
        Array.map
          (fun _ -> Gf_telemetry.Telemetry.create ~config ())
          shard_traces
  in
  let telemetry_of i =
    if Array.length shard_telemetry = 0 then None else Some shard_telemetry.(i)
  in
  (* Replicate the pipeline in the parent, before any domain runs: replicas
     read the source tables while nothing mutates them. *)
  let datapaths =
    Array.mapi
      (fun i _ ->
        Datapath.create ?telemetry:(telemetry_of i) cfg (Pipeline.copy pipeline))
      shard_traces
  in
  let run_one i =
    let tr = shard_traces.(i) in
    let flow_cycles = Hashtbl.create 1024 in
    let t0 = Unix.gettimeofday () in
    let metrics =
      Datapath.run
        ~miss_sink:(fun ~flow_id ~cycles ->
          Hashtbl.replace flow_cycles flow_id
            (cycles + Option.value ~default:0 (Hashtbl.find_opt flow_cycles flow_id)))
        datapaths.(i) tr
    in
    {
      domain_id = i;
      packets = Trace.packet_count tr;
      metrics;
      wall_seconds = Unix.gettimeofday () -. t0;
      flow_cycles;
    }
  in
  let t0 = Unix.gettimeofday () in
  let shards =
    match mode with
    | `Sequential | `Streamed -> Array.init domains run_one
    | `Domains ->
        Array.init domains (fun i -> Domain.spawn (fun () -> run_one i))
        |> Array.map Domain.join
  in
  let wall_seconds = Unix.gettimeofday () -. t0 in
  let critical_path_seconds =
    Array.fold_left (fun acc (s : shard_run) -> Float.max acc s.wall_seconds) 0.0 shards
  in
  let merged =
    Metrics.aggregate (List.map (fun s -> s.metrics) (Array.to_list shards))
  in
  (* Merge shard telemetry in shard order: the merged stream is then
     deterministic (per-shard replay is), so `Domains and `Sequential agree
     on it exactly, like they do on metrics. *)
  let merged_telemetry =
    match telemetry with
    | None -> None
    | Some config ->
        let into = Gf_telemetry.Telemetry.create ~config () in
        Array.iter
          (fun shard_tel -> Gf_telemetry.Telemetry.merge ~into shard_tel)
          shard_telemetry;
        Some into
  in
  {
    domains;
    mode;
    shards;
    merged;
    telemetry = merged_telemetry;
    wall_seconds;
    critical_path_seconds;
  }

(* ------------------- static-model cross-validation ------------------- *)

let merged_flow_cycles result =
  let all = Hashtbl.create 4096 in
  Array.iter
    (fun s ->
      Hashtbl.iter
        (fun flow_id cycles ->
          Hashtbl.replace all flow_id
            (cycles + Option.value ~default:0 (Hashtbl.find_opt all flow_id)))
        s.flow_cycles)
    result.shards;
  all

let measured_loads result =
  Multicore.of_loads
    (Array.map
       (fun s -> Hashtbl.fold (fun _ cycles acc -> acc + cycles) s.flow_cycles 0)
       result.shards)

let model_loads result =
  Multicore.distribute ~cores:result.domains (merged_flow_cycles result)
