(** A pluggable cache-hierarchy level.

    The datapath is a generic walker over an ordered list of levels: a
    packet is looked up level by level, the first hit wins, and a full miss
    runs the slowpath pipeline whose traversal is then offered to every
    level's install policy.  Each concrete cache — the exact-match
    Microflow/EMC, the single-table Megaflow (hardware- or
    software-flavoured) and the Gigaflow LTM — is wrapped in a first-class
    module implementing {!LEVEL}, so hierarchies are composed, swept and
    replicated without the datapath knowing any backend concretely. *)

type tier =
  | Hardware  (** Lives in the SmartNIC: hits never reach host software. *)
  | Software
      (** Host-side level: reaching it costs the PCIe upcall and the fixed
          software forwarding overhead. *)

val tier_name : tier -> string
(** Stable lowercase label ("hardware" / "software") used by telemetry
    series and exporter label values. *)

type install_policy =
  | Install_on_miss
      (** The slowpath traversal is installed here (NIC caches, software
          wildcard cache). *)
  | Promote_on_hit
      (** Populated by promotion when a {e deeper} level hits (OVS's EMC:
          exact-match entries learned from wildcard-cache hits). *)
  | Never_install  (** Read-only / externally managed. *)

type descriptor = {
  name : string;  (** Metrics key; unique within a hierarchy. *)
  tier : tier;
  policy : install_policy;
  max_idle : float;  (** Idle-eviction budget of this level, seconds. *)
  hit_us : work:int -> float;
      (** Modelled hit latency from lookup work units.  For [Hardware]
          levels this is the end-to-end figure; for [Software] levels it is
          added on top of the upcall + software base cost. *)
  cycles_per_work : int;
      (** Host CPU cycles burned per lookup work unit (0 for hardware
          levels — the NIC does the work). *)
}

type hit = {
  terminal : Gf_pipeline.Action.terminal;
  out_flow : Gf_flow.Flow.t;
}

type install_report = {
  fresh : int;  (** New entries written. *)
  shared : int;  (** Segments satisfied by existing identical entries. *)
  rejected : int;  (** Installations refused (level full / infeasible). *)
  pressure_evicted : int;
      (** Entries evicted under capacity pressure to admit this install
          (0 unless the level runs an evicting replacement policy). *)
  partition_work : int;  (** Partitioner DP operations spent installing. *)
  rulegen_work : int;  (** Rules generated. *)
}

val no_install : install_report
(** The all-zero report (levels that do not install from traversals). *)

(** Diagnostic access to the wrapped cache (occupancy sampling, coverage
    counting); never used for datapath dispatch. *)
type view =
  | Microflow_view of Gf_cache.Microflow.t
  | Megaflow_view of Gf_cache.Megaflow.t
  | Gigaflow_view of Gf_core.Gigaflow.t
  | Cuckoo_view of Gf_cache.Cuckoo.t

module type LEVEL = sig
  val descriptor : descriptor
  val view : view

  val lookup : now:float -> Gf_flow.Flow.t -> hit option * int
  (** Result and lookup work units (spent whether or not it hit). *)

  val lookup_memo : now:float -> flow_id:int -> Gf_flow.Flow.t -> hit option * int
  (** Observably identical to [lookup], but backends that support it
      replay memoised per-flow results while their entry set is unchanged
      (the batched engine's sub-traversal replay; see
      {!Datapath.process_memo}).  Requires that a given [flow_id] is
      always presented with the same flow value. *)

  val prepare_replay : flow_id:int -> (now:float -> int option) option
  (** Compiled per-flow hit replay: after [lookup_memo] returned a hit
      for [flow_id], a closure applying just that hit's per-packet side
      effects and returning its work, re-validating on every call —
      [None] once the memo is stale.  Levels without a per-flow memo (the
      EMC) return [None] outright.  See {!Megaflow.prepare_replay}. *)

  val install_from_traversal :
    now:float -> version:int -> Gf_pipeline.Traversal.t -> install_report
  (** Offer a slowpath traversal per the level's {!install_policy}. *)

  val promote : now:float -> Gf_flow.Flow.t -> hit -> int
  (** Learn from a hit at a deeper level ([Promote_on_hit] levels only;
      a no-op returning 0 elsewhere).  Returns the number of entries
      evicted under capacity pressure to admit the promoted entry. *)

  val expire : now:float -> int
  (** Evict entries idle longer than the descriptor's [max_idle]. *)

  val demote : is_hot:(Gf_flow.Flow.t -> bool) -> int
  (** Admission re-partition sweep: evict entries whose representative
      flows fail [is_hot], freeing slots for the current heavy hitters.
      Only meaningful for hardware tiers; exact-match software levels
      return 0 (their entries age out via [expire]).  See
      {!Gf_cache.Megaflow.demote} / {!Gf_core.Ltm_cache.demote}. *)

  val revalidate : Gf_pipeline.Pipeline.t -> int * int
  (** Re-check entries against a (possibly updated) pipeline; returns
      [(evicted, work)].  Exact-match levels flush (their entries carry no
      dependency information). *)

  val occupancy : unit -> int
  val capacity : unit -> int

  val evict_policy : unit -> Gf_cache.Evict.policy
  (** Current replacement policy (the LTM reads it from its config). *)

  val set_evict : Gf_cache.Evict.policy -> unit
  (** Swap the replacement policy online; applies from the next install.
      The control loop's per-level actuation. *)

  val set_capacity : int -> unit
  (** Retune the admission bound online.  Software levels clamp to their
      physical storage where relevant; hardware geometry (the LTM's MAT
      shape, SRAM) is fixed at build time, so hardware levels ignore it. *)

  val stats : unit -> Gf_cache.Cache_stats.t

  val last_depth : unit -> int
  (** Tag-chain steps matched by this level's most recent lookup: the
      sub-traversal reuse depth for the LTM (non-zero on a miss means the
      chain matched a prefix then dead-ended — a stall); unchained levels
      report 0.  Observability hook for the traversal tracer. *)
end

type t = (module LEVEL)

(** {1 Accessors} *)

val descriptor : t -> descriptor
val name : t -> string
val tier : t -> tier
val view : t -> view
val lookup : t -> now:float -> Gf_flow.Flow.t -> hit option * int
val lookup_memo : t -> now:float -> flow_id:int -> Gf_flow.Flow.t -> hit option * int
val prepare_replay : t -> flow_id:int -> (now:float -> int option) option

val install_from_traversal :
  t -> now:float -> version:int -> Gf_pipeline.Traversal.t -> install_report

val promote : t -> now:float -> Gf_flow.Flow.t -> hit -> int
val expire : t -> now:float -> int
val demote : t -> is_hot:(Gf_flow.Flow.t -> bool) -> int
val revalidate : t -> Gf_pipeline.Pipeline.t -> int * int
val occupancy : t -> int
val capacity : t -> int
val evict_policy : t -> Gf_cache.Evict.policy
val set_evict : t -> Gf_cache.Evict.policy -> unit
val set_capacity : t -> int -> unit
val stats : t -> Gf_cache.Cache_stats.t
val last_depth : t -> int

(** {1 Adapters} *)

val of_microflow : ?name:string -> max_idle:float -> Gf_cache.Microflow.t -> t
(** OVS's EMC: software tier, one hash probe per lookup, populated by
    promotion from deeper-level hits. *)

val of_cuckoo : ?name:string -> max_idle:float -> Gf_cache.Cuckoo.t -> t
(** 2-choice cuckoo exact-match table: software tier, installs the
    collapsed slowpath result on miss — the cheap home for the long tail
    of mice that never earn a hardware slot. *)

val of_megaflow :
  ?name:string -> tier:tier -> max_idle:float -> Gf_cache.Megaflow.t -> t
(** The single-table wildcard cache.  [tier] selects the latency flavour:
    [Hardware] hits at the fixed SmartNIC latency, [Software] pays the
    classifier search (TSS/NuevoMatch work units). *)

val of_gigaflow :
  ?name:string -> pipeline:Gf_pipeline.Pipeline.t -> Gf_core.Gigaflow.t -> t
(** The Gigaflow LTM: hardware tier; installs partition the traversal into
    sub-traversal rules (idle budget comes from the Gigaflow config). *)

(** {1 Specs — declarative hierarchy descriptions} *)

(** A buildable description of one level.  [max_idle = None] takes the
    hierarchy default ({!Datapath.config.max_idle}; the software wildcard
    cache defaults to 4x it, preserving OVS's longer-lived software
    entries).  [evict = None] takes the level's historical default
    replacement policy: [Lru] for the EMC, [Reject] for the Megaflows.
    The Gigaflow LTM carries its policy inside its config. *)
type spec =
  | Emc of {
      capacity : int;
      max_idle : float option;
      evict : Gf_cache.Evict.policy option;
    }
  | Nic_megaflow of {
      capacity : int;
      max_idle : float option;
      evict : Gf_cache.Evict.policy option;
    }
  | Sw_megaflow of {
      search : Gf_classifier.Searcher.algo;
      capacity : int;
      max_idle : float option;
      evict : Gf_cache.Evict.policy option;
    }
  | Sw_cuckoo of {
      capacity : int;
      max_idle : float option;
      evict : Gf_cache.Evict.policy option;
    }
  | Gf_ltm of { gf : Gf_core.Config.t; max_idle : float option }

val spec_with_evict : spec -> Gf_cache.Evict.policy -> spec
(** The spec with its replacement policy overridden (for [Gf_ltm] the
    policy is written into the embedded Gigaflow config). *)

val spec_evict : spec -> Gf_cache.Evict.policy
(** The policy [build] will use: the explicit override if set, else the
    level's historical default. *)

val spec_name : spec -> string
(** Default metrics key: "emc", "nic-mf", "sw-mf", "sw-ck", "gf". *)

val spec_tier : spec -> tier
val spec_capacity : spec -> int

val build :
  ?name:string ->
  default_max_idle:float ->
  pipeline:Gf_pipeline.Pipeline.t ->
  spec ->
  t
(** Instantiate a fresh cache for [spec] and wrap it.  [name] overrides
    {!spec_name} (hierarchies with duplicate level kinds must deduplicate
    names). *)
