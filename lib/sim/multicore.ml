type t = { cores : int; loads : int array }

(* The same multiplicative hash NICs use for RSS-style spreading; any fixed
   hash works as long as it is flow-stable. *)
let rss_hash flow_id = flow_id * 0x9E3779B1 land max_int

let of_loads loads =
  assert (Array.length loads > 0);
  { cores = Array.length loads; loads = Array.copy loads }

let distribute ~cores flow_cycles =
  assert (cores > 0);
  let loads = Array.make cores 0 in
  Hashtbl.iter
    (fun flow_id cycles ->
      let core = rss_hash flow_id mod cores in
      loads.(core) <- loads.(core) + cycles)
    flow_cycles;
  { cores; loads }

let max_load t = Array.fold_left max 0 t.loads

let total_load t = Array.fold_left ( + ) 0 t.loads

let imbalance t =
  let total = total_load t in
  if total = 0 then 1.0
  else
    float_of_int (max_load t) /. (float_of_int total /. float_of_int t.cores)

let speedup ~baseline t =
  float_of_int (max_load baseline) /. float_of_int (max 1 (max_load t))
