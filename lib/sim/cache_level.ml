module Microflow = Gf_cache.Microflow
module Megaflow = Gf_cache.Megaflow
module Evict = Gf_cache.Evict
module Gigaflow = Gf_core.Gigaflow
module Ltm_cache = Gf_core.Ltm_cache
module Latency = Gf_nic.Latency
module Pipeline = Gf_pipeline.Pipeline

type tier = Hardware | Software

let tier_name = function Hardware -> "hardware" | Software -> "software"

type install_policy = Install_on_miss | Promote_on_hit | Never_install

type descriptor = {
  name : string;
  tier : tier;
  policy : install_policy;
  max_idle : float;
  hit_us : work:int -> float;
  cycles_per_work : int;
}

type hit = {
  terminal : Gf_pipeline.Action.terminal;
  out_flow : Gf_flow.Flow.t;
}

type install_report = {
  fresh : int;
  shared : int;
  rejected : int;
  pressure_evicted : int;
  partition_work : int;
  rulegen_work : int;
}

let no_install =
  {
    fresh = 0;
    shared = 0;
    rejected = 0;
    pressure_evicted = 0;
    partition_work = 0;
    rulegen_work = 0;
  }

type view =
  | Microflow_view of Microflow.t
  | Megaflow_view of Megaflow.t
  | Gigaflow_view of Gigaflow.t
  | Cuckoo_view of Gf_cache.Cuckoo.t

module type LEVEL = sig
  val descriptor : descriptor
  val view : view
  val lookup : now:float -> Gf_flow.Flow.t -> hit option * int

  val lookup_memo : now:float -> flow_id:int -> Gf_flow.Flow.t -> hit option * int
  (** Observably identical to [lookup], but backends that support it replay
      memoised per-flow results while their entry set is unchanged (the
      batched engine's amortisation; see [Datapath.process_memo]).  Levels
      whose live lookup is already O(1) (the EMC) just delegate. *)

  val prepare_replay : flow_id:int -> (now:float -> int option) option
  (** Compiled per-flow hit replay (see [Megaflow.prepare_replay] /
      [Ltm_cache.prepare_replay]): after [lookup_memo] returned a hit for
      [flow_id], a closure applying just that hit's per-packet side
      effects and returning its work, or [None] per call once stale.
      Levels without a memo (the EMC) return [None] outright. *)

  val install_from_traversal :
    now:float -> version:int -> Gf_pipeline.Traversal.t -> install_report

  val promote : now:float -> Gf_flow.Flow.t -> hit -> int
  val expire : now:float -> int

  val demote : is_hot:(Gf_flow.Flow.t -> bool) -> int
  (** Admission re-partition sweep (see [Megaflow.demote] /
      [Ltm_cache.demote]): evict entries whose flows went cold under the
      hotness predicate.  Only meaningful for hardware tiers — exact-match
      software levels return 0 (their entries age out via [expire]). *)

  val revalidate : Gf_pipeline.Pipeline.t -> int * int
  val occupancy : unit -> int
  val capacity : unit -> int

  val evict_policy : unit -> Evict.policy
  (** Current replacement policy (the LTM reads it from its config). *)

  val set_evict : Evict.policy -> unit
  (** Swap the replacement policy online; applies from the next install.
      Online control-loop actuation. *)

  val set_capacity : int -> unit
  (** Retune the admission bound online.  Software levels clamp to their
      physical storage where relevant; hardware geometry (the LTM's MAT
      shape, SRAM) is fixed at build time, so hardware levels ignore it. *)

  val stats : unit -> Gf_cache.Cache_stats.t

  val last_depth : unit -> int
  (** Tag-chain steps matched by this level's most recent lookup: the
      sub-traversal reuse depth for the LTM (non-zero on a miss means the
      chain matched a prefix then dead-ended — a stall); unchained levels
      report 0.  Observability hook for the traversal tracer. *)
end

type t = (module LEVEL)

let descriptor (module L : LEVEL) = L.descriptor
let name t = (descriptor t).name
let tier t = (descriptor t).tier
let view (module L : LEVEL) = L.view
let lookup (module L : LEVEL) = L.lookup
let lookup_memo (module L : LEVEL) = L.lookup_memo
let prepare_replay (module L : LEVEL) = L.prepare_replay
let install_from_traversal (module L : LEVEL) = L.install_from_traversal
let promote (module L : LEVEL) = L.promote
let expire (module L : LEVEL) = L.expire
let demote (module L : LEVEL) = L.demote
let revalidate (module L : LEVEL) = L.revalidate
let occupancy (module L : LEVEL) = L.occupancy ()
let capacity (module L : LEVEL) = L.capacity ()
let evict_policy (module L : LEVEL) = L.evict_policy ()
let set_evict (module L : LEVEL) = L.set_evict
let set_capacity (module L : LEVEL) = L.set_capacity
let stats (module L : LEVEL) = L.stats ()
let last_depth (module L : LEVEL) = L.last_depth ()

(* ------------------------------ adapters ------------------------------ *)

let of_microflow ?(name = "emc") ~max_idle emc : t =
  (module struct
    let descriptor =
      {
        name;
        tier = Software;
        policy = Promote_on_hit;
        max_idle;
        hit_us = (fun ~work:_ -> Latency.emc_hit_us);
        cycles_per_work = 0;
      }

    let view = Microflow_view emc

    let lookup ~now flow =
      match Microflow.lookup emc ~now flow with
      | Some h ->
          (Some { terminal = h.Microflow.terminal; out_flow = h.Microflow.out_flow }, 1)
      | None -> (None, 1)

    (* Exact-match lookup is already a single hash probe: nothing to
       amortise. *)
    let lookup_memo ~now ~flow_id:_ flow = lookup ~now flow
    let prepare_replay ~flow_id:_ = None

    let install_from_traversal ~now:_ ~version:_ _ = no_install

    let promote ~now flow h =
      Microflow.install emc ~now flow
        { Microflow.terminal = h.terminal; out_flow = h.out_flow }

    let expire ~now = Microflow.expire emc ~now ~max_idle
    let demote ~is_hot:_ = 0

    (* Exact-match entries carry no dependency information: the only safe
       response to a pipeline change is a flush (OVS does the same). *)
    let revalidate _ = (Microflow.invalidate_all emc, 0)
    let occupancy () = Microflow.occupancy emc
    let capacity () = Microflow.capacity emc
    let evict_policy () = Microflow.policy emc
    let set_evict p = Microflow.set_policy emc p
    let set_capacity c = Microflow.set_capacity emc c
    let stats () = Microflow.stats emc
    let last_depth () = 0
  end)

(* The cuckoo level is an exact-match software cache for the long tail:
   installs collapse the slowpath traversal to (input flow, committed
   output flow, terminal) — exactly the result that packet produced — so
   a mouse's second packet short-circuits in two bucket probes without
   ever earning a wildcard or hardware slot. *)
let of_cuckoo ?(name = "sw-ck") ~max_idle ck : t =
  (module struct
    let descriptor =
      {
        name;
        tier = Software;
        policy = Install_on_miss;
        max_idle;
        hit_us = (fun ~work:_ -> Latency.cuckoo_hit_us);
        cycles_per_work = 0;
      }

    let view = Cuckoo_view ck

    let lookup ~now flow =
      match Gf_cache.Cuckoo.lookup ck ~now flow with
      | Some h ->
          ( Some
              {
                terminal = h.Gf_cache.Cuckoo.terminal;
                out_flow = h.Gf_cache.Cuckoo.out_flow;
              },
            1 )
      | None -> (None, 1)

    (* Bounded-probe exact lookup: nothing to amortise. *)
    let lookup_memo ~now ~flow_id:_ flow = lookup ~now flow
    let prepare_replay ~flow_id:_ = None

    let install_from_traversal ~now ~version:_ traversal =
      let open Gf_pipeline in
      let input = traversal.Traversal.input in
      let commit =
        Traversal.segment_commit traversal ~first:0
          ~last:(Array.length traversal.Traversal.steps - 1)
      in
      let hit =
        {
          Gf_cache.Cuckoo.terminal = traversal.Traversal.terminal;
          out_flow = Gf_flow.Flow.update input commit;
        }
      in
      let before_rejects = (Gf_cache.Cuckoo.stats ck).Gf_cache.Cache_stats.rejected in
      let pressure_evicted = Gf_cache.Cuckoo.install ck ~now input hit in
      let rejected =
        (Gf_cache.Cuckoo.stats ck).Gf_cache.Cache_stats.rejected - before_rejects
      in
      if rejected > 0 then { no_install with rejected }
      else { no_install with fresh = 1; pressure_evicted }

    let promote ~now flow h =
      Gf_cache.Cuckoo.install ck ~now flow
        { Gf_cache.Cuckoo.terminal = h.terminal; out_flow = h.out_flow }

    let expire ~now = Gf_cache.Cuckoo.expire ck ~now ~max_idle
    let demote ~is_hot:_ = 0

    (* Exact-match entries carry no dependency information: flush on any
       pipeline change, like the EMC. *)
    let revalidate _ = (Gf_cache.Cuckoo.invalidate_all ck, 0)
    let occupancy () = Gf_cache.Cuckoo.occupancy ck
    let capacity () = Gf_cache.Cuckoo.capacity ck
    let evict_policy () = Gf_cache.Cuckoo.policy ck
    let set_evict p = Gf_cache.Cuckoo.set_policy ck p
    let set_capacity c = Gf_cache.Cuckoo.set_capacity ck c
    let stats () = Gf_cache.Cuckoo.stats ck
    let last_depth () = 0
  end)

let of_megaflow ?name ~tier ~max_idle mf : t =
  let name =
    match name with
    | Some n -> n
    | None -> ( match tier with Hardware -> "nic-mf" | Software -> "sw-mf")
  in
  (module struct
    let descriptor =
      {
        name;
        tier;
        policy = Install_on_miss;
        max_idle;
        hit_us =
          (match tier with
          | Hardware -> fun ~work:_ -> Latency.hw_hit_us
          | Software ->
              fun ~work ->
                Latency.sw_search_us ~algo:(Megaflow.search_algo mf) ~work ());
        cycles_per_work =
          (match tier with Hardware -> 0 | Software -> Latency.probe_cycles);
      }

    let view = Megaflow_view mf

    let lookup ~now flow =
      let hit, work = Megaflow.lookup mf ~now flow in
      ( (match hit with
        | Some h ->
            Some { terminal = h.Megaflow.terminal; out_flow = h.Megaflow.out_flow }
        | None -> None),
        work )

    let lookup_memo ~now ~flow_id flow =
      let hit, work = Megaflow.lookup_memo mf ~now ~flow_id flow in
      ( (match hit with
        | Some h ->
            Some { terminal = h.Megaflow.terminal; out_flow = h.Megaflow.out_flow }
        | None -> None),
        work )

    let prepare_replay ~flow_id = Megaflow.prepare_replay mf ~flow_id

    let install_from_traversal ~now ~version traversal =
      match Megaflow.install mf ~now ~version traversal with
      | `Installed pressure_evicted -> { no_install with fresh = 1; pressure_evicted }
      | `Exists -> no_install
      | `Rejected -> { no_install with rejected = 1 }

    let promote ~now:_ _ _ = 0
    let expire ~now = Megaflow.expire mf ~now ~max_idle
    let demote ~is_hot = Megaflow.demote mf ~is_hot
    let revalidate pipeline = Megaflow.revalidate mf pipeline
    let occupancy () = Megaflow.occupancy mf
    let capacity () = Megaflow.capacity mf
    let evict_policy () = Megaflow.policy mf
    let set_evict p = Megaflow.set_policy mf p
    let set_capacity c = Megaflow.set_capacity mf c
    let stats () = Megaflow.stats mf
    let last_depth () = 0
  end)

let of_gigaflow ?(name = "gf") ~pipeline gf : t =
  (module struct
    let descriptor =
      {
        name;
        tier = Hardware;
        policy = Install_on_miss;
        max_idle = (Gigaflow.config gf).Gf_core.Config.max_idle;
        hit_us = (fun ~work:_ -> Latency.hw_hit_us);
        cycles_per_work = 0;
      }

    let view = Gigaflow_view gf

    let lookup ~now flow =
      let hit, work = Gigaflow.lookup gf ~now ~pipeline flow in
      ( (match hit with
        | Some h ->
            Some { terminal = h.Ltm_cache.terminal; out_flow = h.Ltm_cache.out_flow }
        | None -> None),
        work )

    let lookup_memo ~now ~flow_id flow =
      let hit, work = Gigaflow.lookup_memo gf ~now ~pipeline ~flow_id flow in
      ( (match hit with
        | Some h ->
            Some { terminal = h.Ltm_cache.terminal; out_flow = h.Ltm_cache.out_flow }
        | None -> None),
        work )

    let prepare_replay ~flow_id = Gigaflow.prepare_replay gf ~flow_id

    let install_from_traversal ~now ~version traversal =
      let o = Gigaflow.install_traversal gf ~now ~version traversal in
      let fresh, shared, rejected, pressure_evicted =
        match o.Gigaflow.install with
        | Ltm_cache.Installed { fresh; shared; pressure_evicted } ->
            (fresh, shared, 0, pressure_evicted)
        | Ltm_cache.Rejected -> (0, 0, 1, 0)
      in
      {
        fresh;
        shared;
        rejected;
        pressure_evicted;
        partition_work = o.Gigaflow.partition_work;
        rulegen_work = o.Gigaflow.rulegen_work;
      }

    let promote ~now:_ _ _ = 0
    let expire ~now = Gigaflow.expire gf ~now
    let demote ~is_hot = Gigaflow.demote gf ~is_hot
    let revalidate pipeline = Gigaflow.revalidate gf pipeline
    let occupancy () = Ltm_cache.occupancy (Gigaflow.cache gf)
    let capacity () = Gf_core.Config.total_capacity (Gigaflow.config gf)
    let evict_policy () = (Gigaflow.config gf).Gf_core.Config.policy
    let set_evict p = Gigaflow.set_policy gf p

    (* LTM geometry (table count, per-table SRAM) is the hardware; only the
       replacement policy is an online knob. *)
    let set_capacity _ = ()
    let stats () = Ltm_cache.stats (Gigaflow.cache gf)
    let last_depth () = Ltm_cache.last_depth (Gigaflow.cache gf)
  end)

(* ------------------------------- specs ------------------------------- *)

type spec =
  | Emc of { capacity : int; max_idle : float option; evict : Evict.policy option }
  | Nic_megaflow of {
      capacity : int;
      max_idle : float option;
      evict : Evict.policy option;
    }
  | Sw_megaflow of {
      search : Gf_classifier.Searcher.algo;
      capacity : int;
      max_idle : float option;
      evict : Evict.policy option;
    }
  | Sw_cuckoo of { capacity : int; max_idle : float option; evict : Evict.policy option }
  | Gf_ltm of { gf : Gf_core.Config.t; max_idle : float option }

(* [Gf_ltm] carries its policy inside the Gigaflow config. *)
let spec_with_evict spec policy =
  match spec with
  | Emc e -> Emc { e with evict = Some policy }
  | Nic_megaflow e -> Nic_megaflow { e with evict = Some policy }
  | Sw_megaflow e -> Sw_megaflow { e with evict = Some policy }
  | Sw_cuckoo e -> Sw_cuckoo { e with evict = Some policy }
  | Gf_ltm e -> Gf_ltm { e with gf = { e.gf with Gf_core.Config.policy } }

let spec_evict = function
  | Emc { evict; _ } | Sw_cuckoo { evict; _ } -> Option.value evict ~default:Evict.Lru
  | Nic_megaflow { evict; _ } | Sw_megaflow { evict; _ } ->
      Option.value evict ~default:Evict.Reject
  | Gf_ltm { gf; _ } -> gf.Gf_core.Config.policy

let spec_name = function
  | Emc _ -> "emc"
  | Nic_megaflow _ -> "nic-mf"
  | Sw_megaflow _ -> "sw-mf"
  | Sw_cuckoo _ -> "sw-ck"
  | Gf_ltm _ -> "gf"

let spec_tier = function
  | Emc _ | Sw_megaflow _ | Sw_cuckoo _ -> Software
  | Nic_megaflow _ | Gf_ltm _ -> Hardware

let spec_capacity = function
  | Emc { capacity; _ }
  | Nic_megaflow { capacity; _ }
  | Sw_megaflow { capacity; _ }
  | Sw_cuckoo { capacity; _ } ->
      capacity
  | Gf_ltm { gf; _ } -> Gf_core.Config.total_capacity gf

let build ?name ~default_max_idle ~pipeline spec =
  match spec with
  | Emc { capacity; max_idle; _ } ->
      let max_idle = Option.value max_idle ~default:default_max_idle in
      of_microflow ?name ~max_idle
        (Microflow.create ~policy:(spec_evict spec) ~capacity ())
  | Nic_megaflow { capacity; max_idle; _ } ->
      let max_idle = Option.value max_idle ~default:default_max_idle in
      of_megaflow ?name ~tier:Hardware ~max_idle
        (Megaflow.create ~policy:(spec_evict spec) ~capacity ())
  | Sw_megaflow { search; capacity; max_idle; _ } ->
      (* The software wildcard cache outlives the NIC levels: entries are
         cheap (host DRAM) and re-seeding the NIC from it avoids slowpath
         re-execution, so the default idle budget is 4x the hierarchy's. *)
      let max_idle = Option.value max_idle ~default:(4.0 *. default_max_idle) in
      of_megaflow ?name ~tier:Software ~max_idle
        (Megaflow.create ~search ~policy:(spec_evict spec) ~capacity ())
  | Sw_cuckoo { capacity; max_idle; _ } ->
      (* Same host-DRAM idle budget as the software megaflow it replaces. *)
      let max_idle = Option.value max_idle ~default:(4.0 *. default_max_idle) in
      of_cuckoo ?name ~max_idle
        (Gf_cache.Cuckoo.create ~policy:(spec_evict spec) ~capacity ())
  | Gf_ltm { gf; max_idle } ->
      let max_idle = Option.value max_idle ~default:default_max_idle in
      of_gigaflow ?name ~pipeline
        (Gigaflow.create { gf with Gf_core.Config.max_idle })
