(** The end-to-end datapath simulator: a generic walker over an ordered
    cache hierarchy (paper Fig. 2b / Fig. 5a).

    A packet is looked up level by level ({!Cache_level.t}, walk order);
    the first hit wins and misses fall through.  A full miss runs the
    userspace pipeline once and offers the traversal to every level's
    install policy.  Hits at deeper levels promote into shallower
    [Promote_on_hit] levels (OVS's EMC).  Idle entries expire on a
    periodic per-level sweep.

    The walker knows no backend concretely: SmartNIC Megaflow, Gigaflow
    LTM, EMC and the software wildcard cache are all {!Cache_level.t}
    values, so hierarchies are composed declaratively ({!config.levels})
    and selected by name ({!preset}). *)

type config = {
  name : string;  (** Hierarchy name (preset key, metrics label). *)
  levels : Cache_level.spec list;
      (** Walk order: shallowest (consulted first) to deepest.  NIC-tier
          levels come first — packets traverse the SmartNIC before any
          host software runs. *)
  max_idle : float;
      (** Default idle eviction budget, seconds.  Levels may override via
          their spec; the software wildcard cache defaults to 4x this. *)
  expire_every : float;  (** Period of the eviction sweep, seconds. *)
  admission : Gf_offload.Heavy_hitter.policy;
      (** [Admit_all] (every preset's default except the [*_hh] hybrids)
          keeps the historical behaviour: every slowpath traversal is
          offered to every level.  [Heavy_hitter _] gates hardware-tier
          installs on a space-saving top-K sketch: cold flows are deferred
          to the software tier, flows that get hot there are promoted to
          hardware off the packet path, and a re-partition sweep
          (piggybacked on the eviction sweep) demotes entries whose flows
          went cold. *)
}

(** {1 Preset hierarchies}

    Names read host-hierarchy-style (EMC, then wildcard levels); the walk
    order always puts the NIC-resident level first. *)

val emc_mf_sw :
  ?emc_capacity:int ->
  ?mf_capacity:int ->
  ?sw_search:Gf_classifier.Searcher.algo ->
  ?sw_capacity:int ->
  ?max_idle:float ->
  ?expire_every:float ->
  ?admission:Gf_offload.Heavy_hitter.policy ->
  unit ->
  config
(** The paper's baseline: SmartNIC Megaflow offload (32K entries) in front
    of OVS's EMC + software wildcard cache. *)

val emc_gf_sw :
  ?gf:Gf_core.Config.t ->
  ?emc_capacity:int ->
  ?sw_search:Gf_classifier.Searcher.algo ->
  ?sw_capacity:int ->
  ?max_idle:float ->
  ?expire_every:float ->
  ?admission:Gf_offload.Heavy_hitter.policy ->
  unit ->
  config
(** The paper's headline configuration: Gigaflow LTM (4 tables x 8K) in
    front of the EMC + software wildcard cache. *)

val mf_sw :
  ?mf_capacity:int ->
  ?sw_search:Gf_classifier.Searcher.algo ->
  ?sw_capacity:int ->
  ?max_idle:float ->
  ?expire_every:float ->
  ?admission:Gf_offload.Heavy_hitter.policy ->
  unit ->
  config
(** Megaflow offload without an EMC. *)

val gf_sw :
  ?gf:Gf_core.Config.t ->
  ?sw_search:Gf_classifier.Searcher.algo ->
  ?sw_capacity:int ->
  ?max_idle:float ->
  ?expire_every:float ->
  ?admission:Gf_offload.Heavy_hitter.policy ->
  unit ->
  config
(** Gigaflow + software wildcard cache, no EMC (the paper's Fig. 2b
    hybrid). *)

val mf_sw_hh :
  ?mf_capacity:int ->
  ?sw_capacity:int ->
  ?max_idle:float ->
  ?expire_every:float ->
  ?admission:Gf_offload.Heavy_hitter.policy ->
  unit ->
  config
(** Skew-aware Megaflow hybrid: hardware Megaflow under heavy-hitter
    admission, cuckoo exact-match software table for the long tail. *)

val gf_sw_hh :
  ?gf:Gf_core.Config.t ->
  ?sw_capacity:int ->
  ?max_idle:float ->
  ?expire_every:float ->
  ?admission:Gf_offload.Heavy_hitter.policy ->
  unit ->
  config
(** Skew-aware Gigaflow hybrid: Gigaflow LTM under heavy-hitter admission,
    cuckoo exact-match software table for the long tail. *)

val gf_only :
  ?gf:Gf_core.Config.t ->
  ?max_idle:float ->
  ?expire_every:float ->
  ?admission:Gf_offload.Heavy_hitter.policy ->
  unit ->
  config
(** Gigaflow with no software levels: every LTM miss is a slowpath. *)

val mf_only :
  ?mf_capacity:int ->
  ?max_idle:float ->
  ?expire_every:float ->
  ?admission:Gf_offload.Heavy_hitter.policy ->
  unit ->
  config
(** SmartNIC Megaflow alone. *)

val preset_names : string list

val preset :
  ?gf:Gf_core.Config.t ->
  ?mf_capacity:int ->
  ?emc_capacity:int ->
  ?sw_search:Gf_classifier.Searcher.algo ->
  ?sw_capacity:int ->
  ?max_idle:float ->
  ?expire_every:float ->
  ?policy:Gf_cache.Evict.policy ->
  ?admission:Gf_offload.Heavy_hitter.policy ->
  string ->
  config option
(** Look a preset up by name (see {!preset_names}); optional arguments
    override the preset's defaults where they apply.  [policy] applies
    the replacement policy to {e every} level (see {!with_policy});
    [admission] overrides the preset's admission policy (the [*_hh]
    presets default to heavy-hitter admission, everything else to
    [Admit_all]). *)

(** {1 Config combinators} *)

val without_software : config -> config
(** Drop every software-tier level (Fig. 18's no-software ablation). *)

val with_sw_search : Gf_classifier.Searcher.algo -> config -> config
(** Swap the software wildcard cache's search algorithm (Fig. 17 axis). *)

val with_max_idle : float -> config -> config

val with_admission : Gf_offload.Heavy_hitter.policy -> config -> config
(** Override the hierarchy's hardware admission policy. *)

val with_sw_level : [ `Cuckoo | `Megaflow ] -> config -> config
(** Swap the software cache flavour: the wildcard Megaflow (classifier
    search) vs the cuckoo exact-match table (two probes per lookup).
    Capacity, idle budget and eviction override carry over; the Megaflow
    flavour comes back with TSS search. *)

val with_policy : Gf_cache.Evict.policy -> config -> config
(** Apply one replacement policy to every level (the Gigaflow LTM's
    embedded config included). *)

val with_level_policy : level:string -> Gf_cache.Evict.policy -> config -> config
(** Apply a replacement policy to the level whose metrics name is
    [level] ("emc", "nic-mf", "sw-mf", "gf", with "#2" suffixes for
    duplicated kinds — the same names {!Metrics.levels} reports).
    Unknown names leave the config unchanged. *)

val hw_capacity : config -> int
(** Total SmartNIC-resident entry capacity of the hierarchy. *)

(** {1 Datapath} *)

type t

val create : ?telemetry:Gf_telemetry.Telemetry.t -> config -> Gf_pipeline.Pipeline.t -> t
(** [telemetry] (default [None]) attaches the observability sink, pull
    style: the packet path only bumps flat per-level counter records and
    appends raw latencies / event candidates to preallocated rings
    ({!Gf_telemetry.Passive}); histogram bucketing, flight-recorder
    sampling and time-series building run when the sampler pulls
    ({!maybe_sample}, {!snapshot}, {!finalize} — or a ring filling up).
    Any Gigaflow level registers its install-path counters in the
    registry.  Without it every emission site is a no-op pattern match —
    the hot path stays allocation-free. *)

val telemetry : t -> Gf_telemetry.Telemetry.t option

val heavy_hitter : t -> Gf_offload.Heavy_hitter.t option
(** The live admission sketch ([None] under [Admit_all]) — diagnostics
    (top-K reporting) only; the datapath owns its mutation. *)

val config : t -> config
(** The live configuration — reflects any online actuation made through
    {!set_admission} / {!set_evict_policy} since {!create}. *)

val pipeline : t -> Gf_pipeline.Pipeline.t

val levels : t -> Cache_level.t list
(** The instantiated hierarchy, walk order. *)

(** {1 Online control knobs}

    Actuation points for an adaptive controller (see [Gf_control]).  All
    of them are deterministic state transitions on the datapath — no RNG,
    no wall clock — so a controller driven at a deterministic cadence
    preserves the Domains==Sequential replay guarantees. *)

val level_names : t -> string array
(** Metric names of the instantiated levels, walk order (deduplicated:
    "sw-mf", "sw-mf#2", ...) — the [~level] keys below. *)

val set_admission : t -> Gf_offload.Heavy_hitter.policy -> unit
(** Retune hardware admission online.  Changing [k] {e retargets} the
    live sketch in place — tracked flows, counts and error bounds carry
    over (see {!Gf_offload.Heavy_hitter.retarget}) — and changing
    [threshold] is a field write, so the learned hot set survives the
    actuation.  Switching to [Admit_all] drops the sketch; switching back
    starts a fresh one. *)

val set_evict_policy : t -> level:string -> Gf_cache.Evict.policy -> unit
(** Swap one level's replacement policy online (applies from the next
    install).  Raises [Invalid_argument] on an unknown level name. *)

val set_level_capacity : t -> level:string -> int -> unit
(** Retune one level's admission bound online.  Software levels clamp to
    their physical storage where relevant; hardware geometry is fixed, so
    hardware levels ignore it.  Shrinking does not evict residents — the
    bound bites on the next install.  Raises [Invalid_argument] on an
    unknown level name. *)

val evict_policy : t -> level:string -> Gf_cache.Evict.policy
(** The level's current replacement policy.  Raises [Invalid_argument] on
    an unknown level name. *)

val gigaflow : t -> Gf_core.Gigaflow.t option
(** The first Gigaflow level's instance, if the hierarchy has one. *)

val hw_megaflow : t -> Gf_cache.Megaflow.t option
(** The first hardware-tier Megaflow level's instance, if any. *)

val hw_occupancy : t -> int
(** Entries currently resident across all hardware-tier levels. *)

type outcome = Hw_hit | Sw_hit | Slowpath

val process :
  ?flow_id:int ->
  t ->
  now:float ->
  Gf_flow.Flow.t ->
  outcome * Gf_pipeline.Action.terminal option * float
(** Handle one packet: returns the path taken, the forwarding decision
    ([None] if the slowpath failed, e.g. a pipeline loop) and the modelled
    latency in microseconds.  Updates metrics, including the per-level
    breakdown ({!Metrics.levels}).  [flow_id] (default [-1], unknown)
    only feeds the traversal tracer's per-flow miss attribution — it
    never affects the forwarding result. *)

val process_memo :
  t ->
  now:float ->
  flow_id:int ->
  Gf_flow.Flow.t ->
  outcome * Gf_pipeline.Action.terminal option * float
(** The batched engine's walker: observably identical to {!process} — same
    counters, same latency accumulation and histograms, same telemetry
    events, same occupancy peaks — but amortised for repeat flows.  Level
    lookups go through per-flow memos that replay the stored result (and
    its touch side effects) while the level's entry set is unchanged;
    repeat slowpaths replay the memoised pipeline traversal (install
    offers and adaptive-profile updates stay live); and the per-packet
    occupancy-peak scan is elided when no mutation could have moved an
    occupancy.  Requires that a given [flow_id] is always presented with
    the same flow value (true of every {!Gf_workload.Trace} generator). *)

val revalidate : t -> int * int
(** Sweep every level against the (possibly updated) pipeline; returns
    total [(evicted, work)].  Per-level evictions are recorded in
    metrics.  Also drops the memoised slowpath traversals
    ({!process_memo}) — the pipeline may have changed. *)

val snapshot : t -> time:float -> Gf_telemetry.Series.sample
(** A time-series sample built from the live metrics (and current level
    occupancies), so a snapshot taken after {!run} agrees with the returned
    {!Metrics.t} exactly.  Flushes the passive telemetry rings first, so
    histogram-derived quantiles see every latency recorded so far. *)

val maybe_sample : t -> time:float -> unit
(** The pull-model sampler tick: if a time-series sample is due at the
    current packet count ({!Gf_telemetry.Telemetry.sample_due}), flush the
    passive rings and push a {!snapshot} at [time].  The batched engine
    calls this once per batch; cadence cannot change the final telemetry —
    flushes preserve emission order and each ring feeds exactly one
    histogram/recorder, so the result is a pure function of the packet
    stream.  A no-op without telemetry. *)

val finalize : t -> time:float -> Metrics.t
(** End-of-run epilogue (called by {!run}; the batched engine calls it
    directly after draining): records final occupancies, flushes one
    unconditional telemetry sample at [time] plus a full counter export,
    and returns the metrics. *)

val run :
  ?on_packet:(Gf_workload.Trace.packet -> outcome -> float -> unit) ->
  ?miss_sink:(flow_id:int -> cycles:int -> unit) ->
  t ->
  Gf_workload.Trace.t ->
  Metrics.t
(** Replay a trace.  [on_packet] observes every packet (Fig. 18 timelines);
    [miss_sink] observes slowpath CPU work per flow (Fig. 19 RSS scaling).
    With telemetry attached, pushes a sample every [sample_every] packets
    plus a final unconditional sample, then exports the final counters to
    the registry ({!Metrics.to_registry}). *)

val metrics : t -> Metrics.t
