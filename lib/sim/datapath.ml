module Action = Gf_pipeline.Action
module Pipeline = Gf_pipeline.Pipeline
module Executor = Gf_pipeline.Executor
module Traversal = Gf_pipeline.Traversal
module Latency = Gf_nic.Latency
module Telemetry = Gf_telemetry.Telemetry
module Recorder = Gf_telemetry.Recorder
module Histogram = Gf_telemetry.Histogram
module Series = Gf_telemetry.Series
module Passive = Gf_telemetry.Passive
module Tracer = Gf_telemetry.Tracer
module Attribution = Gf_telemetry.Attribution
module Heavy_hitter = Gf_offload.Heavy_hitter
module Flow = Gf_flow.Flow

(* ----------------------------- hierarchies ----------------------------- *)

type config = {
  name : string;
  levels : Cache_level.spec list;
  max_idle : float;
  expire_every : float;
  admission : Heavy_hitter.policy;
      (* [Admit_all] (the default everywhere but the [*_hh] presets) keeps
         the historical behaviour: every slowpath installs into every
         level.  [Heavy_hitter _] gates hardware-tier installs on the
         space-saving sketch and re-partitions on the expiry sweep. *)
}

let default_emc_capacity = 8192 (* OVS's EMC default entry count *)
let default_mf_capacity = 32_768
let default_sw_capacity = 1_000_000
let default_max_idle = 10.0
let default_expire_every = 1.0

let emc_spec capacity = Cache_level.Emc { capacity; max_idle = None; evict = None }

let nic_mf_spec capacity =
  Cache_level.Nic_megaflow { capacity; max_idle = None; evict = None }

let sw_mf_spec search capacity =
  Cache_level.Sw_megaflow { search; capacity; max_idle = None; evict = None }

let gf_spec gf = Cache_level.Gf_ltm { gf; max_idle = None }

(* Preset hierarchies.  Names list the levels OVS-style (host hierarchy
   around the NIC cache); the [levels] list is the walk order — the NIC
   cache always comes first because packets hit it before ever reaching
   host software. *)

let emc_mf_sw ?(emc_capacity = default_emc_capacity)
    ?(mf_capacity = default_mf_capacity) ?(sw_search = `Tss)
    ?(sw_capacity = default_sw_capacity) ?(max_idle = default_max_idle)
    ?(expire_every = default_expire_every)
    ?(admission = Heavy_hitter.Admit_all) () =
  {
    name = "emc_mf_sw";
    levels =
      [ nic_mf_spec mf_capacity; emc_spec emc_capacity; sw_mf_spec sw_search sw_capacity ];
    max_idle;
    expire_every;
    admission;
  }

let emc_gf_sw ?(gf = Gf_core.Config.default) ?(emc_capacity = default_emc_capacity)
    ?(sw_search = `Tss) ?(sw_capacity = default_sw_capacity)
    ?(max_idle = default_max_idle) ?(expire_every = default_expire_every)
    ?(admission = Heavy_hitter.Admit_all) () =
  {
    name = "emc_gf_sw";
    levels = [ gf_spec gf; emc_spec emc_capacity; sw_mf_spec sw_search sw_capacity ];
    max_idle;
    expire_every;
    admission;
  }

let mf_sw ?(mf_capacity = default_mf_capacity) ?(sw_search = `Tss)
    ?(sw_capacity = default_sw_capacity) ?(max_idle = default_max_idle)
    ?(expire_every = default_expire_every)
    ?(admission = Heavy_hitter.Admit_all) () =
  {
    name = "mf_sw";
    levels = [ nic_mf_spec mf_capacity; sw_mf_spec sw_search sw_capacity ];
    max_idle;
    expire_every;
    admission;
  }

(* The paper-faithful hybrid (Fig. 2b without the EMC): Gigaflow LTM on the
   NIC backed by the software Megaflow. *)
let gf_sw ?(gf = Gf_core.Config.default) ?(sw_search = `Tss)
    ?(sw_capacity = default_sw_capacity) ?(max_idle = default_max_idle)
    ?(expire_every = default_expire_every)
    ?(admission = Heavy_hitter.Admit_all) () =
  {
    name = "gf_sw";
    levels = [ gf_spec gf; sw_mf_spec sw_search sw_capacity ];
    max_idle;
    expire_every;
    admission;
  }

let gf_only ?(gf = Gf_core.Config.default) ?(max_idle = default_max_idle)
    ?(expire_every = default_expire_every)
    ?(admission = Heavy_hitter.Admit_all) () =
  { name = "gf_only"; levels = [ gf_spec gf ]; max_idle; expire_every; admission }

let mf_only ?(mf_capacity = default_mf_capacity) ?(max_idle = default_max_idle)
    ?(expire_every = default_expire_every)
    ?(admission = Heavy_hitter.Admit_all) () =
  {
    name = "mf_only";
    levels = [ nic_mf_spec mf_capacity ];
    max_idle;
    expire_every;
    admission;
  }

let sw_ck_spec capacity =
  Cache_level.Sw_cuckoo { capacity; max_idle = None; evict = None }

let default_admission =
  Heavy_hitter.Heavy_hitter
    { k = Heavy_hitter.default_k; threshold = Heavy_hitter.default_threshold }

(* Skew-aware hybrids: the hardware level only admits flows the
   space-saving sketch says are hot; everything else lives in the cuckoo
   exact-match software table (two probes per lookup, no classifier
   search).  The paper-faithful hierarchies above keep [Admit_all]. *)
let mf_sw_hh ?(mf_capacity = default_mf_capacity)
    ?(sw_capacity = default_sw_capacity) ?(max_idle = default_max_idle)
    ?(expire_every = default_expire_every) ?(admission = default_admission) () =
  {
    name = "mf_sw_hh";
    levels = [ nic_mf_spec mf_capacity; sw_ck_spec sw_capacity ];
    max_idle;
    expire_every;
    admission;
  }

let gf_sw_hh ?(gf = Gf_core.Config.default) ?(sw_capacity = default_sw_capacity)
    ?(max_idle = default_max_idle) ?(expire_every = default_expire_every)
    ?(admission = default_admission) () =
  {
    name = "gf_sw_hh";
    levels = [ gf_spec gf; sw_ck_spec sw_capacity ];
    max_idle;
    expire_every;
    admission;
  }

let preset_names =
  [
    "emc_gf_sw";
    "emc_mf_sw";
    "gf_sw";
    "mf_sw";
    "gf_sw_hh";
    "mf_sw_hh";
    "gf_only";
    "mf_only";
  ]

let preset ?gf ?mf_capacity ?emc_capacity ?sw_search ?sw_capacity ?max_idle
    ?expire_every ?policy ?admission name =
  let apply cfg =
    match policy with
    | None -> cfg
    | Some p ->
        {
          cfg with
          levels = List.map (fun s -> Cache_level.spec_with_evict s p) cfg.levels;
        }
  in
  Option.map apply
  @@
  match name with
  | "emc_gf_sw" ->
      Some
        (emc_gf_sw ?gf ?emc_capacity ?sw_search ?sw_capacity ?max_idle ?expire_every
           ?admission ())
  | "emc_mf_sw" ->
      Some
        (emc_mf_sw ?mf_capacity ?emc_capacity ?sw_search ?sw_capacity ?max_idle
           ?expire_every ?admission ())
  | "gf_sw" ->
      Some (gf_sw ?gf ?sw_search ?sw_capacity ?max_idle ?expire_every ?admission ())
  | "mf_sw" ->
      Some
        (mf_sw ?mf_capacity ?sw_search ?sw_capacity ?max_idle ?expire_every ?admission ())
  | "gf_sw_hh" -> Some (gf_sw_hh ?gf ?sw_capacity ?max_idle ?expire_every ?admission ())
  | "mf_sw_hh" ->
      Some (mf_sw_hh ?mf_capacity ?sw_capacity ?max_idle ?expire_every ?admission ())
  | "gf_only" -> Some (gf_only ?gf ?max_idle ?expire_every ?admission ())
  | "mf_only" -> Some (mf_only ?mf_capacity ?max_idle ?expire_every ?admission ())
  | _ -> None

(* ------------------------- config combinators ------------------------- *)

let without_software cfg =
  {
    cfg with
    levels =
      List.filter
        (fun s -> Cache_level.spec_tier s = Cache_level.Hardware)
        cfg.levels;
  }

let with_sw_search algo cfg =
  {
    cfg with
    levels =
      List.map
        (function
          | Cache_level.Sw_megaflow s -> Cache_level.Sw_megaflow { s with search = algo }
          | s -> s)
        cfg.levels;
  }

let with_max_idle max_idle cfg = { cfg with max_idle }
let with_admission admission cfg = { cfg with admission }

(* Swap the software cache flavour: the wildcard Megaflow (classifier
   search, handles any traffic) vs the cuckoo exact-match table (two
   probes, the cheap home for mice under heavy-hitter admission).
   Capacity, idle budget and any eviction override carry over. *)
let with_sw_level kind cfg =
  let levels =
    List.map
      (fun s ->
        match (s, kind) with
        | Cache_level.Sw_megaflow { capacity; max_idle; evict; _ }, `Cuckoo ->
            Cache_level.Sw_cuckoo { capacity; max_idle; evict }
        | Cache_level.Sw_cuckoo { capacity; max_idle; evict }, `Megaflow ->
            Cache_level.Sw_megaflow { search = `Tss; capacity; max_idle; evict }
        | other, _ -> other)
      cfg.levels
  in
  { cfg with levels }

let with_policy policy cfg =
  {
    cfg with
    levels = List.map (fun s -> Cache_level.spec_with_evict s policy) cfg.levels;
  }

(* Level naming here must mirror [create]'s deduplication ("sw-mf",
   "sw-mf#2", ...) so callers can target levels by the names metrics
   report. *)
let with_level_policy ~level policy cfg =
  let seen = Hashtbl.create 8 in
  let levels =
    List.map
      (fun s ->
        let base = Cache_level.spec_name s in
        let n = 1 + Option.value ~default:0 (Hashtbl.find_opt seen base) in
        Hashtbl.replace seen base n;
        let name = if n = 1 then base else Printf.sprintf "%s#%d" base n in
        if String.equal name level then Cache_level.spec_with_evict s policy else s)
      cfg.levels
  in
  { cfg with levels }

let hw_capacity cfg =
  List.fold_left
    (fun acc s ->
      if Cache_level.spec_tier s = Cache_level.Hardware then
        acc + Cache_level.spec_capacity s
      else acc)
    0 cfg.levels

(* ------------------------------ datapath ------------------------------ *)

type outcome = Hw_hit | Sw_hit | Slowpath

(* Compiled per-flow replay of a level-0 hardware hit, used only by
   [process_memo].  For a repeat flow whose hit stays at the top
   (hardware) level, every per-packet effect is a constant of the flow:
   the latency (hardware hit cost ignores work), both histogram bucket
   indices, the drop decision and the returned triple.  They are computed
   once on the slowpath walk and replayed with plain mutations; only the
   backend's own validity check ([p_replay], see
   [Cache_level.prepare_replay]) runs per packet, returning the exact
   lookup work or [None] once the memoised entry is stale. *)
type pmemo = {
  p_replay : now:float -> int option;
  p_lat : float;  (* constant hardware hit latency, us *)
  p_gidx : int;  (* precomputed bucket of [p_lat] in the global histogram *)
  p_lidx : int;  (* ... and in level 0's histogram *)
  p_cpw : int;  (* level 0 [cycles_per_work] *)
  p_is_drop : bool;
  p_depth : int;  (* tag-chain reuse depth of the compiled hit (tracer) *)
  p_result : outcome * Action.terminal option * float;
}

type t = {
  mutable cfg : config;
      (* Mutable for the online control knobs ([set_admission],
         [set_evict_policy], [set_level_capacity]): [config t] always
         reflects the live settings. *)
  pipeline : Pipeline.t;
  levels : Cache_level.t array;  (* walk order *)
  level_metrics : Metrics.level array;  (* same order *)
  metrics : Metrics.t;
  mutable last_expire : float;
  telemetry : Telemetry.t option;
      (* [None] (the default) keeps the per-packet path free of telemetry
         work: every emission site pattern-matches and the [None] branch
         does nothing — no calls, no float boxing. *)
  psv : Passive.t option;
      (* [Some] iff [telemetry] is: the pull-model write targets.  Per-
         packet emission sites bump the flat counter records and append
         raw latencies / event candidates to the preallocated rings; all
         histogram bucket aggregation, series building and recorder
         sampling happens when the sampler flushes ([snapshot] /
         [maybe_sample] / ring-full), off the packet loop. *)
  traversal_memo : (int, (Traversal.t, unit) result) Hashtbl.t;
      (* flow id -> memoised [Executor.execute] result, used only by
         [process_memo].  [Executor.execute] is observably pure over a
         fixed pipeline, so the memo is valid for a whole run; a pipeline
         update ([revalidate]) resets it. *)
  mutable replay_tbl : pmemo option array;
      (* flow id -> compiled level-0 replay, grown on demand.  Entries
         self-invalidate through [p_replay]; [revalidate] clears the lot. *)
  mutable hh : Heavy_hitter.t option;
      (* [Some] iff [cfg.admission] is [Heavy_hitter _]; observed once per
         packet on every packet path so walker and batched replay agree
         bit-for-bit.  Mutable only for [set_admission] transitions to and
         from [Admit_all]; retuning K retargets the sketch in place. *)
  mutable hh_threshold : int;
  hh_attempted : unit Flow.Tbl.t;
      (* Flows already offered a hardware promotion this sweep interval —
         rate-limits the promotion path to once per flow per sweep; cleared
         by the admission sweep in [maybe_expire]. *)
  tracer : Tracer.t option;
      (* [Some] iff telemetry is attached with [trace_sample_every > 0]:
         the traversal tracer.  Sampled packets append probe / slowpath
         spans to its ring; every miss — sampled or not — is charged to a
         cause via the flow-state arrays below, so the census reconciles
         with [Metrics] misses exactly.  [None] keeps the packet path
         free of tracer work (one pattern match per site). *)
  level_is_ltm : bool array;  (* walk order: level is the Gigaflow LTM *)
  level_is_hw : bool array;
  level_max_idle : float array;  (* descriptor idle budgets, for Expired *)
  mutable reval_gen : int;
      (* bumped by [revalidate]; flow-state install generations older
         than it resolve misses to [Revalidation] *)
  (* Per-level, per-flow admission history (tracer only; empty otherwise):
     what happened to this flow at this level last, when it was last
     seen there, and under which revalidation generation it installed.
     Flat arrays indexed by flow id with doubling growth (they saturate
     at the trace's flow count, keeping the soak test's heap flat). *)
  mutable fs_cap : int;
  fs_state : Bytes.t array;
      (* '\000' never installed, '\001' installed, '\002' admission-
         deferred, '\003' install-rejected *)
  fs_gen : int array array;
  fs_seen : float array array;
  mutable fs_seen0 : float array;
      (* alias of [fs_seen.(0)], re-pointed on growth: the memo fast
         path touches level-0 recency once per packet and skips the
         double indirection *)
}

let create ?telemetry cfg pipeline =
  (* Deduplicate metric names for hierarchies stacking the same level kind
     twice (e.g. two wildcard caches): "sw-mf", "sw-mf#2", ... *)
  let seen = Hashtbl.create 8 in
  let unique_name spec =
    let base = Cache_level.spec_name spec in
    let n = 1 + Option.value ~default:0 (Hashtbl.find_opt seen base) in
    Hashtbl.replace seen base n;
    if n = 1 then base else Printf.sprintf "%s#%d" base n
  in
  let levels =
    cfg.levels
    |> List.map (fun spec ->
           Cache_level.build ~name:(unique_name spec)
             ~default_max_idle:cfg.max_idle ~pipeline spec)
    |> Array.of_list
  in
  let metrics = Metrics.create () in
  let level_metrics =
    Array.map (fun l -> Metrics.level metrics (Cache_level.name l)) levels
  in
  (* Give the Gigaflow install path its registry handles up front (lookup
     happens once here, never per packet). *)
  (match telemetry with
  | Some tel ->
      Array.iter
        (fun l ->
          match Cache_level.view l with
          | Cache_level.Gigaflow_view g ->
              Gf_core.Gigaflow.attach_telemetry g (Telemetry.registry tel)
          | Cache_level.Microflow_view _ | Cache_level.Megaflow_view _
          | Cache_level.Cuckoo_view _ ->
              ())
        levels
  | None -> ());
  let hh, hh_threshold =
    match cfg.admission with
    | Heavy_hitter.Admit_all -> (None, 0)
    | Heavy_hitter.Heavy_hitter { k; threshold } ->
        (Some (Heavy_hitter.create ~k), threshold)
  in
  let psv =
    Option.map
      (fun tel ->
        Passive.create
          ~level_names:(Array.map Cache_level.name levels)
          ~recorder:(Telemetry.recorder tel) ())
      telemetry
  in
  let tracer =
    match telemetry with
    | Some tel when (Telemetry.config tel).Telemetry.trace_sample_every > 0 ->
        let tr =
          Tracer.create
            ~sample_every:(Telemetry.config tel).Telemetry.trace_sample_every
            ~level_names:(Array.map Cache_level.name levels)
            ()
        in
        Telemetry.set_tracer tel tr;
        Some tr
    | Some _ | None -> None
  in
  let n_levels = Array.length levels in
  let fs_cap = if tracer = None then 0 else 1024 in
  let fs_seen = Array.init n_levels (fun _ -> Array.make fs_cap neg_infinity) in
  {
    cfg;
    pipeline;
    levels;
    level_metrics;
    metrics;
    last_expire = 0.0;
    telemetry;
    psv;
    traversal_memo = Hashtbl.create 256;
    replay_tbl = Array.make 1024 None;
    hh;
    hh_threshold;
    hh_attempted = Flow.Tbl.create 64;
    tracer;
    level_is_ltm =
      Array.map
        (fun l ->
          match Cache_level.view l with
          | Cache_level.Gigaflow_view _ -> true
          | Cache_level.Microflow_view _ | Cache_level.Megaflow_view _
          | Cache_level.Cuckoo_view _ ->
              false)
        levels;
    level_is_hw =
      Array.map (fun l -> Cache_level.tier l = Cache_level.Hardware) levels;
    level_max_idle =
      Array.map (fun l -> (Cache_level.descriptor l).Cache_level.max_idle) levels;
    reval_gen = 0;
    fs_cap;
    fs_state = Array.init n_levels (fun _ -> Bytes.make fs_cap '\000');
    fs_gen = Array.init n_levels (fun _ -> Array.make fs_cap 0);
    fs_seen;
    fs_seen0 = (if n_levels > 0 then fs_seen.(0) else [||]);
  }

let telemetry t = t.telemetry
let heavy_hitter t = t.hh
let config t = t.cfg
let pipeline t = t.pipeline
let levels t = Array.to_list t.levels

let find_view f t = Array.find_map (fun l -> f (Cache_level.view l)) t.levels

(* ------------------------- online control knobs ------------------------ *)

let level_names t = Array.map Cache_level.name t.levels

let find_level t name =
  match
    Array.find_opt (fun l -> String.equal (Cache_level.name l) name) t.levels
  with
  | Some l -> l
  | None ->
      invalid_arg
        (Printf.sprintf "Datapath: no cache level named %S (have: %s)" name
           (String.concat ", " (Array.to_list (level_names t))))

(* Retune admission online.  K changes retarget the existing sketch in
   place (counts, error bounds and the tracked hot set carry over — the
   controller's whole point is not to forget the elephants it just
   learned); threshold changes are a field write.  Transitions to/from
   [Admit_all] drop or create the sketch.  [config t] stays truthful. *)
let set_admission t admission =
  (match (admission, t.hh) with
  | Heavy_hitter.Admit_all, _ ->
      t.hh <- None;
      t.hh_threshold <- 0;
      Flow.Tbl.reset t.hh_attempted
  | Heavy_hitter.Heavy_hitter { k; threshold }, Some hh ->
      Heavy_hitter.retarget hh ~k;
      t.hh_threshold <- threshold
  | Heavy_hitter.Heavy_hitter { k; threshold }, None ->
      t.hh <- Some (Heavy_hitter.create ~k);
      t.hh_threshold <- threshold);
  t.cfg <- { t.cfg with admission }

let set_evict_policy t ~level policy =
  Cache_level.set_evict (find_level t level) policy;
  (* Keep the spec list consistent for [config t] readers: the runtime
     names deduplicate as "base", "base#2", ... in spec order. *)
  let seen = Hashtbl.create 8 in
  let levels =
    List.map
      (fun spec ->
        let base = Cache_level.spec_name spec in
        let n = 1 + Option.value ~default:0 (Hashtbl.find_opt seen base) in
        Hashtbl.replace seen base n;
        let name = if n = 1 then base else Printf.sprintf "%s#%d" base n in
        if String.equal name level then Cache_level.spec_with_evict spec policy
        else spec)
      t.cfg.levels
  in
  t.cfg <- { t.cfg with levels }

let set_level_capacity t ~level capacity =
  Cache_level.set_capacity (find_level t level) capacity

let evict_policy t ~level = Cache_level.evict_policy (find_level t level)

let gigaflow t =
  find_view (function Cache_level.Gigaflow_view g -> Some g | _ -> None) t

let hw_megaflow t =
  Array.find_map
    (fun l ->
      if Cache_level.tier l = Cache_level.Hardware then
        match Cache_level.view l with
        | Cache_level.Megaflow_view mf -> Some mf
        | _ -> None
      else None)
    t.levels

let hw_occupancy t =
  Array.fold_left
    (fun acc l ->
      if Cache_level.tier l = Cache_level.Hardware then acc + Cache_level.occupancy l
      else acc)
    0 t.levels

(* Unified idle-expiry sweep: every level evicts on its own descriptor's
   idle budget; per-level eviction counts are recorded (nothing is
   [ignore]d) and hardware-tier evictions also feed the aggregate
   [hw_evictions]. *)
let maybe_expire t ~now =
  if now -. t.last_expire >= t.cfg.expire_every then begin
    t.last_expire <- now;
    Array.iteri
      (fun i level ->
        let evicted = Cache_level.expire level ~now in
        let lm = t.level_metrics.(i) in
        lm.Metrics.evictions <- lm.Metrics.evictions + evicted;
        if Cache_level.tier level = Cache_level.Hardware then
          t.metrics.Metrics.hw_evictions <- t.metrics.Metrics.hw_evictions + evicted;
        match t.psv with
        | Some p when evicted > 0 ->
            let c = p.Passive.counters.(i) in
            c.Passive.c_evicts <- c.Passive.c_evicts + evicted;
            if p.Passive.events_on then
              Passive.note p ~kind:Recorder.Evict ~level:i
                ~packet:t.metrics.Metrics.packets ~time:now ~lat:0.0
                ~count:evicted
        | Some _ | None -> ())
      t.levels;
    (* Admission re-partition: decay the sketch (so yesterday's elephants
       must keep earning their slots), reopen the per-sweep promotion
       budget, then demote hardware entries whose flows went cold.  Runs
       on the expiry cadence so walker and batched replay sweep at the
       same packet boundaries. *)
    match t.hh with
    | None -> ()
    | Some hh ->
        Heavy_hitter.decay hh;
        Flow.Tbl.reset t.hh_attempted;
        let is_hot = Heavy_hitter.hot hh ~threshold:t.hh_threshold in
        Array.iteri
          (fun i level ->
            if Cache_level.tier level = Cache_level.Hardware then begin
              let demoted = Cache_level.demote level ~is_hot in
              if demoted > 0 then begin
                let lm = t.level_metrics.(i) in
                lm.Metrics.demotions <- lm.Metrics.demotions + demoted;
                lm.Metrics.evictions <- lm.Metrics.evictions + demoted;
                t.metrics.Metrics.hw_demotions <-
                  t.metrics.Metrics.hw_demotions + demoted;
                t.metrics.Metrics.hw_evictions <-
                  t.metrics.Metrics.hw_evictions + demoted;
                match t.psv with
                | Some p ->
                    let c = p.Passive.counters.(i) in
                    c.Passive.c_demotes <- c.Passive.c_demotes + demoted;
                    if p.Passive.events_on then
                      Passive.note p ~kind:Recorder.Demote ~level:i
                        ~packet:t.metrics.Metrics.packets ~time:now ~lat:0.0
                        ~count:demoted
                | None -> ()
              end
            end)
          t.levels
  end

(* Unified revalidation sweep (pipeline updated): every level re-checks its
   entries; evictions are accounted per level.  Returns (evicted, work). *)
let revalidate t =
  (* The pipeline (possibly) changed: memoised slowpath traversals and
     compiled replays are stale. *)
  Hashtbl.reset t.traversal_memo;
  Array.fill t.replay_tbl 0 (Array.length t.replay_tbl) None;
  t.reval_gen <- t.reval_gen + 1;
  let total_evicted = ref 0 and total_work = ref 0 in
  Array.iteri
    (fun i level ->
      let evicted, work = Cache_level.revalidate level t.pipeline in
      let lm = t.level_metrics.(i) in
      lm.Metrics.evictions <- lm.Metrics.evictions + evicted;
      if Cache_level.tier level = Cache_level.Hardware then
        t.metrics.Metrics.hw_evictions <- t.metrics.Metrics.hw_evictions + evicted;
      total_evicted := !total_evicted + evicted;
      total_work := !total_work + work;
      match t.psv with
      | Some p ->
          let c = p.Passive.counters.(i) in
          c.Passive.c_revalidates <- c.Passive.c_revalidates + evicted;
          if p.Passive.events_on then
            Passive.note p ~kind:Recorder.Revalidate ~level:i
              ~packet:t.metrics.Metrics.packets ~time:0.0 ~lat:0.0 ~count:evicted
      | None -> ())
    t.levels;
  (!total_evicted, !total_work)

(* ---------------------------- tracer hooks ---------------------------- *)

(* Grow the per-flow admission-history arrays (doubling) until [fid]
   indexes them. *)
let ensure_flow_slot t fid =
  if fid >= t.fs_cap then begin
    let cap = ref (max 1024 (2 * t.fs_cap)) in
    while fid >= !cap do
      cap := 2 * !cap
    done;
    let cap = !cap in
    Array.iteri
      (fun i b ->
        let b' = Bytes.make cap '\000' in
        Bytes.blit b 0 b' 0 t.fs_cap;
        t.fs_state.(i) <- b')
      t.fs_state;
    Array.iteri
      (fun i g ->
        let g' = Array.make cap 0 in
        Array.blit g 0 g' 0 t.fs_cap;
        t.fs_gen.(i) <- g')
      t.fs_gen;
    Array.iteri
      (fun i s ->
        let s' = Array.make cap neg_infinity in
        Array.blit s 0 s' 0 t.fs_cap;
        t.fs_seen.(i) <- s')
      t.fs_seen;
    t.fs_seen0 <- (if Array.length t.fs_seen > 0 then t.fs_seen.(0) else [||]);
    t.fs_cap <- cap
  end

(* Record an admission outcome for [fid] at level [i] (tracer only). *)
let fs_mark t ~level:i fid st =
  if fid >= 0 then begin
    ensure_flow_slot t fid;
    Bytes.unsafe_set t.fs_state.(i) fid st
  end

let fs_install t ~level:i ~now fid =
  if fid >= 0 then begin
    ensure_flow_slot t fid;
    Bytes.unsafe_set t.fs_state.(i) fid '\001';
    t.fs_gen.(i).(fid) <- t.reval_gen;
    t.fs_seen.(i).(fid) <- now
  end

let fs_touch t ~level:i ~now fid =
  if fid >= 0 then begin
    ensure_flow_slot t fid;
    (* [ensure_flow_slot] guarantees [fid < fs_cap]. *)
    Array.unsafe_set t.fs_seen.(i) fid now
  end

(* Host-cycle width of a probe span: the software search cycles when the
   level burns host CPU, the NIC probe pipeline cost for hardware levels
   (whose [cycles_per_work] is 0 on the host — the span still needs a
   non-degenerate width to show up in a flamegraph). *)
let span_cycles ~cpw ~work = work * (if cpw > 0 then cpw else Latency.probe_cycles)

(* Resolve the cause of a miss at level [i] — reading the level the way an
   operator would: an LTM chain that matched a prefix then dead-ended is a
   tag-chain stall; a flow never installed here is cold;
   admission-deferred and install-rejected flows keep their recorded
   state; an installed flow that missed lost its entry — to revalidation
   if its install predates the last pipeline update, to idle expiry if it
   outlived the level's idle budget, to admission demotion if the sketch
   stopped calling it hot (hardware under heavy-hitter admission), else to
   capacity pressure. *)
let miss_cause t ~level:i ~now ~depth ~flow fid =
  if depth > 0 then Attribution.Tag_chain_stall
  else if fid < 0 || fid >= t.fs_cap then Attribution.Cold
  else
    match Bytes.unsafe_get t.fs_state.(i) fid with
    | '\000' -> Attribution.Cold
    | '\002' -> Attribution.Deferred_admission
    | '\003' -> Attribution.Pressure_evicted
    | _ -> (
        if t.fs_gen.(i).(fid) < t.reval_gen then Attribution.Revalidation
        else if now -. t.fs_seen.(i).(fid) > t.level_max_idle.(i) then
          Attribution.Expired
        else
          match t.hh with
          | Some hh
            when t.level_is_hw.(i)
                 && not (Heavy_hitter.hot hh ~threshold:t.hh_threshold flow) ->
              Attribution.Deferred_admission
          | Some _ | None -> Attribution.Pressure_evicted)

(* Inlined per-packet tracer countdown: the non-sampled case (N-1 of N
   packets) is a compare plus two stores with no cross-module call; the
   sampled case falls through to [Tracer.on_packet], which re-reads
   [until] = 0, notes the sampled packet and resets the countdown.
   Small enough for ocamlopt's classic inliner. *)
let tracer_tick tr =
  if tr.Tracer.until = 0 then ignore (Tracer.on_packet tr : bool)
  else begin
    tr.Tracer.until <- tr.Tracer.until - 1;
    tr.Tracer.active <- false
  end

(* Per-miss tracer hook, shared by [process] and [process_memo_slow]: one
   census increment always (so the per-cause totals reconcile with
   [Metrics] misses exactly); a miss span when the packet is sampled. *)
let trace_miss t tr ~level:i ~now ~work ~cpw ~flow fid =
  let depth =
    if t.level_is_ltm.(i) then Cache_level.last_depth t.levels.(i) else 0
  in
  Tracer.miss tr ~level:i (miss_cause t ~level:i ~now ~depth ~flow fid);
  if tr.Tracer.active then
    Tracer.span tr
      ~packet:(t.metrics.Metrics.packets - 1)
      ~time:now ~level:i ~table:(-1) ~depth
      ~cycles:(span_cycles ~cpw ~work)
      ~outcome:Attribution.outcome_miss

(* Per-hit tracer hook: refresh the flow's idle clock at the hit level and
   emit a probe span when sampled. *)
let trace_hit t tr ~level:i ~now ~work ~cpw fid =
  fs_touch t ~level:i ~now fid;
  if tr.Tracer.active then begin
    let depth =
      if t.level_is_ltm.(i) then Cache_level.last_depth t.levels.(i) else 1
    in
    Tracer.span tr
      ~packet:(t.metrics.Metrics.packets - 1)
      ~time:now ~level:i ~table:(-1) ~depth
      ~cycles:(span_cycles ~cpw ~work)
      ~outcome:Attribution.outcome_hit
  end

(* ------------------------------ slowpath ------------------------------ *)

(* Full slowpath: execute the pipeline once and offer the traversal to every
   level's install policy.  Returns (terminal option, service latency us).
   Split so [process_memo] can feed a memoised execute result to the same
   install path ([slowpath_installs]). *)
let slowpath_installs t ~now ~flow_id execute_result =
  let m = t.metrics in
  match execute_result with
  | Error _ -> (None, Latency.upcall_us)
  | Ok traversal ->
      let version = Pipeline.version t.pipeline in
      (* Heavy-hitter admission: hardware slots are scarce, so a flow the
         sketch does not (yet) consider hot is not offered to hardware
         install-on-miss levels — it lands in the software tier and earns a
         slot through the promotion path once its count clears the
         threshold.  The guaranteed count (count - err) is used, so a mouse
         that inherited a large victim count is not admitted. *)
      let admit_hw =
        match t.hh with
        | None -> true
        | Some hh ->
            Heavy_hitter.hot hh ~threshold:t.hh_threshold traversal.Traversal.input
      in
      let installs = ref 0 and partition_work = ref 0 and rulegen_work = ref 0 in
      Array.iteri
        (fun i level ->
          let lm = t.level_metrics.(i) in
          let deferred =
            (not admit_hw)
            && Cache_level.tier level = Cache_level.Hardware
            && (Cache_level.descriptor level).Cache_level.policy
               = Cache_level.Install_on_miss
          in
          if deferred then begin
            lm.Metrics.deferred <- lm.Metrics.deferred + 1;
            m.Metrics.hw_deferred <- m.Metrics.hw_deferred + 1;
            (match t.tracer with
            | Some _ -> fs_mark t ~level:i flow_id '\002'
            | None -> ());
            match t.psv with
            | Some p ->
                let c = p.Passive.counters.(i) in
                c.Passive.c_defers <- c.Passive.c_defers + 1;
                if p.Passive.events_on then
                  Passive.note p ~kind:Recorder.Defer ~level:i
                    ~packet:(m.Metrics.packets - 1) ~time:now ~lat:0.0 ~count:1
            | None -> ()
          end
          else begin
          let r = Cache_level.install_from_traversal level ~now ~version traversal in
          lm.Metrics.installs <- lm.Metrics.installs + r.Cache_level.fresh;
          lm.Metrics.shared <- lm.Metrics.shared + r.Cache_level.shared;
          lm.Metrics.rejected <- lm.Metrics.rejected + r.Cache_level.rejected;
          lm.Metrics.pressure_evictions <-
            lm.Metrics.pressure_evictions + r.Cache_level.pressure_evicted;
          partition_work := !partition_work + r.Cache_level.partition_work;
          rulegen_work := !rulegen_work + r.Cache_level.rulegen_work;
          (match t.tracer with
          | Some _ ->
              if r.Cache_level.rejected > 0 then fs_mark t ~level:i flow_id '\003'
              else if r.Cache_level.fresh + r.Cache_level.shared > 0 then
                fs_install t ~level:i ~now flow_id
          | None -> ());
          (match t.psv with
          | Some p ->
              let c = p.Passive.counters.(i) in
              c.Passive.c_installs <- c.Passive.c_installs + r.Cache_level.fresh;
              c.Passive.c_rejects <- c.Passive.c_rejects + r.Cache_level.rejected;
              c.Passive.c_pressure_evicts <-
                c.Passive.c_pressure_evicts + r.Cache_level.pressure_evicted;
              if p.Passive.events_on then begin
                let packet = m.Metrics.packets - 1 in
                if r.Cache_level.fresh > 0 then
                  Passive.note p ~kind:Recorder.Install ~level:i ~packet
                    ~time:now ~lat:0.0 ~count:r.Cache_level.fresh;
                if r.Cache_level.rejected > 0 then
                  Passive.note p ~kind:Recorder.Reject ~level:i ~packet
                    ~time:now ~lat:0.0 ~count:r.Cache_level.rejected;
                if r.Cache_level.pressure_evicted > 0 then
                  Passive.note p ~kind:Recorder.Pressure_evict ~level:i ~packet
                    ~time:now ~lat:0.0 ~count:r.Cache_level.pressure_evicted
              end
          | None -> ());
          if Cache_level.tier level = Cache_level.Hardware then begin
            m.Metrics.hw_installs <- m.Metrics.hw_installs + r.Cache_level.fresh;
            m.Metrics.hw_shared <- m.Metrics.hw_shared + r.Cache_level.shared;
            m.Metrics.hw_rejected <- m.Metrics.hw_rejected + r.Cache_level.rejected;
            m.Metrics.hw_pressure_evictions <-
              m.Metrics.hw_pressure_evictions + r.Cache_level.pressure_evicted;
            (* PCIe table writes: only NIC-resident levels pay per-install
               latency. *)
            installs := !installs + r.Cache_level.fresh
          end
          end)
        t.levels;
      (* Sampled packets attribute the slowpath table-by-table: one span
         per traversal step, costed at that step's share of the userspace
         lookup cycles (the per-step costs sum to the charged total). *)
      (match t.tracer with
      | Some tr when tr.Tracer.active ->
          let packet = m.Metrics.packets - 1 in
          Array.iter
            (fun (s : Traversal.step) ->
              Tracer.span tr ~packet ~time:now ~level:(-1)
                ~table:s.Traversal.table_id ~depth:0
                ~cycles:
                  (Latency.cycles_userspace ~pipeline_lookups:1
                     ~tuple_probes:s.Traversal.probes)
                ~outcome:Attribution.outcome_slowpath)
            traversal.Traversal.steps
      | Some _ | None -> ());
      let pipeline_lookups = Traversal.length traversal in
      let tuple_probes =
        Array.fold_left
          (fun acc s -> acc + s.Traversal.probes)
          0 traversal.Traversal.steps
      in
      let cu = Latency.cycles_userspace ~pipeline_lookups ~tuple_probes in
      let cp = Latency.cycles_partition ~partition_work:!partition_work in
      let cr = Latency.cycles_rulegen ~rulegen_work:!rulegen_work in
      m.Metrics.cycles_userspace <- m.Metrics.cycles_userspace + cu;
      m.Metrics.cycles_partition <- m.Metrics.cycles_partition + cp;
      m.Metrics.cycles_rulegen <- m.Metrics.cycles_rulegen + cr;
      let lat =
        Latency.slowpath_us ~pipeline_lookups ~tuple_probes
          ~partition_work:!partition_work ~rulegen_work:!rulegen_work
          ~installs:!installs
      in
      (Some traversal.Traversal.terminal, lat)

let slowpath t ~now ~flow_id flow =
  slowpath_installs t ~now ~flow_id (Executor.execute t.pipeline flow)

(* Memoising slowpath: the pipeline execute is observably pure over a fixed
   pipeline, so repeat slowpaths of a flow (expired entries, churn) replay
   the memoised traversal; the install offers, adaptive-profile updates and
   all accounting stay live. *)
let slowpath_memo t ~now ~flow_id flow =
  match Hashtbl.find_opt t.traversal_memo flow_id with
  | Some r -> slowpath_installs t ~now ~flow_id r
  | None ->
      let r = Executor.execute t.pipeline flow in
      Hashtbl.replace t.traversal_memo flow_id
        (match r with Ok tr -> Ok tr | Error _ -> Error ());
      slowpath_installs t ~now ~flow_id r

(* Asynchronous hardware promotion of a flow that got hot while living in
   the software tier: offer its slowpath traversal to the hardware-tier
   install-on-miss levels only.  Models the revalidator thread pushing a
   proven elephant down to the NIC off the packet path — install,
   partition and rule-generation accounting is real (the work happens),
   but no packet latency is charged.  [Executor.execute] is pure, so the
   walker (fresh execute) and the batched engine (memoised traversal)
   account identically.  Returns [true] iff any cache mutated. *)
let hh_offer_hw t ~now ~flow_id flow =
  let execute_result =
    if flow_id >= 0 then (
      match Hashtbl.find_opt t.traversal_memo flow_id with
      | Some r -> r
      | None ->
          let r =
            match Executor.execute t.pipeline flow with
            | Ok tr -> Ok tr
            | Error _ -> Error ()
          in
          Hashtbl.replace t.traversal_memo flow_id r;
          r)
    else
      match Executor.execute t.pipeline flow with
      | Ok tr -> Ok tr
      | Error _ -> Error ()
  in
  match execute_result with
  | Error () -> false
  | Ok traversal ->
      let m = t.metrics in
      let version = Pipeline.version t.pipeline in
      let mutated = ref false in
      let partition_work = ref 0 and rulegen_work = ref 0 in
      Array.iteri
        (fun i level ->
          let d = Cache_level.descriptor level in
          if
            d.Cache_level.tier = Cache_level.Hardware
            && d.Cache_level.policy = Cache_level.Install_on_miss
          then begin
            let r = Cache_level.install_from_traversal level ~now ~version traversal in
            let lm = t.level_metrics.(i) in
            lm.Metrics.installs <- lm.Metrics.installs + r.Cache_level.fresh;
            lm.Metrics.shared <- lm.Metrics.shared + r.Cache_level.shared;
            lm.Metrics.rejected <- lm.Metrics.rejected + r.Cache_level.rejected;
            lm.Metrics.pressure_evictions <-
              lm.Metrics.pressure_evictions + r.Cache_level.pressure_evicted;
            m.Metrics.hw_installs <- m.Metrics.hw_installs + r.Cache_level.fresh;
            m.Metrics.hw_shared <- m.Metrics.hw_shared + r.Cache_level.shared;
            m.Metrics.hw_rejected <- m.Metrics.hw_rejected + r.Cache_level.rejected;
            m.Metrics.hw_pressure_evictions <-
              m.Metrics.hw_pressure_evictions + r.Cache_level.pressure_evicted;
            partition_work := !partition_work + r.Cache_level.partition_work;
            rulegen_work := !rulegen_work + r.Cache_level.rulegen_work;
            if r.Cache_level.fresh > 0 || r.Cache_level.pressure_evicted > 0 then
              mutated := true;
            (match t.tracer with
            | Some _ ->
                if r.Cache_level.rejected > 0 then
                  fs_mark t ~level:i flow_id '\003'
                else if r.Cache_level.fresh + r.Cache_level.shared > 0 then
                  fs_install t ~level:i ~now flow_id
            | None -> ());
            match t.psv with
            | Some p ->
                let c = p.Passive.counters.(i) in
                c.Passive.c_installs <- c.Passive.c_installs + r.Cache_level.fresh;
                c.Passive.c_rejects <- c.Passive.c_rejects + r.Cache_level.rejected;
                c.Passive.c_pressure_evicts <-
                  c.Passive.c_pressure_evicts + r.Cache_level.pressure_evicted;
                if p.Passive.events_on then begin
                  let packet = m.Metrics.packets - 1 in
                  if r.Cache_level.fresh > 0 then
                    Passive.note p ~kind:Recorder.Install ~level:i ~packet
                      ~time:now ~lat:0.0 ~count:r.Cache_level.fresh;
                  if r.Cache_level.rejected > 0 then
                    Passive.note p ~kind:Recorder.Reject ~level:i ~packet
                      ~time:now ~lat:0.0 ~count:r.Cache_level.rejected;
                  if r.Cache_level.pressure_evicted > 0 then
                    Passive.note p ~kind:Recorder.Pressure_evict ~level:i ~packet
                      ~time:now ~lat:0.0 ~count:r.Cache_level.pressure_evicted
                end
            | None -> ()
          end)
        t.levels;
      m.Metrics.cycles_partition <-
        m.Metrics.cycles_partition
        + Latency.cycles_partition ~partition_work:!partition_work;
      m.Metrics.cycles_rulegen <-
        m.Metrics.cycles_rulegen + Latency.cycles_rulegen ~rulegen_work:!rulegen_work;
      !mutated

(* Promotion trigger, shared by [process] and [process_memo_slow]: a
   software-tier hit of a flow the sketch now calls hot means an elephant
   is stuck below the hardware line (its install was deferred while cold,
   or it was demoted) — offer it hardware residence, at most once per flow
   per sweep interval. *)
let maybe_promote_hot t ~now ~flow_id flow tier =
  match t.hh with
  | Some hh
    when tier = Cache_level.Software
         && Heavy_hitter.hot hh ~threshold:t.hh_threshold flow
         && not (Flow.Tbl.mem t.hh_attempted flow) ->
      Flow.Tbl.replace t.hh_attempted flow ();
      hh_offer_hw t ~now ~flow_id flow
  | Some _ | None -> false

let process ?(flow_id = -1) t ~now flow =
  let m = t.metrics in
  maybe_expire t ~now;
  m.Metrics.packets <- m.Metrics.packets + 1;
  (match t.tracer with
  | Some tr -> tracer_tick tr
  | None -> ());
  (match t.hh with Some hh -> Heavy_hitter.observe hh flow | None -> ());
  let n = Array.length t.levels in
  (* Walk the hierarchy: first hit wins, misses fall through. *)
  let rec walk i =
    if i >= n then begin
      m.Metrics.slowpaths <- m.Metrics.slowpaths + 1;
      let terminal, service_us = slowpath t ~now ~flow_id flow in
      (Slowpath, terminal, Latency.upcall_us +. Latency.sw_base_us +. service_us)
    end
    else begin
      let level = t.levels.(i) in
      let d = Cache_level.descriptor level in
      let hit, work = Cache_level.lookup level ~now flow in
      let lm = t.level_metrics.(i) in
      lm.Metrics.work <- lm.Metrics.work + work;
      m.Metrics.cycles_sw_search <-
        m.Metrics.cycles_sw_search + (work * d.Cache_level.cycles_per_work);
      match hit with
      | None ->
          lm.Metrics.misses <- lm.Metrics.misses + 1;
          (match t.tracer with
          | Some tr ->
              trace_miss t tr ~level:i ~now ~work
                ~cpw:d.Cache_level.cycles_per_work ~flow flow_id
          | None -> ());
          (match t.psv with
          | Some p ->
              let c = p.Passive.counters.(i) in
              c.Passive.c_misses <- c.Passive.c_misses + 1;
              if p.Passive.events_on then
                Passive.note p ~kind:Recorder.Miss ~level:i
                  ~packet:(m.Metrics.packets - 1) ~time:now ~lat:0.0 ~count:1
          | None -> ());
          walk (i + 1)
      | Some h ->
          lm.Metrics.hits <- lm.Metrics.hits + 1;
          (match t.tracer with
          | Some tr ->
              trace_hit t tr ~level:i ~now ~work
                ~cpw:d.Cache_level.cycles_per_work flow_id
          | None -> ());
          (* Let shallower promote-on-hit levels (the EMC) learn the
             decision for subsequent packets of this flow. *)
          for j = 0 to i - 1 do
            let lj = t.levels.(j) in
            if
              (Cache_level.descriptor lj).Cache_level.policy
              = Cache_level.Promote_on_hit
            then begin
              let pe = Cache_level.promote lj ~now flow h in
              (match t.tracer with
              | Some _ -> fs_install t ~level:j ~now flow_id
              | None -> ());
              if pe > 0 then begin
                let lmj = t.level_metrics.(j) in
                lmj.Metrics.pressure_evictions <-
                  lmj.Metrics.pressure_evictions + pe;
                if Cache_level.tier lj = Cache_level.Hardware then
                  m.Metrics.hw_pressure_evictions <-
                    m.Metrics.hw_pressure_evictions + pe
              end;
              match t.psv with
              | Some p ->
                  let cj = p.Passive.counters.(j) in
                  cj.Passive.c_promotes <- cj.Passive.c_promotes + 1;
                  if pe > 0 then
                    cj.Passive.c_pressure_evicts <-
                      cj.Passive.c_pressure_evicts + pe;
                  if p.Passive.events_on then begin
                    Passive.note p ~kind:Recorder.Promote ~level:j
                      ~packet:(m.Metrics.packets - 1) ~time:now ~lat:0.0 ~count:1;
                    if pe > 0 then
                      Passive.note p ~kind:Recorder.Pressure_evict ~level:j
                        ~packet:(m.Metrics.packets - 1) ~time:now ~lat:0.0
                        ~count:pe
                  end
              | None -> ()
            end
          done;
          ignore (maybe_promote_hot t ~now ~flow_id flow d.Cache_level.tier);
          let outcome, lat =
            match d.Cache_level.tier with
            | Cache_level.Hardware ->
                m.Metrics.hw_hits <- m.Metrics.hw_hits + 1;
                (Hw_hit, d.Cache_level.hit_us ~work)
            | Cache_level.Software ->
                m.Metrics.sw_hits <- m.Metrics.sw_hits + 1;
                ( Sw_hit,
                  Latency.upcall_us +. Latency.sw_base_us
                  +. d.Cache_level.hit_us ~work )
          in
          lm.Metrics.latency_us <- lm.Metrics.latency_us +. lat;
          (match t.psv with
          | Some p ->
              Passive.lat_note p.Passive.lat_levels.(i) lm.Metrics.latency_hist
                lat;
              let c = p.Passive.counters.(i) in
              c.Passive.c_hits <- c.Passive.c_hits + 1;
              if p.Passive.events_on then
                Passive.note p ~kind:Recorder.Hit ~level:i
                  ~packet:(m.Metrics.packets - 1) ~time:now ~lat ~count:1
          | None -> Histogram.record lm.Metrics.latency_hist lat);
          (outcome, Some h.Cache_level.terminal, lat)
    end
  in
  let outcome, terminal, latency = walk 0 in
  (match terminal with
  | Some Action.Drop -> m.Metrics.drops <- m.Metrics.drops + 1
  | Some (Action.Output _ | Action.Controller) | None -> ());
  Gf_util.Stats.Acc.add m.Metrics.latency latency;
  (match t.psv with
  | Some p -> Passive.lat_note p.Passive.lat_global m.Metrics.latency_hist latency
  | None -> Histogram.record m.Metrics.latency_hist latency);
  let hw_occ = ref 0 in
  Array.iteri
    (fun i level ->
      let occ = Cache_level.occupancy level in
      let lm = t.level_metrics.(i) in
      if occ > lm.Metrics.occupancy_peak then lm.Metrics.occupancy_peak <- occ;
      if Cache_level.tier level = Cache_level.Hardware then hw_occ := !hw_occ + occ)
    t.levels;
  if !hw_occ > m.Metrics.hw_entries_peak then m.Metrics.hw_entries_peak <- !hw_occ;
  (outcome, terminal, latency)

(* Grow [replay_tbl] (doubling) until [flow_id] indexes it. *)
let ensure_replay_slot t flow_id =
  let n = Array.length t.replay_tbl in
  if flow_id >= n then begin
    let n' = ref (max 1024 (2 * n)) in
    while flow_id >= !n' do
      n' := 2 * !n'
    done;
    let a = Array.make !n' None in
    Array.blit t.replay_tbl 0 a 0 n;
    t.replay_tbl <- a
  end

(* The slow half of [process_memo]: observably identical to [process] —
   same counters, same latency accumulation, same telemetry events, same
   occupancy peaks — but amortised for repeat flows.  Lookups go through
   each level's per-flow memo ([Cache_level.lookup_memo]), repeat
   slowpaths replay the memoised pipeline traversal ([slowpath_memo]),
   and the per-packet occupancy-peak scan is skipped when no mutation
   (expiry sweep, promotion, slowpath install) could have changed any
   occupancy.  A hit at level 0 on a hardware tier additionally compiles
   a [pmemo] so subsequent packets of the flow take the fast path in
   [process_memo].  Kept as a sibling of [process] rather than a
   parameterisation so the per-packet walker benchmarks stay an honest
   baseline. *)
let process_memo_slow t ~now ~flow_id flow =
  let m = t.metrics in
  let expired = now -. t.last_expire >= t.cfg.expire_every in
  maybe_expire t ~now;
  m.Metrics.packets <- m.Metrics.packets + 1;
  (match t.tracer with
  | Some tr -> tracer_tick tr
  | None -> ());
  (match t.hh with Some hh -> Heavy_hitter.observe hh flow | None -> ());
  let n = Array.length t.levels in
  let mutated = ref expired in
  let rec walk i =
    if i >= n then begin
      m.Metrics.slowpaths <- m.Metrics.slowpaths + 1;
      mutated := true;
      let terminal, service_us = slowpath_memo t ~now ~flow_id flow in
      (Slowpath, terminal, Latency.upcall_us +. Latency.sw_base_us +. service_us, -1)
    end
    else begin
      let level = t.levels.(i) in
      let d = Cache_level.descriptor level in
      let hit, work = Cache_level.lookup_memo level ~now ~flow_id flow in
      let lm = t.level_metrics.(i) in
      lm.Metrics.work <- lm.Metrics.work + work;
      m.Metrics.cycles_sw_search <-
        m.Metrics.cycles_sw_search + (work * d.Cache_level.cycles_per_work);
      match hit with
      | None ->
          lm.Metrics.misses <- lm.Metrics.misses + 1;
          (match t.tracer with
          | Some tr ->
              trace_miss t tr ~level:i ~now ~work
                ~cpw:d.Cache_level.cycles_per_work ~flow flow_id
          | None -> ());
          (match t.psv with
          | Some p ->
              let c = p.Passive.counters.(i) in
              c.Passive.c_misses <- c.Passive.c_misses + 1;
              if p.Passive.events_on then
                Passive.note p ~kind:Recorder.Miss ~level:i
                  ~packet:(m.Metrics.packets - 1) ~time:now ~lat:0.0 ~count:1
          | None -> ());
          walk (i + 1)
      | Some h ->
          lm.Metrics.hits <- lm.Metrics.hits + 1;
          (match t.tracer with
          | Some tr ->
              trace_hit t tr ~level:i ~now ~work
                ~cpw:d.Cache_level.cycles_per_work flow_id
          | None -> ());
          for j = 0 to i - 1 do
            let lj = t.levels.(j) in
            if
              (Cache_level.descriptor lj).Cache_level.policy
              = Cache_level.Promote_on_hit
            then begin
              mutated := true;
              let pe = Cache_level.promote lj ~now flow h in
              (match t.tracer with
              | Some _ -> fs_install t ~level:j ~now flow_id
              | None -> ());
              if pe > 0 then begin
                let lmj = t.level_metrics.(j) in
                lmj.Metrics.pressure_evictions <-
                  lmj.Metrics.pressure_evictions + pe;
                if Cache_level.tier lj = Cache_level.Hardware then
                  m.Metrics.hw_pressure_evictions <-
                    m.Metrics.hw_pressure_evictions + pe
              end;
              match t.psv with
              | Some p ->
                  let cj = p.Passive.counters.(j) in
                  cj.Passive.c_promotes <- cj.Passive.c_promotes + 1;
                  if pe > 0 then
                    cj.Passive.c_pressure_evicts <-
                      cj.Passive.c_pressure_evicts + pe;
                  if p.Passive.events_on then begin
                    Passive.note p ~kind:Recorder.Promote ~level:j
                      ~packet:(m.Metrics.packets - 1) ~time:now ~lat:0.0 ~count:1;
                    if pe > 0 then
                      Passive.note p ~kind:Recorder.Pressure_evict ~level:j
                        ~packet:(m.Metrics.packets - 1) ~time:now ~lat:0.0
                        ~count:pe
                  end
              | None -> ()
            end
          done;
          if maybe_promote_hot t ~now ~flow_id flow d.Cache_level.tier then
            mutated := true;
          let outcome, lat =
            match d.Cache_level.tier with
            | Cache_level.Hardware ->
                m.Metrics.hw_hits <- m.Metrics.hw_hits + 1;
                (Hw_hit, d.Cache_level.hit_us ~work)
            | Cache_level.Software ->
                m.Metrics.sw_hits <- m.Metrics.sw_hits + 1;
                ( Sw_hit,
                  Latency.upcall_us +. Latency.sw_base_us
                  +. d.Cache_level.hit_us ~work )
          in
          lm.Metrics.latency_us <- lm.Metrics.latency_us +. lat;
          (match t.psv with
          | Some p ->
              Passive.lat_note p.Passive.lat_levels.(i) lm.Metrics.latency_hist
                lat;
              let c = p.Passive.counters.(i) in
              c.Passive.c_hits <- c.Passive.c_hits + 1;
              if p.Passive.events_on then
                Passive.note p ~kind:Recorder.Hit ~level:i
                  ~packet:(m.Metrics.packets - 1) ~time:now ~lat ~count:1
          | None -> Histogram.record lm.Metrics.latency_hist lat);
          (outcome, Some h.Cache_level.terminal, lat, i)
    end
  in
  let outcome, terminal, latency, hit_level = walk 0 in
  (match terminal with
  | Some Action.Drop -> m.Metrics.drops <- m.Metrics.drops + 1
  | Some (Action.Output _ | Action.Controller) | None -> ());
  Gf_util.Stats.Acc.add m.Metrics.latency latency;
  (match t.psv with
  | Some p -> Passive.lat_note p.Passive.lat_global m.Metrics.latency_hist latency
  | None -> Histogram.record m.Metrics.latency_hist latency);
  (* Occupancies only move on expiry, promotion or slowpath installs: a
     pure-hit packet cannot raise any peak, so the per-packet scan that
     [process] pays is elided unless something mutated. *)
  if !mutated then begin
    let hw_occ = ref 0 in
    Array.iteri
      (fun i level ->
        let occ = Cache_level.occupancy level in
        let lm = t.level_metrics.(i) in
        if occ > lm.Metrics.occupancy_peak then lm.Metrics.occupancy_peak <- occ;
        if Cache_level.tier level = Cache_level.Hardware then hw_occ := !hw_occ + occ)
      t.levels;
    if !hw_occ > m.Metrics.hw_entries_peak then m.Metrics.hw_entries_peak <- !hw_occ
  end;
  (* A hardware hit at the top level has constant per-packet effects:
     compile them so this flow's next packets take [process_memo]'s fast
     path. *)
  (if hit_level = 0 && flow_id >= 0 then
     let level = t.levels.(0) in
     let d = Cache_level.descriptor level in
     if d.Cache_level.tier = Cache_level.Hardware then
       match Cache_level.prepare_replay level ~flow_id with
       | Some p_replay ->
           ensure_replay_slot t flow_id;
           let lm0 = t.level_metrics.(0) in
           t.replay_tbl.(flow_id) <-
             Some
               {
                 p_replay;
                 p_lat = latency;
                 p_gidx = Histogram.index m.Metrics.latency_hist latency;
                 p_lidx = Histogram.index lm0.Metrics.latency_hist latency;
                 p_cpw = d.Cache_level.cycles_per_work;
                 p_is_drop = (terminal = Some Action.Drop);
                 p_depth =
                   (if t.level_is_ltm.(0) then Cache_level.last_depth level
                    else 1);
                 p_result = (outcome, terminal, latency);
               }
       | None -> ());
  (outcome, terminal, latency)

(* [process] amortised for the batched engine.  Repeat flows hitting the
   hardware top level replay a compiled constant effect ([pmemo]) — no
   first-class-module projections, no hash probes, no log2 per packet —
   every other packet takes [process_memo_slow].  The fast path is only
   legal when no expiry sweep is due (a due sweep must run, and may evict
   anything), and it re-validates the memoised entry on every packet
   through [p_replay], so observable effects stay identical to
   [process]'s. *)
let process_memo t ~now ~flow_id flow =
  if
    flow_id >= 0
    && flow_id < Array.length t.replay_tbl
    && now -. t.last_expire < t.cfg.expire_every
  then begin
    match t.replay_tbl.(flow_id) with
    | Some pm -> (
        match pm.p_replay ~now with
        | Some work ->
            let m = t.metrics in
            m.Metrics.packets <- m.Metrics.packets + 1;
            (match t.tracer with
            | Some tr ->
                tracer_tick tr;
                if tr.Tracer.active then
                  Tracer.span tr
                    ~packet:(m.Metrics.packets - 1)
                    ~time:now ~level:0 ~table:(-1) ~depth:pm.p_depth
                    ~cycles:(span_cycles ~cpw:pm.p_cpw ~work)
                    ~outcome:Attribution.outcome_hit;
                (* Inlined [fs_touch ~level:0] — [flow_id >= 0] is
                   checked at entry, so one bounds test suffices. *)
                if flow_id < t.fs_cap then
                  Array.unsafe_set t.fs_seen0 flow_id now
                else fs_touch t ~level:0 ~now flow_id
            | None -> ());
            (match t.hh with Some hh -> Heavy_hitter.observe hh flow | None -> ());
            let lm0 = t.level_metrics.(0) in
            lm0.Metrics.work <- lm0.Metrics.work + work;
            m.Metrics.cycles_sw_search <-
              m.Metrics.cycles_sw_search + (work * pm.p_cpw);
            lm0.Metrics.hits <- lm0.Metrics.hits + 1;
            m.Metrics.hw_hits <- m.Metrics.hw_hits + 1;
            lm0.Metrics.latency_us <- lm0.Metrics.latency_us +. pm.p_lat;
            (match t.psv with
            | Some p ->
                Passive.lat_note_at p.Passive.lat_levels.(0)
                  lm0.Metrics.latency_hist ~idx:pm.p_lidx pm.p_lat;
                let c = p.Passive.counters.(0) in
                c.Passive.c_hits <- c.Passive.c_hits + 1;
                if p.Passive.events_on then
                  Passive.note p ~kind:Recorder.Hit ~level:0
                    ~packet:(m.Metrics.packets - 1) ~time:now ~lat:pm.p_lat
                    ~count:1
            | None ->
                Histogram.record_at lm0.Metrics.latency_hist pm.p_lidx pm.p_lat);
            if pm.p_is_drop then m.Metrics.drops <- m.Metrics.drops + 1;
            Gf_util.Stats.Acc.add m.Metrics.latency pm.p_lat;
            (match t.psv with
            | Some p ->
                Passive.lat_note_at p.Passive.lat_global m.Metrics.latency_hist
                  ~idx:pm.p_gidx pm.p_lat
            | None ->
                Histogram.record_at m.Metrics.latency_hist pm.p_gidx pm.p_lat);
            pm.p_result
        | None ->
            (* Entry left the level (evicted, replaced): drop the stale
               compilation and walk; a fresh one is compiled on the next
               top-level hit. *)
            t.replay_tbl.(flow_id) <- None;
            process_memo_slow t ~now ~flow_id flow)
    | None -> process_memo_slow t ~now ~flow_id flow
  end
  else process_memo_slow t ~now ~flow_id flow

(* Drain every passive ring into its pull-side sink: raw latencies into
   their histograms, event candidates into the flight recorder.  Runs at
   every sampler tick and at finalize; ring-full flushes inside the
   emission helpers make it total.  Flush order (global, then levels in
   walk order, then events) is fixed, and each ring feeds exactly one
   sink, so the merged result is independent of how often this ran. *)
let flush_passive t =
  (match t.tracer with Some tr -> Tracer.flush tr | None -> ());
  match t.psv with
  | Some p ->
      Passive.flush_lat p.Passive.lat_global t.metrics.Metrics.latency_hist;
      Array.iteri
        (fun i r ->
          Passive.flush_lat r t.level_metrics.(i).Metrics.latency_hist)
        p.Passive.lat_levels;
      Passive.flush_events p
  | None -> ()

(* A time-series sample built straight from the live Metrics counters, so
   the final sample of a run agrees with the run's Metrics exactly.
   Flushes the passive rings first so the histogram-derived quantiles see
   every latency recorded up to this packet. *)
let snapshot t ~time =
  flush_passive t;
  let m = t.metrics in
  let h = m.Metrics.latency_hist in
  let q f = if Histogram.count h = 0 then 0.0 else f h in
  {
    Series.s_packet = m.Metrics.packets;
    s_time = time;
    s_hw_hits = m.Metrics.hw_hits;
    s_sw_hits = m.Metrics.sw_hits;
    s_slowpaths = m.Metrics.slowpaths;
    s_hw_hit_rate = Metrics.hw_hit_rate m;
    s_mean_us = Metrics.mean_latency_us m;
    s_p50_us = q Histogram.p50;
    s_p90_us = q Histogram.p90;
    s_p99_us = q Histogram.p99;
    s_p999_us = q Histogram.p999;
    s_levels =
      Array.to_list
        (Array.mapi
           (fun i level ->
             let lm = t.level_metrics.(i) in
             let lh = lm.Metrics.latency_hist in
             let lq f = if Histogram.count lh = 0 then 0.0 else f lh in
             {
               Series.ls_level = lm.Metrics.level_name;
               ls_tier = Cache_level.tier_name (Cache_level.tier level);
               ls_hits = lm.Metrics.hits;
               ls_misses = lm.Metrics.misses;
               ls_hit_rate = Metrics.level_hit_rate lm;
               ls_occupancy = Cache_level.occupancy level;
               ls_p50_us = lq Histogram.p50;
               ls_p99_us = lq Histogram.p99;
             })
           t.levels);
  }

(* End-of-run epilogue, shared by [run] and the batched engine's workers:
   record final occupancies, flush one unconditional telemetry sample
   (deduplicated by packet count) at [time] plus a full counter export, so
   a consumer's last JSONL sample and the Prometheus snapshot both agree
   with the returned Metrics exactly. *)
let finalize t ~time =
  t.metrics.Metrics.hw_entries_final <- hw_occupancy t;
  Array.iteri
    (fun i level ->
      t.level_metrics.(i).Metrics.occupancy_final <- Cache_level.occupancy level)
    t.levels;
  (match t.telemetry with
  | Some tel ->
      Telemetry.push_sample tel (snapshot t ~time);
      Metrics.to_registry t.metrics (Telemetry.registry tel);
      (match t.psv with
      | Some p -> Passive.to_registry p (Telemetry.registry tel)
      | None -> ());
      (match t.tracer with
      | Some tr ->
          Attribution.to_registry (Tracer.attribution tr) (Telemetry.registry tel)
      | None -> ())
  | None -> ());
  t.metrics

(* The streaming engine's per-batch sampler hook: push a time-series
   sample iff the batch crossed the sampling cadence.  [snapshot] flushes
   the passive rings, so the sampler — not the packet loop — pays the
   histogram bucketing and recorder sampling. *)
let maybe_sample t ~time =
  match t.telemetry with
  | Some tel when Telemetry.sample_due tel ~packets:t.metrics.Metrics.packets ->
      Telemetry.push_sample tel (snapshot t ~time)
  | Some _ | None -> ()

let run ?on_packet ?miss_sink t trace =
  (* Time-series sampling cadence, hoisted to a countdown: the per-packet
     [Telemetry.sample_due] call (a projection plus a [mod]) showed up in
     walker profiles, and [Series.due] fires exactly when the packet count
     crosses a multiple of [sample_every] — which a decrementing counter
     reproduces without touching the telemetry module per packet.  Packet
     counts only ever increase inside a run, so the duplicate-sample guard
     in [Series.due] is vacuous here. *)
  let sample_every =
    match t.telemetry with
    | Some tel -> (Telemetry.config tel).Telemetry.sample_every
    | None -> 0
  in
  let countdown =
    ref
      (if sample_every > 0 then
         sample_every - (t.metrics.Metrics.packets mod sample_every)
       else max_int)
  in
  Array.iter
    (fun (pkt : Gf_workload.Trace.packet) ->
      let before = Metrics.total_cycles t.metrics in
      let outcome, _terminal, latency =
        process t ~flow_id:pkt.Gf_workload.Trace.flow_id
          ~now:pkt.Gf_workload.Trace.time pkt.Gf_workload.Trace.flow
      in
      (match (outcome, miss_sink) with
      | Slowpath, Some sink ->
          sink ~flow_id:pkt.Gf_workload.Trace.flow_id
            ~cycles:(Metrics.total_cycles t.metrics - before)
      | (Hw_hit | Sw_hit | Slowpath), _ -> ());
      if sample_every > 0 then begin
        decr countdown;
        if !countdown = 0 then begin
          countdown := sample_every;
          match t.telemetry with
          | Some tel ->
              Telemetry.push_sample tel (snapshot t ~time:pkt.Gf_workload.Trace.time)
          | None -> ()
        end
      end;
      match on_packet with
      | Some f -> f pkt outcome latency
      | None -> ())
    trace.Gf_workload.Trace.packets;
  let n = Array.length trace.Gf_workload.Trace.packets in
  let time =
    if n = 0 then 0.0
    else trace.Gf_workload.Trace.packets.(n - 1).Gf_workload.Trace.time
  in
  finalize t ~time

let metrics t = t.metrics
